#!/usr/bin/env python3
"""Prometheus text-exposition linter for the /metrics endpoint.

Validates a scrape (file or stdin) against the text exposition format
a real Prometheus server would accept, plus the conventions this repo
enforces on its own series:

  * metric and label names match the Prometheus grammar
  * every sample's family carries # HELP and # TYPE, declared before
    the first sample and at most once each
  * no duplicate series (same name + same label set)
  * histogram families expose _bucket/_sum/_count, bucket counts are
    cumulative in le order, and the +Inf bucket equals _count
  * counter family names end in _total (convention check, repo series
    only: families prefixed uops_)
  * label values are properly quoted and escaped

    lint_exposition.py [METRICS.txt] [--require SERIES ...]

--require asserts that a series is present, matching either a bare
family name ("uops_reloads_total") or a fully labeled series
("uops_http_requests_total{endpoint=\"/predict\"}"); CI uses this to
pin the serving surface. Exits non-zero on any violation. Uses only
the Python standard library.
"""

import argparse
import math
import re
import sys

METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_NAME = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
# One label pair: name="value" with \\, \", \n escapes allowed.
LABEL_PAIR = re.compile(
    r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


class Linter:
    def __init__(self):
        self.errors = []
        self.help = {}          # family -> help text
        self.type = {}          # family -> type
        self.samples = {}       # (name, labels tuple) -> value
        self.sample_order = []  # insertion order for histogram checks
        self.first_sample_line = {}  # family -> line number

    def error(self, lineno, message):
        self.errors.append("line %d: %s" % (lineno, message))

    def base_family(self, name):
        """Family a sample belongs to (histogram suffixes folded)."""
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix):
                base = name[: -len(suffix)]
                if self.type.get(base) == "histogram":
                    return base
        return name

    def parse_labels(self, lineno, text):
        """'k="v",k2="v2"' -> tuple of pairs, or None on error."""
        out = []
        pos = 0
        while pos < len(text):
            m = LABEL_PAIR.match(text, pos)
            if not m:
                self.error(lineno, "malformed label at %r" % text[pos:])
                return None
            if not LABEL_NAME.match(m.group(1)):
                self.error(lineno, "bad label name %r" % m.group(1))
                return None
            out.append((m.group(1), m.group(2)))
            pos = m.end()
            if pos < len(text):
                if text[pos] != ",":
                    self.error(lineno,
                               "expected ',' in labels at %r"
                               % text[pos:])
                    return None
                pos += 1
        return tuple(out)

    def feed(self, lineno, line):
        if line == "":
            return
        if line.startswith("# HELP ") or line.startswith("# TYPE "):
            kind = line[2:6]
            rest = line[7:]
            parts = rest.split(" ", 1)
            if len(parts) != 2 or not parts[1]:
                self.error(lineno, "truncated %s line" % kind)
                return
            family, payload = parts
            if not METRIC_NAME.match(family):
                self.error(lineno, "bad family name %r" % family)
                return
            table = self.help if kind == "HELP" else self.type
            if family in table:
                self.error(lineno, "duplicate # %s for %s"
                           % (kind, family))
            if family in self.first_sample_line:
                self.error(lineno,
                           "# %s for %s after its first sample"
                           % (kind, family))
            if kind == "TYPE" and payload not in (
                    "counter", "gauge", "histogram", "summary",
                    "untyped"):
                self.error(lineno, "unknown type %r" % payload)
            table[family] = payload
            return
        if line.startswith("#"):
            return  # free-form comment

        m = re.match(r"^([^{\s]+)(\{[^ ]*\})? (.+)$", line)
        if not m:
            self.error(lineno, "unparseable sample %r" % line)
            return
        name, label_block, value_text = m.groups()
        if not METRIC_NAME.match(name):
            self.error(lineno, "bad metric name %r" % name)
            return
        labels = ()
        if label_block:
            labels = self.parse_labels(lineno, label_block[1:-1])
            if labels is None:
                return
        if value_text == "+Inf":
            value = math.inf
        else:
            try:
                value = float(value_text)
            except ValueError:
                self.error(lineno, "bad value %r" % value_text)
                return

        family = self.base_family(name)
        self.first_sample_line.setdefault(family, lineno)
        key = (name, labels)
        if key in self.samples:
            self.error(lineno, "duplicate series %s%s"
                       % (name, label_block or ""))
        self.samples[key] = value
        self.sample_order.append(key)

    def finish(self):
        # Every sampled family needs HELP and TYPE.
        for family, lineno in sorted(self.first_sample_line.items()):
            if family not in self.help:
                self.error(lineno, "family %s has no # HELP" % family)
            if family not in self.type:
                self.error(lineno, "family %s has no # TYPE" % family)

        # Repo convention: counters end in _total.
        for family, kind in sorted(self.type.items()):
            if (kind == "counter" and family.startswith("uops_")
                    and not family.endswith("_total")):
                self.error(self.first_sample_line.get(family, 0),
                           "counter %s does not end in _total"
                           % family)

        # Histogram structure.
        for family, kind in sorted(self.type.items()):
            if kind != "histogram":
                continue
            buckets = {}   # non-le labels -> [(le, value)]
            sums = set()
            counts = {}
            for (name, labels), value in self.samples.items():
                if name == family + "_sum":
                    sums.add(labels)
                elif name == family + "_count":
                    counts[labels] = value
                elif name == family + "_bucket":
                    le = [v for k, v in labels if k == "le"]
                    rest = tuple(p for p in labels if p[0] != "le")
                    if len(le) != 1:
                        self.error(
                            self.first_sample_line.get(family, 0),
                            "%s_bucket without exactly one le"
                            % family)
                        continue
                    bound = (math.inf if le[0] == "+Inf"
                             else float(le[0]))
                    buckets.setdefault(rest, []).append(
                        (bound, value))
            lineno = self.first_sample_line.get(family, 0)
            for rest, series in sorted(buckets.items()):
                series.sort()
                prev = 0.0
                for bound, value in series:
                    if value < prev:
                        self.error(
                            lineno,
                            "%s buckets not cumulative at le=%s"
                            % (family, bound))
                    prev = value
                if not series or series[-1][0] != math.inf:
                    self.error(lineno,
                               "%s has no +Inf bucket" % family)
                elif rest in counts and series[-1][1] != counts[rest]:
                    self.error(
                        lineno,
                        "%s +Inf bucket %g != _count %g"
                        % (family, series[-1][1], counts[rest]))
                if rest not in sums:
                    self.error(lineno, "%s has no _sum" % family)
                if rest not in counts:
                    self.error(lineno, "%s has no _count" % family)

    def require(self, wanted):
        """Series or family that must be present in the scrape."""
        if "{" in wanted:
            name, block = wanted.split("{", 1)
            labels = self.parse_labels(0, block.rstrip("}"))
            if labels is not None and (name, labels) in self.samples:
                return True
        else:
            if any(name == wanted or
                   self.base_family(name) == wanted
                   for name, _ in self.samples):
                return True
        self.errors.append("required series missing: %s" % wanted)
        return False


def main(argv):
    parser = argparse.ArgumentParser(
        description="Lint a Prometheus text exposition")
    parser.add_argument("path", nargs="?", default="-",
                        help="metrics file ('-' for stdin)")
    parser.add_argument("--require", action="append", default=[],
                        metavar="SERIES",
                        help="fail unless this series is present "
                             "(repeatable)")
    args = parser.parse_args(argv)

    if args.path == "-":
        text = sys.stdin.read()
    else:
        with open(args.path, "r", encoding="utf-8") as f:
            text = f.read()

    linter = Linter()
    for lineno, line in enumerate(text.split("\n"), start=1):
        linter.feed(lineno, line)
    linter.finish()
    for wanted in args.require:
        linter.require(wanted)

    for error in linter.errors:
        print("lint_exposition: %s" % error, file=sys.stderr)
    if linter.errors:
        return 1
    print("lint_exposition: OK (%d series, %d families)"
          % (len(linter.samples), len(linter.first_sample_line)))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
