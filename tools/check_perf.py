#!/usr/bin/env python3
"""Perf-regression guard for the committed benchmark baselines.

Compares freshly produced ``--json`` outputs (bench_batch_sweep and/or
bench_db_query) against the committed baseline files and fails when
any matched run is slower than baseline by more than the tolerance.

    check_perf.py CURRENT.json BASELINE.json [CURRENT2.json BASELINE2.json ...]
                  [--tolerance 0.25] [--require NAME:RATIO ...]

Any number of (current, baseline) pairs may be given; CI guards both
BENCH_sweep.json and BENCH_db.json in one invocation. Matching is
generic over both benchmark formats: runs are keyed by their
``threads`` (sweep) or ``name`` (db query) field, and the throughput
metric is ``tasks_per_s`` or ``ops_per_s``. The baseline file may nest
its runs under ``optimized`` (BENCH_sweep.json) or ``baseline``
(BENCH_db.json). Runs present in only one file (e.g. a benchmark
added after the baseline was recorded) are reported but not compared.

Only slowdowns fail the check; speedups are reported but fine. The
default tolerance is deliberately wide (25%) because shared CI
runners jitter — the guard exists to catch real regressions (2x
slower hot path), not scheduling noise.

``--require NAME:RATIO`` (repeatable) additionally asserts a speedup
floor: the current run NAME must be at least RATIO times the figure
recorded for it in the baseline file's ``reference`` section — a
frozen pre-optimization measurement that is *not* refreshed when the
rolling baseline is re-recorded (falling back to the baseline runs
when no reference section exists). This pins "the vectorized scan
stays >= 10x the pre-executor loop" as a CI invariant rather than a
one-off claim in a PR description.

Uses only the Python standard library.
"""

import argparse
import json
import sys


def load_runs(doc):
    """Extract the run list from either a fresh output or a baseline."""
    for section in ("optimized", "baseline"):
        if section in doc and isinstance(doc[section], dict):
            runs = doc[section].get("runs")
            if runs:
                return runs
    runs = doc.get("runs")
    if not runs:
        raise SystemExit("error: no runs[] found in benchmark JSON")
    return runs


def run_key(run):
    if "threads" in run:
        return f"threads={run['threads']}"
    if "name" in run:
        return run["name"]
    raise SystemExit(f"error: run without 'threads' or 'name': {run}")


def run_metric(run):
    for field in ("tasks_per_s", "ops_per_s"):
        if field in run:
            return field, float(run[field])
    raise SystemExit(f"error: run without a throughput metric: {run}")


def reference_runs(doc):
    """The frozen pre-optimization runs, if the baseline carries any."""
    section = doc.get("reference")
    if isinstance(section, dict) and section.get("runs"):
        return {run_key(r): r for r in section["runs"]}
    return {}


def check_requires(current, baseline_doc, requires, failures):
    """Assert --require speedup floors against the reference runs."""
    reference = reference_runs(baseline_doc)
    for name, floor in requires.items():
        ref_run = reference.get(name)
        source = "reference"
        if ref_run is None:
            # No frozen reference recorded: fall back to the rolling
            # baseline so the floor still binds to something.
            source = "baseline"
            ref_run = {
                run_key(r): r for r in load_runs(baseline_doc)
            }.get(name)
        if ref_run is None or name not in current:
            continue  # not this pair's benchmark file
        _, ref_value = run_metric(ref_run)
        _, cur_value = run_metric(current[name])
        if ref_value <= 0:
            continue
        ratio = cur_value / ref_value
        ok = ratio >= floor
        requires_seen.add(name)
        marker = "" if ok else "  << BELOW FLOOR"
        print(
            f"require {name:<16} {ref_value:>12.1f} ({source})"
            f" {cur_value:>12.1f} {ratio:>7.2f}x (floor "
            f"{floor:.1f}x){marker}"
        )
        if not ok:
            failures.append((f"require:{name}", ratio))


requires_seen = set()


def compare_pair(current_path, baseline_path, tolerance, requires,
                 failures):
    """Compare one (current, baseline) file pair; returns runs compared."""
    with open(current_path) as f:
        current_doc = json.load(f)
    with open(baseline_path) as f:
        baseline_doc = json.load(f)

    current = {run_key(r): r for r in load_runs(current_doc)}
    baseline = {run_key(r): r for r in load_runs(baseline_doc)}

    compared = 0
    print(f"-- {current_path} vs {baseline_path}")
    print(f"{'run':<24} {'baseline':>12} {'current':>12} {'ratio':>8}")
    for key, base_run in baseline.items():
        if key not in current:
            print(f"{key:<24} {'(missing in current output)':>34}")
            continue
        metric, base_value = run_metric(base_run)
        _, cur_value = run_metric(current[key])
        if base_value <= 0:
            continue
        ratio = cur_value / base_value
        compared += 1
        marker = ""
        if ratio < 1.0 - tolerance:
            marker = "  << REGRESSION"
            failures.append((key, ratio))
        print(
            f"{key:<24} {base_value:>12.1f} {cur_value:>12.1f}"
            f" {ratio:>7.2f}x{marker}"
        )
    for key in current:
        if key not in baseline:
            print(f"{key:<24} {'(new run, no baseline yet)':>34}")
    check_requires(current, baseline_doc, requires, failures)
    return compared


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "files",
        nargs="+",
        metavar="CURRENT BASELINE",
        help="alternating fresh --json outputs and committed baselines",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="maximum allowed fractional slowdown (default 0.25)",
    )
    parser.add_argument(
        "--require",
        action="append",
        default=[],
        metavar="NAME:RATIO",
        help="speedup floor vs the baseline file's reference section "
        "(e.g. port_mask_scan:10); repeatable",
    )
    args = parser.parse_args()
    if len(args.files) % 2 != 0:
        raise SystemExit(
            "error: expected CURRENT BASELINE pairs, got an odd number "
            "of files"
        )
    requires = {}
    for spec in args.require:
        name, sep, ratio = spec.rpartition(":")
        if not sep or not name:
            raise SystemExit(
                f"error: --require expects NAME:RATIO, got {spec!r}"
            )
        try:
            requires[name] = float(ratio)
        except ValueError:
            raise SystemExit(
                f"error: --require ratio must be a number, got {spec!r}"
            )

    failures = []
    compared = 0
    for i in range(0, len(args.files), 2):
        compared += compare_pair(
            args.files[i], args.files[i + 1], args.tolerance,
            requires, failures
        )
        print()

    for name in requires:
        if name not in requires_seen:
            raise SystemExit(
                f"error: --require {name}: no such run in any "
                "current/reference pair"
            )

    if compared == 0:
        raise SystemExit("error: no comparable runs between the files")
    if failures:
        worst = min(failures, key=lambda f: f[1])
        print(
            f"FAIL: {len(failures)} run(s) slower than baseline by "
            f">{args.tolerance:.0%} (worst: {worst[0]} at "
            f"{worst[1]:.2f}x)",
            file=sys.stderr,
        )
        return 1
    print(f"OK: {compared} run(s) within {args.tolerance:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
