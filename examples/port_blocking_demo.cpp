/**
 * @file
 * Port-blocking methodology walkthrough (Section 5.1).
 *
 * Shows, step by step, why the run-in-isolation approach misattributes
 * port usage and how blocking instructions disambiguate it, using the
 * paper's own examples:
 *   - PBLENDVB on Nehalem (2*p05, naively measured as 1*p0+1*p5),
 *   - ADC on Haswell (1*p0156+1*p06, naively 2*p0156),
 *   - MOVQ2DQ on Skylake (1*p0+1*p015, naively 1*p0+1*p15).
 *
 * Usage: port_blocking_demo [UARCH VARIANT]
 */

#include <cstdio>

#include "core/blocking.h"
#include "core/port_usage.h"
#include "isa/parser.h"

namespace {

void
demo(const uops::isa::InstrDb &db, uops::uarch::UArch arch,
     const std::string &variant_name)
{
    using namespace uops;

    const auto *variant = db.byName(variant_name);
    if (variant == nullptr) {
        std::fprintf(stderr, "unknown variant %s\n",
                     variant_name.c_str());
        return;
    }
    uarch::TimingDb timing(db, arch);
    sim::MeasurementHarness harness(timing);
    std::printf("=== %s on %s ===\n", variant_name.c_str(),
                uarch::uarchName(arch).c_str());

    // Step 1: what the performance counters show in isolation.
    core::BlockingFinder finder(harness);
    core::RegPool pool(core::RegPool::Zone::Analyzed);
    auto body = core::independentSequence(*variant, pool, 8);
    auto m = harness.measure(body);
    std::printf("in isolation, per instruction:");
    for (int p = 0; p < harness.info().num_ports; ++p)
        if (m.port_uops[p] > 0.3)
            std::printf("  p%d: %.2f", p, m.port_uops[p] / 8.0);
    std::printf("\n");

    // Step 2: the naive conclusion from those averages.
    core::BlockingSet sse = finder.find(false);
    core::BlockingSet avx =
        harness.info().hasExtension(isa::Extension::Avx)
            ? finder.find(true)
            : sse;
    core::PortUsageAnalyzer analyzer(harness, sse, avx);
    std::printf("naive (Fog-style) conclusion:  %s\n",
                analyzer.analyzeNaive(*variant).toString().c_str());

    // Step 3: Algorithm 1 with blocking instructions.
    auto result = analyzer.analyze(*variant, 8);
    std::printf("Algorithm 1:                   %s   (%d blocking "
                "measurements, blockRep %d)\n",
                result.usage.toString().c_str(), result.measurements,
                result.block_rep);

    // Step 4: ground truth from the timing tables.
    auto truth = uarch::PortUsage::ofTiming(timing.timing(*variant).uops);
    std::printf("ground truth:                  %s   -> %s\n\n",
                truth.toString().c_str(),
                truth == result.usage ? "Algorithm 1 is exact"
                                      : "MISMATCH");
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace uops;
    auto db = isa::buildDefaultDb();

    if (argc > 2) {
        demo(*db, uarch::parseUArch(argv[1]), argv[2]);
        return 0;
    }
    demo(*db, uarch::UArch::Nehalem, "PBLENDVB_X_X_Xi");
    demo(*db, uarch::UArch::Haswell, "ADC_R64_R64");
    demo(*db, uarch::UArch::Skylake, "MOVQ2DQ_X_MM");
    return 0;
}
