/**
 * @file
 * Scheduling-model export: turns the tool's measurements into a
 * compiler-style per-instruction scheduling model (the downstream use
 * case the paper motivates: LLVM's scheduling models were built from
 * exactly this kind of data) and uses it to predict the throughput of
 * a small loop kernel, validated against the simulated hardware.
 *
 * Usage: throughput_predictor [UARCH]
 */

#include <cstdio>
#include <set>

#include "core/characterize.h"
#include "core/predictor.h"
#include "isa/parser.h"

namespace {

/** A minimal compiler-facing scheduling entry. */
struct SchedEntry
{
    int uops;
    double throughput; ///< reciprocal throughput, cycles/instr
    int latency;       ///< worst-case operand-pair latency
    std::string ports;
};

} // namespace

int
main(int argc, char **argv)
{
    using namespace uops;
    std::string arch_name = argc > 1 ? argv[1] : "SKL";

    auto db = isa::buildDefaultDb();
    uarch::UArch arch = uarch::parseUArch(arch_name);

    // Characterize the kernel's mnemonics only (fast).
    static const std::set<std::string> wanted = {
        "ADD_R64_R64",  "IMUL_R64_R64",   "MOV_R64_M64",
        "PSHUFD_X_X_I8", "ADDPS_X_X",     "MULPS_X_X",
        "MOV_M64_R64",
    };
    core::Characterizer::Options options;
    options.filter = [&](const isa::InstrVariant &v) {
        return wanted.count(v.name()) > 0;
    };
    core::Characterizer tool(*db, arch, options);
    auto set = tool.run();

    std::printf("scheduling model for %s:\n",
                uarch::uarchName(arch).c_str());
    std::printf("  %-16s %5s %8s %8s  %s\n", "instruction", "uops",
                "rThru", "latency", "ports");
    std::map<std::string, SchedEntry> model;
    for (const auto &c : set.instrs) {
        SchedEntry e;
        e.uops = c.ports.usage.totalUops();
        e.throughput = (c.tp_ports ? *c.tp_ports : c.throughput.best())
                           .toDouble();
        e.latency = c.latency.maxLatency();
        e.ports = c.ports.usage.toString();
        model[c.variant->name()] = e;
        std::printf("  %-16s %5d %8.2f %8d  %s\n",
                    c.variant->name().c_str(), e.uops, e.throughput,
                    e.latency, e.ports.c_str());
    }

    // Predict a loop kernel with the paper's concluding deliverable:
    // the IACA-like performance predictor built on the measured data
    // (per-pair latencies, port usage, memory dependencies).
    std::string listing = "MOV RBX, [RSI]\n"
                          "IMUL RBX, RBX\n"
                          "ADD RAX, RBX\n"
                          "ADDPS XMM1, XMM4\n"
                          "MULPS XMM2, XMM4\n"
                          "PSHUFD XMM3, XMM2, 0\n"
                          "MOV [RSI+8], RAX\n";
    auto kernel = isa::assemble(*db, listing);

    core::PerformancePredictor predictor(set);
    auto prediction = predictor.analyzeLoop(kernel);

    uarch::TimingDb timing(*db, arch);
    sim::MeasurementHarness harness(timing);
    double measured = harness.measure(kernel).cycles;

    std::printf("\nloop kernel:\n%s\n", listing.c_str());
    std::printf("%s", prediction.toString().c_str());
    std::printf("simulated hardware: %.2f cycles/iteration\n",
                measured);
    return 0;
}
