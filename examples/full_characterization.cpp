/**
 * @file
 * Full characterization of a microarchitecture, emitted as the
 * machine-readable XML of Section 6.4 — the artifact published at
 * uops.info. Optionally restricted to a mnemonic prefix for quick
 * experiments.
 *
 * Usage: full_characterization [UARCH [OUTPUT.xml [MNEMONIC_PREFIX]]]
 *   e.g.  full_characterization SKL skl.xml
 *         full_characterization HSW aes.xml AES
 */

#include <chrono>
#include <cstdio>
#include <fstream>

#include "core/characterize.h"
#include "isa/parser.h"
#include "support/strings.h"

int
main(int argc, char **argv)
{
    using namespace uops;

    std::string arch_name = argc > 1 ? argv[1] : "SKL";
    std::string out_path = argc > 2 ? argv[2] : "";
    std::string prefix = argc > 3 ? argv[3] : "";

    auto db = isa::buildDefaultDb();
    uarch::UArch arch = uarch::parseUArch(arch_name);

    core::Characterizer::Options options;
    if (!prefix.empty()) {
        options.filter = [prefix](const isa::InstrVariant &v) {
            return startsWith(v.name(), prefix);
        };
    }

    std::printf("characterizing %s (%s)...\n",
                uarch::uarchName(arch).c_str(),
                uarch::uarchInfo(arch).processor.c_str());
    auto t0 = std::chrono::steady_clock::now();
    core::Characterizer tool(*db, arch, options);
    auto set = tool.run();
    auto t1 = std::chrono::steady_clock::now();
    std::printf("  %zu instruction variants in %.1f s\n",
                set.instrs.size(),
                std::chrono::duration<double>(t1 - t0).count());

    std::printf("  blocking instructions (SSE set):\n%s",
                set.sse_blocking.toString().c_str());

    auto xml = core::exportResultsXml(set);
    std::string text = xml->toString();
    if (out_path.empty()) {
        // Print a short excerpt when no output file is given.
        std::printf("\nfirst 30 lines of the XML output:\n");
        int lines = 0;
        for (const auto &line : split(text, '\n', false, true)) {
            std::printf("%s\n", line.c_str());
            if (++lines >= 30)
                break;
        }
        std::printf("...\n");
    } else {
        std::ofstream out(out_path);
        out << text;
        std::printf("\nwrote %zu bytes to %s\n", text.size(),
                    out_path.c_str());
    }

    // Hardware-vs-IACA agreement for this uarch (Table 1 columns).
    auto cmp = core::compareWithIaca(*db, set);
    if (cmp.variants_compared > 0 && !iaca::versionsFor(arch).empty()) {
        std::printf("\nIACA comparison: %d variants, µop counts agree "
                    "%.2f%%, port usage agrees %.2f%%\n",
                    cmp.variants_compared, cmp.uopsAgreement(),
                    cmp.portsAgreement());
    }
    return 0;
}
