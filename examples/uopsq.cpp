/**
 * @file
 * uopsq — the end-to-end driver for the results-serving subsystem:
 * characterize → snapshot → serve → query.
 *
 * Subcommands:
 *
 *   uopsq characterize --out DB.snap [--arches NHM,SKL] [--threads N]
 *                      [--mod N] [--xml RESULTS.xml]
 *       Run the batch sweep, ingest the results into an
 *       InstructionDatabase and save a binary snapshot (optionally
 *       also writing the Section 6.4 XML artifact).
 *
 *   uopsq ingest RESULTS.xml --out DB.snap
 *       Re-ingest a previously exported results XML (uopsInfo or
 *       uopsBatch root) into a snapshot — the XML ingest path.
 *
 *   uopsq info DB.snap
 *       Print record counts per microarchitecture.
 *
 *   uopsq query DB.snap [--uarch SKL] [--name N] [--mnemonic M]
 *                       [--extension E] [--uses p05] [--tp-min X]
 *                       [--tp-max X] [--lat-min N] [--lat-max N]
 *                       [--limit N]
 *       Indexed search; prints one line per matching record.
 *
 *   uopsq diff DB.snap ARCH_A ARCH_B
 *       Cross-uarch comparison of shared variants.
 *
 *   uopsq serve DB.snap [--port P] [--address A] [--threads N]
 *       Start the HTTP/1.1 JSON API (port 0 picks an ephemeral port;
 *       the chosen port is printed). Runs until killed.
 */

#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <thread>

#include "core/batch.h"
#include "db/snapshot.h"
#include "isa/parser.h"
#include "isa/results_xml.h"
#include "server/http_server.h"
#include "support/status.h"
#include "support/strings.h"

namespace {

using namespace uops;

volatile std::sig_atomic_t g_stop = 0;

void
onSignal(int)
{
    g_stop = 1;
}

[[noreturn]] void
usage()
{
    std::fprintf(
        stderr,
        "usage: uopsq characterize --out DB [--arches A,B] [--threads N]"
        " [--mod N] [--xml OUT]\n"
        "       uopsq ingest RESULTS.xml --out DB\n"
        "       uopsq info DB\n"
        "       uopsq query DB [filters...]\n"
        "       uopsq diff DB ARCH_A ARCH_B\n"
        "       uopsq serve DB [--port P] [--address A] [--threads N]\n");
    std::exit(1);
}

/** Flag parser: positionals plus --key value options. */
struct Args
{
    std::vector<std::string> positional;
    std::map<std::string, std::string> options;

    const std::string *
    option(const std::string &key) const
    {
        auto it = options.find(key);
        return it == options.end() ? nullptr : &it->second;
    }

    long
    intOption(const std::string &key, long fallback) const
    {
        const std::string *text = option(key);
        if (text == nullptr)
            return fallback;
        auto value = parseInt(*text);
        fatalIf(!value, "option --", key, " expects an integer, got '",
                *text, "'");
        return *value;
    }
};

Args
parseArgs(int argc, char **argv, int from)
{
    Args args;
    for (int i = from; i < argc; ++i) {
        std::string arg = argv[i];
        if (startsWith(arg, "--")) {
            fatalIf(i + 1 >= argc, "option ", arg, " requires a value");
            args.options[arg.substr(2)] = argv[++i];
        } else {
            args.positional.push_back(arg);
        }
    }
    return args;
}

std::vector<uarch::UArch>
parseArches(const std::string &list)
{
    std::vector<uarch::UArch> out;
    for (const std::string &name : split(list, ','))
        out.push_back(uarch::parseUArch(name));
    fatalIf(out.empty(), "empty uarch list");
    return out;
}

int
cmdCharacterize(const Args &args)
{
    const std::string *out_path = args.option("out");
    fatalIf(out_path == nullptr, "characterize: --out is required");

    std::vector<uarch::UArch> arches =
        args.option("arches") ? parseArches(*args.option("arches"))
                              : std::vector<uarch::UArch>{
                                    uarch::UArch::Nehalem,
                                    uarch::UArch::Skylake};

    core::BatchOptions options;
    options.num_threads =
        static_cast<size_t>(args.intOption("threads", 0));
    long mod = args.intOption("mod", 1);
    fatalIf(mod < 1, "--mod must be >= 1");
    if (mod > 1)
        options.characterizer.filter =
            [mod](const isa::InstrVariant &v) {
                return v.id() % mod == 0;
            };

    auto instrs = isa::buildDefaultDb();
    std::printf("characterizing %zu uarches (mod %ld)...\n",
                arches.size(), mod);

    // Results stream straight into the database while the sweep runs;
    // the full per-variant report is only retained when the XML
    // artifact was requested.
    const std::string *xml_path = args.option("xml");
    db::InstructionDatabase database;
    db::SweepIngestor ingestor(database);
    options.sink = &ingestor;
    options.keep_results = xml_path != nullptr;

    core::CharacterizationReport report =
        core::runBatchSweep(*instrs, arches, options);
    std::printf("%zu tasks, %zu failed\n", report.numTasks(),
                report.numFailed());

    if (xml_path != nullptr) {
        std::ofstream xml(*xml_path);
        xml << report.toXmlString();
        fatalIf(!xml, "cannot write ", *xml_path);
        std::printf("wrote %s\n", xml_path->c_str());
    }

    db::saveSnapshotFile(database, *out_path);
    std::printf("wrote %s (%zu records, %zu uarches)\n",
                out_path->c_str(), database.numRecords(),
                database.uarches().size());
    return 0;
}

int
cmdIngest(const Args &args)
{
    fatalIf(args.positional.size() != 1,
            "ingest: expected exactly one RESULTS.xml");
    const std::string *out_path = args.option("out");
    fatalIf(out_path == nullptr, "ingest: --out is required");

    std::ifstream in(args.positional[0]);
    fatalIf(!in, "cannot open ", args.positional[0]);
    std::ostringstream text;
    text << in.rdbuf();

    auto instrs = isa::buildDefaultDb();
    isa::ResultsDoc doc = isa::parseResultsXml(text.str());
    db::InstructionDatabase database;
    database.ingestResults(doc, instrs.get());
    db::saveSnapshotFile(database, *out_path);
    std::printf("wrote %s (%zu records from %zu uarches)\n",
                out_path->c_str(), database.numRecords(),
                doc.uarches.size());
    return 0;
}

int
cmdInfo(const Args &args)
{
    fatalIf(args.positional.size() != 1, "info: expected DB path");
    auto database = db::loadSnapshotFile(args.positional[0]);
    std::printf("%zu records\n", database->numRecords());
    for (uarch::UArch arch : database->uarches())
        std::printf("  %-4s %5zu records\n",
                    uarch::uarchShortName(arch).c_str(),
                    database->numRecords(arch));
    return 0;
}

int
cmdQuery(const Args &args)
{
    fatalIf(args.positional.size() != 1, "query: expected DB path");
    auto database = db::loadSnapshotFile(args.positional[0]);

    db::Query query;
    if (const std::string *v = args.option("uarch"))
        query.arch = uarch::parseUArch(*v);
    if (const std::string *v = args.option("name"))
        query.name = *v;
    if (const std::string *v = args.option("mnemonic"))
        query.mnemonic = *v;
    if (const std::string *v = args.option("extension"))
        query.extension = *v;
    if (const std::string *v = args.option("uses"))
        query.uses_ports = uarch::parsePortMask(*v);
    if (const std::string *v = args.option("tp-min")) {
        query.tp_min = parseDouble(*v);
        fatalIf(!query.tp_min, "option --tp-min expects a number, "
                               "got '", *v, "'");
    }
    if (const std::string *v = args.option("tp-max")) {
        query.tp_max = parseDouble(*v);
        fatalIf(!query.tp_max, "option --tp-max expects a number, "
                               "got '", *v, "'");
    }
    query.lat_min = args.option("lat-min")
                        ? std::optional<int>(static_cast<int>(
                              args.intOption("lat-min", 0)))
                        : std::nullopt;
    query.lat_max = args.option("lat-max")
                        ? std::optional<int>(static_cast<int>(
                              args.intOption("lat-max", 0)))
                        : std::nullopt;
    query.limit =
        static_cast<size_t>(args.intOption("limit", 1 << 20));

    std::vector<uint32_t> rows = database->search(query);
    std::printf("%zu match(es)\n", rows.size());
    for (uint32_t row : rows) {
        db::RecordView rec = database->record(row);
        std::printf("  %-4s %-24s %-6s tp=%-6s lat<=%-3d %s\n",
                    uarch::uarchShortName(rec.arch()).c_str(),
                    std::string(rec.name()).c_str(),
                    std::string(rec.extension()).c_str(),
                    rec.tpMeasured().str().c_str(),
                    rec.maxLatency(),
                    rec.portUsage().toString().c_str());
    }
    return 0;
}

int
cmdDiff(const Args &args)
{
    fatalIf(args.positional.size() != 3,
            "diff: expected DB ARCH_A ARCH_B");
    auto database = db::loadSnapshotFile(args.positional[0]);
    uarch::UArch a = uarch::parseUArch(args.positional[1]);
    uarch::UArch b = uarch::parseUArch(args.positional[2]);

    db::DiffResult diff = database->diff(a, b);
    std::printf("%zu shared variants, %zu changed, %zu only-%s, "
                "%zu only-%s\n",
                diff.common, diff.changed.size(), diff.only_a.size(),
                args.positional[1].c_str(), diff.only_b.size(),
                args.positional[2].c_str());
    for (const db::DiffEntry &entry : diff.changed) {
        db::RecordView rec_a = database->record(entry.row_a);
        db::RecordView rec_b = database->record(entry.row_b);
        std::printf("  %-24s", std::string(rec_a.name()).c_str());
        if (entry.tp_differs)
            std::printf("  tp %s -> %s",
                        rec_a.tpMeasured().str().c_str(),
                        rec_b.tpMeasured().str().c_str());
        if (entry.ports_differ)
            std::printf("  ports %s -> %s",
                        rec_a.portUsage().toString().c_str(),
                        rec_b.portUsage().toString().c_str());
        if (entry.latency_differs)
            std::printf("  latency differs");
        std::printf("\n");
    }
    return 0;
}

int
cmdServe(const Args &args)
{
    fatalIf(args.positional.size() != 1, "serve: expected DB path");
    auto database = db::loadSnapshotFile(args.positional[0]);
    auto instrs = isa::buildDefaultDb();

    server::QueryService service(*database, *instrs);
    server::HttpServer::Options options;
    options.port =
        static_cast<uint16_t>(args.intOption("port", 0));
    if (const std::string *address = args.option("address"))
        options.bind_address = *address;
    options.num_threads =
        static_cast<size_t>(args.intOption("threads", 0));

    server::HttpServer http(service, options);
    http.start();
    std::printf("serving %zu records on http://%s:%u/\n",
                database->numRecords(), options.bind_address.c_str(),
                http.port());
    std::printf("endpoints: /healthz /uarchs /instr/{name} /search "
                "/diff /predict /stats\n");
    std::fflush(stdout);

    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);
    while (!g_stop && http.running())
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
    http.stop();
    std::printf("stopped\n");
    return 0;
}

} // namespace

int
main(int argc, char **argv)
try {
    if (argc < 2)
        usage();
    std::string command = argv[1];
    Args args = parseArgs(argc, argv, 2);

    if (command == "characterize")
        return cmdCharacterize(args);
    if (command == "ingest")
        return cmdIngest(args);
    if (command == "info")
        return cmdInfo(args);
    if (command == "query")
        return cmdQuery(args);
    if (command == "diff")
        return cmdDiff(args);
    if (command == "serve")
        return cmdServe(args);
    usage();
} catch (const std::exception &e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
}
