/**
 * @file
 * uopsq — the end-to-end driver for the results-serving subsystem:
 * characterize → sharded catalog → serve → query, with incremental
 * re-sweeps and zero-restart reloads.
 *
 * Subcommands:
 *
 *   uopsq characterize --out DIR [--arches NHM,SKL | --uarch SKL]
 *                      [--threads N] [--mod N] [--xml RESULTS.xml]
 *                      [--progress]
 *       Run the batch sweep and write a sharded catalog (one shard
 *       file per uarch + generation manifest) under DIR. When DIR
 *       already holds a catalog this is an *incremental* sweep: only
 *       the listed uarches are re-characterized (default: all present)
 *       and their fresh shards are spliced into a new generation —
 *       untouched shards are not rewritten, just hash-verified.
 *       --progress registers per-uarch sweep counters in the global
 *       metrics registry and prints a throttled done/failed/rate line
 *       to stderr while the sweep runs.
 *
 *   uopsq ingest RESULTS.xml --out DIR
 *       Re-ingest a previously exported results XML (uopsInfo or
 *       uopsBatch root) into a catalog — the XML ingest path.
 *
 *   uopsq migrate V2.snap DIR
 *       Lossless legacy-monolith → sharded-catalog conversion: each
 *       shard is bit-identical to what a fresh sweep would write
 *       (v1 snapshots remain refused).
 *
 *   uopsq info PATH
 *       Print generation and per-shard record counts / content
 *       hashes. PATH may be a catalog dir or a legacy v2 snapshot.
 *
 *   uopsq query PATH [--uarch SKL] [--name N] [--mnemonic M]
 *                    [--extension E] [--uses p05] [--uses-only p015]
 *                    [--uses-exact p05] [--tp-min X] [--tp-max X]
 *                    [--lat-min N] [--lat-max N] [--uops-min N]
 *                    [--uops-max N] [--limit N]
 *       Scan-executor search; prints one line per matching record.
 *
 *   uopsq diff PATH ARCH_A ARCH_B
 *       Cross-uarch comparison of shared variants.
 *
 *   uopsq predict PATH --uarch SKL [--asm "ADD RAX, RBX; ..."]
 *                      [--file KERNEL.s]
 *       Simulate a basic block offline through the same code path
 *       /predict serves: cycle-level throughput, port pressure, and
 *       (where the catalog covers the kernel) the static analysis.
 *       The listing comes from --asm, --file, or stdin; ';' and
 *       newlines both separate instructions, '#' starts a comment.
 *       Prints the JSON response body; exits non-zero unless the
 *       prediction succeeded.
 *
 *   uopsq serve PATH [--port P] [--address A] [--threads N]
 *                    [--reactor-threads N] [--legacy-threaded]
 *                    [--load mmap|stream] [--watch SECONDS]
 *                    [--drain-ms MS] [--log-level LEVEL]
 *       Start the HTTP/1.1 JSON API (port 0 picks an ephemeral port;
 *       the chosen port is printed). Requests are served through the
 *       epoll reactor (--reactor-threads, default min(4, hardware))
 *       with precomputed response blobs; --legacy-threaded falls back
 *       to the thread-per-connection transport. Catalog shards are
 *       memory-mapped zero-copy by default. POST /reload hot-swaps to the current
 *       on-disk generation without dropping a request; --watch polls
 *       the manifest and reloads automatically when a characterize
 *       run publishes a new generation. SIGTERM/SIGINT drain
 *       gracefully: new connections are refused, in-flight responses
 *       are sent whole, and only after --drain-ms (default 5000) are
 *       stragglers forced. Catalog recovery (a corrupt newest
 *       generation falling back to an older verified one) is logged
 *       to stderr at startup and on every reload. serve runs at log
 *       level info by default (one structured JSON startup record,
 *       one access-log line per request on stderr); --log-level
 *       debug|info|warn|error adjusts it. GET /metrics serves the
 *       Prometheus-text exposition of the whole process.
 *
 *   Any command run with UOPS_TRACE=<file> in the environment writes
 *   a Chrome trace-event JSON file on exit (open in about:tracing or
 *   Perfetto): per-variant spans from characterize, per-request spans
 *   from serve.
 */

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <mutex>
#include <sstream>
#include <thread>

#include "core/batch.h"
#include "db/catalog.h"
#include "isa/parser.h"
#include "isa/results_xml.h"
#include "server/http_server.h"
#include "support/hash.h"
#include "support/obs/log.h"
#include "support/obs/metrics.h"
#include "support/status.h"
#include "support/strings.h"

namespace {

using namespace uops;

volatile std::sig_atomic_t g_stop = 0;

void
onSignal(int)
{
    g_stop = 1;
}

[[noreturn]] void
usage()
{
    std::fprintf(
        stderr,
        "usage: uopsq characterize --out DIR [--arches A,B | --uarch A]"
        " [--threads N] [--mod N] [--xml OUT] [--progress]\n"
        "       uopsq ingest RESULTS.xml --out DIR\n"
        "       uopsq migrate V2.snap DIR\n"
        "       uopsq info PATH\n"
        "       uopsq query PATH [filters...]\n"
        "       uopsq diff PATH ARCH_A ARCH_B\n"
        "       uopsq predict PATH --uarch A [--asm LISTING |"
        " --file KERNEL.s]\n"
        "       uopsq serve PATH [--port P] [--address A] [--threads N]"
        " [--reactor-threads N] [--legacy-threaded]"
        " [--load mmap|stream] [--watch SECONDS] [--drain-ms MS]"
        " [--log-level LEVEL]\n");
    std::exit(1);
}

/** Flag parser: positionals plus --key value options. */
struct Args
{
    std::vector<std::string> positional;
    std::map<std::string, std::string> options;

    const std::string *
    option(const std::string &key) const
    {
        auto it = options.find(key);
        return it == options.end() ? nullptr : &it->second;
    }

    long
    intOption(const std::string &key, long fallback) const
    {
        const std::string *text = option(key);
        if (text == nullptr)
            return fallback;
        auto value = parseInt(*text);
        fatalIf(!value, "option --", key, " expects an integer, got '",
                *text, "'");
        return *value;
    }
};

/** Options that are bare flags (present/absent, no value). */
bool
isBoolFlag(const std::string &key)
{
    return key == "progress" || key == "legacy-threaded";
}

Args
parseArgs(int argc, char **argv, int from)
{
    Args args;
    for (int i = from; i < argc; ++i) {
        std::string arg = argv[i];
        if (startsWith(arg, "--")) {
            std::string key = arg.substr(2);
            if (isBoolFlag(key)) {
                args.options[key] = "1";
                continue;
            }
            fatalIf(i + 1 >= argc, "option ", arg, " requires a value");
            args.options[key] = argv[++i];
        } else {
            args.positional.push_back(arg);
        }
    }
    return args;
}

std::vector<uarch::UArch>
parseArches(const std::string &list)
{
    std::vector<uarch::UArch> out;
    for (const std::string &name : split(list, ','))
        out.push_back(uarch::parseUArch(name));
    fatalIf(out.empty(), "empty uarch list");
    return out;
}

db::LoadMode
parseLoadMode(const Args &args)
{
    const std::string *mode = args.option("load");
    if (mode == nullptr || *mode == "mmap")
        return db::LoadMode::Mmap;
    fatalIf(*mode != "stream", "option --load expects mmap or stream, "
                               "got '", *mode, "'");
    return db::LoadMode::Stream;
}

int
cmdCharacterize(const Args &args)
{
    const std::string *out_dir = args.option("out");
    fatalIf(out_dir == nullptr, "characterize: --out is required");

    // An existing manifest makes this an incremental run: the base
    // generation's untouched shards are spliced through unchanged.
    std::shared_ptr<const db::DatabaseCatalog> base;
    if (db::readCatalogGeneration(*out_dir))
        base = db::loadCatalogDir(*out_dir);

    const std::string *arch_list = args.option("arches");
    if (arch_list == nullptr)
        arch_list = args.option("uarch");
    std::vector<uarch::UArch> arches;
    if (arch_list != nullptr) {
        arches = parseArches(*arch_list);
    } else if (base) {
        for (const db::ShardEntry &entry : base->shards())
            arches.push_back(entry.arch);
        fatalIf(arches.empty(), "characterize: existing catalog has "
                                "no shards and no --arches given");
    } else {
        arches = {uarch::UArch::Nehalem, uarch::UArch::Skylake};
    }

    core::BatchOptions options;
    options.num_threads =
        static_cast<size_t>(args.intOption("threads", 0));
    long mod = args.intOption("mod", 1);
    fatalIf(mod < 1, "--mod must be >= 1");
    if (mod > 1)
        options.characterizer.filter =
            [mod](const isa::InstrVariant &v) {
                return v.id() % mod == 0;
            };

    auto instrs = isa::buildDefaultDb();
    std::printf("%s %zu uarches (mod %ld)...\n",
                base ? "re-characterizing" : "characterizing",
                arches.size(), mod);

    // --progress: publish sweep counters to the global registry and
    // echo a throttled rate line. The counters are what a scraper of
    // a co-resident /metrics endpoint would see; the stderr line is
    // for a human watching the terminal.
    std::atomic<size_t> done{0};
    std::atomic<size_t> failed{0};
    std::mutex progress_mutex;
    auto sweep_start = std::chrono::steady_clock::now();
    auto last_print = sweep_start;
    if (args.option("progress") != nullptr) {
        options.metrics = &obs::Registry::global();
        options.on_variant_done = [&](uarch::UArch,
                                      const isa::InstrVariant &,
                                      bool ok) {
            size_t d = done.fetch_add(1) + 1;
            if (!ok)
                failed.fetch_add(1);
            std::lock_guard<std::mutex> lock(progress_mutex);
            auto now = std::chrono::steady_clock::now();
            if (now - last_print <
                std::chrono::milliseconds(500))
                return;
            last_print = now;
            double seconds =
                std::chrono::duration<double>(now - sweep_start)
                    .count();
            std::fprintf(stderr,
                         "progress: %zu done, %zu failed, "
                         "%.1f instr/s\n",
                         d, failed.load(),
                         seconds > 0 ? static_cast<double>(d) /
                                           seconds
                                     : 0.0);
        };
    }

    // Results stream straight into per-uarch shard databases while
    // the sweep runs; the full per-variant report is only retained
    // when the XML artifact was requested.
    const std::string *xml_path = args.option("xml");
    options.keep_results = xml_path != nullptr;

    core::CharacterizationReport report;
    auto catalog = db::runCatalogSweep(*instrs, arches, options,
                                       base.get(), &report);
    std::printf("%zu tasks, %zu failed\n", report.numTasks(),
                report.numFailed());

    if (xml_path != nullptr) {
        std::ofstream xml(*xml_path);
        xml << report.toXmlString();
        fatalIf(!xml, "cannot write ", *xml_path);
        std::printf("wrote %s\n", xml_path->c_str());
    }

    db::saveCatalogDir(*catalog, *out_dir);
    std::printf("wrote %s generation %llu (%zu records, %zu shards)\n",
                out_dir->c_str(),
                static_cast<unsigned long long>(
                    catalog->generation()),
                catalog->numRecords(), catalog->shards().size());
    return 0;
}

int
cmdIngest(const Args &args)
{
    fatalIf(args.positional.size() != 1,
            "ingest: expected exactly one RESULTS.xml");
    const std::string *out_dir = args.option("out");
    fatalIf(out_dir == nullptr, "ingest: --out is required");

    std::ifstream in(args.positional[0]);
    fatalIf(!in, "cannot open ", args.positional[0]);
    std::ostringstream text;
    text << in.rdbuf();

    auto instrs = isa::buildDefaultDb();
    isa::ResultsDoc doc = isa::parseResultsXml(text.str());
    db::InstructionDatabase database;
    database.ingestResults(doc, instrs.get());
    auto catalog = db::DatabaseCatalog::fromMonolith(database, 1);
    db::saveCatalogDir(*catalog, *out_dir);
    std::printf("wrote %s (%zu records from %zu uarches)\n",
                out_dir->c_str(), catalog->numRecords(),
                doc.uarches.size());
    return 0;
}

int
cmdMigrate(const Args &args)
{
    fatalIf(args.positional.size() != 2,
            "migrate: expected V2.snap and an output directory");
    db::migrateSnapshot(args.positional[0], args.positional[1]);
    auto catalog = db::loadCatalogDir(args.positional[1]);
    std::printf("migrated %s -> %s (%zu records, %zu shards)\n",
                args.positional[0].c_str(),
                args.positional[1].c_str(), catalog->numRecords(),
                catalog->shards().size());
    return 0;
}

int
cmdInfo(const Args &args)
{
    fatalIf(args.positional.size() != 1, "info: expected PATH");
    db::RecoveryReport report;
    auto catalog = db::openCatalog(args.positional[0],
                                   db::LoadMode::Mmap, &report);
    if (report.recovered || !report.events.empty())
        std::printf("recovery: %s\n", report.summary().c_str());
    std::printf("generation %llu, %zu records\n",
                static_cast<unsigned long long>(
                    catalog->generation()),
                catalog->numRecords());
    for (const db::ShardEntry &entry : catalog->shards())
        std::printf("  %-4s %5llu records  %s  %s\n",
                    uarch::uarchShortName(entry.arch).c_str(),
                    static_cast<unsigned long long>(entry.records),
                    hashHex(entry.hash).c_str(),
                    entry.file.c_str());
    return 0;
}

int
cmdQuery(const Args &args)
{
    fatalIf(args.positional.size() != 1, "query: expected PATH");
    auto catalog = db::openCatalog(args.positional[0]);

    db::Query query;
    if (const std::string *v = args.option("uarch"))
        query.arch = uarch::parseUArch(*v);
    if (const std::string *v = args.option("name"))
        query.name = *v;
    if (const std::string *v = args.option("mnemonic"))
        query.mnemonic = *v;
    if (const std::string *v = args.option("extension"))
        query.extension = *v;
    if (const std::string *v = args.option("uses"))
        query.uses_ports = uarch::parsePortMask(*v);
    if (const std::string *v = args.option("uses-only"))
        query.ports_subset = uarch::parsePortMask(*v);
    if (const std::string *v = args.option("uses-exact"))
        query.ports_exact = uarch::parsePortMask(*v);
    // Double-valued CLI bounds convert to fixed point exactly once,
    // here; Query carries Cycles.
    if (const std::string *v = args.option("tp-min")) {
        auto parsed = parseDouble(*v);
        fatalIf(!parsed, "option --tp-min expects a number, "
                         "got '", *v, "'");
        query.tp_min = db::tpBoundMin(*parsed);
    }
    if (const std::string *v = args.option("tp-max")) {
        auto parsed = parseDouble(*v);
        fatalIf(!parsed, "option --tp-max expects a number, "
                         "got '", *v, "'");
        query.tp_max = db::tpBoundMax(*parsed);
    }
    query.lat_min = args.option("lat-min")
                        ? std::optional<int>(static_cast<int>(
                              args.intOption("lat-min", 0)))
                        : std::nullopt;
    query.lat_max = args.option("lat-max")
                        ? std::optional<int>(static_cast<int>(
                              args.intOption("lat-max", 0)))
                        : std::nullopt;
    query.uops_min = args.option("uops-min")
                         ? std::optional<int>(static_cast<int>(
                               args.intOption("uops-min", 0)))
                         : std::nullopt;
    query.uops_max = args.option("uops-max")
                         ? std::optional<int>(static_cast<int>(
                               args.intOption("uops-max", 0)))
                         : std::nullopt;
    query.limit =
        static_cast<size_t>(args.intOption("limit", 1 << 20));

    std::vector<db::RecordView> records = catalog->search(query);
    std::printf("%zu match(es)\n", records.size());
    for (const db::RecordView &rec : records) {
        std::printf("  %-4s %-24s %-6s tp=%-6s lat<=%-3d %s\n",
                    uarch::uarchShortName(rec.arch()).c_str(),
                    std::string(rec.name()).c_str(),
                    std::string(rec.extension()).c_str(),
                    rec.tpMeasured().str().c_str(),
                    rec.maxLatency(),
                    rec.portUsage().toString().c_str());
    }
    return 0;
}

int
cmdDiff(const Args &args)
{
    fatalIf(args.positional.size() != 3,
            "diff: expected PATH ARCH_A ARCH_B");
    auto catalog = db::openCatalog(args.positional[0]);
    uarch::UArch a = uarch::parseUArch(args.positional[1]);
    uarch::UArch b = uarch::parseUArch(args.positional[2]);

    db::CatalogDiff diff = catalog->diff(a, b);
    std::printf("%zu shared variants, %zu changed, %zu only-%s, "
                "%zu only-%s\n",
                diff.common, diff.changed.size(), diff.only_a.size(),
                args.positional[1].c_str(), diff.only_b.size(),
                args.positional[2].c_str());
    for (const db::CatalogDiffEntry &entry : diff.changed) {
        std::printf("  %-24s", std::string(entry.a.name()).c_str());
        if (entry.tp_differs)
            std::printf("  tp %s -> %s",
                        entry.a.tpMeasured().str().c_str(),
                        entry.b.tpMeasured().str().c_str());
        if (entry.ports_differ)
            std::printf("  ports %s -> %s",
                        entry.a.portUsage().toString().c_str(),
                        entry.b.portUsage().toString().c_str());
        if (entry.latency_differs)
            std::printf("  latency differs");
        std::printf("\n");
    }
    return 0;
}

int
cmdPredict(const Args &args)
{
    fatalIf(args.positional.size() != 1, "predict: expected PATH");
    const std::string *arch = args.option("uarch");
    fatalIf(arch == nullptr, "predict: --uarch is required");

    std::string listing;
    if (const std::string *text = args.option("asm")) {
        listing = *text;
    } else if (const std::string *file = args.option("file")) {
        std::ifstream in(*file);
        fatalIf(!in, "cannot open ", *file);
        std::ostringstream text;
        text << in.rdbuf();
        listing = text.str();
    } else {
        std::ostringstream text;
        text << std::cin.rdbuf();
        listing = text.str();
    }

    auto instrs = isa::buildDefaultDb();
    server::QueryService service(
        db::openCatalog(args.positional[0], parseLoadMode(args)),
        *instrs);

    // Drive the exact request path the HTTP server serves, so the
    // offline tool can never drift from the service.
    server::HttpRequest request;
    request.method = "POST";
    request.path = "/predict";
    request.target = "/predict?uarch=" + *arch;
    request.query["uarch"] = *arch;
    request.body = std::move(listing);
    server::HttpResponse response = service.handle(request);
    std::printf("%s\n", response.body.c_str());
    return response.status == 200 ? 0 : 1;
}

int
cmdServe(const Args &args)
{
    fatalIf(args.positional.size() != 1, "serve: expected PATH");
    const std::string path = args.positional[0];
    const db::LoadMode mode = parseLoadMode(args);
    auto instrs = isa::buildDefaultDb();

    // Serving is the one mode where the structured access log earns
    // its cost: default to info (startup record + one line per
    // request on stderr) instead of the library-wide warn.
    server::QueryService::Options service_options;
    service_options.log_level = obs::LogLevel::Info;
    if (const std::string *level = args.option("log-level")) {
        auto parsed = obs::parseLogLevel(*level);
        fatalIf(!parsed, "option --log-level expects "
                         "debug|info|warn|error, got '", *level, "'");
        service_options.log_level = *parsed;
    }

    // The service owns the only long-lived handle: after a hot swap
    // the old generation (mmaps included) must be able to die with
    // its last in-flight request, so no local CatalogPtr may outlive
    // this scope.
    db::RecoveryReport open_report;
    server::QueryService service(
        db::openCatalog(path, mode, &open_report), *instrs,
        service_options);
    if (open_report.recovered || !open_report.events.empty()) {
        std::fprintf(stderr, "catalog recovery: %s\n",
                     open_report.summary().c_str());
        for (const std::string &event : open_report.events)
            std::fprintf(stderr, "  %s\n", event.c_str());
    }
    service.setReloader([path, mode](db::RecoveryReport &report) {
        auto next = db::openCatalog(path, mode, &report);
        if (report.recovered || !report.events.empty()) {
            std::fprintf(stderr, "catalog recovery: %s\n",
                         report.summary().c_str());
            for (const std::string &event : report.events)
                std::fprintf(stderr, "  %s\n", event.c_str());
        }
        return next;
    });

    server::HttpServer::Options options;
    options.port =
        static_cast<uint16_t>(args.intOption("port", 0));
    if (const std::string *address = args.option("address"))
        options.bind_address = *address;
    options.num_threads =
        static_cast<size_t>(args.intOption("threads", 0));
    options.reactor = args.option("legacy-threaded") == nullptr;
    long reactor_threads = args.intOption("reactor-threads", 0);
    fatalIf(reactor_threads < 0, "--reactor-threads must be >= 0");
    options.reactor_threads = static_cast<size_t>(reactor_threads);

    long watch_seconds = args.intOption("watch", 0);
    fatalIf(watch_seconds < 0, "--watch must be >= 0");
    long drain_ms = args.intOption("drain-ms", 5000);
    fatalIf(drain_ms < 0, "--drain-ms must be >= 0");

    server::HttpServer http(service, options);
    http.start();
    std::printf("serving %zu records (generation %llu) on "
                "http://%s:%u/\n",
                service.catalog()->numRecords(),
                static_cast<unsigned long long>(
                    service.catalog()->generation()),
                options.bind_address.c_str(), http.port());
    std::printf("endpoints: /healthz /uarchs /instr/{name} /search "
                "/diff /predict /reload /stats /metrics\n");
    // The machine-readable twin of the banner above: one structured
    // record with everything an operator needs to identify this
    // process in aggregated logs.
    service.logger()
        .event(obs::LogLevel::Info, "serve", "startup")
        .str("address", options.bind_address)
        .num("port", static_cast<uint64_t>(http.port()))
        .str("load_mode",
             mode == db::LoadMode::Mmap ? "mmap" : "stream")
        .num("generation", service.catalog()->generation())
        .num("records", static_cast<uint64_t>(
                            service.catalog()->numRecords()))
        .num("shards", static_cast<uint64_t>(
                           service.catalog()->shards().size()))
        .num("http_workers",
             static_cast<uint64_t>(http.numWorkers()))
        .str("transport", options.reactor ? "reactor" : "threaded")
        .num("drain_ms", static_cast<uint64_t>(drain_ms))
        .num("watch_seconds", static_cast<uint64_t>(watch_seconds));
    if (watch_seconds > 0)
        std::printf("watching %s every %lds for new generations\n",
                    path.c_str(), watch_seconds);
    std::fflush(stdout);

    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);
    auto last_poll = std::chrono::steady_clock::now();
    while (!g_stop && http.running()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
        if (watch_seconds <= 0)
            continue;
        auto now = std::chrono::steady_clock::now();
        if (now - last_poll < std::chrono::seconds(watch_seconds))
            continue;
        last_poll = now;
        // Cheap manifest-header peek; only a published newer
        // generation triggers the full reload + swap.
        auto on_disk = db::readCatalogGeneration(path);
        if (!on_disk ||
            *on_disk == service.catalog()->generation())
            continue;
        try {
            service.reload();
            std::printf("reloaded: generation %llu now serving\n",
                        static_cast<unsigned long long>(
                            service.catalog()->generation()));
            std::fflush(stdout);
        } catch (const std::exception &e) {
            // Keep serving the current generation; a publisher may
            // still be mid-write.
            std::fprintf(stderr, "reload failed: %s\n", e.what());
        }
    }
    // Graceful drain: stop accepting, let in-flight requests finish
    // whole (bounded by --drain-ms), then force whatever remains.
    bool clean = http.drain(std::chrono::milliseconds(drain_ms));
    std::printf(clean ? "stopped (drained cleanly)\n"
                      : "stopped (drain deadline hit, forced "
                        "remaining connections)\n");
    return 0;
}

} // namespace

int
main(int argc, char **argv)
try {
    if (argc < 2)
        usage();
    std::string command = argv[1];
    Args args = parseArgs(argc, argv, 2);

    if (command == "characterize")
        return cmdCharacterize(args);
    if (command == "ingest")
        return cmdIngest(args);
    if (command == "migrate")
        return cmdMigrate(args);
    if (command == "info")
        return cmdInfo(args);
    if (command == "query")
        return cmdQuery(args);
    if (command == "diff")
        return cmdDiff(args);
    if (command == "predict")
        return cmdPredict(args);
    if (command == "serve")
        return cmdServe(args);
    usage();
} catch (const std::exception &e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
}
