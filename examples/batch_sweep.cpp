/**
 * @file
 * Parallel batch characterization: sweep every measurable instruction
 * variant on several microarchitectures at once, using the
 * work-stealing thread pool, and emit one uops.info-style XML artifact
 * for all of them (Section 6.4 format, one <uopsInfo> per uarch).
 *
 * Usage: batch_sweep [THREADS [OUTPUT.xml [UARCH...]]]
 *   THREADS  worker count; 0 = one per hardware thread (default)
 *   e.g.  batch_sweep 8 all.xml NHM SNB HSW SKL
 *         batch_sweep 0 "" NHM SKL
 *
 * Exit status: 0 when every task succeeded, 2 when some variants
 * failed but others succeeded, 1 when nothing succeeded (or on a
 * usage/IO error).
 */

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "core/batch.h"
#include "isa/parser.h"

int
main(int argc, char **argv)
try {
    using namespace uops;

    size_t threads = 0;
    if (argc > 1) {
        char *end = nullptr;
        threads = std::strtoul(argv[1], &end, 10);
        if (end == argv[1] || *end != '\0') {
            std::fprintf(stderr, "error: invalid thread count '%s'\n",
                         argv[1]);
            return 1;
        }
    }
    std::string out_path = argc > 2 ? argv[2] : "";
    std::vector<uarch::UArch> arches;
    for (int i = 3; i < argc; ++i)
        arches.push_back(uarch::parseUArch(argv[i]));
    if (arches.empty())
        arches = {uarch::UArch::Nehalem, uarch::UArch::Skylake};

    auto db = isa::buildDefaultDb();

    std::atomic<size_t> done{0};
    std::atomic<size_t> failed{0};
    core::BatchOptions options;
    options.num_threads = threads;
    options.on_variant_done = [&](uarch::UArch, const isa::InstrVariant &,
                                  bool ok) {
        ++done;
        if (!ok)
            ++failed;
    };

    std::printf("batch sweep over %zu uarches:", arches.size());
    for (uarch::UArch arch : arches)
        std::printf(" %s", uarch::uarchShortName(arch).c_str());
    std::printf("\n");

    auto t0 = std::chrono::steady_clock::now();
    core::CharacterizationReport report =
        core::runBatchSweep(*db, arches, options);
    auto t1 = std::chrono::steady_clock::now();

    for (const core::UArchReport &r : report.uarches)
        std::printf("  %-4s %4zu variants characterized, %zu failed\n",
                    uarch::uarchShortName(r.arch).c_str(),
                    r.numSucceeded(), r.numFailed());
    std::printf("%zu tasks (%zu hook notifications, %zu hook failures) "
                "in %.1f s\n",
                report.numTasks(), done.load(), failed.load(),
                std::chrono::duration<double>(t1 - t0).count());

    if (!out_path.empty()) {
        std::ofstream out(out_path);
        out << report.toXmlString();
        out.flush();
        if (!out) {
            std::fprintf(stderr, "error: cannot write %s\n",
                         out_path.c_str());
            return 1;
        }
        std::printf("wrote %s\n", out_path.c_str());
    }
    if (report.numSucceeded() == 0)
        return 1;
    return report.numFailed() > 0 ? 2 : 0;
} catch (const std::exception &e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
}
