/**
 * @file
 * Quickstart: characterize a single instruction on one uarch.
 *
 * Demonstrates the public API end to end:
 *   1. build the instruction database (the XED-derived description),
 *   2. pick a microarchitecture,
 *   3. run the latency / port-usage / throughput analyses,
 *   4. print the results the way the paper's tables do.
 *
 * Usage: quickstart [UARCH [VARIANT]]
 *   e.g.  quickstart SKL AESDEC_X_X
 *         quickstart NHM PBLENDVB_X_X_Xi
 */

#include <cstdio>

#include "core/blocking.h"
#include "core/codegen.h"
#include "core/latency.h"
#include "core/port_usage.h"
#include "core/throughput.h"
#include "isa/parser.h"

int
main(int argc, char **argv)
{
    using namespace uops;

    std::string arch_name = argc > 1 ? argv[1] : "SKL";
    std::string variant_name = argc > 2 ? argv[2] : "AESDEC_X_X";

    // 1. The instruction set (Section 6.1's machine-readable DB).
    auto db = isa::buildDefaultDb();
    const isa::InstrVariant *variant = db->byName(variant_name);
    if (variant == nullptr) {
        std::fprintf(stderr, "unknown instruction variant '%s'\n",
                     variant_name.c_str());
        return 1;
    }

    // 2. The target microarchitecture and its measurement harness.
    uarch::UArch arch = uarch::parseUArch(arch_name);
    uarch::TimingDb timing(*db, arch);
    sim::MeasurementHarness harness(timing);
    std::printf("%s on %s (%s)\n\n", variant->name().c_str(),
                uarch::uarchName(arch).c_str(),
                uarch::uarchInfo(arch).processor.c_str());

    // 3a. Latency: one value per (source, destination) operand pair.
    auto instruments = core::calibrateInstruments(harness);
    core::LatencyAnalyzer lat(harness, instruments);
    auto latency = lat.analyze(*variant);
    std::printf("Latency (Section 5.2):\n");
    for (const auto &pair : latency.pairs) {
        std::printf("  lat(op%d -> op%d) %s %s cycles\n", pair.src_op,
                    pair.dst_op, pair.upper_bound ? "<=" : " =",
                    pair.cycles.str().c_str());
        for (const auto &[chain, value] : pair.per_chain)
            std::printf("      via %-12s %.2f\n", chain.c_str(), value);
    }
    if (latency.same_reg_cycles)
        std::printf("  same-register chain: %s cycles\n",
                    latency.same_reg_cycles->str().c_str());
    if (latency.store_roundtrip)
        std::printf("  store->load round trip: %s cycles\n",
                    latency.store_roundtrip->str().c_str());

    // 3b. Port usage via Algorithm 1.
    core::BlockingFinder finder(harness);
    auto sse_set = finder.find(false);
    auto avx_set =
        harness.info().hasExtension(isa::Extension::Avx)
            ? finder.find(true)
            : sse_set;
    core::PortUsageAnalyzer ports(harness, sse_set, avx_set);
    auto usage = ports.analyze(*variant, latency.maxLatency());
    std::printf("\nPort usage (Algorithm 1): %s  (%d uops, %d blocking "
                "measurements)\n",
                usage.usage.toString().c_str(), usage.usage.totalUops(),
                usage.measurements);

    // 3c. Throughput, both definitions.
    core::ThroughputAnalyzer tp(harness);
    auto throughput = tp.analyze(*variant);
    std::printf("\nThroughput (Section 5.3):\n");
    std::printf("  measured (Fog definition):      %s cycles/instr\n",
                throughput.measured.str().c_str());
    if (throughput.with_breakers)
        std::printf("  with dependency breakers:       %s\n",
                    throughput.with_breakers->str().c_str());
    if (throughput.slow_measured)
        std::printf("  slow divider values:            %s\n",
                    throughput.slow_measured->str().c_str());
    if (!variant->attrs().uses_divider && !usage.usage.entries.empty())
        std::printf("  computed from ports (Intel):    %.2f\n",
                    core::ThroughputAnalyzer::computeFromPortUsage(
                        usage.usage, harness.info().num_ports));
    return 0;
}
