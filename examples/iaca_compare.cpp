/**
 * @file
 * Hardware-vs-IACA diff report (the workflow behind Table 1 and
 * Section 7.2): characterize a slice of the instruction set on the
 * simulated hardware, analyze the same instructions with every
 * supported IACA version, and print each disagreement.
 *
 * Usage: iaca_compare [UARCH [MNEMONIC_PREFIX]]
 *   e.g.  iaca_compare SKL V
 *         iaca_compare NHM IMUL
 */

#include <cstdio>

#include "core/characterize.h"
#include "isa/parser.h"
#include "support/strings.h"

int
main(int argc, char **argv)
{
    using namespace uops;

    std::string arch_name = argc > 1 ? argv[1] : "SKL";
    std::string prefix = argc > 2 ? argv[2] : "B";

    auto db = isa::buildDefaultDb();
    uarch::UArch arch = uarch::parseUArch(arch_name);
    auto versions = iaca::versionsFor(arch);
    if (versions.empty()) {
        std::printf("IACA does not support %s (like the real tool for "
                    "Kaby/Coffee Lake)\n",
                    uarch::uarchName(arch).c_str());
        return 0;
    }

    core::Characterizer::Options options;
    options.filter = [&](const isa::InstrVariant &v) {
        return startsWith(v.name(), prefix);
    };
    core::Characterizer tool(*db, arch, options);
    auto set = tool.run();

    std::printf("%-22s %-22s", "variant", "hardware");
    for (auto v : versions)
        std::printf(" %-16s",
                    ("IACA " + iaca::versionName(v)).c_str());
    std::printf("\n");

    int diffs = 0;
    for (const auto &c : set.instrs) {
        std::string hw = c.ports.usage.toString();
        std::vector<std::string> cols;
        bool differs = false;
        for (auto ver : versions) {
            iaca::IacaAnalyzer an(*db, arch, ver);
            auto m = an.model(*c.variant);
            std::string s = m.usage.toString();
            if (m.total_uops != c.ports.usage.totalUops())
                s += "(" + std::to_string(m.total_uops) + "u)";
            if (s != hw)
                differs = true;
            cols.push_back(s);
        }
        if (!differs)
            continue;
        ++diffs;
        std::printf("%-22s %-22s", c.variant->name().c_str(),
                    hw.c_str());
        for (const auto &s : cols)
            std::printf(" %-16s", s.c_str());
        std::printf("\n");
    }
    std::printf("\n%d of %zu variants differ from at least one IACA "
                "version\n",
                diffs, set.instrs.size());

    auto cmp = core::compareWithIaca(*db, set);
    std::printf("agreement on this slice: µop counts %.2f%%, port usage "
                "%.2f%%\n",
                cmp.uopsAgreement(), cmp.portsAgreement());
    return 0;
}
