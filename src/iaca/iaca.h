/**
 * @file
 * IACA clone: a static loop-kernel analyzer with versioned defects.
 *
 * The paper runs every generated microbenchmark both on hardware and
 * on top of Intel IACA 2.1/2.2/2.3/3.0, then quantifies agreement
 * (Table 1) and documents IACA's defects (Section 7.2). Since IACA is
 * closed source, this project substitutes a clone that reproduces the
 * *kinds* and *rates* of those defects through an explicit, versioned
 * bug registry:
 *
 *  - missing load µops for some memory-reading instructions
 *    (IMUL mem on Nehalem);
 *  - spurious store-address/store-data µops (TEST mem, R on Nehalem);
 *  - per-width blind spots (BSWAP r32 reported with the r64 µops on
 *    Skylake);
 *  - a total-µop vs per-port-sum mismatch for VHADDPD on Skylake;
 *  - version-specific port sets (VMINPS p015 in "2.3" but p01 in
 *    "3.0"; SAHF p06 in "2.1" but p0156 in "2.2"+ on Haswell);
 *  - ignored status-flag dependencies in "3.0" (CMC throughput 0.25)
 *    and ignored memory dependencies in all versions (store+load
 *    round trip reported as throughput 1);
 *  - latency analysis only in "2.1" (dropped later, as in IACA 2.2),
 *    with memory-operand latencies obtained by adding the load
 *    latency to the full register latency (AESDEC mem: 13);
 *  - REP- and LOCK-prefixed instructions with wrong µop counts;
 *  - plus a deterministic, seeded background perturbation calibrated
 *    so the agreement rates land in the bands of Table 1.
 */

#ifndef UOPS_IACA_IACA_H
#define UOPS_IACA_IACA_H

#include <array>
#include <optional>

#include "isa/kernel.h"
#include "uarch/timing_db.h"
#include "uarch/uarch.h"

namespace uops::iaca {

/** Modeled IACA releases. */
enum class Version { V21, V22, V23, V30 };

/** "2.1" etc. */
std::string versionName(Version v);

/** All versions, oldest first. */
const std::vector<Version> &allVersions();

/** Versions supporting a microarchitecture (Table 1, column 4). */
std::vector<Version> versionsFor(uarch::UArch arch);

/** The clone's per-instruction model (post bug registry). */
struct IacaInstrModel
{
    int total_uops = 0;            ///< reported total µop count
    uarch::PortUsage usage;        ///< reported port usage
    std::optional<int> latency;    ///< only in V21
};

/** Report for a loop kernel. */
struct IacaReport
{
    double block_throughput = 0.0;
    std::array<double, 8> port_pressure{};
    int total_uops = 0;
    std::optional<double> latency; ///< V21 only
    std::vector<IacaInstrModel> instrs;
};

/**
 * The analyzer: one instance per (uarch, version).
 */
class IacaAnalyzer
{
  public:
    IacaAnalyzer(const isa::InstrDb &db, uarch::UArch arch, Version v);

    uarch::UArch arch() const { return arch_; }
    Version version() const { return version_; }

    /** False when this version does not support the uarch. */
    bool supported() const;

    /** The (possibly wrong) model for one instruction variant. */
    IacaInstrModel model(const isa::InstrVariant &variant) const;

    /** Analyze a kernel as a loop body (averages per iteration). */
    IacaReport analyzeLoop(const isa::Kernel &kernel) const;

  private:
    const isa::InstrDb &db_;
    uarch::UArch arch_;
    Version version_;
    uarch::TimingDb timing_;
};

} // namespace uops::iaca

#endif // UOPS_IACA_IACA_H
