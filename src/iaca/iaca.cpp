#include "iaca.h"

#include <algorithm>
#include <cmath>

#include "lp/simplex.h"
#include "support/status.h"
#include "support/strings.h"

namespace uops::iaca {

using isa::InstrInstance;
using isa::InstrVariant;
using isa::Kernel;
using uarch::PortMask;
using uarch::PortUsage;
using uarch::UArch;

std::string
versionName(Version v)
{
    switch (v) {
      case Version::V21: return "2.1";
      case Version::V22: return "2.2";
      case Version::V23: return "2.3";
      case Version::V30: return "3.0";
    }
    return "?";
}

const std::vector<Version> &
allVersions()
{
    static const std::vector<Version> all = {Version::V21, Version::V22,
                                             Version::V23, Version::V30};
    return all;
}

std::vector<Version>
versionsFor(UArch arch)
{
    // Table 1, column 4.
    switch (arch) {
      case UArch::Nehalem:
      case UArch::Westmere:
        return {Version::V21, Version::V22};
      case UArch::SandyBridge:
      case UArch::IvyBridge:
        return {Version::V21, Version::V22, Version::V23};
      case UArch::Haswell:
        return {Version::V21, Version::V22, Version::V23, Version::V30};
      case UArch::Broadwell:
        return {Version::V22, Version::V23, Version::V30};
      case UArch::Skylake:
        return {Version::V23, Version::V30};
      case UArch::KabyLake:
      case UArch::CoffeeLake:
        return {}; // no IACA support (Section 2.1)
    }
    return {};
}

namespace {

/** Deterministic hash for the background-perturbation registry. */
uint64_t
fnv(const std::string &s)
{
    uint64_t h = 1469598103934665603ULL;
    for (char c : s) {
        h ^= static_cast<unsigned char>(c);
        h *= 1099511628211ULL;
    }
    return h;
}

/** Per-uarch background disagreement rates, per mille, calibrated to
 *  land the agreement percentages within the bands of Table 1. */
struct PerturbRates
{
    int uop_rate;  ///< µop-count disagreements
    int port_rate; ///< port-usage disagreements (same-count variants)
};

PerturbRates
ratesFor(UArch arch)
{
    switch (arch) {
      case UArch::Nehalem: return {86, 47};
      case UArch::Westmere: return {87, 54};
      case UArch::SandyBridge: return {68, 18};
      case UArch::IvyBridge: return {86, 26};
      case UArch::Haswell: return {69, 36};
      case UArch::Broadwell: return {72, 74};
      case UArch::Skylake: return {77, 90};
      default: return {0, 0};
    }
}

/** ALU mask used when the perturbation invents an extra µop. */
PortMask
aluMask(UArch arch)
{
    bool big = static_cast<int>(arch) >= static_cast<int>(UArch::Haswell);
    return big ? uarch::portMask({0, 1, 5, 6})
               : uarch::portMask({0, 1, 5});
}

/** Change one port in the first usage entry (deterministically). */
void
perturbPorts(PortUsage &usage)
{
    if (usage.entries.empty())
        return;
    auto [mask, count] = usage.entries.front();
    usage.entries.erase(usage.entries.begin());
    auto ports = uarch::portsOf(mask);
    PortMask new_mask;
    if (ports.size() > 1) {
        new_mask = static_cast<PortMask>(
            mask & ~static_cast<PortMask>(1u << ports.front()));
    } else {
        int p = (ports.front() + 1) % 6;
        new_mask = static_cast<PortMask>(
            mask | static_cast<PortMask>(1u << p));
    }
    usage.add(new_mask, count);
}

} // namespace

IacaAnalyzer::IacaAnalyzer(const isa::InstrDb &db, UArch arch, Version v)
    : db_(db), arch_(arch), version_(v), timing_(db, arch)
{
}

bool
IacaAnalyzer::supported() const
{
    auto versions = versionsFor(arch_);
    return std::find(versions.begin(), versions.end(), version_) !=
           versions.end();
}

IacaInstrModel
IacaAnalyzer::model(const InstrVariant &variant) const
{
    const uarch::TimingInfo &truth = timing_.timing(variant);
    IacaInstrModel m;
    m.usage = PortUsage::ofTiming(truth.uops);
    m.total_uops = truth.numUops();

    const uarch::UArchInfo &info = uarch::uarchInfo(arch_);
    const std::string &name = variant.name();
    bool nhm_like =
        arch_ == UArch::Nehalem || arch_ == UArch::Westmere;
    bool skl_like =
        static_cast<int>(arch_) >= static_cast<int>(UArch::Skylake);

    // ---- named defect registry (Section 7.2) -----------------------
    // IMUL with a memory operand on Nehalem: the load µop is missing.
    if (nhm_like && variant.mnemonic() == "IMUL" &&
        variant.readsMemory()) {
        for (auto it = m.usage.entries.begin();
             it != m.usage.entries.end(); ++it) {
            if (it->first == info.load_ports) {
                if (--it->second == 0)
                    m.usage.entries.erase(it);
                --m.total_uops;
                break;
            }
        }
    }
    // TEST mem, R on Nehalem: spurious store-address/store-data µops.
    if (nhm_like && variant.mnemonic() == "TEST" &&
        variant.readsMemory()) {
        m.usage.add(info.store_addr_ports, 1);
        m.usage.add(info.store_data_ports, 1);
        m.total_uops += 2;
    }
    // BSWAP r32 on Skylake: reported with the 64-bit variant's µops.
    if (skl_like && name == "BSWAP_R32") {
        const InstrVariant *wide = db_.byName("BSWAP_R64");
        if (wide != nullptr) {
            const auto &wt = timing_.timing(*wide);
            m.usage = PortUsage::ofTiming(wt.uops);
            m.total_uops = wt.numUops();
        }
    }
    // VHADDPD on Skylake: total says 3 µops, the per-port view shows
    // only one (sum mismatch).
    if (skl_like && variant.mnemonic() == "VHADDPD") {
        m.total_uops = 3;
        PortUsage only;
        only.add(uarch::portMask({0, 1}), 1);
        m.usage = only;
    }
    // VMINPS on Skylake: "2.3" claims p015; "3.0" (and hardware) p01.
    if (skl_like && variant.mnemonic() == "VMINPS" &&
        version_ == Version::V23) {
        PortUsage fixed;
        for (auto [mask, count] : m.usage.entries) {
            if (mask == uarch::portMask({0, 1}))
                mask = uarch::portMask({0, 1, 5});
            fixed.add(mask, count);
        }
        m.usage = fixed;
    }
    // SAHF on Haswell: p06 on hardware and in "2.1"; "2.2"+ adds
    // ports 1 and 5.
    if ((arch_ == UArch::Haswell || arch_ == UArch::Broadwell) &&
        variant.mnemonic() == "SAHF" && version_ != Version::V21) {
        PortUsage fixed;
        for (auto [mask, count] : m.usage.entries) {
            if (mask == uarch::portMask({0, 6}))
                mask = uarch::portMask({0, 1, 5, 6});
            fixed.add(mask, count);
        }
        m.usage = fixed;
    }
    // LOCK-prefixed: µop counts differ from measurements in most cases.
    if (variant.attrs().has_lock_prefix) {
        m.total_uops = std::max(1, m.total_uops - 2);
        PortUsage shrunk;
        int left = m.total_uops;
        for (auto [mask, count] : m.usage.entries) {
            int take = std::min(count, left);
            if (take > 0)
                shrunk.add(mask, take);
            left -= take;
        }
        m.usage = shrunk;
    }
    // REP-prefixed: fixed count regardless of the actual iteration
    // behaviour.
    if (variant.attrs().has_rep_prefix) {
        m.total_uops = 5;
        PortUsage rep;
        rep.add(aluMask(arch_), 5);
        m.usage = rep;
    }

    // ---- background perturbation (keyed by name+uarch, shared by
    //      all versions so "any version agrees" still fails) ---------
    PerturbRates rates = ratesFor(arch_);
    uint64_t h = fnv(name + "/" + info.short_name);
    if (static_cast<int>(h % 1000) < rates.uop_rate) {
        m.total_uops += 1;
        m.usage.add(aluMask(arch_), 1);
    } else if (static_cast<int>((h >> 16) % 1000) < rates.port_rate) {
        perturbPorts(m.usage);
    }

    // ---- latency (reported by "2.1" only; single value, no pairs,
    //      memory latency = register latency + load latency) ---------
    if (version_ == Version::V21) {
        int lat = truth.maxLatency();
        if (variant.extension() == isa::Extension::Aes &&
            (arch_ == UArch::SandyBridge || arch_ == UArch::IvyBridge)) {
            // IACA 2.1 modeled AES* with 7 cycles (Section 7.3.1).
            lat = 7;
            if (variant.readsMemory())
                lat = 7 + info.vec_load_latency; // "13 cycles"
        } else if (variant.readsMemory()) {
            int reg_lat = 1;
            for (const auto &u : truth.uops)
                if (u.domain != uarch::Domain::Load)
                    for (size_t w = 0; w < u.writes.size(); ++w)
                        reg_lat = std::max(
                            reg_lat, u.writeLatency(w, false));
            int load_lat = variant.hasVecOperand()
                               ? info.vec_load_latency
                               : info.gpr_load_latency;
            lat = reg_lat + load_lat;
        }
        m.latency = lat;
    }
    return m;
}

IacaReport
IacaAnalyzer::analyzeLoop(const Kernel &kernel) const
{
    IacaReport report;

    // Aggregate reported port usage over the loop body.
    PortUsage total_usage;
    for (const InstrInstance &inst : kernel) {
        IacaInstrModel m = model(*inst.variant);
        report.total_uops += m.total_uops;
        for (const auto &[mask, count] : m.usage.entries)
            total_usage.add(mask, count);
        report.instrs.push_back(std::move(m));
    }

    // Distribute µops to ports (the LP of Section 5.3.2, but here used
    // the way IACA presents per-port pressure).
    const int num_ports = uarch::uarchInfo(arch_).num_ports;
    std::vector<std::pair<std::vector<int>, int>> lp_usage;
    for (const auto &[mask, count] : total_usage.entries)
        lp_usage.emplace_back(uarch::portsOf(mask), count);
    auto dist = lp::minMaxPortLoadDistribution(
        static_cast<size_t>(num_ports), lp_usage);
    for (size_t p = 0;
         p < dist.per_port.size() && p < report.port_pressure.size();
         ++p)
        report.port_pressure[p] = dist.per_port[p];

    double port_bound = dist.bottleneck;

    // Loop-carried dependency bound. IACA ignores memory dependencies
    // entirely, and "3.0" also ignores status-flag dependencies
    // (Section 7.2); no per-pair latency differences are modeled.
    double dep_bound = 0.0;
    {
        // Two dataflow passes over the body; the per-unit time growth
        // between the passes is the loop-carried dependency bound.
        double max_growth = 0.0;
        std::map<int, double> t1;
        auto run_pass = [&](std::map<int, double> &times) {
            for (size_t i = 0; i < kernel.size(); ++i) {
                const InstrInstance &inst = kernel[i];
                const InstrVariant &v = *inst.variant;
                double lat = report.instrs[i].latency.value_or(
                    timing_.timing(v).maxLatency());
                double ready = 0.0;
                auto units_of = [&](int op_idx, bool read) {
                    std::vector<int> units;
                    const auto &spec =
                        v.operand(static_cast<size_t>(op_idx));
                    if (spec.kind == isa::OpKind::Reg) {
                        units.push_back(isa::regUnit(
                            inst.regOf(static_cast<size_t>(op_idx))));
                    } else if (spec.kind == isa::OpKind::Flags &&
                               version_ != Version::V30) {
                        const auto &mask = read ? spec.flags_read
                                                : spec.flags_written;
                        for (int u : mask.units())
                            units.push_back(u);
                    }
                    return units;
                };
                for (int s : v.sourceOperands())
                    for (int u : units_of(s, true))
                        if (times.count(u))
                            ready = std::max(ready, times[u]);
                double done = ready + lat;
                for (int d : v.destOperands())
                    for (int u : units_of(d, false))
                        times[u] = done;
            }
        };
        run_pass(t1);
        std::map<int, double> t2 = t1;
        run_pass(t2);
        for (const auto &[u, tv] : t2) {
            auto it = t1.find(u);
            if (it != t1.end())
                max_growth = std::max(max_growth, tv - it->second);
        }
        dep_bound = max_growth;
    }

    report.block_throughput = std::max(port_bound, dep_bound);

    if (version_ == Version::V21) {
        double lat_sum = 0.0;
        for (const auto &m : report.instrs)
            lat_sum += m.latency.value_or(1);
        report.latency = lat_sum;
    }
    return report;
}

} // namespace uops::iaca
