#include "operand.h"

#include "support/status.h"

namespace uops::isa {

int
OperandSpec::effectiveWidth() const
{
    if (kind == OpKind::Reg)
        return regClassWidth(reg_class);
    return width;
}

std::string
OperandSpec::toString() const
{
    std::string access;
    if (read)
        access += "r";
    if (written)
        access += "w";
    if (access.empty())
        access = "-";

    std::string base;
    switch (kind) {
      case OpKind::Reg:
        base = regClassName(reg_class);
        if (fixed_reg >= 0)
            base += "=" + regName(Reg{reg_class, fixed_reg});
        break;
      case OpKind::Mem:
        base = "M" + std::to_string(width);
        break;
      case OpKind::Imm:
        return "I" + std::to_string(width);
      case OpKind::Flags: {
        std::string out = "FLAGS";
        if (flags_read.any())
            out += ":r=" + flags_read.toString();
        if (flags_written.any())
            out += ":w=" + flags_written.toString();
        return out;
      }
    }
    std::string out = base + ":" + access;
    if (implicit)
        out = "*" + out;
    return out;
}

std::string
OperandSpec::typeTag() const
{
    switch (kind) {
      case OpKind::Reg:
        switch (reg_class) {
          case RegClass::Gpr8: return "R8";
          case RegClass::Gpr8High: return "R8H";
          case RegClass::Gpr16: return "R16";
          case RegClass::Gpr32: return "R32";
          case RegClass::Gpr64: return "R64";
          case RegClass::Mmx: return "MM";
          case RegClass::Xmm: return "X";
          case RegClass::Ymm: return "Y";
          case RegClass::None: break;
        }
        panic("typeTag: invalid register class");
      case OpKind::Mem:
        return "M" + std::to_string(width);
      case OpKind::Imm:
        return "I" + std::to_string(width);
      case OpKind::Flags:
        return "F";
    }
    panic("typeTag: unreachable");
}

} // namespace uops::isa
