/**
 * @file
 * Parser for the XED-style instruction-table DSL.
 *
 * The paper extracts its machine-readable instruction description from
 * the configuration files of Intel XED (Section 6.1). This project uses
 * a table format playing the same role: one line per instruction
 * variant, listing operands with kinds/widths/access, implicit fixed
 * registers, flag effects, ISA extension, and attributes.
 *
 * Grammar (per non-comment line, whitespace separated):
 *
 *   MNEMONIC operand... [rflags:L] [wflags:L] [rwflags:L]
 *            [ext=EXT] [attr=a,b,...]
 *
 * Operand tokens:
 *   [*]KIND[=FIXEDREG]:ACCESS      for register/memory operands
 *   immN                           for immediates (always read)
 *
 *   KIND   := reg8 | reg8h | reg16 | reg32 | reg64 | mmx | xmm | ymm
 *           | mem8 | mem16 | mem32 | mem64 | mem128 | mem256
 *   ACCESS := r | w | rw
 *   '*'    marks an implicit operand; '=FIXEDREG' pins it (implies '*').
 *
 * Flag letters: C (carry), A (adjust), and S/P/Z/O (the renamed-together
 * SF/PF/ZF/OF group). All flags tokens merge into one implicit flags
 * pseudo-operand.
 *
 * Attributes: div, system, serialize, branch, pause, nop, zeroidiom,
 * depbreak, movelim, lock, rep, avx.
 */

#ifndef UOPS_ISA_PARSER_H
#define UOPS_ISA_PARSER_H

#include <string>

#include "isa/instruction.h"

namespace uops::isa {

/**
 * Parse instruction-table text into @p db.
 *
 * @param text  DSL text (possibly many lines, '#' comments allowed).
 * @param db    Database receiving the parsed variants.
 * @return Number of variants added.
 * @throws FatalError on malformed input.
 */
size_t parseInstrTable(const std::string &text, InstrDb &db);

/**
 * Build the full bundled instruction database (the project's substitute
 * for parsing the XED configuration files).
 */
std::unique_ptr<InstrDb> buildDefaultDb();

/** The bundled instruction-table text (embedded DSL source). */
const std::string &defaultInstrTableText();

} // namespace uops::isa

#endif // UOPS_ISA_PARSER_H
