/**
 * @file
 * Bundled instruction-table text (the XED-configuration substitute).
 *
 * One line per instruction variant; see parser.h for the grammar.
 * The set mirrors the structure of the x86 instruction set as covered
 * by the paper: general-purpose ALU/shift/multiply/divide instructions
 * in all widths and operand forms (register, immediate, memory), the
 * MMX/SSE/AVX vector families including the case-study instructions
 * (AESDEC, SHLD, MOVQ2DQ, MOVDQ2Q, PBLENDVB, VHADDPD, ...), implicit
 * operands (flags, fixed registers), and the excluded classes (system,
 * serializing, REP/LOCK-prefixed, register-based control flow).
 *
 * Extensions gate per-microarchitecture availability, so the variant
 * count grows from Nehalem to Coffee Lake exactly as in Table 1.
 */

#include "parser.h"

namespace uops::isa {

namespace {

// --------------------------------------------------------------------
// General-purpose integer ALU.
// --------------------------------------------------------------------
const char *const kGpAlu = R"TBL(
# Two-operand ALU: reg-reg, reg-imm, reg-mem, mem-reg for all widths.
ADD  reg8:rw reg8:r    wflags:CAZSPO
ADD  reg16:rw reg16:r  wflags:CAZSPO
ADD  reg32:rw reg32:r  wflags:CAZSPO
ADD  reg64:rw reg64:r  wflags:CAZSPO
ADD  reg8:rw imm8      wflags:CAZSPO
ADD  reg16:rw imm16    wflags:CAZSPO
ADD  reg32:rw imm32    wflags:CAZSPO
ADD  reg64:rw imm32    wflags:CAZSPO
ADD  reg8:rw mem8:r    wflags:CAZSPO
ADD  reg16:rw mem16:r  wflags:CAZSPO
ADD  reg32:rw mem32:r  wflags:CAZSPO
ADD  reg64:rw mem64:r  wflags:CAZSPO
ADD  mem8:rw reg8:r    wflags:CAZSPO
ADD  mem16:rw reg16:r  wflags:CAZSPO
ADD  mem32:rw reg32:r  wflags:CAZSPO
ADD  mem64:rw reg64:r  wflags:CAZSPO
SUB  reg8:rw reg8:r    wflags:CAZSPO attr=zeroidiom
SUB  reg16:rw reg16:r  wflags:CAZSPO attr=zeroidiom
SUB  reg32:rw reg32:r  wflags:CAZSPO attr=zeroidiom
SUB  reg64:rw reg64:r  wflags:CAZSPO attr=zeroidiom
SUB  reg32:rw imm32    wflags:CAZSPO
SUB  reg64:rw imm32    wflags:CAZSPO
SUB  reg32:rw mem32:r  wflags:CAZSPO
SUB  reg64:rw mem64:r  wflags:CAZSPO
SUB  mem32:rw reg32:r  wflags:CAZSPO
SUB  mem64:rw reg64:r  wflags:CAZSPO
AND  reg8:rw reg8:r    wflags:CZSPO
AND  reg16:rw reg16:r  wflags:CZSPO
AND  reg32:rw reg32:r  wflags:CZSPO
AND  reg64:rw reg64:r  wflags:CZSPO
AND  reg32:rw imm32    wflags:CZSPO
AND  reg64:rw imm32    wflags:CZSPO
AND  reg32:rw mem32:r  wflags:CZSPO
AND  reg64:rw mem64:r  wflags:CZSPO
AND  mem64:rw reg64:r  wflags:CZSPO
OR   reg8:rw reg8:r    wflags:CZSPO
OR   reg16:rw reg16:r  wflags:CZSPO
OR   reg32:rw reg32:r  wflags:CZSPO
OR   reg64:rw reg64:r  wflags:CZSPO
OR   reg32:rw imm32    wflags:CZSPO
OR   reg64:rw imm32    wflags:CZSPO
OR   reg32:rw mem32:r  wflags:CZSPO
OR   reg64:rw mem64:r  wflags:CZSPO
OR   mem64:rw reg64:r  wflags:CZSPO
XOR  reg8:rw reg8:r    wflags:CZSPO attr=zeroidiom
XOR  reg16:rw reg16:r  wflags:CZSPO attr=zeroidiom
XOR  reg32:rw reg32:r  wflags:CZSPO attr=zeroidiom
XOR  reg64:rw reg64:r  wflags:CZSPO attr=zeroidiom
XOR  reg32:rw imm32    wflags:CZSPO
XOR  reg64:rw imm32    wflags:CZSPO
XOR  reg32:rw mem32:r  wflags:CZSPO
XOR  reg64:rw mem64:r  wflags:CZSPO
XOR  mem64:rw reg64:r  wflags:CZSPO
CMP  reg8:r reg8:r     wflags:CAZSPO
CMP  reg16:r reg16:r   wflags:CAZSPO
CMP  reg32:r reg32:r   wflags:CAZSPO
CMP  reg64:r reg64:r   wflags:CAZSPO
CMP  reg32:r imm32     wflags:CAZSPO
CMP  reg64:r imm32     wflags:CAZSPO
CMP  reg32:r mem32:r   wflags:CAZSPO
CMP  reg64:r mem64:r   wflags:CAZSPO
CMP  mem64:r reg64:r   wflags:CAZSPO
TEST reg8:r reg8:r     wflags:CZSPO
TEST reg16:r reg16:r   wflags:CZSPO
TEST reg32:r reg32:r   wflags:CZSPO
TEST reg64:r reg64:r   wflags:CZSPO
TEST reg64:r imm32     wflags:CZSPO
TEST mem32:r reg32:r   wflags:CZSPO
TEST mem64:r reg64:r   wflags:CZSPO
# Carry-consuming ALU (implicit CF input; multi-latency case study).
ADC  reg8:rw reg8:r    rflags:C wflags:CAZSPO
ADC  reg16:rw reg16:r  rflags:C wflags:CAZSPO
ADC  reg32:rw reg32:r  rflags:C wflags:CAZSPO
ADC  reg64:rw reg64:r  rflags:C wflags:CAZSPO
ADC  reg32:rw imm32    rflags:C wflags:CAZSPO
ADC  reg64:rw imm32    rflags:C wflags:CAZSPO
ADC  reg64:rw mem64:r  rflags:C wflags:CAZSPO
ADC  mem64:rw reg64:r  rflags:C wflags:CAZSPO
SBB  reg8:rw reg8:r    rflags:C wflags:CAZSPO
SBB  reg16:rw reg16:r  rflags:C wflags:CAZSPO
SBB  reg32:rw reg32:r  rflags:C wflags:CAZSPO
SBB  reg64:rw reg64:r  rflags:C wflags:CAZSPO
SBB  reg64:rw imm32    rflags:C wflags:CAZSPO
SBB  reg64:rw mem64:r  rflags:C wflags:CAZSPO
# One-operand ALU. INC/DEC leave CF untouched (partial flag update).
INC  reg8:rw   wflags:AZSPO
INC  reg16:rw  wflags:AZSPO
INC  reg32:rw  wflags:AZSPO
INC  reg64:rw  wflags:AZSPO
INC  mem64:rw  wflags:AZSPO
DEC  reg8:rw   wflags:AZSPO
DEC  reg16:rw  wflags:AZSPO
DEC  reg32:rw  wflags:AZSPO
DEC  reg64:rw  wflags:AZSPO
DEC  mem64:rw  wflags:AZSPO
NEG  reg32:rw  wflags:CAZSPO
NEG  reg64:rw  wflags:CAZSPO
NOT  reg32:rw
NOT  reg64:rw
# Exchange / exchange-add (multi-latency case studies).
XCHG reg32:rw reg32:rw
XCHG reg64:rw reg64:rw
XADD reg32:rw reg32:rw wflags:CAZSPO
XADD reg64:rw reg64:rw wflags:CAZSPO
)TBL";

// --------------------------------------------------------------------
// Moves, extensions, LEA, stack.
// --------------------------------------------------------------------
const char *const kGpMov = R"TBL(
MOV  reg8:w reg8:r     attr=movelim
MOV  reg16:w reg16:r   attr=movelim
MOV  reg32:w reg32:r   attr=movelim
MOV  reg64:w reg64:r   attr=movelim
MOV  reg32:w imm32
MOV  reg64:w imm64
MOV  reg8:w mem8:r
MOV  reg16:w mem16:r
MOV  reg32:w mem32:r
MOV  reg64:w mem64:r
MOV  mem8:w reg8:r
MOV  mem16:w reg16:r
MOV  mem32:w reg32:r
MOV  mem64:w reg64:r
MOV  mem32:w imm32
MOV  mem64:w imm32
MOVSX  reg16:w reg8:r
MOVSX  reg32:w reg8:r
MOVSX  reg32:w reg16:r
MOVSX  reg64:w reg8:r
MOVSX  reg64:w reg16:r
MOVSX  reg64:w reg32:r
MOVSX  reg32:w mem8:r
MOVSX  reg64:w mem16:r
MOVZX  reg16:w reg8:r
MOVZX  reg32:w reg8:r   attr=movelim
MOVZX  reg32:w reg16:r
MOVZX  reg64:w reg8:r   attr=movelim
MOVZX  reg64:w reg16:r
MOVZX  reg32:w mem8:r
MOVZX  reg64:w mem16:r
LEA  reg32:w reg32:r
LEA  reg64:w reg64:r
PUSH *mem64:w reg64:r *reg64=RSP:rw
PUSH *mem64:w imm32 *reg64=RSP:rw
POP  reg64:w *mem64:r *reg64=RSP:rw
)TBL";

// --------------------------------------------------------------------
// Shifts and rotates (flag semantics force implicit dependencies for
// the CL-count forms; SHLD is the Section 7.3.2 case study).
// --------------------------------------------------------------------
const char *const kGpShift = R"TBL(
SHL  reg16:rw imm8  wflags:CZSPO
SHL  reg32:rw imm8  wflags:CZSPO
SHL  reg64:rw imm8  wflags:CZSPO
SHL  reg32:rw *reg8=CL:r rwflags:CZSPO
SHL  reg64:rw *reg8=CL:r rwflags:CZSPO
SHR  reg16:rw imm8  wflags:CZSPO
SHR  reg32:rw imm8  wflags:CZSPO
SHR  reg64:rw imm8  wflags:CZSPO
SHR  reg32:rw *reg8=CL:r rwflags:CZSPO
SHR  reg64:rw *reg8=CL:r rwflags:CZSPO
SAR  reg16:rw imm8  wflags:CZSPO
SAR  reg32:rw imm8  wflags:CZSPO
SAR  reg64:rw imm8  wflags:CZSPO
SAR  reg32:rw *reg8=CL:r rwflags:CZSPO
SAR  reg64:rw *reg8=CL:r rwflags:CZSPO
ROL  reg32:rw imm8  wflags:CO
ROL  reg64:rw imm8  wflags:CO
ROL  reg32:rw *reg8=CL:r rwflags:CO
ROL  reg64:rw *reg8=CL:r rwflags:CO
ROR  reg32:rw imm8  wflags:CO
ROR  reg64:rw imm8  wflags:CO
ROR  reg32:rw *reg8=CL:r rwflags:CO
ROR  reg64:rw *reg8=CL:r rwflags:CO
SHLD reg32:rw reg32:r imm8 wflags:CZSPO
SHLD reg64:rw reg64:r imm8 wflags:CZSPO
SHLD reg32:rw reg32:r *reg8=CL:r rwflags:CZSPO
SHLD reg64:rw reg64:r *reg8=CL:r rwflags:CZSPO
SHRD reg32:rw reg32:r imm8 wflags:CZSPO
SHRD reg64:rw reg64:r imm8 wflags:CZSPO
SHRD reg32:rw reg32:r *reg8=CL:r rwflags:CZSPO
SHRD reg64:rw reg64:r *reg8=CL:r rwflags:CZSPO
BSWAP reg32:rw
BSWAP reg64:rw
)TBL";

// --------------------------------------------------------------------
// Multiply / divide (divider attribute drives the value-dependent
// latency/throughput handling of Sections 5.2.5 and 5.3.1).
// --------------------------------------------------------------------
const char *const kGpMulDiv = R"TBL(
IMUL reg16:rw reg16:r  wflags:CO
IMUL reg32:rw reg32:r  wflags:CO
IMUL reg64:rw reg64:r  wflags:CO
IMUL reg32:w reg32:r imm32 wflags:CO
IMUL reg64:w reg64:r imm32 wflags:CO
IMUL reg64:rw mem64:r  wflags:CO
IMUL *reg16=AX:w *reg8=AL:rw reg8:r wflags:CO
IMUL *reg16=DX:w *reg16=AX:rw reg16:r wflags:CO
IMUL *reg32=EDX:w *reg32=EAX:rw reg32:r wflags:CO
IMUL *reg64=RDX:w *reg64=RAX:rw reg64:r wflags:CO
MUL  *reg16=AX:w *reg8=AL:rw reg8:r wflags:CO
MUL  *reg16=DX:w *reg16=AX:rw reg16:r wflags:CO
MUL  *reg32=EDX:w *reg32=EAX:rw reg32:r wflags:CO
MUL  *reg64=RDX:w *reg64=RAX:rw reg64:r wflags:CO
DIV  *reg16=AX:rw reg8:r wflags:CAZSPO attr=div
DIV  *reg16=DX:rw *reg16=AX:rw reg16:r wflags:CAZSPO attr=div
DIV  *reg32=EDX:rw *reg32=EAX:rw reg32:r wflags:CAZSPO attr=div
DIV  *reg64=RDX:rw *reg64=RAX:rw reg64:r wflags:CAZSPO attr=div
DIV  *reg64=RDX:rw *reg64=RAX:rw mem64:r wflags:CAZSPO attr=div
IDIV *reg16=AX:rw reg8:r wflags:CAZSPO attr=div
IDIV *reg32=EDX:rw *reg32=EAX:rw reg32:r wflags:CAZSPO attr=div
IDIV *reg64=RDX:rw *reg64=RAX:rw reg64:r wflags:CAZSPO attr=div
)TBL";

// --------------------------------------------------------------------
// Flags, conditional moves/sets, branches, bit scans.
// --------------------------------------------------------------------
const char *const kGpFlags = R"TBL(
CMC rwflags:C
STC wflags:C
CLC wflags:C
LAHF *reg8h=AH:w rflags:CAZSPO
SAHF *reg8h=AH:r wflags:CAZSPO
CDQ *reg32=EDX:w *reg32=EAX:r
CQO *reg64=RDX:w *reg64=RAX:r
CMOVZ  reg32:rw reg32:r rflags:Z
CMOVZ  reg64:rw reg64:r rflags:Z
CMOVNZ reg32:rw reg32:r rflags:Z
CMOVNZ reg64:rw reg64:r rflags:Z
CMOVB  reg32:rw reg32:r rflags:C
CMOVB  reg64:rw reg64:r rflags:C
CMOVBE reg32:rw reg32:r rflags:CZ
CMOVBE reg64:rw reg64:r rflags:CZ
CMOVNBE reg32:rw reg32:r rflags:CZ
CMOVNBE reg64:rw reg64:r rflags:CZ
CMOVS  reg32:rw reg32:r rflags:S
CMOVS  reg64:rw reg64:r rflags:S
CMOVO  reg64:rw reg64:r rflags:O
CMOVBE reg64:rw mem64:r rflags:CZ
SETZ  reg8:w rflags:Z
SETNZ reg8:w rflags:Z
SETB  reg8:w rflags:C
SETBE reg8:w rflags:CZ
SETO  reg8:w rflags:O
JZ   imm8 rflags:Z attr=branch
JNZ  imm8 rflags:Z attr=branch
JB   imm8 rflags:C attr=branch
JBE  imm8 rflags:CZ attr=branch
JMP  imm8 attr=branch
JMP  reg64:r attr=branch,cfreg
CALL reg64:r *mem64:w *reg64=RSP:rw attr=branch,cfreg
RET  *mem64:r *reg64=RSP:rw attr=branch,cfreg
BSF  reg32:rw reg32:r wflags:Z
BSF  reg64:rw reg64:r wflags:Z
BSR  reg32:rw reg32:r wflags:Z
BSR  reg64:rw reg64:r wflags:Z
POPCNT reg32:w reg32:r wflags:CZ ext=SSE42
POPCNT reg64:w reg64:r wflags:CZ ext=SSE42
POPCNT reg64:w mem64:r wflags:CZ ext=SSE42
CRC32 reg32:rw reg8:r ext=SSE42
CRC32 reg32:rw reg32:r ext=SSE42
CRC32 reg64:rw reg64:r ext=SSE42
CRC32 reg64:rw mem64:r ext=SSE42
)TBL";

// --------------------------------------------------------------------
// System / special (excluded classes, prefix variants, NOP/PAUSE).
// --------------------------------------------------------------------
const char *const kGpSystem = R"TBL(
NOP  attr=nop
NOP  reg32:r attr=nop          # multi-byte NOP with a register form
PAUSE attr=pause
CPUID *reg32=EAX:rw *reg32=EBX:w *reg32=ECX:rw *reg32=EDX:w attr=system,serialize
LFENCE attr=serialize
MFENCE attr=serialize
SFENCE attr=serialize
RDTSC *reg32=EDX:w *reg32=EAX:w attr=system
CLFLUSH mem64:r ext=SSE2 attr=system
CLFLUSHOPT mem64:r ext=SGX attr=system
PREFETCHT0 mem64:r
LOCKADD  mem32:rw reg32:r wflags:CAZSPO attr=lock
LOCKADD  mem64:rw reg64:r wflags:CAZSPO attr=lock
LOCKXADD mem64:rw reg64:rw wflags:CAZSPO attr=lock
LOCKINC  mem64:rw wflags:AZSPO attr=lock
LOCKDEC  mem64:rw wflags:AZSPO attr=lock
LOCKCMPXCHG mem64:rw reg64:r *reg64=RAX:rw wflags:CAZSPO attr=lock
REPMOVSB *reg64=RSI:rw *reg64=RDI:rw *reg64=RCX:rw *mem8:r *mem8:w attr=rep
REPSTOSB *reg64=RDI:rw *reg64=RCX:rw *reg8=AL:r *mem8:w attr=rep
)TBL";

// --------------------------------------------------------------------
// MMX (including the MOVQ2DQ / MOVDQ2Q case studies).
// --------------------------------------------------------------------
const char *const kMmx = R"TBL(
MOVQ   mmx:w mmx:r ext=MMX
MOVD   mmx:w reg32:r ext=MMX
MOVD   reg32:w mmx:r ext=MMX
MOVQ   mmx:w reg64:r ext=MMX
MOVQ   reg64:w mmx:r ext=MMX
MOVQ   mmx:w mem64:r ext=MMX
MOVQ   mem64:w mmx:r ext=MMX
PADDB  mmx:rw mmx:r ext=MMX
PADDD  mmx:rw mmx:r ext=MMX
PSUBB  mmx:rw mmx:r ext=MMX
PAND   mmx:rw mmx:r ext=MMX
POR    mmx:rw mmx:r ext=MMX
PXOR   mmx:rw mmx:r ext=MMX
PMULLW mmx:rw mmx:r ext=MMX
PMADDWD mmx:rw mmx:r ext=MMX
PSLLW  mmx:rw imm8 ext=MMX
PSRLD  mmx:rw imm8 ext=MMX
PSHUFW mmx:w mmx:r imm8 ext=SSE
PCMPEQB mmx:rw mmx:r ext=MMX
PCMPGTB mmx:rw mmx:r ext=MMX
MOVQ2DQ xmm:w mmx:r ext=SSE2
MOVDQ2Q mmx:w xmm:r ext=SSE2
)TBL";

// --------------------------------------------------------------------
// SSE integer (XMM).
// --------------------------------------------------------------------
const char *const kSseInt = R"TBL(
PADDB  xmm:rw xmm:r ext=SSE2
PADDW  xmm:rw xmm:r ext=SSE2
PADDD  xmm:rw xmm:r ext=SSE2
PADDQ  xmm:rw xmm:r ext=SSE2
PADDD  xmm:rw mem128:r ext=SSE2
PSUBB  xmm:rw xmm:r ext=SSE2
PSUBD  xmm:rw xmm:r ext=SSE2
PADDSB xmm:rw xmm:r ext=SSE2
PADDUSB xmm:rw xmm:r ext=SSE2
PAVGB  xmm:rw xmm:r ext=SSE2
PAND   xmm:rw xmm:r ext=SSE2
PANDN  xmm:rw xmm:r ext=SSE2
POR    xmm:rw xmm:r ext=SSE2
PXOR   xmm:rw xmm:r ext=SSE2 attr=zeroidiom
PXOR   xmm:rw mem128:r ext=SSE2
PCMPEQB xmm:rw xmm:r ext=SSE2 attr=depbreak
PCMPEQW xmm:rw xmm:r ext=SSE2 attr=depbreak
PCMPEQD xmm:rw xmm:r ext=SSE2 attr=depbreak
PCMPGTB xmm:rw xmm:r ext=SSE2 attr=depbreak
PCMPGTW xmm:rw xmm:r ext=SSE2 attr=depbreak
PCMPGTD xmm:rw xmm:r ext=SSE2 attr=depbreak
PCMPGTQ xmm:rw xmm:r ext=SSE42 attr=depbreak
PMULLW xmm:rw xmm:r ext=SSE2
PMULHW xmm:rw xmm:r ext=SSE2
PMULUDQ xmm:rw xmm:r ext=SSE2
PMULLD xmm:rw xmm:r ext=SSE41
PMADDWD xmm:rw xmm:r ext=SSE2
PSADBW xmm:rw xmm:r ext=SSE2
PSLLW  xmm:rw imm8 ext=SSE2
PSLLD  xmm:rw imm8 ext=SSE2
PSLLQ  xmm:rw imm8 ext=SSE2
PSRLW  xmm:rw imm8 ext=SSE2
PSRLD  xmm:rw imm8 ext=SSE2
PSRLQ  xmm:rw imm8 ext=SSE2
PSRAW  xmm:rw imm8 ext=SSE2
PSRAD  xmm:rw imm8 ext=SSE2
PSLLD  xmm:rw xmm:r ext=SSE2
PSRLD  xmm:rw xmm:r ext=SSE2
PSRAD  xmm:rw xmm:r ext=SSE2
PSHUFD xmm:w xmm:r imm8 ext=SSE2
PSHUFD xmm:w mem128:r imm8 ext=SSE2
PSHUFLW xmm:w xmm:r imm8 ext=SSE2
PSHUFB xmm:rw xmm:r ext=SSSE3
PALIGNR xmm:rw xmm:r imm8 ext=SSSE3
PABSB  xmm:w xmm:r ext=SSSE3
PABSD  xmm:w xmm:r ext=SSSE3
PSIGNB xmm:rw xmm:r ext=SSSE3
PHADDW xmm:rw xmm:r ext=SSSE3
PHADDD xmm:rw xmm:r ext=SSSE3
PACKSSWB xmm:rw xmm:r ext=SSE2
PUNPCKLBW xmm:rw xmm:r ext=SSE2
PUNPCKHBW xmm:rw xmm:r ext=SSE2
PMOVMSKB reg32:w xmm:r ext=SSE2
PEXTRW reg32:w xmm:r imm8 ext=SSE2
PEXTRD reg32:w xmm:r imm8 ext=SSE41
PEXTRQ reg64:w xmm:r imm8 ext=SSE41
PINSRW xmm:rw reg32:r imm8 ext=SSE2
PINSRD xmm:rw reg32:r imm8 ext=SSE41
PINSRQ xmm:rw reg64:r imm8 ext=SSE41
PMINSB xmm:rw xmm:r ext=SSE41
PMINUB xmm:rw xmm:r ext=SSE2
PMAXSD xmm:rw xmm:r ext=SSE41
PMINSD xmm:rw xmm:r ext=SSE41
PBLENDW xmm:rw xmm:r imm8 ext=SSE41
PBLENDVB xmm:rw xmm:r *xmm=XMM0:r ext=SSE41
MPSADBW xmm:rw xmm:r imm8 ext=SSE41
PHMINPOSUW xmm:w xmm:r ext=SSE41
PTEST xmm:r xmm:r wflags:CZSPO ext=SSE41
PMOVSXBW xmm:w xmm:r ext=SSE41
PMOVZXBW xmm:w xmm:r ext=SSE41
PACKUSDW xmm:rw xmm:r ext=SSE41
PCLMULQDQ xmm:rw xmm:r imm8 ext=CLMUL
MOVDQA xmm:w xmm:r ext=SSE2 attr=movelim
MOVDQA xmm:w mem128:r ext=SSE2
MOVDQA mem128:w xmm:r ext=SSE2
MOVDQU xmm:w mem128:r ext=SSE2
MOVDQU mem128:w xmm:r ext=SSE2
MOVD xmm:w reg32:r ext=SSE2
MOVD reg32:w xmm:r ext=SSE2
MOVQ xmm:w reg64:r ext=SSE2
MOVQ reg64:w xmm:r ext=SSE2
MOVQ xmm:w xmm:r ext=SSE2
MOVQ xmm:w mem64:r ext=SSE2
MOVQ mem64:w xmm:r ext=SSE2
)TBL";

// --------------------------------------------------------------------
// SSE floating point (including AES case-study instructions).
// --------------------------------------------------------------------
const char *const kSseFp = R"TBL(
ADDPS xmm:rw xmm:r ext=SSE
ADDPD xmm:rw xmm:r ext=SSE2
ADDSS xmm:rw xmm:r ext=SSE
ADDSD xmm:rw xmm:r ext=SSE2
ADDPS xmm:rw mem128:r ext=SSE
SUBPS xmm:rw xmm:r ext=SSE
SUBPD xmm:rw xmm:r ext=SSE2
MULPS xmm:rw xmm:r ext=SSE
MULPD xmm:rw xmm:r ext=SSE2
MULSS xmm:rw xmm:r ext=SSE
MULSD xmm:rw xmm:r ext=SSE2
MULPS xmm:rw mem128:r ext=SSE
DIVPS xmm:rw xmm:r ext=SSE attr=div
DIVPD xmm:rw xmm:r ext=SSE2 attr=div
DIVSS xmm:rw xmm:r ext=SSE attr=div
DIVSD xmm:rw xmm:r ext=SSE2 attr=div
DIVSD xmm:rw mem64:r ext=SSE2 attr=div
SQRTPS xmm:w xmm:r ext=SSE attr=div
SQRTPD xmm:w xmm:r ext=SSE2 attr=div
SQRTSD xmm:w xmm:r ext=SSE2 attr=div
RCPPS xmm:w xmm:r ext=SSE
RSQRTPS xmm:w xmm:r ext=SSE
MAXPS xmm:rw xmm:r ext=SSE
MAXPD xmm:rw xmm:r ext=SSE2
MINPS xmm:rw xmm:r ext=SSE
MINPD xmm:rw xmm:r ext=SSE2
MINSS xmm:rw xmm:r ext=SSE
ANDPS xmm:rw xmm:r ext=SSE
ANDPD xmm:rw xmm:r ext=SSE2
ANDNPS xmm:rw xmm:r ext=SSE
ORPS xmm:rw xmm:r ext=SSE
XORPS xmm:rw xmm:r ext=SSE attr=zeroidiom
XORPD xmm:rw xmm:r ext=SSE2 attr=zeroidiom
CMPPS xmm:rw xmm:r imm8 ext=SSE
CMPPD xmm:rw xmm:r imm8 ext=SSE2
COMISS xmm:r xmm:r wflags:CZSPO ext=SSE
UCOMISD xmm:r xmm:r wflags:CZSPO ext=SSE2
SHUFPS xmm:rw xmm:r imm8 ext=SSE
SHUFPD xmm:rw xmm:r imm8 ext=SSE2
UNPCKLPS xmm:rw xmm:r ext=SSE
UNPCKHPS xmm:rw xmm:r ext=SSE
MOVAPS xmm:w xmm:r ext=SSE attr=movelim
MOVAPD xmm:w xmm:r ext=SSE2 attr=movelim
MOVAPS xmm:w mem128:r ext=SSE
MOVAPS mem128:w xmm:r ext=SSE
MOVUPS xmm:w mem128:r ext=SSE
MOVUPS mem128:w xmm:r ext=SSE
MOVSS xmm:rw xmm:r ext=SSE
MOVSD xmm:rw xmm:r ext=SSE2
MOVHLPS xmm:rw xmm:r ext=SSE
MOVMSKPS reg32:w xmm:r ext=SSE
MOVMSKPD reg32:w xmm:r ext=SSE2
CVTDQ2PS xmm:w xmm:r ext=SSE2
CVTPS2DQ xmm:w xmm:r ext=SSE2
CVTTPS2DQ xmm:w xmm:r ext=SSE2
CVTSI2SS xmm:rw reg32:r ext=SSE
CVTSI2SD xmm:rw reg64:r ext=SSE2
CVTSD2SI reg32:w xmm:r ext=SSE2
CVTSD2SI reg64:w xmm:r ext=SSE2
CVTSS2SD xmm:rw xmm:r ext=SSE2
CVTSD2SS xmm:rw xmm:r ext=SSE2
HADDPS xmm:rw xmm:r ext=SSE3
HADDPD xmm:rw xmm:r ext=SSE3
ADDSUBPS xmm:rw xmm:r ext=SSE3
MOVSLDUP xmm:w xmm:r ext=SSE3
MOVDDUP xmm:w xmm:r ext=SSE3
DPPS xmm:rw xmm:r imm8 ext=SSE41
DPPD xmm:rw xmm:r imm8 ext=SSE41
ROUNDPS xmm:w xmm:r imm8 ext=SSE41
ROUNDSS xmm:rw xmm:r imm8 ext=SSE41
BLENDPS xmm:rw xmm:r imm8 ext=SSE41
BLENDVPS xmm:rw xmm:r *xmm=XMM0:r ext=SSE41
BLENDVPD xmm:rw xmm:r *xmm=XMM0:r ext=SSE41
INSERTPS xmm:rw xmm:r imm8 ext=SSE41
EXTRACTPS reg32:w xmm:r imm8 ext=SSE41
AESDEC xmm:rw xmm:r ext=AES
AESDECLAST xmm:rw xmm:r ext=AES
AESENC xmm:rw xmm:r ext=AES
AESENCLAST xmm:rw xmm:r ext=AES
AESDEC xmm:rw mem128:r ext=AES
AESDECLAST xmm:rw mem128:r ext=AES
AESENC xmm:rw mem128:r ext=AES
AESENCLAST xmm:rw mem128:r ext=AES
AESIMC xmm:w xmm:r ext=AES
AESKEYGENASSIST xmm:w xmm:r imm8 ext=AES
)TBL";

// --------------------------------------------------------------------
// AVX (VEX-encoded, three-operand; Sandy Bridge onwards).
// --------------------------------------------------------------------
const char *const kAvx = R"TBL(
VADDPS xmm:w xmm:r xmm:r ext=AVX attr=avx
VADDPS ymm:w ymm:r ymm:r ext=AVX attr=avx
VADDPD xmm:w xmm:r xmm:r ext=AVX attr=avx
VADDPD ymm:w ymm:r ymm:r ext=AVX attr=avx
VADDPS ymm:w ymm:r mem256:r ext=AVX attr=avx
VSUBPS xmm:w xmm:r xmm:r ext=AVX attr=avx
VSUBPS ymm:w ymm:r ymm:r ext=AVX attr=avx
VMULPS xmm:w xmm:r xmm:r ext=AVX attr=avx
VMULPS ymm:w ymm:r ymm:r ext=AVX attr=avx
VMULPD ymm:w ymm:r ymm:r ext=AVX attr=avx
VDIVPS xmm:w xmm:r xmm:r ext=AVX attr=avx,div
VDIVPS ymm:w ymm:r ymm:r ext=AVX attr=avx,div
VDIVPD ymm:w ymm:r ymm:r ext=AVX attr=avx,div
VSQRTPS xmm:w xmm:r ext=AVX attr=avx,div
VMINPS xmm:w xmm:r xmm:r ext=AVX attr=avx
VMINPS ymm:w ymm:r ymm:r ext=AVX attr=avx
VMAXPS xmm:w xmm:r xmm:r ext=AVX attr=avx
VMAXPS ymm:w ymm:r ymm:r ext=AVX attr=avx
VANDPS xmm:w xmm:r xmm:r ext=AVX attr=avx
VANDPS ymm:w ymm:r ymm:r ext=AVX attr=avx
VORPS ymm:w ymm:r ymm:r ext=AVX attr=avx
VXORPS xmm:w xmm:r xmm:r ext=AVX attr=avx,zeroidiom
VXORPS ymm:w ymm:r ymm:r ext=AVX attr=avx,zeroidiom
VCMPPS ymm:w ymm:r ymm:r imm8 ext=AVX attr=avx
VSHUFPS xmm:w xmm:r xmm:r imm8 ext=AVX attr=avx
VSHUFPS ymm:w ymm:r ymm:r imm8 ext=AVX attr=avx
VPERMILPS xmm:w xmm:r imm8 ext=AVX attr=avx
VPERMILPS ymm:w ymm:r imm8 ext=AVX attr=avx
VUNPCKLPS ymm:w ymm:r ymm:r ext=AVX attr=avx
VHADDPD xmm:w xmm:r xmm:r ext=AVX attr=avx
VHADDPD ymm:w ymm:r ymm:r ext=AVX attr=avx
VHADDPS ymm:w ymm:r ymm:r ext=AVX attr=avx
VADDSUBPS ymm:w ymm:r ymm:r ext=AVX attr=avx
VBLENDPS ymm:w ymm:r ymm:r imm8 ext=AVX attr=avx
VBLENDVPS xmm:w xmm:r xmm:r xmm:r ext=AVX attr=avx
VBLENDVPS ymm:w ymm:r ymm:r ymm:r ext=AVX attr=avx
VBLENDVPD ymm:w ymm:r ymm:r ymm:r ext=AVX attr=avx
VPBLENDVB xmm:w xmm:r xmm:r xmm:r ext=AVX attr=avx
VROUNDPS ymm:w ymm:r imm8 ext=AVX attr=avx
VUCOMISS xmm:r xmm:r wflags:CZSPO ext=AVX attr=avx
VMOVAPS xmm:w xmm:r ext=AVX attr=avx,movelim
VMOVAPS ymm:w ymm:r ext=AVX attr=avx,movelim
VMOVAPS ymm:w mem256:r ext=AVX attr=avx
VMOVAPS mem256:w ymm:r ext=AVX attr=avx
VMOVUPS ymm:w mem256:r ext=AVX attr=avx
VMOVD xmm:w reg32:r ext=AVX attr=avx
VMOVD reg32:w xmm:r ext=AVX attr=avx
VMOVQ xmm:w reg64:r ext=AVX attr=avx
VMOVQ reg64:w xmm:r ext=AVX attr=avx
VBROADCASTSS xmm:w mem32:r ext=AVX attr=avx
VBROADCASTSS ymm:w mem32:r ext=AVX attr=avx
VINSERTF128 ymm:w ymm:r xmm:r imm8 ext=AVX attr=avx
VEXTRACTF128 xmm:w ymm:r imm8 ext=AVX attr=avx
VPERM2F128 ymm:w ymm:r ymm:r imm8 ext=AVX attr=avx
VZEROUPPER ext=AVX attr=avx
VCVTDQ2PS ymm:w ymm:r ext=AVX attr=avx
VCVTPS2DQ ymm:w ymm:r ext=AVX attr=avx
VPADDD xmm:w xmm:r xmm:r ext=AVX attr=avx
VPADDB xmm:w xmm:r xmm:r ext=AVX attr=avx
VPSUBD xmm:w xmm:r xmm:r ext=AVX attr=avx
VPAND xmm:w xmm:r xmm:r ext=AVX attr=avx
VPOR xmm:w xmm:r xmm:r ext=AVX attr=avx
VPXOR xmm:w xmm:r xmm:r ext=AVX attr=avx,zeroidiom
VPCMPEQD xmm:w xmm:r xmm:r ext=AVX attr=avx,depbreak
VPCMPGTB xmm:w xmm:r xmm:r ext=AVX attr=avx,depbreak
VPCMPGTD xmm:w xmm:r xmm:r ext=AVX attr=avx,depbreak
VPCMPGTQ xmm:w xmm:r xmm:r ext=AVX attr=avx,depbreak
VPSHUFB xmm:w xmm:r xmm:r ext=AVX attr=avx
VPSHUFD xmm:w xmm:r imm8 ext=AVX attr=avx
VPMULLW xmm:w xmm:r xmm:r ext=AVX attr=avx
VPMULLD xmm:w xmm:r xmm:r ext=AVX attr=avx
VPMADDWD xmm:w xmm:r xmm:r ext=AVX attr=avx
VPSLLD xmm:w xmm:r imm8 ext=AVX attr=avx
VPSRLD xmm:w xmm:r imm8 ext=AVX attr=avx
VPSRAD xmm:w xmm:r imm8 ext=AVX attr=avx
VPSLLD xmm:w xmm:r xmm:r ext=AVX attr=avx
VPSRAW xmm:w xmm:r xmm:r ext=AVX attr=avx
VPSRLQ xmm:w xmm:r xmm:r ext=AVX attr=avx
VMPSADBW xmm:w xmm:r xmm:r imm8 ext=AVX attr=avx
VAESDEC xmm:w xmm:r xmm:r ext=AVX attr=avx
VPTEST xmm:r xmm:r wflags:CZSPO ext=AVX attr=avx
VPMOVMSKB reg32:w xmm:r ext=AVX attr=avx
)TBL";

// --------------------------------------------------------------------
// AVX2 / BMI / FMA / ADX / F16C (Ivy Bridge through Broadwell adds).
// --------------------------------------------------------------------
const char *const kAvx2 = R"TBL(
VPADDB ymm:w ymm:r ymm:r ext=AVX2 attr=avx
VPADDD ymm:w ymm:r ymm:r ext=AVX2 attr=avx
VPADDQ ymm:w ymm:r ymm:r ext=AVX2 attr=avx
VPADDD ymm:w ymm:r mem256:r ext=AVX2 attr=avx
VPSUBB ymm:w ymm:r ymm:r ext=AVX2 attr=avx
VPAND ymm:w ymm:r ymm:r ext=AVX2 attr=avx
VPOR ymm:w ymm:r ymm:r ext=AVX2 attr=avx
VPXOR ymm:w ymm:r ymm:r ext=AVX2 attr=avx,zeroidiom
VPCMPEQD ymm:w ymm:r ymm:r ext=AVX2 attr=avx,depbreak
VPCMPGTB ymm:w ymm:r ymm:r ext=AVX2 attr=avx,depbreak
VPCMPGTD ymm:w ymm:r ymm:r ext=AVX2 attr=avx,depbreak
VPCMPGTQ ymm:w ymm:r ymm:r ext=AVX2 attr=avx,depbreak
VPSHUFB ymm:w ymm:r ymm:r ext=AVX2 attr=avx
VPSHUFD ymm:w ymm:r imm8 ext=AVX2 attr=avx
VPMULLW ymm:w ymm:r ymm:r ext=AVX2 attr=avx
VPMULLD ymm:w ymm:r ymm:r ext=AVX2 attr=avx
VPMADDWD ymm:w ymm:r ymm:r ext=AVX2 attr=avx
VPSLLD ymm:w ymm:r imm8 ext=AVX2 attr=avx
VPSRAD ymm:w ymm:r imm8 ext=AVX2 attr=avx
VPSLLVD xmm:w xmm:r xmm:r ext=AVX2 attr=avx
VPSLLVD ymm:w ymm:r ymm:r ext=AVX2 attr=avx
VPSRAVD ymm:w ymm:r ymm:r ext=AVX2 attr=avx
VPERMD ymm:w ymm:r ymm:r ext=AVX2 attr=avx
VPERMQ ymm:w ymm:r imm8 ext=AVX2 attr=avx
VPBROADCASTD xmm:w xmm:r ext=AVX2 attr=avx
VPBROADCASTD ymm:w xmm:r ext=AVX2 attr=avx
VPBLENDVB ymm:w ymm:r ymm:r ymm:r ext=AVX2 attr=avx
VMPSADBW ymm:w ymm:r ymm:r imm8 ext=AVX2 attr=avx
VINSERTI128 ymm:w ymm:r xmm:r imm8 ext=AVX2 attr=avx
VEXTRACTI128 xmm:w ymm:r imm8 ext=AVX2 attr=avx
VPMOVMSKB reg32:w ymm:r ext=AVX2 attr=avx
ANDN reg32:w reg32:r reg32:r wflags:CZSPO ext=BMI1
ANDN reg64:w reg64:r reg64:r wflags:CZSPO ext=BMI1
BEXTR reg32:w reg32:r reg32:r wflags:CZSPO ext=BMI1
BEXTR reg64:w reg64:r reg64:r wflags:CZSPO ext=BMI1
BLSI reg64:w reg64:r wflags:CZSPO ext=BMI1
BLSMSK reg64:w reg64:r wflags:CZSPO ext=BMI1
BLSR reg64:w reg64:r wflags:CZSPO ext=BMI1
TZCNT reg32:w reg32:r wflags:CZ ext=BMI1
TZCNT reg64:w reg64:r wflags:CZ ext=BMI1
LZCNT reg32:w reg32:r wflags:CZ ext=BMI1
LZCNT reg64:w reg64:r wflags:CZ ext=BMI1
BZHI reg64:w reg64:r reg64:r wflags:CZSPO ext=BMI2
MULX reg64:w reg64:w *reg64=RDX:r reg64:r ext=BMI2
PDEP reg64:w reg64:r reg64:r ext=BMI2
PEXT reg64:w reg64:r reg64:r ext=BMI2
RORX reg64:w reg64:r imm8 ext=BMI2
SARX reg64:w reg64:r reg64:r ext=BMI2
SHLX reg64:w reg64:r reg64:r ext=BMI2
SHRX reg64:w reg64:r reg64:r ext=BMI2
VFMADD132PS xmm:rw xmm:r xmm:r ext=FMA attr=avx
VFMADD213PS xmm:rw xmm:r xmm:r ext=FMA attr=avx
VFMADD231PS xmm:rw xmm:r xmm:r ext=FMA attr=avx
VFMADD132PS ymm:rw ymm:r ymm:r ext=FMA attr=avx
VFMADD213PS ymm:rw ymm:r ymm:r ext=FMA attr=avx
VFMADD231PS ymm:rw ymm:r ymm:r ext=FMA attr=avx
VFMADD213SD xmm:rw xmm:r xmm:r ext=FMA attr=avx
VFNMADD213PS ymm:rw ymm:r ymm:r ext=FMA attr=avx
ADCX reg64:rw reg64:r rwflags:C ext=ADX
ADOX reg64:rw reg64:r rwflags:O ext=ADX
VCVTPH2PS xmm:w xmm:r ext=F16C attr=avx
VCVTPH2PS ymm:w xmm:r ext=F16C attr=avx
VCVTPS2PH xmm:w xmm:r imm8 ext=F16C attr=avx
VCVTPS2PH xmm:w ymm:r imm8 ext=F16C attr=avx
)TBL";

// --------------------------------------------------------------------
// Additional operand forms and sibling mnemonics (width and memory
// variants of the families above; coverage breadth for the sweeps).
// --------------------------------------------------------------------
const char *const kExtraGp = R"TBL(
# More ALU width and memory forms.
SUB  reg8:rw imm8      wflags:CAZSPO
SUB  reg16:rw imm16    wflags:CAZSPO
AND  reg16:rw imm16    wflags:CZSPO
OR   reg16:rw imm16    wflags:CZSPO
XOR  reg16:rw imm16    wflags:CZSPO
CMP  reg16:r imm16     wflags:CAZSPO
CMP  mem32:r reg32:r   wflags:CAZSPO
CMP  mem8:r reg8:r     wflags:CAZSPO
TEST reg8:r imm8       wflags:CZSPO
ADC  reg16:rw imm16    rflags:C wflags:CAZSPO
SBB  reg32:rw imm32    rflags:C wflags:CAZSPO
ADC  mem32:rw reg32:r  rflags:C wflags:CAZSPO
NEG  reg8:rw   wflags:CAZSPO
NEG  reg16:rw  wflags:CAZSPO
NOT  reg8:rw
NOT  reg16:rw
XCHG reg8:rw reg8:rw
XCHG reg16:rw reg16:rw
XADD reg8:rw reg8:rw wflags:CAZSPO
XADD reg16:rw reg16:rw wflags:CAZSPO
MOV  mem16:w imm16
MOVSX reg32:w mem16:r
MOVZX reg32:w mem16:r
SHL  reg8:rw imm8  wflags:CZSPO
SHR  reg8:rw imm8  wflags:CZSPO
SAR  reg8:rw imm8  wflags:CZSPO
ROL  reg16:rw imm8 wflags:CO
ROR  reg16:rw imm8 wflags:CO
IMUL reg16:w reg16:r imm16 wflags:CO
IMUL reg32:rw mem32:r  wflags:CO
CMOVZ  reg16:rw reg16:r rflags:Z
CMOVB  reg16:rw reg16:r rflags:C
CMOVNB reg32:rw reg32:r rflags:C
CMOVNB reg64:rw reg64:r rflags:C
CMOVL  reg32:rw reg32:r rflags:SO
CMOVL  reg64:rw reg64:r rflags:SO
CMOVLE reg32:rw reg32:r rflags:SZO
CMOVLE reg64:rw reg64:r rflags:SZO
SETS  reg8:w rflags:S
SETNB reg8:w rflags:C
JS   imm8 rflags:S attr=branch
JNB  imm8 rflags:C attr=branch
POPCNT reg16:w reg16:r wflags:CZ ext=SSE42
CRC32 reg32:rw reg16:r ext=SSE42
BSF  reg16:rw reg16:r wflags:Z
BSR  reg16:rw reg16:r wflags:Z
)TBL";

const char *const kExtraSse = R"TBL(
# More vector integer forms.
PADDW  xmm:rw mem128:r ext=SSE2
PADDB  xmm:rw mem128:r ext=SSE2
PAND   xmm:rw mem128:r ext=SSE2
POR    xmm:rw mem128:r ext=SSE2
PCMPEQD xmm:rw mem128:r ext=SSE2
PMULLW xmm:rw mem128:r ext=SSE2
PSUBW  xmm:rw xmm:r ext=SSE2
PSUBQ  xmm:rw xmm:r ext=SSE2
PMINSW xmm:rw xmm:r ext=SSE2
PMAXSW xmm:rw xmm:r ext=SSE2
PMAXUB xmm:rw xmm:r ext=SSE2
PAVGW  xmm:rw xmm:r ext=SSE2
PABSW  xmm:w xmm:r ext=SSSE3
PSIGND xmm:rw xmm:r ext=SSSE3
PHSUBD xmm:rw xmm:r ext=SSSE3
PHSUBW xmm:rw xmm:r ext=SSSE3
PACKSSDW xmm:rw xmm:r ext=SSE2
PUNPCKLDQ xmm:rw xmm:r ext=SSE2
PUNPCKHDQ xmm:rw xmm:r ext=SSE2
PSHUFHW xmm:w xmm:r imm8 ext=SSE2
# More scalar/packed FP.
SUBSS  xmm:rw xmm:r ext=SSE
SUBSD  xmm:rw xmm:r ext=SSE2
MAXSS  xmm:rw xmm:r ext=SSE
MAXSD  xmm:rw xmm:r ext=SSE2
MINSD  xmm:rw xmm:r ext=SSE2
SUBPS  xmm:rw mem128:r ext=SSE
MULPD  xmm:rw mem128:r ext=SSE2
MINPS  xmm:rw mem128:r ext=SSE
ANDPS  xmm:rw mem128:r ext=SSE
CMPPS  xmm:rw mem128:r imm8 ext=SSE
ADDSD  xmm:rw mem64:r ext=SSE2
UNPCKLPD xmm:rw xmm:r ext=SSE2
UNPCKHPD xmm:rw xmm:r ext=SSE2
CVTPD2PS xmm:w xmm:r ext=SSE2
CVTPS2PD xmm:w xmm:r ext=SSE2
RSQRTSS xmm:rw xmm:r ext=SSE
RCPSS  xmm:rw xmm:r ext=SSE
MOVAPD xmm:w mem128:r ext=SSE2
MOVAPD mem128:w xmm:r ext=SSE2
COMISD xmm:r xmm:r wflags:CZSPO ext=SSE2
UCOMISS xmm:r xmm:r wflags:CZSPO ext=SSE
DIVPD  xmm:rw mem128:r ext=SSE2 attr=div
SQRTSS xmm:w xmm:r ext=SSE attr=div
)TBL";

const char *const kExtraAvx = R"TBL(
# More VEX forms.
VSUBPD xmm:w xmm:r xmm:r ext=AVX attr=avx
VSUBPD ymm:w ymm:r ymm:r ext=AVX attr=avx
VMULPD xmm:w xmm:r xmm:r ext=AVX attr=avx
VMINPD ymm:w ymm:r ymm:r ext=AVX attr=avx
VMAXPD ymm:w ymm:r ymm:r ext=AVX attr=avx
VANDPD ymm:w ymm:r ymm:r ext=AVX attr=avx
VXORPD xmm:w xmm:r xmm:r ext=AVX attr=avx,zeroidiom
VXORPD ymm:w ymm:r ymm:r ext=AVX attr=avx,zeroidiom
VSQRTPD ymm:w ymm:r ext=AVX attr=avx,div
VDIVPD xmm:w xmm:r xmm:r ext=AVX attr=avx,div
VRCPPS xmm:w xmm:r ext=AVX attr=avx
VRSQRTPS xmm:w xmm:r ext=AVX attr=avx
VMOVDQA xmm:w xmm:r ext=AVX attr=avx,movelim
VMOVDQA xmm:w mem128:r ext=AVX attr=avx
VMOVDQA mem128:w xmm:r ext=AVX attr=avx
VMOVAPS xmm:w mem128:r ext=AVX attr=avx
VMOVAPS mem128:w xmm:r ext=AVX attr=avx
VPANDN xmm:w xmm:r xmm:r ext=AVX attr=avx
VPADDW xmm:w xmm:r xmm:r ext=AVX attr=avx
VPSUBW xmm:w xmm:r xmm:r ext=AVX attr=avx
VPMULHW xmm:w xmm:r xmm:r ext=AVX attr=avx
VPAVGB xmm:w xmm:r xmm:r ext=AVX attr=avx
VPABSD xmm:w xmm:r ext=AVX attr=avx
VPACKSSWB xmm:w xmm:r xmm:r ext=AVX attr=avx
VPALIGNR xmm:w xmm:r xmm:r imm8 ext=AVX attr=avx
VPUNPCKLBW xmm:w xmm:r xmm:r ext=AVX attr=avx
VBLENDPD ymm:w ymm:r ymm:r imm8 ext=AVX attr=avx
VEXTRACTPS reg32:w xmm:r imm8 ext=AVX attr=avx
VPINSRD xmm:w xmm:r reg32:r imm8 ext=AVX attr=avx
VPEXTRD reg32:w xmm:r imm8 ext=AVX attr=avx
VCVTSI2SD xmm:w xmm:r reg64:r ext=AVX attr=avx
VCVTTPS2DQ ymm:w ymm:r ext=AVX attr=avx
VADDPS xmm:w xmm:r mem128:r ext=AVX attr=avx
VMULPS ymm:w ymm:r mem256:r ext=AVX attr=avx
# AVX2 / FMA additions.
VPADDW ymm:w ymm:r ymm:r ext=AVX2 attr=avx
VPSUBW ymm:w ymm:r ymm:r ext=AVX2 attr=avx
VPABSD ymm:w ymm:r ext=AVX2 attr=avx
VPAVGB ymm:w ymm:r ymm:r ext=AVX2 attr=avx
VPACKSSWB ymm:w ymm:r ymm:r ext=AVX2 attr=avx
VPALIGNR ymm:w ymm:r ymm:r imm8 ext=AVX2 attr=avx
VPHADDD ymm:w ymm:r ymm:r ext=AVX2 attr=avx
VFMSUB132PS xmm:rw xmm:r xmm:r ext=FMA attr=avx
VFMSUB213PS ymm:rw ymm:r ymm:r ext=FMA attr=avx
VFMADD132PD ymm:rw ymm:r ymm:r ext=FMA attr=avx
# BMI width variants.
BZHI reg32:w reg32:r reg32:r wflags:CZSPO ext=BMI2
RORX reg32:w reg32:r imm8 ext=BMI2
SHLX reg32:w reg32:r reg32:r ext=BMI2
SHRX reg32:w reg32:r reg32:r ext=BMI2
SARX reg32:w reg32:r reg32:r ext=BMI2
PDEP reg32:w reg32:r reg32:r ext=BMI2
PEXT reg32:w reg32:r reg32:r ext=BMI2
BLSI reg32:w reg32:r wflags:CZSPO ext=BMI1
BLSR reg32:w reg32:r wflags:CZSPO ext=BMI1
TZCNT reg16:w reg16:r wflags:CZ ext=BMI1
ADCX reg32:rw reg32:r rwflags:C ext=ADX
ADOX reg32:rw reg32:r rwflags:O ext=ADX
)TBL";

} // namespace

const std::string &
defaultInstrTableText()
{
    static const std::string text = std::string(kGpAlu) + kGpMov +
                                    kGpShift + kGpMulDiv + kGpFlags +
                                    kGpSystem + kMmx + kSseInt + kSseFp +
                                    kAvx + kAvx2 + kExtraGp + kExtraSse +
                                    kExtraAvx;
    return text;
}

} // namespace uops::isa
