#include "xml_export.h"

#include "support/status.h"
#include "support/strings.h"

namespace uops::isa {

namespace {

const char *
opKindName(OpKind kind)
{
    switch (kind) {
      case OpKind::Reg: return "reg";
      case OpKind::Mem: return "mem";
      case OpKind::Imm: return "imm";
      case OpKind::Flags: return "flags";
    }
    return "?";
}

OpKind
parseOpKind(const std::string &name)
{
    if (name == "reg")
        return OpKind::Reg;
    if (name == "mem")
        return OpKind::Mem;
    if (name == "imm")
        return OpKind::Imm;
    if (name == "flags")
        return OpKind::Flags;
    fatal("xml import: unknown operand kind '", name, "'");
}

RegClass
parseRegClassName(const std::string &name)
{
    static const std::map<std::string, RegClass> table = {
        {"GPR8", RegClass::Gpr8},   {"GPR8H", RegClass::Gpr8High},
        {"GPR16", RegClass::Gpr16}, {"GPR32", RegClass::Gpr32},
        {"GPR64", RegClass::Gpr64}, {"MMX", RegClass::Mmx},
        {"XMM", RegClass::Xmm},     {"YMM", RegClass::Ymm},
        {"NONE", RegClass::None},
    };
    auto it = table.find(name);
    if (it == table.end())
        fatal("xml import: unknown register class '", name, "'");
    return it->second;
}

std::string
flagLetters(const FlagMask &mask)
{
    std::string out;
    if (mask.cf)
        out += "C";
    if (mask.af)
        out += "A";
    if (mask.spazo)
        out += "SPZO";
    return out;
}

} // namespace

std::unique_ptr<XmlNode>
exportInstrDbXml(const InstrDb &db)
{
    auto root = std::make_unique<XmlNode>("instructionSet");
    root->attr("count", static_cast<long>(db.size()));
    for (const InstrVariant *variant : db.all()) {
        XmlNode &node = root->addChild("instruction");
        node.attr("name", variant->name());
        node.attr("mnemonic", variant->mnemonic());
        node.attr("extension", extensionName(variant->extension()));
        node.attr("syntax", variant->syntaxTemplate());

        const InstrAttributes &attrs = variant->attrs();
        std::vector<std::string> attr_names;
        if (attrs.uses_divider) attr_names.push_back("div");
        if (attrs.is_system) attr_names.push_back("system");
        if (attrs.is_serializing) attr_names.push_back("serialize");
        if (attrs.is_branch) attr_names.push_back("branch");
        if (attrs.is_cf_reg) attr_names.push_back("cfreg");
        if (attrs.is_pause) attr_names.push_back("pause");
        if (attrs.is_nop) attr_names.push_back("nop");
        if (attrs.zero_idiom) attr_names.push_back("zeroidiom");
        if (attrs.dep_breaking_same_reg) attr_names.push_back("depbreak");
        if (attrs.mov_elim_candidate) attr_names.push_back("movelim");
        if (attrs.has_lock_prefix) attr_names.push_back("lock");
        if (attrs.has_rep_prefix) attr_names.push_back("rep");
        if (attrs.is_avx) attr_names.push_back("avx");
        if (!attr_names.empty())
            node.attr("attrs", join(attr_names, ","));

        for (const OperandSpec &op : variant->operands()) {
            XmlNode &opn = node.addChild("operand");
            opn.attr("type", opKindName(op.kind));
            if (op.kind == OpKind::Reg)
                opn.attr("class", regClassName(op.reg_class));
            opn.attr("width", static_cast<long>(op.effectiveWidth()));
            std::string access;
            if (op.read)
                access += "r";
            if (op.written)
                access += "w";
            opn.attr("access", access);
            if (op.implicit)
                opn.attr("implicit", "1");
            if (op.fixed_reg >= 0)
                opn.attr("fixedReg",
                         regName(Reg{op.reg_class, op.fixed_reg}));
            if (op.kind == OpKind::Flags) {
                if (op.flags_read.any())
                    opn.attr("flagsRead", flagLetters(op.flags_read));
                if (op.flags_written.any())
                    opn.attr("flagsWritten",
                             flagLetters(op.flags_written));
            }
        }
    }
    return root;
}

std::unique_ptr<InstrDb>
importInstrDbXml(const XmlNode &root)
{
    fatalIf(root.name() != "instructionSet",
            "xml import: expected <instructionSet>, got <", root.name(),
            ">");
    auto db = std::make_unique<InstrDb>();
    for (const XmlNode *node : root.childrenNamed("instruction")) {
        std::vector<OperandSpec> operands;
        for (const XmlNode *opn : node->childrenNamed("operand")) {
            OperandSpec spec;
            spec.kind = parseOpKind(opn->getAttr("type"));
            if (spec.kind == OpKind::Reg)
                spec.reg_class = parseRegClassName(opn->getAttr("class"));
            if (auto w = parseInt(opn->getAttr("width")))
                spec.width = static_cast<int>(*w);
            std::string access = opn->getAttr("access");
            spec.read = access.find('r') != std::string::npos;
            spec.written = access.find('w') != std::string::npos;
            spec.implicit = opn->getAttr("implicit") == "1";
            if (opn->hasAttr("fixedReg")) {
                auto reg = parseRegName(opn->getAttr("fixedReg"));
                fatalIf(!reg, "xml import: bad fixedReg");
                spec.fixed_reg = reg->index;
                spec.implicit = true;
            }
            if (spec.kind == OpKind::Flags) {
                spec.flags_read =
                    FlagMask::fromLetters(opn->getAttr("flagsRead"));
                spec.flags_written =
                    FlagMask::fromLetters(opn->getAttr("flagsWritten"));
            }
            operands.push_back(spec);
        }

        InstrAttributes attrs;
        for (const auto &a : split(node->getAttr("attrs"), ',')) {
            if (a == "div") attrs.uses_divider = true;
            else if (a == "system") attrs.is_system = true;
            else if (a == "serialize") attrs.is_serializing = true;
            else if (a == "branch") attrs.is_branch = true;
            else if (a == "cfreg") attrs.is_cf_reg = true;
            else if (a == "pause") attrs.is_pause = true;
            else if (a == "nop") attrs.is_nop = true;
            else if (a == "zeroidiom") attrs.zero_idiom = true;
            else if (a == "depbreak") attrs.dep_breaking_same_reg = true;
            else if (a == "movelim") attrs.mov_elim_candidate = true;
            else if (a == "lock") attrs.has_lock_prefix = true;
            else if (a == "rep") attrs.has_rep_prefix = true;
            else if (a == "avx") attrs.is_avx = true;
            else fatal("xml import: unknown attr '", a, "'");
        }

        db->add(node->getAttr("mnemonic"), std::move(operands),
                parseExtension(node->getAttr("extension")), attrs);
    }
    return db;
}

} // namespace uops::isa
