#include "parser.h"

#include "support/status.h"
#include "support/strings.h"

namespace uops::isa {

namespace {

/** Map a DSL kind token to (kind, register class, width). */
struct KindInfo
{
    OpKind kind;
    RegClass reg_class;
    int width;
};

std::optional<KindInfo>
parseKind(const std::string &token)
{
    static const std::map<std::string, KindInfo> table = {
        {"reg8", {OpKind::Reg, RegClass::Gpr8, 8}},
        {"reg8h", {OpKind::Reg, RegClass::Gpr8High, 8}},
        {"reg16", {OpKind::Reg, RegClass::Gpr16, 16}},
        {"reg32", {OpKind::Reg, RegClass::Gpr32, 32}},
        {"reg64", {OpKind::Reg, RegClass::Gpr64, 64}},
        {"mmx", {OpKind::Reg, RegClass::Mmx, 64}},
        {"xmm", {OpKind::Reg, RegClass::Xmm, 128}},
        {"ymm", {OpKind::Reg, RegClass::Ymm, 256}},
        {"mem8", {OpKind::Mem, RegClass::None, 8}},
        {"mem16", {OpKind::Mem, RegClass::None, 16}},
        {"mem32", {OpKind::Mem, RegClass::None, 32}},
        {"mem64", {OpKind::Mem, RegClass::None, 64}},
        {"mem128", {OpKind::Mem, RegClass::None, 128}},
        {"mem256", {OpKind::Mem, RegClass::None, 256}},
        {"imm8", {OpKind::Imm, RegClass::None, 8}},
        {"imm16", {OpKind::Imm, RegClass::None, 16}},
        {"imm32", {OpKind::Imm, RegClass::None, 32}},
        {"imm64", {OpKind::Imm, RegClass::None, 64}},
    };
    auto it = table.find(token);
    if (it == table.end())
        return std::nullopt;
    return it->second;
}

void
applyAttr(const std::string &name, InstrAttributes &attrs, int line_no)
{
    if (name == "div")
        attrs.uses_divider = true;
    else if (name == "system")
        attrs.is_system = true;
    else if (name == "serialize")
        attrs.is_serializing = true;
    else if (name == "branch")
        attrs.is_branch = true;
    else if (name == "cfreg")
        attrs.is_cf_reg = true;
    else if (name == "pause")
        attrs.is_pause = true;
    else if (name == "nop")
        attrs.is_nop = true;
    else if (name == "zeroidiom")
        attrs.zero_idiom = true;
    else if (name == "depbreak")
        attrs.dep_breaking_same_reg = true;
    else if (name == "movelim")
        attrs.mov_elim_candidate = true;
    else if (name == "lock")
        attrs.has_lock_prefix = true;
    else if (name == "rep")
        attrs.has_rep_prefix = true;
    else if (name == "avx")
        attrs.is_avx = true;
    else
        fatal("instr table line ", line_no, ": unknown attribute '", name,
              "'");
}

/** Parse one operand token into an OperandSpec. */
OperandSpec
parseOperandToken(std::string token, int line_no)
{
    OperandSpec spec;
    if (startsWith(token, "*")) {
        spec.implicit = true;
        token = token.substr(1);
    }

    // Split off ":access".
    std::string access;
    size_t colon = token.rfind(':');
    if (colon != std::string::npos) {
        access = token.substr(colon + 1);
        token = token.substr(0, colon);
    }

    // Split off "=FIXEDREG".
    std::string fixed;
    size_t eq = token.find('=');
    if (eq != std::string::npos) {
        fixed = token.substr(eq + 1);
        token = token.substr(0, eq);
        spec.implicit = true;
    }

    auto kind = parseKind(token);
    if (!kind)
        fatal("instr table line ", line_no, ": unknown operand kind '",
              token, "'");
    spec.kind = kind->kind;
    spec.reg_class = kind->reg_class;
    spec.width = kind->width;

    if (spec.kind == OpKind::Imm) {
        fatalIf(!access.empty(), "instr table line ", line_no,
                ": immediates take no access specifier");
        spec.read = true;
        return spec;
    }

    if (access == "r") {
        spec.read = true;
    } else if (access == "w") {
        spec.written = true;
    } else if (access == "rw") {
        spec.read = spec.written = true;
    } else {
        fatal("instr table line ", line_no, ": operand '", token,
              "' needs access r|w|rw, got '", access, "'");
    }

    if (!fixed.empty()) {
        auto reg = parseRegName(fixed);
        fatalIf(!reg, "instr table line ", line_no,
                ": unknown fixed register '", fixed, "'");
        fatalIf(reg->cls != spec.reg_class, "instr table line ", line_no,
                ": fixed register '", fixed,
                "' does not match operand class");
        spec.fixed_reg = reg->index;
    }
    return spec;
}

} // namespace

size_t
parseInstrTable(const std::string &text, InstrDb &db)
{
    size_t added = 0;
    int line_no = 0;
    for (const std::string &raw : split(text, '\n', false, true)) {
        ++line_no;
        std::string line = raw;
        size_t hash = line.find('#');
        if (hash != std::string::npos)
            line = line.substr(0, hash);
        line = trim(line);
        if (line.empty())
            continue;

        auto tokens = splitWhitespace(line);
        fatalIf(tokens.size() < 1, "instr table line ", line_no,
                ": empty line");
        std::string mnemonic = toUpper(tokens[0]);

        std::vector<OperandSpec> operands;
        FlagMask flags_read, flags_written;
        Extension ext = Extension::Base;
        InstrAttributes attrs;

        for (size_t i = 1; i < tokens.size(); ++i) {
            const std::string &tok = tokens[i];
            if (startsWith(tok, "rflags:")) {
                auto m = FlagMask::fromLetters(tok.substr(7));
                flags_read.cf |= m.cf;
                flags_read.af |= m.af;
                flags_read.spazo |= m.spazo;
            } else if (startsWith(tok, "wflags:")) {
                auto m = FlagMask::fromLetters(tok.substr(7));
                flags_written.cf |= m.cf;
                flags_written.af |= m.af;
                flags_written.spazo |= m.spazo;
            } else if (startsWith(tok, "rwflags:")) {
                auto m = FlagMask::fromLetters(tok.substr(8));
                flags_read.cf |= m.cf;
                flags_read.af |= m.af;
                flags_read.spazo |= m.spazo;
                flags_written.cf |= m.cf;
                flags_written.af |= m.af;
                flags_written.spazo |= m.spazo;
            } else if (startsWith(tok, "ext=")) {
                ext = parseExtension(toUpper(tok.substr(4)));
            } else if (startsWith(tok, "attr=")) {
                for (const auto &a : split(tok.substr(5), ','))
                    applyAttr(a, attrs, line_no);
            } else {
                operands.push_back(parseOperandToken(tok, line_no));
            }
        }

        if (flags_read.any() || flags_written.any()) {
            OperandSpec flags;
            flags.kind = OpKind::Flags;
            flags.implicit = true;
            flags.flags_read = flags_read;
            flags.flags_written = flags_written;
            flags.read = flags_read.any();
            flags.written = flags_written.any();
            operands.push_back(flags);
        }

        db.add(std::move(mnemonic), std::move(operands), ext, attrs);
        ++added;
    }
    return added;
}

std::unique_ptr<InstrDb>
buildDefaultDb()
{
    auto db = std::make_unique<InstrDb>();
    parseInstrTable(defaultInstrTableText(), *db);
    return db;
}

} // namespace uops::isa
