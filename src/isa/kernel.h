/**
 * @file
 * Concrete instruction instances and benchmark kernels.
 *
 * The microbenchmark generators (Section 5) emit sequences of
 * instruction *instances*: a variant plus concrete operand assignments
 * (registers, abstract memory locations, immediates). A Kernel is such
 * a sequence; the simulator executes kernels, and the pretty-printer
 * renders them as Intel-syntax assembler for reports and debugging.
 */

#ifndef UOPS_ISA_KERNEL_H
#define UOPS_ISA_KERNEL_H

#include <string>
#include <vector>

#include "isa/instruction.h"

namespace uops::isa {

/**
 * Value class of divider operands (Section 5.2.5): the latency and
 * throughput of division instructions depend on the operand values, so
 * benchmarks pin operands to known fast or slow values.
 */
enum class DivValueClass : uint8_t {
    None, ///< Not a divider instruction / value-independent.
    Fast, ///< Values giving the minimum latency.
    Slow, ///< Values giving the maximum latency.
};

/**
 * An abstract memory location used by a memory operand.
 *
 * The simulator tracks memory dependencies per location tag; the base
 * register carries the address dependency (only [base] addressing is
 * used, as in Section 8 of the paper).
 */
struct MemLoc
{
    int tag = 0;   ///< Abstract location id (aliasing key).
    Reg base;      ///< Base (address) register.

    bool operator==(const MemLoc &other) const = default;
};

/** Concrete value bound to one operand slot of an instance. */
struct OperandValue
{
    Reg reg;           ///< For Reg operands.
    MemLoc mem;        ///< For Mem operands.
    long imm = 0;      ///< For Imm operands.
};

/** One instruction instance in a benchmark kernel. */
struct InstrInstance
{
    const InstrVariant *variant = nullptr;
    std::vector<OperandValue> ops; ///< Parallel to variant->operands().
    DivValueClass div_class = DivValueClass::None;

    /** Concrete register bound to operand @p i (fixed or assigned). */
    Reg regOf(size_t i) const;

    /** Intel-syntax rendering, e.g. "ADD RAX, [RBX]". */
    std::string toAsm() const;
};

/** A benchmark kernel: straight-line instance sequence. */
using Kernel = std::vector<InstrInstance>;

/** Render a kernel as newline-separated Intel-syntax assembler. */
std::string kernelToAsm(const Kernel &kernel);

/**
 * Build an instance of @p variant with explicit operands taken from
 * @p explicit_values (in syntax order). Implicit fixed registers are
 * filled in automatically; implicit memory operands receive @p
 * implicit_mem.
 */
InstrInstance makeInstance(const InstrVariant &variant,
                           const std::vector<OperandValue> &explicit_values,
                           const MemLoc &implicit_mem = MemLoc{});

/**
 * Parse one Intel-syntax assembler line against the database, e.g.
 * "AESDEC XMM1, XMM2" or "MOV RAX, [RBX]".
 *
 * Memory operands are written "[REG]" and receive location tag 0; a
 * "[REG+N]" form selects location tag N. Immediates are decimal.
 *
 * @throws FatalError when no variant matches.
 */
InstrInstance assembleLine(const InstrDb &db, const std::string &line);

/** Assemble a multi-line listing into a kernel ('#' comments allowed). */
Kernel assemble(const InstrDb &db, const std::string &listing);

} // namespace uops::isa

#endif // UOPS_ISA_KERNEL_H
