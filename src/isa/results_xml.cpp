#include "results_xml.h"

#include "support/status.h"
#include "support/strings.h"

namespace uops::isa {

namespace {

/**
 * A cycle attribute as canonical fixed point. Our own exports parse
 * exactly (the text is a Cycles decimal form); anything else — extra
 * precision in a foreign document, scientific notation — is accepted
 * as a double and re-rounded to the reporting granularity here, so
 * nothing beyond this function ever sees a non-canonical value.
 */
Cycles
requireCycles(const XmlNode &node, const std::string &key)
{
    const std::string &text = node.getAttr(key);
    if (auto exact = Cycles::parse(text))
        return *exact;
    auto value = parseDouble(text);
    fatalIf(!value, "results xml: <", node.name(),
            "> has no numeric '", key, "' attribute",
            text.empty() ? "" : " (unparsable value)");
    return Cycles::round(*value);
}

std::optional<Cycles>
optionalCycles(const XmlNode &node, const std::string &key)
{
    if (!node.hasAttr(key))
        return std::nullopt;
    return requireCycles(node, key);
}

int
requireInt(const XmlNode &node, const std::string &key)
{
    auto value = parseInt(node.getAttr(key));
    fatalIf(!value, "results xml: <", node.name(), "> has no integer '",
            key, "' attribute");
    return static_cast<int>(*value);
}

InstrResult
parseInstruction(const XmlNode &node)
{
    InstrResult out;
    out.name = node.getAttr("name");
    out.mnemonic = node.getAttr("mnemonic");
    fatalIf(out.name.empty(), "results xml: <instruction> without name");

    const XmlNode *ports = node.firstChild("ports");
    fatalIf(ports == nullptr, "results xml: ", out.name,
            " has no <ports>");
    out.ports = ports->getAttr("usage");
    out.uops = requireInt(*ports, "uops");

    const XmlNode *tp = node.firstChild("throughput");
    fatalIf(tp == nullptr, "results xml: ", out.name,
            " has no <throughput>");
    out.tp_measured = requireCycles(*tp, "measured");
    out.tp_with_breakers = optionalCycles(*tp, "withDepBreakers");
    out.tp_slow = optionalCycles(*tp, "slowValues");
    out.tp_from_ports = optionalCycles(*tp, "fromPorts");

    for (const XmlNode *lat : node.childrenNamed("latency")) {
        ResultLatency pair;
        pair.src_op = requireInt(*lat, "srcOp");
        pair.dst_op = requireInt(*lat, "dstOp");
        pair.cycles = requireCycles(*lat, "cycles");
        pair.upper_bound = lat->getAttr("upperBound") == "1";
        pair.slow_cycles = optionalCycles(*lat, "slowCycles");
        out.latencies.push_back(pair);
    }
    if (const XmlNode *sr = node.firstChild("latencySameReg"))
        out.same_reg_cycles = requireCycles(*sr, "cycles");
    if (const XmlNode *rt = node.firstChild("storeLoadRoundTrip"))
        out.store_roundtrip = requireCycles(*rt, "cycles");
    return out;
}

UArchResults
parseUArchResults(const XmlNode &node)
{
    UArchResults out;
    out.architecture = node.getAttr("architecture");
    fatalIf(out.architecture.empty(),
            "results xml: <uopsInfo> without architecture");
    out.processor = node.getAttr("processor");
    for (const XmlNode *instr : node.childrenNamed("instruction"))
        out.instrs.push_back(parseInstruction(*instr));
    for (const XmlNode *err : node.childrenNamed("error"))
        out.errors.emplace_back(err->getAttr("name"), err->text());
    return out;
}

} // namespace

ResultsDoc
parseResultsXml(const XmlNode &root)
{
    ResultsDoc doc;
    if (root.name() == "uopsInfo") {
        doc.uarches.push_back(parseUArchResults(root));
    } else if (root.name() == "uopsBatch") {
        for (const XmlNode *node : root.childrenNamed("uopsInfo"))
            doc.uarches.push_back(parseUArchResults(*node));
    } else {
        fatal("results xml: expected <uopsInfo> or <uopsBatch>, got <",
              root.name(), ">");
    }
    return doc;
}

ResultsDoc
parseResultsXml(const std::string &text)
{
    return parseResultsXml(*parseXml(text));
}

} // namespace uops::isa
