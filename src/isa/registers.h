/**
 * @file
 * Architectural register model for the x86 subset.
 *
 * Registers are identified by a class (width/kind) and an index within
 * the class. Several classes alias the same underlying renameable
 * entity (e.g. AL/AX/EAX/RAX all alias GPR base 0); the simulator
 * tracks dependencies at the granularity of "architectural units"
 * (ArchUnit), which this header defines. Status flags are split into
 * the three independently renamed groups found on Intel hardware
 * (CF; AF; and the SF/ZF/PF/OF group), so partial-flag dependencies
 * such as CMC's carry-only update are modeled faithfully.
 */

#ifndef UOPS_ISA_REGISTERS_H
#define UOPS_ISA_REGISTERS_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace uops::isa {

/** Register classes (operand widths/kinds). */
enum class RegClass : uint8_t {
    Gpr8,     ///< AL, BL, CL, ... (low byte)
    Gpr8High, ///< AH, BH, CH, DH
    Gpr16,    ///< AX, BX, ...
    Gpr32,    ///< EAX, EBX, ...
    Gpr64,    ///< RAX, RBX, ...
    Mmx,      ///< MM0..MM7
    Xmm,      ///< XMM0..XMM15
    Ymm,      ///< YMM0..YMM15
    None,
};

/** Number of architectural registers in a class. */
int regClassCount(RegClass cls);

/** Width of a register class, in bits. */
int regClassWidth(RegClass cls);

/** True for the general-purpose classes (any width). */
bool isGprClass(RegClass cls);

/** True for the SIMD vector classes (XMM/YMM). */
bool isVecClass(RegClass cls);

/** Short name for diagnostics, e.g. "GPR64". */
std::string regClassName(RegClass cls);

/** A concrete architectural register: class plus index. */
struct Reg
{
    RegClass cls = RegClass::None;
    int index = -1;

    bool valid() const { return cls != RegClass::None && index >= 0; }
    bool operator==(const Reg &other) const = default;
};

/** Intel-syntax name, e.g. "RAX", "XMM3", "AH". */
std::string regName(const Reg &reg);

/** Parse an Intel-syntax register name; nullopt when unknown. */
std::optional<Reg> parseRegName(const std::string &name);

/**
 * Renameable architectural units.
 *
 * Unit ids:
 *   0..15   GPR bases (RAX..R15; all width views alias the base)
 *   16..23  MMX registers
 *   24..39  vector registers (XMM/YMM alias the same unit)
 *   40      CF   (carry flag, renamed separately)
 *   41      AF   (adjust flag)
 *   42      SPAZO (SF/ZF/PF/OF group)
 */
using ArchUnit = int;

constexpr ArchUnit kUnitGprBase = 0;
constexpr ArchUnit kUnitMmxBase = 16;
constexpr ArchUnit kUnitVecBase = 24;
constexpr ArchUnit kUnitFlagCf = 40;
constexpr ArchUnit kUnitFlagAf = 41;
constexpr ArchUnit kUnitFlagSpazo = 42;
constexpr int kNumArchUnits = 43;

/** Unit that a register renames to. */
ArchUnit regUnit(const Reg &reg);

/** Human-readable unit name for diagnostics. */
std::string archUnitName(ArchUnit unit);

/**
 * Bitmask over the three flag groups.
 *
 * DSL letters: C -> CF, A -> AF, and any of S/P/Z/O -> the SPAZO group.
 */
struct FlagMask
{
    bool cf = false;
    bool af = false;
    bool spazo = false;

    bool any() const { return cf || af || spazo; }
    bool operator==(const FlagMask &other) const = default;

    /** Units covered by this mask. */
    std::vector<ArchUnit> units() const;

    /** Parse DSL letters ("CAPZSO" subsets). */
    static FlagMask fromLetters(const std::string &letters);

    /** Canonical letter form, e.g. "C.SPZO" -> "C+SPAZO". */
    std::string toString() const;
};

} // namespace uops::isa

#endif // UOPS_ISA_REGISTERS_H
