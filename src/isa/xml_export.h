/**
 * @file
 * Machine-readable XML export of the instruction database.
 *
 * Section 6.1: the information extracted from the XED configuration is
 * converted into "a simpler XML representation that contains enough
 * information for generating assembler code for each instruction
 * variant, and that also includes information on implicit operands."
 * This module emits (and re-imports, for round-trip testing) exactly
 * that representation.
 */

#ifndef UOPS_ISA_XML_EXPORT_H
#define UOPS_ISA_XML_EXPORT_H

#include <memory>

#include "isa/instruction.h"
#include "support/xml.h"

namespace uops::isa {

/** Emit the whole database as an XML tree. */
std::unique_ptr<XmlNode> exportInstrDbXml(const InstrDb &db);

/** Rebuild a database from its XML representation. */
std::unique_ptr<InstrDb> importInstrDbXml(const XmlNode &root);

} // namespace uops::isa

#endif // UOPS_ISA_XML_EXPORT_H
