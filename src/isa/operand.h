/**
 * @file
 * Operand specifications for instruction variants.
 *
 * Mirrors the information the paper extracts from the XED configuration
 * files (Section 6.1): operand kind (register/memory/immediate/flags),
 * width, read/write direction, and whether the operand is explicit or
 * implicit (including implicit fixed registers such as RAX for MUL and
 * the status-flags pseudo-operand).
 */

#ifndef UOPS_ISA_OPERAND_H
#define UOPS_ISA_OPERAND_H

#include <string>

#include "isa/registers.h"

namespace uops::isa {

/** Kind of an instruction operand. */
enum class OpKind : uint8_t {
    Reg,   ///< Register operand of a given RegClass.
    Mem,   ///< Memory operand ([base] addressing only, per Section 8).
    Imm,   ///< Immediate operand.
    Flags, ///< Status-flags pseudo-operand (always implicit).
};

/**
 * Static description of one operand of an instruction variant.
 */
struct OperandSpec
{
    OpKind kind = OpKind::Reg;

    /** Register class for Reg operands. */
    RegClass reg_class = RegClass::None;

    /** Access width in bits (memory/immediate; registers derive it). */
    int width = 0;

    bool read = false;
    bool written = false;

    /** Implicit operands do not appear in the assembler syntax. */
    bool implicit = false;

    /**
     * For implicit register operands pinned to a fixed architectural
     * register (e.g. RAX/RDX for MUL, CL for shift counts): the index
     * within reg_class. -1 when the operand is freely assignable.
     */
    int fixed_reg = -1;

    /** Flag groups read/written (Flags operands only). */
    FlagMask flags_read;
    FlagMask flags_written;

    /** Width in bits (registers via their class, others via width). */
    int effectiveWidth() const;

    /** True when both read and written. */
    bool readWritten() const { return read && written; }

    /** Compact human-readable form, e.g. "R64:rw" or "M64:r". */
    std::string toString() const;

    /** Short type tag used in variant names, e.g. "R64", "M32", "I8". */
    std::string typeTag() const;
};

} // namespace uops::isa

#endif // UOPS_ISA_OPERAND_H
