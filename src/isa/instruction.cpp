#include "instruction.h"

#include "support/status.h"

namespace uops::isa {

Extension
parseExtension(const std::string &name)
{
    static const std::map<std::string, Extension> table = {
        {"BASE", Extension::Base},   {"MMX", Extension::Mmx},
        {"SSE", Extension::Sse},     {"SSE2", Extension::Sse2},
        {"SSE3", Extension::Sse3},   {"SSSE3", Extension::Ssse3},
        {"SSE41", Extension::Sse41}, {"SSE42", Extension::Sse42},
        {"AES", Extension::Aes},     {"CLMUL", Extension::Clmul},
        {"AVX", Extension::Avx},     {"F16C", Extension::F16c},
        {"AVX2", Extension::Avx2},   {"BMI1", Extension::Bmi1},
        {"BMI2", Extension::Bmi2},   {"FMA", Extension::Fma},
        {"ADX", Extension::Adx},     {"SGX", Extension::Sgx},
    };
    auto it = table.find(name);
    if (it == table.end())
        fatal("unknown ISA extension '", name, "'");
    return it->second;
}

std::string
extensionName(Extension ext)
{
    switch (ext) {
      case Extension::Base: return "BASE";
      case Extension::Mmx: return "MMX";
      case Extension::Sse: return "SSE";
      case Extension::Sse2: return "SSE2";
      case Extension::Sse3: return "SSE3";
      case Extension::Ssse3: return "SSSE3";
      case Extension::Sse41: return "SSE41";
      case Extension::Sse42: return "SSE42";
      case Extension::Aes: return "AES";
      case Extension::Clmul: return "CLMUL";
      case Extension::Avx: return "AVX";
      case Extension::F16c: return "F16C";
      case Extension::Avx2: return "AVX2";
      case Extension::Bmi1: return "BMI1";
      case Extension::Bmi2: return "BMI2";
      case Extension::Fma: return "FMA";
      case Extension::Adx: return "ADX";
      case Extension::Sgx: return "SGX";
    }
    return "BASE";
}

namespace {

std::string
makeVariantName(const std::string &mnemonic,
                const std::vector<OperandSpec> &operands)
{
    std::string name = mnemonic;
    for (const auto &op : operands) {
        if (op.kind == OpKind::Flags)
            continue;
        if (op.implicit && op.kind == OpKind::Reg && op.fixed_reg < 0)
            continue;
        name += "_" + op.typeTag();
        if (op.implicit && op.kind == OpKind::Reg && op.fixed_reg >= 0)
            name += "i"; // implicit fixed register, e.g. CL shift count
    }
    return name;
}

} // namespace

InstrVariant::InstrVariant(int id, std::string mnemonic,
                           std::vector<OperandSpec> operands,
                           Extension ext, InstrAttributes attrs)
    : id_(id),
      mnemonic_(std::move(mnemonic)),
      operands_(std::move(operands)),
      ext_(ext),
      attrs_(attrs)
{
    name_ = makeVariantName(mnemonic_, operands_);
}

std::vector<int>
InstrVariant::sourceOperands() const
{
    std::vector<int> out;
    for (size_t i = 0; i < operands_.size(); ++i) {
        const auto &op = operands_[i];
        bool reads = op.read ||
                     (op.kind == OpKind::Flags && op.flags_read.any());
        if (reads && op.kind != OpKind::Imm)
            out.push_back(static_cast<int>(i));
    }
    return out;
}

std::vector<int>
InstrVariant::destOperands() const
{
    std::vector<int> out;
    for (size_t i = 0; i < operands_.size(); ++i) {
        const auto &op = operands_[i];
        bool writes = op.written ||
                      (op.kind == OpKind::Flags && op.flags_written.any());
        if (writes)
            out.push_back(static_cast<int>(i));
    }
    return out;
}

std::vector<int>
InstrVariant::explicitOperands() const
{
    std::vector<int> out;
    for (size_t i = 0; i < operands_.size(); ++i)
        if (!operands_[i].implicit && operands_[i].kind != OpKind::Flags)
            out.push_back(static_cast<int>(i));
    return out;
}

int
InstrVariant::flagsOperand() const
{
    for (size_t i = 0; i < operands_.size(); ++i)
        if (operands_[i].kind == OpKind::Flags)
            return static_cast<int>(i);
    return -1;
}

int
InstrVariant::memOperand() const
{
    for (size_t i = 0; i < operands_.size(); ++i)
        if (operands_[i].kind == OpKind::Mem)
            return static_cast<int>(i);
    return -1;
}

bool
InstrVariant::readsMemory() const
{
    for (const auto &op : operands_)
        if (op.kind == OpKind::Mem && op.read)
            return true;
    return false;
}

bool
InstrVariant::writesMemory() const
{
    for (const auto &op : operands_)
        if (op.kind == OpKind::Mem && op.written)
            return true;
    return false;
}

bool
InstrVariant::hasVecOperand() const
{
    for (const auto &op : operands_)
        if (op.kind == OpKind::Reg && isVecClass(op.reg_class))
            return true;
    return false;
}

std::string
InstrVariant::syntaxTemplate() const
{
    std::string out = mnemonic_;
    auto expl = explicitOperands();
    for (size_t i = 0; i < expl.size(); ++i) {
        out += (i == 0) ? " " : ", ";
        out += "%" + std::to_string(i);
    }
    return out;
}

const InstrVariant &
InstrDb::add(std::string mnemonic, std::vector<OperandSpec> operands,
             Extension ext, InstrAttributes attrs)
{
    auto variant = std::make_unique<InstrVariant>(
        static_cast<int>(variants_.size()), std::move(mnemonic),
        std::move(operands), ext, attrs);
    const std::string &name = variant->name();
    fatalIf(by_name_.count(name) > 0, "duplicate instruction variant '",
            name, "'");
    const InstrVariant *ptr = variant.get();
    by_name_[name] = ptr;
    by_mnemonic_[variant->mnemonic()].push_back(ptr);
    variants_.push_back(std::move(variant));
    return *ptr;
}

const InstrVariant &
InstrDb::byId(int id) const
{
    panicIf(id < 0 || static_cast<size_t>(id) >= variants_.size(),
            "InstrDb::byId: id out of range: ", id);
    return *variants_[id];
}

const InstrVariant *
InstrDb::byName(const std::string &name) const
{
    auto it = by_name_.find(name);
    return it == by_name_.end() ? nullptr : it->second;
}

std::vector<const InstrVariant *>
InstrDb::byMnemonic(const std::string &mnemonic) const
{
    auto it = by_mnemonic_.find(mnemonic);
    if (it == by_mnemonic_.end())
        return {};
    return it->second;
}

std::vector<const InstrVariant *>
InstrDb::all() const
{
    std::vector<const InstrVariant *> out;
    out.reserve(variants_.size());
    for (const auto &v : variants_)
        out.push_back(v.get());
    return out;
}

} // namespace uops::isa
