/**
 * @file
 * Instruction variants and the instruction database.
 *
 * An InstrVariant corresponds to one entry of the machine-readable
 * instruction description the paper derives from the XED configuration
 * (Section 6.1): a mnemonic plus a specific combination of operand
 * types/widths, together with the attributes the characterization
 * algorithms need (divider usage, zero-idiom behaviour, serializing,
 * system instruction, ...).
 */

#ifndef UOPS_ISA_INSTRUCTION_H
#define UOPS_ISA_INSTRUCTION_H

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "isa/operand.h"

namespace uops::isa {

/** ISA extension an instruction belongs to (gates per-uarch availability). */
enum class Extension : uint8_t {
    Base,   ///< Always available.
    Mmx,
    Sse,
    Sse2,
    Sse3,
    Ssse3,
    Sse41,
    Sse42,
    Aes,    ///< AES-NI, Westmere+.
    Clmul,  ///< PCLMULQDQ, Westmere+.
    Avx,    ///< Sandy Bridge+.
    F16c,   ///< Ivy Bridge+.
    Avx2,   ///< Haswell+.
    Bmi1,   ///< Haswell+.
    Bmi2,   ///< Haswell+.
    Fma,    ///< Haswell+.
    Adx,    ///< Broadwell+.
    Sgx,    ///< Skylake+ (stand-in for the SKL additions).
};

/** Parse/print extension names used in the DSL. */
Extension parseExtension(const std::string &name);
std::string extensionName(Extension ext);

/** Boolean attributes referenced by the measurement algorithms. */
struct InstrAttributes
{
    /** Uses the (not fully pipelined) divider unit; value-dependent. */
    bool uses_divider = false;

    /** System instruction (excluded from blocking candidates). */
    bool is_system = false;

    /** Serializing instruction (drains the pipeline). */
    bool is_serializing = false;

    /** Control-flow instruction (branch/jump with immediate target). */
    bool is_branch = false;

    /**
     * Control flow depending on a register value (indirect JMP/CALL,
     * RET); excluded from blocking candidates (Section 5.1.1).
     */
    bool is_cf_reg = false;

    /** The PAUSE instruction (explicitly excluded). */
    bool is_pause = false;

    /** NOP-like: eliminated in the reorder buffer, no ports used. */
    bool is_nop = false;

    /**
     * Zero idiom: with identical register operands the result is
     * constant, the dependency is broken, and (on supporting uarches)
     * no execution port is used (XOR R,R / SUB R,R / PXOR X,X ...).
     */
    bool zero_idiom = false;

    /**
     * Dependency-breaking idiom with identical registers, but still
     * executed on a port ((V)PCMPGTx, Section 7.3.6).
     */
    bool dep_breaking_same_reg = false;

    /** Register-to-register MOV eligible for move elimination. */
    bool mov_elim_candidate = false;

    /** LOCK-prefixed variant (excluded from the IACA µop comparison). */
    bool has_lock_prefix = false;

    /** REP-prefixed variant (variable µop count; excluded likewise). */
    bool has_rep_prefix = false;

    /** VEX-encoded (AVX); selects the AVX blocking-instruction set. */
    bool is_avx = false;
};

/**
 * One instruction variant (mnemonic + operand signature).
 */
class InstrVariant
{
  public:
    InstrVariant(int id, std::string mnemonic,
                 std::vector<OperandSpec> operands, Extension ext,
                 InstrAttributes attrs);

    int id() const { return id_; }
    const std::string &mnemonic() const { return mnemonic_; }

    /** Unique variant name, e.g. "ADD_R64_R64" or "DIV_R64". */
    const std::string &name() const { return name_; }

    const std::vector<OperandSpec> &operands() const { return operands_; }
    const OperandSpec &operand(size_t i) const { return operands_[i]; }
    size_t numOperands() const { return operands_.size(); }

    Extension extension() const { return ext_; }
    const InstrAttributes &attrs() const { return attrs_; }

    /** Indices of operands that are read (sources). */
    std::vector<int> sourceOperands() const;

    /** Indices of operands that are written (destinations). */
    std::vector<int> destOperands() const;

    /** Indices of explicit operands, in syntax order. */
    std::vector<int> explicitOperands() const;

    /** Index of the flags pseudo-operand, or -1. */
    int flagsOperand() const;

    /** Index of the first memory operand, or -1. */
    int memOperand() const;

    /** True when any operand reads memory / writes memory. */
    bool readsMemory() const;
    bool writesMemory() const;

    /** True when any operand is a vector (XMM/YMM) register. */
    bool hasVecOperand() const;

    /** Assembler syntax with placeholders, e.g. "ADD %0, %1". */
    std::string syntaxTemplate() const;

  private:
    int id_;
    std::string mnemonic_;
    std::string name_;
    std::vector<OperandSpec> operands_;
    Extension ext_;
    InstrAttributes attrs_;
};

/**
 * The instruction database: owns all variants, provides lookups.
 */
class InstrDb
{
  public:
    InstrDb() = default;
    InstrDb(const InstrDb &) = delete;
    InstrDb &operator=(const InstrDb &) = delete;

    /** Add a variant; fails on duplicate names. */
    const InstrVariant &add(std::string mnemonic,
                            std::vector<OperandSpec> operands,
                            Extension ext, InstrAttributes attrs);

    size_t size() const { return variants_.size(); }

    const InstrVariant &byId(int id) const;

    /** Lookup by unique variant name; nullptr when absent. */
    const InstrVariant *byName(const std::string &name) const;

    /** All variants of a mnemonic (empty when unknown). */
    std::vector<const InstrVariant *>
    byMnemonic(const std::string &mnemonic) const;

    /** All variants, in id order. */
    std::vector<const InstrVariant *> all() const;

  private:
    std::vector<std::unique_ptr<InstrVariant>> variants_;
    std::map<std::string, const InstrVariant *> by_name_;
    std::map<std::string, std::vector<const InstrVariant *>> by_mnemonic_;
};

} // namespace uops::isa

#endif // UOPS_ISA_INSTRUCTION_H
