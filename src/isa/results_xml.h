/**
 * @file
 * Parser for the uops.info-style *results* XML (Section 6.4).
 *
 * xml_export.h already round-trips the instruction-set description
 * (Section 6.1); the measurement results emitted by
 * core::exportResultsXml() / CharacterizationReport::toXml() were
 * export-only until now. This module closes that asymmetry with a
 * plain-data representation of the results documents — deliberately
 * free of uarch/ and core/ types so it stays inside the isa layer —
 * and a parser accepting both roots:
 *
 *   <uopsInfo architecture=... processor=...>   one uarch
 *   <uopsBatch uarches=...>                     a whole sweep
 *
 * Microarchitectures are carried as their short names ("SKL") and
 * port usages as their rendered form ("3*p015+1*p23"); consumers above
 * the uarch layer resolve them with uarch::parseUArch and
 * uarch::PortUsage::fromString. All cycle values are canonical
 * fixed-point Cycles: our own exports parse exactly (the attribute
 * text is the Cycles decimal form), and foreign or hand-edited
 * documents carrying more precision than the writer emits are
 * re-rounded to the reporting granularity at this boundary — so a
 * database ingested from a parsed document is bit-identical to one
 * ingested from the in-memory characterization it was exported from,
 * the round-trip property the db layer's golden test pins.
 */

#ifndef UOPS_ISA_RESULTS_XML_H
#define UOPS_ISA_RESULTS_XML_H

#include <optional>
#include <string>
#include <vector>

#include "support/cycles.h"
#include "support/xml.h"

namespace uops::isa {

/** One <latency> element: a (source, destination) operand pair. */
struct ResultLatency
{
    int src_op = -1;
    int dst_op = -1;
    Cycles cycles;
    bool upper_bound = false;
    std::optional<Cycles> slow_cycles;
};

/** One <instruction> element of a results document. */
struct InstrResult
{
    std::string name;      ///< Unique variant name, e.g. "ADD_R64_R64".
    std::string mnemonic;

    std::string ports;     ///< Port usage, e.g. "3*p015+1*p23" or "-".
    int uops = 0;          ///< Total µop count reported with it.

    Cycles tp_measured;
    std::optional<Cycles> tp_with_breakers;
    std::optional<Cycles> tp_slow;
    std::optional<Cycles> tp_from_ports;

    std::vector<ResultLatency> latencies;
    std::optional<Cycles> same_reg_cycles;   ///< <latencySameReg>
    std::optional<Cycles> store_roundtrip;   ///< <storeLoadRoundTrip>
};

/** One <uopsInfo> element: all results for one microarchitecture. */
struct UArchResults
{
    std::string architecture;  ///< Short name, e.g. "SKL".
    std::string processor;
    std::vector<InstrResult> instrs;

    /** (variant name, message) of each <error> child. */
    std::vector<std::pair<std::string, std::string>> errors;
};

/** A parsed results document (one or many uarches). */
struct ResultsDoc
{
    std::vector<UArchResults> uarches;
};

/**
 * Parse a results tree rooted at <uopsInfo> or <uopsBatch>.
 *
 * @throws FatalError on any other root or malformed content.
 */
ResultsDoc parseResultsXml(const XmlNode &root);

/** Convenience overload: parse the document text first. */
ResultsDoc parseResultsXml(const std::string &text);

} // namespace uops::isa

#endif // UOPS_ISA_RESULTS_XML_H
