#include "registers.h"

#include <array>

#include "support/status.h"
#include "support/strings.h"

namespace uops::isa {

namespace {

const std::array<std::string, 16> kGpr64Names = {
    "RAX", "RCX", "RDX", "RBX", "RSP", "RBP", "RSI", "RDI",
    "R8",  "R9",  "R10", "R11", "R12", "R13", "R14", "R15"};

const std::array<std::string, 16> kGpr32Names = {
    "EAX", "ECX", "EDX", "EBX", "ESP",  "EBP",  "ESI",  "EDI",
    "R8D", "R9D", "R10D", "R11D", "R12D", "R13D", "R14D", "R15D"};

const std::array<std::string, 16> kGpr16Names = {
    "AX",  "CX",  "DX",   "BX",   "SP",   "BP",   "SI",   "DI",
    "R8W", "R9W", "R10W", "R11W", "R12W", "R13W", "R14W", "R15W"};

const std::array<std::string, 16> kGpr8Names = {
    "AL",  "CL",  "DL",   "BL",   "SPL",  "BPL",  "SIL",  "DIL",
    "R8B", "R9B", "R10B", "R11B", "R12B", "R13B", "R14B", "R15B"};

const std::array<std::string, 4> kGpr8HighNames = {"AH", "CH", "DH", "BH"};

} // namespace

int
regClassCount(RegClass cls)
{
    switch (cls) {
      case RegClass::Gpr8:
      case RegClass::Gpr16:
      case RegClass::Gpr32:
      case RegClass::Gpr64:
        return 16;
      case RegClass::Gpr8High:
        return 4;
      case RegClass::Mmx:
        return 8;
      case RegClass::Xmm:
      case RegClass::Ymm:
        return 16;
      case RegClass::None:
        return 0;
    }
    return 0;
}

int
regClassWidth(RegClass cls)
{
    switch (cls) {
      case RegClass::Gpr8:
      case RegClass::Gpr8High:
        return 8;
      case RegClass::Gpr16:
        return 16;
      case RegClass::Gpr32:
        return 32;
      case RegClass::Gpr64:
      case RegClass::Mmx:
        return 64;
      case RegClass::Xmm:
        return 128;
      case RegClass::Ymm:
        return 256;
      case RegClass::None:
        return 0;
    }
    return 0;
}

bool
isGprClass(RegClass cls)
{
    switch (cls) {
      case RegClass::Gpr8:
      case RegClass::Gpr8High:
      case RegClass::Gpr16:
      case RegClass::Gpr32:
      case RegClass::Gpr64:
        return true;
      default:
        return false;
    }
}

bool
isVecClass(RegClass cls)
{
    return cls == RegClass::Xmm || cls == RegClass::Ymm;
}

std::string
regClassName(RegClass cls)
{
    switch (cls) {
      case RegClass::Gpr8: return "GPR8";
      case RegClass::Gpr8High: return "GPR8H";
      case RegClass::Gpr16: return "GPR16";
      case RegClass::Gpr32: return "GPR32";
      case RegClass::Gpr64: return "GPR64";
      case RegClass::Mmx: return "MMX";
      case RegClass::Xmm: return "XMM";
      case RegClass::Ymm: return "YMM";
      case RegClass::None: return "NONE";
    }
    return "NONE";
}

std::string
regName(const Reg &reg)
{
    panicIf(!reg.valid() || reg.index >= regClassCount(reg.cls),
            "regName: invalid register");
    switch (reg.cls) {
      case RegClass::Gpr64: return kGpr64Names[reg.index];
      case RegClass::Gpr32: return kGpr32Names[reg.index];
      case RegClass::Gpr16: return kGpr16Names[reg.index];
      case RegClass::Gpr8: return kGpr8Names[reg.index];
      case RegClass::Gpr8High: return kGpr8HighNames[reg.index];
      case RegClass::Mmx: return "MM" + std::to_string(reg.index);
      case RegClass::Xmm: return "XMM" + std::to_string(reg.index);
      case RegClass::Ymm: return "YMM" + std::to_string(reg.index);
      case RegClass::None: break;
    }
    panic("regName: unreachable");
}

std::optional<Reg>
parseRegName(const std::string &name)
{
    std::string up = toUpper(name);
    auto scan = [&](const auto &names, RegClass cls) -> std::optional<Reg> {
        for (size_t i = 0; i < names.size(); ++i)
            if (names[i] == up)
                return Reg{cls, static_cast<int>(i)};
        return std::nullopt;
    };
    if (auto r = scan(kGpr64Names, RegClass::Gpr64))
        return r;
    if (auto r = scan(kGpr32Names, RegClass::Gpr32))
        return r;
    if (auto r = scan(kGpr16Names, RegClass::Gpr16))
        return r;
    if (auto r = scan(kGpr8Names, RegClass::Gpr8))
        return r;
    if (auto r = scan(kGpr8HighNames, RegClass::Gpr8High))
        return r;
    for (const char *prefix : {"MM", "XMM", "YMM"}) {
        if (startsWith(up, prefix)) {
            auto idx = parseInt(up.substr(std::string(prefix).size()));
            if (!idx)
                continue;
            RegClass cls = std::string(prefix) == "MM" ? RegClass::Mmx
                           : std::string(prefix) == "XMM" ? RegClass::Xmm
                                                          : RegClass::Ymm;
            // "MM" must not swallow "XMM"/"YMM".
            if (cls == RegClass::Mmx && up.size() > 2 &&
                !std::isdigit(static_cast<unsigned char>(up[2])))
                continue;
            if (*idx >= 0 && *idx < regClassCount(cls))
                return Reg{cls, static_cast<int>(*idx)};
        }
    }
    return std::nullopt;
}

ArchUnit
regUnit(const Reg &reg)
{
    panicIf(!reg.valid(), "regUnit: invalid register");
    switch (reg.cls) {
      case RegClass::Gpr8:
      case RegClass::Gpr8High:
      case RegClass::Gpr16:
      case RegClass::Gpr32:
      case RegClass::Gpr64:
        return kUnitGprBase + reg.index;
      case RegClass::Mmx:
        return kUnitMmxBase + reg.index;
      case RegClass::Xmm:
      case RegClass::Ymm:
        return kUnitVecBase + reg.index;
      case RegClass::None:
        break;
    }
    panic("regUnit: unreachable");
}

std::string
archUnitName(ArchUnit unit)
{
    if (unit >= kUnitGprBase && unit < kUnitMmxBase)
        return kGpr64Names[unit - kUnitGprBase];
    if (unit >= kUnitMmxBase && unit < kUnitVecBase)
        return "MM" + std::to_string(unit - kUnitMmxBase);
    if (unit >= kUnitVecBase && unit < kUnitFlagCf)
        return "V" + std::to_string(unit - kUnitVecBase);
    if (unit == kUnitFlagCf)
        return "CF";
    if (unit == kUnitFlagAf)
        return "AF";
    if (unit == kUnitFlagSpazo)
        return "SPAZO";
    return "?" + std::to_string(unit);
}

std::vector<ArchUnit>
FlagMask::units() const
{
    std::vector<ArchUnit> out;
    if (cf)
        out.push_back(kUnitFlagCf);
    if (af)
        out.push_back(kUnitFlagAf);
    if (spazo)
        out.push_back(kUnitFlagSpazo);
    return out;
}

FlagMask
FlagMask::fromLetters(const std::string &letters)
{
    FlagMask mask;
    for (char c : toUpper(letters)) {
        switch (c) {
          case 'C': mask.cf = true; break;
          case 'A': mask.af = true; break;
          case 'S':
          case 'P':
          case 'Z':
          case 'O':
            mask.spazo = true;
            break;
          default:
            fatal("unknown flag letter '", std::string(1, c), "'");
        }
    }
    return mask;
}

std::string
FlagMask::toString() const
{
    std::vector<std::string> parts;
    if (cf)
        parts.push_back("C");
    if (af)
        parts.push_back("A");
    if (spazo)
        parts.push_back("SPZO");
    std::string out;
    for (size_t i = 0; i < parts.size(); ++i) {
        if (i)
            out += "+";
        out += parts[i];
    }
    return out.empty() ? "-" : out;
}

} // namespace uops::isa
