#include "kernel.h"

#include "support/status.h"
#include "support/strings.h"

namespace uops::isa {

Reg
InstrInstance::regOf(size_t i) const
{
    const OperandSpec &spec = variant->operand(i);
    panicIf(spec.kind != OpKind::Reg, "regOf: operand ", i,
            " of ", variant->name(), " is not a register");
    if (spec.fixed_reg >= 0)
        return Reg{spec.reg_class, spec.fixed_reg};
    return ops[i].reg;
}

std::string
InstrInstance::toAsm() const
{
    std::string out = variant->mnemonic();
    bool first = true;
    for (int idx : variant->explicitOperands()) {
        out += first ? " " : ", ";
        first = false;
        const OperandSpec &spec = variant->operand(idx);
        const OperandValue &val = ops[idx];
        switch (spec.kind) {
          case OpKind::Reg:
            out += regName(val.reg);
            break;
          case OpKind::Mem:
            out += "[" + regName(val.mem.base);
            if (val.mem.tag != 0)
                out += "+" + std::to_string(val.mem.tag);
            out += "]";
            break;
          case OpKind::Imm:
            out += std::to_string(val.imm);
            break;
          case OpKind::Flags:
            break;
        }
    }
    return out;
}

std::string
kernelToAsm(const Kernel &kernel)
{
    std::string out;
    for (const auto &instance : kernel) {
        out += instance.toAsm();
        out += '\n';
    }
    return out;
}

InstrInstance
makeInstance(const InstrVariant &variant,
             const std::vector<OperandValue> &explicit_values,
             const MemLoc &implicit_mem)
{
    InstrInstance inst;
    inst.variant = &variant;
    inst.ops.resize(variant.numOperands());

    auto expl = variant.explicitOperands();
    fatalIf(explicit_values.size() != expl.size(), "makeInstance(",
            variant.name(), "): expected ", expl.size(),
            " explicit operands, got ", explicit_values.size());
    for (size_t i = 0; i < expl.size(); ++i)
        inst.ops[expl[i]] = explicit_values[i];

    // Fill implicit operands.
    for (size_t i = 0; i < variant.numOperands(); ++i) {
        const OperandSpec &spec = variant.operand(i);
        if (!spec.implicit)
            continue;
        if (spec.kind == OpKind::Reg && spec.fixed_reg >= 0) {
            inst.ops[i].reg = Reg{spec.reg_class, spec.fixed_reg};
        } else if (spec.kind == OpKind::Mem) {
            inst.ops[i].mem = implicit_mem;
            if (!inst.ops[i].mem.base.valid()) {
                // Default implicit memory: RSP-based (stack).
                inst.ops[i].mem.base = Reg{RegClass::Gpr64, 4};
                inst.ops[i].mem.tag = -1;
            }
        }
    }
    return inst;
}

namespace {

/** Untrusted-input bounds for assembler text (the /predict path
 *  feeds raw client bytes through here). Generous for any legitimate
 *  kernel; tight enough that hostile input cannot smuggle extreme
 *  values past the narrower internal types. */
constexpr size_t kMaxAsmLineBytes = 512;
constexpr size_t kMaxAsmOperands = 8;
/** Displacements are symbolic memory-location tags (isa::MemLoc),
 *  not addresses; negative values collide with the reserved implicit
 *  stack tag and a long->int cast would silently alias distinct
 *  displacements, so the accepted range is bounded explicitly. */
constexpr long kMaxMemDisplacement = 1 << 20;

/** Parse one explicit operand token from assembler text. */
OperandValue
parseAsmOperand(const std::string &token, OpKind &kind_out)
{
    OperandValue val;
    std::string t = trim(token);
    fatalIf(t.empty(), "assemble: empty operand");
    if (t.front() == '[') {
        fatalIf(t.back() != ']', "assemble: unterminated memory operand '",
                t, "'");
        std::string inner = t.substr(1, t.size() - 2);
        auto plus = inner.find('+');
        std::string base = inner;
        if (plus != std::string::npos) {
            base = trim(inner.substr(0, plus));
            auto tag = parseInt(inner.substr(plus + 1));
            fatalIf(!tag, "assemble: bad displacement in '", t, "'");
            fatalIf(*tag < 0 || *tag > kMaxMemDisplacement,
                    "assemble: displacement out of range [0, ",
                    kMaxMemDisplacement, "] in '", t, "'");
            val.mem.tag = static_cast<int>(*tag);
        }
        auto reg = parseRegName(trim(base));
        fatalIf(!reg, "assemble: unknown base register '", base, "'");
        val.mem.base = *reg;
        kind_out = OpKind::Mem;
        return val;
    }
    if (auto reg = parseRegName(t)) {
        val.reg = *reg;
        kind_out = OpKind::Reg;
        return val;
    }
    auto imm = parseInt(t);
    fatalIf(!imm, "assemble: cannot parse operand '", t, "'");
    val.imm = *imm;
    kind_out = OpKind::Imm;
    return val;
}

/** Does explicit operand spec @p spec accept a token of @p kind/value? */
bool
operandMatches(const OperandSpec &spec, OpKind kind, const OperandValue &val)
{
    if (spec.kind != kind)
        return false;
    if (kind == OpKind::Reg) {
        if (spec.reg_class != val.reg.cls)
            return false;
        if (spec.fixed_reg >= 0 && spec.fixed_reg != val.reg.index)
            return false;
    }
    return true;
}

} // namespace

InstrInstance
assembleLine(const InstrDb &db, const std::string &line)
{
    std::string text = trim(line);
    fatalIf(text.size() > kMaxAsmLineBytes,
            "assemble: line exceeds ", kMaxAsmLineBytes, " bytes");
    size_t space = text.find(' ');
    std::string mnemonic =
        toUpper(space == std::string::npos ? text : text.substr(0, space));
    std::string rest =
        space == std::string::npos ? "" : text.substr(space + 1);

    std::vector<OperandValue> values;
    std::vector<OpKind> kinds;
    if (!trim(rest).empty()) {
        for (const auto &tok : split(rest, ',')) {
            fatalIf(values.size() >= kMaxAsmOperands,
                    "assemble: more than ", kMaxAsmOperands,
                    " operands in '", line, "'");
            OpKind kind;
            values.push_back(parseAsmOperand(tok, kind));
            kinds.push_back(kind);
        }
    }

    auto candidates = db.byMnemonic(mnemonic);
    fatalIf(candidates.empty(), "assemble: unknown mnemonic '", mnemonic,
            "'");
    for (const InstrVariant *variant : candidates) {
        auto expl = variant->explicitOperands();
        if (expl.size() != values.size())
            continue;
        bool ok = true;
        for (size_t i = 0; i < expl.size(); ++i) {
            if (!operandMatches(variant->operand(expl[i]), kinds[i],
                                values[i])) {
                ok = false;
                break;
            }
        }
        if (ok)
            return makeInstance(*variant, values);
    }
    fatal("assemble: no variant of '", mnemonic, "' matches '", line, "'");
}

Kernel
assemble(const InstrDb &db, const std::string &listing)
{
    Kernel kernel;
    for (const auto &raw : split(listing, '\n')) {
        std::string line = raw;
        size_t hash = line.find('#');
        if (hash != std::string::npos)
            line = line.substr(0, hash);
        line = trim(line);
        if (line.empty())
            continue;
        kernel.push_back(assembleLine(db, line));
    }
    return kernel;
}

} // namespace uops::isa
