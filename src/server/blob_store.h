/**
 * @file
 * Precomputed per-generation response blobs.
 *
 * The serving hot path for the catalog-shaped endpoints (/uarchs,
 * /instr/{name}) does the same work on every request: walk immutable
 * records, render JSON, copy it onto a socket. A catalog generation
 * is immutable by construction, so all of that work can be done once
 * — at swapCatalog time, off the request path — and the per-request
 * cost collapses to a hash lookup plus a writev of bytes that already
 * exist.
 *
 * A BlobStore is built from one DatabaseCatalog and owns:
 *
 *   - the full /uarchs response body,
 *   - one full /instr/{name} body per variant name (all uarches, in
 *     uarch order — exactly what findByName would produce),
 *   - per-(name, uarch) fragment slices *into* those bodies, so a
 *     /instr/{name}?uarch=X variant is assembled from three spans
 *     (shared prefix, record fragment, "]}") without re-rendering,
 *   - the generation's ETag, derived from the catalog's content hash
 *     (the same FNV-1a digests the storage engine verifies on load),
 *     so HTTP revalidation is content-addressed: two generations
 *     serving identical shard bytes share an ETag, and any
 *     re-characterized shard changes it.
 *
 * Bodies are handed out as shared_ptr<const std::string>: the
 * HttpResponse, the response cache entry and every concurrent sender
 * share one buffer, so a cache insertion of a blob-backed response
 * costs a refcount, not a copy.
 *
 * Byte-identity is by construction, not by discipline: the blobs are
 * rendered through the same writeRecordJson / renderUArchsBody code
 * the legacy per-request path used, and the store is the *only*
 * renderer for these endpoints — both the reactor fast path and the
 * thread-pool path serve the same bytes.
 *
 * Immutable after build(); all accessors are const and thread-safe.
 */

#ifndef UOPS_SERVER_BLOB_STORE_H
#define UOPS_SERVER_BLOB_STORE_H

#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "db/catalog.h"

namespace uops::server {

class JsonWriter;

/** Render one database record as a JSON object (the element type of
 *  /instr and /search "results" arrays). The single source of truth
 *  for the record wire format: the blob store renders through it at
 *  build time and /search renders through it per request, so a
 *  precomputed body is byte-identical to a cold render. */
void writeRecordJson(JsonWriter &json, const db::RecordView &view);

/** Render the full /uarchs response body for @p catalog. */
std::string renderUArchsBody(const db::DatabaseCatalog &catalog);

class BlobStore
{
  public:
    struct Stats
    {
        size_t names = 0;      ///< distinct variant names indexed
        size_t records = 0;    ///< record fragments sliced
        size_t bytes = 0;      ///< total body bytes owned
        uint64_t build_us = 0; ///< wall time of build()
    };

    /** Render every blob for @p catalog. Runs once per generation at
     *  swapCatalog time (never on a request thread's hot path). */
    static std::shared_ptr<const BlobStore>
    build(const db::DatabaseCatalog &catalog);

    /** Opaque ETag value (unquoted) identifying this generation's
     *  content: hashHex of DatabaseCatalog::contentHash(). */
    const std::string &etag() const { return etag_; }

    /** The full /uarchs body. */
    std::shared_ptr<const std::string> uarchsBody() const
    {
        return uarchs_body_;
    }

    /** Full /instr/{name} body (every uarch); nullptr when the
     *  catalog has no record with this variant name. */
    std::shared_ptr<const std::string>
    instrBody(std::string_view name) const;

    /** Assembled /instr/{name}?uarch= body: shared prefix + the one
     *  record fragment + "]}", byte-identical to rendering that
     *  single record. nullptr when (name, arch) is absent. */
    std::shared_ptr<const std::string>
    instrBody(std::string_view name, uarch::UArch arch) const;

    /** Whether any record with this variant name exists. */
    bool hasInstr(std::string_view name) const;

    /**
     * View of one record's precomputed JSON object — the exact
     * writeRecordJson render of (name, arch), as sliced into the full
     * /instr body. /search splices these into its results array
     * (JsonWriter::raw) instead of re-rendering each hit; empty view
     * when the pair is absent. Valid for the store's lifetime.
     */
    std::string_view recordFragment(std::string_view name,
                                    uarch::UArch arch) const;

    Stats stats() const { return stats_; }

  private:
    struct Fragment
    {
        uarch::UArch arch;
        uint32_t offset = 0;  ///< into the full body
        uint32_t length = 0;
    };

    struct Entry
    {
        std::shared_ptr<const std::string> body;
        uint32_t prefix_len = 0;  ///< offset of the first fragment
        std::vector<Fragment> fragments;  ///< uarch-ascending
    };

    /** Heterogeneous string hashing so lookups by string_view never
     *  allocate. */
    struct NameHash
    {
        using is_transparent = void;
        size_t operator()(std::string_view s) const
        {
            return std::hash<std::string_view>{}(s);
        }
    };

    BlobStore() = default;

    std::string etag_;
    std::shared_ptr<const std::string> uarchs_body_;
    std::unordered_map<std::string, Entry, NameHash, std::equal_to<>>
        instr_;
    Stats stats_;
};

} // namespace uops::server

#endif // UOPS_SERVER_BLOB_STORE_H
