/**
 * @file
 * Sharded read-mostly LRU cache for rendered HTTP responses.
 *
 * The serving workload is uops.info-shaped: many concurrent readers
 * issuing a heavily skewed set of GET queries against an immutable
 * database. A single-mutex LRU would serialize every reader on the
 * recency-list update, so the cache is split into N shards, each with
 * its own lock, keyed by a hash of the request target. Hit/miss
 * counters are plain atomics outside the locks.
 *
 * Values are complete HttpResponse bodies. A serving generation's
 * catalog is immutable, but the generation itself can be hot-swapped
 * (QueryService::swapCatalog), so every entry carries the serving
 * epoch it was rendered under and a lookup hits only when the epochs
 * match: a response rendered from generation N can never be returned
 * while generation N+1 is being served, without any flush-on-swap
 * coordination. The epoch lives in the entry rather than the key, so
 * a hit stays a zero-allocation string_view lookup and a new
 * generation's put() overwrites the retired entry in place instead
 * of letting it squat until LRU eviction. Within an epoch entries
 * never expire — eviction is purely capacity-driven (per shard,
 * true LRU).
 */

#ifndef UOPS_SERVER_RESPONSE_CACHE_H
#define UOPS_SERVER_RESPONSE_CACHE_H

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "server/http.h"

namespace uops::server {

class ResponseCache
{
  public:
    struct Stats
    {
        uint64_t hits = 0;
        uint64_t misses = 0;
        uint64_t insertions = 0;
        uint64_t evictions = 0;
        size_t entries = 0;
        size_t shards = 0;
        size_t capacity = 0;   ///< total across shards

        /** Body bytes the cache *owns* (copied into entries).
         *  Blob-backed responses contribute zero here: their entry
         *  holds a shared_ptr into the generation's blob arena, so
         *  caching one costs a refcount, not a copy. The gap between
         *  this and the wire bytes served is the dedupe win. */
        size_t owned_bytes = 0;
    };

    /**
     * @param num_shards        Lock shards (rounded up to 1).
     * @param capacity_per_shard Max entries per shard (>= 1).
     */
    ResponseCache(size_t num_shards, size_t capacity_per_shard);

    /** Look up a rendered response for one serving epoch; counts a
     *  hit or miss. An entry rendered under a different epoch is a
     *  miss (but stays cached for requests still pinning its
     *  generation). The epoch is deliberately non-defaulted: put()
     *  requires one, and a mismatched epoch is a silent 0% hit rate,
     *  not an error. */
    std::optional<HttpResponse> get(std::string_view key,
                                    uint64_t epoch);

    /** Insert (or overwrite) an entry, evicting the shard's LRU
     *  tail. */
    void put(std::string_view key, uint64_t epoch,
             const HttpResponse &response);

    Stats stats() const;

  private:
    struct Entry
    {
        std::string key;
        uint64_t epoch;
        HttpResponse response;
    };

    struct Shard
    {
        std::mutex mutex;
        /** Most-recent first; map values point into this list. */
        std::list<Entry> lru;
        std::unordered_map<std::string_view,
                           decltype(lru)::iterator>
            index;
        std::atomic<uint64_t> hits{0};
        std::atomic<uint64_t> misses{0};
        std::atomic<uint64_t> insertions{0};
        std::atomic<uint64_t> evictions{0};
        size_t owned_bytes = 0;  ///< guarded by mutex
    };

    Shard &shardFor(std::string_view key);

    std::vector<std::unique_ptr<Shard>> shards_;
    size_t capacity_per_shard_;
};

} // namespace uops::server

#endif // UOPS_SERVER_RESPONSE_CACHE_H
