#include "blob_store.h"

#include "server/json.h"
#include "support/hash.h"
#include "support/obs/trace.h"

namespace uops::server {

void
writeRecordJson(JsonWriter &json, const db::RecordView &view)
{
    json.beginObject();
    json.member("name", std::string_view(view.name()));
    json.member("mnemonic", std::string_view(view.mnemonic()));
    json.member("extension", std::string_view(view.extension()));
    json.member("uarch", std::string_view(
                             uarch::uarchShortName(view.arch())));
    json.member("ports",
                std::string_view(view.portUsage().toString()));
    json.member("uops", view.uopCount());
    json.member("max_latency", view.maxLatency());

    json.key("throughput").beginObject();
    json.member("measured", view.tpMeasured());
    if (auto v = view.tpWithBreakers())
        json.member("with_dep_breakers", *v);
    if (auto v = view.tpSlow())
        json.member("slow_values", *v);
    if (auto v = view.tpFromPorts())
        json.member("from_ports", *v);
    json.endObject();

    json.key("latency").beginArray();
    for (const isa::ResultLatency &pair : view.latencies()) {
        json.beginObject();
        json.member("src_op", pair.src_op);
        json.member("dst_op", pair.dst_op);
        json.member("cycles", pair.cycles);
        if (pair.upper_bound)
            json.member("upper_bound", true);
        if (pair.slow_cycles)
            json.member("slow_cycles", *pair.slow_cycles);
        json.endObject();
    }
    json.endArray();

    if (auto v = view.sameRegCycles())
        json.member("latency_same_reg", *v);
    if (auto v = view.storeRoundTrip())
        json.member("store_load_roundtrip", *v);
    json.endObject();
}

std::string
renderUArchsBody(const db::DatabaseCatalog &catalog)
{
    JsonWriter json;
    json.beginObject();
    json.key("uarchs").beginArray();
    for (uarch::UArch arch : catalog.uarches()) {
        const uarch::UArchInfo &info = uarch::uarchInfo(arch);
        json.beginObject();
        json.member("name", std::string_view(info.short_name));
        json.member("full_name", std::string_view(info.full_name));
        json.member("processor", std::string_view(info.processor));
        json.member("ports", info.num_ports);
        json.member("records", catalog.numRecords(arch));
        json.endObject();
    }
    json.endArray();
    json.endObject();
    return std::move(json).str();
}

std::shared_ptr<const BlobStore>
BlobStore::build(const db::DatabaseCatalog &catalog)
{
    uint64_t t0_us = obs::traceNowUs();
    auto store = std::shared_ptr<BlobStore>(new BlobStore);
    store->etag_ = hashHex(catalog.contentHash());
    store->uarchs_body_ =
        std::make_shared<const std::string>(renderUArchsBody(catalog));

    // Render every record once, grouped by variant name. Shards are
    // uarch-ascending and rows are walked in order, so each name's
    // fragment list lands in exactly findByName's result order.
    struct Pending
    {
        uarch::UArch arch;
        std::string fragment;
    };
    std::unordered_map<std::string, std::vector<Pending>, NameHash,
                       std::equal_to<>>
        by_name;
    size_t records = 0;
    for (const db::ShardEntry &shard : catalog.shards()) {
        const db::InstructionDatabase &db = *shard.db;
        for (size_t row = 0; row < db.numRecords(); ++row) {
            db::RecordView view =
                db.record(static_cast<uint32_t>(row));
            JsonWriter json;
            writeRecordJson(json, view);
            by_name[std::string(view.name())].push_back(
                {shard.arch, std::move(json).str()});
            ++records;
        }
    }

    // Assemble full bodies; fragments become (offset, length) slices
    // into them, so a ?uarch= variant shares the full body's bytes.
    // The manual prefix is byte-for-byte what JsonWriter emits for
    // member("name", ...) followed by key("results").beginArray().
    size_t bytes = store->uarchs_body_->size();
    for (auto &[name, pendings] : by_name) {
        std::string body =
            "{\"name\":\"" + jsonEscape(name) + "\",\"results\":[";
        Entry entry;
        entry.prefix_len = static_cast<uint32_t>(body.size());
        entry.fragments.reserve(pendings.size());
        for (size_t i = 0; i < pendings.size(); ++i) {
            if (i > 0)
                body += ',';
            Fragment fragment;
            fragment.arch = pendings[i].arch;
            fragment.offset = static_cast<uint32_t>(body.size());
            fragment.length =
                static_cast<uint32_t>(pendings[i].fragment.size());
            body += pendings[i].fragment;
            entry.fragments.push_back(fragment);
        }
        body += "]}";
        bytes += body.size();
        entry.body = std::make_shared<const std::string>(
            std::move(body));
        store->instr_.emplace(name, std::move(entry));
    }

    store->stats_.names = store->instr_.size();
    store->stats_.records = records;
    store->stats_.bytes = bytes;
    store->stats_.build_us = obs::traceNowUs() - t0_us;
    return store;
}

std::shared_ptr<const std::string>
BlobStore::instrBody(std::string_view name) const
{
    auto it = instr_.find(name);
    if (it == instr_.end())
        return nullptr;
    return it->second.body;
}

std::shared_ptr<const std::string>
BlobStore::instrBody(std::string_view name, uarch::UArch arch) const
{
    auto it = instr_.find(name);
    if (it == instr_.end())
        return nullptr;
    const Entry &entry = it->second;
    for (const Fragment &fragment : entry.fragments) {
        if (fragment.arch != arch)
            continue;
        const std::string &body = *entry.body;
        auto out = std::make_shared<std::string>();
        out->reserve(entry.prefix_len + fragment.length + 2);
        out->append(body, 0, entry.prefix_len);
        out->append(body, fragment.offset, fragment.length);
        out->append("]}");
        return out;
    }
    return nullptr;
}

bool
BlobStore::hasInstr(std::string_view name) const
{
    return instr_.find(name) != instr_.end();
}

std::string_view
BlobStore::recordFragment(std::string_view name,
                          uarch::UArch arch) const
{
    auto it = instr_.find(name);
    if (it == instr_.end())
        return {};
    const Entry &entry = it->second;
    for (const Fragment &fragment : entry.fragments)
        if (fragment.arch == arch)
            return std::string_view(*entry.body)
                .substr(fragment.offset, fragment.length);
    return {};
}

} // namespace uops::server
