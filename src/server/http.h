/**
 * @file
 * HTTP/1.1 message types and wire parsing for the serving layer.
 *
 * Deliberately tiny: the subset a JSON query API needs. Requests are
 * parsed from a buffered head (everything up to the blank line) plus
 * a Content-Length-delimited body; responses always carry an explicit
 * Content-Length and a Connection header, so the client always knows
 * both the body frame and the connection lifecycle. HTTP/1.1
 * persistent connections are honored (wantsKeepAlive); transport
 * (sockets) is separate in http_server.h so the request router
 * (service.h) can be exercised in tests without opening a port.
 */

#ifndef UOPS_SERVER_HTTP_H
#define UOPS_SERVER_HTTP_H

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace uops::server {

struct HttpRequest
{
    std::string method;   ///< "GET", "POST", ...
    std::string target;   ///< Raw request target, e.g. "/search?a=b".
    std::string path;     ///< Decoded path, e.g. "/search".
    std::map<std::string, std::string> query; ///< Decoded parameters.
    std::vector<std::pair<std::string, std::string>> headers;
    std::string body;

    /** Protocol minor version: 1 for HTTP/1.1, 0 for HTTP/1.0. */
    int minor_version = 1;

    /** Case-insensitive header lookup; nullptr when absent. */
    const std::string *header(std::string_view name) const;

    /** Query parameter; empty optional when absent. */
    std::optional<std::string> param(const std::string &key) const;
};

struct HttpResponse
{
    int status = 200;
    std::string content_type = "application/json";
    std::string body;

    /** Set when served from the response cache (adds X-Cache: hit). */
    bool cache_hit = false;

    /** Correlation ID echoed as X-Request-Id when non-empty. Always
     *  per-request: the service assigns it after the response cache
     *  copy is taken, so a cached body never replays another
     *  request's ID. */
    std::string request_id;
};

/** Reason phrase for the status codes the server emits. */
const char *statusText(int status);

/** Decode %XX escapes and '+' (as space) in a URL component. */
std::string percentDecode(std::string_view s);

/** Parse "a=1&b=2" into decoded key/value pairs. */
std::map<std::string, std::string> parseQueryString(std::string_view s);

/**
 * Offset just past the "\r\n\r\n" terminating the request head, or
 * nullopt while more bytes are needed.
 */
std::optional<size_t> findHeaderEnd(std::string_view buffer);

/**
 * Parse a request head (request line + headers, excluding the blank
 * line). Fills everything but the body.
 *
 * @throws FatalError on malformed input (caller answers 400).
 */
HttpRequest parseRequestHead(std::string_view head);

/** Declared Content-Length (0 when absent). @throws FatalError. */
size_t contentLength(const HttpRequest &request);

/**
 * Whether the client asked to keep the connection open: HTTP/1.1
 * defaults to persistent unless `Connection: close`; HTTP/1.0 is
 * persistent only with an explicit `Connection: keep-alive`. Header
 * values compare case-insensitively.
 */
bool wantsKeepAlive(const HttpRequest &request);

/**
 * Serialize status line, headers and body for the wire. @p keep_alive
 * selects the Connection header; the one-argument form closes (every
 * error path and the final response of a connection use it).
 */
std::string serializeResponse(const HttpResponse &response,
                              bool keep_alive = false);

} // namespace uops::server

#endif // UOPS_SERVER_HTTP_H
