/**
 * @file
 * HTTP/1.1 message types and wire parsing for the serving layer.
 *
 * Deliberately tiny: the subset a JSON query API needs. Requests are
 * parsed from a buffered head (everything up to the blank line) plus
 * a Content-Length-delimited body; responses always carry an explicit
 * Content-Length and a Connection header, so the client always knows
 * both the body frame and the connection lifecycle. HTTP/1.1
 * persistent connections are honored (wantsKeepAlive); transport
 * (sockets) is separate in http_server.h so the request router
 * (service.h) can be exercised in tests without opening a port.
 */

#ifndef UOPS_SERVER_HTTP_H
#define UOPS_SERVER_HTTP_H

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace uops::server {

struct HttpRequest
{
    std::string method;   ///< "GET", "POST", ...
    std::string target;   ///< Raw request target, e.g. "/search?a=b".
    std::string path;     ///< Decoded path, e.g. "/search".
    std::map<std::string, std::string> query; ///< Decoded parameters.
    std::vector<std::pair<std::string, std::string>> headers;
    std::string body;

    /** Protocol minor version: 1 for HTTP/1.1, 0 for HTTP/1.0. */
    int minor_version = 1;

    /** Case-insensitive header lookup; nullptr when absent. */
    const std::string *header(std::string_view name) const;

    /** Query parameter; empty optional when absent. */
    std::optional<std::string> param(const std::string &key) const;
};

struct HttpResponse
{
    int status = 200;
    /** Always a string literal (static storage), so a view avoids a
     *  heap allocation per constructed response — "application/json"
     *  is one byte past the small-string capacity. */
    std::string_view content_type = "application/json";
    std::string body;

    /** Shared body bytes: when set, this — not @p body — is the
     *  payload. Blob-backed responses (precomputed per-generation
     *  bodies, see server/blob_store.h) point here so a response, its
     *  response-cache entry, and every concurrent sender share one
     *  buffer instead of copying it; the control block keeps the
     *  owning generation's arena alive. Invariant: body is empty
     *  whenever blob is set. */
    std::shared_ptr<const std::string> blob;

    /** Entity tag (unquoted) emitted as `ETag: "<value>"`. Set on
     *  blob-backed bodies: the value derives from the generation's
     *  shard content hashes, so If-None-Match revalidation is exact. */
    std::string etag;

    /** Set when served from the response cache (adds X-Cache: hit). */
    bool cache_hit = false;

    /** Correlation ID echoed as X-Request-Id when non-empty. Always
     *  per-request: the service assigns it after the response cache
     *  copy is taken, so a cached body never replays another
     *  request's ID. */
    std::string request_id;

    /** The payload bytes, wherever they live. */
    std::string_view
    bodyView() const
    {
        return blob ? std::string_view(*blob)
                    : std::string_view(body);
    }

    size_t
    bodySize() const
    {
        return blob ? blob->size() : body.size();
    }
};

/** Reason phrase for the status codes the server emits. */
const char *statusText(int status);

/** Decode %XX escapes and '+' (as space) in a URL component. */
std::string percentDecode(std::string_view s);

/** Parse "a=1&b=2" into decoded key/value pairs. */
std::map<std::string, std::string> parseQueryString(std::string_view s);

/**
 * Offset just past the "\r\n\r\n" terminating the request head, or
 * nullopt while more bytes are needed.
 */
std::optional<size_t> findHeaderEnd(std::string_view buffer);

/**
 * Parse a request head (request line + headers, excluding the blank
 * line). Fills everything but the body.
 *
 * @throws FatalError on malformed input (caller answers 400).
 */
HttpRequest parseRequestHead(std::string_view head);

/** Declared Content-Length (0 when absent). @throws FatalError. */
size_t contentLength(const HttpRequest &request);

/**
 * Whether the client asked to keep the connection open: HTTP/1.1
 * defaults to persistent unless `Connection: close`; HTTP/1.0 is
 * persistent only with an explicit `Connection: keep-alive`. Header
 * values compare case-insensitively.
 */
bool wantsKeepAlive(const HttpRequest &request);

/**
 * Serialize status line, headers and body for the wire. @p keep_alive
 * selects the Connection header; the one-argument form closes (every
 * error path and the final response of a connection use it).
 */
std::string serializeResponse(const HttpResponse &response,
                              bool keep_alive = false);

/**
 * The head alone: status line + headers + terminating blank line, no
 * body bytes. The reactor write path pairs this with the response's
 * (possibly shared) body in one writev, so a blob-backed body is
 * never copied per request. serializeResponse == head + bodyView.
 */
std::string serializeResponseHead(const HttpResponse &response,
                                  bool keep_alive);

/**
 * The head alone, appended to @p out instead of returned — the
 * reactor's output buffers reuse one growing string across a
 * pipelined batch, so head serialization allocates only when the
 * buffer actually grows.
 */
void appendResponseHead(std::string &out, const HttpResponse &response,
                        bool keep_alive);

/** Whether @p request's If-None-Match header matches @p etag
 *  (unquoted value): handles `*`, comma-separated candidate lists,
 *  quoted tags, and weak `W/` prefixes (weak comparison — fine for
 *  revalidation). False when the header is absent. */
bool ifNoneMatch(const HttpRequest &request, std::string_view etag);

/** Same matching over a raw header value (empty = absent). */
bool ifNoneMatchValue(std::string_view header_value,
                      std::string_view etag);

/**
 * Zero-allocation view of a simple GET head, produced by
 * scanFastGet(). Every view points into the scanned buffer; it is
 * valid only until the buffer is consumed.
 */
struct FastGetView
{
    std::string_view target;         ///< raw request target
    std::string_view if_none_match;  ///< raw value; empty = absent
    std::string_view request_id;     ///< X-Request-Id; empty = absent
    bool connection_close = false;
};

/**
 * Try to read @p head (a complete request head, blank line included)
 * as a plain HTTP/1.1 GET without materializing an HttpRequest: no
 * percent decoding, no query map, no header vector — just views.
 *
 * Deliberately narrow. Anything this scanner is not certain about —
 * a non-GET method, HTTP/1.0, a body (Content-Length or
 * Transfer-Encoding present), Expect, Connection token lists,
 * duplicate tracked headers, malformed lines — returns false, and
 * the caller takes the full parseRequestHead() path, which remains
 * the semantic reference. A true result never changes what the full
 * parser would have concluded; it only skips its allocations.
 */
bool scanFastGet(std::string_view head, FastGetView &out);

} // namespace uops::server

#endif // UOPS_SERVER_HTTP_H
