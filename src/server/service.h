/**
 * @file
 * The query service: routes HTTP requests against an
 * InstructionDatabase to JSON responses.
 *
 * Endpoints (all responses application/json):
 *
 *   GET /healthz                       liveness + record counts
 *   GET /uarchs                        served microarchitectures
 *   GET /instr/{name}[?uarch=SKL]      one variant, all/one uarch(s)
 *   GET /search?...                    indexed search; parameters:
 *         uarch=SKL mnemonic=ADD extension=SSE2 uses=p05
 *         tp_min= tp_max= lat_min= lat_max= limit=
 *   GET /diff?a=NHM&b=SKL              cross-uarch differences
 *   GET /predict?uarch=SKL&asm=...     basic-block throughput via
 *                                      core::PerformancePredictor
 *         (';' or newlines separate instructions; POST with the
 *          listing as text/plain body is the uncached equivalent)
 *   GET /stats                         per-endpoint metrics + cache
 *
 * GET responses for /instr, /search, /diff and /predict pass through
 * the sharded LRU response cache keyed by the raw request target;
 * /healthz and /stats are never cached. Every request updates the
 * per-endpoint metrics (requests, errors, cache hits, total µs).
 *
 * handle() is thread-safe: the database and instruction set are
 * immutable, the cache and metrics are internally synchronized, and
 * per-uarch predictor contexts are built once under a mutex.
 */

#ifndef UOPS_SERVER_SERVICE_H
#define UOPS_SERVER_SERVICE_H

#include <array>
#include <atomic>
#include <memory>
#include <mutex>

#include "core/predictor.h"
#include "db/database.h"
#include "server/http.h"
#include "server/response_cache.h"

namespace uops::server {

/** Routes, in metrics order. */
enum class Endpoint : uint8_t {
    Healthz,
    UArchs,
    Instr,
    Search,
    Diff,
    Predict,
    Stats,
    Other,
};

constexpr size_t kNumEndpoints = 8;

/** Metrics name of a route ("/instr", ...). */
const char *endpointName(Endpoint endpoint);

/** Point-in-time copy of one endpoint's counters. */
struct EndpointMetrics
{
    uint64_t requests = 0;
    uint64_t errors = 0;       ///< responses with status >= 400
    uint64_t cache_hits = 0;
    uint64_t total_us = 0;     ///< wall time spent in handle()
};

class QueryService
{
  public:
    struct Options
    {
        size_t cache_shards = 8;
        size_t cache_capacity_per_shard = 512;
    };

    /**
     * @param database Query database (immutable while serving).
     * @param instrs   Instruction set used to assemble /predict
     *                 kernels and resolve variants.
     */
    QueryService(const db::InstructionDatabase &database,
                 const isa::InstrDb &instrs, Options options);

    /** Default options. */
    QueryService(const db::InstructionDatabase &database,
                 const isa::InstrDb &instrs);

    /** Route one request to a response (thread-safe). */
    HttpResponse handle(const HttpRequest &request);

    /** Counters for one endpoint. */
    EndpointMetrics metrics(Endpoint endpoint) const;

    ResponseCache::Stats cacheStats() const { return cache_.stats(); }

    const db::InstructionDatabase &database() const { return db_; }

  private:
    struct Counters
    {
        std::atomic<uint64_t> requests{0};
        std::atomic<uint64_t> errors{0};
        std::atomic<uint64_t> cache_hits{0};
        std::atomic<uint64_t> total_us{0};
    };

    /** Lazily-built per-uarch predictor (set must outlive it). */
    struct PredictContext
    {
        core::CharacterizationSet set;
        std::unique_ptr<core::PerformancePredictor> predictor;
    };

    Endpoint route(const HttpRequest &request) const;
    HttpResponse dispatch(Endpoint endpoint,
                          const HttpRequest &request);

    HttpResponse handleHealthz();
    HttpResponse handleUArchs();
    HttpResponse handleInstr(const HttpRequest &request);
    HttpResponse handleSearch(const HttpRequest &request);
    HttpResponse handleDiff(const HttpRequest &request);
    HttpResponse handlePredict(const HttpRequest &request);
    HttpResponse handleStats();

    const PredictContext &predictContext(uarch::UArch arch);

    const db::InstructionDatabase &db_;
    const isa::InstrDb &instrs_;
    ResponseCache cache_;
    std::array<Counters, kNumEndpoints> counters_;

    std::mutex predict_mutex_;
    std::map<uarch::UArch, std::unique_ptr<PredictContext>>
        predict_contexts_;
};

/** JSON error body {"error": message}. */
HttpResponse errorResponse(int status, const std::string &message);

} // namespace uops::server

#endif // UOPS_SERVER_SERVICE_H
