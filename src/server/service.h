/**
 * @file
 * The query service: routes HTTP requests against a sharded
 * DatabaseCatalog to JSON responses.
 *
 * Endpoints (all responses application/json):
 *
 *   GET  /healthz                      liveness + record counts +
 *                                      serving generation
 *   GET  /uarchs                       served microarchitectures
 *   GET  /instr/{name}[?uarch=SKL]     one variant, all/one uarch(s)
 *   GET  /search?...                   scan-executor search; params:
 *         uarch=SKL name= mnemonic=ADD extension=SSE2
 *         uses=p05 uses_only=p015 uses_exact=p05
 *         tp_min= tp_max= lat_min= lat_max=
 *         uops_min= uops_max= has=breakers,slow,ports,same_reg,store
 *         limit=
 *   GET  /diff?a=NHM&b=SKL             cross-uarch differences
 *   GET  /analytics/regressions        cross-generation analytics:
 *         ?from=HSW&to=SKL             variants present on both
 *         [&metric=tp|latency|any]     uarches whose metrics moved in
 *         [&direction=regressed|       the requested direction,
 *           improved|changed]          optionally pre-filtered by the
 *         [&mnemonic=&extension=       same compound predicates
 *          &uses=&...&limit=]          /search accepts
 *   GET  /predict?uarch=SKL&asm=...    simulate a multi-instruction
 *   POST /predict?uarch=SKL             kernel (';' or newlines
 *                                       separate instructions; POST
 *                                       body is the listing) on the
 *                                       requested generation's
 *                                       cycle-level model, plus the
 *                                       catalog-derived static
 *                                       analysis when coverage allows
 *   POST /reload                       hot-swap to the freshly
 *                                      reloaded catalog generation
 *   GET  /stats                        per-endpoint metrics + caches
 *   GET  /metrics                      Prometheus text exposition
 *                                      (text/plain, never cached)
 *
 * Observability: every handle() call resolves a request ID (a valid
 * client X-Request-Id is echoed, otherwise one is minted) and
 * returns it on the response; at Info the logger emits one access
 * line per request (id, method, endpoint, status, latency, cache
 * disposition, serving generation/epoch) and at Warn a slow_request
 * line past Options::slow_request_us. /predict records spans across
 * parse -> assemble -> simulate -> analysis -> render; they are
 * returned in the body under "timings" when ?debug=timings is set
 * (such responses bypass both caches) and forwarded to the
 * UOPS_TRACE Chrome-trace profile when enabled.
 *
 * /predict is the compute endpoint: kernels are parsed with
 * isa::assemble, admission-checked (instruction count, listing size
 * -> 413; simulated-cycle budget, engine queue -> 429, all with
 * structured JSON bodies), simulated on a dedicated PredictEngine
 * thread pool, and memoized in a second response cache keyed by the
 * exact sim::MeasurementCache kernel fingerprint — so GET, POST and
 * whitespace-variant spellings of one kernel share a single entry,
 * and memoized responses are byte-identical to cold ones. Like the
 * GET response cache, the memo is epoch-keyed (the static-analysis
 * half of the body depends on the serving generation); the engine's
 * deeper simulation memo is generation-independent and survives
 * swaps.
 *
 * Hot swap is epoch-style: the service holds one immutable
 * ServingState (catalog handle + lazily built per-uarch predictor
 * contexts) behind a shared_ptr; every request pins the state once
 * and runs entirely against it, so a concurrent swapCatalog() —
 * triggered by /reload or `uopsq serve --watch` — installs the next
 * generation atomically while in-flight requests finish on the old
 * one, which stays alive (shards, mappings and all) until its last
 * request drops the handle.
 *
 * GET responses for /instr, /search, /diff and /predict pass through
 * the sharded LRU response cache keyed by (serving epoch, raw request
 * target), so a swap can never serve a response rendered from a
 * previous generation; /healthz and /stats are never cached. Every
 * request updates the per-endpoint metrics (requests, errors, cache
 * hits, total µs).
 *
 * handle() is thread-safe: catalogs are immutable, the cache and
 * metrics are internally synchronized, and per-uarch predictor
 * contexts are built once per generation under that state's mutex.
 */

#ifndef UOPS_SERVER_SERVICE_H
#define UOPS_SERVER_SERVICE_H

#include <array>
#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>

#include "core/predictor.h"
#include "db/catalog.h"
#include "server/blob_store.h"
#include "server/http.h"
#include "server/predict_engine.h"
#include "server/response_cache.h"
#include "support/obs/log.h"
#include "support/obs/metrics.h"
#include "support/obs/trace.h"

namespace uops::server {

/** Routes, in metrics order. */
enum class Endpoint : uint8_t {
    Healthz,
    UArchs,
    Instr,
    Search,
    Diff,
    Predict,
    Reload,
    Stats,
    Metrics,
    Analytics,
    Other,
};

constexpr size_t kNumEndpoints = 11;

/** Metrics name of a route ("/instr", ...). */
const char *endpointName(Endpoint endpoint);

/** Point-in-time copy of one endpoint's counters. */
struct EndpointMetrics
{
    uint64_t requests = 0;
    uint64_t errors = 0;       ///< responses with status >= 400
    uint64_t cache_hits = 0;
    uint64_t total_us = 0;     ///< wall time spent in handle()
    uint64_t samples = 0;      ///< latency observations recorded

    /** Median / tail handle() latency; empty until the endpoint has
     *  been hit at least once — "no data" is not "0 µs". */
    std::optional<uint64_t> p50_us;
    std::optional<uint64_t> p99_us;
};

/** Whether a client-supplied X-Request-Id is safe to echo: 1..128
 *  printable non-space ASCII chars (anything else gets a fresh
 *  server-minted ID instead — correlation must not become a header
 *  injection or log forgery vector). */
bool acceptableRequestId(std::string_view id);

/** Per-request admission bounds for /predict kernels. */
struct PredictAdmission
{
    size_t max_instructions = 64;          ///< beyond: 413
    size_t max_listing_bytes = 64 * 1024;  ///< beyond: 413
};

class QueryService
{
  public:
    using CatalogPtr = std::shared_ptr<const db::DatabaseCatalog>;

    /** Produces the next catalog generation for /reload (typically:
     *  re-open the catalog directory). Runs on a request thread,
     *  serialized across concurrent reloads; any exception maps to a
     *  structured 503 response and the current generation keeps
     *  serving — a corrupt store can reject a reload, never take
     *  down what is already being served. The reloader fills
     *  @p report when it had to fall back past a bad generation;
     *  the service folds it into /stats and the /reload body. */
    using Reloader = std::function<CatalogPtr(db::RecoveryReport &)>;

    struct Options
    {
        size_t cache_shards = 8;
        size_t cache_capacity_per_shard = 512;

        /** Kernel-memo (fingerprint-keyed /predict responses). */
        size_t memo_shards = 8;
        size_t memo_capacity_per_shard = 1024;

        PredictAdmission admission;

        /** Simulation pool, cycle budget, harness config. */
        PredictEngine::Options engine;

        /** Requests at or above this handle() latency get a Warn
         *  `slow_request` log line (0 disables). */
        uint64_t slow_request_us = 250000;

        /** Initial logger threshold. Warn by default so embedding
         *  the service (tests, benches, the CLI's direct handle()
         *  path) stays silent; `uopsq serve` raises it to Info to
         *  turn on the access log. */
        obs::LogLevel log_level = obs::LogLevel::Warn;
    };

    /**
     * @param catalog First served generation (non-null).
     * @param instrs  Instruction set used to assemble /predict
     *                kernels and resolve variants.
     */
    QueryService(CatalogPtr catalog, const isa::InstrDb &instrs,
                 Options options);

    /** Default options. */
    QueryService(CatalogPtr catalog, const isa::InstrDb &instrs);

    /** Route one request to a response (thread-safe). */
    HttpResponse handle(const HttpRequest &request);

    /**
     * The serving fast path: answer @p request *without* rendering
     * when a precomputed body exists — a response-cache hit, a
     * blob-store hit (/uarchs, /instr), or an If-None-Match
     * revalidation against the generation ETag (304, no body at
     * all). Returns true with @p response filled (metrics, request
     * ID and access log all applied — the request is finished);
     * false when the request needs real work (cold /search, /diff,
     * /predict, POSTs, admin endpoints), in which case the caller
     * dispatches it to handle() on a worker thread. Thread-safe;
     * byte-identical to handle() for every request it serves, since
     * both paths share the same handlers and finalization.
     */
    bool tryServeFast(const HttpRequest &request,
                      HttpResponse &response);

    /**
     * The same fast path driven by a zero-parse head scan
     * (scanFastGet): target prefixes select the endpoint, the
     * response cache is probed by raw target, and blob-store hits
     * are assembled straight from views — no HttpRequest, no query
     * map, no percent decoding. Returns true with @p response
     * finished exactly as tryServeFast() would have; false for
     * anything it is not certain about (unknown names, escaped
     * targets, error renders, cold work), in which case the caller
     * must fall back to the full parser — the two lanes are
     * byte-identical wherever both serve.
     */
    bool tryServeRaw(const FastGetView &raw, HttpResponse &response);

    /** Counters for one endpoint (read from the registry — the same
     *  series /metrics renders, so the two can never disagree). */
    EndpointMetrics metrics(Endpoint endpoint) const;

    /** The service's metrics registry (what GET /metrics renders,
     *  together with obs::Registry::global()). */
    obs::Registry &registry() { return registry_; }
    const obs::Registry &registry() const { return registry_; }

    /** Structured logger: access log at Info, slow requests and
     *  reload/recovery events at Warn. The HTTP transport layer
     *  shares it for pre-routing error paths. */
    obs::Logger &logger() { return logger_; }

    ResponseCache::Stats cacheStats() const { return cache_.stats(); }

    /** Fingerprint-keyed /predict memo counters. */
    ResponseCache::Stats kernelMemoStats() const
    {
        return kernel_memo_.stats();
    }

    /** Simulation-engine counters. */
    PredictEngine::Stats engineStats() const
    {
        return engine_.stats();
    }

    /** The currently served catalog generation. */
    CatalogPtr catalog() const;

    /** Monotonic swap counter (also the cache key space id). */
    uint64_t epoch() const;

    /**
     * Atomically install @p next as the serving generation. In-flight
     * requests finish on the generation they pinned; new requests see
     * @p next. Returns the new epoch.
     */
    uint64_t swapCatalog(CatalogPtr next);

    /** Configure the /reload source. */
    void setReloader(Reloader reloader);

    /** Convenience for reloaders that never recover (in-memory
     *  swaps, tests): wraps @p reloader to ignore the report. */
    void setReloader(std::function<CatalogPtr()> reloader);

    /** Run the reloader and swap (what POST /reload does). Returns
     *  the new epoch. Throws when no reloader is configured or the
     *  reloader fails. */
    uint64_t reload();

    /** Latency histogram bucket count (obs::Histogram's power-of-two
     *  buckets: bucket i holds requests whose handle() time in µs has
     *  bit_width i; the last bucket is open-ended). */
    static constexpr size_t kLatencyBuckets = obs::Histogram::kBuckets;

  private:
    /** Registry-backed handles for one endpoint's hot-path series
     *  (resolved once at construction; recording is lock-free). */
    struct EndpointInstruments
    {
        obs::Counter *requests = nullptr;
        obs::Counter *errors = nullptr;
        obs::Counter *cache_hits = nullptr;
        obs::Histogram *latency = nullptr;
    };

    /** Lazily-built per-uarch predictor (set must outlive it). */
    struct PredictContext
    {
        core::CharacterizationSet set;
        std::unique_ptr<core::PerformancePredictor> predictor;
    };

    /**
     * One serving generation: everything a request needs, pinned by
     * a single shared_ptr copy at dispatch. Immutable except for the
     * lazily populated predictor contexts (guarded by their mutex).
     */
    struct ServingState
    {
        CatalogPtr catalog;
        uint64_t epoch = 0;

        /** Precomputed response bodies + generation ETag, built once
         *  at install time (the swapCatalog hook). Never null. */
        std::shared_ptr<const BlobStore> blobs;

        std::mutex predict_mutex;
        std::map<uarch::UArch, std::unique_ptr<PredictContext>>
            predict_contexts;
    };
    using StatePtr = std::shared_ptr<ServingState>;

    StatePtr state() const;
    StatePtr installCatalog(CatalogPtr next);
    StatePtr reloadState(db::RecoveryReport &report);

    Endpoint route(const HttpRequest &request) const;
    HttpResponse dispatch(Endpoint endpoint,
                          const HttpRequest &request,
                          ServingState &state, obs::SpanSet *spans,
                          bool debug_timings);
    void registerInstruments();

    /** Shared tail of handle() and tryServeFast(): If-None-Match ->
     *  304 conversion, error/latency metrics, request-ID resolution,
     *  access + slow-request logging, tracer completion. */
    void finishResponse(const HttpRequest &request, Endpoint endpoint,
                        const ServingState &state,
                        HttpResponse &response, uint64_t t0_us,
                        const char *cache_disposition,
                        obs::ChromeTracer *tracer);

    HttpResponse handleHealthz(const ServingState &state);
    HttpResponse handleUArchs(const ServingState &state);
    HttpResponse handleInstr(const HttpRequest &request,
                             const ServingState &state);
    HttpResponse handleSearch(const HttpRequest &request,
                              const ServingState &state);
    HttpResponse handleDiff(const HttpRequest &request,
                            const ServingState &state);
    HttpResponse handleAnalytics(const HttpRequest &request,
                                 const ServingState &state);
    HttpResponse handlePredict(const HttpRequest &request,
                               ServingState &state,
                               obs::SpanSet *spans,
                               bool debug_timings);
    HttpResponse handleReload(const HttpRequest &request);
    HttpResponse handleStats(const ServingState &state);
    HttpResponse handleMetrics();

    const PredictContext &predictContext(ServingState &state,
                                         uarch::UArch arch);

    const isa::InstrDb &instrs_;
    Options options_;
    ResponseCache cache_;
    ResponseCache kernel_memo_;
    PredictEngine engine_;

    /** Every counter below lives in this registry; the named
     *  pointers are pre-resolved hot-path handles into it. /stats
     *  and /metrics both read the registry, so they agree by
     *  construction. */
    obs::Registry registry_;
    obs::Logger logger_;

    std::array<EndpointInstruments, kNumEndpoints> instruments_;

    /** /predict admission rejections, by reason. */
    obs::Counter *rejected_oversize_ = nullptr;  ///< 413
    obs::Counter *rejected_budget_ = nullptr;    ///< 429 (cycles)
    obs::Counter *rejected_busy_ = nullptr;      ///< 429 (queue)

    /** Precomputed-blob serving (/uarchs, /instr bodies). */
    obs::Counter *blob_hits_ = nullptr;
    obs::Counter *blob_misses_ = nullptr;
    obs::Counter *not_modified_ = nullptr;  ///< 304 revalidations

    /** Reload/recovery health (reported under /stats "reload"). */
    obs::Counter *reloads_ = nullptr;            ///< swaps installed
    obs::Counter *reload_rejections_ = nullptr;  ///< 503s served
    obs::Counter *recoveries_ = nullptr;         ///< fell back a gen
    obs::Counter *recovery_events_ = nullptr;    ///< report events
    obs::Counter *verification_failures_ = nullptr;  ///< bad gens

    /** Serving identity (updated on every swap). */
    obs::Gauge *serving_generation_ = nullptr;
    obs::Gauge *serving_epoch_ = nullptr;

    mutable std::mutex state_mutex_;
    StatePtr state_;

    std::mutex reload_mutex_;
    Reloader reloader_;
};

/** JSON error body {"error": message}. */
HttpResponse errorResponse(int status, const std::string &message);

} // namespace uops::server

#endif // UOPS_SERVER_SERVICE_H
