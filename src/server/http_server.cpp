#include "http_server.h"

#include <algorithm>
#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include "server/reactor.h"
#include "support/status.h"

namespace uops::server {

HttpServer::HttpServer(QueryService &service, Options options)
    : service_(service), options_(std::move(options)),
      pool_(options_.num_threads)
{
}

HttpServer::HttpServer(QueryService &service)
    : HttpServer(service, Options{})
{
}

HttpServer::~HttpServer()
{
    stop();
}

void
HttpServer::start()
{
    panicIf(running_.load(), "HttpServer::start: already running");

    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    fatalIf(listen_fd_ < 0, "http server: socket(): ",
            std::strerror(errno));

    int reuse = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &reuse,
                 sizeof reuse);

    sockaddr_in addr;
    std::memset(&addr, 0, sizeof addr);
    addr.sin_family = AF_INET;
    addr.sin_port = htons(options_.port);
    fatalIf(::inet_pton(AF_INET, options_.bind_address.c_str(),
                        &addr.sin_addr) != 1,
            "http server: bad bind address '", options_.bind_address,
            "'");

    if (::bind(listen_fd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof addr) < 0) {
        int err = errno;
        ::close(listen_fd_);
        listen_fd_ = -1;
        fatal("http server: cannot bind ", options_.bind_address, ":",
              options_.port, ": ", std::strerror(err));
    }
    if (::listen(listen_fd_, options_.backlog) < 0) {
        int err = errno;
        ::close(listen_fd_);
        listen_fd_ = -1;
        fatal("http server: listen(): ", std::strerror(err));
    }

    sockaddr_in bound;
    socklen_t len = sizeof bound;
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr *>(&bound),
                  &len);
    port_ = ntohs(bound.sin_port);

    if (options_.reactor) {
        // The reactor accepts through epoll: the listener must be
        // non-blocking (EPOLLEXCLUSIVE wakes one thread, but a
        // level-triggered racing accept can still come up empty).
        int flags = ::fcntl(listen_fd_, F_GETFL, 0);
        ::fcntl(listen_fd_, F_SETFL, flags | O_NONBLOCK);
        Reactor::Options reactor_options;
        reactor_options.threads = options_.reactor_threads;
        reactor_options.max_request_bytes = options_.max_request_bytes;
        reactor_options.max_requests_per_connection =
            options_.max_requests_per_connection;
        reactor_options.recv_timeout_seconds =
            options_.recv_timeout_seconds;
        reactor_options.keep_alive_idle_seconds =
            options_.keep_alive_idle_seconds;
        reactor_ = std::make_unique<Reactor>(service_, pool_,
                                             listen_fd_,
                                             reactor_options);
        reactor_->start();
        running_.store(true);
        return;
    }

    running_.store(true);
    acceptor_ = std::thread([this] { acceptLoop(); });
}

void
HttpServer::stop()
{
    drain(std::chrono::milliseconds(options_.drain_deadline_ms));
}

bool
HttpServer::drain(std::chrono::milliseconds max_wait)
{
    draining_.store(true);
    if (running_.exchange(false)) {
        if (reactor_ != nullptr) {
            bool clean = reactor_->drain(max_wait);
            // Join the reactor threads before closing the listener:
            // nothing may hold the fd in an epoll set (or race it as
            // a plain int) once it can be reused.
            reactor_->stop();
            ::close(listen_fd_);
            listen_fd_ = -1;
            return clean;
        }
        // Unblock accept() with shutdown() only; the fd stays open
        // until the acceptor has joined, so it can neither be reused
        // by another thread's descriptor nor raced as a plain int
        // (the join gives the happens-before for the close below).
        ::shutdown(listen_fd_, SHUT_RDWR);
        if (acceptor_.joinable())
            acceptor_.join();
        ::close(listen_fd_);
        listen_fd_ = -1;
    } else if (acceptor_.joinable()) {
        acceptor_.join();
    }
    if (reactor_ != nullptr)
        return true;  // a previous call already drained it

    std::unique_lock<std::mutex> lock(conn_mutex_);
    bool clean = conn_cv_.wait_for(
        lock, max_wait, [this] { return connections_.empty(); });
    if (!clean) {
        // Deadline passed: kill the remaining sockets. Their workers'
        // next recv/send fails immediately, so the tasks finish; the
        // clients see a reset, not a silently truncated success.
        // Force-shutdown connections get no response to carry an
        // X-Request-Id, so the log line is their only correlation
        // record.
        service_.logger()
            .event(obs::LogLevel::Warn, "http", "drain_forced")
            .num("connections",
                 static_cast<uint64_t>(connections_.size()))
            .num("deadline_ms",
                 static_cast<uint64_t>(max_wait.count()));
        for (int fd : connections_)
            ::shutdown(fd, SHUT_RDWR);
        conn_cv_.wait(lock, [this] { return connections_.empty(); });
    }
    return clean;
}

size_t
HttpServer::activeConnections() const
{
    if (reactor_ != nullptr)
        return reactor_->activeConnections();
    std::lock_guard<std::mutex> lock(conn_mutex_);
    return connections_.size();
}

void
HttpServer::acceptLoop()
{
    while (running_.load()) {
        int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            // Listener was closed (stop()) or broke: exit.
            break;
        }
        if (options_.recv_timeout_seconds > 0) {
            timeval tv{};
            tv.tv_sec = options_.recv_timeout_seconds;
            ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
            ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
        }
        int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
        {
            std::lock_guard<std::mutex> lock(conn_mutex_);
            if (draining_.load()) {
                // Raced a concurrent drain(): refuse instead of
                // starting work the drain will never see finish.
                ::close(fd);
                continue;
            }
            connections_.insert(fd);
        }
        pool_.submit([this, fd](size_t) { handleConnection(fd); });
    }
}

namespace {

/** Send the whole buffer. False when the peer went away or stalled
 *  past the send timeout — the connection is no longer usable and
 *  the caller must close it (a partial response was already put on
 *  the wire; serving another request on this stream would corrupt
 *  the framing). */
[[nodiscard]] bool
sendAll(int fd, const std::string &bytes)
{
    size_t sent = 0;
    while (sent < bytes.size()) {
        ssize_t n = ::send(fd, bytes.data() + sent,
                           bytes.size() - sent, MSG_NOSIGNAL);
        if (n <= 0)
            return false;   // peer gone or SO_SNDTIMEO expired
        sent += static_cast<size_t>(n);
    }
    return true;
}

} // namespace

void
HttpServer::handleConnection(int fd)
{
    serveConnection(fd);
    {
        // Notify under the lock: drain() may destroy this object the
        // moment it observes connections_ empty, and it cannot take
        // the mutex until this block exits — which orders the notify
        // (and everything else this thread does to the registry)
        // before the condition variable's destruction. The erase also
        // stays ordered before close(), so drain's force-shutdown()
        // can never hit a recycled descriptor.
        std::lock_guard<std::mutex> lock(conn_mutex_);
        connections_.erase(fd);
        conn_cv_.notify_all();
    }
    ::close(fd);
}

void
HttpServer::serveConnection(int fd)
{
    // Transport-level refusals (oversize buffers, parse failures)
    // never reach QueryService::handle(), so correlation and the
    // access-log line are this layer's job: mint or echo an ID, put
    // it on the response, log the refusal. @p request is the parsed
    // head when one exists (its X-Request-Id is then honored).
    auto refuse = [&](int status, const std::string &message,
                      const HttpRequest *request) {
        HttpResponse response = errorResponse(status, message);
        const std::string *client_id =
            request != nullptr ? request->header("X-Request-Id")
                               : nullptr;
        if (client_id != nullptr && acceptableRequestId(*client_id))
            response.request_id = *client_id;
        else
            response.request_id = obs::newTraceId();
        obs::Logger &logger = service_.logger();
        if (logger.enabled(obs::LogLevel::Info))
            logger.event(obs::LogLevel::Info, "http", "access")
                .str("id", response.request_id)
                .str("endpoint", "transport")
                .num("status", static_cast<int64_t>(status))
                .str("error", message);
        (void)sendAll(fd, serializeResponse(response));
    };

    try {
        std::string buffer;
        char chunk[4096];

        // Serve requests until the client closes, asks to close, the
        // per-connection budget runs out, or the stream turns bad.
        // Pipelined requests already sitting in the buffer are served
        // without touching the socket.
        auto set_timeout = [fd](int seconds) {
            if (seconds <= 0)
                return;
            timeval tv{};
            tv.tv_sec = seconds;
            ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
        };
        for (size_t served = 0;
             served < options_.max_requests_per_connection; ++served) {
            // Between requests the worker is idle capital: wait only
            // briefly for a follow-up, then give the slot back. Once
            // bytes arrive, the full in-request timeout applies
            // again (restored below on the first read). Skipped when
            // timeouts are disabled entirely.
            bool idle_wait = served > 0 && buffer.empty() &&
                             options_.recv_timeout_seconds > 0;
            if (idle_wait)
                set_timeout(options_.keep_alive_idle_seconds);
            std::optional<size_t> head_end = findHeaderEnd(buffer);
            while (!head_end) {
                ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
                if (n <= 0) {
                    // Clean end between requests, peer loss mid-head,
                    // or an idle keep-alive hitting the recv timeout.
                    return;
                }
                if (idle_wait) {
                    set_timeout(options_.recv_timeout_seconds);
                    idle_wait = false;
                }
                buffer.append(chunk, static_cast<size_t>(n));
                if (buffer.size() > options_.max_request_bytes) {
                    refuse(413, "request too large", nullptr);
                    return;
                }
                head_end = findHeaderEnd(buffer);
            }

            HttpRequest request;
            try {
                request = parseRequestHead(buffer.substr(0, *head_end));
            } catch (const std::exception &e) {
                refuse(400, e.what(), nullptr);
                return;
            }

            size_t body_bytes = 0;
            try {
                body_bytes = contentLength(request);
            } catch (const std::exception &e) {
                refuse(400, e.what(), &request);
                return;
            }
            if (body_bytes > options_.max_request_bytes) {
                refuse(413, "body too large", &request);
                return;
            }
            while (buffer.size() - *head_end < body_bytes) {
                ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
                if (n <= 0)
                    break;
                buffer.append(chunk, static_cast<size_t>(n));
            }
            size_t have =
                std::min(buffer.size() - *head_end, body_bytes);
            bool body_complete = have == body_bytes;
            request.body = buffer.substr(*head_end, have);
            // Consume exactly this request; a pipelined successor
            // stays buffered for the next iteration.
            buffer.erase(0, *head_end + have);

            bool keep_alive =
                body_complete && wantsKeepAlive(request) &&
                !draining_.load() &&
                served + 1 < options_.max_requests_per_connection;
            HttpResponse response = service_.handle(request);
            if (!sendAll(fd, serializeResponse(response, keep_alive)))
                return;   // peer gone or stalled past SO_SNDTIMEO
            if (!keep_alive)
                break;
        }
    } catch (...) {
        // Connection handling must never propagate into the pool.
        refuse(500, "internal error", nullptr);
    }
}

} // namespace uops::server
