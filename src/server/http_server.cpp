#include "http_server.h"

#include <algorithm>
#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include "support/status.h"

namespace uops::server {

HttpServer::HttpServer(QueryService &service, Options options)
    : service_(service), options_(std::move(options)),
      pool_(options_.num_threads)
{
}

HttpServer::HttpServer(QueryService &service)
    : HttpServer(service, Options{})
{
}

HttpServer::~HttpServer()
{
    stop();
}

void
HttpServer::start()
{
    panicIf(running_.load(), "HttpServer::start: already running");

    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    fatalIf(listen_fd_ < 0, "http server: socket(): ",
            std::strerror(errno));

    int reuse = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &reuse,
                 sizeof reuse);

    sockaddr_in addr;
    std::memset(&addr, 0, sizeof addr);
    addr.sin_family = AF_INET;
    addr.sin_port = htons(options_.port);
    fatalIf(::inet_pton(AF_INET, options_.bind_address.c_str(),
                        &addr.sin_addr) != 1,
            "http server: bad bind address '", options_.bind_address,
            "'");

    if (::bind(listen_fd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof addr) < 0) {
        int err = errno;
        ::close(listen_fd_);
        listen_fd_ = -1;
        fatal("http server: cannot bind ", options_.bind_address, ":",
              options_.port, ": ", std::strerror(err));
    }
    if (::listen(listen_fd_, options_.backlog) < 0) {
        int err = errno;
        ::close(listen_fd_);
        listen_fd_ = -1;
        fatal("http server: listen(): ", std::strerror(err));
    }

    sockaddr_in bound;
    socklen_t len = sizeof bound;
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr *>(&bound),
                  &len);
    port_ = ntohs(bound.sin_port);

    running_.store(true);
    acceptor_ = std::thread([this] { acceptLoop(); });
}

void
HttpServer::stop()
{
    if (!running_.exchange(false)) {
        if (acceptor_.joinable())
            acceptor_.join();
        return;
    }
    // Unblock accept() with shutdown() only; the fd stays open until
    // the acceptor has joined, so it can neither be reused by another
    // thread's descriptor nor raced as a plain int (the join gives
    // the happens-before for the close below).
    ::shutdown(listen_fd_, SHUT_RDWR);
    if (acceptor_.joinable())
        acceptor_.join();
    ::close(listen_fd_);
    listen_fd_ = -1;
    // In-flight connection tasks drain in the pool destructor (or on
    // the next wait()); handleConnection never throws.
}

void
HttpServer::acceptLoop()
{
    while (running_.load()) {
        int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            // Listener was closed (stop()) or broke: exit.
            break;
        }
        if (options_.recv_timeout_seconds > 0) {
            timeval tv{};
            tv.tv_sec = options_.recv_timeout_seconds;
            ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
            ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
        }
        pool_.submit([this, fd](size_t) { handleConnection(fd); });
    }
}

namespace {

void
sendAll(int fd, const std::string &bytes)
{
    size_t sent = 0;
    while (sent < bytes.size()) {
        ssize_t n = ::send(fd, bytes.data() + sent,
                           bytes.size() - sent, MSG_NOSIGNAL);
        if (n <= 0)
            return;   // peer went away; nothing to do
        sent += static_cast<size_t>(n);
    }
}

} // namespace

void
HttpServer::handleConnection(int fd)
{
    try {
        std::string buffer;
        char chunk[4096];
        std::optional<size_t> head_end;

        // Read until the blank line terminating the request head.
        while (!head_end) {
            ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
            if (n <= 0) {
                ::close(fd);
                return;
            }
            buffer.append(chunk, static_cast<size_t>(n));
            if (buffer.size() > options_.max_request_bytes) {
                sendAll(fd, serializeResponse(errorResponse(
                                413, "request too large")));
                ::close(fd);
                return;
            }
            head_end = findHeaderEnd(buffer);
        }

        HttpRequest request;
        try {
            request = parseRequestHead(buffer.substr(0, *head_end));
        } catch (const std::exception &e) {
            sendAll(fd,
                    serializeResponse(errorResponse(400, e.what())));
            ::close(fd);
            return;
        }

        size_t body_bytes = 0;
        try {
            body_bytes = contentLength(request);
        } catch (const std::exception &e) {
            sendAll(fd,
                    serializeResponse(errorResponse(400, e.what())));
            ::close(fd);
            return;
        }
        if (body_bytes > options_.max_request_bytes) {
            sendAll(fd, serializeResponse(
                            errorResponse(413, "body too large")));
            ::close(fd);
            return;
        }
        request.body = buffer.substr(*head_end);
        while (request.body.size() < body_bytes) {
            ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
            if (n <= 0)
                break;
            request.body.append(chunk, static_cast<size_t>(n));
        }
        request.body.resize(std::min(request.body.size(), body_bytes));

        HttpResponse response = service_.handle(request);
        sendAll(fd, serializeResponse(response));
    } catch (...) {
        // Connection handling must never propagate into the pool.
        sendAll(fd, serializeResponse(
                        errorResponse(500, "internal error")));
    }
    ::close(fd);
}

} // namespace uops::server
