#include "http_server.h"

#include <algorithm>
#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include "support/status.h"

namespace uops::server {

HttpServer::HttpServer(QueryService &service, Options options)
    : service_(service), options_(std::move(options)),
      pool_(options_.num_threads)
{
}

HttpServer::HttpServer(QueryService &service)
    : HttpServer(service, Options{})
{
}

HttpServer::~HttpServer()
{
    stop();
}

void
HttpServer::start()
{
    panicIf(running_.load(), "HttpServer::start: already running");

    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    fatalIf(listen_fd_ < 0, "http server: socket(): ",
            std::strerror(errno));

    int reuse = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &reuse,
                 sizeof reuse);

    sockaddr_in addr;
    std::memset(&addr, 0, sizeof addr);
    addr.sin_family = AF_INET;
    addr.sin_port = htons(options_.port);
    fatalIf(::inet_pton(AF_INET, options_.bind_address.c_str(),
                        &addr.sin_addr) != 1,
            "http server: bad bind address '", options_.bind_address,
            "'");

    if (::bind(listen_fd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof addr) < 0) {
        int err = errno;
        ::close(listen_fd_);
        listen_fd_ = -1;
        fatal("http server: cannot bind ", options_.bind_address, ":",
              options_.port, ": ", std::strerror(err));
    }
    if (::listen(listen_fd_, options_.backlog) < 0) {
        int err = errno;
        ::close(listen_fd_);
        listen_fd_ = -1;
        fatal("http server: listen(): ", std::strerror(err));
    }

    sockaddr_in bound;
    socklen_t len = sizeof bound;
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr *>(&bound),
                  &len);
    port_ = ntohs(bound.sin_port);

    running_.store(true);
    acceptor_ = std::thread([this] { acceptLoop(); });
}

void
HttpServer::stop()
{
    if (!running_.exchange(false)) {
        if (acceptor_.joinable())
            acceptor_.join();
        return;
    }
    // Unblock accept() with shutdown() only; the fd stays open until
    // the acceptor has joined, so it can neither be reused by another
    // thread's descriptor nor raced as a plain int (the join gives
    // the happens-before for the close below).
    ::shutdown(listen_fd_, SHUT_RDWR);
    if (acceptor_.joinable())
        acceptor_.join();
    ::close(listen_fd_);
    listen_fd_ = -1;
    // In-flight connection tasks drain in the pool destructor (or on
    // the next wait()); handleConnection never throws.
}

void
HttpServer::acceptLoop()
{
    while (running_.load()) {
        int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            // Listener was closed (stop()) or broke: exit.
            break;
        }
        if (options_.recv_timeout_seconds > 0) {
            timeval tv{};
            tv.tv_sec = options_.recv_timeout_seconds;
            ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
            ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
        }
        pool_.submit([this, fd](size_t) { handleConnection(fd); });
    }
}

namespace {

void
sendAll(int fd, const std::string &bytes)
{
    size_t sent = 0;
    while (sent < bytes.size()) {
        ssize_t n = ::send(fd, bytes.data() + sent,
                           bytes.size() - sent, MSG_NOSIGNAL);
        if (n <= 0)
            return;   // peer went away; nothing to do
        sent += static_cast<size_t>(n);
    }
}

} // namespace

void
HttpServer::handleConnection(int fd)
{
    try {
        std::string buffer;
        char chunk[4096];

        // Serve requests until the client closes, asks to close, the
        // per-connection budget runs out, or the stream turns bad.
        // Pipelined requests already sitting in the buffer are served
        // without touching the socket.
        auto set_timeout = [fd](int seconds) {
            if (seconds <= 0)
                return;
            timeval tv{};
            tv.tv_sec = seconds;
            ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
        };
        for (size_t served = 0;
             served < options_.max_requests_per_connection; ++served) {
            // Between requests the worker is idle capital: wait only
            // briefly for a follow-up, then give the slot back. Once
            // bytes arrive, the full in-request timeout applies
            // again (restored below on the first read). Skipped when
            // timeouts are disabled entirely.
            bool idle_wait = served > 0 && buffer.empty() &&
                             options_.recv_timeout_seconds > 0;
            if (idle_wait)
                set_timeout(options_.keep_alive_idle_seconds);
            std::optional<size_t> head_end = findHeaderEnd(buffer);
            while (!head_end) {
                ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
                if (n <= 0) {
                    // Clean end between requests, peer loss mid-head,
                    // or an idle keep-alive hitting the recv timeout.
                    ::close(fd);
                    return;
                }
                if (idle_wait) {
                    set_timeout(options_.recv_timeout_seconds);
                    idle_wait = false;
                }
                buffer.append(chunk, static_cast<size_t>(n));
                if (buffer.size() > options_.max_request_bytes) {
                    sendAll(fd, serializeResponse(errorResponse(
                                    413, "request too large")));
                    ::close(fd);
                    return;
                }
                head_end = findHeaderEnd(buffer);
            }

            HttpRequest request;
            try {
                request = parseRequestHead(buffer.substr(0, *head_end));
            } catch (const std::exception &e) {
                sendAll(fd, serializeResponse(
                                errorResponse(400, e.what())));
                ::close(fd);
                return;
            }

            size_t body_bytes = 0;
            try {
                body_bytes = contentLength(request);
            } catch (const std::exception &e) {
                sendAll(fd, serializeResponse(
                                errorResponse(400, e.what())));
                ::close(fd);
                return;
            }
            if (body_bytes > options_.max_request_bytes) {
                sendAll(fd, serializeResponse(
                                errorResponse(413, "body too large")));
                ::close(fd);
                return;
            }
            while (buffer.size() - *head_end < body_bytes) {
                ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
                if (n <= 0)
                    break;
                buffer.append(chunk, static_cast<size_t>(n));
            }
            size_t have =
                std::min(buffer.size() - *head_end, body_bytes);
            bool body_complete = have == body_bytes;
            request.body = buffer.substr(*head_end, have);
            // Consume exactly this request; a pipelined successor
            // stays buffered for the next iteration.
            buffer.erase(0, *head_end + have);

            bool keep_alive =
                body_complete && wantsKeepAlive(request) &&
                served + 1 < options_.max_requests_per_connection;
            HttpResponse response = service_.handle(request);
            sendAll(fd, serializeResponse(response, keep_alive));
            if (!keep_alive)
                break;
        }
    } catch (...) {
        // Connection handling must never propagate into the pool.
        sendAll(fd, serializeResponse(
                        errorResponse(500, "internal error")));
    }
    ::close(fd);
}

} // namespace uops::server
