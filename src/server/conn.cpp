#include "conn.h"

namespace uops::server {

Conn::ParseResult
Conn::next(HttpRequest &request)
{
    ParseResult result;
    std::string_view buffered = pending();
    std::optional<size_t> head_end = findHeaderEnd(buffered);
    if (!head_end) {
        if (buffered.size() > limits_.max_request_bytes) {
            result.kind = Parse::Refuse;
            result.refuse_status = 413;
            result.refuse_message = "request too large";
            return result;
        }
        partial_request_ = !buffered.empty();
        return result;
    }

    HttpRequest parsed;
    try {
        parsed = parseRequestHead(buffered.substr(0, *head_end));
    } catch (const std::exception &e) {
        result.kind = Parse::Refuse;
        result.refuse_status = 400;
        result.refuse_message = e.what();
        return result;
    }

    size_t body_bytes = 0;
    try {
        body_bytes = contentLength(parsed);
    } catch (const std::exception &e) {
        result.kind = Parse::Refuse;
        result.refuse_status = 400;
        result.refuse_message = e.what();
        result.have_head = true;
        request = std::move(parsed);
        return result;
    }
    if (body_bytes > limits_.max_request_bytes) {
        result.kind = Parse::Refuse;
        result.refuse_status = 413;
        result.refuse_message = "body too large";
        result.have_head = true;
        request = std::move(parsed);
        return result;
    }
    if (buffered.size() - *head_end < body_bytes) {
        partial_request_ = true;
        return result;  // NeedMore: body still arriving
    }

    parsed.body = buffered.substr(*head_end, body_bytes);
    // Consume exactly this request; a pipelined successor stays
    // buffered for the next call.
    in_off_ += *head_end + body_bytes;
    partial_request_ = false;
    ++served_;
    request = std::move(parsed);
    result.kind = Parse::Ready;
    return result;
}

bool
Conn::keepAlive(const HttpRequest &request, bool draining) const
{
    // served_ already counts the request being decided, so the
    // budget check matches the threaded path's served+1 bound.
    return wantsKeepAlive(request) && !draining &&
           served_ < limits_.max_requests;
}

void
Conn::queueResponse(const HttpResponse &response, bool keep_alive)
{
    // Coalesce into the tail chunk while it carries no blob: a
    // pipelined batch of small responses becomes one contiguous
    // buffer (one allocation amortized across the batch, one iovec
    // on the wire). A blob ends its chunk — the shared body is
    // referenced, never copied — so the next response opens a fresh
    // one.
    if (out_.empty() || out_.back().blob)
        out_.emplace_back();
    Chunk &tail = out_.back();
    appendResponseHead(tail.bytes, response, keep_alive);
    if (response.status != 304) {
        if (response.blob)
            tail.blob = response.blob;
        else
            tail.bytes += response.body;
    }
    if (!keep_alive)
        close_after_flush = true;
}

size_t
Conn::outputBytes() const
{
    size_t total = 0;
    for (const Chunk &chunk : out_)
        total += chunk.size();
    return total - out_offset_;
}

size_t
Conn::gatherOutput(struct iovec *iov, size_t max_iov) const
{
    size_t n = 0;
    size_t skip = out_offset_;
    for (const Chunk &chunk : out_) {
        if (n == max_iov)
            break;
        if (skip < chunk.bytes.size()) {
            iov[n].iov_base =
                const_cast<char *>(chunk.bytes.data() + skip);
            iov[n].iov_len = chunk.bytes.size() - skip;
            ++n;
            skip = 0;
        } else {
            skip -= chunk.bytes.size();
        }
        if (chunk.blob) {
            if (n == max_iov)
                break;
            if (skip < chunk.blob->size()) {
                iov[n].iov_base =
                    const_cast<char *>(chunk.blob->data() + skip);
                iov[n].iov_len = chunk.blob->size() - skip;
                ++n;
                skip = 0;
            } else {
                skip -= chunk.blob->size();
            }
        }
    }
    return n;
}

void
Conn::consumeOutput(size_t bytes)
{
    bytes += out_offset_;
    out_offset_ = 0;
    while (!out_.empty()) {
        size_t front = out_.front().size();
        if (bytes < front) {
            out_offset_ = bytes;
            return;
        }
        bytes -= front;
        out_.pop_front();
    }
}

} // namespace uops::server
