/**
 * @file
 * Concurrency gateway between HTTP workers and the kernel simulator.
 *
 * /predict is the one endpoint whose cost is set by the *client*: a
 * kernel simulation runs for micro- to milliseconds of CPU, so
 * running it inline on HTTP threads would let a burst of expensive
 * kernels occupy every connection slot. The engine decouples the two
 * pools: HTTP workers submit kernels here and block only on a
 * future, while a small dedicated ThreadPool (support/thread_pool.h)
 * executes the simulations.
 *
 * Three production concerns live here:
 *
 *  - batching/coalescing: requests are single-flighted by exact
 *    kernel fingerprint — concurrent identical submissions share one
 *    simulation and all wake on its result (a thundering herd of one
 *    hot kernel costs one simulator run);
 *  - admission: at most max_inflight *distinct* kernels may be
 *    queued or running; beyond that submissions fail fast with
 *    PredictOverloaded (the service's 429) instead of growing an
 *    unbounded queue;
 *  - isolation: simulator state (BlockPredictor: timing synthesis +
 *    pipeline scratch) is per (worker, uarch), created lazily and
 *    touched only by its owning worker — the pool's worker index is
 *    the whole synchronization story. Completed measurements are
 *    memoized in one shared MeasurementCache per uarch, so repeat
 *    kernels after the single-flight window closes still skip the
 *    simulator. Timing is catalog-independent, so these caches
 *    survive generation hot-swaps.
 *
 * Exceptions from a simulation (validation FatalError, budget
 * overrun) propagate through the shared future to every coalesced
 * waiter; they never reach the pool's own error channel.
 */

#ifndef UOPS_SERVER_PREDICT_ENGINE_H
#define UOPS_SERVER_PREDICT_ENGINE_H

#include <atomic>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "isa/kernel.h"
#include "sim/block_predict.h"
#include "sim/measurement_cache.h"
#include "support/status.h"
#include "support/thread_pool.h"
#include "uarch/uarch.h"

namespace uops::server {

/** Thrown when the in-flight bound is hit (the service's 429). */
class PredictOverloaded : public FatalError
{
  public:
    PredictOverloaded(const std::string &msg, size_t max_inflight)
        : FatalError(msg), max_inflight_(max_inflight)
    {
    }

    size_t maxInflight() const { return max_inflight_; }

  private:
    size_t max_inflight_;
};

class PredictEngine
{
  public:
    struct Options
    {
        /** Simulation workers (kept small on purpose: simulations
         *  are CPU-bound; HTTP concurrency lives elsewhere). */
        size_t num_threads = 2;

        /** Distinct kernels queued or running before submissions
         *  are rejected with PredictOverloaded. */
        size_t max_inflight = 64;

        /** Per-simulation policy (harness config, cycle budget). */
        sim::BlockPredictOptions predict;

        /** Shards of each per-uarch measurement memo. */
        size_t sim_cache_shards = 16;
    };

    /** Point-in-time engine counters. */
    struct Stats
    {
        uint64_t simulations = 0;   ///< simulator runs completed
        uint64_t coalesced = 0;     ///< submissions served by joining
                                    ///< an in-flight simulation
        uint64_t rejected = 0;      ///< PredictOverloaded throws
        uint64_t sim_cache_hits = 0;
        uint64_t sim_cache_misses = 0;
        size_t sim_cache_entries = 0;
        size_t inflight = 0;
        size_t workers = 0;
    };

    PredictEngine(const isa::InstrDb &instrs, Options options);
    ~PredictEngine();

    PredictEngine(const PredictEngine &) = delete;
    PredictEngine &operator=(const PredictEngine &) = delete;

    /**
     * Simulate @p body on @p arch, waiting for the result. Coalesces
     * with any in-flight identical submission.
     *
     * @throws PredictOverloaded     at the admission bound;
     * @throws sim::CycleBudgetExceeded past the cycle budget;
     * @throws FatalError            for kernels invalid on @p arch.
     */
    sim::Measurement simulate(uarch::UArch arch,
                              const isa::Kernel &body);

    /** Memo key of (arch, body) under this engine's options. */
    std::string fingerprint(uarch::UArch arch,
                            const isa::Kernel &body) const;

    const Options &options() const { return options_; }

    Stats stats() const;

  private:
    /** One single-flighted simulation; waiters share the future. */
    struct Job
    {
        std::promise<sim::Measurement> promise;
        std::shared_future<sim::Measurement> future;
    };

    sim::Measurement runOnWorker(size_t worker, uarch::UArch arch,
                                 const isa::Kernel &body);

    const isa::InstrDb &instrs_;
    Options options_;

    /** Shared memo per uarch (lock-sharded internally). */
    std::map<uarch::UArch, std::unique_ptr<sim::MeasurementCache>>
        sim_caches_;

    /** Lazily-built simulators, indexed [worker][uarch]; each map is
     *  owned by exactly one pool worker. */
    std::vector<
        std::map<uarch::UArch, std::unique_ptr<sim::BlockPredictor>>>
        worker_states_;

    mutable std::mutex jobs_mutex_;
    std::unordered_map<std::string, std::shared_ptr<Job>> jobs_;
    size_t inflight_ = 0;

    std::atomic<uint64_t> simulations_{0};
    std::atomic<uint64_t> coalesced_{0};
    std::atomic<uint64_t> rejected_{0};

    /** Declared last: destruction joins the workers while every
     *  member they touch is still alive. */
    ThreadPool pool_;
};

} // namespace uops::server

#endif // UOPS_SERVER_PREDICT_ENGINE_H
