#include "reactor.h"

#include <algorithm>
#include <cerrno>
#include <cstring>

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include "support/status.h"

namespace uops::server {

namespace {

/** epoll user data for the two non-connection fds; connection ids
 *  start at 2 so they can never collide. */
constexpr uint64_t kListenId = 0;
constexpr uint64_t kWakeId = 1;

} // namespace

Reactor::Reactor(QueryService &service, ThreadPool &pool,
                 int listen_fd, Options options)
    : service_(service), pool_(pool), listen_fd_(listen_fd),
      options_(options)
{
    limits_.max_request_bytes = options_.max_request_bytes;
    limits_.max_requests = options_.max_requests_per_connection;

    obs::Registry &registry = service_.registry();
    connections_ = &registry.gauge(
        "uops_reactor_connections",
        "Connections currently owned by reactor threads");
    accepts_ = &registry.counter(
        "uops_reactor_accepts_total",
        "Connections accepted by the reactor");
    fast_served_ = &registry.counter(
        "uops_reactor_fast_served_total",
        "Requests served inline on a reactor thread (cache, blob or "
        "304 fast path)");
    dispatched_ = &registry.counter(
        "uops_reactor_dispatched_total",
        "Requests handed to the worker pool");
    loop_ = &registry.histogram(
        "uops_reactor_loop_duration_us",
        "Active (non-waiting) readiness-loop iteration time in "
        "microseconds");

    size_t threads = options_.threads;
    if (threads == 0) {
        size_t hardware = std::thread::hardware_concurrency();
        threads = std::min<size_t>(4, hardware == 0 ? 1 : hardware);
    }
    for (size_t i = 0; i < threads; ++i) {
        auto worker = std::make_unique<Worker>();
        worker->index = i;
        worker->epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
        fatalIf(worker->epoll_fd < 0, "reactor: epoll_create1(): ",
                std::strerror(errno));
        worker->event_fd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
        fatalIf(worker->event_fd < 0, "reactor: eventfd(): ",
                std::strerror(errno));

        epoll_event ev{};
        ev.events = EPOLLIN;
        ev.data.u64 = kWakeId;
        fatalIf(::epoll_ctl(worker->epoll_fd, EPOLL_CTL_ADD,
                            worker->event_fd, &ev) != 0,
                "reactor: register eventfd: ", std::strerror(errno));

        // Level-triggered + EPOLLEXCLUSIVE: the kernel wakes one
        // reactor thread per pending accept instead of thundering
        // the whole herd.
        ev.events = EPOLLIN | EPOLLEXCLUSIVE;
        ev.data.u64 = kListenId;
        fatalIf(::epoll_ctl(worker->epoll_fd, EPOLL_CTL_ADD,
                            listen_fd_, &ev) != 0,
                "reactor: register listener: ", std::strerror(errno));
        workers_.push_back(std::move(worker));
    }
}

Reactor::~Reactor()
{
    stop();
    for (auto &worker : workers_) {
        if (worker->epoll_fd >= 0)
            ::close(worker->epoll_fd);
        if (worker->event_fd >= 0)
            ::close(worker->event_fd);
    }
}

void
Reactor::start()
{
    for (auto &worker : workers_)
        worker->thread =
            std::thread([this, w = worker.get()] { run(*w); });
}

void
Reactor::wakeAll()
{
    for (auto &worker : workers_) {
        uint64_t one = 1;
        [[maybe_unused]] ssize_t n =
            ::write(worker->event_fd, &one, sizeof one);
    }
}

bool
Reactor::drain(std::chrono::milliseconds max_wait)
{
    draining_.store(true);
    wakeAll();
    std::unique_lock<std::mutex> lock(drain_mutex_);
    bool clean = drain_cv_.wait_for(lock, max_wait, [this] {
        return conn_count_.load() == 0;
    });
    if (!clean) {
        // Deadline passed: the remaining connections (slow senders,
        // stalled receivers) are force-closed. Clients see a reset,
        // never a silently truncated success.
        service_.logger()
            .event(obs::LogLevel::Warn, "http", "drain_forced")
            .num("connections",
                 static_cast<uint64_t>(conn_count_.load()))
            .num("deadline_ms",
                 static_cast<uint64_t>(max_wait.count()));
        force_close_.store(true);
        wakeAll();
        drain_cv_.wait(lock,
                       [this] { return conn_count_.load() == 0; });
    }
    // Stray pool tasks may still be computing for connections that
    // no longer exist; wait them out so no task can complete into a
    // destroyed reactor.
    drain_cv_.wait(lock, [this] { return inflight_.load() == 0; });
    return clean;
}

void
Reactor::stop()
{
    stop_.store(true, std::memory_order_release);
    wakeAll();
    for (auto &worker : workers_)
        if (worker->thread.joinable())
            worker->thread.join();
    // Pool tasks dispatched before the loops exited may still be
    // computing; complete() writes their worker's eventfd, so wait
    // them out before the destructor closes any fd under a writer.
    std::unique_lock<std::mutex> lock(drain_mutex_);
    drain_cv_.wait(lock, [this] { return inflight_.load() == 0; });
}

void
Reactor::run(Worker &worker)
{
    epoll_event events[64];
    while (!stop_.load(std::memory_order_acquire)) {
        int n = ::epoll_wait(worker.epoll_fd, events, 64, 100);
        uint64_t t0_us = obs::traceNowUs();

        if (draining_.load(std::memory_order_relaxed) &&
            worker.listen_registered) {
            ::epoll_ctl(worker.epoll_fd, EPOLL_CTL_DEL, listen_fd_,
                        nullptr);
            worker.listen_registered = false;
        }

        for (int i = 0; i < n; ++i) {
            uint64_t id = events[i].data.u64;
            uint32_t mask = events[i].events;
            if (id == kWakeId) {
                drainCompletions(worker);
                continue;
            }
            if (id == kListenId) {
                acceptReady(worker);
                continue;
            }
            auto it = worker.conns.find(id);
            if (it == worker.conns.end())
                continue;
            if ((mask & (EPOLLERR | EPOLLHUP)) != 0 &&
                (mask & EPOLLIN) == 0) {
                closeConn(worker, *it->second);
                continue;
            }
            if (mask & EPOLLIN) {
                onReadable(worker, *it->second);
                // onReadable/processInput may have closed it.
                it = worker.conns.find(id);
                if (it == worker.conns.end())
                    continue;
            }
            if (mask & EPOLLOUT)
                flush(worker, *it->second);
        }

        sweepDeadlines(worker);
        if (n > 0)
            loop_->observe(obs::traceNowUs() - t0_us);
    }
}

void
Reactor::acceptReady(Worker &worker)
{
    for (;;) {
        int fd = ::accept4(listen_fd_, nullptr, nullptr,
                           SOCK_NONBLOCK | SOCK_CLOEXEC);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            break;  // EAGAIN: another thread took it, or none left
        }
        if (draining_.load(std::memory_order_relaxed)) {
            ::close(fd);
            continue;
        }
        int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);

        auto conn = std::make_unique<Conn>(limits_);
        conn->fd = fd;
        conn->id = worker.next_id++;
        armDeadline(*conn);

        epoll_event ev{};
        ev.events = EPOLLIN;
        ev.data.u64 = conn->id;
        if (::epoll_ctl(worker.epoll_fd, EPOLL_CTL_ADD, fd, &ev) !=
            0) {
            ::close(fd);
            continue;
        }
        worker.conns.emplace(conn->id, std::move(conn));
        conn_count_.fetch_add(1);
        connections_->add(1);
        accepts_->inc();
    }
}

void
Reactor::armDeadline(Conn &conn)
{
    // A request in flight on the pool has no socket deadline — the
    // connection is waiting on us, not the client.
    if (conn.busy) {
        conn.has_deadline = false;
        return;
    }
    int seconds;
    if (conn.hasOutput() || conn.partialRequest() ||
        conn.served() == 0)
        seconds = options_.recv_timeout_seconds;
    else
        seconds = options_.keep_alive_idle_seconds;
    if (seconds <= 0) {
        conn.has_deadline = false;
        return;
    }
    conn.deadline = std::chrono::steady_clock::now() +
                    std::chrono::seconds(seconds);
    conn.has_deadline = true;
}

void
Reactor::onReadable(Worker &worker, Conn &conn)
{
    char chunk[16384];
    for (;;) {
        if (conn.busy &&
            conn.inputSize() >= options_.max_request_bytes) {
            // Backpressure: a full buffer behind an in-flight
            // request stops reading until the completion lands.
            updateInterest(worker, conn, false, conn.want_write);
            break;
        }
        ssize_t n = ::recv(conn.fd, chunk, sizeof chunk, 0);
        if (n > 0) {
            conn.appendInput(chunk, static_cast<size_t>(n));
            if (static_cast<size_t>(n) < sizeof chunk)
                break;  // likely drained; level-trigger re-fires
            continue;
        }
        if (n == 0) {
            closeConn(worker, conn);
            return;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            break;
        if (errno == EINTR)
            continue;
        closeConn(worker, conn);
        return;
    }
    processInput(worker, conn);
}

void
Reactor::processInput(Worker &worker, Conn &conn)
{
    // Serve every complete buffered request in order: fast-path hits
    // complete inline (pipelined batches never leave this thread);
    // the first request that needs real work pauses parsing until
    // its pool completion lands.
    while (!conn.busy && !conn.close_after_flush) {
        // Zero-parse lane first: a plain GET answered from
        // precomputed state (blob, cache, 304) never materializes an
        // HttpRequest at all. Anything the scanner or the service is
        // unsure about falls through to the full parser below.
        if (conn.tryRaw(draining_.load(std::memory_order_relaxed),
                        [this](const FastGetView &view,
                               HttpResponse &response) {
                            return service_.tryServeRaw(view,
                                                        response);
                        }) == Conn::Raw::Served) {
            fast_served_->inc();
            continue;
        }
        HttpRequest request;
        Conn::ParseResult parsed = conn.next(request);
        if (parsed.kind == Conn::Parse::NeedMore)
            break;
        if (parsed.kind == Conn::Parse::Refuse) {
            queueRefusal(conn, parsed.refuse_status,
                         parsed.refuse_message,
                         parsed.have_head ? &request : nullptr);
            break;
        }

        bool keep_alive = conn.keepAlive(
            request, draining_.load(std::memory_order_relaxed));
        HttpResponse response;
        if (service_.tryServeFast(request, response)) {
            fast_served_->inc();
            conn.queueResponse(response, keep_alive);
            continue;  // !keep_alive set close_after_flush: loop ends
        }

        conn.busy = true;
        conn.pending_keep_alive = keep_alive;
        dispatched_->inc();
        inflight_.fetch_add(1);
        // The task captures the connection *id*, never the Conn or
        // fd: if the connection dies while this computes, the
        // completion finds no id and is dropped — an fd reused for a
        // new client can never receive a stale response.
        auto boxed = std::make_shared<HttpRequest>(std::move(request));
        pool_.submit([this, w = &worker, id = conn.id,
                      boxed](size_t) {
            HttpResponse out;
            try {
                out = service_.handle(*boxed);
            } catch (const std::exception &e) {
                out = errorResponse(500, e.what());
            } catch (...) {
                out = errorResponse(500, "internal error");
            }
            complete(*w, id, std::move(out));
            if (inflight_.fetch_sub(1) == 1) {
                std::lock_guard<std::mutex> lock(drain_mutex_);
                drain_cv_.notify_all();
            }
        });
        break;
    }
    flush(worker, conn);
}

void
Reactor::flush(Worker &worker, Conn &conn)
{
    while (conn.hasOutput()) {
        struct iovec iov[16];
        size_t n = conn.gatherOutput(iov, 16);
        msghdr msg{};
        msg.msg_iov = iov;
        msg.msg_iovlen = n;
        ssize_t sent = ::sendmsg(conn.fd, &msg, MSG_NOSIGNAL);
        if (sent > 0) {
            conn.consumeOutput(static_cast<size_t>(sent));
            continue;
        }
        if (sent < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
            updateInterest(worker, conn, !conn.reads_paused, true);
            armDeadline(conn);
            return;
        }
        if (sent < 0 && errno == EINTR)
            continue;
        closeConn(worker, conn);
        return;
    }
    if (conn.close_after_flush) {
        closeConn(worker, conn);
        return;
    }
    if (draining_.load(std::memory_order_relaxed) && !conn.busy) {
        // Drain: response flushed whole, no keep-alive — done.
        closeConn(worker, conn);
        return;
    }
    bool want_read = !(conn.busy &&
                       conn.inputSize() >= options_.max_request_bytes);
    updateInterest(worker, conn, want_read, false);
    armDeadline(conn);
}

void
Reactor::drainCompletions(Worker &worker)
{
    uint64_t buf;
    while (::read(worker.event_fd, &buf, sizeof buf) > 0) {
    }
    std::vector<Completion> batch;
    {
        std::lock_guard<std::mutex> lock(worker.mutex);
        batch.swap(worker.completions);
    }
    for (Completion &completion : batch) {
        auto it = worker.conns.find(completion.id);
        if (it == worker.conns.end())
            continue;  // connection died while the request computed
        Conn &conn = *it->second;
        conn.busy = false;
        conn.queueResponse(completion.response,
                           conn.pending_keep_alive);
        if (conn.reads_paused)
            updateInterest(worker, conn, true, conn.want_write);
        // A pipelined successor may already be buffered.
        processInput(worker, conn);
    }
}

void
Reactor::sweepDeadlines(Worker &worker)
{
    bool force = force_close_.load(std::memory_order_relaxed);
    bool draining = draining_.load(std::memory_order_relaxed);
    auto now = std::chrono::steady_clock::now();
    std::vector<uint64_t> doomed;
    for (auto &[id, conn] : worker.conns) {
        if (force) {
            doomed.push_back(id);
            continue;
        }
        if (draining && !conn->busy && !conn->hasOutput() &&
            !conn->partialRequest()) {
            // Idle between requests: close now. A half-received
            // request keeps its socket until its own deadline or the
            // drain force deadline — same as the threaded transport,
            // whose worker sits in recv() until drain forces it.
            doomed.push_back(id);
            continue;
        }
        if (conn->has_deadline && !conn->busy &&
            now >= conn->deadline)
            doomed.push_back(id);
    }
    for (uint64_t id : doomed) {
        auto it = worker.conns.find(id);
        if (it != worker.conns.end())
            closeConn(worker, *it->second);
    }
}

void
Reactor::closeConn(Worker &worker, Conn &conn)
{
    uint64_t id = conn.id;
    ::epoll_ctl(worker.epoll_fd, EPOLL_CTL_DEL, conn.fd, nullptr);
    ::close(conn.fd);
    worker.conns.erase(id);  // frees the Conn
    connections_->add(-1);
    if (conn_count_.fetch_sub(1) == 1) {
        std::lock_guard<std::mutex> lock(drain_mutex_);
        drain_cv_.notify_all();
    }
}

void
Reactor::updateInterest(Worker &worker, Conn &conn, bool want_read,
                        bool want_write)
{
    bool paused = !want_read;
    if (conn.reads_paused == paused && conn.want_write == want_write)
        return;
    conn.reads_paused = paused;
    conn.want_write = want_write;
    epoll_event ev{};
    ev.events = (want_read ? EPOLLIN : 0u) |
                (want_write ? EPOLLOUT : 0u);
    ev.data.u64 = conn.id;
    ::epoll_ctl(worker.epoll_fd, EPOLL_CTL_MOD, conn.fd, &ev);
}

void
Reactor::queueRefusal(Conn &conn, int status,
                      const std::string &message,
                      const HttpRequest *request)
{
    // Transport-level refusals never reach QueryService::handle(),
    // so correlation and the access-log line are this layer's job —
    // same contract as the threaded transport.
    HttpResponse response = errorResponse(status, message);
    const std::string *client_id =
        request != nullptr ? request->header("X-Request-Id") : nullptr;
    if (client_id != nullptr && acceptableRequestId(*client_id))
        response.request_id = *client_id;
    else
        response.request_id = obs::newTraceId();
    obs::Logger &logger = service_.logger();
    if (logger.enabled(obs::LogLevel::Info))
        logger.event(obs::LogLevel::Info, "http", "access")
            .str("id", response.request_id)
            .str("endpoint", "transport")
            .num("status", static_cast<int64_t>(status))
            .str("error", message);
    conn.queueResponse(response, false);
}

void
Reactor::complete(Worker &worker, uint64_t id, HttpResponse response)
{
    {
        std::lock_guard<std::mutex> lock(worker.mutex);
        worker.completions.push_back({id, std::move(response)});
    }
    uint64_t one = 1;
    [[maybe_unused]] ssize_t n =
        ::write(worker.event_fd, &one, sizeof one);
}

} // namespace uops::server
