#include "service.h"

#include <bit>
#include <chrono>
#include <cstring>

#include "isa/kernel.h"
#include "server/blob_store.h"
#include "server/json.h"
#include "support/status.h"
#include "support/strings.h"

namespace uops::server {

namespace {

std::optional<uarch::UArch>
parseArchParam(const HttpRequest &request, const std::string &key)
{
    auto value = request.param(key);
    if (!value)
        return std::nullopt;
    return uarch::parseUArch(*value);   // FatalError -> 400
}

HttpResponse
jsonResponse(std::string body)
{
    HttpResponse response;
    response.body = std::move(body);
    return response;
}

} // namespace

const char *
endpointName(Endpoint endpoint)
{
    switch (endpoint) {
      case Endpoint::Healthz: return "/healthz";
      case Endpoint::UArchs: return "/uarchs";
      case Endpoint::Instr: return "/instr";
      case Endpoint::Search: return "/search";
      case Endpoint::Diff: return "/diff";
      case Endpoint::Predict: return "/predict";
      case Endpoint::Reload: return "/reload";
      case Endpoint::Stats: return "/stats";
      case Endpoint::Metrics: return "/metrics";
      case Endpoint::Analytics: return "/analytics";
      case Endpoint::Other: return "other";
    }
    return "?";
}

bool
acceptableRequestId(std::string_view id)
{
    if (id.empty() || id.size() > 128)
        return false;
    for (char c : id)
        if (c <= ' ' || c > '~')
            return false;
    return true;
}

HttpResponse
errorResponse(int status, const std::string &message)
{
    JsonWriter json;
    json.beginObject();
    json.member("error", std::string_view(message));
    json.member("status", static_cast<long>(status));
    json.endObject();
    HttpResponse response;
    response.status = status;
    response.body = std::move(json).str();
    return response;
}

QueryService::QueryService(CatalogPtr catalog,
                           const isa::InstrDb &instrs, Options options)
    : instrs_(instrs), options_(options),
      cache_(options.cache_shards, options.cache_capacity_per_shard),
      kernel_memo_(options.memo_shards,
                   options.memo_capacity_per_shard),
      engine_(instrs, options.engine)
{
    fatalIf(catalog == nullptr, "QueryService: null catalog");
    logger_.setMinLevel(options.log_level);
    registerInstruments();
    swapCatalog(std::move(catalog));
}

void
QueryService::registerInstruments()
{
    auto endpoint_labels = [](Endpoint endpoint) {
        return obs::LabelSet{{"endpoint", endpointName(endpoint)}};
    };
    for (size_t i = 0; i < kNumEndpoints; ++i) {
        Endpoint endpoint = static_cast<Endpoint>(i);
        EndpointInstruments &ins = instruments_[i];
        ins.requests = &registry_.counter(
            "uops_http_requests_total", "Requests routed, by endpoint",
            endpoint_labels(endpoint));
        ins.errors = &registry_.counter(
            "uops_http_errors_total",
            "Responses with status >= 400, by endpoint",
            endpoint_labels(endpoint));
        ins.cache_hits = &registry_.counter(
            "uops_http_cache_hits_total",
            "Responses served from the response cache or the kernel "
            "memo, by endpoint",
            endpoint_labels(endpoint));
        ins.latency = &registry_.histogram(
            "uops_http_request_duration_us",
            "handle() wall time in microseconds, by endpoint",
            endpoint_labels(endpoint));
    }

    auto rejected = [this](const char *reason) {
        return &registry_.counter(
            "uops_predict_rejected_total",
            "/predict kernels rejected by admission, by reason",
            {{"reason", reason}});
    };
    rejected_oversize_ = rejected("oversize");
    rejected_budget_ = rejected("budget");
    rejected_busy_ = rejected("busy");

    blob_hits_ = &registry_.counter(
        "uops_blob_hits_total",
        "Responses served from a precomputed per-generation blob");
    blob_misses_ = &registry_.counter(
        "uops_blob_misses_total",
        "Blob-eligible lookups with no precomputed body (404s)");
    not_modified_ = &registry_.counter(
        "uops_not_modified_total",
        "If-None-Match revalidations answered 304 without a body");
    registry_.gaugeCallback(
        "uops_blob_bytes",
        "Body bytes owned by the serving generation's blob store", {},
        [this] {
            return static_cast<double>(state()->blobs->stats().bytes);
        });
    registry_.gaugeCallback(
        "uops_blob_count",
        "Distinct variant names with a precomputed /instr body", {},
        [this] {
            return static_cast<double>(state()->blobs->stats().names);
        });

    reloads_ = &registry_.counter("uops_reloads_total",
                                  "Catalog generations installed");
    reload_rejections_ =
        &registry_.counter("uops_reload_rejections_total",
                           "Reloads rejected (503; old generation "
                           "kept serving)");
    recoveries_ = &registry_.counter(
        "uops_catalog_recoveries_total",
        "Reloads that fell back past a bad generation");
    recovery_events_ =
        &registry_.counter("uops_catalog_recovery_events_total",
                           "Recovery report events folded in");
    verification_failures_ = &registry_.counter(
        "uops_catalog_verification_failures_total",
        "Candidate generations rejected by verification");

    serving_generation_ = &registry_.gauge(
        "uops_serving_generation", "Catalog generation being served");
    serving_epoch_ = &registry_.gauge(
        "uops_serving_epoch", "Monotonic swap counter (cache key "
                             "space id)");

    // The caches and the engine keep their own internally-consistent
    // stats structs; mirror them into the exposition via render-time
    // callbacks instead of double bookkeeping on their hot paths.
    auto cache_series = [this](const char *which,
                               ResponseCache &cache) {
        auto counter = [&](const char *name, const char *help,
                           auto member) {
            registry_.counterCallback(
                name, help, {{"cache", which}},
                [&cache, member] {
                    return static_cast<double>(cache.stats().*member);
                });
        };
        counter("uops_response_cache_hits_total", "Cache hits",
                &ResponseCache::Stats::hits);
        counter("uops_response_cache_misses_total", "Cache misses",
                &ResponseCache::Stats::misses);
        counter("uops_response_cache_insertions_total",
                "Cache insertions", &ResponseCache::Stats::insertions);
        counter("uops_response_cache_evictions_total",
                "Cache evictions", &ResponseCache::Stats::evictions);
        registry_.gaugeCallback(
            "uops_response_cache_entries", "Entries resident",
            {{"cache", which}}, [&cache] {
                return static_cast<double>(cache.stats().entries);
            });
        registry_.gaugeCallback(
            "uops_response_cache_owned_bytes",
            "Body bytes copied into entries (shared blob bodies "
            "excluded)",
            {{"cache", which}}, [&cache] {
                return static_cast<double>(
                    cache.stats().owned_bytes);
            });
    };
    cache_series("response", cache_);
    cache_series("kernel_memo", kernel_memo_);

    auto engine_counter = [this](const char *name, const char *help,
                                 auto member) {
        registry_.counterCallback(name, help, {}, [this, member] {
            return static_cast<double>(engine_.stats().*member);
        });
    };
    auto engine_gauge = [this](const char *name, const char *help,
                               auto member) {
        registry_.gaugeCallback(name, help, {}, [this, member] {
            return static_cast<double>(engine_.stats().*member);
        });
    };
    engine_counter("uops_engine_simulations_total",
                   "Kernel simulations executed",
                   &PredictEngine::Stats::simulations);
    engine_counter("uops_engine_coalesced_total",
                   "Requests coalesced onto an in-flight simulation",
                   &PredictEngine::Stats::coalesced);
    engine_counter("uops_engine_rejected_total",
                   "Simulations rejected at the engine queue",
                   &PredictEngine::Stats::rejected);
    engine_counter("uops_engine_sim_cache_hits_total",
                   "Simulation memo hits",
                   &PredictEngine::Stats::sim_cache_hits);
    engine_counter("uops_engine_sim_cache_misses_total",
                   "Simulation memo misses",
                   &PredictEngine::Stats::sim_cache_misses);
    engine_gauge("uops_engine_sim_cache_entries",
                 "Simulation memo entries resident",
                 &PredictEngine::Stats::sim_cache_entries);
    engine_gauge("uops_engine_inflight", "Simulations in flight",
                 &PredictEngine::Stats::inflight);
    engine_gauge("uops_engine_workers", "Engine worker threads",
                 &PredictEngine::Stats::workers);
}

QueryService::QueryService(CatalogPtr catalog,
                           const isa::InstrDb &instrs)
    : QueryService(std::move(catalog), instrs, Options{})
{
}

QueryService::StatePtr
QueryService::state() const
{
    std::lock_guard<std::mutex> lock(state_mutex_);
    return state_;
}

QueryService::CatalogPtr
QueryService::catalog() const
{
    return state()->catalog;
}

uint64_t
QueryService::epoch() const
{
    return state()->epoch;
}

QueryService::StatePtr
QueryService::installCatalog(CatalogPtr next)
{
    fatalIf(next == nullptr, "QueryService: null catalog");
    auto fresh = std::make_shared<ServingState>();
    fresh->catalog = std::move(next);
    // The swap is the blob-build hook: every response body the new
    // generation can precompute is rendered here, off the request
    // path, so the serving hot path never renders these at all.
    fresh->blobs = BlobStore::build(*fresh->catalog);
    // Epoch assignment happens under the same lock as the install so
    // concurrent swaps can neither interleave (installing an older
    // epoch over a newer one) nor observe a regressing epoch(); the
    // installed state is the single source of truth for the epoch.
    {
        std::lock_guard<std::mutex> lock(state_mutex_);
        fresh->epoch = state_ ? state_->epoch + 1 : 1;
        state_ = fresh;
    }
    serving_generation_->set(
        static_cast<double>(fresh->catalog->generation()));
    serving_epoch_->set(static_cast<double>(fresh->epoch));
    return fresh;
}

uint64_t
QueryService::swapCatalog(CatalogPtr next)
{
    return installCatalog(std::move(next))->epoch;
}

void
QueryService::setReloader(Reloader reloader)
{
    std::lock_guard<std::mutex> lock(reload_mutex_);
    reloader_ = std::move(reloader);
}

void
QueryService::setReloader(std::function<CatalogPtr()> reloader)
{
    setReloader([inner = std::move(reloader)](db::RecoveryReport &) {
        return inner();
    });
}

QueryService::StatePtr
QueryService::reloadState(db::RecoveryReport &report)
{
    // One reload at a time: concurrent /reload requests (or a --watch
    // tick racing a manual reload) serialize here, each installing a
    // complete generation.
    std::lock_guard<std::mutex> lock(reload_mutex_);
    fatalIf(!reloader_, "reload: no reload source configured");
    CatalogPtr next;
    try {
        next = reloader_(report);
        fatalIf(next == nullptr,
                "reload: reloader produced no catalog");
    } catch (const std::exception &e) {
        // The old generation keeps serving: a rejected reload is an
        // operational event, not an outage.
        reload_rejections_->inc();
        logger_.event(obs::LogLevel::Warn, "service",
                      "reload_rejected")
            .str("error", e.what());
        throw;
    } catch (...) {
        reload_rejections_->inc();
        logger_.event(obs::LogLevel::Warn, "service",
                      "reload_rejected");
        throw;
    }
    if (report.recovered)
        recoveries_->inc();
    recovery_events_->inc(report.events.size());
    verification_failures_->inc(report.rejected_generations.size());
    reloads_->inc();
    StatePtr installed = installCatalog(std::move(next));
    logger_
        .event(report.recovered ? obs::LogLevel::Warn
                                : obs::LogLevel::Info,
               "service", "reloaded")
        .num("generation", installed->catalog->generation())
        .num("epoch", installed->epoch)
        .num("records",
             static_cast<uint64_t>(installed->catalog->numRecords()))
        .num("blob_build_us", installed->blobs->stats().build_us)
        .boolean("recovered", report.recovered)
        .num("recovery_events",
             static_cast<uint64_t>(report.events.size()))
        .num("rejected_generations",
             static_cast<uint64_t>(
                 report.rejected_generations.size()));
    return installed;
}

uint64_t
QueryService::reload()
{
    db::RecoveryReport report;
    return reloadState(report)->epoch;
}

Endpoint
QueryService::route(const HttpRequest &request) const
{
    const std::string &path = request.path;
    if (path == "/healthz")
        return Endpoint::Healthz;
    if (path == "/uarchs")
        return Endpoint::UArchs;
    if (startsWith(path, "/instr/") || path == "/instr")
        return Endpoint::Instr;
    if (path == "/search")
        return Endpoint::Search;
    if (path == "/diff")
        return Endpoint::Diff;
    if (path == "/predict")
        return Endpoint::Predict;
    if (path == "/reload")
        return Endpoint::Reload;
    if (path == "/stats")
        return Endpoint::Stats;
    if (path == "/metrics")
        return Endpoint::Metrics;
    if (path == "/analytics/regressions")
        return Endpoint::Analytics;
    return Endpoint::Other;
}

HttpResponse
QueryService::handle(const HttpRequest &request)
{
    uint64_t t0_us = obs::traceNowUs();
    Endpoint endpoint = route(request);
    EndpointInstruments &ins =
        instruments_[static_cast<size_t>(endpoint)];
    ins.requests->inc();

    // Pin the serving generation once: everything below — cache key,
    // dispatch, predictor contexts — runs against this state even if
    // a swap lands mid-request.
    StatePtr st = state();

    // Spans are collected only when someone will read them: a
    // ?debug=timings /predict response or an active UOPS_TRACE
    // profile. The cached hot path never allocates a SpanSet.
    obs::ChromeTracer *tracer = obs::ChromeTracer::fromEnv();
    bool debug_timings = false;
    if (endpoint == Endpoint::Predict) {
        auto debug = request.param("debug");
        debug_timings = debug && *debug == "timings";
    }
    std::optional<obs::SpanSet> spans;
    if (endpoint == Endpoint::Predict && (debug_timings || tracer))
        spans.emplace("predict", tracer);

    HttpResponse response;
    // Timed debug responses must stay per-request: they bypass the
    // response cache (and, below, the kernel memo), so a memoized
    // response is still byte-identical to a cold render.
    bool cacheable =
        request.method == "GET" && !debug_timings &&
        (endpoint == Endpoint::Instr || endpoint == Endpoint::Search ||
         endpoint == Endpoint::Diff || endpoint == Endpoint::Predict ||
         endpoint == Endpoint::Analytics);

    bool from_cache = false;
    if (cacheable) {
        if (auto cached = cache_.get(request.target, st->epoch)) {
            response = *cached;
            response.cache_hit = true;
            from_cache = true;
            ins.cache_hits->inc();
        }
    }
    if (!from_cache) {
        try {
            response = dispatch(endpoint, request, *st,
                                spans ? &*spans : nullptr,
                                debug_timings);
        } catch (const FatalError &e) {
            response = errorResponse(400, e.what());
        } catch (const std::exception &e) {
            response = errorResponse(500, e.what());
        }
        if (cacheable && response.status == 200)
            cache_.put(request.target, st->epoch, response);
    }

    finishResponse(request, endpoint, *st, response, t0_us,
                   cacheable ? (from_cache ? "hit" : "miss") : "none",
                   tracer);
    return response;
}

void
QueryService::finishResponse(const HttpRequest &request,
                             Endpoint endpoint,
                             const ServingState &state,
                             HttpResponse &response, uint64_t t0_us,
                             const char *cache_disposition,
                             obs::ChromeTracer *tracer)
{
    EndpointInstruments &ins =
        instruments_[static_cast<size_t>(endpoint)];

    // Conditional GET: when the client's If-None-Match names the
    // entity this response carries, the transfer is pure waste — the
    // response collapses to a bodiless 304 with the same ETag.
    // Running after both the cache and the handlers means cached and
    // fresh 200s revalidate identically, and the blob-backed paths
    // never rendered anything to begin with.
    if (response.status == 200 && !response.etag.empty() &&
        ifNoneMatch(request, response.etag)) {
        HttpResponse not_modified;
        not_modified.status = 304;
        not_modified.etag = response.etag;
        not_modified.cache_hit = response.cache_hit;
        response = std::move(not_modified);
        not_modified_->inc();
    }

    if (response.status >= 400)
        ins.errors->inc();
    uint64_t us = obs::traceNowUs() - t0_us;
    ins.latency->observe(us);

    // Correlation: echo a sane client ID, mint one otherwise. Set
    // *after* the cache/memo put so a cached entry never replays the
    // first requester's ID to later hits.
    const std::string *client_id = request.header("X-Request-Id");
    if (client_id != nullptr && acceptableRequestId(*client_id))
        response.request_id = *client_id;
    else
        response.request_id = obs::newTraceId();

    if (logger_.enabled(obs::LogLevel::Info)) {
        logger_.event(obs::LogLevel::Info, "http", "access")
            .str("id", response.request_id)
            .str("method", request.method)
            .str("endpoint", endpointName(endpoint))
            .num("status", static_cast<int64_t>(response.status))
            .num("us", us)
            .str("cache", cache_disposition)
            .num("generation", state.catalog->generation())
            .num("epoch", state.epoch);
    }
    if (options_.slow_request_us > 0 &&
        us >= options_.slow_request_us &&
        logger_.enabled(obs::LogLevel::Warn)) {
        logger_.event(obs::LogLevel::Warn, "http", "slow_request")
            .str("id", response.request_id)
            .str("target", std::string_view(request.target)
                               .substr(0, 256))
            .num("status", static_cast<int64_t>(response.status))
            .num("us", us)
            .num("threshold_us", options_.slow_request_us);
    }
    if (tracer != nullptr)
        tracer->complete(endpointName(endpoint), "http", t0_us, us);
}

bool
QueryService::tryServeFast(const HttpRequest &request,
                           HttpResponse &response)
{
    if (request.method != "GET")
        return false;
    Endpoint endpoint = route(request);
    bool blob_backed = endpoint == Endpoint::UArchs ||
                       endpoint == Endpoint::Instr;
    if (!blob_backed && endpoint != Endpoint::Search &&
        endpoint != Endpoint::Diff && endpoint != Endpoint::Predict &&
        endpoint != Endpoint::Analytics)
        return false;
    // Debug-timings responses are per-request by contract; they
    // never touch the cache, so they never have a fast path.
    if (endpoint == Endpoint::Predict && request.param("debug"))
        return false;

    uint64_t t0_us = obs::traceNowUs();
    StatePtr st = state();
    // /uarchs is pure blob — caching it would only duplicate the
    // lookup. Everything else mirrors handle()'s cacheable set.
    bool cacheable = endpoint != Endpoint::UArchs;

    HttpResponse out;
    bool served = false;
    bool from_cache = false;
    if (cacheable) {
        if (auto cached = cache_.get(request.target, st->epoch)) {
            out = *cached;
            out.cache_hit = true;
            served = from_cache = true;
        }
    }
    if (!served && blob_backed) {
        // Blob-backed endpoints are *always* cheap — a hash lookup
        // for the body (or a 400/404 error render) — so every GET
        // /uarchs and /instr request completes inline.
        try {
            out = endpoint == Endpoint::UArchs
                      ? handleUArchs(*st)
                      : handleInstr(request, *st);
        } catch (const FatalError &e) {
            out = errorResponse(400, e.what());
        } catch (const std::exception &e) {
            out = errorResponse(500, e.what());
        }
        served = true;
        if (cacheable && out.status == 200)
            cache_.put(request.target, st->epoch, out);
    }
    if (!served)
        return false;  // cold /search, /diff, /predict: real work

    EndpointInstruments &ins =
        instruments_[static_cast<size_t>(endpoint)];
    ins.requests->inc();
    if (from_cache)
        ins.cache_hits->inc();
    finishResponse(request, endpoint, *st, out, t0_us,
                   cacheable ? (from_cache ? "hit" : "miss") : "none",
                   obs::ChromeTracer::fromEnv());
    response = std::move(out);
    return true;
}

bool
QueryService::tryServeRaw(const FastGetView &raw,
                          HttpResponse &response)
{
    // Endpoint by literal target prefix. Percent-escaped spellings
    // of these paths miss here and take the decoding parser — same
    // answer, slower lane.
    std::string_view target = raw.target;
    Endpoint endpoint;
    if (target == "/uarchs")
        endpoint = Endpoint::UArchs;
    else if (target.starts_with("/instr/"))
        endpoint = Endpoint::Instr;
    else if (target.starts_with("/search?"))
        endpoint = Endpoint::Search;
    else if (target.starts_with("/diff?"))
        endpoint = Endpoint::Diff;
    else if (target.starts_with("/predict?"))
        endpoint = Endpoint::Predict;
    else if (target.starts_with("/analytics/regressions?"))
        endpoint = Endpoint::Analytics;
    else
        return false;
    // Debug-timings /predict responses are per-request by contract;
    // the substring test is coarser than param("debug") but only
    // errs toward the full parser.
    if (endpoint == Endpoint::Predict &&
        target.find("debug") != std::string_view::npos)
        return false;

    uint64_t t0_us = obs::traceNowUs();
    StatePtr st = state();
    bool cacheable = endpoint != Endpoint::UArchs;

    HttpResponse out;
    bool served = false;
    bool from_cache = false;
    if (cacheable) {
        if (auto cached = cache_.get(target, st->epoch)) {
            out = std::move(*cached);
            out.cache_hit = true;
            served = from_cache = true;
        }
    }
    if (!served && endpoint == Endpoint::UArchs) {
        out = handleUArchs(*st);
        served = true;
    }
    if (!served && endpoint == Endpoint::Instr) {
        // "/instr/NAME" or "/instr/NAME?uarch=SHORT", all literal:
        // escapes, extra parameters, unknown names and unknown
        // uarchs fall back so error rendering stays in one place.
        std::string_view rest = target.substr(strlen("/instr/"));
        std::string_view name = rest;
        std::string_view query;
        if (size_t q = rest.find('?'); q != std::string_view::npos) {
            name = rest.substr(0, q);
            query = rest.substr(q + 1);
        }
        if (name.empty() ||
            name.find_first_of("%+") != std::string_view::npos)
            return false;
        std::shared_ptr<const std::string> blob;
        if (query.empty()) {
            blob = st->blobs->instrBody(name);
        } else if (query.starts_with("uarch=")) {
            std::string_view arch = query.substr(strlen("uarch="));
            if (arch.empty() ||
                arch.find_first_of("%+&=") != std::string_view::npos)
                return false;
            try {
                blob = st->blobs->instrBody(
                    name, uarch::parseUArch(std::string(arch)));
            } catch (const FatalError &) {
                return false;  // unknown uarch: full path renders 400
            }
        } else {
            return false;
        }
        if (blob == nullptr)
            return false;  // unknown variant: full path renders 404
        blob_hits_->inc();
        out.blob = std::move(blob);
        out.etag = st->blobs->etag();
        served = true;
        cache_.put(target, st->epoch, out);
    }
    if (!served)
        return false;  // cold /search, /diff, /predict: real work

    EndpointInstruments &ins =
        instruments_[static_cast<size_t>(endpoint)];
    ins.requests->inc();
    if (from_cache)
        ins.cache_hits->inc();

    // Finalization, mirroring finishResponse() field for field: the
    // 304 collapse, latency, correlation ID, access/slow logs.
    if (out.status == 200 && !out.etag.empty() &&
        ifNoneMatchValue(raw.if_none_match, out.etag)) {
        HttpResponse not_modified;
        not_modified.status = 304;
        not_modified.etag = std::move(out.etag);
        not_modified.cache_hit = out.cache_hit;
        out = std::move(not_modified);
        not_modified_->inc();
    }
    if (out.status >= 400)
        ins.errors->inc();
    uint64_t us = obs::traceNowUs() - t0_us;
    ins.latency->observe(us);
    if (!raw.request_id.empty() && acceptableRequestId(raw.request_id))
        out.request_id.assign(raw.request_id);
    else
        out.request_id = obs::newTraceId();

    if (logger_.enabled(obs::LogLevel::Info)) {
        logger_.event(obs::LogLevel::Info, "http", "access")
            .str("id", out.request_id)
            .str("method", "GET")
            .str("endpoint", endpointName(endpoint))
            .num("status", static_cast<int64_t>(out.status))
            .num("us", us)
            .str("cache",
                 cacheable ? (from_cache ? "hit" : "miss") : "none")
            .num("generation", st->catalog->generation())
            .num("epoch", st->epoch);
    }
    if (options_.slow_request_us > 0 &&
        us >= options_.slow_request_us &&
        logger_.enabled(obs::LogLevel::Warn)) {
        logger_.event(obs::LogLevel::Warn, "http", "slow_request")
            .str("id", out.request_id)
            .str("target", target.substr(0, 256))
            .num("status", static_cast<int64_t>(out.status))
            .num("us", us)
            .num("threshold_us", options_.slow_request_us);
    }
    if (obs::ChromeTracer *tracer = obs::ChromeTracer::fromEnv())
        tracer->complete(endpointName(endpoint), "http", t0_us, us);
    response = std::move(out);
    return true;
}

HttpResponse
QueryService::dispatch(Endpoint endpoint, const HttpRequest &request,
                       ServingState &state, obs::SpanSet *spans,
                       bool debug_timings)
{
    if (endpoint == Endpoint::Reload && request.method != "POST")
        return errorResponse(405,
                             "reload mutates serving state: POST it");
    if (request.method != "GET" &&
        !(request.method == "POST" &&
          (endpoint == Endpoint::Predict ||
           endpoint == Endpoint::Reload)))
        return errorResponse(405, "method not allowed");

    switch (endpoint) {
      case Endpoint::Healthz: return handleHealthz(state);
      case Endpoint::UArchs: return handleUArchs(state);
      case Endpoint::Instr: return handleInstr(request, state);
      case Endpoint::Search: return handleSearch(request, state);
      case Endpoint::Diff: return handleDiff(request, state);
      case Endpoint::Predict:
        return handlePredict(request, state, spans, debug_timings);
      case Endpoint::Reload: return handleReload(request);
      case Endpoint::Stats: return handleStats(state);
      case Endpoint::Metrics: return handleMetrics();
      case Endpoint::Analytics:
        return handleAnalytics(request, state);
      case Endpoint::Other: break;
    }
    return errorResponse(404, "no such endpoint: " + request.path);
}

HttpResponse
QueryService::handleHealthz(const ServingState &state)
{
    const db::DatabaseCatalog &catalog = *state.catalog;
    JsonWriter json;
    json.beginObject();
    json.member("status", "ok");
    json.member("records", catalog.numRecords());
    json.member("generation", catalog.generation());
    json.member("epoch", state.epoch);
    json.key("uarches").beginArray();
    for (uarch::UArch arch : catalog.uarches())
        json.value(std::string_view(uarch::uarchShortName(arch)));
    json.endArray();
    json.endObject();
    return jsonResponse(std::move(json).str());
}

HttpResponse
QueryService::handleUArchs(const ServingState &state)
{
    blob_hits_->inc();
    HttpResponse response;
    response.blob = state.blobs->uarchsBody();
    response.etag = state.blobs->etag();
    return response;
}

HttpResponse
QueryService::handleInstr(const HttpRequest &request,
                          const ServingState &state)
{
    if (request.path == "/instr" || request.path == "/instr/")
        return errorResponse(400, "usage: /instr/{variant-name}");
    std::string name = request.path.substr(strlen("/instr/"));

    // Precomputed at install time: the full body is one lookup, the
    // ?uarch= variant is assembled from slices of it. No record is
    // ever rendered on the request path.
    std::shared_ptr<const std::string> blob;
    if (auto arch = parseArchParam(request, "uarch"))
        blob = state.blobs->instrBody(name, *arch);
    else
        blob = state.blobs->instrBody(name);
    if (blob == nullptr) {
        blob_misses_->inc();
        return errorResponse(404, "no results for variant '" + name +
                                      "'");
    }
    blob_hits_->inc();
    HttpResponse response;
    response.blob = std::move(blob);
    response.etag = state.blobs->etag();
    return response;
}

namespace {

/** Decode a comma-separated has= flag list ("breakers,slow") into
 *  RecordFlag presence bits. @throws FatalError on unknown names. */
uint8_t
parseHasFlags(std::string_view spec)
{
    uint8_t flags = 0;
    while (true) {
        size_t comma = spec.find(',');
        std::string_view token = spec.substr(0, comma);
        if (token == "breakers")
            flags |= db::kHasTpBreakers;
        else if (token == "slow")
            flags |= db::kHasTpSlow;
        else if (token == "ports")
            flags |= db::kHasTpPorts;
        else if (token == "same_reg")
            flags |= db::kHasSameReg;
        else if (token == "store")
            flags |= db::kHasStoreRt;
        else
            fatalIf(true, "unknown has= flag '", std::string(token),
                    "' (breakers, slow, ports, same_reg, store)");
        if (comma == std::string_view::npos)
            return flags;
        spec.remove_prefix(comma + 1);
    }
}

/**
 * Decode the scan-predicate parameters — shared verbatim between
 * /search and /analytics/regressions (where they pre-filter both
 * sides of the merge). @throws FatalError (-> 400) on bad values.
 */
void
parseScanParams(const HttpRequest &request, db::Query &query)
{
    query.arch = parseArchParam(request, "uarch");
    query.name = request.param("name");
    query.mnemonic = request.param("mnemonic");
    query.extension = request.param("extension");
    if (auto uses = request.param("uses"))
        query.uses_ports = uarch::parsePortMask(*uses);
    if (auto only = request.param("uses_only"))
        query.ports_subset = uarch::parsePortMask(*only);
    if (auto exact = request.param("uses_exact"))
        query.ports_exact = uarch::parsePortMask(*exact);
    auto double_param = [&](const char *key) {
        std::optional<double> out;
        if (auto text = request.param(key)) {
            out = parseDouble(*text);
            fatalIf(!out, "non-numeric parameter ", key, "='", *text,
                    "'");
        }
        return out;
    };
    auto int_param = [&](const char *key) {
        std::optional<int> out;
        if (auto text = request.param(key)) {
            auto parsed = parseInt(*text);
            fatalIf(!parsed, "non-integer parameter ", key, "='",
                    *text, "'");
            out = static_cast<int>(*parsed);
        }
        return out;
    };
    // Double-valued bounds cross into fixed point exactly once, here
    // at the boundary; everything downstream compares raw integers.
    if (auto v = double_param("tp_min"))
        query.tp_min = db::tpBoundMin(*v);
    if (auto v = double_param("tp_max"))
        query.tp_max = db::tpBoundMax(*v);
    query.lat_min = int_param("lat_min");
    query.lat_max = int_param("lat_max");
    query.uops_min = int_param("uops_min");
    query.uops_max = int_param("uops_max");
    if (auto has = request.param("has"))
        query.has_flags = parseHasFlags(*has);
    if (auto limit = int_param("limit")) {
        fatalIf(*limit < 0, "negative limit");
        query.limit = static_cast<size_t>(*limit);
    }
}

} // namespace

HttpResponse
QueryService::handleSearch(const HttpRequest &request,
                           const ServingState &state)
{
    const db::DatabaseCatalog &catalog = *state.catalog;
    db::Query query;
    parseScanParams(request, query);

    std::vector<db::RecordView> records = catalog.search(query);

    // Hits are spliced from the blob store's per-(name, uarch)
    // fragments — the writeRecordJson bytes rendered once at install
    // time — so the request path never re-renders a record. The
    // fallback keeps the render total for states whose store predates
    // a record (not reachable today: blobs are built from the same
    // catalog being searched).
    JsonWriter json;
    json.beginObject();
    json.member("count", records.size());
    json.key("results").beginArray();
    for (const db::RecordView &view : records) {
        std::string_view fragment =
            state.blobs->recordFragment(view.name(), view.arch());
        if (!fragment.empty())
            json.raw(fragment);
        else
            writeRecordJson(json, view);
    }
    json.endArray();
    json.endObject();
    return jsonResponse(std::move(json).str());
}

HttpResponse
QueryService::handleAnalytics(const HttpRequest &request,
                              const ServingState &state)
{
    const db::DatabaseCatalog &catalog = *state.catalog;
    auto from = parseArchParam(request, "from");
    auto to = parseArchParam(request, "to");
    if (!from || !to)
        return errorResponse(
            400,
            "usage: /analytics/regressions?from=HSW&to=SKL"
            "[&metric=tp|latency|any]"
            "[&direction=regressed|improved|changed]"
            "[&mnemonic=...&extension=...&uses=...&limit=...]");

    using Metric = db::AnalyticsQuery::Metric;
    using Direction = db::AnalyticsQuery::Direction;
    db::AnalyticsQuery query;
    query.from = *from;
    query.to = *to;
    std::string_view metric_name = "any";
    if (auto metric = request.param("metric")) {
        if (*metric == "tp")
            query.metric = Metric::Tp;
        else if (*metric == "latency")
            query.metric = Metric::Latency;
        else if (*metric != "any")
            return errorResponse(400, "unknown metric '" + *metric +
                                          "' (tp, latency, any)");
    }
    std::string_view direction_name = "regressed";
    if (auto direction = request.param("direction")) {
        if (*direction == "improved")
            query.direction = Direction::Improved;
        else if (*direction == "changed")
            query.direction = Direction::Changed;
        else if (*direction != "regressed")
            return errorResponse(
                400, "unknown direction '" + *direction +
                         "' (regressed, improved, changed)");
    }
    switch (query.metric) {
      case Metric::Tp: metric_name = "tp"; break;
      case Metric::Latency: metric_name = "latency"; break;
      case Metric::Any: break;
    }
    switch (query.direction) {
      case Direction::Improved: direction_name = "improved"; break;
      case Direction::Changed: direction_name = "changed"; break;
      case Direction::Regressed: break;
    }
    parseScanParams(request, query.filter);
    query.limit = query.filter.limit;

    db::AnalyticsResult result = catalog.analytics(query);

    JsonWriter json;
    json.beginObject();
    json.member("from",
                std::string_view(uarch::uarchShortName(*from)));
    json.member("to", std::string_view(uarch::uarchShortName(*to)));
    json.member("metric", metric_name);
    json.member("direction", direction_name);
    json.member("common", result.common);
    json.member("matched", result.matched);
    json.key("entries").beginArray();
    for (const db::AnalyticsEntry &entry : result.entries) {
        json.beginObject();
        json.member("name", std::string_view(entry.from.name()));
        json.member("mnemonic",
                    std::string_view(entry.from.mnemonic()));
        json.member("extension",
                    std::string_view(entry.from.extension()));
        json.member("tp_changed", entry.tp_changed);
        json.member("lat_changed", entry.lat_changed);
        json.key("from").beginObject();
        json.member("tp", entry.from.tpMeasured());
        json.member("max_latency", entry.from.maxLatency());
        json.member("ports", std::string_view(
                                 entry.from.portUsage().toString()));
        json.endObject();
        json.key("to").beginObject();
        json.member("tp", entry.to.tpMeasured());
        json.member("max_latency", entry.to.maxLatency());
        json.member("ports", std::string_view(
                                 entry.to.portUsage().toString()));
        json.endObject();
        json.endObject();
    }
    json.endArray();
    json.endObject();
    return jsonResponse(std::move(json).str());
}

HttpResponse
QueryService::handleDiff(const HttpRequest &request,
                         const ServingState &state)
{
    const db::DatabaseCatalog &catalog = *state.catalog;
    auto a = parseArchParam(request, "a");
    auto b = parseArchParam(request, "b");
    if (!a || !b)
        return errorResponse(400, "usage: /diff?a=NHM&b=SKL");

    db::CatalogDiff diff = catalog.diff(*a, *b);

    JsonWriter json;
    json.beginObject();
    json.member("a", std::string_view(uarch::uarchShortName(*a)));
    json.member("b", std::string_view(uarch::uarchShortName(*b)));
    json.member("common", diff.common);
    json.key("changed").beginArray();
    for (const db::CatalogDiffEntry &entry : diff.changed) {
        json.beginObject();
        json.member("name", std::string_view(entry.a.name()));
        json.member("tp_differs", entry.tp_differs);
        json.member("ports_differ", entry.ports_differ);
        json.member("latency_differs", entry.latency_differs);
        json.key("a").beginObject();
        json.member("ports", std::string_view(
                                 entry.a.portUsage().toString()));
        json.member("tp", entry.a.tpMeasured());
        json.member("max_latency", entry.a.maxLatency());
        json.endObject();
        json.key("b").beginObject();
        json.member("ports", std::string_view(
                                 entry.b.portUsage().toString()));
        json.member("tp", entry.b.tpMeasured());
        json.member("max_latency", entry.b.maxLatency());
        json.endObject();
        json.endObject();
    }
    json.endArray();
    json.key("only_a").beginArray();
    for (const std::string &name : diff.only_a)
        json.value(std::string_view(name));
    json.endArray();
    json.key("only_b").beginArray();
    for (const std::string &name : diff.only_b)
        json.value(std::string_view(name));
    json.endArray();
    json.endObject();
    return jsonResponse(std::move(json).str());
}

const QueryService::PredictContext &
QueryService::predictContext(ServingState &state, uarch::UArch arch)
{
    std::lock_guard<std::mutex> lock(state.predict_mutex);
    auto it = state.predict_contexts.find(arch);
    if (it == state.predict_contexts.end()) {
        auto context = std::make_unique<PredictContext>();
        context->set =
            state.catalog->toCharacterizationSet(arch, instrs_);
        context->predictor =
            std::make_unique<core::PerformancePredictor>(context->set);
        it = state.predict_contexts.emplace(arch, std::move(context))
                 .first;
    }
    return *it->second;
}

namespace {

/** Instruction lines in a listing, with assemble()'s line semantics
 *  ('#' comments, blank lines). Admission control must not depend on
 *  doing the parse work it exists to bound, so this is a raw scan. */
size_t
countInstructionLines(const std::string &listing)
{
    size_t count = 0;
    for (const auto &raw : split(listing, '\n')) {
        std::string line = raw.substr(0, raw.find('#'));
        if (!trim(line).empty())
            ++count;
    }
    return count;
}

} // namespace

HttpResponse
QueryService::handlePredict(const HttpRequest &request,
                            ServingState &state, obs::SpanSet *spans,
                            bool debug_timings)
{
    auto span = [spans](const char *name) {
        return spans != nullptr ? spans->span(name)
                                : obs::SpanSet::Scope();
    };
    obs::SpanSet::Scope root = span("predict");

    std::optional<uarch::UArch> arch;
    std::string listing;
    {
        auto parse_span = span("parse");
        arch = parseArchParam(request, "uarch");
        if (!arch)
            return errorResponse(
                400,
                "usage: /predict?uarch=SKL&asm=ADD RAX, RBX; ... "
                "(or POST the listing as the request body)");

        if (request.method == "POST") {
            listing = request.body;
        } else if (auto text = request.param("asm")) {
            listing = *text;
        }
        if (listing.empty())
            return errorResponse(400,
                                 "missing kernel: pass ?asm= or a "
                                 "POST body with one instruction per "
                                 "line");

        const PredictAdmission &admission = options_.admission;
        if (listing.size() > admission.max_listing_bytes) {
            rejected_oversize_->inc();
            JsonWriter json;
            json.beginObject();
            json.member("error", "kernel listing too large");
            json.member("status", 413);
            json.member("rejected_by", "admission");
            json.member("listing_bytes", listing.size());
            json.member("max_listing_bytes",
                        admission.max_listing_bytes);
            json.endObject();
            HttpResponse response;
            response.status = 413;
            response.body = std::move(json).str();
            return response;
        }

        // Accept ';' as a line separator so kernels fit in a query
        // string.
        for (char &c : listing)
            if (c == ';')
                c = '\n';

        size_t instructions = countInstructionLines(listing);
        if (instructions == 0)
            return errorResponse(400, "empty kernel");
        if (instructions > admission.max_instructions) {
            rejected_oversize_->inc();
            JsonWriter json;
            json.beginObject();
            json.member("error", "kernel has too many instructions");
            json.member("status", 413);
            json.member("rejected_by", "admission");
            json.member("instructions", instructions);
            json.member("max_instructions",
                        admission.max_instructions);
            json.endObject();
            HttpResponse response;
            response.status = 413;
            response.body = std::move(json).str();
            return response;
        }
    }

    isa::Kernel kernel;
    {
        auto assemble_span = span("assemble");
        kernel = isa::assemble(instrs_, listing);
    }
    if (kernel.empty())
        return errorResponse(400, "empty kernel");

    // The memo key is the exact simulation fingerprint, so every
    // spelling of one kernel (GET vs POST, ';' vs newlines, comments,
    // whitespace) shares a single entry — and a hit is byte-identical
    // to a cold render by construction. Epoch-keyed because the
    // static-analysis half of the body is generation-dependent.
    // Debug-timings responses carry per-request span data, so they
    // neither read nor populate the memo.
    std::string memo_key = engine_.fingerprint(*arch, kernel);
    if (!debug_timings) {
        if (auto memoized = kernel_memo_.get(memo_key, state.epoch)) {
            HttpResponse response = *memoized;
            response.cache_hit = true;
            instruments_[static_cast<size_t>(Endpoint::Predict)]
                .cache_hits->inc();
            return response;
        }
    }

    sim::Measurement measured;
    try {
        auto simulate_span = span("simulate");
        measured = engine_.simulate(*arch, kernel);
    } catch (const sim::CycleBudgetExceeded &e) {
        rejected_budget_->inc();
        JsonWriter json;
        json.beginObject();
        json.member("error", std::string_view(e.what()));
        json.member("status", 429);
        json.member("rejected_by", "admission");
        json.member("cycle_budget", e.budget());
        json.endObject();
        HttpResponse response;
        response.status = 429;
        response.body = std::move(json).str();
        return response;
    } catch (const PredictOverloaded &e) {
        rejected_busy_->inc();
        JsonWriter json;
        json.beginObject();
        json.member("error", std::string_view(e.what()));
        json.member("status", 429);
        json.member("rejected_by", "admission");
        json.member("max_inflight", e.maxInflight());
        json.endObject();
        HttpResponse response;
        response.status = 429;
        response.body = std::move(json).str();
        return response;
    }
    // Any other FatalError (e.g. an instruction the generation lacks)
    // falls through to handle()'s 400.

    // Static IACA-style analysis from the serving generation's
    // catalog. Simulation is ground truth and works on any of the
    // nine generations; analysis additionally needs catalog coverage
    // of every instruction, so thin catalogs degrade to
    // "analysis": null with the reason, not an error.
    const core::Prediction *analysis = nullptr;
    core::Prediction analysis_storage;
    std::string analysis_error;
    {
        auto analysis_span = span("analysis");
        try {
            const PredictContext &context =
                predictContext(state, *arch);
            analysis_storage = context.predictor->analyzeLoop(kernel);
            analysis = &analysis_storage;
        } catch (const FatalError &e) {
            analysis_error = e.what();
        }
    }

    obs::SpanSet::Scope render_span = span("render");
    int num_ports = uarch::uarchInfo(*arch).num_ports;
    JsonWriter json;
    json.beginObject();
    json.member("uarch",
                std::string_view(uarch::uarchShortName(*arch)));
    json.member("generation", state.catalog->generation());
    json.member("instructions", kernel.size());
    json.key("kernel").beginArray();
    for (const isa::InstrInstance &inst : kernel)
        json.value(std::string_view(inst.toAsm()));
    json.endArray();
    json.member("block_throughput", measured.cycles);
    json.key("simulation").beginObject();
    json.member("cycles_per_iteration", measured.cycles);
    json.member("uops_issued", measured.uops_issued);
    json.member("uops_eliminated", measured.uops_eliminated);
    json.key("port_pressure").beginArray();
    for (int p = 0; p < num_ports; ++p)
        json.value(measured.port_uops[static_cast<size_t>(p)]);
    json.endArray();
    json.endObject();
    if (analysis != nullptr) {
        json.key("analysis").beginObject();
        json.member("block_throughput", analysis->block_throughput);
        json.member("bottleneck",
                    std::string_view(analysis->bottleneck));
        json.key("bounds").beginObject();
        json.member("ports", analysis->port_bound);
        json.member("dependencies", analysis->dependency_bound);
        json.member("frontend", analysis->frontend_bound);
        json.member("divider", analysis->divider_bound);
        json.endObject();
        json.key("port_pressure").beginArray();
        for (int p = 0; p < num_ports; ++p)
            json.value(
                analysis->port_pressure[static_cast<size_t>(p)]);
        json.endArray();
        json.endObject();
    } else {
        json.key("analysis").valueNull();
        json.member("analysis_error",
                    std::string_view(analysis_error));
    }

    // Close the phase spans before rendering them: the "timings"
    // member is written last so the render span covers the rest of
    // the body's assembly.
    render_span.end();
    root.end();
    if (debug_timings && spans != nullptr) {
        json.key("timings").beginArray();
        for (const obs::SpanSet::Entry &entry : spans->entries()) {
            json.beginObject();
            json.member("name", std::string_view(entry.name));
            json.member("depth", static_cast<long>(entry.depth));
            json.member("start_us", entry.start_us);
            json.member("dur_us", entry.dur_us);
            json.endObject();
        }
        json.endArray();
    }
    json.endObject();

    HttpResponse response = jsonResponse(std::move(json).str());
    if (!debug_timings)
        kernel_memo_.put(memo_key, state.epoch, response);
    return response;
}

HttpResponse
QueryService::handleReload(const HttpRequest &)
{
    StatePtr installed;
    db::RecoveryReport report;
    try {
        installed = reloadState(report);
    } catch (const std::exception &e) {
        // Configuration problems (no reloader) and reload failures
        // are the server's fault, not the client's: uniformly 503.
        // The body names the generation that *keeps* serving so an
        // operator reading the rejection knows the blast radius is
        // zero — fail-operational, not fail-stop.
        StatePtr current = state();
        JsonWriter json;
        json.beginObject();
        json.member("error", std::string_view(e.what()));
        json.member("status", 503);
        json.member("reason", "reload_rejected");
        json.member("serving_generation",
                    current->catalog->generation());
        json.member("serving_epoch", current->epoch);
        json.endObject();
        HttpResponse response = jsonResponse(std::move(json).str());
        response.status = 503;
        return response;
    }

    // Render from the state *this* reload installed — a racing
    // reload may already have replaced it, but this response must
    // describe the generation its own swap published.
    JsonWriter json;
    json.beginObject();
    json.member("status", "reloaded");
    json.member("generation", installed->catalog->generation());
    json.member("epoch", installed->epoch);
    json.member("records", installed->catalog->numRecords());
    json.key("uarches").beginArray();
    for (uarch::UArch arch : installed->catalog->uarches())
        json.value(std::string_view(uarch::uarchShortName(arch)));
    json.endArray();
    if (report.recovered || !report.events.empty()) {
        json.key("recovery").beginObject();
        json.member("recovered", report.recovered);
        json.member("rejected_generations",
                    report.rejected_generations.size());
        json.key("events").beginArray();
        size_t shown = 0;
        for (const std::string &event : report.events) {
            if (++shown > 16)
                break;
            json.value(std::string_view(event));
        }
        json.endArray();
        json.member("summary", std::string_view(report.summary()));
        json.endObject();
    }
    json.endObject();
    return jsonResponse(std::move(json).str());
}

HttpResponse
QueryService::handleStats(const ServingState &state)
{
    JsonWriter json;
    json.beginObject();
    json.member("generation", state.catalog->generation());
    json.member("epoch", state.epoch);
    json.key("endpoints").beginObject();
    for (size_t i = 0; i < kNumEndpoints; ++i) {
        EndpointMetrics m = metrics(static_cast<Endpoint>(i));
        json.key(endpointName(static_cast<Endpoint>(i)))
            .beginObject();
        json.member("requests", m.requests);
        json.member("errors", m.errors);
        json.member("cache_hits", m.cache_hits);
        json.member("total_us", m.total_us);
        json.member("samples", m.samples);
        // Percentiles of an unhit endpoint are unknowable, not zero:
        // null until the first sample lands.
        if (m.p50_us)
            json.member("p50_us", *m.p50_us);
        else
            json.key("p50_us").valueNull();
        if (m.p99_us)
            json.member("p99_us", *m.p99_us);
        else
            json.key("p99_us").valueNull();
        json.endObject();
    }
    json.endObject();
    auto cache_section = [&json](const char *name,
                                 const ResponseCache::Stats &cache) {
        json.key(name).beginObject();
        json.member("hits", cache.hits);
        json.member("misses", cache.misses);
        json.member("insertions", cache.insertions);
        json.member("evictions", cache.evictions);
        json.member("entries", cache.entries);
        json.member("shards", cache.shards);
        json.member("capacity", cache.capacity);
        json.member("owned_bytes", cache.owned_bytes);
        json.endObject();
    };
    cache_section("cache", cache_.stats());
    cache_section("kernel_memo", kernel_memo_.stats());

    BlobStore::Stats blobs = state.blobs->stats();
    json.key("blobs").beginObject();
    json.member("etag", std::string_view(state.blobs->etag()));
    json.member("names", blobs.names);
    json.member("records", blobs.records);
    json.member("bytes", blobs.bytes);
    json.member("build_us", blobs.build_us);
    json.member("hits", blob_hits_->value());
    json.member("misses", blob_misses_->value());
    json.member("not_modified", not_modified_->value());
    json.endObject();

    json.key("reload").beginObject();
    json.member("reloads",
                reloads_->value());
    json.member("rejections",
                reload_rejections_->value());
    json.member("recoveries",
                recoveries_->value());
    json.member("recovery_events",
                recovery_events_->value());
    json.member(
        "verification_failures",
        verification_failures_->value());
    json.endObject();

    PredictEngine::Stats engine = engine_.stats();
    const PredictAdmission &admission = options_.admission;
    json.key("predict").beginObject();
    json.key("admission").beginObject();
    json.member("max_instructions", admission.max_instructions);
    json.member("max_listing_bytes", admission.max_listing_bytes);
    json.member("cycle_budget",
                options_.engine.predict.cycle_budget);
    json.member("max_inflight", options_.engine.max_inflight);
    json.member("rejected_oversize",
                rejected_oversize_->value());
    json.member("rejected_budget",
                rejected_budget_->value());
    json.member("rejected_busy",
                rejected_busy_->value());
    json.endObject();
    json.key("engine").beginObject();
    json.member("workers", engine.workers);
    json.member("inflight", engine.inflight);
    json.member("simulations", engine.simulations);
    json.member("coalesced", engine.coalesced);
    json.member("sim_cache_hits", engine.sim_cache_hits);
    json.member("sim_cache_misses", engine.sim_cache_misses);
    json.member("sim_cache_entries", engine.sim_cache_entries);
    json.endObject();
    json.endObject();
    json.endObject();
    return jsonResponse(std::move(json).str());
}

HttpResponse
QueryService::handleMetrics()
{
    // The service registry plus the process-wide one (catalog
    // recovery, sweep progress) in one scrape. Never cached: a
    // scrape is a point-in-time read by definition.
    HttpResponse response;
    response.content_type = "text/plain; version=0.0.4; charset=utf-8";
    response.body = registry_.renderPrometheus();
    response.body += obs::Registry::global().renderPrometheus();
    return response;
}

EndpointMetrics
QueryService::metrics(Endpoint endpoint) const
{
    const EndpointInstruments &ins =
        instruments_[static_cast<size_t>(endpoint)];
    EndpointMetrics out;
    out.requests = ins.requests->value();
    out.errors = ins.errors->value();
    out.cache_hits = ins.cache_hits->value();
    obs::Histogram::Snapshot latency = ins.latency->snapshot();
    out.total_us = latency.sum;
    out.samples = latency.count;
    out.p50_us = latency.quantile(0.50);
    out.p99_us = latency.quantile(0.99);
    return out;
}

} // namespace uops::server
