#include "service.h"

#include <bit>
#include <chrono>
#include <cstring>

#include "isa/kernel.h"
#include "server/json.h"
#include "support/status.h"
#include "support/strings.h"

namespace uops::server {

namespace {

/** Render one database record as a JSON object. */
void
writeRecord(JsonWriter &json, const db::RecordView &view)
{
    json.beginObject();
    json.member("name", std::string_view(view.name()));
    json.member("mnemonic", std::string_view(view.mnemonic()));
    json.member("extension", std::string_view(view.extension()));
    json.member("uarch", std::string_view(
                             uarch::uarchShortName(view.arch())));
    json.member("ports",
                std::string_view(view.portUsage().toString()));
    json.member("uops", view.uopCount());
    json.member("max_latency", view.maxLatency());

    json.key("throughput").beginObject();
    json.member("measured", view.tpMeasured());
    if (auto v = view.tpWithBreakers())
        json.member("with_dep_breakers", *v);
    if (auto v = view.tpSlow())
        json.member("slow_values", *v);
    if (auto v = view.tpFromPorts())
        json.member("from_ports", *v);
    json.endObject();

    json.key("latency").beginArray();
    for (const isa::ResultLatency &pair : view.latencies()) {
        json.beginObject();
        json.member("src_op", pair.src_op);
        json.member("dst_op", pair.dst_op);
        json.member("cycles", pair.cycles);
        if (pair.upper_bound)
            json.member("upper_bound", true);
        if (pair.slow_cycles)
            json.member("slow_cycles", *pair.slow_cycles);
        json.endObject();
    }
    json.endArray();

    if (auto v = view.sameRegCycles())
        json.member("latency_same_reg", *v);
    if (auto v = view.storeRoundTrip())
        json.member("store_load_roundtrip", *v);
    json.endObject();
}

std::optional<uarch::UArch>
parseArchParam(const HttpRequest &request, const std::string &key)
{
    auto value = request.param(key);
    if (!value)
        return std::nullopt;
    return uarch::parseUArch(*value);   // FatalError -> 400
}

HttpResponse
jsonResponse(std::string body)
{
    HttpResponse response;
    response.body = std::move(body);
    return response;
}

} // namespace

const char *
endpointName(Endpoint endpoint)
{
    switch (endpoint) {
      case Endpoint::Healthz: return "/healthz";
      case Endpoint::UArchs: return "/uarchs";
      case Endpoint::Instr: return "/instr";
      case Endpoint::Search: return "/search";
      case Endpoint::Diff: return "/diff";
      case Endpoint::Predict: return "/predict";
      case Endpoint::Reload: return "/reload";
      case Endpoint::Stats: return "/stats";
      case Endpoint::Other: return "other";
    }
    return "?";
}

HttpResponse
errorResponse(int status, const std::string &message)
{
    JsonWriter json;
    json.beginObject();
    json.member("error", std::string_view(message));
    json.member("status", static_cast<long>(status));
    json.endObject();
    HttpResponse response;
    response.status = status;
    response.body = std::move(json).str();
    return response;
}

QueryService::QueryService(CatalogPtr catalog,
                           const isa::InstrDb &instrs, Options options)
    : instrs_(instrs), options_(options),
      cache_(options.cache_shards, options.cache_capacity_per_shard),
      kernel_memo_(options.memo_shards,
                   options.memo_capacity_per_shard),
      engine_(instrs, options.engine)
{
    fatalIf(catalog == nullptr, "QueryService: null catalog");
    swapCatalog(std::move(catalog));
}

QueryService::QueryService(CatalogPtr catalog,
                           const isa::InstrDb &instrs)
    : QueryService(std::move(catalog), instrs, Options{})
{
}

QueryService::StatePtr
QueryService::state() const
{
    std::lock_guard<std::mutex> lock(state_mutex_);
    return state_;
}

QueryService::CatalogPtr
QueryService::catalog() const
{
    return state()->catalog;
}

uint64_t
QueryService::epoch() const
{
    return state()->epoch;
}

QueryService::StatePtr
QueryService::installCatalog(CatalogPtr next)
{
    fatalIf(next == nullptr, "QueryService: null catalog");
    auto fresh = std::make_shared<ServingState>();
    fresh->catalog = std::move(next);
    // Epoch assignment happens under the same lock as the install so
    // concurrent swaps can neither interleave (installing an older
    // epoch over a newer one) nor observe a regressing epoch(); the
    // installed state is the single source of truth for the epoch.
    std::lock_guard<std::mutex> lock(state_mutex_);
    fresh->epoch = state_ ? state_->epoch + 1 : 1;
    state_ = fresh;
    return fresh;
}

uint64_t
QueryService::swapCatalog(CatalogPtr next)
{
    return installCatalog(std::move(next))->epoch;
}

void
QueryService::setReloader(Reloader reloader)
{
    std::lock_guard<std::mutex> lock(reload_mutex_);
    reloader_ = std::move(reloader);
}

void
QueryService::setReloader(std::function<CatalogPtr()> reloader)
{
    setReloader([inner = std::move(reloader)](db::RecoveryReport &) {
        return inner();
    });
}

QueryService::StatePtr
QueryService::reloadState(db::RecoveryReport &report)
{
    // One reload at a time: concurrent /reload requests (or a --watch
    // tick racing a manual reload) serialize here, each installing a
    // complete generation.
    std::lock_guard<std::mutex> lock(reload_mutex_);
    fatalIf(!reloader_, "reload: no reload source configured");
    CatalogPtr next;
    try {
        next = reloader_(report);
        fatalIf(next == nullptr,
                "reload: reloader produced no catalog");
    } catch (...) {
        // The old generation keeps serving: a rejected reload is an
        // operational event, not an outage.
        reload_rejections_.fetch_add(1, std::memory_order_relaxed);
        throw;
    }
    if (report.recovered)
        recoveries_.fetch_add(1, std::memory_order_relaxed);
    recovery_events_.fetch_add(report.events.size(),
                               std::memory_order_relaxed);
    verification_failures_.fetch_add(
        report.rejected_generations.size(),
        std::memory_order_relaxed);
    reloads_.fetch_add(1, std::memory_order_relaxed);
    return installCatalog(std::move(next));
}

uint64_t
QueryService::reload()
{
    db::RecoveryReport report;
    return reloadState(report)->epoch;
}

Endpoint
QueryService::route(const HttpRequest &request) const
{
    const std::string &path = request.path;
    if (path == "/healthz")
        return Endpoint::Healthz;
    if (path == "/uarchs")
        return Endpoint::UArchs;
    if (startsWith(path, "/instr/") || path == "/instr")
        return Endpoint::Instr;
    if (path == "/search")
        return Endpoint::Search;
    if (path == "/diff")
        return Endpoint::Diff;
    if (path == "/predict")
        return Endpoint::Predict;
    if (path == "/reload")
        return Endpoint::Reload;
    if (path == "/stats")
        return Endpoint::Stats;
    return Endpoint::Other;
}

HttpResponse
QueryService::handle(const HttpRequest &request)
{
    auto t0 = std::chrono::steady_clock::now();
    Endpoint endpoint = route(request);
    Counters &counters = counters_[static_cast<size_t>(endpoint)];
    counters.requests.fetch_add(1, std::memory_order_relaxed);

    // Pin the serving generation once: everything below — cache key,
    // dispatch, predictor contexts — runs against this state even if
    // a swap lands mid-request.
    StatePtr st = state();

    HttpResponse response;
    bool cacheable =
        request.method == "GET" &&
        (endpoint == Endpoint::Instr || endpoint == Endpoint::Search ||
         endpoint == Endpoint::Diff || endpoint == Endpoint::Predict);

    bool from_cache = false;
    if (cacheable) {
        if (auto cached = cache_.get(request.target, st->epoch)) {
            response = *cached;
            response.cache_hit = true;
            from_cache = true;
            counters.cache_hits.fetch_add(1,
                                          std::memory_order_relaxed);
        }
    }
    if (!from_cache) {
        try {
            response = dispatch(endpoint, request, *st);
        } catch (const FatalError &e) {
            response = errorResponse(400, e.what());
        } catch (const std::exception &e) {
            response = errorResponse(500, e.what());
        }
        if (cacheable && response.status == 200)
            cache_.put(request.target, st->epoch, response);
    }

    if (response.status >= 400)
        counters.errors.fetch_add(1, std::memory_order_relaxed);
    auto t1 = std::chrono::steady_clock::now();
    uint64_t us = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0)
            .count());
    counters.total_us.fetch_add(us, std::memory_order_relaxed);
    size_t bucket = std::min<size_t>(std::bit_width(us),
                                     kLatencyBuckets - 1);
    counters.latency[bucket].fetch_add(1, std::memory_order_relaxed);
    return response;
}

HttpResponse
QueryService::dispatch(Endpoint endpoint, const HttpRequest &request,
                       ServingState &state)
{
    if (endpoint == Endpoint::Reload && request.method != "POST")
        return errorResponse(405,
                             "reload mutates serving state: POST it");
    if (request.method != "GET" &&
        !(request.method == "POST" &&
          (endpoint == Endpoint::Predict ||
           endpoint == Endpoint::Reload)))
        return errorResponse(405, "method not allowed");

    switch (endpoint) {
      case Endpoint::Healthz: return handleHealthz(state);
      case Endpoint::UArchs: return handleUArchs(state);
      case Endpoint::Instr: return handleInstr(request, state);
      case Endpoint::Search: return handleSearch(request, state);
      case Endpoint::Diff: return handleDiff(request, state);
      case Endpoint::Predict: return handlePredict(request, state);
      case Endpoint::Reload: return handleReload(request);
      case Endpoint::Stats: return handleStats(state);
      case Endpoint::Other: break;
    }
    return errorResponse(404, "no such endpoint: " + request.path);
}

HttpResponse
QueryService::handleHealthz(const ServingState &state)
{
    const db::DatabaseCatalog &catalog = *state.catalog;
    JsonWriter json;
    json.beginObject();
    json.member("status", "ok");
    json.member("records", catalog.numRecords());
    json.member("generation", catalog.generation());
    json.member("epoch", state.epoch);
    json.key("uarches").beginArray();
    for (uarch::UArch arch : catalog.uarches())
        json.value(std::string_view(uarch::uarchShortName(arch)));
    json.endArray();
    json.endObject();
    return jsonResponse(std::move(json).str());
}

HttpResponse
QueryService::handleUArchs(const ServingState &state)
{
    const db::DatabaseCatalog &catalog = *state.catalog;
    JsonWriter json;
    json.beginObject();
    json.key("uarchs").beginArray();
    for (uarch::UArch arch : catalog.uarches()) {
        const uarch::UArchInfo &info = uarch::uarchInfo(arch);
        json.beginObject();
        json.member("name", std::string_view(info.short_name));
        json.member("full_name", std::string_view(info.full_name));
        json.member("processor", std::string_view(info.processor));
        json.member("ports", info.num_ports);
        json.member("records", catalog.numRecords(arch));
        json.endObject();
    }
    json.endArray();
    json.endObject();
    return jsonResponse(std::move(json).str());
}

HttpResponse
QueryService::handleInstr(const HttpRequest &request,
                          const ServingState &state)
{
    const db::DatabaseCatalog &catalog = *state.catalog;
    if (request.path == "/instr" || request.path == "/instr/")
        return errorResponse(400, "usage: /instr/{variant-name}");
    std::string name = request.path.substr(strlen("/instr/"));

    std::vector<db::RecordView> records;
    if (auto arch = parseArchParam(request, "uarch")) {
        if (auto view = catalog.find(*arch, name))
            records.push_back(*view);
    } else {
        records = catalog.findByName(name);
    }
    if (records.empty())
        return errorResponse(404, "no results for variant '" + name +
                                      "'");

    JsonWriter json;
    json.beginObject();
    json.member("name", std::string_view(name));
    json.key("results").beginArray();
    for (const db::RecordView &view : records)
        writeRecord(json, view);
    json.endArray();
    json.endObject();
    return jsonResponse(std::move(json).str());
}

HttpResponse
QueryService::handleSearch(const HttpRequest &request,
                           const ServingState &state)
{
    const db::DatabaseCatalog &catalog = *state.catalog;
    db::Query query;
    query.arch = parseArchParam(request, "uarch");
    query.name = request.param("name");
    query.mnemonic = request.param("mnemonic");
    query.extension = request.param("extension");
    if (auto uses = request.param("uses"))
        query.uses_ports = uarch::parsePortMask(*uses);
    auto double_param = [&](const char *key) {
        std::optional<double> out;
        if (auto text = request.param(key)) {
            out = parseDouble(*text);
            fatalIf(!out, "non-numeric parameter ", key, "='", *text,
                    "'");
        }
        return out;
    };
    auto int_param = [&](const char *key) {
        std::optional<int> out;
        if (auto text = request.param(key)) {
            auto parsed = parseInt(*text);
            fatalIf(!parsed, "non-integer parameter ", key, "='",
                    *text, "'");
            out = static_cast<int>(*parsed);
        }
        return out;
    };
    query.tp_min = double_param("tp_min");
    query.tp_max = double_param("tp_max");
    query.lat_min = int_param("lat_min");
    query.lat_max = int_param("lat_max");
    if (auto limit = int_param("limit")) {
        fatalIf(*limit < 0, "negative limit");
        query.limit = static_cast<size_t>(*limit);
    }

    std::vector<db::RecordView> records = catalog.search(query);

    JsonWriter json;
    json.beginObject();
    json.member("count", records.size());
    json.key("results").beginArray();
    for (const db::RecordView &view : records)
        writeRecord(json, view);
    json.endArray();
    json.endObject();
    return jsonResponse(std::move(json).str());
}

HttpResponse
QueryService::handleDiff(const HttpRequest &request,
                         const ServingState &state)
{
    const db::DatabaseCatalog &catalog = *state.catalog;
    auto a = parseArchParam(request, "a");
    auto b = parseArchParam(request, "b");
    if (!a || !b)
        return errorResponse(400, "usage: /diff?a=NHM&b=SKL");

    db::CatalogDiff diff = catalog.diff(*a, *b);

    JsonWriter json;
    json.beginObject();
    json.member("a", std::string_view(uarch::uarchShortName(*a)));
    json.member("b", std::string_view(uarch::uarchShortName(*b)));
    json.member("common", diff.common);
    json.key("changed").beginArray();
    for (const db::CatalogDiffEntry &entry : diff.changed) {
        json.beginObject();
        json.member("name", std::string_view(entry.a.name()));
        json.member("tp_differs", entry.tp_differs);
        json.member("ports_differ", entry.ports_differ);
        json.member("latency_differs", entry.latency_differs);
        json.key("a").beginObject();
        json.member("ports", std::string_view(
                                 entry.a.portUsage().toString()));
        json.member("tp", entry.a.tpMeasured());
        json.member("max_latency", entry.a.maxLatency());
        json.endObject();
        json.key("b").beginObject();
        json.member("ports", std::string_view(
                                 entry.b.portUsage().toString()));
        json.member("tp", entry.b.tpMeasured());
        json.member("max_latency", entry.b.maxLatency());
        json.endObject();
        json.endObject();
    }
    json.endArray();
    json.key("only_a").beginArray();
    for (const std::string &name : diff.only_a)
        json.value(std::string_view(name));
    json.endArray();
    json.key("only_b").beginArray();
    for (const std::string &name : diff.only_b)
        json.value(std::string_view(name));
    json.endArray();
    json.endObject();
    return jsonResponse(std::move(json).str());
}

const QueryService::PredictContext &
QueryService::predictContext(ServingState &state, uarch::UArch arch)
{
    std::lock_guard<std::mutex> lock(state.predict_mutex);
    auto it = state.predict_contexts.find(arch);
    if (it == state.predict_contexts.end()) {
        auto context = std::make_unique<PredictContext>();
        context->set =
            state.catalog->toCharacterizationSet(arch, instrs_);
        context->predictor =
            std::make_unique<core::PerformancePredictor>(context->set);
        it = state.predict_contexts.emplace(arch, std::move(context))
                 .first;
    }
    return *it->second;
}

namespace {

/** Instruction lines in a listing, with assemble()'s line semantics
 *  ('#' comments, blank lines). Admission control must not depend on
 *  doing the parse work it exists to bound, so this is a raw scan. */
size_t
countInstructionLines(const std::string &listing)
{
    size_t count = 0;
    for (const auto &raw : split(listing, '\n')) {
        std::string line = raw.substr(0, raw.find('#'));
        if (!trim(line).empty())
            ++count;
    }
    return count;
}

} // namespace

HttpResponse
QueryService::handlePredict(const HttpRequest &request,
                            ServingState &state)
{
    auto arch = parseArchParam(request, "uarch");
    if (!arch)
        return errorResponse(
            400, "usage: /predict?uarch=SKL&asm=ADD RAX, RBX; ... "
                 "(or POST the listing as the request body)");

    std::string listing;
    if (request.method == "POST") {
        listing = request.body;
    } else if (auto text = request.param("asm")) {
        listing = *text;
    }
    if (listing.empty())
        return errorResponse(400,
                             "missing kernel: pass ?asm= or a POST "
                             "body with one instruction per line");

    const PredictAdmission &admission = options_.admission;
    if (listing.size() > admission.max_listing_bytes) {
        rejected_oversize_.fetch_add(1, std::memory_order_relaxed);
        JsonWriter json;
        json.beginObject();
        json.member("error", "kernel listing too large");
        json.member("status", 413);
        json.member("rejected_by", "admission");
        json.member("listing_bytes", listing.size());
        json.member("max_listing_bytes", admission.max_listing_bytes);
        json.endObject();
        HttpResponse response;
        response.status = 413;
        response.body = std::move(json).str();
        return response;
    }

    // Accept ';' as a line separator so kernels fit in a query string.
    for (char &c : listing)
        if (c == ';')
            c = '\n';

    size_t instructions = countInstructionLines(listing);
    if (instructions == 0)
        return errorResponse(400, "empty kernel");
    if (instructions > admission.max_instructions) {
        rejected_oversize_.fetch_add(1, std::memory_order_relaxed);
        JsonWriter json;
        json.beginObject();
        json.member("error", "kernel has too many instructions");
        json.member("status", 413);
        json.member("rejected_by", "admission");
        json.member("instructions", instructions);
        json.member("max_instructions", admission.max_instructions);
        json.endObject();
        HttpResponse response;
        response.status = 413;
        response.body = std::move(json).str();
        return response;
    }

    isa::Kernel kernel = isa::assemble(instrs_, listing);
    if (kernel.empty())
        return errorResponse(400, "empty kernel");

    // The memo key is the exact simulation fingerprint, so every
    // spelling of one kernel (GET vs POST, ';' vs newlines, comments,
    // whitespace) shares a single entry — and a hit is byte-identical
    // to a cold render by construction. Epoch-keyed because the
    // static-analysis half of the body is generation-dependent.
    std::string memo_key = engine_.fingerprint(*arch, kernel);
    if (auto memoized = kernel_memo_.get(memo_key, state.epoch)) {
        HttpResponse response = *memoized;
        response.cache_hit = true;
        counters_[static_cast<size_t>(Endpoint::Predict)]
            .cache_hits.fetch_add(1, std::memory_order_relaxed);
        return response;
    }

    sim::Measurement measured;
    try {
        measured = engine_.simulate(*arch, kernel);
    } catch (const sim::CycleBudgetExceeded &e) {
        rejected_budget_.fetch_add(1, std::memory_order_relaxed);
        JsonWriter json;
        json.beginObject();
        json.member("error", std::string_view(e.what()));
        json.member("status", 429);
        json.member("rejected_by", "admission");
        json.member("cycle_budget", e.budget());
        json.endObject();
        HttpResponse response;
        response.status = 429;
        response.body = std::move(json).str();
        return response;
    } catch (const PredictOverloaded &e) {
        rejected_busy_.fetch_add(1, std::memory_order_relaxed);
        JsonWriter json;
        json.beginObject();
        json.member("error", std::string_view(e.what()));
        json.member("status", 429);
        json.member("rejected_by", "admission");
        json.member("max_inflight", e.maxInflight());
        json.endObject();
        HttpResponse response;
        response.status = 429;
        response.body = std::move(json).str();
        return response;
    }
    // Any other FatalError (e.g. an instruction the generation lacks)
    // falls through to handle()'s 400.

    // Static IACA-style analysis from the serving generation's
    // catalog. Simulation is ground truth and works on any of the
    // nine generations; analysis additionally needs catalog coverage
    // of every instruction, so thin catalogs degrade to
    // "analysis": null with the reason, not an error.
    const core::Prediction *analysis = nullptr;
    core::Prediction analysis_storage;
    std::string analysis_error;
    try {
        const PredictContext &context = predictContext(state, *arch);
        analysis_storage = context.predictor->analyzeLoop(kernel);
        analysis = &analysis_storage;
    } catch (const FatalError &e) {
        analysis_error = e.what();
    }

    int num_ports = uarch::uarchInfo(*arch).num_ports;
    JsonWriter json;
    json.beginObject();
    json.member("uarch",
                std::string_view(uarch::uarchShortName(*arch)));
    json.member("generation", state.catalog->generation());
    json.member("instructions", kernel.size());
    json.key("kernel").beginArray();
    for (const isa::InstrInstance &inst : kernel)
        json.value(std::string_view(inst.toAsm()));
    json.endArray();
    json.member("block_throughput", measured.cycles);
    json.key("simulation").beginObject();
    json.member("cycles_per_iteration", measured.cycles);
    json.member("uops_issued", measured.uops_issued);
    json.member("uops_eliminated", measured.uops_eliminated);
    json.key("port_pressure").beginArray();
    for (int p = 0; p < num_ports; ++p)
        json.value(measured.port_uops[static_cast<size_t>(p)]);
    json.endArray();
    json.endObject();
    if (analysis != nullptr) {
        json.key("analysis").beginObject();
        json.member("block_throughput", analysis->block_throughput);
        json.member("bottleneck",
                    std::string_view(analysis->bottleneck));
        json.key("bounds").beginObject();
        json.member("ports", analysis->port_bound);
        json.member("dependencies", analysis->dependency_bound);
        json.member("frontend", analysis->frontend_bound);
        json.member("divider", analysis->divider_bound);
        json.endObject();
        json.key("port_pressure").beginArray();
        for (int p = 0; p < num_ports; ++p)
            json.value(
                analysis->port_pressure[static_cast<size_t>(p)]);
        json.endArray();
        json.endObject();
    } else {
        json.key("analysis").valueNull();
        json.member("analysis_error",
                    std::string_view(analysis_error));
    }
    json.endObject();

    HttpResponse response = jsonResponse(std::move(json).str());
    kernel_memo_.put(memo_key, state.epoch, response);
    return response;
}

HttpResponse
QueryService::handleReload(const HttpRequest &)
{
    StatePtr installed;
    db::RecoveryReport report;
    try {
        installed = reloadState(report);
    } catch (const std::exception &e) {
        // Configuration problems (no reloader) and reload failures
        // are the server's fault, not the client's: uniformly 503.
        // The body names the generation that *keeps* serving so an
        // operator reading the rejection knows the blast radius is
        // zero — fail-operational, not fail-stop.
        StatePtr current = state();
        JsonWriter json;
        json.beginObject();
        json.member("error", std::string_view(e.what()));
        json.member("status", 503);
        json.member("reason", "reload_rejected");
        json.member("serving_generation",
                    current->catalog->generation());
        json.member("serving_epoch", current->epoch);
        json.endObject();
        HttpResponse response = jsonResponse(std::move(json).str());
        response.status = 503;
        return response;
    }

    // Render from the state *this* reload installed — a racing
    // reload may already have replaced it, but this response must
    // describe the generation its own swap published.
    JsonWriter json;
    json.beginObject();
    json.member("status", "reloaded");
    json.member("generation", installed->catalog->generation());
    json.member("epoch", installed->epoch);
    json.member("records", installed->catalog->numRecords());
    json.key("uarches").beginArray();
    for (uarch::UArch arch : installed->catalog->uarches())
        json.value(std::string_view(uarch::uarchShortName(arch)));
    json.endArray();
    if (report.recovered || !report.events.empty()) {
        json.key("recovery").beginObject();
        json.member("recovered", report.recovered);
        json.member("rejected_generations",
                    report.rejected_generations.size());
        json.key("events").beginArray();
        size_t shown = 0;
        for (const std::string &event : report.events) {
            if (++shown > 16)
                break;
            json.value(std::string_view(event));
        }
        json.endArray();
        json.member("summary", std::string_view(report.summary()));
        json.endObject();
    }
    json.endObject();
    return jsonResponse(std::move(json).str());
}

HttpResponse
QueryService::handleStats(const ServingState &state)
{
    JsonWriter json;
    json.beginObject();
    json.member("generation", state.catalog->generation());
    json.member("epoch", state.epoch);
    json.key("endpoints").beginObject();
    for (size_t i = 0; i < kNumEndpoints; ++i) {
        EndpointMetrics m = metrics(static_cast<Endpoint>(i));
        json.key(endpointName(static_cast<Endpoint>(i)))
            .beginObject();
        json.member("requests", m.requests);
        json.member("errors", m.errors);
        json.member("cache_hits", m.cache_hits);
        json.member("total_us", m.total_us);
        json.member("p50_us", m.p50_us);
        json.member("p99_us", m.p99_us);
        json.endObject();
    }
    json.endObject();
    auto cache_section = [&json](const char *name,
                                 const ResponseCache::Stats &cache) {
        json.key(name).beginObject();
        json.member("hits", cache.hits);
        json.member("misses", cache.misses);
        json.member("insertions", cache.insertions);
        json.member("evictions", cache.evictions);
        json.member("entries", cache.entries);
        json.member("shards", cache.shards);
        json.member("capacity", cache.capacity);
        json.endObject();
    };
    cache_section("cache", cache_.stats());
    cache_section("kernel_memo", kernel_memo_.stats());

    json.key("reload").beginObject();
    json.member("reloads",
                reloads_.load(std::memory_order_relaxed));
    json.member("rejections",
                reload_rejections_.load(std::memory_order_relaxed));
    json.member("recoveries",
                recoveries_.load(std::memory_order_relaxed));
    json.member("recovery_events",
                recovery_events_.load(std::memory_order_relaxed));
    json.member(
        "verification_failures",
        verification_failures_.load(std::memory_order_relaxed));
    json.endObject();

    PredictEngine::Stats engine = engine_.stats();
    const PredictAdmission &admission = options_.admission;
    json.key("predict").beginObject();
    json.key("admission").beginObject();
    json.member("max_instructions", admission.max_instructions);
    json.member("max_listing_bytes", admission.max_listing_bytes);
    json.member("cycle_budget",
                options_.engine.predict.cycle_budget);
    json.member("max_inflight", options_.engine.max_inflight);
    json.member("rejected_oversize",
                rejected_oversize_.load(std::memory_order_relaxed));
    json.member("rejected_budget",
                rejected_budget_.load(std::memory_order_relaxed));
    json.member("rejected_busy",
                rejected_busy_.load(std::memory_order_relaxed));
    json.endObject();
    json.key("engine").beginObject();
    json.member("workers", engine.workers);
    json.member("inflight", engine.inflight);
    json.member("simulations", engine.simulations);
    json.member("coalesced", engine.coalesced);
    json.member("sim_cache_hits", engine.sim_cache_hits);
    json.member("sim_cache_misses", engine.sim_cache_misses);
    json.member("sim_cache_entries", engine.sim_cache_entries);
    json.endObject();
    json.endObject();
    json.endObject();
    return jsonResponse(std::move(json).str());
}

namespace {

/** Smallest bucket upper bound covering quantile @p q of the
 *  histogram (conservative: a power-of-two ceiling, not an
 *  interpolation — monitoring wants "no worse than", not pretty). */
uint64_t
histogramQuantile(const std::array<uint64_t,
                                   QueryService::kLatencyBuckets> &hist,
                  uint64_t total, double q)
{
    if (total == 0)
        return 0;
    uint64_t target = static_cast<uint64_t>(
        q * static_cast<double>(total) + 0.999999);
    if (target > total)
        target = total;
    uint64_t cumulative = 0;
    for (size_t i = 0; i < hist.size(); ++i) {
        cumulative += hist[i];
        if (cumulative >= target)
            return i == 0 ? 0 : (uint64_t{1} << i) - 1;
    }
    return (uint64_t{1} << (hist.size() - 1)) - 1;
}

} // namespace

EndpointMetrics
QueryService::metrics(Endpoint endpoint) const
{
    const Counters &counters =
        counters_[static_cast<size_t>(endpoint)];
    EndpointMetrics out;
    out.requests = counters.requests.load(std::memory_order_relaxed);
    out.errors = counters.errors.load(std::memory_order_relaxed);
    out.cache_hits =
        counters.cache_hits.load(std::memory_order_relaxed);
    out.total_us = counters.total_us.load(std::memory_order_relaxed);
    std::array<uint64_t, kLatencyBuckets> hist;
    uint64_t total = 0;
    for (size_t i = 0; i < kLatencyBuckets; ++i) {
        hist[i] = counters.latency[i].load(std::memory_order_relaxed);
        total += hist[i];
    }
    out.p50_us = histogramQuantile(hist, total, 0.50);
    out.p99_us = histogramQuantile(hist, total, 0.99);
    return out;
}

} // namespace uops::server
