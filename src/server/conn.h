/**
 * @file
 * Per-connection HTTP/1.1 framing state machine for the reactor.
 *
 * A Conn owns everything about one client connection *except* the
 * socket: the inbound byte buffer, the request parser (the same
 * findHeaderEnd/parseRequestHead/contentLength primitives the
 * threaded transport uses, so the two paths frame identically), the
 * keep-alive/pipelining bookkeeping, and the outbound chunk queue.
 * Keeping it socket-free means the whole framing machine — partial
 * heads, pipelined batches, oversize refusals, blob-backed gather
 * output — is unit-testable by feeding bytes in and reading iovecs
 * out, with no fd in sight.
 *
 * Output is a queue of chunks, each a serialized response head
 * (possibly with an owned body appended) plus an optional shared
 * blob body. Blob bodies are never copied into the connection: the
 * chunk holds the shared_ptr and gatherOutput() exposes the bytes as
 * a second iovec, so a reactor thread writes header + precomputed
 * body with one sendmsg and zero body copies, and the blob arena
 * stays alive for exactly as long as some connection still needs it
 * — even across a catalog hot-swap.
 *
 * The reactor-side bookkeeping fields (busy, deadlines, epoll
 * interest mirrors) are plain members: a Conn is owned by exactly
 * one reactor thread and never shared, so none of this needs
 * atomics.
 */

#ifndef UOPS_SERVER_CONN_H
#define UOPS_SERVER_CONN_H

#include <chrono>
#include <deque>
#include <memory>
#include <string>

#include <sys/uio.h>

#include "server/http.h"

namespace uops::server {

class Conn
{
  public:
    struct Limits
    {
        size_t max_request_bytes = 1 << 20;
        size_t max_requests = 100;
    };

    enum class Parse {
        NeedMore,  ///< no complete request buffered yet
        Ready,     ///< one request extracted from the buffer
        Refuse,    ///< transport-level refusal; close after flush
    };

    struct ParseResult
    {
        Parse kind = Parse::NeedMore;
        int refuse_status = 0;
        std::string refuse_message;
        /** On Refuse: the request head parsed far enough to carry a
         *  usable X-Request-Id (written to the out-param). */
        bool have_head = false;
    };

    explicit Conn(Limits limits) : limits_(limits) {}

    // ---- inbound ----------------------------------------------------

    void appendInput(const char *data, size_t n)
    {
        // Compact once per socket read: consumed requests advance a
        // cursor instead of erasing (a memmove per pipelined
        // request); the single erase here amortizes it per recv.
        if (in_off_ > 0) {
            in_.erase(0, in_off_);
            in_off_ = 0;
        }
        in_.append(data, n);
    }
    size_t inputSize() const { return in_.size() - in_off_; }
    bool inputEmpty() const { return in_.size() == in_off_; }

    /** Try to extract the next complete request from the buffer.
     *  Mirrors the threaded transport's framing exactly: oversize
     *  buffers and bodies are 413, malformed heads and bad
     *  Content-Length are 400, and a pipelined successor stays
     *  buffered. Ready counts against the per-connection budget. */
    ParseResult next(HttpRequest &request);

    enum class Raw { NoMatch, Served };

    /**
     * Zero-parse fast lane, tried before next(): when the buffer
     * fronts a complete bodiless HTTP/1.1 GET (scanFastGet) and
     * @p serve — bool(const FastGetView &, HttpResponse &) — can
     * answer it from precomputed state, the response is queued, the
     * request consumed and counted against the budget, all without
     * materializing an HttpRequest. NoMatch leaves the buffer
     * untouched; the caller falls back to next(), which remains the
     * semantic reference (refusals, bodies, HTTP/1.0, partial-input
     * bookkeeping).
     */
    template <typename ServeFn>
    Raw tryRaw(bool draining, ServeFn &&serve)
    {
        std::string_view buffered = pending();
        if (buffered.empty() ||
            buffered.size() > limits_.max_request_bytes)
            return Raw::NoMatch;
        std::optional<size_t> head_end = findHeaderEnd(buffered);
        if (!head_end)
            return Raw::NoMatch;
        FastGetView view;
        if (!scanFastGet(buffered.substr(0, *head_end), view))
            return Raw::NoMatch;
        HttpResponse response;
        if (!serve(view, response))
            return Raw::NoMatch;
        // Mirrors next(): count before the keep-alive decision so
        // the budget check matches the threaded path's served+1.
        ++served_;
        bool keep_alive = !view.connection_close && !draining &&
                          served_ < limits_.max_requests;
        queueResponse(response, keep_alive);
        in_off_ += *head_end;
        partial_request_ = false;
        return Raw::Served;
    }

    /** True while the buffer holds the front of an *incomplete*
     *  request (the slow-loris case) — the reactor bounds this with
     *  the receive deadline rather than a blocked worker. */
    bool partialRequest() const { return partial_request_; }

    /** Keep-alive decision for the request just extracted (call
     *  after next() returned Ready, before queueing/dispatching). */
    bool keepAlive(const HttpRequest &request, bool draining) const;

    size_t served() const { return served_; }

    // ---- outbound ---------------------------------------------------

    /** Serialize @p response onto the output queue. Blob-backed
     *  bodies are queued by reference (shared_ptr), never copied;
     *  304s queue the head alone. */
    void queueResponse(const HttpResponse &response, bool keep_alive);

    bool hasOutput() const { return !out_.empty(); }
    size_t outputBytes() const;

    /** Fill up to @p max_iov iovecs with the pending output, resumed
     *  at the unsent offset. Returns the count filled. */
    size_t gatherOutput(struct iovec *iov, size_t max_iov) const;

    /** Advance past @p bytes successfully written. */
    void consumeOutput(size_t bytes);

    // ---- reactor bookkeeping (single-owner, no locking) -------------

    int fd = -1;
    uint64_t id = 0;

    /** One request is in flight on the worker pool; parsing pauses
     *  until its completion lands (responses stay in order). */
    bool busy = false;
    /** Keep-alive decision for the in-flight request. */
    bool pending_keep_alive = false;
    bool close_after_flush = false;

    /** Mirrors of the current epoll interest set, to skip redundant
     *  epoll_ctl calls. */
    bool want_write = false;
    bool reads_paused = false;

    /** Absolute receive/idle/send-stall deadline; cleared (no
     *  timeout) while a pool request is in flight. */
    std::chrono::steady_clock::time_point deadline{};
    bool has_deadline = false;

  private:
    struct Chunk
    {
        std::string bytes;  ///< head, plus owned body when no blob
        std::shared_ptr<const std::string> blob;  ///< optional body

        size_t size() const
        {
            return bytes.size() + (blob ? blob->size() : 0);
        }
    };

    /** Unconsumed slice of the input buffer. */
    std::string_view pending() const
    {
        return std::string_view(in_).substr(in_off_);
    }

    Limits limits_;
    std::string in_;
    size_t in_off_ = 0;  ///< consumed prefix of in_ (lazy erase)
    std::deque<Chunk> out_;
    size_t out_offset_ = 0;  ///< sent bytes of the front chunk
    size_t served_ = 0;
    bool partial_request_ = false;
};

} // namespace uops::server

#endif // UOPS_SERVER_CONN_H
