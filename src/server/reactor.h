/**
 * @file
 * Event-driven serving front end: an epoll reactor for the HTTP
 * server.
 *
 * The thread-per-connection transport spends its parallelism on
 * *waiting*: a pool worker camps on recv() between requests, so 16
 * keep-alive clients against a small pool starve each other even
 * when every response is a precomputed blob that costs microseconds
 * to serve. The reactor inverts that: a few threads own all the
 * sockets through epoll and spend their time exclusively on work
 * that is actually ready.
 *
 * Each reactor thread runs its own epoll loop and owns its accepted
 * connections outright (no cross-thread connection state, no locks
 * on the serving path). The shared listen socket is registered in
 * every loop with EPOLLEXCLUSIVE so the kernel wakes one thread per
 * pending accept. Per readiness event a thread reads, runs the Conn
 * framing machine, and answers *inline* whatever the fast path can:
 * response-cache hits, precomputed blob bodies (/uarchs, /instr),
 * and If-None-Match 304s — QueryService::tryServeFast(), the same
 * code the threaded path exercises through handle(). Only requests
 * that need real work (cold /search, /predict simulation, /reload)
 * are handed to the worker pool; the completion is queued back to
 * the owning reactor thread through an eventfd wakeup and flushed in
 * arrival order, so pipelined clients still see ordered responses.
 *
 * Connections are keyed by a monotonically increasing u64 id (the
 * epoll user datum), never by fd: a completion for a connection that
 * died while its request was computing finds no id and is dropped —
 * an fd-reuse race is structurally impossible. Backpressure: while a
 * connection has a request in flight and its input buffer is full,
 * its EPOLLIN interest is dropped until the completion lands.
 *
 * Drain protocol (SIGTERM / stop()): accepting stops, keep-alive is
 * no longer granted, idle connections close immediately, busy ones
 * finish and flush their response whole; past the deadline the rest
 * are force-closed. drain() finally waits for stray pool tasks so
 * the reactor can be destroyed without racing its own completions.
 */

#ifndef UOPS_SERVER_REACTOR_H
#define UOPS_SERVER_REACTOR_H

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "server/conn.h"
#include "server/service.h"
#include "support/thread_pool.h"

namespace uops::server {

class Reactor
{
  public:
    struct Options
    {
        size_t threads = 0;  ///< 0: min(4, hardware threads)
        size_t max_request_bytes = 1 << 20;
        size_t max_requests_per_connection = 100;
        int recv_timeout_seconds = 5;
        int keep_alive_idle_seconds = 1;
    };

    /** @p listen_fd must be non-blocking and stays owned by the
     *  caller (closed only after stop() has joined the threads). */
    Reactor(QueryService &service, ThreadPool &pool, int listen_fd,
            Options options);
    ~Reactor();

    Reactor(const Reactor &) = delete;
    Reactor &operator=(const Reactor &) = delete;

    void start();

    /** Graceful drain; see file comment. Returns true when every
     *  connection finished within the deadline. Idempotent. */
    bool drain(std::chrono::milliseconds max_wait);

    /** Join the reactor threads (call after drain()). */
    void stop();

    size_t activeConnections() const
    {
        return conn_count_.load(std::memory_order_relaxed);
    }
    size_t numThreads() const { return workers_.size(); }

  private:
    struct Completion
    {
        uint64_t id = 0;
        HttpResponse response;
    };

    /** One reactor thread: epoll set, wakeup eventfd, completion
     *  queue, and the connections it exclusively owns. */
    struct Worker
    {
        size_t index = 0;
        int epoll_fd = -1;
        int event_fd = -1;
        std::thread thread;

        /** Cross-thread completion handoff (pool -> reactor). */
        std::mutex mutex;
        std::vector<Completion> completions;

        /** Owned exclusively by the reactor thread. */
        std::unordered_map<uint64_t, std::unique_ptr<Conn>> conns;
        uint64_t next_id = 2;  ///< 0 = listen, 1 = eventfd
        bool listen_registered = true;
    };

    void run(Worker &worker);
    void acceptReady(Worker &worker);
    void onReadable(Worker &worker, Conn &conn);
    /** Parse + serve/dispatch buffered requests, then flush. The
     *  connection may be *closed* (and freed) on return. */
    void processInput(Worker &worker, Conn &conn);
    void flush(Worker &worker, Conn &conn);
    void drainCompletions(Worker &worker);
    void sweepDeadlines(Worker &worker);
    void armDeadline(Conn &conn);
    void closeConn(Worker &worker, Conn &conn);
    void updateInterest(Worker &worker, Conn &conn, bool want_read,
                        bool want_write);
    void queueRefusal(Conn &conn, int status,
                      const std::string &message,
                      const HttpRequest *request);
    void complete(Worker &worker, uint64_t id, HttpResponse response);
    void wakeAll();

    QueryService &service_;
    ThreadPool &pool_;
    int listen_fd_;
    Options options_;
    Conn::Limits limits_;

    std::vector<std::unique_ptr<Worker>> workers_;

    std::atomic<bool> draining_{false};
    std::atomic<bool> force_close_{false};
    std::atomic<bool> stop_{false};
    std::atomic<size_t> conn_count_{0};
    /** Pool tasks dispatched and not yet finished; drain() waits for
     *  zero so no task can outlive the reactor it completes into. */
    std::atomic<size_t> inflight_{0};
    std::mutex drain_mutex_;
    std::condition_variable drain_cv_;

    obs::Gauge *connections_ = nullptr;
    obs::Counter *accepts_ = nullptr;
    obs::Counter *fast_served_ = nullptr;
    obs::Counter *dispatched_ = nullptr;
    obs::Histogram *loop_ = nullptr;
};

} // namespace uops::server

#endif // UOPS_SERVER_REACTOR_H
