#include "http.h"

#include <algorithm>
#include <cctype>
#include <cstdio>

#include "support/status.h"
#include "support/strings.h"

namespace uops::server {

namespace {

bool
iequals(std::string_view a, std::string_view b)
{
    if (a.size() != b.size())
        return false;
    for (size_t i = 0; i < a.size(); ++i)
        if (std::tolower(static_cast<unsigned char>(a[i])) !=
            std::tolower(static_cast<unsigned char>(b[i])))
            return false;
    return true;
}

int
hexValue(char c)
{
    if (c >= '0' && c <= '9')
        return c - '0';
    if (c >= 'a' && c <= 'f')
        return c - 'a' + 10;
    if (c >= 'A' && c <= 'F')
        return c - 'A' + 10;
    return -1;
}

} // namespace

const std::string *
HttpRequest::header(std::string_view name) const
{
    for (const auto &[key, value] : headers)
        if (iequals(key, name))
            return &value;
    return nullptr;
}

std::optional<std::string>
HttpRequest::param(const std::string &key) const
{
    auto it = query.find(key);
    if (it == query.end())
        return std::nullopt;
    return it->second;
}

const char *
statusText(int status)
{
    switch (status) {
      case 200: return "OK";
      case 304: return "Not Modified";
      case 400: return "Bad Request";
      case 404: return "Not Found";
      case 405: return "Method Not Allowed";
      case 413: return "Payload Too Large";
      case 429: return "Too Many Requests";
      case 500: return "Internal Server Error";
      case 503: return "Service Unavailable";
    }
    return "Unknown";
}

std::string
percentDecode(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (size_t i = 0; i < s.size(); ++i) {
        if (s[i] == '+') {
            out += ' ';
        } else if (s[i] == '%' && i + 2 < s.size()) {
            int hi = hexValue(s[i + 1]);
            int lo = hexValue(s[i + 2]);
            fatalIf(hi < 0 || lo < 0, "http: bad percent escape in '",
                    std::string(s), "'");
            out += static_cast<char>(hi * 16 + lo);
            i += 2;
        } else {
            fatalIf(s[i] == '%', "http: truncated percent escape");
            out += s[i];
        }
    }
    return out;
}

std::map<std::string, std::string>
parseQueryString(std::string_view s)
{
    std::map<std::string, std::string> out;
    size_t pos = 0;
    while (pos < s.size()) {
        size_t amp = s.find('&', pos);
        if (amp == std::string_view::npos)
            amp = s.size();
        std::string_view piece = s.substr(pos, amp - pos);
        if (!piece.empty()) {
            size_t eq = piece.find('=');
            std::string key, value;
            if (eq == std::string_view::npos) {
                key = percentDecode(piece);
            } else {
                key = percentDecode(piece.substr(0, eq));
                value = percentDecode(piece.substr(eq + 1));
            }
            out[key] = value;
        }
        pos = amp + 1;
    }
    return out;
}

std::optional<size_t>
findHeaderEnd(std::string_view buffer)
{
    size_t pos = buffer.find("\r\n\r\n");
    if (pos == std::string_view::npos)
        return std::nullopt;
    return pos + 4;
}

HttpRequest
parseRequestHead(std::string_view head)
{
    HttpRequest request;
    size_t line_end = head.find("\r\n");
    if (line_end == std::string_view::npos)
        line_end = head.size();
    std::string_view request_line = head.substr(0, line_end);

    auto pieces = splitWhitespace(request_line);
    fatalIf(pieces.size() != 3, "http: malformed request line '",
            std::string(request_line), "'");
    request.method = pieces[0];
    request.target = pieces[1];
    fatalIf(!startsWith(pieces[2], "HTTP/1."),
            "http: unsupported protocol '", pieces[2], "'");
    request.minor_version = endsWith(pieces[2], ".0") ? 0 : 1;

    size_t q = request.target.find('?');
    if (q == std::string::npos) {
        request.path = percentDecode(request.target);
    } else {
        request.path = percentDecode(
            std::string_view(request.target).substr(0, q));
        request.query = parseQueryString(
            std::string_view(request.target).substr(q + 1));
    }

    size_t pos = line_end;
    while (pos < head.size()) {
        if (head.compare(pos, 2, "\r\n") == 0)
            pos += 2;
        size_t end = head.find("\r\n", pos);
        if (end == std::string_view::npos)
            end = head.size();
        std::string_view line = head.substr(pos, end - pos);
        pos = end;
        if (line.empty())
            continue;
        size_t colon = line.find(':');
        fatalIf(colon == std::string_view::npos,
                "http: malformed header line '", std::string(line), "'");
        request.headers.emplace_back(
            trim(line.substr(0, colon)),
            trim(line.substr(colon + 1)));
    }
    return request;
}

size_t
contentLength(const HttpRequest &request)
{
    const std::string *value = request.header("Content-Length");
    if (value == nullptr)
        return 0;
    auto parsed = parseInt(*value);
    fatalIf(!parsed || *parsed < 0, "http: bad Content-Length '",
            *value, "'");
    return static_cast<size_t>(*parsed);
}

bool
wantsKeepAlive(const HttpRequest &request)
{
    const std::string *connection = request.header("Connection");
    if (connection == nullptr)
        return request.minor_version >= 1;
    // Connection is a comma-separated token list ("TE, close");
    // scan the tokens rather than the raw value.
    for (const std::string &token : split(*connection, ',')) {
        if (iequals(token, "close"))
            return false;
        if (iequals(token, "keep-alive"))
            return true;
    }
    return request.minor_version >= 1;
}

bool
ifNoneMatch(const HttpRequest &request, std::string_view etag)
{
    const std::string *header = request.header("If-None-Match");
    if (header == nullptr)
        return false;
    return ifNoneMatchValue(*header, etag);
}

bool
ifNoneMatchValue(std::string_view header_value, std::string_view etag)
{
    if (header_value.empty() || etag.empty())
        return false;
    size_t pos = 0;
    while (pos <= header_value.size()) {
        size_t comma = header_value.find(',', pos);
        std::string_view candidate =
            comma == std::string_view::npos
                ? header_value.substr(pos)
                : header_value.substr(pos, comma - pos);
        while (!candidate.empty() &&
               std::isspace(static_cast<unsigned char>(
                   candidate.front())))
            candidate.remove_prefix(1);
        while (!candidate.empty() &&
               std::isspace(static_cast<unsigned char>(
                   candidate.back())))
            candidate.remove_suffix(1);
        if (!candidate.empty()) {
            if (candidate == "*")
                return true;
            // Weak comparison: a W/ prefix marks the tag weak but
            // the opaque value still identifies the generation.
            if (candidate.substr(0, 2) == "W/")
                candidate.remove_prefix(2);
            if (candidate.size() >= 2 && candidate.front() == '"' &&
                candidate.back() == '"')
                candidate = candidate.substr(1, candidate.size() - 2);
            if (candidate == etag)
                return true;
        }
        if (comma == std::string_view::npos)
            break;
        pos = comma + 1;
    }
    return false;
}

bool
scanFastGet(std::string_view head, FastGetView &out)
{
    if (head.substr(0, 4) != "GET ")
        return false;
    size_t sp = head.find(' ', 4);
    if (sp == std::string_view::npos)
        return false;
    out.target = head.substr(4, sp - 4);
    if (out.target.empty() || out.target.front() != '/')
        return false;
    size_t eol = head.find("\r\n", sp + 1);
    if (eol == std::string_view::npos ||
        head.substr(sp + 1, eol - sp - 1) != "HTTP/1.1")
        return false;

    auto trimmed = [](std::string_view s) {
        while (!s.empty() && std::isspace(static_cast<unsigned char>(
                                 s.front())))
            s.remove_prefix(1);
        while (!s.empty() && std::isspace(static_cast<unsigned char>(
                                 s.back())))
            s.remove_suffix(1);
        return s;
    };
    size_t pos = eol + 2;
    while (pos < head.size()) {
        size_t end = head.find("\r\n", pos);
        if (end == std::string_view::npos)
            end = head.size();
        std::string_view line = head.substr(pos, end - pos);
        pos = end + 2;
        if (line.empty())
            break;
        size_t colon = line.find(':');
        if (colon == std::string_view::npos)
            return false;
        std::string_view name = line.substr(0, colon);
        std::string_view value = trimmed(line.substr(colon + 1));
        if (iequals(name, "content-length") ||
            iequals(name, "transfer-encoding") ||
            iequals(name, "expect")) {
            // A GET carrying a body (or expecting a 100-continue)
            // needs the full framing machinery.
            return false;
        }
        if (iequals(name, "connection")) {
            if (iequals(value, "close"))
                out.connection_close = true;
            else if (!iequals(value, "keep-alive"))
                return false;  // token lists: full parser decides
        } else if (iequals(name, "if-none-match")) {
            if (!out.if_none_match.empty())
                return false;  // duplicates: full parser decides
            out.if_none_match = value;
        } else if (iequals(name, "x-request-id")) {
            if (!out.request_id.empty())
                return false;
            out.request_id = value;
        }
    }
    return true;
}

std::string
serializeResponseHead(const HttpResponse &response, bool keep_alive)
{
    std::string out;
    appendResponseHead(out, response, keep_alive);
    return out;
}

void
appendResponseHead(std::string &out, const HttpResponse &response,
                   bool keep_alive)
{
    char scratch[32];
    out += "HTTP/1.1 ";
    out += std::string_view(
        scratch, std::snprintf(scratch, sizeof scratch, "%d ",
                               response.status));
    out += statusText(response.status);
    out += "\r\n";
    if (response.status == 304) {
        // A 304 carries no body by definition; Content-Length and
        // Content-Type describe the entity the client already has,
        // so neither is sent (RFC 7232 §4.1).
    } else {
        out += "Content-Type: ";
        out += response.content_type;
        out += "\r\nContent-Length: ";
        out += std::string_view(
            scratch, std::snprintf(scratch, sizeof scratch, "%zu",
                                   response.bodySize()));
        out += "\r\n";
    }
    if (!response.etag.empty()) {
        out += "ETag: \"";
        out += response.etag;
        out += "\"\r\n";
    }
    if (response.cache_hit)
        out += "X-Cache: hit\r\n";
    if (!response.request_id.empty()) {
        out += "X-Request-Id: ";
        out += response.request_id;
        out += "\r\n";
    }
    out += keep_alive ? "Connection: keep-alive\r\n\r\n"
                      : "Connection: close\r\n\r\n";
}

std::string
serializeResponse(const HttpResponse &response, bool keep_alive)
{
    std::string out = serializeResponseHead(response, keep_alive);
    if (response.status != 304)
        out += response.bodyView();
    return out;
}

} // namespace uops::server
