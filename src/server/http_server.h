/**
 * @file
 * Dependency-free HTTP/1.1 socket server for the query service.
 *
 * Two transports behind one API:
 *
 * The default is the event-driven epoll reactor (server/reactor.h):
 * a few reactor threads own every socket, do all framing and
 * keep-alive work, serve cache/blob/304 hits inline, and hand only
 * requests that need real work to the shared ThreadPool — so
 * hundreds of keep-alive connections cost readiness events, not
 * blocked threads.
 *
 * Options::reactor = false selects the legacy thread-per-connection
 * transport: one acceptor thread, and a pool task per connection
 * that serves requests through QueryService::handle() until the
 * client is done. Both transports share the same parsing, framing
 * and service code, so their responses are byte-identical; the
 * legacy path remains as an escape hatch and as the conformance
 * reference the reactor is tested against.
 *
 * HTTP/1.1 keep-alive is honored (Connection headers, HTTP/1.0
 * semantics included), so query clients issuing many small requests
 * stop paying per-request TCP setup; a connection is bounded by
 * max_requests_per_connection and by the receive timeout, so a
 * slow-loris client cannot pin a worker forever. Malformed requests
 * are answered and the connection closed — after an error the byte
 * stream can no longer be trusted to be framed.
 *
 * Listens on a configurable address/port; port 0 binds an ephemeral
 * port (query it with port() — the tests and the CI smoke step use
 * this to avoid collisions). stop() is idempotent; in-flight
 * connections finish before it returns.
 */

#ifndef UOPS_SERVER_HTTP_SERVER_H
#define UOPS_SERVER_HTTP_SERVER_H

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>

#include "server/service.h"
#include "support/thread_pool.h"

namespace uops::server {

class Reactor;

class HttpServer
{
  public:
    struct Options
    {
        std::string bind_address = "127.0.0.1";
        uint16_t port = 0;          ///< 0: ephemeral
        size_t num_threads = 0;     ///< pool size; 0: hardware
        int backlog = 64;
        int recv_timeout_seconds = 5;

        /** Reject request heads/bodies larger than this. */
        size_t max_request_bytes = 1 << 20;

        /** Requests served per keep-alive connection before the
         *  server closes it (fairness bound across clients). */
        size_t max_requests_per_connection = 100;

        /** Idle wait for the *next* request on a persistent
         *  connection. Deliberately shorter than the in-request
         *  recv timeout: a worker blocked between requests is pure
         *  opportunity cost, so idle keep-alive clients are shed
         *  quickly instead of pinning pool workers. */
        int keep_alive_idle_seconds = 1;

        /** How long stop()/drain() waits for in-flight connections
         *  to finish before forcibly shutting their sockets down. */
        int drain_deadline_ms = 5000;

        /** Serve through the epoll reactor (default). false selects
         *  the legacy thread-per-connection transport. */
        bool reactor = true;

        /** Reactor threads; 0 picks min(4, hardware threads). Only
         *  meaningful with reactor = true. */
        size_t reactor_threads = 0;
    };

    HttpServer(QueryService &service, Options options);

    /** Default options (loopback, ephemeral port). */
    explicit HttpServer(QueryService &service);

    /** Stops and joins. */
    ~HttpServer();

    HttpServer(const HttpServer &) = delete;
    HttpServer &operator=(const HttpServer &) = delete;

    /**
     * Bind, listen and start the acceptor thread.
     *
     * @throws FatalError when the address cannot be bound.
     */
    void start();

    /** Graceful stop: drain(options.drain_deadline_ms), idempotent. */
    void stop();

    /**
     * Graceful drain. Stops accepting (new connections are refused,
     * keep-alive is no longer offered), waits up to @p max_wait for
     * in-flight connections to finish — every response already being
     * computed is sent whole — then forcibly shuts down whatever
     * remains and waits for their workers to return.
     *
     * @return true when every connection finished within the
     *         deadline (no socket had to be shut down mid-request).
     */
    bool drain(std::chrono::milliseconds max_wait);

    bool running() const { return running_.load(); }

    /** True once stop()/drain() began: no new connections, no
     *  keep-alive. */
    bool draining() const { return draining_.load(); }

    /** Connections currently registered (accepted, not yet closed). */
    size_t activeConnections() const;

    /** Actual bound port (valid after start()). */
    uint16_t port() const { return port_; }

    /** Resolved worker-pool size (Options::num_threads = 0 becomes
     *  the hardware thread count). */
    size_t numWorkers() const { return pool_.numWorkers(); }

  private:
    void acceptLoop();
    void handleConnection(int fd);
    void serveConnection(int fd);

    QueryService &service_;
    Options options_;
    ThreadPool pool_;
    std::unique_ptr<Reactor> reactor_;
    std::thread acceptor_;
    std::atomic<bool> running_{false};
    std::atomic<bool> draining_{false};
    int listen_fd_ = -1;
    uint16_t port_ = 0;

    /** Open connection fds. Discipline: an fd is inserted before its
     *  pool task is submitted and erased *before* it is closed, so
     *  drain()'s force-shutdown (under the same mutex) can never
     *  touch a closed — possibly reused — descriptor. */
    mutable std::mutex conn_mutex_;
    std::set<int> connections_;
    std::condition_variable conn_cv_;
};

} // namespace uops::server

#endif // UOPS_SERVER_HTTP_SERVER_H
