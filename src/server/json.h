/**
 * @file
 * Minimal JSON writer for the HTTP serving layer.
 *
 * Mirrors support/xml.h in spirit: no external dependency, stable
 * deterministic output (keys in call order, doubles in the same
 * canonical text form the XML artifacts use), just enough for the
 * server's response bodies. Writing only — the server never needs to
 * parse JSON.
 */

#ifndef UOPS_SERVER_JSON_H
#define UOPS_SERVER_JSON_H

#include <string>
#include <string_view>
#include <vector>

#include "support/cycles.h"

namespace uops::server {

/** Escape a string for inclusion in a JSON string literal. */
std::string jsonEscape(std::string_view s);

/**
 * Streaming JSON builder with explicit begin/end scopes.
 *
 * Comma placement is handled internally; key() must precede every
 * value inside an object. Misuse (value without key inside an object,
 * unbalanced scopes at str()) panics — server handlers are the only
 * callers, so a malformed document is a bug, not bad user input.
 */
class JsonWriter
{
  public:
    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();

    JsonWriter &key(std::string_view k);

    JsonWriter &value(std::string_view v);
    JsonWriter &value(const char *v);
    JsonWriter &value(double v);
    /** Fixed-point cycle values render their exact decimal form —
     *  no double conversion anywhere between the DB and the wire. */
    JsonWriter &value(Cycles v);
    JsonWriter &value(long v);
    JsonWriter &value(int v);
    JsonWriter &value(size_t v);
    JsonWriter &value(bool v);
    JsonWriter &valueNull();

    /** Append @p json verbatim as one value (comma placement still
     *  handled). For splicing precomputed fragments — e.g. the blob
     *  store's per-record renders — into a document byte-identically
     *  to re-rendering them. The caller guarantees @p json is a
     *  complete, well-formed JSON value. */
    JsonWriter &raw(std::string_view json);

    /** key(k) + value(v) in one call. */
    template <typename T>
    JsonWriter &
    member(std::string_view k, const T &v)
    {
        key(k);
        return value(v);
    }

    /** Finish and return the document (checks balanced scopes). */
    std::string str() &&;

  private:
    void beforeValue();
    void push(char scope);
    void pop(char scope);

    std::string out_;
    std::vector<char> stack_;     ///< '{' or '['
    std::vector<bool> has_item_;  ///< parallel: scope has a member
    bool pending_key_ = false;
};

} // namespace uops::server

#endif // UOPS_SERVER_JSON_H
