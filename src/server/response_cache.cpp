#include "response_cache.h"

#include <functional>
#include <vector>

namespace uops::server {

ResponseCache::ResponseCache(size_t num_shards,
                             size_t capacity_per_shard)
    : capacity_per_shard_(capacity_per_shard == 0 ? 1
                                                  : capacity_per_shard)
{
    if (num_shards == 0)
        num_shards = 1;
    shards_.reserve(num_shards);
    for (size_t i = 0; i < num_shards; ++i)
        shards_.push_back(std::make_unique<Shard>());
}

ResponseCache::Shard &
ResponseCache::shardFor(std::string_view key)
{
    size_t h = std::hash<std::string_view>{}(key);
    return *shards_[h % shards_.size()];
}

std::optional<HttpResponse>
ResponseCache::get(std::string_view key, uint64_t epoch)
{
    Shard &shard = shardFor(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.index.find(key);
    if (it == shard.index.end() || it->second->epoch != epoch) {
        // Absent, or rendered under another generation: a miss for
        // this epoch. The foreign-epoch entry stays put — requests
        // still pinning its generation may hit it, and the current
        // generation's put() will overwrite it in place.
        shard.misses.fetch_add(1, std::memory_order_relaxed);
        return std::nullopt;
    }
    // Refresh recency: splice the node to the front. Iterators and
    // the string_view key stay valid (list nodes are stable).
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    shard.hits.fetch_add(1, std::memory_order_relaxed);
    return it->second->response;
}

void
ResponseCache::put(std::string_view key, uint64_t epoch,
                   const HttpResponse &response)
{
    Shard &shard = shardFor(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.index.find(key);
    if (it != shard.index.end()) {
        shard.owned_bytes -= it->second->response.body.size();
        shard.owned_bytes += response.body.size();
        it->second->epoch = epoch;
        it->second->response = response;
        shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
        return;
    }
    shard.lru.push_front(Entry{std::string(key), epoch, response});
    shard.index.emplace(std::string_view(shard.lru.front().key),
                        shard.lru.begin());
    shard.owned_bytes += response.body.size();
    shard.insertions.fetch_add(1, std::memory_order_relaxed);
    while (shard.lru.size() > capacity_per_shard_) {
        shard.owned_bytes -= shard.lru.back().response.body.size();
        shard.index.erase(std::string_view(shard.lru.back().key));
        shard.lru.pop_back();
        shard.evictions.fetch_add(1, std::memory_order_relaxed);
    }
}

ResponseCache::Stats
ResponseCache::stats() const
{
    Stats out;
    out.shards = shards_.size();
    out.capacity = shards_.size() * capacity_per_shard_;
    for (const auto &shard : shards_) {
        out.hits += shard->hits.load(std::memory_order_relaxed);
        out.misses += shard->misses.load(std::memory_order_relaxed);
        out.insertions +=
            shard->insertions.load(std::memory_order_relaxed);
        out.evictions +=
            shard->evictions.load(std::memory_order_relaxed);
        std::lock_guard<std::mutex> lock(shard->mutex);
        out.entries += shard->lru.size();
        out.owned_bytes += shard->owned_bytes;
    }
    return out;
}

} // namespace uops::server
