#include "predict_engine.h"

namespace uops::server {

PredictEngine::PredictEngine(const isa::InstrDb &instrs,
                             Options options)
    : instrs_(instrs), options_(options),
      pool_(std::max<size_t>(1, options.num_threads))
{
    // One shared memo per generation, eagerly: cheap (empty sharded
    // maps) and spares the hot path a creation race.
    for (uarch::UArch arch : uarch::allUArches())
        sim_caches_.emplace(arch, std::make_unique<sim::MeasurementCache>(
                                      options_.sim_cache_shards));
    worker_states_.resize(pool_.numWorkers());
}

PredictEngine::~PredictEngine() = default;

std::string
PredictEngine::fingerprint(uarch::UArch arch,
                           const isa::Kernel &body) const
{
    return sim::BlockPredictor::fingerprint(
        arch, body, options_.predict.harness);
}

sim::Measurement
PredictEngine::runOnWorker(size_t worker, uarch::UArch arch,
                           const isa::Kernel &body)
{
    auto &states = worker_states_[worker];
    auto it = states.find(arch);
    if (it == states.end()) {
        auto predictor = std::make_unique<sim::BlockPredictor>(
            instrs_, arch, options_.predict);
        predictor->setCache(sim_caches_.at(arch).get());
        it = states.emplace(arch, std::move(predictor)).first;
    }
    sim::Measurement m = it->second->predict(body);
    simulations_.fetch_add(1, std::memory_order_relaxed);
    return m;
}

sim::Measurement
PredictEngine::simulate(uarch::UArch arch, const isa::Kernel &body)
{
    std::string key = fingerprint(arch, body);

    std::shared_ptr<Job> owned;    // set when we started this job
    std::shared_future<sim::Measurement> future;
    {
        std::lock_guard<std::mutex> lock(jobs_mutex_);
        auto it = jobs_.find(key);
        if (it != jobs_.end()) {
            coalesced_.fetch_add(1, std::memory_order_relaxed);
            future = it->second->future;
        } else {
            if (inflight_ >= options_.max_inflight) {
                rejected_.fetch_add(1, std::memory_order_relaxed);
                throw PredictOverloaded(
                    "prediction queue is full (" +
                        std::to_string(options_.max_inflight) +
                        " kernels in flight); retry shortly",
                    options_.max_inflight);
            }
            owned = std::make_shared<Job>();
            owned->future = owned->promise.get_future().share();
            jobs_.emplace(key, owned);
            ++inflight_;
            future = owned->future;
        }
    }

    if (owned) {
        pool_.submit([this, owned, key, arch, body](size_t worker) {
            // Everything — including validation FatalErrors and
            // budget overruns — flows to the waiters through the
            // promise; the pool's own error channel stays clean.
            try {
                owned->promise.set_value(
                    runOnWorker(worker, arch, body));
            } catch (...) {
                owned->promise.set_exception(
                    std::current_exception());
            }
            // Deregister only after the result is published: a
            // submission that finds the job still listed blocks on a
            // future that is already (or imminently) ready.
            std::lock_guard<std::mutex> lock(jobs_mutex_);
            jobs_.erase(key);
            --inflight_;
        });
    }

    return future.get();   // rethrows the simulation's exception
}

PredictEngine::Stats
PredictEngine::stats() const
{
    Stats out;
    out.simulations = simulations_.load(std::memory_order_relaxed);
    out.coalesced = coalesced_.load(std::memory_order_relaxed);
    out.rejected = rejected_.load(std::memory_order_relaxed);
    for (const auto &[arch, cache] : sim_caches_) {
        out.sim_cache_hits += cache->hits();
        out.sim_cache_misses += cache->misses();
        out.sim_cache_entries += cache->size();
    }
    {
        std::lock_guard<std::mutex> lock(jobs_mutex_);
        out.inflight = inflight_;
    }
    out.workers = pool_.numWorkers();
    return out;
}

} // namespace uops::server
