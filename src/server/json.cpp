#include "json.h"

#include <cstdio>

#include "support/status.h"
#include "support/xml.h"

namespace uops::server {

std::string
jsonEscape(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

void
JsonWriter::beforeValue()
{
    if (stack_.empty())
        return;
    if (stack_.back() == '{') {
        panicIf(!pending_key_, "JsonWriter: value without key");
        pending_key_ = false;
        return;
    }
    if (has_item_.back())
        out_ += ',';
    has_item_.back() = true;
}

void
JsonWriter::push(char scope)
{
    beforeValue();
    out_ += scope;
    stack_.push_back(scope);
    has_item_.push_back(false);
}

void
JsonWriter::pop(char scope)
{
    panicIf(stack_.empty() || stack_.back() != scope,
            "JsonWriter: unbalanced scope");
    panicIf(pending_key_, "JsonWriter: dangling key");
    out_ += scope == '{' ? '}' : ']';
    stack_.pop_back();
    has_item_.pop_back();
}

JsonWriter &
JsonWriter::beginObject()
{
    push('{');
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    pop('{');
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    push('[');
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    pop('[');
    return *this;
}

JsonWriter &
JsonWriter::key(std::string_view k)
{
    panicIf(stack_.empty() || stack_.back() != '{',
            "JsonWriter: key outside object");
    panicIf(pending_key_, "JsonWriter: two keys in a row");
    if (has_item_.back())
        out_ += ',';
    has_item_.back() = true;
    out_ += '"';
    out_ += jsonEscape(k);
    out_ += "\":";
    pending_key_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(std::string_view v)
{
    beforeValue();
    out_ += '"';
    out_ += jsonEscape(v);
    out_ += '"';
    return *this;
}

JsonWriter &
JsonWriter::value(const char *v)
{
    return value(std::string_view(v));
}

JsonWriter &
JsonWriter::value(double v)
{
    beforeValue();
    out_ += xmlFormatDouble(v);
    return *this;
}

JsonWriter &
JsonWriter::value(Cycles v)
{
    beforeValue();
    out_ += v.str();
    return *this;
}

JsonWriter &
JsonWriter::value(long v)
{
    beforeValue();
    out_ += std::to_string(v);
    return *this;
}

JsonWriter &
JsonWriter::value(int v)
{
    return value(static_cast<long>(v));
}

JsonWriter &
JsonWriter::value(size_t v)
{
    beforeValue();
    out_ += std::to_string(v);
    return *this;
}

JsonWriter &
JsonWriter::value(bool v)
{
    beforeValue();
    out_ += v ? "true" : "false";
    return *this;
}

JsonWriter &
JsonWriter::valueNull()
{
    beforeValue();
    out_ += "null";
    return *this;
}

JsonWriter &
JsonWriter::raw(std::string_view json)
{
    beforeValue();
    out_ += json;
    return *this;
}

std::string
JsonWriter::str() &&
{
    panicIf(!stack_.empty(), "JsonWriter: unclosed scopes");
    return std::move(out_);
}

} // namespace uops::server
