/**
 * @file
 * Error-reporting helpers shared by all uops libraries.
 *
 * Follows the gem5 fatal/panic split: fatal() is for user-caused
 * conditions (bad configuration, unknown mnemonic, malformed DSL),
 * panic() is for internal invariant violations (a bug in this library).
 */

#ifndef UOPS_SUPPORT_STATUS_H
#define UOPS_SUPPORT_STATUS_H

#include <sstream>
#include <stdexcept>
#include <string>

namespace uops {

/** Thrown for user-caused errors: bad inputs, malformed configuration. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg) : std::runtime_error(msg) {}
};

/** Thrown for internal invariant violations (library bugs). */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg) : std::logic_error(msg) {}
};

namespace detail {

inline void
formatInto(std::ostringstream &)
{
}

template <typename T, typename... Rest>
void
formatInto(std::ostringstream &os, const T &value, const Rest &...rest)
{
    os << value;
    formatInto(os, rest...);
}

} // namespace detail

/**
 * Report a user-caused error.
 *
 * @param parts Message fragments, streamed together.
 */
template <typename... Parts>
[[noreturn]] void
fatal(const Parts &...parts)
{
    std::ostringstream os;
    detail::formatInto(os, parts...);
    throw FatalError(os.str());
}

/**
 * Report an internal invariant violation.
 *
 * @param parts Message fragments, streamed together.
 */
template <typename... Parts>
[[noreturn]] void
panic(const Parts &...parts)
{
    std::ostringstream os;
    detail::formatInto(os, parts...);
    throw PanicError(os.str());
}

/**
 * Check an invariant; panic with a message when it does not hold.
 */
template <typename... Parts>
void
panicIf(bool condition, const Parts &...parts)
{
    if (condition)
        panic(parts...);
}

/**
 * Check a user-facing precondition; fatal with a message when violated.
 */
template <typename... Parts>
void
fatalIf(bool condition, const Parts &...parts)
{
    if (condition)
        fatal(parts...);
}

} // namespace uops

#endif // UOPS_SUPPORT_STATUS_H
