/**
 * @file
 * Low-level file I/O seam for the storage layer.
 *
 * Every byte the catalog puts on disk goes through these helpers, and
 * every step inside them (open, write, fsync, rename, directory
 * fsync) is a named failpoint (support/fault.h). That gives tests a
 * single choke point to kill or error any stage of a commit, and
 * gives production exactly one place where the crash-consistency
 * protocol is implemented — not one ofstream here and one rename
 * there.
 *
 * The helpers use raw POSIX calls, not iostreams, deliberately: when
 * an injected crash unwinds through here there must be no RAII
 * destructor that flushes buffered bytes behind the simulated point
 * of death.
 */

#ifndef UOPS_SUPPORT_IO_H
#define UOPS_SUPPORT_IO_H

#include <string>
#include <string_view>

#include "support/status.h"

namespace uops {

/** A filesystem operation failed (real errno or injected fault).
 *  Derived from FatalError so existing catch-and-report paths and
 *  EXPECT_THROW(..., FatalError) tests keep working. */
class IoError : public FatalError
{
  public:
    explicit IoError(const std::string &msg) : FatalError(msg) {}
};

/**
 * Write @p bytes to @p path atomically and durably.
 *
 * Protocol (each step a failpoint named "<site_prefix>.<step>"):
 *
 *   1. open    — create "<path>.tmp" (O_TRUNC);
 *   2. write   — write all bytes to the tmp file;
 *   3. fsync   — fsync the tmp file, then close it;
 *   4. rename  — rename tmp over @p path. *** COMMIT POINT: before
 *                this rename a crash leaves @p path untouched (at
 *                most a stray .tmp for GC); after it, the new
 *                content is the file's content, and step 3 already
 *                made those bytes durable;
 *   5. dir_fsync — fsync the parent directory so the rename itself
 *                (the directory entry) survives power loss.
 *
 * On failure (real or injected) throws IoError; any .tmp left behind
 * is the garbage collector's problem, never the reader's, because
 * readers only ever open the final name.
 */
void writeFileAtomic(const std::string &path, std::string_view bytes,
                     const std::string &site_prefix = "io");

/** Read an entire file. Failpoint "<site_prefix>.read". Throws
 *  IoError if the file cannot be opened or read. */
std::string readFileBytes(const std::string &path,
                          const std::string &site_prefix = "io");

/** fsync a directory so entry creations/renames inside it are
 *  durable. Failpoint "<site_prefix>.dir_fsync". */
void fsyncDir(const std::string &dir,
              const std::string &site_prefix = "io");

/** Remove a file, ignoring ENOENT. Returns true if it existed and
 *  was removed. Throws IoError on any other failure. */
bool removeFile(const std::string &path);

} // namespace uops

#endif // UOPS_SUPPORT_IO_H
