#include "metrics.h"

#include <algorithm>
#include <bit>
#include <cinttypes>
#include <cmath>
#include <cstdio>

#include "support/status.h"

namespace uops::obs {

uint64_t
Histogram::bucketUpperBound(size_t i)
{
    panicIf(i >= kBuckets, "Histogram: bucket index out of range");
    return (uint64_t{1} << i) - 1;   // i == 0 -> 0
}

size_t
Histogram::bucketIndex(uint64_t value)
{
    return std::min<size_t>(std::bit_width(value), kBuckets - 1);
}

Histogram::Snapshot
Histogram::snapshot() const
{
    Snapshot out;
    for (size_t i = 0; i < kBuckets; ++i) {
        out.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
        out.count += out.buckets[i];
    }
    out.sum = sum_.load(std::memory_order_relaxed);
    return out;
}

std::optional<uint64_t>
Histogram::Snapshot::quantile(double q) const
{
    if (count == 0)
        return std::nullopt;
    uint64_t target = static_cast<uint64_t>(
        q * static_cast<double>(count) + 0.999999);
    if (target > count)
        target = count;
    uint64_t cumulative = 0;
    for (size_t i = 0; i < kBuckets; ++i) {
        cumulative += buckets[i];
        if (cumulative >= target)
            return bucketUpperBound(i);
    }
    return bucketUpperBound(kBuckets - 1);
}

namespace {

bool
validMetricName(std::string_view name)
{
    if (name.empty())
        return false;
    auto head = [](char c) {
        return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
               c == '_' || c == ':';
    };
    if (!head(name[0]))
        return false;
    for (char c : name.substr(1))
        if (!head(c) && !(c >= '0' && c <= '9'))
            return false;
    return true;
}

bool
validLabelName(std::string_view name)
{
    // Label names exclude ':' (reserved for recording rules) and
    // must not collide with the histogram's own "le" label.
    if (!validMetricName(name) ||
        name.find(':') != std::string_view::npos)
        return false;
    return name != "le";
}

/** Canonical sorted order so {a=1,b=2} and {b=2,a=1} are one series. */
LabelSet
canonicalize(LabelSet labels)
{
    std::sort(labels.begin(), labels.end());
    for (size_t i = 0; i + 1 < labels.size(); ++i)
        panicIf(labels[i].first == labels[i + 1].first,
                "metrics: duplicate label '", labels[i].first, "'");
    return labels;
}

/** Escape a label value per the exposition format. */
std::string
escapeLabelValue(std::string_view value)
{
    std::string out;
    out.reserve(value.size());
    for (char c : value) {
        switch (c) {
          case '\\': out += "\\\\"; break;
          case '"': out += "\\\""; break;
          case '\n': out += "\\n"; break;
          default: out += c;
        }
    }
    return out;
}

/** Escape a HELP string per the exposition format. */
std::string
escapeHelp(std::string_view help)
{
    std::string out;
    out.reserve(help.size());
    for (char c : help) {
        switch (c) {
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          default: out += c;
        }
    }
    return out;
}

/** "{a=\"1\",b=\"2\"}" or "" — optionally with an extra le pair. */
std::string
labelBlock(const LabelSet &labels, const char *le = nullptr)
{
    if (labels.empty() && le == nullptr)
        return "";
    std::string out = "{";
    bool first = true;
    for (const auto &[key, value] : labels) {
        if (!first)
            out += ',';
        first = false;
        out += key;
        out += "=\"";
        out += escapeLabelValue(value);
        out += '"';
    }
    if (le != nullptr) {
        if (!first)
            out += ',';
        out += "le=\"";
        out += le;
        out += '"';
    }
    out += '}';
    return out;
}

/** Exposition value text: exact integers render without a fraction. */
std::string
formatValue(double v)
{
    if (std::isnan(v))
        return "NaN";
    if (std::isinf(v))
        return v > 0 ? "+Inf" : "-Inf";
    double integral;
    if (std::modf(v, &integral) == 0.0 &&
        std::abs(v) < 9.007199254740992e15) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.0f", v);
        return buf;
    }
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
}

std::string
labelKey(const LabelSet &labels)
{
    return labelBlock(labels);
}

} // namespace

Registry::Series &
Registry::seriesFor(const std::string &name, const std::string &help,
                    Kind kind, LabelSet labels)
{
    panicIf(!validMetricName(name), "metrics: invalid metric name '",
            name, "'");
    labels = canonicalize(std::move(labels));
    for (const auto &[key, value] : labels) {
        panicIf(!validLabelName(key), "metrics: invalid label name '",
                key, "' on ", name);
        (void)value;
    }

    std::lock_guard<std::mutex> lock(mutex_);
    auto [it, inserted] = families_.try_emplace(name);
    Family &family = it->second;
    if (inserted) {
        family.kind = kind;
        family.help = help;
    } else {
        // Callback vs direct flavors of one kind stay one family.
        auto base = [](Kind k) {
            if (k == Kind::CounterCallback)
                return Kind::Counter;
            if (k == Kind::GaugeCallback)
                return Kind::Gauge;
            return k;
        };
        panicIf(base(family.kind) != base(kind),
                "metrics: '", name, "' re-registered as a different "
                "instrument kind");
    }

    std::string key = labelKey(labels);
    auto [sit, series_inserted] = family.series.try_emplace(key);
    Series &series = sit->second;
    if (series_inserted)
        series.labels = std::move(labels);
    return series;
}

Counter &
Registry::counter(const std::string &name, const std::string &help,
                  LabelSet labels)
{
    Series &series =
        seriesFor(name, help, Kind::Counter, std::move(labels));
    std::lock_guard<std::mutex> lock(mutex_);
    panicIf(series.callback != nullptr, "metrics: '", name,
            "' already registered as a callback");
    if (!series.counter)
        series.counter = std::make_unique<Counter>();
    return *series.counter;
}

Gauge &
Registry::gauge(const std::string &name, const std::string &help,
                LabelSet labels)
{
    Series &series =
        seriesFor(name, help, Kind::Gauge, std::move(labels));
    std::lock_guard<std::mutex> lock(mutex_);
    panicIf(series.callback != nullptr, "metrics: '", name,
            "' already registered as a callback");
    if (!series.gauge)
        series.gauge = std::make_unique<Gauge>();
    return *series.gauge;
}

Histogram &
Registry::histogram(const std::string &name, const std::string &help,
                    LabelSet labels)
{
    Series &series =
        seriesFor(name, help, Kind::Histogram, std::move(labels));
    std::lock_guard<std::mutex> lock(mutex_);
    if (!series.histogram)
        series.histogram = std::make_unique<Histogram>();
    return *series.histogram;
}

void
Registry::counterCallback(const std::string &name,
                          const std::string &help, LabelSet labels,
                          Callback callback)
{
    Series &series = seriesFor(name, help, Kind::CounterCallback,
                               std::move(labels));
    std::lock_guard<std::mutex> lock(mutex_);
    series.callback = std::move(callback);
}

void
Registry::gaugeCallback(const std::string &name,
                        const std::string &help, LabelSet labels,
                        Callback callback)
{
    Series &series =
        seriesFor(name, help, Kind::GaugeCallback, std::move(labels));
    std::lock_guard<std::mutex> lock(mutex_);
    series.callback = std::move(callback);
}

std::string
Registry::renderPrometheus() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::string out;
    out.reserve(4096);
    for (const auto &[name, family] : families_) {
        const char *type = "untyped";
        switch (family.kind) {
          case Kind::Counter:
          case Kind::CounterCallback: type = "counter"; break;
          case Kind::Gauge:
          case Kind::GaugeCallback: type = "gauge"; break;
          case Kind::Histogram: type = "histogram"; break;
        }
        out += "# HELP " + name + " " + escapeHelp(family.help) + "\n";
        out += "# TYPE " + name + " " + type + "\n";
        for (const auto &[key, series] : family.series) {
            (void)key;
            if (series.histogram) {
                Histogram::Snapshot snap = series.histogram->snapshot();
                uint64_t cumulative = 0;
                for (size_t i = 0; i < Histogram::kBuckets; ++i) {
                    cumulative += snap.buckets[i];
                    std::string le =
                        i + 1 == Histogram::kBuckets
                            ? "+Inf"
                            : std::to_string(
                                  Histogram::bucketUpperBound(i));
                    out += name + "_bucket" +
                           labelBlock(series.labels, le.c_str()) + " " +
                           std::to_string(cumulative) + "\n";
                }
                out += name + "_sum" + labelBlock(series.labels) + " " +
                       std::to_string(snap.sum) + "\n";
                out += name + "_count" + labelBlock(series.labels) +
                       " " + std::to_string(snap.count) + "\n";
                continue;
            }
            std::string value;
            if (series.callback)
                value = formatValue(series.callback());
            else if (series.counter)
                value = std::to_string(series.counter->value());
            else if (series.gauge)
                value = formatValue(series.gauge->value());
            else
                continue;   // registered but never materialized
            out += name + labelBlock(series.labels) + " " + value +
                   "\n";
        }
    }
    return out;
}

Registry &
Registry::global()
{
    static Registry registry;
    return registry;
}

} // namespace uops::obs
