#include "trace.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <random>
#include <thread>

#include "log.h"

namespace uops::obs {

namespace {

std::chrono::steady_clock::time_point
traceEpoch()
{
    static const auto epoch = std::chrono::steady_clock::now();
    return epoch;
}

uint32_t
currentTid()
{
    return static_cast<uint32_t>(
        std::hash<std::thread::id>{}(std::this_thread::get_id()) &
        0x7fffffff);
}

} // namespace

uint64_t
traceNowUs()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - traceEpoch())
            .count());
}

std::string
newTraceId()
{
    // A per-process random seed mixed with a counter: IDs are unique
    // within the process and almost surely unique across concurrent
    // processes, without per-call entropy reads.
    static const uint64_t seed = [] {
        std::random_device rd;
        return (static_cast<uint64_t>(rd()) << 32) ^ rd();
    }();
    static std::atomic<uint64_t> next{0};
    uint64_t sequence = next.fetch_add(1, std::memory_order_relaxed);
    // An odd multiplier diffuses the counter across all 64 bits, so
    // consecutive IDs do not share a long hex prefix.
    uint64_t value = seed ^ (sequence * 0x9e3779b97f4a7c15ULL);
    static const char hex[] = "0123456789abcdef";
    std::string id(16, '0');
    for (size_t i = 0; i < 16; ++i)
        id[15 - i] = hex[(value >> (4 * i)) & 0xf];
    return id;
}

ChromeTracer::ChromeTracer(std::string path) : path_(std::move(path))
{
}

ChromeTracer::~ChromeTracer()
{
    flush();
}

void
ChromeTracer::complete(std::string_view name,
                       std::string_view category, uint64_t ts_us,
                       uint64_t dur_us)
{
    std::string event = "{\"name\":\"";
    appendJsonEscaped(event, name);
    event += "\",\"cat\":\"";
    appendJsonEscaped(event, category);
    event += "\",\"ph\":\"X\",\"ts\":" + std::to_string(ts_us) +
             ",\"dur\":" + std::to_string(dur_us) +
             ",\"pid\":1,\"tid\":" + std::to_string(currentTid()) +
             "}";
    std::lock_guard<std::mutex> lock(mutex_);
    events_.push_back(std::move(event));
}

void
ChromeTracer::counter(std::string_view name, double value)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6g", value);
    std::string event = "{\"name\":\"";
    appendJsonEscaped(event, name);
    event += "\",\"ph\":\"C\",\"ts\":" + std::to_string(traceNowUs()) +
             ",\"pid\":1,\"args\":{\"value\":" + std::string(buf) +
             "}}";
    std::lock_guard<std::mutex> lock(mutex_);
    events_.push_back(std::move(event));
}

size_t
ChromeTracer::bufferedEvents() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return events_.size();
}

void
ChromeTracer::flush()
{
    std::vector<std::string> events;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (events_.empty())
            return;
        events.swap(events_);
    }
    std::FILE *f = std::fopen(path_.c_str(), "w");
    if (f == nullptr)
        return;   // profiling is best-effort; never take down the host
    std::string out = "{\"traceEvents\":[\n";
    for (size_t i = 0; i < events.size(); ++i) {
        out += events[i];
        if (i + 1 < events.size())
            out += ',';
        out += '\n';
    }
    out += "]}\n";
    std::fwrite(out.data(), 1, out.size(), f);
    std::fclose(f);
}

ChromeTracer *
ChromeTracer::fromEnv()
{
    static ChromeTracer *tracer = []() -> ChromeTracer * {
        const char *path = std::getenv("UOPS_TRACE");
        if (path == nullptr || *path == '\0')
            return nullptr;
        // Leaked intentionally: flushed explicitly by long-running
        // callers; short CLI runs flush via std::atexit so the
        // buffer survives until after main() returns.
        auto *t = new ChromeTracer(path);
        std::atexit([] { fromEnv()->flush(); });
        return t;
    }();
    return tracer;
}

SpanSet::Scope::Scope(Scope &&other) noexcept
    : set_(other.set_), index_(other.index_)
{
    other.set_ = nullptr;
}

SpanSet::Scope &
SpanSet::Scope::operator=(Scope &&other) noexcept
{
    if (this != &other) {
        end();
        set_ = other.set_;
        index_ = other.index_;
        other.set_ = nullptr;
    }
    return *this;
}

void
SpanSet::Scope::end()
{
    if (set_ == nullptr)
        return;
    set_->close(index_);
    set_ = nullptr;
}

SpanSet::SpanSet(std::string category, ChromeTracer *tracer)
    : category_(std::move(category)), tracer_(tracer),
      base_us_(traceNowUs())
{
}

SpanSet::Scope
SpanSet::span(std::string_view name)
{
    Entry entry;
    entry.name = std::string(name);
    entry.depth = static_cast<uint32_t>(open_.size());
    entry.start_us = traceNowUs() - base_us_;
    size_t index = entries_.size();
    entries_.push_back(std::move(entry));
    open_.push_back(index);
    return Scope(this, index);
}

uint64_t
SpanSet::elapsedUs() const
{
    return traceNowUs() - base_us_;
}

void
SpanSet::close(size_t index)
{
    Entry &entry = entries_[index];
    uint64_t now = traceNowUs();
    uint64_t start_abs = base_us_ + entry.start_us;
    entry.dur_us = now > start_abs ? now - start_abs : 0;
    open_.erase(std::remove(open_.begin(), open_.end(), index),
                open_.end());
    if (tracer_ != nullptr)
        tracer_->complete(entry.name, category_, start_abs,
                          entry.dur_us);
}

} // namespace uops::obs
