#include "log.h"

#include <cctype>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace uops::obs {

const char *
logLevelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug: return "debug";
      case LogLevel::Info: return "info";
      case LogLevel::Warn: return "warn";
      case LogLevel::Error: return "error";
    }
    return "?";
}

std::optional<LogLevel>
parseLogLevel(std::string_view text)
{
    std::string lower;
    lower.reserve(text.size());
    for (char c : text)
        lower += static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));
    if (lower == "debug")
        return LogLevel::Debug;
    if (lower == "info")
        return LogLevel::Info;
    if (lower == "warn" || lower == "warning")
        return LogLevel::Warn;
    if (lower == "error")
        return LogLevel::Error;
    return std::nullopt;
}

void
appendJsonEscaped(std::string &out, std::string_view s)
{
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned char>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
}

namespace {

uint64_t
wallClockUs()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count());
}

std::string
linePrefix(LogLevel level, std::string_view component,
           std::string_view event_name)
{
    std::string line = "{\"ts_us\":" + std::to_string(wallClockUs());
    line += ",\"level\":\"";
    line += logLevelName(level);
    line += "\",\"component\":\"";
    appendJsonEscaped(line, component);
    line += "\",\"event\":\"";
    appendJsonEscaped(line, event_name);
    line += '"';
    return line;
}

} // namespace

LogEvent::LogEvent(Logger *logger, std::string line)
    : logger_(logger), line_(std::move(line))
{
}

LogEvent::LogEvent(LogEvent &&other) noexcept
    : logger_(other.logger_), line_(std::move(other.line_))
{
    other.logger_ = nullptr;
}

LogEvent::~LogEvent()
{
    if (logger_ == nullptr)
        return;
    line_ += '}';
    logger_->emit(std::move(line_));
}

void
LogEvent::beginField(std::string_view key)
{
    line_ += ",\"";
    appendJsonEscaped(line_, key);
    line_ += "\":";
}

LogEvent &
LogEvent::str(std::string_view key, std::string_view value)
{
    if (logger_ == nullptr)
        return *this;
    beginField(key);
    line_ += '"';
    appendJsonEscaped(line_, value);
    line_ += '"';
    return *this;
}

LogEvent &
LogEvent::num(std::string_view key, uint64_t value)
{
    if (logger_ == nullptr)
        return *this;
    beginField(key);
    line_ += std::to_string(value);
    return *this;
}

LogEvent &
LogEvent::num(std::string_view key, int64_t value)
{
    if (logger_ == nullptr)
        return *this;
    beginField(key);
    line_ += std::to_string(value);
    return *this;
}

LogEvent &
LogEvent::num(std::string_view key, double value)
{
    if (logger_ == nullptr)
        return *this;
    beginField(key);
    if (std::isfinite(value)) {
        char buf[64];
        std::snprintf(buf, sizeof buf, "%.17g", value);
        line_ += buf;
    } else {
        line_ += "null";   // JSON has no Inf/NaN
    }
    return *this;
}

LogEvent &
LogEvent::boolean(std::string_view key, bool value)
{
    if (logger_ == nullptr)
        return *this;
    beginField(key);
    line_ += value ? "true" : "false";
    return *this;
}

LogEvent &
LogEvent::nullField(std::string_view key)
{
    if (logger_ == nullptr)
        return *this;
    beginField(key);
    line_ += "null";
    return *this;
}

Logger::Logger() : Logger(Options{})
{
}

Logger::Logger(Options options)
    : min_level_(options.min_level),
      max_lines_per_second_(options.max_lines_per_second)
{
}

void
Logger::setSink(Sink sink)
{
    std::lock_guard<std::mutex> lock(mutex_);
    sink_ = std::move(sink);
}

void
Logger::setMinLevel(LogLevel level)
{
    min_level_.store(level, std::memory_order_relaxed);
}

LogLevel
Logger::minLevel() const
{
    return min_level_.load(std::memory_order_relaxed);
}

LogEvent
Logger::event(LogLevel level, std::string_view component,
              std::string_view event_name)
{
    if (!enabled(level))
        return LogEvent(nullptr, std::string());
    return LogEvent(this, linePrefix(level, component, event_name));
}

uint64_t
Logger::emitted() const
{
    return emitted_.load(std::memory_order_relaxed);
}

uint64_t
Logger::suppressed() const
{
    return suppressed_.load(std::memory_order_relaxed);
}

namespace {

void
stderrSink(std::string_view line)
{
    // One fwrite per line: lines from concurrent loggers sharing the
    // stream can interleave only at line granularity.
    std::string out(line);
    out += '\n';
    std::fwrite(out.data(), 1, out.size(), stderr);
}

} // namespace

void
Logger::emit(std::string &&line)
{
    std::lock_guard<std::mutex> lock(mutex_);

    if (max_lines_per_second_ > 0) {
        auto now = std::chrono::steady_clock::now();
        if (now - window_start_ >= std::chrono::seconds(1)) {
            if (window_suppressed_ > 0) {
                std::string summary = linePrefix(
                    LogLevel::Warn, "obs", "log_rate_limited");
                summary += ",\"suppressed\":" +
                           std::to_string(window_suppressed_) + "}";
                if (sink_)
                    sink_(summary);
                else
                    stderrSink(summary);
                emitted_.fetch_add(1, std::memory_order_relaxed);
            }
            window_start_ = now;
            window_count_ = 0;
            window_suppressed_ = 0;
        }
        if (window_count_ >= max_lines_per_second_) {
            ++window_suppressed_;
            suppressed_.fetch_add(1, std::memory_order_relaxed);
            return;
        }
        ++window_count_;
    }

    if (sink_)
        sink_(line);
    else
        stderrSink(line);
    emitted_.fetch_add(1, std::memory_order_relaxed);
}

Logger &
defaultLogger()
{
    static Logger *logger = [] {
        Logger::Options options;
        // Quiet by default: library code (catalog loads, CLI runs,
        // tests) logs here, and routine Info lines on stderr would be
        // noise. Warnings and errors always show; operators opt into
        // more with UOPS_LOG_LEVEL=info|debug.
        options.min_level = LogLevel::Warn;
        if (const char *env = std::getenv("UOPS_LOG_LEVEL")) {
            if (auto level = parseLogLevel(env))
                options.min_level = *level;
        }
        return new Logger(options);   // leaked: outlives exit hooks
    }();
    return *logger;
}

} // namespace uops::obs
