/**
 * @file
 * Lock-free metrics primitives and the process metrics registry.
 *
 * Three instrument kinds, all safe for concurrent recording with
 * relaxed atomics (one fetch_add per event on the hot path):
 *
 *   Counter    monotonically increasing uint64 (requests, errors)
 *   Gauge      last-write-wins double (generation, inflight)
 *   Histogram  26 power-of-two buckets over unsigned values —
 *              the generalization of the latency histogram that
 *              used to live privately in server/service.h: bucket i
 *              holds values whose bit_width is i (bucket 0 is the
 *              exact value 0, the last bucket is open-ended), so
 *              recording stays a single relaxed increment and
 *              quantiles are reconstructed from bucket upper bounds.
 *
 * A Registry owns instruments keyed by (name, sorted label set) and
 * renders the whole set in the Prometheus text exposition format
 * (renderPrometheus): "# HELP"/"# TYPE" per family, cumulative
 * `_bucket{le=...}` series plus `_sum`/`_count` for histograms,
 * escaped label values. Registration is mutex-guarded and idempotent
 * — asking for an existing (name, labels) pair returns the same
 * instrument, so callers can re-register freely — while recording
 * through the returned reference is lock-free. Instrument addresses
 * are stable for the registry's lifetime.
 *
 * Callback instruments (counterCallback/gaugeCallback) mirror values
 * maintained elsewhere (cache stats structs, engine inflight) into
 * the exposition without double bookkeeping: the callback is invoked
 * at render time only.
 *
 * Naming conventions (enforced only by review, not code): every
 * series is prefixed `uops_`, counters end in `_total`, durations
 * are in microseconds and say so (`_us`), label names are
 * lower_snake. Invalid metric/label *syntax* panics at registration
 * — a malformed name is a bug in the caller, not runtime input.
 */

#ifndef UOPS_SUPPORT_OBS_METRICS_H
#define UOPS_SUPPORT_OBS_METRICS_H

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace uops::obs {

/** Label key/value pairs; order-insensitive (canonicalized). */
using LabelSet = std::vector<std::pair<std::string, std::string>>;

class Counter
{
  public:
    void
    inc(uint64_t n = 1)
    {
        value_.fetch_add(n, std::memory_order_relaxed);
    }

    uint64_t
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<uint64_t> value_{0};
};

class Gauge
{
  public:
    void
    set(double v)
    {
        value_.store(v, std::memory_order_relaxed);
    }

    void
    add(double delta)
    {
        double cur = value_.load(std::memory_order_relaxed);
        while (!value_.compare_exchange_weak(
            cur, cur + delta, std::memory_order_relaxed,
            std::memory_order_relaxed)) {
        }
    }

    double
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<double> value_{0.0};
};

class Histogram
{
  public:
    static constexpr size_t kBuckets = 26;

    /** Upper bound of bucket @p i ((2^i)-1; bucket 0 is exactly 0).
     *  The last bucket is open-ended — callers render it as +Inf. */
    static uint64_t bucketUpperBound(size_t i);

    void
    observe(uint64_t value)
    {
        size_t bucket = bucketIndex(value);
        buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
        sum_.fetch_add(value, std::memory_order_relaxed);
    }

    static size_t bucketIndex(uint64_t value);

    struct Snapshot
    {
        std::array<uint64_t, kBuckets> buckets{};
        uint64_t count = 0;
        uint64_t sum = 0;

        /** Smallest bucket upper bound covering quantile @p q — a
         *  conservative power-of-two ceiling, not an interpolation
         *  (monitoring wants "no worse than", not pretty). Empty
         *  when no samples were recorded: an endpoint that was
         *  never hit has no percentile, which is not the same thing
         *  as "sub-microsecond". */
        std::optional<uint64_t> quantile(double q) const;
    };

    Snapshot snapshot() const;

  private:
    std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
    std::atomic<uint64_t> sum_{0};
};

/**
 * Owns instruments; renders Prometheus text. Thread-safe.
 */
class Registry
{
  public:
    using Callback = std::function<double()>;

    Registry() = default;
    Registry(const Registry &) = delete;
    Registry &operator=(const Registry &) = delete;

    /** Register-or-fetch. @p help is fixed by the first call for a
     *  family; a kind mismatch for an existing family panics. */
    Counter &counter(const std::string &name, const std::string &help,
                     LabelSet labels = {});
    Gauge &gauge(const std::string &name, const std::string &help,
                 LabelSet labels = {});
    Histogram &histogram(const std::string &name,
                         const std::string &help, LabelSet labels = {});

    /** Mirror an externally-maintained monotone counter / level into
     *  the exposition; @p callback runs at render time. */
    void counterCallback(const std::string &name,
                         const std::string &help, LabelSet labels,
                         Callback callback);
    void gaugeCallback(const std::string &name, const std::string &help,
                       LabelSet labels, Callback callback);

    /**
     * The full registry in Prometheus text exposition format
     * (text/plain; version=0.0.4): families sorted by name, series
     * sorted by label key, cumulative histogram buckets.
     */
    std::string renderPrometheus() const;

    /** Process-wide registry for components without an owner to hand
     *  them one (catalog recovery counters, CLI sweeps). Server-owned
     *  metrics live in the service's own registry; /metrics renders
     *  both. */
    static Registry &global();

  private:
    enum class Kind : uint8_t {
        Counter,
        Gauge,
        Histogram,
        CounterCallback,
        GaugeCallback,
    };

    struct Series
    {
        LabelSet labels;             ///< canonical (sorted) order
        std::unique_ptr<Counter> counter;
        std::unique_ptr<Gauge> gauge;
        std::unique_ptr<Histogram> histogram;
        Callback callback;
    };

    struct Family
    {
        Kind kind = Kind::Counter;
        std::string help;
        std::map<std::string, Series> series;  ///< by label key
    };

    Series &seriesFor(const std::string &name, const std::string &help,
                      Kind kind, LabelSet labels);

    mutable std::mutex mutex_;
    std::map<std::string, Family> families_;
};

} // namespace uops::obs

#endif // UOPS_SUPPORT_OBS_METRICS_H
