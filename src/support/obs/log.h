/**
 * @file
 * Structured JSON-lines logger: one self-contained JSON object per
 * line, with levels, component tags and rate limiting.
 *
 * Usage:
 *
 *   logger.event(LogLevel::Info, "http", "access")
 *       .str("id", request_id)
 *       .num("status", 200)
 *       .num("us", elapsed_us);
 *
 * The LogEvent builder accumulates typed fields and emits the
 * finished line when it goes out of scope; an event below the
 * logger's minimum level costs one relaxed load and builds nothing.
 * Every line carries `ts_us` (wall-clock microseconds since the
 * epoch), `level`, `component` and `event` before the caller's
 * fields, so any line can be parsed, filtered and joined on its own.
 *
 * Emission is serialized by a mutex — lines are atomic, never
 * interleaved — and rate-limited per wall-second: past
 * max_lines_per_second the line is dropped and a single
 * `log_rate_limited` summary (with the suppressed count) is emitted
 * when the window rolls, so a log storm degrades to one line per
 * second instead of unbounded I/O on the request path.
 *
 * The sink is pluggable (tests collect lines in memory, the CLI
 * writes stderr); the default sink writes the line plus '\n' to
 * stderr in one fwrite. defaultLogger() is the process-wide instance
 * for components that are not owned by a server (catalog recovery,
 * CLI commands); its minimum level comes from UOPS_LOG_LEVEL
 * (debug|info|warn|error, default warn so library callers stay quiet
 * unless something is actually wrong).
 */

#ifndef UOPS_SUPPORT_OBS_LOG_H
#define UOPS_SUPPORT_OBS_LOG_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>

namespace uops::obs {

enum class LogLevel : uint8_t { Debug = 0, Info, Warn, Error };

const char *logLevelName(LogLevel level);

/** "debug"/"info"/"warn"/"error" (case-insensitive); else empty. */
std::optional<LogLevel> parseLogLevel(std::string_view text);

/** Append @p s JSON-escaped (no surrounding quotes) to @p out. */
void appendJsonEscaped(std::string &out, std::string_view s);

class Logger;

/**
 * Move-only field builder; emits on destruction. An event built from
 * a disabled level carries no logger and ignores every call.
 */
class LogEvent
{
  public:
    LogEvent(LogEvent &&other) noexcept;
    LogEvent &operator=(LogEvent &&) = delete;
    LogEvent(const LogEvent &) = delete;
    LogEvent &operator=(const LogEvent &) = delete;
    ~LogEvent();

    LogEvent &str(std::string_view key, std::string_view value);
    LogEvent &num(std::string_view key, uint64_t value);
    LogEvent &num(std::string_view key, int64_t value);
    LogEvent &num(std::string_view key, double value);
    LogEvent &boolean(std::string_view key, bool value);
    LogEvent &nullField(std::string_view key);

  private:
    friend class Logger;
    LogEvent(Logger *logger, std::string line);

    void beginField(std::string_view key);

    Logger *logger_ = nullptr;
    std::string line_;
};

class Logger
{
  public:
    /** Receives one finished line (no trailing newline). Must not
     *  call back into the logger. */
    using Sink = std::function<void(std::string_view line)>;

    struct Options
    {
        LogLevel min_level = LogLevel::Info;

        /** Lines per wall-second before suppression; 0: unlimited. */
        uint64_t max_lines_per_second = 0;
    };

    Logger();
    explicit Logger(Options options);

    /** Replace the sink; null restores the stderr default. */
    void setSink(Sink sink);

    void setMinLevel(LogLevel level);
    LogLevel minLevel() const;

    bool
    enabled(LogLevel level) const
    {
        return level >= min_level_.load(std::memory_order_relaxed);
    }

    /** Start a structured event. Fields chain on the returned
     *  builder; the line is emitted when the builder dies. */
    LogEvent event(LogLevel level, std::string_view component,
                   std::string_view event_name);

    /** Lines actually handed to the sink (summaries included). */
    uint64_t emitted() const;

    /** Lines dropped by the rate limiter. */
    uint64_t suppressed() const;

  private:
    friend class LogEvent;
    void emit(std::string &&line);

    std::atomic<LogLevel> min_level_;
    uint64_t max_lines_per_second_;

    std::mutex mutex_;
    Sink sink_;
    std::chrono::steady_clock::time_point window_start_{};
    uint64_t window_count_ = 0;
    uint64_t window_suppressed_ = 0;
    std::atomic<uint64_t> emitted_{0};
    std::atomic<uint64_t> suppressed_{0};
};

/** Process-wide logger (stderr, level from UOPS_LOG_LEVEL). */
Logger &defaultLogger();

} // namespace uops::obs

#endif // UOPS_SUPPORT_OBS_LOG_H
