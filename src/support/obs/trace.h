/**
 * @file
 * Request tracing on the monotonic clock: trace IDs, in-request span
 * sets, and a Chrome trace-event profile sink.
 *
 * newTraceId() mints 16-hex-char process-unique IDs; the server
 * propagates them via X-Request-Id (client-supplied IDs are echoed,
 * missing ones are minted) so every response and every access-log
 * line can be joined on one key.
 *
 * A SpanSet collects the timed phases of one request (parse ->
 * assemble -> simulate -> analysis -> render for /predict). It is
 * single-threaded by design — one request, one handler thread — and
 * records each span as {name, depth, start_us, dur_us} with start
 * relative to the SpanSet's creation on std::chrono::steady_clock,
 * so the entries can be embedded verbatim in a ?debug=timings
 * response. Scopes are RAII: span() returns a Scope whose
 * destruction (or explicit end()) closes the span; nesting depth is
 * the number of open scopes at creation.
 *
 * ChromeTracer appends complete ("ph":"X") events — and counter
 * ("ph":"C") series — to an in-memory buffer and writes a
 * chrome://tracing / Perfetto-loadable JSON document on flush().
 * ChromeTracer::fromEnv() is the process profiling hook: when
 * UOPS_TRACE=<file> is set it returns a singleton writing to that
 * file (flushed at process exit), otherwise nullptr, so callers
 * guard with one pointer test and tracing is free when disabled.
 * A SpanSet forwards every closed span to the tracer it was built
 * with, which defaults to fromEnv().
 */

#ifndef UOPS_SUPPORT_OBS_TRACE_H
#define UOPS_SUPPORT_OBS_TRACE_H

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace uops::obs {

/** 16 lowercase hex chars, unique within the process. */
std::string newTraceId();

/** Monotonic microseconds since the process trace epoch (shared by
 *  every SpanSet and ChromeTracer event, so timelines line up). */
uint64_t traceNowUs();

class ChromeTracer
{
  public:
    explicit ChromeTracer(std::string path);
    ~ChromeTracer();

    ChromeTracer(const ChromeTracer &) = delete;
    ChromeTracer &operator=(const ChromeTracer &) = delete;

    /** A complete event: @p ts_us/@p dur_us on the trace epoch; the
     *  emitting thread becomes the trace tid. */
    void complete(std::string_view name, std::string_view category,
                  uint64_t ts_us, uint64_t dur_us);

    /** A counter sample (rendered as a stacked series). */
    void counter(std::string_view name, double value);

    /** Write the buffered document to the path (atomic buffer swap;
     *  later events start a fresh document on the next flush). */
    void flush();

    size_t bufferedEvents() const;

    /** The UOPS_TRACE singleton, or nullptr when unset. */
    static ChromeTracer *fromEnv();

  private:
    mutable std::mutex mutex_;
    std::string path_;
    std::vector<std::string> events_;
};

class SpanSet
{
  public:
    struct Entry
    {
        std::string name;
        uint32_t depth = 0;     ///< open scopes above this one
        uint64_t start_us = 0;  ///< relative to SpanSet creation
        uint64_t dur_us = 0;
    };

    /** RAII span handle; default-constructed is inert (so callers
     *  can write `auto s = maybe_spans ? ... : Scope();`). */
    class Scope
    {
      public:
        Scope() = default;
        Scope(Scope &&other) noexcept;
        Scope &operator=(Scope &&other) noexcept;
        Scope(const Scope &) = delete;
        Scope &operator=(const Scope &) = delete;
        ~Scope() { end(); }

        /** Close now (idempotent). */
        void end();

      private:
        friend class SpanSet;
        Scope(SpanSet *set, size_t index) : set_(set), index_(index) {}
        SpanSet *set_ = nullptr;
        size_t index_ = 0;
    };

    /** @param category Chrome trace category for forwarded spans.
     *  @param tracer   Profile sink; defaults to the UOPS_TRACE
     *                  singleton, pass nullptr to disable. */
    explicit SpanSet(std::string category = "request",
                     ChromeTracer *tracer = ChromeTracer::fromEnv());

    SpanSet(const SpanSet &) = delete;
    SpanSet &operator=(const SpanSet &) = delete;

    Scope span(std::string_view name);

    /** Recorded spans, in open order. Entries not yet closed still
     *  carry dur_us == 0. */
    const std::vector<Entry> &entries() const { return entries_; }

    /** Microseconds since this SpanSet was created. */
    uint64_t elapsedUs() const;

  private:
    friend class Scope;
    void close(size_t index);

    std::string category_;
    ChromeTracer *tracer_;
    uint64_t base_us_;              ///< trace-epoch time of creation
    std::vector<Entry> entries_;
    std::vector<size_t> open_;      ///< stack of entry indices
};

} // namespace uops::obs

#endif // UOPS_SUPPORT_OBS_TRACE_H
