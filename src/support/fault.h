/**
 * @file
 * Scriptable fault injection for the storage and serving stack.
 *
 * Every step of a catalog commit (open, write, fsync, rename, dir
 * fsync, mmap) passes through a named *failpoint site*. A test — or
 * the UOPS_FAULTS environment variable — arms a site with a fault
 * spec, and the next time execution reaches it the site fires:
 * either an injected I/O error (indistinguishable to callers from a
 * real syscall failure) or an InjectedCrash, which simulates the
 * process dying at exactly that point — whatever bytes the preceding
 * steps put on disk stay there, and nothing after the site runs.
 * That is what lets the crash-matrix test drive one catalog commit
 * through every site, "kill" it there, and assert that recovery
 * always reopens a consistent generation.
 *
 * Sites are plain strings ("catalog.manifest.rename"); they need no
 * registration. The injector counts hits per site whenever tracing
 * is enabled or any fault is armed, so a test can first trace a
 * clean run to enumerate the sites (and how often each is hit), then
 * replay with a crash armed at each (site, occurrence) pair. The
 * unarmed fast path is a single relaxed atomic load — production
 * binaries keep the checks compiled in at negligible cost, which is
 * also what makes UOPS_FAULTS usable against the real CLI in CI.
 */

#ifndef UOPS_SUPPORT_FAULT_H
#define UOPS_SUPPORT_FAULT_H

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace uops {

/**
 * Thrown to simulate the process dying at a failpoint. Deliberately
 * NOT derived from FatalError: no recovery, retry, or "degrade
 * gracefully" path may swallow a simulated kill — only the test
 * harness that armed it catches it.
 */
class InjectedCrash : public std::runtime_error
{
  public:
    explicit InjectedCrash(const std::string &site)
        : std::runtime_error("injected crash at failpoint '" + site +
                             "'"),
          site_(site)
    {
    }

    const std::string &site() const { return site_; }

  private:
    std::string site_;
};

/** What an armed failpoint does when it fires. */
struct FaultSpec
{
    enum class Action : uint8_t {
        Error,   ///< the I/O step fails (an IoError for the caller)
        Crash,   ///< the process "dies" here (InjectedCrash)
    };

    Action action = Action::Error;

    /** Fire on the Nth hit of the site (1-based). */
    uint64_t on_hit = 1;

    /** Keep firing on every hit >= on_hit instead of disarming after
     *  the first firing. */
    bool always = false;

    /** For write sites: put a prefix of the payload on disk before
     *  firing — a torn write, not a clean no-op. */
    bool partial = false;
};

class FaultInjector
{
  public:
    /** The process-wide injector. Arms itself from UOPS_FAULTS on
     *  first use (see parseSpec for the grammar). */
    static FaultInjector &instance();

    /** Arm @p site; replaces any previous spec for it. */
    void arm(const std::string &site, FaultSpec spec);

    void disarm(const std::string &site);

    /** Disarm everything and clear all hit counters and traces. */
    void reset();

    /** Record hits at every site, armed or not (for enumerating the
     *  sites a code path passes through). */
    void setTracing(bool on);

    uint64_t hits(const std::string &site) const;

    /** Sites hit since reset, in first-hit order, with counts. */
    std::vector<std::pair<std::string, uint64_t>> tracedSites() const;

    /**
     * The per-site check. Counts the hit and returns the spec when
     * the site fires on this hit (the *caller* performs the action:
     * plain sites throw, write sites may tear the write first).
     * Returns nullopt — without taking any lock — when nothing is
     * armed and tracing is off.
     */
    std::optional<FaultSpec> poll(std::string_view site);

    /**
     * Parse one spec: "ACTION[@HIT][*][~]" where ACTION is "error" or
     * "crash", @HIT fires on the Nth hit (default 1), '*' keeps the
     * site firing on every later hit, and '~' tears the write first
     * (write sites only). Throws FatalError on bad input.
     */
    static FaultSpec parseSpec(std::string_view text);

    /** Arm from an environment-style list:
     *  "site=crash,other.site=error@3*". Empty input is a no-op. */
    void armFromList(std::string_view list);

  private:
    FaultInjector();

    struct Armed
    {
        FaultSpec spec;
        bool fired = false;
    };

    struct SiteState
    {
        uint64_t hits = 0;
        std::optional<Armed> armed;
    };

    mutable std::mutex mutex_;
    std::map<std::string, SiteState, std::less<>> sites_;
    std::vector<std::string> trace_order_;

    /** armed-site count plus the tracing flag in bit 32: one relaxed
     *  load decides whether poll() may return early. */
    std::atomic<uint64_t> active_{0};

    void updateActiveLocked();
    size_t armedCountLocked() const;
    bool tracing_ = false;
};

} // namespace uops

#endif // UOPS_SUPPORT_FAULT_H
