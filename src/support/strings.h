/**
 * @file
 * Small string utilities used by the DSL parsers and report writers.
 */

#ifndef UOPS_SUPPORT_STRINGS_H
#define UOPS_SUPPORT_STRINGS_H

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace uops {

/** Remove leading and trailing whitespace. */
std::string trim(std::string_view s);

/** Split @p s on @p sep, optionally trimming and dropping empty pieces. */
std::vector<std::string> split(std::string_view s, char sep,
                               bool trim_pieces = true,
                               bool keep_empty = false);

/** Split on arbitrary whitespace runs. */
std::vector<std::string> splitWhitespace(std::string_view s);

/** Join pieces with a separator. */
std::string join(const std::vector<std::string> &pieces,
                 std::string_view sep);

/** True when @p s begins with @p prefix. */
bool startsWith(std::string_view s, std::string_view prefix);

/** True when @p s ends with @p suffix. */
bool endsWith(std::string_view s, std::string_view suffix);

/** Uppercase an ASCII string. */
std::string toUpper(std::string_view s);

/** Lowercase an ASCII string. */
std::string toLower(std::string_view s);

/** Parse a decimal integer; empty optional on malformed input. */
std::optional<long> parseInt(std::string_view s);

/** Parse a decimal floating-point number; empty optional on failure. */
std::optional<double> parseDouble(std::string_view s);

/**
 * Split a "key=value" pair at the first '='.
 *
 * @return {key, value}; value is empty when no '=' is present.
 */
std::pair<std::string, std::string> splitKeyValue(std::string_view s);

} // namespace uops

#endif // UOPS_SUPPORT_STRINGS_H
