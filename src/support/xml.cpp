#include "xml.h"

#include <cctype>
#include <sstream>

#include "status.h"

namespace uops {

std::string
xmlEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '&': out += "&amp;"; break;
          case '<': out += "&lt;"; break;
          case '>': out += "&gt;"; break;
          case '"': out += "&quot;"; break;
          case '\'': out += "&apos;"; break;
          default: out += c;
        }
    }
    return out;
}

namespace {

std::string
xmlUnescape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    size_t i = 0;
    while (i < s.size()) {
        if (s[i] != '&') {
            out += s[i++];
            continue;
        }
        size_t semi = s.find(';', i);
        if (semi == std::string::npos)
            fatal("xml: unterminated entity in '", s, "'");
        std::string entity = s.substr(i + 1, semi - i - 1);
        if (entity == "amp")
            out += '&';
        else if (entity == "lt")
            out += '<';
        else if (entity == "gt")
            out += '>';
        else if (entity == "quot")
            out += '"';
        else if (entity == "apos")
            out += '\'';
        else
            fatal("xml: unknown entity '&", entity, ";'");
        i = semi + 1;
    }
    return out;
}

} // namespace

XmlNode &
XmlNode::attr(const std::string &key, const std::string &value)
{
    for (auto &kv : attrs_) {
        if (kv.first == key) {
            kv.second = value;
            return *this;
        }
    }
    attrs_.emplace_back(key, value);
    return *this;
}

XmlNode &
XmlNode::attr(const std::string &key, long value)
{
    return attr(key, std::to_string(value));
}

std::string
xmlFormatDouble(double value)
{
    std::ostringstream os;
    os << value;
    return os.str();
}

XmlNode &
XmlNode::attr(const std::string &key, double value)
{
    return attr(key, xmlFormatDouble(value));
}

XmlNode &
XmlNode::attr(const std::string &key, Cycles value)
{
    return attr(key, value.str());
}

const std::string &
XmlNode::getAttr(const std::string &key) const
{
    static const std::string empty;
    for (const auto &kv : attrs_)
        if (kv.first == key)
            return kv.second;
    return empty;
}

bool
XmlNode::hasAttr(const std::string &key) const
{
    for (const auto &kv : attrs_)
        if (kv.first == key)
            return true;
    return false;
}

XmlNode &
XmlNode::addChild(const std::string &child_name)
{
    children_.push_back(std::make_unique<XmlNode>(child_name));
    return *children_.back();
}

XmlNode &
XmlNode::addChild(std::unique_ptr<XmlNode> child)
{
    panicIf(!child, "XmlNode::addChild: null child");
    children_.push_back(std::move(child));
    return *children_.back();
}

std::vector<const XmlNode *>
XmlNode::childrenNamed(const std::string &n) const
{
    std::vector<const XmlNode *> out;
    for (const auto &c : children_)
        if (c->name() == n)
            out.push_back(c.get());
    return out;
}

const XmlNode *
XmlNode::firstChild(const std::string &n) const
{
    for (const auto &c : children_)
        if (c->name() == n)
            return c.get();
    return nullptr;
}

void
XmlNode::write(std::ostream &os, int indent) const
{
    std::string pad(static_cast<size_t>(indent) * 2, ' ');
    os << pad << '<' << name_;
    for (const auto &kv : attrs_)
        os << ' ' << kv.first << "=\"" << xmlEscape(kv.second) << '"';
    if (children_.empty() && text_.empty()) {
        os << "/>\n";
        return;
    }
    os << '>';
    if (!text_.empty())
        os << xmlEscape(text_);
    if (!children_.empty()) {
        os << '\n';
        for (const auto &c : children_)
            c->write(os, indent + 1);
        os << pad;
    }
    os << "</" << name_ << ">\n";
}

std::string
XmlNode::toString() const
{
    std::ostringstream os;
    os << "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n";
    write(os, 0);
    return os.str();
}

namespace {

/** Recursive-descent parser over a raw XML string. */
class XmlParser
{
  public:
    explicit XmlParser(const std::string &text) : text_(text) {}

    std::unique_ptr<XmlNode>
    parse()
    {
        skipProlog();
        auto root = parseElement();
        skipWhitespaceAndComments();
        fatalIf(pos_ != text_.size(), "xml: trailing content at offset ",
                pos_);
        return root;
    }

  private:
    void
    skipWhitespaceAndComments()
    {
        while (pos_ < text_.size()) {
            if (std::isspace(static_cast<unsigned char>(text_[pos_]))) {
                ++pos_;
            } else if (text_.compare(pos_, 4, "<!--") == 0) {
                size_t end = text_.find("-->", pos_ + 4);
                fatalIf(end == std::string::npos,
                        "xml: unterminated comment");
                pos_ = end + 3;
            } else {
                break;
            }
        }
    }

    void
    skipProlog()
    {
        skipWhitespaceAndComments();
        if (text_.compare(pos_, 5, "<?xml") == 0) {
            size_t end = text_.find("?>", pos_);
            fatalIf(end == std::string::npos, "xml: unterminated prolog");
            pos_ = end + 2;
        }
        skipWhitespaceAndComments();
    }

    std::string
    parseName()
    {
        size_t start = pos_;
        while (pos_ < text_.size() &&
               (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '_' || text_[pos_] == '-' ||
                text_[pos_] == ':' || text_[pos_] == '.'))
            ++pos_;
        fatalIf(pos_ == start, "xml: expected name at offset ", start);
        return text_.substr(start, pos_ - start);
    }

    void
    skipSpaces()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    std::unique_ptr<XmlNode>
    parseElement()
    {
        fatalIf(pos_ >= text_.size() || text_[pos_] != '<',
                "xml: expected '<' at offset ", pos_);
        ++pos_;
        auto node = std::make_unique<XmlNode>(parseName());
        // Attributes.
        while (true) {
            skipSpaces();
            fatalIf(pos_ >= text_.size(), "xml: unexpected end of input");
            if (text_[pos_] == '/' || text_[pos_] == '>')
                break;
            std::string key = parseName();
            skipSpaces();
            fatalIf(pos_ >= text_.size() || text_[pos_] != '=',
                    "xml: expected '=' after attribute '", key, "'");
            ++pos_;
            skipSpaces();
            fatalIf(pos_ >= text_.size() || text_[pos_] != '"',
                    "xml: expected '\"' in attribute '", key, "'");
            ++pos_;
            size_t end = text_.find('"', pos_);
            fatalIf(end == std::string::npos,
                    "xml: unterminated attribute value");
            node->attr(key, xmlUnescape(text_.substr(pos_, end - pos_)));
            pos_ = end + 1;
        }
        if (text_[pos_] == '/') {
            ++pos_;
            fatalIf(pos_ >= text_.size() || text_[pos_] != '>',
                    "xml: expected '>' after '/'");
            ++pos_;
            return node;
        }
        ++pos_; // consume '>'
        // Content: text and child elements.
        std::string text_content;
        while (true) {
            fatalIf(pos_ >= text_.size(), "xml: unterminated element <",
                    node->name(), ">");
            if (text_[pos_] == '<') {
                if (text_.compare(pos_, 4, "<!--") == 0) {
                    size_t end = text_.find("-->", pos_ + 4);
                    fatalIf(end == std::string::npos,
                            "xml: unterminated comment");
                    pos_ = end + 3;
                    continue;
                }
                if (text_[pos_ + 1] == '/') {
                    pos_ += 2;
                    std::string close = parseName();
                    fatalIf(close != node->name(), "xml: mismatched </",
                            close, "> for <", node->name(), ">");
                    skipSpaces();
                    fatalIf(pos_ >= text_.size() || text_[pos_] != '>',
                            "xml: expected '>' in closing tag");
                    ++pos_;
                    break;
                }
                node->addChild(parseElement());
            } else {
                text_content += text_[pos_++];
            }
        }
        // Keep text only when non-whitespace content exists.
        std::string stripped;
        for (char c : text_content)
            if (!std::isspace(static_cast<unsigned char>(c)))
                stripped += c;
        if (!stripped.empty())
            node->setText(xmlUnescape(text_content));
        return node;
    }

    const std::string &text_;
    size_t pos_ = 0;
};

} // namespace

std::unique_ptr<XmlNode>
parseXml(const std::string &text)
{
    return XmlParser(text).parse();
}

} // namespace uops
