/**
 * @file
 * Read-only memory-mapped file wrapper.
 *
 * The zero-copy snapshot loader points database columns straight into
 * a mapping of the shard file instead of copying every array through
 * an iostream. MappedFile owns the mapping (RAII over open+mmap) and
 * is handed around as a shared_ptr so every database loaded from it
 * keeps the bytes alive for as long as any column still references
 * them — the ownership rule behind hot-swap serving: an old
 * generation's shards stay mapped until the last in-flight request
 * drops its catalog handle.
 */

#ifndef UOPS_SUPPORT_MMAP_FILE_H
#define UOPS_SUPPORT_MMAP_FILE_H

#include <cstddef>
#include <memory>
#include <string>
#include <string_view>

namespace uops {

class MappedFile
{
  public:
    /** Map @p path read-only (throws FatalError when the file cannot
     *  be opened or mapped; an empty file maps to size() == 0). */
    explicit MappedFile(const std::string &path);
    ~MappedFile();

    MappedFile(const MappedFile &) = delete;
    MappedFile &operator=(const MappedFile &) = delete;

    const char *data() const { return data_; }
    size_t size() const { return size_; }
    std::string_view view() const { return {data_, size_}; }
    const std::string &path() const { return path_; }

  private:
    std::string path_;
    const char *data_ = nullptr;
    size_t size_ = 0;
};

/** Convenience: map a file for shared ownership by loaders. */
std::shared_ptr<const MappedFile> mapFile(const std::string &path);

} // namespace uops

#endif // UOPS_SUPPORT_MMAP_FILE_H
