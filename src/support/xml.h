/**
 * @file
 * Minimal XML writer and reader.
 *
 * The paper stores both the instruction-set description (extracted from the
 * XED configuration) and the measurement results in machine-readable XML
 * (Sections 6.1 and 6.4). This module provides the writer used for those
 * artifacts, plus a small reader so tests can verify round-trips.
 */

#ifndef UOPS_SUPPORT_XML_H
#define UOPS_SUPPORT_XML_H

#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "support/cycles.h"

namespace uops {

/** Escape the five XML special characters in @p s. */
std::string xmlEscape(const std::string &s);

/**
 * The canonical text form of a double in our XML/JSON artifacts
 * (default ostream formatting, 6 significant digits).
 *
 * Exposed so that consumers which must be bit-identical to an
 * XML-text round trip (db ingest, JSON responses) can normalize
 * values through the exact same formatting the writer uses.
 */
std::string xmlFormatDouble(double value);

/**
 * An XML element tree node.
 *
 * Attribute order is preserved (stable output); children are owned.
 */
class XmlNode
{
  public:
    explicit XmlNode(std::string name) : name_(std::move(name)) {}

    const std::string &name() const { return name_; }
    const std::string &text() const { return text_; }
    void setText(std::string text) { text_ = std::move(text); }

    /** Set (or overwrite) an attribute. Returns *this for chaining. */
    XmlNode &attr(const std::string &key, const std::string &value);
    XmlNode &attr(const std::string &key, long value);
    XmlNode &attr(const std::string &key, double value);
    XmlNode &attr(const std::string &key, Cycles value);

    /** Look up an attribute; empty string when missing. */
    const std::string &getAttr(const std::string &key) const;
    bool hasAttr(const std::string &key) const;

    /** Append a child element and return a reference to it. */
    XmlNode &addChild(const std::string &child_name);

    /** Adopt an existing element tree as a child. */
    XmlNode &addChild(std::unique_ptr<XmlNode> child);

    const std::vector<std::unique_ptr<XmlNode>> &children() const
    {
        return children_;
    }

    /** All direct children with the given element name. */
    std::vector<const XmlNode *> childrenNamed(const std::string &n) const;

    /** First direct child with the given name, or nullptr. */
    const XmlNode *firstChild(const std::string &n) const;

    /** Attributes in insertion order. */
    const std::vector<std::pair<std::string, std::string>> &
    attrs() const
    {
        return attrs_;
    }

    /** Serialize with 2-space indentation. */
    void write(std::ostream &os, int indent = 0) const;

    /** Serialize to a string, including the XML declaration. */
    std::string toString() const;

  private:
    std::string name_;
    std::string text_;
    std::vector<std::pair<std::string, std::string>> attrs_;
    std::vector<std::unique_ptr<XmlNode>> children_;
};

/**
 * Parse an XML document (subset: elements, attributes, text, comments).
 *
 * @throws FatalError on malformed input.
 */
std::unique_ptr<XmlNode> parseXml(const std::string &text);

} // namespace uops

#endif // UOPS_SUPPORT_XML_H
