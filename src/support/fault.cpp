#include "fault.h"

#include <cstdlib>

#include "support/status.h"
#include "support/strings.h"

namespace uops {

FaultInjector &
FaultInjector::instance()
{
    static FaultInjector injector;
    return injector;
}

FaultInjector::FaultInjector()
{
    if (const char *env = std::getenv("UOPS_FAULTS"))
        armFromList(env);
}

void
FaultInjector::arm(const std::string &site, FaultSpec spec)
{
    std::lock_guard<std::mutex> lock(mutex_);
    sites_[site].armed = Armed{spec, false};
    updateActiveLocked();
}

void
FaultInjector::disarm(const std::string &site)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = sites_.find(site);
    if (it != sites_.end())
        it->second.armed.reset();
    updateActiveLocked();
}

void
FaultInjector::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    sites_.clear();
    trace_order_.clear();
    tracing_ = false;
    updateActiveLocked();
}

void
FaultInjector::setTracing(bool on)
{
    std::lock_guard<std::mutex> lock(mutex_);
    tracing_ = on;
    updateActiveLocked();
}

uint64_t
FaultInjector::hits(const std::string &site) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = sites_.find(site);
    return it == sites_.end() ? 0 : it->second.hits;
}

std::vector<std::pair<std::string, uint64_t>>
FaultInjector::tracedSites() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::pair<std::string, uint64_t>> out;
    out.reserve(trace_order_.size());
    for (const std::string &site : trace_order_) {
        auto it = sites_.find(site);
        out.emplace_back(site,
                         it == sites_.end() ? 0 : it->second.hits);
    }
    return out;
}

size_t
FaultInjector::armedCountLocked() const
{
    size_t n = 0;
    for (const auto &[site, state] : sites_)
        if (state.armed)
            ++n;
    return n;
}

void
FaultInjector::updateActiveLocked()
{
    uint64_t active = armedCountLocked();
    if (tracing_)
        active |= uint64_t{1} << 32;
    active_.store(active, std::memory_order_relaxed);
}

std::optional<FaultSpec>
FaultInjector::poll(std::string_view site)
{
    // The production fast path: nothing armed, no tracing — one
    // relaxed load and out, no lock, no allocation.
    if (active_.load(std::memory_order_relaxed) == 0)
        return std::nullopt;

    std::lock_guard<std::mutex> lock(mutex_);
    auto it = sites_.find(site);
    if (it == sites_.end()) {
        if (!tracing_ && armedCountLocked() == 0)
            return std::nullopt;   // raced a reset
        it = sites_.emplace(std::string(site), SiteState{}).first;
    }
    SiteState &state = it->second;
    if (state.hits == 0)
        trace_order_.push_back(it->first);
    ++state.hits;

    if (!state.armed)
        return std::nullopt;
    Armed &armed = *state.armed;
    bool fires = armed.spec.always
                     ? state.hits >= armed.spec.on_hit
                     : !armed.fired && state.hits == armed.spec.on_hit;
    if (!fires)
        return std::nullopt;
    armed.fired = true;
    return armed.spec;
}

FaultSpec
FaultInjector::parseSpec(std::string_view text)
{
    FaultSpec spec;
    std::string s(text);
    while (!s.empty() && (s.back() == '*' || s.back() == '~')) {
        if (s.back() == '*')
            spec.always = true;
        else
            spec.partial = true;
        s.pop_back();
    }
    if (size_t at = s.find('@'); at != std::string::npos) {
        auto hit = parseInt(s.substr(at + 1));
        fatalIf(!hit || *hit < 1, "fault spec '", text,
                "': @HIT must be a positive integer");
        spec.on_hit = static_cast<uint64_t>(*hit);
        s.resize(at);
    }
    if (s == "error")
        spec.action = FaultSpec::Action::Error;
    else if (s == "crash")
        spec.action = FaultSpec::Action::Crash;
    else
        fatal("fault spec '", text,
              "': action must be 'error' or 'crash'");
    return spec;
}

void
FaultInjector::armFromList(std::string_view list)
{
    for (const std::string &item : split(list, ',')) {
        size_t eq = item.find('=');
        fatalIf(eq == std::string::npos || eq == 0,
                "fault list entry '", item,
                "': expected SITE=SPEC");
        arm(item.substr(0, eq), parseSpec(item.substr(eq + 1)));
    }
}

} // namespace uops
