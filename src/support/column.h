/**
 * @file
 * Owned-or-borrowed columnar storage.
 *
 * The instruction database stores every field as a flat array of
 * trivially copyable elements. During ingest those arrays must grow;
 * after a zero-copy snapshot load they are views into a memory-mapped
 * buffer that the database does not own. Column<T> unifies the two:
 * it is a growable vector in owned mode and a (pointer, size) view in
 * borrowed mode, with copy-on-write — the first mutation of a
 * borrowed column materializes a private owned copy, so ingesting on
 * top of a mapped database is legal and never writes through the map.
 *
 * The holder of borrowed columns is responsible for keeping the
 * backing buffer alive (InstructionDatabase retains a shared_ptr to
 * the mapping); a Column never frees borrowed memory.
 */

#ifndef UOPS_SUPPORT_COLUMN_H
#define UOPS_SUPPORT_COLUMN_H

#include <cstddef>
#include <string_view>
#include <type_traits>
#include <vector>

namespace uops {

template <typename T>
class Column
{
    static_assert(std::is_trivially_copyable_v<T>,
                  "columns are raw-dumped by snapshots");

  public:
    Column() = default;

    size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }
    const T *data() const { return data_; }
    const T *begin() const { return data_; }
    const T *end() const { return data_ + size_; }

    const T &operator[](size_t i) const { return data_[i]; }

    /** Whether the elements live in an external (mapped) buffer. */
    bool borrowed() const { return borrowed_; }

    void
    push_back(const T &value)
    {
        ensureOwned();
        owned_.push_back(value);
        refresh();
    }

    void
    append(const T *ptr, size_t n)
    {
        ensureOwned();
        owned_.insert(owned_.end(), ptr, ptr + n);
        refresh();
    }

    /**
     * Size the owned storage for a bulk read (stream snapshot load);
     * returns the writable element buffer.
     */
    T *
    resizeForRead(size_t n)
    {
        borrowed_ = false;
        owned_.resize(n);
        refresh();
        return owned_.data();
    }

    /** Become a view of @p n elements at @p ptr (caller keeps the
     *  buffer alive; zero-copy snapshot load). */
    void
    bind(const T *ptr, size_t n)
    {
        owned_.clear();
        owned_.shrink_to_fit();
        data_ = ptr;
        size_ = n;
        borrowed_ = true;
    }

    Column(const Column &) = delete;
    Column &operator=(const Column &) = delete;

  private:
    void
    ensureOwned()
    {
        if (!borrowed_)
            return;
        owned_.assign(data_, data_ + size_);
        borrowed_ = false;
        refresh();
    }

    void
    refresh()
    {
        data_ = owned_.data();
        size_ = owned_.size();
    }

    const T *data_ = nullptr;
    size_t size_ = 0;
    bool borrowed_ = false;
    std::vector<T> owned_;
};

/** Column<char> with string-pool ergonomics. */
class BytePool
{
  public:
    size_t size() const { return bytes_.size(); }
    const char *data() const { return bytes_.data(); }
    std::string_view view() const { return {data(), size()}; }

    std::string_view
    substr(size_t offset, size_t length) const
    {
        return view().substr(offset, length);
    }

    void
    append(std::string_view s)
    {
        bytes_.append(s.data(), s.size());
    }

    char *resizeForRead(size_t n) { return bytes_.resizeForRead(n); }
    void bind(const char *ptr, size_t n) { bytes_.bind(ptr, n); }
    bool borrowed() const { return bytes_.borrowed(); }

  private:
    Column<char> bytes_;
};

} // namespace uops

#endif // UOPS_SUPPORT_COLUMN_H
