#include "io.h"

#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include "support/fault.h"

namespace uops {
namespace {

/** Check the failpoint @p site; throw the armed action if it fires.
 *  Returns the spec for write sites that want the partial flag. */
std::optional<FaultSpec>
checkpoint(const std::string &site)
{
    auto spec = FaultInjector::instance().poll(site);
    if (!spec)
        return std::nullopt;
    if (spec->action == FaultSpec::Action::Crash && !spec->partial)
        throw InjectedCrash(site);
    if (spec->action == FaultSpec::Action::Error && !spec->partial)
        throw IoError("injected I/O error at '" + site + "'");
    return spec;   // partial: the caller tears the write, then acts
}

[[noreturn]] void
fireAfterPartial(const std::string &site, const FaultSpec &spec)
{
    if (spec.action == FaultSpec::Action::Crash)
        throw InjectedCrash(site);
    throw IoError("injected I/O error at '" + site + "'");
}

void
writeAll(int fd, const char *data, size_t len, const std::string &what)
{
    size_t off = 0;
    while (off < len) {
        ssize_t n = ::write(fd, data + off, len - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            int err = errno;
            throw IoError("write " + what + ": " + std::strerror(err));
        }
        off += static_cast<size_t>(n);
    }
}

std::string
parentDir(const std::string &path)
{
    size_t slash = path.find_last_of('/');
    if (slash == std::string::npos)
        return ".";
    if (slash == 0)
        return "/";
    return path.substr(0, slash);
}

/** Close @p fd on scope exit unless released — keeps the error paths
 *  below from leaking descriptors without hiding writes in a flushing
 *  destructor (close(2) never writes buffered data; there is none). */
struct FdGuard
{
    int fd;
    ~FdGuard()
    {
        if (fd >= 0)
            ::close(fd);
    }
    int release()
    {
        int f = fd;
        fd = -1;
        return f;
    }
};

} // namespace

void
writeFileAtomic(const std::string &path, std::string_view bytes,
                const std::string &site_prefix)
{
    const std::string tmp = path + ".tmp";

    checkpoint(site_prefix + ".open");
    int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) {
        int err = errno;
        throw IoError("open " + tmp + ": " + std::strerror(err));
    }
    FdGuard guard{fd};

    // The write site supports torn writes: with the partial flag a
    // prefix of the payload reaches the tmp file before the fault
    // fires, modelling a crash mid-write.
    if (auto spec = checkpoint(site_prefix + ".write")) {
        writeAll(fd, bytes.data(), bytes.size() / 2, tmp);
        fireAfterPartial(site_prefix + ".write", *spec);
    }
    writeAll(fd, bytes.data(), bytes.size(), tmp);

    checkpoint(site_prefix + ".fsync");
    if (::fsync(fd) != 0) {
        int err = errno;
        throw IoError("fsync " + tmp + ": " + std::strerror(err));
    }
    if (::close(guard.release()) != 0) {
        int err = errno;
        throw IoError("close " + tmp + ": " + std::strerror(err));
    }

    // COMMIT POINT. Until this rename returns, readers of `path` see
    // the old content (or nothing); after it, the new content — whose
    // bytes the fsync above already made durable.
    checkpoint(site_prefix + ".rename");
    if (::rename(tmp.c_str(), path.c_str()) != 0) {
        int err = errno;
        throw IoError("rename " + tmp + " -> " + path + ": " +
                      std::strerror(err));
    }

    // Make the rename itself (the directory entry) durable. A crash
    // between the rename and this fsync can lose the *rename* but
    // never produce a half-written file under the final name.
    fsyncDir(parentDir(path), site_prefix);
}

std::string
readFileBytes(const std::string &path, const std::string &site_prefix)
{
    checkpoint(site_prefix + ".read");
    int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
        int err = errno;
        throw IoError("open " + path + ": " + std::strerror(err));
    }
    FdGuard guard{fd};

    std::string out;
    struct stat st;
    if (::fstat(fd, &st) == 0 && st.st_size > 0)
        out.reserve(static_cast<size_t>(st.st_size));

    char buf[1 << 16];
    for (;;) {
        ssize_t n = ::read(fd, buf, sizeof(buf));
        if (n < 0) {
            if (errno == EINTR)
                continue;
            int err = errno;
            throw IoError("read " + path + ": " + std::strerror(err));
        }
        if (n == 0)
            break;
        out.append(buf, static_cast<size_t>(n));
    }
    return out;
}

void
fsyncDir(const std::string &dir, const std::string &site_prefix)
{
    checkpoint(site_prefix + ".dir_fsync");
    int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (fd < 0) {
        int err = errno;
        throw IoError("open dir " + dir + ": " + std::strerror(err));
    }
    FdGuard guard{fd};
    if (::fsync(fd) != 0) {
        int err = errno;
        throw IoError("fsync dir " + dir + ": " + std::strerror(err));
    }
}

bool
removeFile(const std::string &path)
{
    if (::unlink(path.c_str()) == 0)
        return true;
    if (errno == ENOENT)
        return false;
    int err = errno;
    throw IoError("unlink " + path + ": " + std::strerror(err));
}

} // namespace uops
