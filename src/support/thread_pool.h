/**
 * @file
 * A small work-stealing thread pool.
 *
 * Built for the batch characterization engine (core/batch.h): full-ISA
 * sweeps are embarrassingly parallel per (instruction variant, uarch)
 * task, but task costs vary by orders of magnitude (a NOP vs. a divider
 * chain), so static partitioning leaves workers idle. Each worker owns
 * a deque; it pops from the back of its own deque (LIFO, cache-warm)
 * and steals from the front of a victim's deque (FIFO, oldest — and on
 * sweeps, typically largest remaining — work first).
 *
 * Stealing here is a *scheduling policy*, not a lock-free structure:
 * all deques are guarded by one pool mutex. Tasks in this codebase
 * run for milliseconds (a full simulator measurement), so a ~100 ns
 * critical section per dequeue is irrelevant at the pool sizes the
 * sweep uses; do not add per-queue locks or atomics without a
 * workload that shows contention.
 *
 * Tasks receive the index of the executing worker, which lets callers
 * keep per-worker state (e.g. one simulator pipeline per worker)
 * without locking.
 */

#ifndef UOPS_SUPPORT_THREAD_POOL_H
#define UOPS_SUPPORT_THREAD_POOL_H

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace uops {

class ThreadPool
{
  public:
    /** A unit of work; receives the executing worker's index. */
    using Task = std::function<void(size_t worker)>;

    /**
     * Start @p num_threads workers (0: one per hardware thread,
     * at least 1).
     */
    explicit ThreadPool(size_t num_threads = 0);

    /** Waits for all submitted work, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    size_t numWorkers() const { return workers_.size(); }

    /**
     * Enqueue a task. Distributed round-robin over the worker deques;
     * idle workers steal, so placement only affects locality.
     */
    void submit(Task task);

    /**
     * Block until every submitted task has finished. If any tasks
     * threw, the exception of the *earliest-submitted* faulting task
     * is rethrown here (the remaining tasks still run to completion
     * first). The choice is deterministic — it depends on submission
     * order, never on which worker reported its fault first. Any
     * further exceptions from the same wave are intentionally
     * swallowed; droppedErrors() counts them.
     */
    void wait();

    /**
     * Total task exceptions intentionally swallowed so far because a
     * lower-submission-order exception took precedence in wait().
     */
    size_t droppedErrors() const;

    /**
     * Run fn(i, worker) for every i in [0, n), spread over the pool,
     * and wait for completion. Must not be called concurrently with
     * other submissions.
     */
    void parallelFor(size_t n, const std::function<void(size_t i, size_t worker)> &fn);

  private:
    /** A queued task, tagged with its submission sequence number so
     *  error reporting is deterministic under any scheduling. */
    struct PendingTask
    {
        uint64_t seq = 0;
        Task fn;
    };

    struct WorkerQueue
    {
        std::deque<PendingTask> tasks;
    };

    void workerLoop(size_t worker);

    /** Pop from our own deque's back or steal from a victim's front. */
    bool findTask(size_t worker, PendingTask &out);

    /** Record a task fault; keeps the earliest-submitted exception. */
    void recordError(uint64_t seq, std::exception_ptr error);

    /** wait() without rethrowing (used by the destructor). */
    void drain();

    std::vector<WorkerQueue> queues_;
    std::vector<std::thread> workers_;

    mutable std::mutex mutex_;
    std::condition_variable work_available_;
    std::condition_variable all_done_;
    size_t next_queue_ = 0;    ///< round-robin submission cursor
    size_t in_flight_ = 0;     ///< queued + executing tasks
    bool shutdown_ = false;
    uint64_t next_seq_ = 0;    ///< submission sequence counter

    /** Exception of the earliest-submitted faulting task this wave. */
    std::exception_ptr pending_error_;
    uint64_t pending_error_seq_ = 0;
    size_t dropped_errors_ = 0; ///< intentionally swallowed exceptions
};

} // namespace uops

#endif // UOPS_SUPPORT_THREAD_POOL_H
