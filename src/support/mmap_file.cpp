#include "mmap_file.h"

#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include "support/fault.h"
#include "support/status.h"

namespace uops {
namespace {

[[noreturn]] void
fireFault(const std::string &site, const FaultSpec &spec,
          const std::string &path)
{
    if (spec.action == FaultSpec::Action::Crash)
        throw InjectedCrash(site);
    fatal("injected I/O error at '", site, "' (", path, ")");
}

void
checkpoint(const std::string &site, const std::string &path)
{
    if (auto spec = FaultInjector::instance().poll(site))
        fireFault(site, *spec, path);
}

} // namespace

MappedFile::MappedFile(const std::string &path) : path_(path)
{
    checkpoint("mmap.open", path);
    int fd = ::open(path.c_str(), O_RDONLY);
    fatalIf(fd < 0, "mmap: cannot open ", path, ": ",
            std::strerror(errno));

    struct stat st;
    if (::fstat(fd, &st) != 0) {
        int err = errno;
        ::close(fd);
        fatal("mmap: fstat(", path, "): ", std::strerror(err));
    }
    size_ = static_cast<size_t>(st.st_size);
    if (size_ == 0) {
        ::close(fd);
        return;
    }

    if (auto spec = FaultInjector::instance().poll("mmap.map")) {
        ::close(fd);
        fireFault("mmap.map", *spec, path);
    }
    // MAP_PRIVATE: the mapping is a stable snapshot of the pages we
    // touch; the store never rewrites a shard file in place (shard
    // names are content-addressed), so the bytes cannot shift under a
    // live generation either way.
    void *mapped =
        ::mmap(nullptr, size_, PROT_READ, MAP_PRIVATE, fd, 0);
    int err = errno;
    ::close(fd);
    fatalIf(mapped == MAP_FAILED, "mmap: mmap(", path,
            "): ", std::strerror(err));
    data_ = static_cast<const char *>(mapped);
}

MappedFile::~MappedFile()
{
    if (data_ != nullptr)
        ::munmap(const_cast<char *>(data_), size_);
}

std::shared_ptr<const MappedFile>
mapFile(const std::string &path)
{
    return std::make_shared<const MappedFile>(path);
}

} // namespace uops
