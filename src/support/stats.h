/**
 * @file
 * Small statistics helpers for measurement post-processing.
 *
 * The paper's harness repeats each measurement 100 times and averages
 * (Section 6.2); these helpers implement the aggregation plus the
 * rounding conventions used when turning cycle counts into reported
 * latency/throughput values.
 */

#ifndef UOPS_SUPPORT_STATS_H
#define UOPS_SUPPORT_STATS_H

#include <algorithm>
#include <cmath>
#include <vector>

#include "support/cycles.h"

namespace uops {

/** Arithmetic mean; 0 for an empty sample. */
inline double
mean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double sum = 0.0;
    for (double x : xs)
        sum += x;
    return sum / static_cast<double>(xs.size());
}

/** Median; 0 for an empty sample. */
inline double
median(std::vector<double> xs)
{
    if (xs.empty())
        return 0.0;
    std::sort(xs.begin(), xs.end());
    size_t n = xs.size();
    if (n % 2 == 1)
        return xs[n / 2];
    return 0.5 * (xs[n / 2 - 1] + xs[n / 2]);
}

/** Minimum; 0 for an empty sample. */
inline double
minOf(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    return *std::min_element(xs.begin(), xs.end());
}

/**
 * Round a measured cycle count to the reporting granularity used in
 * the instruction tables: integers when within @p eps of one,
 * otherwise two decimals (fractional throughputs like 0.25 stay
 * fractional). Produces the canonical fixed-point representation
 * directly — the raw double never leaves the measurement layer.
 */
inline Cycles
roundCycles(double x, double eps = 0.05)
{
    return Cycles::round(x, eps);
}

/** True when two cycle counts agree within @p eps. */
inline bool
cyclesEqual(double a, double b, double eps = 0.05)
{
    return std::abs(a - b) <= eps;
}

} // namespace uops

#endif // UOPS_SUPPORT_STATS_H
