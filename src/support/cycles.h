/**
 * @file
 * The canonical fixed-point cycle-count type.
 *
 * Algorithm 2 rounds every reported measurement to hundredths of a
 * core cycle, so the set of representable results is discrete by
 * construction. Carrying them as doubles forces every layer that
 * needs exact equality (DB ingest, snapshots, JSON responses) to
 * re-canonicalize through a decimal text round trip; Cycles instead
 * stores the integer number of hundredths and makes equality,
 * ordering, hashing and serialization exact by representation.
 *
 * Formatting is locked to the text form the XML writer has always
 * produced (shortest decimal, at most two fraction digits), so
 * artifacts stay byte-identical: Cycles::round(x).str() ==
 * xmlFormatDouble(roundCycles(x)) for every value in the measurable
 * range (|cycles| < 10^4; beyond that the legacy 6-significant-digit
 * double formatting truncated, which Cycles::str deliberately does
 * not). parse() inverts str() exactly for every representable value.
 */

#ifndef UOPS_SUPPORT_CYCLES_H
#define UOPS_SUPPORT_CYCLES_H

#include <charconv>
#include <cmath>
#include <compare>
#include <cstdint>
#include <limits>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>

#include "support/status.h"

namespace uops {

class Cycles
{
  public:
    /** Zero cycles. */
    constexpr Cycles() = default;

    /** The raw fixed-point constructor. */
    static constexpr Cycles
    fromHundredths(int64_t hundredths)
    {
        return Cycles(hundredths);
    }

    /**
     * Round a measured cycle count to the reporting granularity of
     * the instruction tables: whole cycles when within @p eps of an
     * integer, hundredths otherwise (fractional throughputs like 0.25
     * stay fractional). This is the paper's Algorithm-2 rounding and
     * the only sanctioned double -> Cycles conversion.
     */
    static Cycles
    round(double cycles, double eps = 0.05)
    {
        // Guard llround's domain: NaN / infinities / values whose
        // hundredths exceed int64 would yield an unspecified result,
        // not an error. Untrusted document text reaches here through
        // the results-XML fallback path, so fail loudly instead.
        fatalIf(!(std::abs(cycles) < 9.0e15),
                "Cycles: value out of fixed-point range: ", cycles);
        double nearest = std::round(cycles);
        if (std::abs(cycles - nearest) <= eps)
            return Cycles(std::llround(nearest) * 100);
        return Cycles(std::llround(cycles * 100.0));
    }

    /**
     * Parse the canonical decimal text form ("4", "2.5", "0.33");
     * exact inverse of str(). Empty optional on any other input —
     * including more than two fraction digits, so callers can detect
     * foreign documents carrying unrounded precision and fall back to
     * round(parseDouble(...)).
     */
    static std::optional<Cycles>
    parse(std::string_view text)
    {
        bool negative = !text.empty() && text.front() == '-';
        if (negative)
            text.remove_prefix(1);
        // The sign was consumed above; from_chars would accept a
        // second '-' into the signed whole part ("--1" -> +1), so
        // the remainder must start with a digit.
        if (text.empty() || text.front() < '0' || text.front() > '9')
            return std::nullopt;
        size_t dot = text.find('.');
        std::string_view whole_text = text.substr(0, dot);
        int64_t whole = 0;
        auto [ptr, ec] =
            std::from_chars(whole_text.data(),
                            whole_text.data() + whole_text.size(), whole);
        if (ec != std::errc() ||
            ptr != whole_text.data() + whole_text.size())
            return std::nullopt;
        int64_t frac = 0;
        if (dot != std::string_view::npos) {
            std::string_view frac_text = text.substr(dot + 1);
            if (frac_text.empty() || frac_text.size() > 2)
                return std::nullopt;
            for (char c : frac_text) {
                if (c < '0' || c > '9')
                    return std::nullopt;
                frac = frac * 10 + (c - '0');
            }
            if (frac_text.size() == 1)
                frac *= 10;
        }
        // Reject exactly the values whose hundredths overflow int64
        // (untrusted document text reaches here) — and only those, so
        // parse() stays a total inverse of str() up to the top
        // representable value.
        constexpr int64_t kMax = std::numeric_limits<int64_t>::max();
        if (whole > kMax / 100 ||
            (whole == kMax / 100 && frac > kMax % 100))
            return std::nullopt;
        int64_t hundredths = whole * 100 + frac;
        return Cycles(negative ? -hundredths : hundredths);
    }

    constexpr int64_t hundredths() const { return hundredths_; }

    /** The nearest double; for downstream arithmetic only — never
     *  feed the result back through round() expecting identity. */
    constexpr double
    toDouble() const
    {
        return static_cast<double>(hundredths_) / 100.0;
    }

    /** Smallest whole-cycle count >= this value (blockRep input). */
    constexpr int
    ceil() const
    {
        int64_t whole = hundredths_ / 100;
        if (hundredths_ > 0 && hundredths_ % 100 != 0)
            ++whole;
        return static_cast<int>(whole);
    }

    constexpr bool isZero() const { return hundredths_ == 0; }

    /** Canonical decimal text: shortest form, <= 2 fraction digits. */
    std::string
    str() const
    {
        // Unsigned magnitude so even the INT64_MIN sentinel prints
        // without overflowing on negation.
        uint64_t h = hundredths_ < 0
                         ? 0u - static_cast<uint64_t>(hundredths_)
                         : static_cast<uint64_t>(hundredths_);
        std::string out;
        if (hundredths_ < 0)
            out += '-';
        out += std::to_string(h / 100);
        int frac = static_cast<int>(h % 100);
        if (frac != 0) {
            out += '.';
            out += static_cast<char>('0' + frac / 10);
            if (frac % 10 != 0)
                out += static_cast<char>('0' + frac % 10);
        }
        return out;
    }

    friend constexpr auto operator<=>(Cycles, Cycles) = default;

  private:
    explicit constexpr Cycles(int64_t hundredths)
        : hundredths_(hundredths)
    {
    }

    int64_t hundredths_ = 0;
};

inline std::ostream &
operator<<(std::ostream &os, Cycles value)
{
    return os << value.str();
}

} // namespace uops

#endif // UOPS_SUPPORT_CYCLES_H
