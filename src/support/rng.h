/**
 * @file
 * Deterministic pseudo-random number generator.
 *
 * All stochastic behaviour in this project (measurement-noise injection,
 * IACA bug-registry perturbation selection) is seeded so that every run
 * of the tool and every test is reproducible bit-for-bit.
 */

#ifndef UOPS_SUPPORT_RNG_H
#define UOPS_SUPPORT_RNG_H

#include <cstdint>

namespace uops {

/** SplitMix64: tiny, high-quality, deterministic generator. */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) : state_(seed) {}

    /** Next raw 64-bit value. */
    uint64_t
    next()
    {
        uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    /** Uniform value in [0, bound). @p bound must be non-zero. */
    uint64_t
    nextBelow(uint64_t bound)
    {
        return next() % bound;
    }

    /** Uniform double in [0, 1). */
    double
    nextDouble()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw with probability @p p. */
    bool
    nextBool(double p)
    {
        return nextDouble() < p;
    }

  private:
    uint64_t state_;
};

} // namespace uops

#endif // UOPS_SUPPORT_RNG_H
