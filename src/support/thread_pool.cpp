#include "support/thread_pool.h"

#include "support/status.h"

namespace uops {

ThreadPool::ThreadPool(size_t num_threads)
{
    if (num_threads == 0) {
        num_threads = std::thread::hardware_concurrency();
        if (num_threads == 0)
            num_threads = 1;
    }
    queues_.resize(num_threads);
    workers_.reserve(num_threads);
    for (size_t i = 0; i < num_threads; ++i)
        workers_.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    drain();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        shutdown_ = true;
    }
    work_available_.notify_all();
    for (std::thread &t : workers_)
        t.join();
}

void
ThreadPool::submit(Task task)
{
    panicIf(!task, "ThreadPool::submit: empty task");
    {
        std::lock_guard<std::mutex> lock(mutex_);
        panicIf(shutdown_, "ThreadPool::submit after shutdown");
        queues_[next_queue_].tasks.push_back(
            PendingTask{next_seq_++, std::move(task)});
        next_queue_ = (next_queue_ + 1) % queues_.size();
        ++in_flight_;
    }
    work_available_.notify_one();
}

void
ThreadPool::drain()
{
    std::unique_lock<std::mutex> lock(mutex_);
    all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mutex_);
    all_done_.wait(lock, [this] { return in_flight_ == 0; });
    if (pending_error_) {
        std::exception_ptr error = pending_error_;
        pending_error_ = nullptr;
        std::rethrow_exception(error);
    }
}

size_t
ThreadPool::droppedErrors() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return dropped_errors_;
}

void
ThreadPool::parallelFor(size_t n,
                        const std::function<void(size_t, size_t)> &fn)
{
    for (size_t i = 0; i < n; ++i)
        submit([i, &fn](size_t worker) { fn(i, worker); });
    wait();
}

bool
ThreadPool::findTask(size_t worker, PendingTask &out)
{
    // Own deque first: newest task (LIFO) for locality.
    WorkerQueue &own = queues_[worker];
    if (!own.tasks.empty()) {
        out = std::move(own.tasks.back());
        own.tasks.pop_back();
        return true;
    }
    // Steal the oldest task of the first non-empty victim (FIFO).
    for (size_t k = 1; k < queues_.size(); ++k) {
        WorkerQueue &victim = queues_[(worker + k) % queues_.size()];
        if (!victim.tasks.empty()) {
            out = std::move(victim.tasks.front());
            victim.tasks.pop_front();
            return true;
        }
    }
    return false;
}

void
ThreadPool::recordError(uint64_t seq, std::exception_ptr error)
{
    // Called with mutex_ held. When several workers fault in one
    // wave, keep the exception of the earliest-*submitted* task so
    // wait()'s rethrow does not depend on completion order; the rest
    // are swallowed by design (the alternative — aggregating — would
    // change wait()'s type contract) and only counted.
    if (!pending_error_) {
        pending_error_ = error;
        pending_error_seq_ = seq;
        return;
    }
    ++dropped_errors_;
    if (seq < pending_error_seq_) {
        pending_error_ = error;
        pending_error_seq_ = seq;
    }
}

void
ThreadPool::workerLoop(size_t worker)
{
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        PendingTask task;
        if (findTask(worker, task)) {
            lock.unlock();
            std::exception_ptr error;
            try {
                task.fn(worker);
            } catch (...) {
                error = std::current_exception();
            }
            lock.lock();
            if (error)
                recordError(task.seq, error);
            --in_flight_;
            if (in_flight_ == 0)
                all_done_.notify_all();
            continue;
        }
        if (shutdown_)
            return;
        work_available_.wait(lock);
    }
}

} // namespace uops
