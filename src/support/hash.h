/**
 * @file
 * FNV-1a 64-bit content hashing.
 *
 * The sharded snapshot store identifies every shard file by the hash
 * of its bytes: manifests record it, incremental saves skip shards
 * whose hash is already on disk, and loaders verify it so a spliced
 * catalog is provably bit-identical to a fresh sweep. FNV-1a is not
 * cryptographic — it guards against corruption and accidental
 * mismatch, not adversaries — but it is fast, dependency-free and
 * stable across platforms, which is exactly what a content address
 * in a little-endian on-disk format needs.
 */

#ifndef UOPS_SUPPORT_HASH_H
#define UOPS_SUPPORT_HASH_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace uops {

constexpr uint64_t kFnvOffsetBasis = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

/** Hash @p bytes, optionally continuing from a previous digest. */
inline uint64_t
fnv1a64(const void *bytes, size_t size,
        uint64_t seed = kFnvOffsetBasis)
{
    const auto *p = static_cast<const unsigned char *>(bytes);
    uint64_t hash = seed;
    for (size_t i = 0; i < size; ++i) {
        hash ^= p[i];
        hash *= kFnvPrime;
    }
    return hash;
}

inline uint64_t
fnv1a64(std::string_view bytes, uint64_t seed = kFnvOffsetBasis)
{
    return fnv1a64(bytes.data(), bytes.size(), seed);
}

/** Canonical fixed-width lowercase-hex rendering of a digest. */
inline std::string
hashHex(uint64_t hash)
{
    static const char digits[] = "0123456789abcdef";
    std::string out(16, '0');
    for (int i = 15; i >= 0; --i) {
        out[static_cast<size_t>(i)] = digits[hash & 0xf];
        hash >>= 4;
    }
    return out;
}

} // namespace uops

#endif // UOPS_SUPPORT_HASH_H
