/**
 * @file
 * A minimal small-size-optimized vector for trivially copyable types.
 *
 * The simulator allocates one UopDyn per in-flight µop, and the
 * dominant cost of the old representation was the two heap-backed
 * std::vectors holding its source/destination value ids — almost
 * always 0..4 entries. SmallVector keeps up to N elements inline and
 * only spills to the heap for the rare µop with more (wide flag
 * groups plus partial-register merges).
 *
 * Deliberately restricted to trivially copyable element types: no
 * element destructors or placement-new bookkeeping, so clear() and the
 * move operations are branch-light. This is a support container for
 * hot simulator state, not a general std::vector replacement.
 */

#ifndef UOPS_SUPPORT_SMALL_VECTOR_H
#define UOPS_SUPPORT_SMALL_VECTOR_H

#include <cstddef>
#include <cstring>
#include <type_traits>

namespace uops {

template <typename T, size_t N>
class SmallVector
{
    static_assert(std::is_trivially_copyable_v<T>,
                  "SmallVector holds trivially copyable types only");
    static_assert(N > 0, "inline capacity must be non-zero");

  public:
    SmallVector() = default;

    SmallVector(const SmallVector &other) { assignFrom(other); }

    SmallVector(SmallVector &&other) noexcept { stealFrom(other); }

    SmallVector &
    operator=(const SmallVector &other)
    {
        if (this != &other) {
            // Allocate any new heap buffer *before* releasing the old
            // one, so a throwing allocation leaves *this untouched
            // (releasing first would leave data_ dangling for the
            // destructor).
            if (other.size_ > N) {
                T *heap = new T[other.capacity_];
                std::memcpy(heap, other.data_,
                            other.size_ * sizeof(T));
                releaseHeap();
                data_ = heap;
                capacity_ = other.capacity_;
            } else {
                releaseHeap();
                data_ = inline_;
                capacity_ = N;
                std::memcpy(inline_, other.data_,
                            other.size_ * sizeof(T));
            }
            size_ = other.size_;
        }
        return *this;
    }

    SmallVector &
    operator=(SmallVector &&other) noexcept
    {
        if (this != &other) {
            releaseHeap();
            stealFrom(other);
        }
        return *this;
    }

    ~SmallVector() { releaseHeap(); }

    size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    const T *begin() const { return data_; }
    const T *end() const { return data_ + size_; }
    T *begin() { return data_; }
    T *end() { return data_ + size_; }

    T &operator[](size_t i) { return data_[i]; }
    const T &operator[](size_t i) const { return data_[i]; }

    void
    push_back(const T &value)
    {
        if (size_ == capacity_) {
            // Copy first: @p value may alias an element of this
            // vector, and grow() frees the old buffer.
            T copy = value;
            grow();
            data_[size_++] = copy;
            return;
        }
        data_[size_++] = value;
    }

    void
    clear()
    {
        size_ = 0;
    }

  private:
    void
    grow()
    {
        size_t new_cap = capacity_ * 2;
        T *heap = new T[new_cap];
        std::memcpy(heap, data_, size_ * sizeof(T));
        releaseHeap();
        data_ = heap;
        capacity_ = new_cap;
    }

    void
    releaseHeap()
    {
        if (data_ != inline_)
            delete[] data_;
    }

    void
    assignFrom(const SmallVector &other)
    {
        size_ = other.size_;
        if (size_ <= N) {
            data_ = inline_;
            capacity_ = N;
        } else {
            data_ = new T[other.capacity_];
            capacity_ = other.capacity_;
        }
        std::memcpy(data_, other.data_, size_ * sizeof(T));
    }

    void
    stealFrom(SmallVector &other) noexcept
    {
        size_ = other.size_;
        if (other.data_ == other.inline_) {
            data_ = inline_;
            capacity_ = N;
            std::memcpy(inline_, other.inline_, size_ * sizeof(T));
        } else {
            data_ = other.data_;
            capacity_ = other.capacity_;
            other.data_ = other.inline_;
            other.capacity_ = N;
        }
        other.size_ = 0;
    }

    T inline_[N];
    T *data_ = inline_;
    size_t size_ = 0;
    size_t capacity_ = N;
};

} // namespace uops

#endif // UOPS_SUPPORT_SMALL_VECTOR_H
