#include "strings.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cstdlib>

namespace uops {

std::string
trim(std::string_view s)
{
    size_t begin = 0;
    size_t end = s.size();
    while (begin < end && std::isspace(static_cast<unsigned char>(s[begin])))
        ++begin;
    while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1])))
        --end;
    return std::string(s.substr(begin, end - begin));
}

std::vector<std::string>
split(std::string_view s, char sep, bool trim_pieces, bool keep_empty)
{
    std::vector<std::string> out;
    size_t start = 0;
    while (start <= s.size()) {
        size_t pos = s.find(sep, start);
        std::string_view piece = (pos == std::string_view::npos)
                                     ? s.substr(start)
                                     : s.substr(start, pos - start);
        std::string item =
            trim_pieces ? trim(piece) : std::string(piece);
        if (keep_empty || !item.empty())
            out.push_back(std::move(item));
        if (pos == std::string_view::npos)
            break;
        start = pos + 1;
    }
    return out;
}

std::vector<std::string>
splitWhitespace(std::string_view s)
{
    std::vector<std::string> out;
    size_t i = 0;
    while (i < s.size()) {
        while (i < s.size() &&
               std::isspace(static_cast<unsigned char>(s[i])))
            ++i;
        size_t start = i;
        while (i < s.size() &&
               !std::isspace(static_cast<unsigned char>(s[i])))
            ++i;
        if (i > start)
            out.emplace_back(s.substr(start, i - start));
    }
    return out;
}

std::string
join(const std::vector<std::string> &pieces, std::string_view sep)
{
    std::string out;
    for (size_t i = 0; i < pieces.size(); ++i) {
        if (i > 0)
            out += sep;
        out += pieces[i];
    }
    return out;
}

bool
startsWith(std::string_view s, std::string_view prefix)
{
    return s.size() >= prefix.size() &&
           s.substr(0, prefix.size()) == prefix;
}

bool
endsWith(std::string_view s, std::string_view suffix)
{
    return s.size() >= suffix.size() &&
           s.substr(s.size() - suffix.size()) == suffix;
}

std::string
toUpper(std::string_view s)
{
    std::string out(s);
    std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
        return static_cast<char>(std::toupper(c));
    });
    return out;
}

std::string
toLower(std::string_view s)
{
    std::string out(s);
    std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
        return static_cast<char>(std::tolower(c));
    });
    return out;
}

std::optional<long>
parseInt(std::string_view s)
{
    std::string t = trim(s);
    if (t.empty())
        return std::nullopt;
    long value = 0;
    auto [ptr, ec] =
        std::from_chars(t.data(), t.data() + t.size(), value);
    if (ec != std::errc() || ptr != t.data() + t.size())
        return std::nullopt;
    return value;
}

std::optional<double>
parseDouble(std::string_view s)
{
    std::string t = trim(s);
    if (t.empty())
        return std::nullopt;
    char *end = nullptr;
    double value = std::strtod(t.c_str(), &end);
    if (end != t.c_str() + t.size())
        return std::nullopt;
    return value;
}

std::pair<std::string, std::string>
splitKeyValue(std::string_view s)
{
    size_t pos = s.find('=');
    if (pos == std::string_view::npos)
        return {trim(s), ""};
    return {trim(s.substr(0, pos)), trim(s.substr(pos + 1))};
}

} // namespace uops
