/**
 * @file
 * Per-microarchitecture timing database (lazy cache over synthesis).
 */

#ifndef UOPS_UARCH_TIMING_DB_H
#define UOPS_UARCH_TIMING_DB_H

#include <memory>
#include <vector>

#include "isa/kernel.h"
#include "uarch/timing.h"
#include "uarch/timing_synth.h"

namespace uops::uarch {

/**
 * Ground-truth timing for all instruction variants on one uarch.
 *
 * Acts as the "silicon" description the simulator executes against and
 * the reference the characterization results are validated against in
 * the test suite. Lookups synthesize lazily and cache.
 */
class TimingDb
{
  public:
    TimingDb(const isa::InstrDb &db, UArch arch)
        : db_(db), arch_(arch), cache_(db.size())
    {
    }

    UArch arch() const { return arch_; }
    const isa::InstrDb &instrDb() const { return db_; }

    /** Timing of a variant (synthesized on first use). */
    const TimingInfo &
    timing(const isa::InstrVariant &variant) const
    {
        auto &slot = cache_.at(static_cast<size_t>(variant.id()));
        if (!slot)
            slot = std::make_unique<TimingInfo>(
                synthesizeTiming(variant, arch_));
        return *slot;
    }

    /**
     * True when the first two explicit register operands of the
     * instance name the same architectural register (the zero-idiom /
     * SHLD-fast-path condition).
     */
    static bool
    sameRegOperands(const isa::InstrInstance &inst)
    {
        const isa::InstrVariant &v = *inst.variant;
        auto expl = v.explicitOperands();
        if (expl.size() < 2)
            return false;
        const auto &a = v.operand(expl[0]);
        const auto &b = v.operand(expl[1]);
        if (a.kind != isa::OpKind::Reg || b.kind != isa::OpKind::Reg)
            return false;
        return inst.ops[expl[0]].reg == inst.ops[expl[1]].reg;
    }

    /** Effective µop list for an instance (same-register override). */
    const std::vector<UopSpec> &
    uopsFor(const isa::InstrInstance &inst) const
    {
        const TimingInfo &t = timing(*inst.variant);
        if (t.same_reg_uops && sameRegOperands(inst))
            return *t.same_reg_uops;
        return t.uops;
    }

  private:
    const isa::InstrDb &db_;
    UArch arch_;
    mutable std::vector<std::unique_ptr<TimingInfo>> cache_;
};

} // namespace uops::uarch

#endif // UOPS_UARCH_TIMING_DB_H
