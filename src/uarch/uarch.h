/**
 * @file
 * Microarchitecture descriptors for the nine Intel Core generations
 * covered by the paper (Table 1), Nehalem through Coffee Lake.
 *
 * Each descriptor captures the execution-engine parameters the
 * characterization algorithms interact with: number of ports, issue
 * width, scheduler/ROB capacities, which ports host load / store-address
 * / store-data units, elimination capabilities (move elimination, zero
 * idioms), load/forwarding latencies and the inter-domain bypass
 * penalty. ISA-extension availability gates the per-uarch instruction
 * set (variant counts grow across generations as in Table 1).
 */

#ifndef UOPS_UARCH_UARCH_H
#define UOPS_UARCH_UARCH_H

#include <cstdint>
#include <string>
#include <vector>

#include "isa/instruction.h"

namespace uops::uarch {

/** The nine microarchitecture generations of Table 1. */
enum class UArch : uint8_t {
    Nehalem,
    Westmere,
    SandyBridge,
    IvyBridge,
    Haswell,
    Broadwell,
    Skylake,
    KabyLake,
    CoffeeLake,
};

/** All generations, in chronological order. */
const std::vector<UArch> &allUArches();

/** Short name used in reports ("SNB", "HSW", ...). */
std::string uarchShortName(UArch arch);

/** Full name ("Sandy Bridge", ...). */
std::string uarchName(UArch arch);

/** Parse a short name; throws on unknown. */
UArch parseUArch(const std::string &short_name);

/**
 * Bitmask over execution ports (bit i = port i).
 */
using PortMask = uint16_t;

/** Build a mask from port indices. */
PortMask portMask(std::initializer_list<int> ports);

/** Ports in a mask, ascending. */
std::vector<int> portsOf(PortMask mask);

/** Number of ports in a mask. */
int portCount(PortMask mask);

/** Canonical name, e.g. "p015". */
std::string portMaskName(PortMask mask);

/** Parse "p015"-style names. */
PortMask parsePortMask(const std::string &name);

/** Static description of one microarchitecture generation. */
struct UArchInfo
{
    UArch arch;
    std::string short_name;  ///< e.g. "SKL"
    std::string full_name;   ///< e.g. "Skylake"
    std::string processor;   ///< Tested CPU from Table 1, e.g. "Core i7-6500U"

    int num_ports;           ///< 6 (NHM..IVB) or 8 (HSW..CFL)
    int issue_width;         ///< µops issued per cycle (front end)
    int retire_width;        ///< µops retired per cycle
    int rs_size;             ///< reservation-station entries
    int rob_size;            ///< reorder-buffer entries

    PortMask load_ports;       ///< ports with a load unit
    PortMask store_addr_ports; ///< ports with a store-address AGU
    PortMask store_data_ports; ///< ports with a store-data unit

    /** Move elimination in the reorder buffer (Section 3.1). */
    bool gpr_move_elim;
    bool vec_move_elim;

    /** Zero idioms executed by the ROB (no execution port used). */
    bool zero_idiom_elim;

    /** Macro-fusion of CMP/TEST with a following Jcc (all Core
     *  generations). */
    bool fuses_cmp_jcc;

    /** Macro-fusion extended to ADD/SUB/AND/INC/DEC + Jcc
     *  (Sandy Bridge onwards). */
    bool fuses_alu_jcc;

    int gpr_load_latency;    ///< L1 load-to-use, general-purpose
    int vec_load_latency;    ///< L1 load-to-use, XMM
    int ymm_load_latency;    ///< L1 load-to-use, YMM
    int store_forward_latency; ///< store-to-load forwarding

    /** Extra cycles when an FP-domain µop consumes an int-domain
     *  result or vice versa (bypass delay, Section 5.2.1). */
    int bypass_delay;

    /** SSE instructions suffer a merge dependency while the upper
     *  YMM state is dirty (models the SSE-AVX transition issue that
     *  the separate blocking-instruction sets avoid). */
    bool sse_avx_transition;

    /** Extensions available on this generation. */
    std::vector<isa::Extension> extensions;

    /** True when @p ext is available. */
    bool hasExtension(isa::Extension ext) const;

    /** True when @p variant exists on this generation. */
    bool supports(const isa::InstrVariant &variant) const;
};

/** Descriptor for a generation (static storage). */
const UArchInfo &uarchInfo(UArch arch);

} // namespace uops::uarch

#endif // UOPS_UARCH_UARCH_H
