#include "uarch.h"

#include <algorithm>
#include <map>

#include "support/status.h"
#include "support/strings.h"

namespace uops::uarch {

const std::vector<UArch> &
allUArches()
{
    static const std::vector<UArch> all = {
        UArch::Nehalem,     UArch::Westmere, UArch::SandyBridge,
        UArch::IvyBridge,   UArch::Haswell,  UArch::Broadwell,
        UArch::Skylake,     UArch::KabyLake, UArch::CoffeeLake,
    };
    return all;
}

std::string
uarchShortName(UArch arch)
{
    return uarchInfo(arch).short_name;
}

std::string
uarchName(UArch arch)
{
    return uarchInfo(arch).full_name;
}

UArch
parseUArch(const std::string &short_name)
{
    std::string up = toUpper(short_name);
    for (UArch arch : allUArches())
        if (uarchInfo(arch).short_name == up)
            return arch;
    fatal("unknown microarchitecture '", short_name, "'");
}

PortMask
portMask(std::initializer_list<int> ports)
{
    PortMask mask = 0;
    for (int p : ports) {
        panicIf(p < 0 || p > 15, "portMask: bad port ", p);
        mask |= static_cast<PortMask>(1u << p);
    }
    return mask;
}

std::vector<int>
portsOf(PortMask mask)
{
    std::vector<int> out;
    for (int p = 0; p < 16; ++p)
        if (mask & (1u << p))
            out.push_back(p);
    return out;
}

int
portCount(PortMask mask)
{
    return static_cast<int>(portsOf(mask).size());
}

std::string
portMaskName(PortMask mask)
{
    if (mask == 0)
        return "p-";
    std::string out = "p";
    for (int p : portsOf(mask))
        out += std::to_string(p);
    return out;
}

PortMask
parsePortMask(const std::string &name)
{
    fatalIf(name.empty() || name[0] != 'p', "bad port mask '", name, "'");
    PortMask mask = 0;
    for (size_t i = 1; i < name.size(); ++i) {
        char c = name[i];
        fatalIf(c < '0' || c > '9', "bad port mask '", name, "'");
        mask |= static_cast<PortMask>(1u << (c - '0'));
    }
    return mask;
}

bool
UArchInfo::hasExtension(isa::Extension ext) const
{
    return std::find(extensions.begin(), extensions.end(), ext) !=
           extensions.end();
}

bool
UArchInfo::supports(const isa::InstrVariant &variant) const
{
    return hasExtension(variant.extension());
}

namespace {

using isa::Extension;

std::vector<Extension>
extsUpTo(UArch arch)
{
    std::vector<Extension> exts = {
        Extension::Base,  Extension::Mmx,   Extension::Sse,
        Extension::Sse2,  Extension::Sse3,  Extension::Ssse3,
        Extension::Sse41, Extension::Sse42,
    };
    auto from = [&](UArch first, std::initializer_list<Extension> more) {
        if (static_cast<int>(arch) >= static_cast<int>(first))
            exts.insert(exts.end(), more);
    };
    from(UArch::Westmere, {Extension::Aes, Extension::Clmul});
    from(UArch::SandyBridge, {Extension::Avx});
    from(UArch::IvyBridge, {Extension::F16c});
    from(UArch::Haswell, {Extension::Avx2, Extension::Bmi1,
                          Extension::Bmi2, Extension::Fma});
    from(UArch::Broadwell, {Extension::Adx});
    from(UArch::Skylake, {Extension::Sgx});
    return exts;
}

UArchInfo
makeInfo(UArch arch)
{
    UArchInfo info;
    info.arch = arch;
    info.extensions = extsUpTo(arch);
    info.issue_width = 4;
    info.retire_width = 4;
    info.store_data_ports = portMask({4});
    info.bypass_delay = 1;
    info.store_forward_latency = 5;
    info.gpr_load_latency = 4;
    info.vec_load_latency = 6;
    info.ymm_load_latency = 7;

    bool big_core = static_cast<int>(arch) >= static_cast<int>(UArch::Haswell);
    info.fuses_cmp_jcc = true;
    info.fuses_alu_jcc =
        static_cast<int>(arch) >= static_cast<int>(UArch::SandyBridge);
    info.num_ports = big_core ? 8 : 6;
    info.load_ports = big_core ? portMask({2, 3}) : PortMask{};
    info.store_addr_ports = big_core ? portMask({2, 3, 7}) : PortMask{};

    switch (arch) {
      case UArch::Nehalem:
        info.short_name = "NHM";
        info.full_name = "Nehalem";
        info.processor = "Core i5-750";
        info.rs_size = 36;
        info.rob_size = 128;
        info.load_ports = portMask({2});
        info.store_addr_ports = portMask({3});
        info.gpr_move_elim = false;
        info.vec_move_elim = false;
        info.zero_idiom_elim = false;
        info.sse_avx_transition = false;
        break;
      case UArch::Westmere:
        info.short_name = "WSM";
        info.full_name = "Westmere";
        info.processor = "Core i5-650";
        info.rs_size = 36;
        info.rob_size = 128;
        info.load_ports = portMask({2});
        info.store_addr_ports = portMask({3});
        info.gpr_move_elim = false;
        info.vec_move_elim = false;
        info.zero_idiom_elim = false;
        info.sse_avx_transition = false;
        break;
      case UArch::SandyBridge:
        info.short_name = "SNB";
        info.full_name = "Sandy Bridge";
        info.processor = "Core i7-2600";
        info.rs_size = 54;
        info.rob_size = 168;
        info.load_ports = portMask({2, 3});
        info.store_addr_ports = portMask({2, 3});
        info.gpr_move_elim = false;
        info.vec_move_elim = false;
        info.zero_idiom_elim = true;
        info.sse_avx_transition = true;
        info.gpr_load_latency = 5;
        break;
      case UArch::IvyBridge:
        info.short_name = "IVB";
        info.full_name = "Ivy Bridge";
        info.processor = "Core i5-3470";
        info.rs_size = 54;
        info.rob_size = 168;
        info.load_ports = portMask({2, 3});
        info.store_addr_ports = portMask({2, 3});
        info.gpr_move_elim = true;
        info.vec_move_elim = true;
        info.zero_idiom_elim = true;
        info.sse_avx_transition = true;
        info.gpr_load_latency = 5;
        break;
      case UArch::Haswell:
        info.short_name = "HSW";
        info.full_name = "Haswell";
        info.processor = "Xeon E3-1225 v3";
        info.rs_size = 60;
        info.rob_size = 192;
        info.gpr_move_elim = true;
        info.vec_move_elim = true;
        info.zero_idiom_elim = true;
        info.sse_avx_transition = true;
        break;
      case UArch::Broadwell:
        info.short_name = "BDW";
        info.full_name = "Broadwell";
        info.processor = "Core i5-5200U";
        info.rs_size = 60;
        info.rob_size = 192;
        info.gpr_move_elim = true;
        info.vec_move_elim = true;
        info.zero_idiom_elim = true;
        info.sse_avx_transition = true;
        break;
      case UArch::Skylake:
      case UArch::KabyLake:
      case UArch::CoffeeLake:
        if (arch == UArch::Skylake) {
            info.short_name = "SKL";
            info.full_name = "Skylake";
            info.processor = "Core i7-6500U";
        } else if (arch == UArch::KabyLake) {
            info.short_name = "KBL";
            info.full_name = "Kaby Lake";
            info.processor = "Core i7-7700";
        } else {
            info.short_name = "CFL";
            info.full_name = "Coffee Lake";
            info.processor = "Core i7-8700K";
        }
        info.rs_size = 97;
        info.rob_size = 224;
        info.gpr_move_elim = true;
        info.vec_move_elim = true;
        info.zero_idiom_elim = true;
        info.sse_avx_transition = true;
        info.store_forward_latency = 4;
        break;
    }
    return info;
}

} // namespace

const UArchInfo &
uarchInfo(UArch arch)
{
    static const std::map<UArch, UArchInfo> infos = [] {
        std::map<UArch, UArchInfo> out;
        for (UArch a : allUArches())
            out.emplace(a, makeInfo(a));
        return out;
    }();
    return infos.at(arch);
}

} // namespace uops::uarch
