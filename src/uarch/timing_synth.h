/**
 * @file
 * Ground-truth timing synthesis.
 *
 * Maps every instruction variant to its µop decomposition on a given
 * microarchitecture. The synthesis is class-based: each mnemonic
 * belongs to a functional class (ALU, shift, FP add, vector shuffle,
 * AES, ...); per-uarch parameter tables assign ports and latencies to
 * the classes; and memory-operand forms are composed generically from
 * the register form plus load / store-address / store-data µops.
 *
 * Documented per-uarch special cases (the paper's Section 7.3 case
 * studies) are implanted here: AESDEC's changing µop structure from
 * Westmere to Skylake, SHLD's same-register fast path on Skylake,
 * MOVQ2DQ / MOVDQ2Q port sets, BSWAP's 32- vs 64-bit difference, the
 * two-µop ADC/SBB on pre-Broadwell, PBLENDVB's 2*p05 on Nehalem, and
 * the (V)PCMPGT dependency-breaking behaviour.
 */

#ifndef UOPS_UARCH_TIMING_SYNTH_H
#define UOPS_UARCH_TIMING_SYNTH_H

#include "isa/instruction.h"
#include "uarch/timing.h"
#include "uarch/uarch.h"

namespace uops::uarch {

/**
 * Synthesize the ground-truth timing of @p variant on @p arch.
 *
 * @throws FatalError for variants not supported on @p arch.
 */
TimingInfo synthesizeTiming(const isa::InstrVariant &variant, UArch arch);

} // namespace uops::uarch

#endif // UOPS_UARCH_TIMING_SYNTH_H
