#include "timing.h"

#include <algorithm>
#include <limits>

#include "support/status.h"
#include "support/strings.h"

namespace uops::uarch {

std::string
OpRef::toString() const
{
    switch (kind) {
      case Kind::Operand: return "op" + std::to_string(index);
      case Kind::MemAddr: return "addr" + std::to_string(index);
      case Kind::MemData: return "mem" + std::to_string(index);
      case Kind::Temp: return "t" + std::to_string(index);
    }
    return "?";
}

int
UopSpec::writeLatency(size_t w, bool slow) const
{
    int base = (slow && latency_slow > 0) ? latency_slow : latency;
    if (w < write_extra.size())
        base += write_extra[w];
    return base;
}

int
TimingInfo::maxLatency() const
{
    int max_lat = 1;
    for (const auto &u : uops)
        for (size_t w = 0; w < u.writes.size(); ++w)
            max_lat = std::max(max_lat, u.writeLatency(w, true));
    return max_lat;
}

void
PortUsage::add(PortMask mask, int count)
{
    if (count == 0)
        return;
    for (auto &e : entries) {
        if (e.first == mask) {
            e.second += count;
            return;
        }
    }
    entries.emplace_back(mask, count);
    std::sort(entries.begin(), entries.end());
}

int
PortUsage::totalUops() const
{
    int total = 0;
    for (const auto &e : entries)
        total += e.second;
    return total;
}

bool
PortUsage::operator==(const PortUsage &other) const
{
    return entries == other.entries;
}

std::string
PortUsage::toString() const
{
    if (entries.empty())
        return "-";
    std::string out;
    for (size_t i = 0; i < entries.size(); ++i) {
        if (i)
            out += "+";
        out += std::to_string(entries[i].second) + "*" +
               portMaskName(entries[i].first);
    }
    return out;
}

PortUsage
PortUsage::fromString(const std::string &text)
{
    PortUsage usage;
    if (text.empty() || text == "-")
        return usage;
    for (const std::string &piece : split(text, '+')) {
        size_t star = piece.find('*');
        fatalIf(star == std::string::npos, "bad port usage entry '",
                piece, "'");
        auto count = parseInt(piece.substr(0, star));
        fatalIf(!count || *count <= 0, "bad port usage count in '",
                piece, "'");
        usage.add(parsePortMask(piece.substr(star + 1)),
                  static_cast<int>(*count));
    }
    return usage;
}

PortUsage
PortUsage::ofTiming(const std::vector<UopSpec> &uops)
{
    PortUsage usage;
    for (const auto &u : uops)
        usage.add(u.ports, 1);
    return usage;
}

std::optional<int>
trueLatency(const std::vector<UopSpec> &uops, int src_op, int dst_op,
            bool slow)
{
    // Value-ready times keyed by OpRef. The source operand (its
    // address register for memory operands) becomes ready at time 0;
    // all other external inputs are unconstrained (-inf, i.e. "ready
    // long ago"), per the paper's latency definition: all other
    // dependencies are not on the critical path.
    constexpr long kMinusInf = std::numeric_limits<long>::min() / 4;

    auto ready_key = [](const OpRef &ref) {
        return std::pair<int, int>(static_cast<int>(ref.kind), ref.index);
    };
    std::map<std::pair<int, int>, long> ready;

    auto input_time = [&](const OpRef &ref) -> long {
        auto it = ready.find(ready_key(ref));
        if (it != ready.end())
            return it->second;
        // External input: the source starts the clock, the rest are
        // off the critical path.
        if (ref.kind == OpRef::Kind::Operand && ref.index == src_op)
            return 0;
        if (ref.kind == OpRef::Kind::MemAddr && ref.index == src_op)
            return 0;
        if (ref.kind == OpRef::Kind::MemData && ref.index == src_op)
            return 0;
        return kMinusInf;
    };

    // µops are listed in dataflow order (temps are written before they
    // are read); a single forward pass suffices.
    for (const auto &u : uops) {
        long dispatch = kMinusInf;
        for (const auto &r : u.reads)
            dispatch = std::max(dispatch, input_time(r));
        for (size_t w = 0; w < u.writes.size(); ++w) {
            long t = dispatch == kMinusInf
                         ? kMinusInf
                         : dispatch + u.writeLatency(w, slow);
            auto key = ready_key(u.writes[w]);
            auto it = ready.find(key);
            if (it == ready.end() || it->second < t)
                ready[key] = t;
        }
    }

    auto it = ready.find({static_cast<int>(OpRef::Kind::Operand), dst_op});
    if (it == ready.end() || it->second <= 0)
        return std::nullopt;
    return static_cast<int>(it->second);
}

PortMask
timingPorts(const std::vector<UopSpec> &uops)
{
    PortMask mask = 0;
    for (const auto &u : uops)
        mask |= u.ports;
    return mask;
}

} // namespace uops::uarch
