#include "timing_synth.h"

#include <map>

#include "support/status.h"
#include "support/strings.h"

namespace uops::uarch {

using isa::InstrVariant;
using isa::OperandSpec;
using isa::OpKind;
using isa::RegClass;

namespace {

/** Per-uarch class parameters (ports and latencies). */
struct Params
{
    PortMask alu, shift, branch, lea, imul, bitscan, setcc;
    PortMask fadd, fmul, fma, vshuf, xlane, vialu, vimul, vshift, movd;
    PortMask divider; // port hosting the divider unit
    PortMask load, sta, std_p;

    int fadd_lat, fmul_lat, fma_lat, vimul_lat;

    // AES structure generations (Section 7.3.1).
    enum class AesStyle { ThreeUop6c, TwoUop7p1, OneUop7c, OneUop4c };
    AesStyle aes;

    bool adc_single;        // 1-µop ADC/SBB (Broadwell+)
    bool cmov_single;       // 1-µop CMOVcc (Skylake+); CMOVBE stays 2
    bool shld_single;       // 1-µop SHLD (Haswell+)
    bool shld_same_reg_fast;// same-register fast path (Skylake+)
    bool shift_cl_merge;    // 3-µop CL shifts (Sandy Bridge+)
    bool pmulld_double;     // 2-µop PMULLD (Haswell+)
    bool varshift_single;   // 1-µop VPSLLVD/VPSRAVD (Skylake+)
    bool blendv_single;     // 1-µop SSE blendv (Skylake+)

    // Divider values: {fast, slow} latency and occupancy.
    int div32_lat[2], div32_occ[2];
    int div64_lat[2], div64_occ[2];
    int fdiv_lat[2], fdiv_occ[2];
};

Params
makeParams(UArch arch)
{
    Params p{};
    bool big = static_cast<int>(arch) >= static_cast<int>(UArch::Haswell);
    bool skl = static_cast<int>(arch) >= static_cast<int>(UArch::Skylake);
    bool snb_plus =
        static_cast<int>(arch) >= static_cast<int>(UArch::SandyBridge);
    bool bdw_plus =
        static_cast<int>(arch) >= static_cast<int>(UArch::Broadwell);

    p.alu = big ? portMask({0, 1, 5, 6}) : portMask({0, 1, 5});
    p.shift = big ? portMask({0, 6}) : portMask({0, 5});
    p.branch = big ? portMask({6}) : portMask({5});
    p.lea = big ? portMask({1, 5}) : portMask({0, 1});
    p.imul = portMask({1});
    p.bitscan = portMask({1});
    p.setcc = big ? portMask({0, 6}) : portMask({0, 1, 5});
    p.fadd = skl ? portMask({0, 1}) : portMask({1});
    p.fmul = skl ? portMask({0, 1}) : portMask({0});
    p.fma = portMask({0, 1});
    p.vshuf = snb_plus ? portMask({5}) : portMask({0, 5});
    p.xlane = portMask({5});
    if (arch == UArch::SandyBridge || arch == UArch::IvyBridge)
        p.vialu = portMask({1, 5});
    else
        p.vialu = portMask({0, 1, 5});
    p.vimul = skl ? portMask({0, 1}) : portMask({0});
    if (arch == UArch::Nehalem || arch == UArch::Westmere)
        p.vshift = portMask({0, 5});
    else
        p.vshift = skl ? portMask({0, 1}) : portMask({0});
    p.movd = portMask({0});
    p.divider = portMask({0});

    const UArchInfo &info = uarchInfo(arch);
    p.load = info.load_ports;
    p.sta = info.store_addr_ports;
    p.std_p = info.store_data_ports;

    switch (arch) {
      case UArch::Nehalem:
      case UArch::Westmere:
        p.fadd_lat = 3; p.fmul_lat = 4; p.fma_lat = 0; p.vimul_lat = 3;
        break;
      case UArch::SandyBridge:
      case UArch::IvyBridge:
        p.fadd_lat = 3; p.fmul_lat = 5; p.fma_lat = 0; p.vimul_lat = 5;
        break;
      case UArch::Haswell:
        p.fadd_lat = 3; p.fmul_lat = 5; p.fma_lat = 5; p.vimul_lat = 5;
        break;
      case UArch::Broadwell:
        p.fadd_lat = 3; p.fmul_lat = 3; p.fma_lat = 5; p.vimul_lat = 5;
        break;
      default: // Skylake, Kaby Lake, Coffee Lake
        p.fadd_lat = 4; p.fmul_lat = 4; p.fma_lat = 4; p.vimul_lat = 5;
        break;
    }

    if (arch == UArch::Nehalem)
        p.aes = Params::AesStyle::ThreeUop6c; // no AES-NI; keep a default
    else if (arch == UArch::Westmere)
        p.aes = Params::AesStyle::ThreeUop6c;
    else if (arch == UArch::SandyBridge || arch == UArch::IvyBridge)
        p.aes = Params::AesStyle::TwoUop7p1;
    else if (!skl)
        p.aes = Params::AesStyle::OneUop7c;
    else
        p.aes = Params::AesStyle::OneUop4c;

    p.adc_single = bdw_plus;
    p.cmov_single = skl;
    p.shld_single = big;
    p.shld_same_reg_fast = skl;
    p.shift_cl_merge = snb_plus;
    p.pmulld_double = big;
    p.varshift_single = skl;
    p.blendv_single = skl;

    if (skl) {
        p.div32_lat[0] = 18; p.div32_lat[1] = 24;
        p.div32_occ[0] = 6;  p.div32_occ[1] = 10;
        p.div64_lat[0] = 30; p.div64_lat[1] = 85;
        p.div64_occ[0] = 20; p.div64_occ[1] = 60;
        p.fdiv_lat[0] = 11;  p.fdiv_lat[1] = 11; // value-independent
        p.fdiv_occ[0] = 3;   p.fdiv_occ[1] = 3;
    } else {
        p.div32_lat[0] = 20; p.div32_lat[1] = 26;
        p.div32_occ[0] = 9;  p.div32_occ[1] = 14;
        p.div64_lat[0] = 32; p.div64_lat[1] = 95;
        p.div64_occ[0] = 22; p.div64_occ[1] = 70;
        p.fdiv_lat[0] = 11;  p.fdiv_lat[1] = 14;
        p.fdiv_occ[0] = 6;   p.fdiv_occ[1] = 10;
    }
    return p;
}

/**
 * Builder over the operand structure of a variant: collects the
 * operand indices the generic patterns need and allocates temps.
 */
class Synth
{
  public:
    Synth(const InstrVariant &v, const Params &p, UArch arch)
        : v_(v), p_(p), arch_(arch)
    {
        for (size_t i = 0; i < v.numOperands(); ++i) {
            const OperandSpec &op = v.operand(i);
            if (skipOperand(op))
                continue;
            if (op.kind == OpKind::Flags)
                flags_ = static_cast<int>(i);
            if (op.kind == OpKind::Mem) {
                if (op.read)
                    mem_reads_.push_back(static_cast<int>(i));
                if (op.written)
                    mem_writes_.push_back(static_cast<int>(i));
            }
            bool reads = op.read && op.kind != OpKind::Imm;
            if (op.kind == OpKind::Flags)
                reads = op.flags_read.any();
            if (reads)
                sources_.push_back(static_cast<int>(i));
            bool writes = op.written;
            if (op.kind == OpKind::Flags)
                writes = op.flags_written.any();
            if (writes && op.kind != OpKind::Mem)
                dests_.push_back(static_cast<int>(i));
        }
    }

    /** The stack engine renames RSP updates away (PUSH/POP/CALL/RET). */
    static bool
    skipOperand(const OperandSpec &op)
    {
        return op.implicit && op.kind == OpKind::Reg &&
               op.reg_class == RegClass::Gpr64 && op.fixed_reg == 4;
    }

    int newTemp() { return next_temp_++; }

    /** Sources as OpRefs (memory reads appear as Operand placeholders
     *  replaced by load temps during composition). */
    std::vector<OpRef>
    sourceRefs() const
    {
        std::vector<OpRef> out;
        for (int i : sources_)
            out.push_back(OpRef::operand(i));
        return out;
    }

    /** Destinations (register/memory values then flags). Memory
     *  writes are placeholders redirected into store µops during
     *  composition. */
    std::vector<OpRef>
    destRefs() const
    {
        std::vector<OpRef> out;
        for (int i : dests_)
            if (i != flags_)
                out.push_back(OpRef::operand(i));
        for (int i : mem_writes_)
            out.push_back(OpRef::operand(i));
        if (flags_ >= 0 && v_.operand(flags_).flags_written.any())
            out.push_back(OpRef::operand(flags_));
        return out;
    }

    /** Memory destination refs (for the compute result). */
    std::vector<int> memWrites() const { return mem_writes_; }
    std::vector<int> memReads() const { return mem_reads_; }

    int flagsOperand() const { return flags_; }
    const std::vector<int> &sources() const { return sources_; }
    const std::vector<int> &dests() const { return dests_; }

    /** First source that is not operand @p excluded (or -1). */
    int
    otherSource(int excluded) const
    {
        for (int s : sources_)
            if (s != excluded)
                return s;
        return -1;
    }

    UopSpec
    uop(PortMask ports, std::vector<OpRef> reads, std::vector<OpRef> writes,
        int lat, Domain domain = Domain::Gpr)
    {
        UopSpec u;
        u.ports = ports;
        u.reads = std::move(reads);
        u.writes = std::move(writes);
        u.latency = lat;
        u.domain = domain;
        return u;
    }

    const InstrVariant &v_;
    const Params &p_;
    UArch arch_;
    std::vector<int> sources_;
    std::vector<int> dests_;
    std::vector<int> mem_reads_;
    std::vector<int> mem_writes_;
    int flags_ = -1;
    int next_temp_ = 0;
};

/** Vector domain from the mnemonic spelling: P-prefixed mnemonics are
 *  integer; PS/PD/SS/SD-suffixed ones are floating point. */
Domain
vecDomain(const std::string &mnemonic)
{
    std::string m = mnemonic;
    if (startsWith(m, "V"))
        m = m.substr(1);
    if (startsWith(m, "P") || m == "MOVDQA" || m == "MOVDQU")
        return Domain::IVec;
    return Domain::FVec;
}

/** Functional classes. */
enum class Cls {
    Alu, MovReg, MovImm, MovX, Lea, Xchg, Xadd, Adc, Shift, ShiftCl,
    ShiftX, ShiftD, Bswap, BitScan, Imul2, MulWide, DivGpr, Cmov, Setcc,
    Branch, CallReg, Ret, Push, Pop, Cpuid, Rdtsc, Fence, Pause, Locked,
    RepString, Prefetch, Clflush, Nop,
    Lahf,
    VIAlu, VIMul, Pmulld, VShiftImm, VShiftVar, VShiftVarNew, VShuf,
    XLane, Movq2dq, Movdq2q, MovdCross, VMov, MovMsk, Pextr, Pinsr,
    Ptest, Hadd, FAdd, FMul, FDiv, Rcp, Fma, VFLogic, Blendv, VBlendv,
    Mpsadbw, Phmin, Aes, AesImc, AesKeygen, Clmul, Cvt, CvtFromGpr,
    CvtToGpr, F16, Dpp, Comis, Mulx, Bextr, Pdep, Vzeroupper, PureLoad,
};

/** Mnemonic classification (operand-shape refinements applied later). */
Cls
classify(const InstrVariant &v)
{
    static const std::map<std::string, Cls> table = {
        {"ADD", Cls::Alu}, {"SUB", Cls::Alu}, {"AND", Cls::Alu},
        {"OR", Cls::Alu}, {"XOR", Cls::Alu}, {"CMP", Cls::Alu},
        {"TEST", Cls::Alu}, {"INC", Cls::Alu}, {"DEC", Cls::Alu},
        {"NEG", Cls::Alu}, {"NOT", Cls::Alu}, {"STC", Cls::Alu},
        {"CLC", Cls::Alu}, {"CMC", Cls::Alu}, {"CDQ", Cls::Alu},
        {"CQO", Cls::Alu}, {"LAHF", Cls::Lahf}, {"SAHF", Cls::Lahf},
        {"ANDN", Cls::Alu}, {"BLSI", Cls::Alu}, {"BLSMSK", Cls::Alu},
        {"BLSR", Cls::Alu}, {"BZHI", Cls::Alu}, {"ADCX", Cls::Alu},
        {"ADOX", Cls::Alu},
        {"MOV", Cls::MovReg}, {"MOVSX", Cls::MovX}, {"MOVZX", Cls::MovX},
        {"LEA", Cls::Lea}, {"XCHG", Cls::Xchg}, {"XADD", Cls::Xadd},
        {"ADC", Cls::Adc}, {"SBB", Cls::Adc},
        {"SHL", Cls::Shift}, {"SHR", Cls::Shift}, {"SAR", Cls::Shift},
        {"ROL", Cls::Shift}, {"ROR", Cls::Shift}, {"RORX", Cls::ShiftX},
        {"SARX", Cls::ShiftX}, {"SHLX", Cls::ShiftX},
        {"SHRX", Cls::ShiftX},
        {"SHLD", Cls::ShiftD}, {"SHRD", Cls::ShiftD},
        {"BSWAP", Cls::Bswap},
        {"BSF", Cls::BitScan}, {"BSR", Cls::BitScan},
        {"POPCNT", Cls::BitScan}, {"LZCNT", Cls::BitScan},
        {"TZCNT", Cls::BitScan}, {"CRC32", Cls::BitScan},
        {"IMUL", Cls::Imul2}, {"MUL", Cls::MulWide},
        {"DIV", Cls::DivGpr}, {"IDIV", Cls::DivGpr},
        {"CMOVZ", Cls::Cmov}, {"CMOVNZ", Cls::Cmov},
        {"CMOVB", Cls::Cmov}, {"CMOVBE", Cls::Cmov},
        {"CMOVNBE", Cls::Cmov}, {"CMOVS", Cls::Cmov},
        {"CMOVO", Cls::Cmov}, {"CMOVNB", Cls::Cmov},
        {"CMOVL", Cls::Cmov}, {"CMOVLE", Cls::Cmov},
        {"SETZ", Cls::Setcc}, {"SETNZ", Cls::Setcc},
        {"SETB", Cls::Setcc}, {"SETBE", Cls::Setcc},
        {"SETO", Cls::Setcc}, {"SETS", Cls::Setcc},
        {"SETNB", Cls::Setcc},
        {"JZ", Cls::Branch}, {"JNZ", Cls::Branch}, {"JB", Cls::Branch},
        {"JBE", Cls::Branch}, {"JMP", Cls::Branch},
        {"JS", Cls::Branch}, {"JNB", Cls::Branch},
        {"CALL", Cls::CallReg}, {"RET", Cls::Ret},
        {"PUSH", Cls::Push}, {"POP", Cls::Pop},
        {"CPUID", Cls::Cpuid}, {"RDTSC", Cls::Rdtsc},
        {"LFENCE", Cls::Fence}, {"MFENCE", Cls::Fence},
        {"SFENCE", Cls::Fence}, {"PAUSE", Cls::Pause},
        {"NOP", Cls::Nop},
        {"LOCKADD", Cls::Locked}, {"LOCKXADD", Cls::Locked},
        {"LOCKINC", Cls::Locked}, {"LOCKDEC", Cls::Locked},
        {"LOCKCMPXCHG", Cls::Locked},
        {"REPMOVSB", Cls::RepString}, {"REPSTOSB", Cls::RepString},
        {"PREFETCHT0", Cls::Prefetch},
        {"CLFLUSH", Cls::Clflush}, {"CLFLUSHOPT", Cls::Clflush},
        // Vector integer ALU.
        {"PADDB", Cls::VIAlu}, {"PADDW", Cls::VIAlu},
        {"PADDD", Cls::VIAlu}, {"PADDQ", Cls::VIAlu},
        {"PSUBB", Cls::VIAlu}, {"PSUBD", Cls::VIAlu},
        {"PADDSB", Cls::VIAlu}, {"PADDUSB", Cls::VIAlu},
        {"PAVGB", Cls::VIAlu}, {"PAND", Cls::VIAlu},
        {"PANDN", Cls::VIAlu}, {"POR", Cls::VIAlu},
        {"PXOR", Cls::VIAlu}, {"PCMPEQB", Cls::VIAlu},
        {"PCMPEQW", Cls::VIAlu}, {"PCMPEQD", Cls::VIAlu},
        {"PCMPGTB", Cls::VIAlu}, {"PCMPGTW", Cls::VIAlu},
        {"PCMPGTD", Cls::VIAlu}, {"PCMPGTQ", Cls::VIAlu},
        {"PMINUB", Cls::VIAlu}, {"PMINSB", Cls::VIAlu},
        {"PMINSD", Cls::VIAlu}, {"PMAXSD", Cls::VIAlu},
        {"PABSB", Cls::VIAlu}, {"PABSD", Cls::VIAlu},
        {"PSIGNB", Cls::VIAlu}, {"PBLENDW", Cls::VIAlu},
        {"VPADDB", Cls::VIAlu}, {"VPADDD", Cls::VIAlu},
        {"VPADDQ", Cls::VIAlu}, {"VPSUBB", Cls::VIAlu},
        {"VPSUBD", Cls::VIAlu}, {"VPAND", Cls::VIAlu},
        {"VPOR", Cls::VIAlu}, {"VPXOR", Cls::VIAlu},
        {"VPCMPEQD", Cls::VIAlu}, {"VPCMPGTB", Cls::VIAlu},
        {"VPCMPGTD", Cls::VIAlu}, {"VPCMPGTQ", Cls::VIAlu},
        {"PSUBW", Cls::VIAlu}, {"PSUBQ", Cls::VIAlu},
        {"PMINSW", Cls::VIAlu}, {"PMAXSW", Cls::VIAlu},
        {"PMAXUB", Cls::VIAlu}, {"PAVGW", Cls::VIAlu},
        {"PABSW", Cls::VIAlu}, {"PSIGND", Cls::VIAlu},
        {"VPANDN", Cls::VIAlu}, {"VPADDW", Cls::VIAlu},
        {"VPSUBW", Cls::VIAlu}, {"VPAVGB", Cls::VIAlu},
        {"VPABSD", Cls::VIAlu}, {"VPMULHW", Cls::VIMul},
        // Vector integer multiply.
        {"PMULLW", Cls::VIMul}, {"PMULHW", Cls::VIMul},
        {"PMULUDQ", Cls::VIMul}, {"PMADDWD", Cls::VIMul},
        {"PSADBW", Cls::VIMul}, {"VPMULLW", Cls::VIMul},
        {"VPMADDWD", Cls::VIMul},
        {"PMULLD", Cls::Pmulld}, {"VPMULLD", Cls::Pmulld},
        // Vector shifts.
        {"PSLLW", Cls::VShiftImm}, {"PSLLD", Cls::VShiftImm},
        {"PSLLQ", Cls::VShiftImm}, {"PSRLW", Cls::VShiftImm},
        {"PSRLD", Cls::VShiftImm}, {"PSRLQ", Cls::VShiftImm},
        {"PSRAW", Cls::VShiftImm}, {"PSRAD", Cls::VShiftImm},
        {"VPSLLD", Cls::VShiftImm}, {"VPSRLD", Cls::VShiftImm},
        {"VPSRAD", Cls::VShiftImm}, {"VPSRAW", Cls::VShiftImm},
        {"VPSRLQ", Cls::VShiftImm},
        {"VPSLLVD", Cls::VShiftVarNew}, {"VPSRAVD", Cls::VShiftVarNew},
        // Shuffles.
        {"PSHUFD", Cls::VShuf}, {"PSHUFLW", Cls::VShuf},
        {"PSHUFW", Cls::VShuf}, {"PSHUFB", Cls::VShuf},
        {"PALIGNR", Cls::VShuf}, {"PACKSSWB", Cls::VShuf},
        {"PACKUSDW", Cls::VShuf}, {"PUNPCKLBW", Cls::VShuf},
        {"PUNPCKHBW", Cls::VShuf}, {"SHUFPS", Cls::VShuf},
        {"SHUFPD", Cls::VShuf}, {"UNPCKLPS", Cls::VShuf},
        {"UNPCKHPS", Cls::VShuf}, {"INSERTPS", Cls::VShuf},
        {"MOVSLDUP", Cls::VShuf}, {"MOVDDUP", Cls::VShuf},
        {"MOVHLPS", Cls::VShuf}, {"MOVSS", Cls::VShuf},
        {"MOVSD", Cls::VShuf}, {"PMOVSXBW", Cls::VShuf},
        {"PMOVZXBW", Cls::VShuf}, {"VPERMILPS", Cls::VShuf},
        {"VSHUFPS", Cls::VShuf}, {"VUNPCKLPS", Cls::VShuf},
        {"VPSHUFD", Cls::VShuf}, {"VPSHUFB", Cls::VShuf},
        {"VPBROADCASTD", Cls::VShuf},
        {"VPERMD", Cls::XLane}, {"VPERMQ", Cls::XLane},
        {"VPERM2F128", Cls::XLane}, {"VINSERTF128", Cls::XLane},
        {"VEXTRACTF128", Cls::XLane}, {"VINSERTI128", Cls::XLane},
        {"VEXTRACTI128", Cls::XLane},
        {"MOVQ2DQ", Cls::Movq2dq}, {"MOVDQ2Q", Cls::Movdq2q},
        {"MOVD", Cls::MovdCross}, {"MOVQ", Cls::MovdCross},
        {"MOVDQA", Cls::VMov}, {"MOVDQU", Cls::VMov},
        {"MOVAPS", Cls::VMov}, {"MOVAPD", Cls::VMov},
        {"MOVUPS", Cls::VMov}, {"VMOVAPS", Cls::VMov},
        {"VMOVUPS", Cls::VMov}, {"VMOVD", Cls::MovdCross},
        {"VMOVQ", Cls::MovdCross},
        {"PMOVMSKB", Cls::MovMsk}, {"MOVMSKPS", Cls::MovMsk},
        {"MOVMSKPD", Cls::MovMsk}, {"VPMOVMSKB", Cls::MovMsk},
        {"PEXTRW", Cls::Pextr}, {"PEXTRD", Cls::Pextr},
        {"PEXTRQ", Cls::Pextr}, {"EXTRACTPS", Cls::Pextr},
        {"PINSRW", Cls::Pinsr}, {"PINSRD", Cls::Pinsr},
        {"PINSRQ", Cls::Pinsr},
        {"PTEST", Cls::Ptest}, {"VPTEST", Cls::Ptest},
        {"PHADDW", Cls::Hadd}, {"PHADDD", Cls::Hadd},
        {"HADDPS", Cls::Hadd}, {"HADDPD", Cls::Hadd},
        {"VHADDPD", Cls::Hadd}, {"VHADDPS", Cls::Hadd},
        {"PHSUBD", Cls::Hadd}, {"PHSUBW", Cls::Hadd},
        {"VPHADDD", Cls::Hadd},
        {"PACKSSDW", Cls::VShuf}, {"PUNPCKLDQ", Cls::VShuf},
        {"PUNPCKHDQ", Cls::VShuf}, {"PSHUFHW", Cls::VShuf},
        {"UNPCKLPD", Cls::VShuf}, {"UNPCKHPD", Cls::VShuf},
        {"VPACKSSWB", Cls::VShuf}, {"VPALIGNR", Cls::VShuf},
        {"VPUNPCKLBW", Cls::VShuf},
        {"SUBSS", Cls::FAdd}, {"SUBSD", Cls::FAdd},
        {"MAXSS", Cls::FAdd}, {"MAXSD", Cls::FAdd},
        {"MINSD", Cls::FAdd}, {"VSUBPD", Cls::FAdd},
        {"VMINPD", Cls::FAdd}, {"VMAXPD", Cls::FAdd},
        {"CVTPD2PS", Cls::Cvt}, {"CVTPS2PD", Cls::Cvt},
        {"VCVTTPS2DQ", Cls::Cvt}, {"VCVTSI2SD", Cls::CvtFromGpr},
        {"RSQRTSS", Cls::Rcp}, {"RCPSS", Cls::Rcp},
        {"VRCPPS", Cls::Rcp}, {"VRSQRTPS", Cls::Rcp},
        {"COMISD", Cls::Comis}, {"UCOMISS", Cls::Comis},
        {"SQRTSS", Cls::FDiv}, {"VSQRTPD", Cls::FDiv},
        {"VANDPD", Cls::VFLogic}, {"VXORPD", Cls::VFLogic},
        {"VBLENDPD", Cls::VFLogic}, {"VMOVDQA", Cls::VMov},
        {"VEXTRACTPS", Cls::Pextr}, {"VPEXTRD", Cls::Pextr},
        {"VPINSRD", Cls::Pinsr},
        {"VFMSUB132PS", Cls::Fma}, {"VFMSUB213PS", Cls::Fma},
        {"VFMADD132PD", Cls::Fma},
        // FP arithmetic.
        {"ADDPS", Cls::FAdd}, {"ADDPD", Cls::FAdd},
        {"ADDSS", Cls::FAdd}, {"ADDSD", Cls::FAdd},
        {"SUBPS", Cls::FAdd}, {"SUBPD", Cls::FAdd},
        {"MAXPS", Cls::FAdd}, {"MAXPD", Cls::FAdd},
        {"MINPS", Cls::FAdd}, {"MINPD", Cls::FAdd},
        {"MINSS", Cls::FAdd}, {"CMPPS", Cls::FAdd},
        {"CMPPD", Cls::FAdd}, {"ADDSUBPS", Cls::FAdd},
        {"ROUNDPS", Cls::FAdd}, {"ROUNDSS", Cls::FAdd},
        {"VADDPS", Cls::FAdd}, {"VADDPD", Cls::FAdd},
        {"VSUBPS", Cls::FAdd}, {"VMINPS", Cls::FAdd},
        {"VMAXPS", Cls::FAdd}, {"VCMPPS", Cls::FAdd},
        {"VADDSUBPS", Cls::FAdd}, {"VROUNDPS", Cls::FAdd},
        {"MULPS", Cls::FMul}, {"MULPD", Cls::FMul},
        {"MULSS", Cls::FMul}, {"MULSD", Cls::FMul},
        {"VMULPS", Cls::FMul}, {"VMULPD", Cls::FMul},
        {"DIVPS", Cls::FDiv}, {"DIVPD", Cls::FDiv},
        {"DIVSS", Cls::FDiv}, {"DIVSD", Cls::FDiv},
        {"VDIVPS", Cls::FDiv}, {"VDIVPD", Cls::FDiv},
        {"SQRTPS", Cls::FDiv}, {"SQRTPD", Cls::FDiv},
        {"SQRTSD", Cls::FDiv}, {"VSQRTPS", Cls::FDiv},
        {"RCPPS", Cls::Rcp}, {"RSQRTPS", Cls::Rcp},
        {"VFMADD132PS", Cls::Fma}, {"VFMADD213PS", Cls::Fma},
        {"VFMADD231PS", Cls::Fma}, {"VFMADD213SD", Cls::Fma},
        {"VFNMADD213PS", Cls::Fma},
        {"ANDPS", Cls::VFLogic}, {"ANDPD", Cls::VFLogic},
        {"ANDNPS", Cls::VFLogic}, {"ORPS", Cls::VFLogic},
        {"XORPS", Cls::VFLogic}, {"XORPD", Cls::VFLogic},
        {"VANDPS", Cls::VFLogic}, {"VORPS", Cls::VFLogic},
        {"VXORPS", Cls::VFLogic}, {"BLENDPS", Cls::VFLogic},
        {"VBLENDPS", Cls::VFLogic},
        {"PBLENDVB", Cls::Blendv}, {"BLENDVPS", Cls::Blendv},
        {"BLENDVPD", Cls::Blendv},
        {"VPBLENDVB", Cls::VBlendv}, {"VBLENDVPS", Cls::VBlendv},
        {"VBLENDVPD", Cls::VBlendv},
        {"MPSADBW", Cls::Mpsadbw}, {"VMPSADBW", Cls::Mpsadbw},
        {"PHMINPOSUW", Cls::Phmin},
        {"AESDEC", Cls::Aes}, {"AESDECLAST", Cls::Aes},
        {"AESENC", Cls::Aes}, {"AESENCLAST", Cls::Aes},
        {"VAESDEC", Cls::Aes},
        {"AESIMC", Cls::AesImc}, {"AESKEYGENASSIST", Cls::AesKeygen},
        {"PCLMULQDQ", Cls::Clmul},
        {"CVTDQ2PS", Cls::Cvt}, {"CVTPS2DQ", Cls::Cvt},
        {"CVTTPS2DQ", Cls::Cvt}, {"CVTSS2SD", Cls::Cvt},
        {"CVTSD2SS", Cls::Cvt}, {"VCVTDQ2PS", Cls::Cvt},
        {"VCVTPS2DQ", Cls::Cvt},
        {"CVTSI2SS", Cls::CvtFromGpr}, {"CVTSI2SD", Cls::CvtFromGpr},
        {"CVTSD2SI", Cls::CvtToGpr},
        {"VCVTPH2PS", Cls::F16}, {"VCVTPS2PH", Cls::F16},
        {"DPPS", Cls::Dpp}, {"DPPD", Cls::Dpp},
        {"COMISS", Cls::Comis}, {"UCOMISD", Cls::Comis},
        {"VUCOMISS", Cls::Comis},
        {"MULX", Cls::Mulx}, {"BEXTR", Cls::Bextr},
        {"PDEP", Cls::Pdep}, {"PEXT", Cls::Pdep},
        {"VZEROUPPER", Cls::Vzeroupper},
        {"VBROADCASTSS", Cls::PureLoad},
    };
    auto it = table.find(v.mnemonic());
    fatalIf(it == table.end(), "timing synthesis: unclassified mnemonic '",
            v.mnemonic(), "'");
    Cls cls = it->second;

    // Operand-shape refinements.
    if (cls == Cls::MovReg) {
        auto expl = v.explicitOperands();
        if (v.operand(expl[1]).kind == OpKind::Imm)
            return Cls::MovImm;
        return Cls::MovReg; // includes load/store forms (handled later)
    }
    if (cls == Cls::MovdCross) {
        // MOVQ/MOVD between two vector/MMX registers is a shuffle-like
        // move; GPR<->vector transfers cross domains.
        auto expl = v.explicitOperands();
        bool gpr_involved = false;
        for (int i : expl)
            if (v.operand(i).kind == OpKind::Reg &&
                isa::isGprClass(v.operand(i).reg_class))
                gpr_involved = true;
        if (!gpr_involved)
            return Cls::VMov; // MOVQ mm,mm / MOVQ x,x and memory forms
    }
    if (cls == Cls::Shift) {
        // CL-count forms have an implicit CL register operand.
        for (const auto &op : v.operands())
            if (op.kind == OpKind::Reg && op.fixed_reg == 1 &&
                op.reg_class == RegClass::Gpr8)
                return Cls::ShiftCl;
    }
    if (cls == Cls::VShiftImm) {
        // Shift-by-register (xmm count) forms are two-µop on most
        // generations.
        auto expl = v.explicitOperands();
        int reg_srcs = 0;
        for (int i : expl)
            if (v.operand(i).kind == OpKind::Reg)
                ++reg_srcs;
        if (reg_srcs >= 2)
            return Cls::VShiftVar;
    }
    if (cls == Cls::Imul2) {
        // Widening one-operand IMUL has implicit fixed accumulators.
        for (const auto &op : v.operands())
            if (op.kind == OpKind::Reg && op.fixed_reg >= 0)
                return Cls::MulWide;
    }
    if (cls == Cls::Branch && v.attrs().is_cf_reg)
        return Cls::Branch;
    return cls;
}

} // namespace

// ---------------------------------------------------------------------
// Synthesis proper.
// ---------------------------------------------------------------------

namespace {

/** Compute-phase synthesis: the register-form µops of the class. */
std::vector<UopSpec>
computeUops(Synth &s, Cls cls)
{
    const Params &p = s.p_;
    const InstrVariant &v = s.v_;
    Domain vdom = vecDomain(v.mnemonic());
    auto srcs = s.sourceRefs();
    auto dsts = s.destRefs();

    // Helper: single µop covering all sources and destinations.
    auto single = [&](PortMask ports, int lat, Domain dom) {
        return std::vector<UopSpec>{s.uop(ports, srcs, dsts, lat, dom)};
    };

    switch (cls) {
      case Cls::Nop:
      case Cls::Vzeroupper:
        return {}; // handled by the reorder buffer / rename stage
      case Cls::Alu:
        return single(p.alu, 1, Domain::Gpr);
      case Cls::Lahf:
        // LAHF/SAHF: p015 through Ivy Bridge, p06 from Haswell on
        // (the hardware side of the IACA 2.2+ SAHF discrepancy, §7.2).
        return single(s.p_.setcc, 1, Domain::Gpr);
      case Cls::MovImm:
      case Cls::MovX:
        if (!s.memWrites().empty())
            return {}; // plain store, composed by the caller
        return single(p.alu, 1, Domain::Gpr);
      case Cls::MovReg: {
        if (!s.memWrites().empty())
            return {}; // plain store
        // Register-register MOV (or load form, composed later).
        bool vec = v.hasVecOperand();
        return single(vec ? p.vialu : p.alu, 1,
                      vec ? Domain::IVec : Domain::Gpr);
      }
      case Cls::VMov:
        if (!s.memWrites().empty())
            return {}; // plain store
        return single(p.vialu, 1, vdom);
      case Cls::Lea:
        return single(p.lea, 1, Domain::Gpr);
      case Cls::Setcc:
        return single(p.setcc, 1, Domain::Gpr);
      case Cls::Branch:
        return single(p.branch, 1, Domain::Gpr);
      case Cls::BitScan: {
        auto uops = single(p.bitscan, 3, Domain::Gpr);
        return uops;
      }
      case Cls::ShiftX:
        return single(p.shift, 1, Domain::Gpr);
      case Cls::Pdep:
        return single(p.bitscan, 3, Domain::Gpr);
      case Cls::Shift: {
        // 1 µop; the flag result is produced one cycle late.
        UopSpec u = s.uop(p.shift, srcs, dsts, 1, Domain::Gpr);
        u.write_extra.assign(u.writes.size(), 0);
        for (size_t w = 0; w < u.writes.size(); ++w)
            if (u.writes[w] == OpRef::operand(s.flagsOperand()))
                u.write_extra[w] = 1;
        return {u};
      }
      case Cls::ShiftCl: {
        if (!p.shift_cl_merge)
            return single(p.shift, 1, Domain::Gpr);
        // Flag-merge microcode: flags µop + shift µop + merge µop.
        int t_flags = s.newTemp();
        int t_shift = s.newTemp();
        OpRef flags = OpRef::operand(s.flagsOperand());
        // Value operand is the first source that is not CL/flags.
        OpRef value = srcs.at(0);
        OpRef count = srcs.size() > 1 ? srcs.at(1) : srcs.at(0);
        UopSpec a = s.uop(p.alu, {flags}, {OpRef::temp(t_flags)}, 1);
        UopSpec b = s.uop(p.shift, {value, count},
                          {OpRef::temp(t_shift)}, 1);
        UopSpec c = s.uop(p.shift,
                          {OpRef::temp(t_flags), OpRef::temp(t_shift)},
                          dsts, 1);
        return {a, b, c};
      }
      case Cls::ShiftD: {
        OpRef dst_val = dsts.at(0);
        if (p.shld_single) {
            // Haswell onward: single µop on port 1, 3 cycles.
            return {s.uop(p.imul, srcs, dsts, 3, Domain::Gpr)};
        }
        bool nhm = (s.arch_ == UArch::Nehalem ||
                    s.arch_ == UArch::Westmere);
        int t = s.newTemp();
        // op1 (the second register) feeds a preparation µop; the main
        // shift µop consumes it, so lat(op0->op0) < lat(op1->op0).
        OpRef second = OpRef::operand(s.sources().at(1));
        std::vector<OpRef> main_reads = {OpRef::temp(t)};
        for (const auto &r : srcs)
            if (!(r == second))
                main_reads.push_back(r);
        UopSpec prep = s.uop(p.alu, {second}, {OpRef::temp(t)}, 1);
        UopSpec main = s.uop(p.shift, main_reads, dsts, nhm ? 3 : 2);
        (void)dst_val;
        return {prep, main};
      }
      case Cls::Bswap: {
        bool wide = v.operand(0).reg_class == RegClass::Gpr64;
        if (!wide)
            return single(p.shift, 1, Domain::Gpr);
        int t = s.newTemp();
        UopSpec a = s.uop(p.shift, srcs, {OpRef::temp(t)}, 1);
        UopSpec b = s.uop(p.alu, {OpRef::temp(t)}, dsts, 1);
        return {a, b};
      }
      case Cls::Xchg: {
        OpRef a = OpRef::operand(s.sources().at(0));
        OpRef b = OpRef::operand(s.sources().at(1));
        int t = s.newTemp();
        UopSpec u1 = s.uop(p.alu, {a}, {OpRef::temp(t)}, 1);
        UopSpec u2 = s.uop(p.alu, {b}, {a}, 1);
        UopSpec u3 = s.uop(p.alu, {OpRef::temp(t)}, {b}, 1);
        return {u1, u2, u3};
      }
      case Cls::Xadd: {
        OpRef a = OpRef::operand(s.dests().at(0));
        OpRef b = OpRef::operand(s.dests().at(1));
        OpRef flags = OpRef::operand(s.flagsOperand());
        int t = s.newTemp();
        UopSpec u1 = s.uop(p.alu, {a, b}, {OpRef::temp(t)}, 1);
        UopSpec u2 = s.uop(p.alu, {a}, {b}, 1);
        UopSpec u3 = s.uop(p.alu, {OpRef::temp(t)}, {a, flags}, 1);
        return {u1, u2, u3};
      }
      case Cls::Adc: {
        if (p.adc_single)
            return single(p.alu, 1, Domain::Gpr);
        // Two µops (the Haswell ADC case: 1*p0156 + 1*p06). The first
        // µop consumes the addend and the carry; the second merges
        // with the read-write destination (register or memory).
        int rw = -1;
        for (size_t i = 0; i < v.numOperands(); ++i)
            if (v.operand(i).readWritten() &&
                v.operand(i).kind != OpKind::Flags)
                rw = static_cast<int>(i);
        panicIf(rw < 0, "ADC/SBB without a read-write operand");
        OpRef dst = OpRef::operand(rw);
        int t = s.newTemp();
        std::vector<OpRef> first_reads;
        for (const auto &r : srcs)
            if (!(r == dst))
                first_reads.push_back(r);
        UopSpec a = s.uop(p.alu, first_reads, {OpRef::temp(t)}, 1);
        UopSpec b = s.uop(p.shift, {OpRef::temp(t), dst}, dsts, 1);
        return {a, b};
      }
      case Cls::Cmov: {
        bool two_flag_groups =
            v.mnemonic() == "CMOVBE" || v.mnemonic() == "CMOVNBE";
        if (p.cmov_single && !two_flag_groups)
            return single(p.setcc, 1, Domain::Gpr);
        OpRef flags = OpRef::operand(s.flagsOperand());
        int t = s.newTemp();
        std::vector<OpRef> rest;
        for (const auto &r : srcs)
            if (!(r == flags))
                rest.push_back(r);
        rest.push_back(OpRef::temp(t));
        PortMask ports = p.cmov_single ? p.setcc : p.alu;
        UopSpec a = s.uop(ports, {flags}, {OpRef::temp(t)}, 1);
        UopSpec b = s.uop(ports, rest, dsts, 1);
        return {a, b};
      }
      case Cls::Imul2: {
        UopSpec u = s.uop(p.imul, srcs, dsts, 3, Domain::Gpr);
        return {u};
      }
      case Cls::MulWide: {
        // Widening multiply: low result after 3c on port 1, high half
        // and flags one cycle later via an ALU µop.
        auto dests = s.dests();
        // Destinations: [hi, lo, flags] or [lo(AX), flags] for 8-bit.
        int t = s.newTemp();
        if (dests.size() >= 3) {
            OpRef hi = OpRef::operand(dests.at(0));
            OpRef lo = OpRef::operand(dests.at(1));
            OpRef flags = OpRef::operand(s.flagsOperand());
            UopSpec a = s.uop(p.imul, srcs, {lo, OpRef::temp(t)}, 3);
            UopSpec b = s.uop(p.alu, {OpRef::temp(t)}, {hi, flags}, 1);
            return {a, b};
        }
        return single(p.imul, 3, Domain::Gpr);
      }
      case Cls::Mulx: {
        auto dests = s.dests();
        OpRef hi = OpRef::operand(dests.at(0));
        OpRef lo = OpRef::operand(dests.at(1));
        int t = s.newTemp();
        UopSpec a = s.uop(p.imul, srcs, {lo, OpRef::temp(t)}, 3);
        UopSpec b = s.uop(p.vshuf == 0 ? p.alu : p.alu, {OpRef::temp(t)},
                          {hi}, 1);
        return {a, b};
      }
      case Cls::Bextr: {
        int t = s.newTemp();
        UopSpec a = s.uop(p.shift, srcs, {OpRef::temp(t)}, 1);
        UopSpec b = s.uop(p.alu, {OpRef::temp(t)}, dsts, 1);
        return {a, b};
      }
      case Cls::DivGpr: {
        int width = 32;
        for (const auto &op : v.operands())
            if (op.kind == OpKind::Reg || op.kind == OpKind::Mem)
                width = std::max(width, op.effectiveWidth());
        const int *lat = width >= 64 ? p.div64_lat : p.div32_lat;
        const int *occ = width >= 64 ? p.div64_occ : p.div32_occ;
        int t = s.newTemp();
        UopSpec d = s.uop(p.divider, srcs, {OpRef::temp(t)}, lat[0]);
        d.latency_slow = lat[1];
        d.div_occupancy = occ[0];
        d.div_occupancy_slow = occ[1];
        std::vector<UopSpec> uops = {d};
        // Distribute results to the destination registers and flags.
        for (const auto &dst : dsts)
            uops.push_back(s.uop(p.alu, {OpRef::temp(t)}, {dst}, 1));
        return uops;
      }
      case Cls::Cpuid:
      case Cls::Rdtsc: {
        int n = cls == Cls::Cpuid ? 20 : 15;
        std::vector<UopSpec> uops;
        int t = s.newTemp();
        uops.push_back(s.uop(p.alu, srcs, {OpRef::temp(t)}, 1));
        for (int i = 1; i < n - 1; ++i) {
            int t2 = s.newTemp();
            uops.push_back(
                s.uop(p.alu, {OpRef::temp(t)}, {OpRef::temp(t2)}, 1));
            t = t2;
        }
        uops.push_back(s.uop(p.alu, {OpRef::temp(t)}, dsts, 1));
        return uops;
      }
      case Cls::Fence: {
        if (v.mnemonic() == "MFENCE") {
            return {s.uop(p.sta, {}, {}, 1, Domain::Sta),
                    s.uop(p.std_p, {}, {}, 1, Domain::Std),
                    s.uop(p.alu, {}, {}, 1)};
        }
        return {s.uop(p.alu, {}, {}, 1)};
      }
      case Cls::Pause: {
        std::vector<UopSpec> uops;
        int t = s.newTemp();
        uops.push_back(s.uop(p.alu, {}, {OpRef::temp(t)}, 2));
        for (int i = 0; i < 3; ++i) {
            int t2 = s.newTemp();
            uops.push_back(
                s.uop(p.alu, {OpRef::temp(t)}, {OpRef::temp(t2)}, 2));
            t = t2;
        }
        return uops;
      }
      // Vector classes -------------------------------------------------
      case Cls::VIAlu:
        return single(p.vialu, 1, vdom);
      case Cls::VFLogic:
        return single(p.vialu, 1, Domain::FVec);
      case Cls::VIMul:
        return single(p.vimul, p.vimul_lat, Domain::IVec);
      case Cls::Pmulld: {
        if (!p.pmulld_double)
            return single(p.vimul, p.vimul_lat, Domain::IVec);
        int t = s.newTemp();
        UopSpec a = s.uop(p.vimul, srcs, {OpRef::temp(t)}, p.vimul_lat,
                          Domain::IVec);
        UopSpec b = s.uop(p.vimul, {OpRef::temp(t)}, dsts, p.vimul_lat,
                          Domain::IVec);
        return {a, b};
      }
      case Cls::VShiftImm:
        return single(p.vshift, 1, Domain::IVec);
      case Cls::VShiftVar: {
        // Shift by an XMM count: count-preparation µop + shift µop.
        OpRef count = srcs.back();
        int t = s.newTemp();
        std::vector<OpRef> rest;
        for (const auto &r : srcs)
            if (!(r == count))
                rest.push_back(r);
        rest.push_back(OpRef::temp(t));
        UopSpec a = s.uop(p.vshuf, {count}, {OpRef::temp(t)}, 1,
                          Domain::IVec);
        UopSpec b = s.uop(p.vshift, rest, dsts, 1, Domain::IVec);
        return {a, b};
      }
      case Cls::VShiftVarNew: {
        if (p.varshift_single)
            return single(p.vshift, 1, Domain::IVec);
        int t = s.newTemp();
        UopSpec a = s.uop(p.vshuf, {srcs.back()}, {OpRef::temp(t)}, 1,
                          Domain::IVec);
        std::vector<OpRef> rest(srcs.begin(), srcs.end() - 1);
        rest.push_back(OpRef::temp(t));
        UopSpec b = s.uop(p.vshift, rest, dsts, 2, Domain::IVec);
        return {a, b};
      }
      case Cls::VShuf:
        return single(p.vshuf, 1, vdom);
      case Cls::XLane:
        return single(p.xlane, 3, vdom);
      case Cls::Movq2dq: {
        // Section 7.3.3: one µop on port 0 plus one µop on p015.
        int t = s.newTemp();
        UopSpec a = s.uop(portMask({0}), srcs, {OpRef::temp(t)}, 1,
                          Domain::IVec);
        UopSpec b = s.uop(p.vialu | portMask({0}), {OpRef::temp(t)}, dsts,
                          1, Domain::IVec);
        return {a, b};
      }
      case Cls::Movdq2q: {
        // Section 7.3.4: 1*p5 + 1*p015.
        int t = s.newTemp();
        UopSpec a = s.uop(portMask({5}), srcs, {OpRef::temp(t)}, 1,
                          Domain::IVec);
        UopSpec b = s.uop(p.vialu | portMask({0}), {OpRef::temp(t)}, dsts,
                          1, Domain::IVec);
        return {a, b};
      }
      case Cls::MovdCross:
        if (!s.memWrites().empty())
            return {}; // plain store
        return single(p.movd, 2, Domain::IVec);
      case Cls::MovMsk:
        return single(p.movd, 2, Domain::IVec);
      case Cls::Pextr: {
        int t = s.newTemp();
        UopSpec a = s.uop(p.vshuf, srcs, {OpRef::temp(t)}, 1,
                          Domain::IVec);
        UopSpec b = s.uop(p.movd, {OpRef::temp(t)}, dsts, 2,
                          Domain::IVec);
        return {a, b};
      }
      case Cls::Pinsr: {
        // Insert a GPR value into a vector register: transfer µop for
        // the general-purpose source, merge µop with the vector source
        // (the destination itself for SSE, a separate source for VEX).
        OpRef vec_src = srcs.front();
        OpRef gpr_src = srcs.back();
        for (int si : s.sources()) {
            const OperandSpec &op = v.operand(static_cast<size_t>(si));
            if (op.kind != OpKind::Reg)
                continue;
            if (isa::isGprClass(op.reg_class))
                gpr_src = OpRef::operand(si);
            else
                vec_src = OpRef::operand(si);
        }
        int t = s.newTemp();
        UopSpec a = s.uop(p.movd, {gpr_src}, {OpRef::temp(t)}, 2,
                          Domain::IVec);
        UopSpec b = s.uop(p.vshuf, {vec_src, OpRef::temp(t)}, dsts, 1,
                          Domain::IVec);
        return {a, b};
      }
      case Cls::Ptest: {
        int t = s.newTemp();
        UopSpec a = s.uop(p.vialu, srcs, {OpRef::temp(t)}, 1,
                          Domain::IVec);
        UopSpec b = s.uop(portMask({0}), {OpRef::temp(t)}, dsts, 2,
                          Domain::IVec);
        return {a, b};
      }
      case Cls::Hadd: {
        bool fp = vdom == Domain::FVec;
        int t1 = s.newTemp(), t2 = s.newTemp();
        UopSpec a = s.uop(p.vshuf, srcs, {OpRef::temp(t1)}, 1, vdom);
        UopSpec b = s.uop(p.vshuf, srcs, {OpRef::temp(t2)}, 1, vdom);
        UopSpec c = s.uop(fp ? p.fadd : p.vialu,
                          {OpRef::temp(t1), OpRef::temp(t2)}, dsts,
                          fp ? p.fadd_lat : 1, vdom);
        return {a, b, c};
      }
      case Cls::FAdd:
        return single(p.fadd, p.fadd_lat, Domain::FVec);
      case Cls::FMul:
        return single(p.fmul, p.fmul_lat, Domain::FVec);
      case Cls::Fma:
        return single(p.fma, p.fma_lat, Domain::FVec);
      case Cls::Rcp:
        return single(portMask({0}), 5, Domain::FVec);
      case Cls::Phmin:
        return single(portMask({0}), 5, Domain::IVec);
      case Cls::FDiv: {
        bool pd = endsWith(v.mnemonic(), "PD") ||
                  endsWith(v.mnemonic(), "SD");
        bool sqrt = v.mnemonic().find("SQRT") != std::string::npos;
        int extra = (pd ? 3 : 0) + (sqrt ? 2 : 0);
        bool ymm = false;
        for (const auto &op : v.operands())
            if (op.kind == OpKind::Reg && op.reg_class == RegClass::Ymm)
                ymm = true;
        bool split = ymm && (s.arch_ == UArch::SandyBridge ||
                             s.arch_ == UArch::IvyBridge);
        auto make_div = [&](std::vector<OpRef> reads,
                            std::vector<OpRef> writes) {
            UopSpec d = s.uop(p.divider, std::move(reads),
                              std::move(writes), p.fdiv_lat[0] + extra,
                              Domain::FVec);
            d.latency_slow = p.fdiv_lat[1] + extra;
            d.div_occupancy = p.fdiv_occ[0] + extra / 2;
            d.div_occupancy_slow = p.fdiv_occ[1] + extra / 2;
            return d;
        };
        if (!split)
            return {make_div(srcs, dsts)};
        // 256-bit divide on SNB/IVB: two 128-bit halves.
        int t = s.newTemp();
        UopSpec lo = make_div(srcs, {OpRef::temp(t)});
        UopSpec hi = make_div({OpRef::temp(t)}, dsts);
        return {lo, hi};
      }
      case Cls::Blendv: {
        if (p.blendv_single)
            return single(p.vialu, 1, Domain::IVec);
        PortMask ports;
        if (s.arch_ == UArch::Haswell || s.arch_ == UArch::Broadwell)
            ports = portMask({5});
        else
            ports = portMask({0, 5}); // NHM/WSM/SNB/IVB (2*p05, §5.1)
        OpRef xmm0 = srcs.back();
        int t = s.newTemp();
        std::vector<OpRef> rest;
        for (const auto &r : srcs)
            if (!(r == xmm0))
                rest.push_back(r);
        UopSpec a = s.uop(ports, rest, {OpRef::temp(t)}, 1, Domain::IVec);
        UopSpec b = s.uop(ports, {OpRef::temp(t), xmm0}, dsts, 1,
                          Domain::IVec);
        return {a, b};
      }
      case Cls::VBlendv: {
        PortMask ports;
        if (s.arch_ == UArch::Haswell || s.arch_ == UArch::Broadwell)
            ports = portMask({5});
        else if (s.arch_ == UArch::SandyBridge ||
                 s.arch_ == UArch::IvyBridge)
            ports = portMask({0, 5});
        else
            ports = p.vialu; // SKL+: 2*p015
        OpRef mask = srcs.back();
        int t = s.newTemp();
        std::vector<OpRef> rest;
        for (const auto &r : srcs)
            if (!(r == mask))
                rest.push_back(r);
        UopSpec a = s.uop(ports, rest, {OpRef::temp(t)}, 1, Domain::IVec);
        UopSpec b = s.uop(ports, {OpRef::temp(t), mask}, dsts, 1,
                          Domain::IVec);
        return {a, b};
      }
      case Cls::Mpsadbw: {
        OpRef second = OpRef::operand(s.sources().size() > 1
                                          ? s.sources().at(1)
                                          : s.sources().at(0));
        int t = s.newTemp();
        std::vector<OpRef> rest;
        for (const auto &r : srcs)
            if (!(r == second))
                rest.push_back(r);
        rest.push_back(OpRef::temp(t));
        UopSpec a = s.uop(p.vshuf, {second}, {OpRef::temp(t)}, 2,
                          Domain::IVec);
        UopSpec b = s.uop(p.vialu, rest, dsts, 1, Domain::IVec);
        return {a, b};
      }
      case Cls::Aes: {
        OpRef dst = dsts.at(0);
        OpRef state = srcs.at(0);      // the read-write operand
        OpRef key = srcs.back();       // the key operand
        switch (p.aes) {
          case Params::AesStyle::ThreeUop6c: {
            // Westmere: 3 µops, 6 cycles for both operand pairs.
            int t1 = s.newTemp(), t2 = s.newTemp();
            UopSpec a = s.uop(portMask({0}), srcs, {OpRef::temp(t1)}, 2,
                              Domain::IVec);
            UopSpec b = s.uop(portMask({1}), {OpRef::temp(t1)},
                              {OpRef::temp(t2)}, 2, Domain::IVec);
            UopSpec c = s.uop(portMask({5}), {OpRef::temp(t2)}, {dst}, 2,
                              Domain::IVec);
            return {a, b, c};
          }
          case Params::AesStyle::TwoUop7p1: {
            // Sandy/Ivy Bridge: the key is only consumed by the final
            // 1-cycle XOR µop -> lat(state->dst)=8, lat(key->dst)=1.
            int t = s.newTemp();
            UopSpec a = s.uop(portMask({0}), {state}, {OpRef::temp(t)},
                              7, Domain::IVec);
            UopSpec b = s.uop(p.vialu, {OpRef::temp(t), key}, {dst}, 1,
                              Domain::IVec);
            return {a, b};
          }
          case Params::AesStyle::OneUop7c:
            return {s.uop(portMask({0}), srcs, dsts, 7, Domain::IVec)};
          case Params::AesStyle::OneUop4c:
            return {s.uop(portMask({0}), srcs, dsts, 4, Domain::IVec)};
        }
        panic("unreachable");
      }
      case Cls::AesImc: {
        int t = s.newTemp();
        UopSpec a = s.uop(portMask({0}), srcs, {OpRef::temp(t)}, 2,
                          Domain::IVec);
        UopSpec b = s.uop(p.vialu, {OpRef::temp(t)}, dsts, 2,
                          Domain::IVec);
        return {a, b};
      }
      case Cls::AesKeygen: {
        int t1 = s.newTemp(), t2 = s.newTemp();
        UopSpec a = s.uop(portMask({0}), srcs, {OpRef::temp(t1)}, 2,
                          Domain::IVec);
        UopSpec b = s.uop(p.vshuf, srcs, {OpRef::temp(t2)}, 1,
                          Domain::IVec);
        UopSpec c = s.uop(p.vialu, {OpRef::temp(t1), OpRef::temp(t2)},
                          dsts, 1, Domain::IVec);
        return {a, b, c};
      }
      case Cls::Clmul: {
        if (s.arch_ == UArch::Westmere || s.arch_ == UArch::Nehalem) {
            int t1 = s.newTemp(), t2 = s.newTemp(), t3 = s.newTemp();
            UopSpec a = s.uop(portMask({0}), srcs, {OpRef::temp(t1)}, 3,
                              Domain::IVec);
            UopSpec b = s.uop(portMask({0}), {OpRef::temp(t1)},
                              {OpRef::temp(t2)}, 3, Domain::IVec);
            UopSpec c = s.uop(portMask({1}), {OpRef::temp(t2)},
                              {OpRef::temp(t3)}, 1, Domain::IVec);
            UopSpec d = s.uop(portMask({5}), {OpRef::temp(t3)}, dsts, 1,
                              Domain::IVec);
            return {a, b, c, d};
        }
        if (static_cast<int>(s.arch_) >=
            static_cast<int>(UArch::Skylake)) {
            return {s.uop(portMask({5}), srcs, dsts, 6, Domain::IVec)};
        }
        int t = s.newTemp();
        UopSpec a = s.uop(portMask({0}), srcs, {OpRef::temp(t)}, 6,
                          Domain::IVec);
        UopSpec b = s.uop(portMask({5}), {OpRef::temp(t)}, dsts, 1,
                          Domain::IVec);
        return {a, b};
      }
      case Cls::Cvt:
        return single(portMask({1}), 3, Domain::FVec);
      case Cls::CvtFromGpr: {
        int t = s.newTemp();
        OpRef gpr = srcs.back();
        std::vector<OpRef> rest;
        for (const auto &r : srcs)
            if (!(r == gpr))
                rest.push_back(r);
        rest.push_back(OpRef::temp(t));
        UopSpec a = s.uop(p.movd, {gpr}, {OpRef::temp(t)}, 2,
                          Domain::IVec);
        UopSpec b = s.uop(portMask({1}), rest, dsts, 3, Domain::FVec);
        return {a, b};
      }
      case Cls::CvtToGpr: {
        int t = s.newTemp();
        UopSpec a = s.uop(portMask({1}), srcs, {OpRef::temp(t)}, 3,
                          Domain::FVec);
        UopSpec b = s.uop(p.movd, {OpRef::temp(t)}, dsts, 2,
                          Domain::IVec);
        return {a, b};
      }
      case Cls::F16: {
        bool widen = v.mnemonic() == "VCVTPH2PS";
        bool ymm = false;
        for (const auto &op : v.operands())
            if (op.kind == OpKind::Reg && op.reg_class == RegClass::Ymm)
                ymm = true;
        if (widen && !ymm)
            return single(portMask({1}), 4, Domain::FVec);
        int t = s.newTemp();
        UopSpec a = s.uop(portMask({1}), srcs, {OpRef::temp(t)}, 4,
                          Domain::FVec);
        UopSpec b = s.uop(p.vshuf, {OpRef::temp(t)}, dsts, 1,
                          Domain::FVec);
        return {a, b};
      }
      case Cls::Dpp: {
        bool pd = v.mnemonic() == "DPPD";
        int t1 = s.newTemp(), t2 = s.newTemp(), t3 = s.newTemp();
        UopSpec a = s.uop(p.fmul, srcs, {OpRef::temp(t1)}, p.fmul_lat,
                          Domain::FVec);
        UopSpec b = s.uop(p.vshuf, {OpRef::temp(t1)}, {OpRef::temp(t2)},
                          1, Domain::FVec);
        UopSpec c = s.uop(p.fadd, {OpRef::temp(t1), OpRef::temp(t2)},
                          pd ? dsts : std::vector<OpRef>{OpRef::temp(t3)},
                          p.fadd_lat, Domain::FVec);
        if (pd)
            return {a, b, c};
        UopSpec d = s.uop(p.vialu, {OpRef::temp(t3)}, dsts, 1,
                          Domain::FVec);
        return {a, b, c, d};
      }
      case Cls::Comis:
        return single(p.fadd, 2, Domain::FVec);
      case Cls::PureLoad:
      case Cls::Prefetch:
      case Cls::Push:
      case Cls::Pop:
      case Cls::Ret:
      case Cls::CallReg:
      case Cls::Locked:
      case Cls::RepString:
      case Cls::Clflush:
        return {}; // fully handled during composition
    }
    panic("computeUops: unhandled class");
}

/** Load latency for a memory operand consumed by @p cls. */
int
loadLatency(const UArchInfo &info, const OperandSpec &mem_op,
            const InstrVariant &v)
{
    if (mem_op.width >= 256)
        return info.ymm_load_latency;
    if (mem_op.width >= 128 || v.hasVecOperand())
        return info.vec_load_latency;
    return info.gpr_load_latency;
}

} // namespace

TimingInfo
synthesizeTiming(const InstrVariant &variant, UArch arch)
{
    const UArchInfo &info = uarchInfo(arch);
    fatalIf(!info.supports(variant), "instruction ", variant.name(),
            " is not available on ", info.short_name);

    Params params = makeParams(arch);
    Synth synth(variant, params, arch);
    Cls cls = classify(variant);

    TimingInfo timing;
    const isa::InstrAttributes &attrs = variant.attrs();
    timing.zero_idiom = attrs.zero_idiom;
    timing.dep_breaking_same_reg =
        attrs.zero_idiom || attrs.dep_breaking_same_reg;
    timing.mov_elim = false;
    if (attrs.mov_elim_candidate) {
        bool vec = variant.hasVecOperand();
        // Only full-width moves are elimination candidates; narrow
        // moves merge with the old destination value instead.
        bool full_width = true;
        for (const auto &op : variant.operands())
            if (op.kind == OpKind::Reg && op.effectiveWidth() < 32)
                full_width = false;
        timing.mov_elim = full_width &&
                          (vec ? info.vec_move_elim
                               : info.gpr_move_elim);
    }

    // ---- special whole-instruction structural classes ----
    auto loadUop = [&](int mem_idx, OpRef dst) {
        UopSpec u;
        u.ports = params.load;
        u.reads = {OpRef::memAddr(mem_idx), OpRef::memData(mem_idx)};
        u.writes = {dst};
        u.latency =
            loadLatency(info, variant.operand(mem_idx), variant);
        u.domain = Domain::Load;
        return u;
    };
    auto staUop = [&](int mem_idx) {
        UopSpec u;
        u.ports = params.sta;
        u.reads = {OpRef::memAddr(mem_idx)};
        u.writes = {};
        u.latency = 1;
        u.domain = Domain::Sta;
        return u;
    };
    auto stdUop = [&](int mem_idx, std::vector<OpRef> data) {
        UopSpec u;
        u.ports = params.std_p;
        u.reads = std::move(data);
        u.writes = {OpRef::memData(mem_idx)};
        u.latency = 1;
        u.domain = Domain::Std;
        return u;
    };

    switch (cls) {
      case Cls::Prefetch: {
        UopSpec u;
        u.ports = params.load;
        u.reads = {OpRef::memAddr(variant.memOperand())};
        u.latency = 1;
        u.domain = Domain::Load;
        timing.uops = {u};
        return timing;
      }
      case Cls::Clflush: {
        int m = variant.memOperand();
        timing.uops = {staUop(m), stdUop(m, {})};
        return timing;
      }
      case Cls::Push: {
        int m = variant.memOperand();
        std::vector<OpRef> data;
        for (int si : synth.sources())
            if (variant.operand(si).kind == OpKind::Reg)
                data.push_back(OpRef::operand(si));
        timing.uops = {staUop(m), stdUop(m, data)};
        return timing;
      }
      case Cls::Pop: {
        int m = variant.memOperand();
        timing.uops = {loadUop(m, OpRef::operand(0))};
        return timing;
      }
      case Cls::Ret: {
        int m = variant.memOperand();
        int t = 90;
        UopSpec branch = synth.uop(params.branch, {OpRef::temp(t)}, {}, 1);
        timing.uops = {loadUop(m, OpRef::temp(t)), branch};
        return timing;
      }
      case Cls::CallReg: {
        int m = variant.memOperand();
        UopSpec branch =
            synth.uop(params.branch, {OpRef::operand(0)}, {}, 1);
        timing.uops = {branch, staUop(m), stdUop(m, {})};
        return timing;
      }
      case Cls::Locked: {
        int m = variant.memOperand();
        int t_in = 90, t_out = 91;
        std::vector<OpRef> alu_reads = {OpRef::temp(t_in)};
        for (int si : synth.sources())
            if (variant.operand(si).kind != OpKind::Mem)
                alu_reads.push_back(OpRef::operand(si));
        std::vector<OpRef> alu_writes = {OpRef::temp(t_out)};
        for (int di : synth.dests())
            if (variant.operand(di).kind != OpKind::Mem)
                alu_writes.push_back(OpRef::operand(di));
        UopSpec alu = synth.uop(params.alu, alu_reads, alu_writes, 13);
        timing.uops = {loadUop(m, OpRef::temp(t_in)), alu, staUop(m),
                       stdUop(m, {OpRef::temp(t_out)})};
        return timing;
      }
      case Cls::RepString: {
        bool movs = variant.mnemonic() == "REPMOVSB";
        // Fixed-count model of a short REP sequence (variable on
        // hardware; excluded from IACA µop comparisons).
        int src_mem = -1, dst_mem = -1;
        for (size_t i = 0; i < variant.numOperands(); ++i) {
            if (variant.operand(i).kind != OpKind::Mem)
                continue;
            if (variant.operand(i).written)
                dst_mem = static_cast<int>(i);
            else
                src_mem = static_cast<int>(i);
        }
        std::vector<UopSpec> uops;
        for (int rep = 0; rep < 4; ++rep) {
            int t = 90 + rep;
            if (movs)
                uops.push_back(loadUop(src_mem, OpRef::temp(t)));
            else
                uops.push_back(synth.uop(params.alu, {},
                                         {OpRef::temp(t)}, 1));
            uops.push_back(staUop(dst_mem));
            uops.push_back(stdUop(dst_mem, {OpRef::temp(t)}));
        }
        uops.push_back(synth.uop(params.alu, {}, {}, 1));
        uops.push_back(synth.uop(params.alu, {}, {}, 1));
        timing.uops = std::move(uops);
        return timing;
      }
      case Cls::PureLoad: {
        int m = variant.memOperand();
        timing.uops = {loadUop(m, OpRef::operand(0))};
        return timing;
      }
      default:
        break;
    }

    // ---- generic path: compute µops + memory composition ----
    std::vector<UopSpec> compute = computeUops(synth, cls);

    // Pure-move loads/stores collapse to bare load / store µops.
    bool pure_move = (cls == Cls::MovReg || cls == Cls::VMov ||
                      cls == Cls::MovX || cls == Cls::MovImm ||
                      cls == Cls::MovdCross);
    std::vector<UopSpec> uops;

    // Memory reads: a load µop feeding the compute µops.
    for (int m : synth.memReads()) {
        if (pure_move && !variant.operand(m).written) {
            // MOV reg, [mem] and friends: the load writes the
            // destination directly.
            int dst = synth.dests().empty() ? 0 : synth.dests().front();
            timing.uops = {loadUop(m, OpRef::operand(dst))};
            return timing;
        }
        int t = 80 + m;
        uops.push_back(loadUop(m, OpRef::temp(t)));
        for (auto &u : compute)
            for (auto &r : u.reads)
                if (r == OpRef::operand(m))
                    r = OpRef::temp(t);
    }

    // Memory writes: redirect the compute result into a store.
    for (int m : synth.memWrites()) {
        if (compute.empty()) {
            // Plain store (MOV [mem], reg/imm).
            std::vector<OpRef> data;
            for (int si : synth.sources())
                if (variant.operand(si).kind == OpKind::Reg)
                    data.push_back(OpRef::operand(si));
            uops.push_back(staUop(m));
            uops.push_back(stdUop(m, data));
            timing.uops = std::move(uops);
            return timing;
        }
        int t = 85 + m;
        bool redirected = false;
        for (auto &u : compute) {
            for (auto &w : u.writes) {
                if (w == OpRef::operand(m)) {
                    w = OpRef::temp(t);
                    redirected = true;
                }
            }
        }
        if (!redirected) {
            // The compute result is the (register) destination; store
            // path not expected. Fall through with value temp unused.
            continue;
        }
        uops.insert(uops.end(), compute.begin(), compute.end());
        compute.clear();
        uops.push_back(staUop(m));
        uops.push_back(stdUop(m, {OpRef::temp(t)}));
    }
    uops.insert(uops.end(), compute.begin(), compute.end());
    timing.uops = std::move(uops);

    // RMW memory forms: the ALU µop must read the loaded value, which
    // the loop above already wired (mem operand was both read+written).

    // Same-register fast path for SHLD/SHRD on Skylake+ (§7.3.2).
    if (cls == Cls::ShiftD && params.shld_same_reg_fast &&
        params.shld_single) {
        Synth alt(variant, params, arch);
        std::vector<UopSpec> fast = {
            alt.uop(params.imul, alt.sourceRefs(), alt.destRefs(), 1,
                    Domain::Gpr)};
        timing.same_reg_uops = std::move(fast);
    }

    return timing;
}

} // namespace uops::uarch
