/**
 * @file
 * Ground-truth µop timing model.
 *
 * Every (microarchitecture, instruction variant) pair maps to a
 * TimingInfo: the list of µops the instruction decodes into, each with
 * an allowed-port set, a dataflow signature (which operands / internal
 * temporaries it reads and writes), a latency per written value, an
 * execution domain (for bypass delays), and divider occupancy for the
 * not-fully-pipelined divide/sqrt µops.
 *
 * The per-(source,destination)-operand-pair latency of the paper's
 * refined definition (Section 4.1) *emerges* from this dataflow graph
 * as a longest path; trueLatency() computes it analytically, and the
 * simulator realizes it cycle by cycle. This is the mechanism behind
 * the AESDEC case study (Section 7.3.1): on Sandy Bridge the
 * instruction is a 7-cycle µop feeding a 1-cycle XOR µop, so
 * lat(XMM1->XMM1) = 8 while lat(XMM2->XMM1) = 1.
 */

#ifndef UOPS_UARCH_TIMING_H
#define UOPS_UARCH_TIMING_H

#include <optional>
#include <string>
#include <vector>

#include "isa/instruction.h"
#include "uarch/uarch.h"

namespace uops::uarch {

/** Reference to a value read or written by a µop. */
struct OpRef
{
    enum class Kind : uint8_t {
        Operand, ///< Instruction operand (registers, flags) by index.
        MemAddr, ///< Address (base register) of memory operand @c index.
        MemData, ///< Memory contents of memory operand @c index.
        Temp,    ///< Intra-instruction temporary number @c index.
    };

    Kind kind = Kind::Operand;
    int index = 0;

    static OpRef operand(int i) { return {Kind::Operand, i}; }
    static OpRef memAddr(int i) { return {Kind::MemAddr, i}; }
    static OpRef memData(int i) { return {Kind::MemData, i}; }
    static OpRef temp(int i) { return {Kind::Temp, i}; }

    bool operator==(const OpRef &other) const = default;

    std::string toString() const;
};

/** Execution domain of a µop (bypass-delay classification). */
enum class Domain : uint8_t {
    Gpr,   ///< Integer / general-purpose.
    IVec,  ///< Vector integer.
    FVec,  ///< Vector floating point.
    Load,  ///< Load unit.
    Sta,   ///< Store-address AGU.
    Std,   ///< Store-data unit.
};

/** One µop of an instruction. */
struct UopSpec
{
    PortMask ports = 0;           ///< Allowed execution ports.
    std::vector<OpRef> reads;     ///< Consumed values.
    std::vector<OpRef> writes;    ///< Produced values.
    int latency = 1;              ///< Dispatch-to-ready cycles.

    /** Optional per-write extra latency (parallel to writes; values
     *  add to @c latency). Used for e.g. late flag results. */
    std::vector<int> write_extra;

    Domain domain = Domain::Gpr;

    /** For divider µops: cycles the (unpipelined) divider is busy. */
    int div_occupancy = 0;

    /** Divider value dependence: latency/occupancy for slow inputs
     *  (0 = same as fast). */
    int latency_slow = 0;
    int div_occupancy_slow = 0;

    /** Latency of write @p w for the given value class. */
    int writeLatency(size_t w, bool slow) const;
};

/** Complete timing of one instruction variant on one uarch. */
struct TimingInfo
{
    std::vector<UopSpec> uops;

    /**
     * With identical register operands the instruction is a zero
     * idiom: input dependencies are broken, and on uarches with
     * zero-idiom elimination no µop executes.
     */
    bool zero_idiom = false;

    /** Dependency broken with identical registers, µops still run. */
    bool dep_breaking_same_reg = false;

    /** Candidate for move elimination in the ROB. */
    bool mov_elim = false;

    /** Alternative timing when both register operands are identical
     *  (e.g. SHLD on Skylake, Section 7.3.2). */
    std::optional<std::vector<UopSpec>> same_reg_uops;

    /** Total µop count (execution µops). */
    int numUops() const { return static_cast<int>(uops.size()); }

    /** Maximum latency over all µop writes (used for blockRep). */
    int maxLatency() const;
};

/**
 * Port usage as inferred/reported: (port set -> µop count) pairs,
 * sorted by mask. Rendered like the paper: "3*p015+1*p23".
 */
struct PortUsage
{
    std::vector<std::pair<PortMask, int>> entries;

    void add(PortMask mask, int count);
    int totalUops() const;
    bool operator==(const PortUsage &other) const;
    std::string toString() const;

    /**
     * Parse a toString() rendering ("3*p015+1*p23"; "-" is empty).
     * The inverse used by the results-XML ingest path.
     *
     * @throws FatalError on malformed input.
     */
    static PortUsage fromString(const std::string &text);

    /** Ground-truth usage of a timing (µops grouped by port set). */
    static PortUsage ofTiming(const std::vector<UopSpec> &uops);
};

/**
 * Longest-path latency from source operand @p src_op to destination
 * operand @p dst_op through the µop dataflow graph.
 *
 * For memory source operands the path starts at the address register
 * (MemAddr), matching how the measurement chains are built; the load
 * latency itself is part of the load µop. Returns nullopt when the
 * destination does not depend on the source.
 *
 * @param uops   µop list (instruction timing).
 * @param src_op Operand index of the source.
 * @param dst_op Operand index of the destination.
 * @param slow   Divider value class.
 */
std::optional<int> trueLatency(const std::vector<UopSpec> &uops,
                               int src_op, int dst_op, bool slow = false);

/** All ports used by any µop of @p uops. */
PortMask timingPorts(const std::vector<UopSpec> &uops);

} // namespace uops::uarch

#endif // UOPS_UARCH_TIMING_H
