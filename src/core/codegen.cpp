#include "codegen.h"

#include <algorithm>

#include "support/status.h"

namespace uops::core {

using isa::InstrInstance;
using isa::InstrVariant;
using isa::Kernel;
using isa::MemLoc;
using isa::OperandSpec;
using isa::OperandValue;
using isa::OpKind;
using isa::Reg;
using isa::RegClass;

RegPool::RegPool(Zone zone) : zone_(zone)
{
    next_mem_tag_ = zone == Zone::Analyzed ? 1000 : 2000;
}

std::vector<int>
RegPool::candidates(RegClass cls, bool src) const
{
    // Reserved everywhere: RSP(4), RBP(5) (stack), R14/R15 (harness
    // reserved registers, Section 6.2), XMM0 (implicit blend mask).
    // RAX/RCX/RDX are allowed as destinations but excluded dynamically
    // when a variant pins them as implicit operands.
    std::vector<int> out;
    auto add_range = [&](std::initializer_list<int> idxs) {
        for (int i : idxs)
            out.push_back(i);
    };
    bool analyzed = zone_ == Zone::Analyzed;
    switch (cls) {
      case RegClass::Gpr8:
      case RegClass::Gpr16:
      case RegClass::Gpr32:
      case RegClass::Gpr64:
        if (analyzed)
            src ? add_range({6, 7}) : add_range({0, 1, 2, 3});
        else
            src ? add_range({12, 13}) : add_range({8, 9, 10, 11});
        break;
      case RegClass::Gpr8High:
        src ? add_range({2, 3}) : add_range({0, 1});
        break;
      case RegClass::Mmx:
        if (analyzed)
            src ? add_range({3}) : add_range({0, 1, 2});
        else
            src ? add_range({7}) : add_range({4, 5, 6});
        break;
      case RegClass::Xmm:
      case RegClass::Ymm:
        if (analyzed)
            src ? add_range({5, 6, 7}) : add_range({1, 2, 3, 4});
        else
            src ? add_range({12, 13, 14, 15})
                : add_range({8, 9, 10, 11});
        break;
      case RegClass::None:
        break;
    }
    return out;
}

isa::Reg
RegPool::pick(RegClass cls, bool src)
{
    auto cand = candidates(cls, src);
    panicIf(cand.empty(), "RegPool: no candidates for class ",
            isa::regClassName(cls));
    size_t &cur = cursor_[static_cast<int>(cls) * 2 + (src ? 1 : 0)];
    for (size_t tries = 0; tries < cand.size(); ++tries) {
        int idx = cand[cur % cand.size()];
        ++cur;
        Reg reg{cls, idx};
        bool bad = false;
        for (const Reg &ex : excluded_)
            if (isa::regUnit(ex) == isa::regUnit(reg))
                bad = true;
        if (!bad)
            return reg;
    }
    // Everything excluded: fall back to the first candidate.
    return Reg{cls, cand.front()};
}

isa::Reg
RegPool::next(RegClass cls)
{
    return pick(cls, false);
}

isa::Reg
RegPool::nextSrc(RegClass cls)
{
    return pick(cls, true);
}

void
RegPool::exclude(const Reg &reg)
{
    excluded_.push_back(reg);
}

void
RegPool::rewind()
{
    cursor_.clear();
    next_mem_tag_ = zone_ == Zone::Analyzed ? 1000 : 2000;
    mem_base_.reset();
}

MemLoc
RegPool::nextMem(RegClass base_class)
{
    // Base (address) registers are pure sources: never written.
    if (!mem_base_)
        mem_base_ = nextSrc(base_class);
    MemLoc loc;
    loc.base = *mem_base_;
    loc.tag = next_mem_tag_++;
    return loc;
}

InstrInstance
makeIndependent(const InstrVariant &variant, RegPool &pool,
                isa::DivValueClass div_class)
{
    // Exclude implicit fixed registers so explicit operands never
    // alias them.
    for (const OperandSpec &op : variant.operands())
        if (op.kind == OpKind::Reg && op.fixed_reg >= 0)
            pool.exclude(Reg{op.reg_class, op.fixed_reg});

    std::vector<OperandValue> values;
    for (int idx : variant.explicitOperands()) {
        const OperandSpec &op = variant.operand(idx);
        OperandValue val;
        switch (op.kind) {
          case OpKind::Reg:
            // Written registers rotate over the destination sub-pool
            // (WAW only, renamed away); pure sources come from the
            // never-written sub-pool so sequences stay independent.
            val.reg = op.written ? pool.next(op.reg_class)
                                 : pool.nextSrc(op.reg_class);
            break;
          case OpKind::Mem:
            val.mem = pool.nextMem();
            break;
          case OpKind::Imm:
            val.imm = 1;
            break;
          case OpKind::Flags:
            break;
        }
        values.push_back(val);
    }
    InstrInstance inst =
        isa::makeInstance(variant, values, pool.nextMem());
    if (variant.attrs().uses_divider &&
        div_class == isa::DivValueClass::None)
        inst.div_class = isa::DivValueClass::Fast;
    else
        inst.div_class = div_class;
    return inst;
}

Kernel
independentSequence(const InstrVariant &variant, RegPool &pool, int count,
                    isa::DivValueClass div_class)
{
    Kernel out;
    out.reserve(static_cast<size_t>(count));
    for (int i = 0; i < count; ++i)
        out.push_back(makeIndependent(variant, pool, div_class));
    return out;
}

namespace {

/** Self-chain latency: the instruction chained on one register. */
double
selfChain(const sim::MeasurementHarness &harness, const InstrVariant *v,
          const std::vector<OperandValue> &values)
{
    if (v == nullptr)
        return 1.0;
    Kernel body = {isa::makeInstance(*v, values)};
    return harness.measure(body).cycles;
}

} // namespace

ChainInstruments
calibrateInstruments(const sim::MeasurementHarness &harness)
{
    const isa::InstrDb &db = harness.timingDb().instrDb();
    const uarch::UArchInfo &info = harness.info();
    ChainInstruments ci;

    auto get = [&](const char *name) { return db.byName(name); };

    ci.movsx_r64_r8 = get("MOVSX_R64_R8");
    ci.movsx_r64_r16 = get("MOVSX_R64_R16");
    ci.movsx_r64_r32 = get("MOVSX_R64_R32");
    ci.test_r64 = get("TEST_R64_R64");
    ci.cmovb_r64 = get("CMOVB_R64_R64");
    ci.cmovs_r64 = get("CMOVS_R64_R64");
    ci.cmovnz_r64 = get("CMOVNZ_R64_R64");
    ci.pshufd = get("PSHUFD_X_X_I8");
    ci.shufps = get("SHUFPS_X_X_I8");
    ci.pshufw_mm = get("PSHUFW_MM_MM_I8");
    ci.xor_r64 = get("XOR_R64_R64");
    ci.mov_load_r64 = get("MOV_R64_M64");
    ci.and_r64 = get("AND_R64_R64");
    ci.or_r64 = get("OR_R64_R64");
    ci.andps = get("ANDPS_X_X");
    ci.orps = get("ORPS_X_X");
    ci.movq2dq = get("MOVQ2DQ_X_MM");
    ci.movdq2q = get("MOVDQ2Q_MM_X");
    if (info.hasExtension(isa::Extension::Avx)) {
        ci.vpermilps_x = get("VPERMILPS_X_X_I8");
        ci.vpermilps_y = get("VPERMILPS_Y_Y_I8");
    }
    if (info.hasExtension(isa::Extension::Avx2)) {
        ci.vpshufd_x = get("VPSHUFD_X_X_I8");
        ci.vpshufd_y = get("VPSHUFD_Y_Y_I8");
    }

    for (const char *name :
         {"MOVD_R32_X", "MOVQ_R64_X", "MOVD_R32_MM", "MOVQ_R64_MM"}) {
        if (const auto *v = get(name))
            ci.to_gpr.push_back(v);
    }
    for (const char *name :
         {"MOVD_X_R32", "MOVQ_X_R64", "MOVD_MM_R32", "MOVQ_MM_R64"}) {
        if (const auto *v = get(name))
            ci.from_gpr.push_back(v);
    }

    // --- calibration ---
    Reg r3{RegClass::Gpr64, 3};
    Reg r3_32{RegClass::Gpr32, 3};
    Reg x1{RegClass::Xmm, 1};

    // MOVSX self-chain: MOVSX RBX, EBX.
    ci.movsx_lat = selfChain(harness, ci.movsx_r64_r32,
                             {{.reg = r3}, {.reg = r3_32}});

    // Integer / fp shuffle self-chains: PSHUFD X1, X1, 0.
    ci.int_shuffle_lat = selfChain(
        harness, ci.pshufd, {{.reg = x1}, {.reg = x1}, {.imm = 0}});
    ci.fp_shuffle_lat = selfChain(
        harness, ci.shufps, {{.reg = x1}, {.reg = x1}, {.imm = 0}});

    // Pointer chase: MOV RBX, [RBX].
    {
        Kernel body = {isa::makeInstance(
            *ci.mov_load_r64,
            {{.reg = r3}, {.mem = MemLoc{7, r3}}})};
        ci.load_lat = harness.measure(body).cycles;
    }

    // XOR latency: self-chain XOR RBX, RBX would be a zero idiom;
    // use XOR RBX, RSI (chained on RBX) instead.
    {
        Reg rsi{RegClass::Gpr64, 6};
        Kernel body = {isa::makeInstance(*ci.xor_r64,
                                         {{.reg = r3}, {.reg = rsi}})};
        ci.xor_lat = harness.measure(body).cycles;
    }

    // TEST is assumed 1 cycle; CMOV calibrated via TEST+CMOV loop:
    // TEST RBX, RBX ; CMOVcc RBX, RSI  ->  test_lat + cmov_lat.
    ci.test_lat = 1.0;
    auto cmov_cal = [&](const InstrVariant *cmov) {
        if (cmov == nullptr || ci.test_r64 == nullptr)
            return 1.0;
        Reg rsi{RegClass::Gpr64, 6};
        Kernel body = {
            isa::makeInstance(*ci.test_r64, {{.reg = r3}, {.reg = r3}}),
            isa::makeInstance(*cmov, {{.reg = r3}, {.reg = rsi}}),
        };
        double round = harness.measure(body).cycles;
        return std::max(1.0, round - ci.test_lat);
    };
    ci.cmovb_lat = cmov_cal(ci.cmovb_r64);
    ci.cmovs_lat = cmov_cal(ci.cmovs_r64);
    ci.cmovnz_lat = cmov_cal(ci.cmovnz_r64);

    // AND+OR divider-pinning pair: AND RBX, R8 ; OR RBX, R8.
    {
        Reg r8{RegClass::Gpr64, 8};
        Kernel body = {
            isa::makeInstance(*ci.and_r64, {{.reg = r3}, {.reg = r8}}),
            isa::makeInstance(*ci.or_r64, {{.reg = r3}, {.reg = r8}}),
        };
        ci.and_or_lat = harness.measure(body).cycles;
    }

    return ci;
}

} // namespace uops::core
