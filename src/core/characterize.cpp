#include "characterize.h"

#include <cmath>

#include "sim/measurement_cache.h"
#include "support/stats.h"
#include "support/status.h"

namespace uops::core {

using isa::InstrVariant;
using uarch::UArch;

Characterizer::Characterizer(const isa::InstrDb &db, UArch arch,
                             Options options)
    : db_(db), arch_(arch), options_(std::move(options)),
      timing_(db, arch), harness_(timing_, options_.harness)
{
}

bool
Characterizer::isMeasurable(const InstrVariant &variant) const
{
    const isa::InstrAttributes &attrs = variant.attrs();
    if (!harness_.info().supports(variant))
        return false;
    // System and serializing instructions cannot be measured in loops
    // (Section 8 lists the system-instruction limitations).
    if (attrs.is_system || attrs.is_serializing)
        return false;
    if (attrs.is_pause)
        return false;
    // Register-based control flow would leave the benchmark body.
    if (attrs.is_cf_reg)
        return false;
    return true;
}

void
Characterizer::ensureSetup() const
{
    if (setup_done_)
        return;
    instruments_ = calibrateInstruments(harness_);
    BlockingFinder finder(harness_);
    sse_blocking_ = std::make_unique<BlockingSet>(finder.find(false));
    if (harness_.info().hasExtension(isa::Extension::Avx))
        avx_blocking_ = std::make_unique<BlockingSet>(finder.find(true));
    else
        avx_blocking_ = std::make_unique<BlockingSet>(*sse_blocking_);
    setup_done_ = true;
}

void
Characterizer::prepare() const
{
    ensureSetup();
}

void
Characterizer::setMeasurementCache(sim::MeasurementCache *cache)
{
    harness_.setCache(cache);
}

void
Characterizer::primeFrom(const Characterizer &other) const
{
    panicIf(&other.db_ != &db_ || other.arch_ != arch_,
            "Characterizer::primeFrom: mismatched db or uarch");
    panicIf(!other.setup_done_,
            "Characterizer::primeFrom: source is not set up");
    if (setup_done_)
        return;
    instruments_ = other.instruments_;
    sse_blocking_ = std::make_unique<BlockingSet>(*other.sse_blocking_);
    avx_blocking_ = std::make_unique<BlockingSet>(*other.avx_blocking_);
    setup_done_ = true;
}

InstrCharacterization
Characterizer::characterize(const InstrVariant &variant) const
{
    ensureSetup();
    InstrCharacterization out;
    out.variant = &variant;

    LatencyAnalyzer lat(harness_, instruments_);
    out.latency = lat.analyze(variant);

    PortUsageAnalyzer ports(harness_, *sse_blocking_, *avx_blocking_);
    out.ports = ports.analyze(variant, out.latency.maxLatency());

    ThroughputAnalyzer tp(harness_);
    out.throughput = tp.analyze(variant);

    if (!variant.attrs().uses_divider &&
        !out.ports.usage.entries.empty()) {
        out.tp_ports =
            roundCycles(ThroughputAnalyzer::computeFromPortUsage(
                out.ports.usage, harness_.info().num_ports));
    }
    return out;
}

CharacterizationSet
Characterizer::run() const
{
    ensureSetup();
    CharacterizationSet set;
    set.arch = arch_;
    set.instruments = instruments_;
    set.sse_blocking = *sse_blocking_;
    set.avx_blocking = *avx_blocking_;
    for (const InstrVariant *variant : db_.all()) {
        if (!isMeasurable(*variant))
            continue;
        if (options_.filter && !options_.filter(*variant))
            continue;
        set.instrs.push_back(characterize(*variant));
    }
    return set;
}

std::unique_ptr<XmlNode>
exportResultsXml(const CharacterizationSet &set)
{
    const uarch::UArchInfo &info = uarch::uarchInfo(set.arch);
    auto root = std::make_unique<XmlNode>("uopsInfo");
    root->attr("architecture", info.short_name);
    root->attr("processor", info.processor);
    root->attr("instructions", static_cast<long>(set.instrs.size()));

    for (const auto &c : set.instrs) {
        XmlNode &node = root->addChild("instruction");
        node.attr("name", c.variant->name());
        node.attr("mnemonic", c.variant->mnemonic());

        XmlNode &ports = node.addChild("ports");
        ports.attr("usage", c.ports.usage.toString());
        ports.attr("uops", static_cast<long>(c.ports.usage.totalUops()));

        // Results are canonical Cycles already; the writer just
        // renders their fixed-point text form.
        XmlNode &tp = node.addChild("throughput");
        tp.attr("measured", c.throughput.measured);
        if (c.throughput.with_breakers)
            tp.attr("withDepBreakers", *c.throughput.with_breakers);
        if (c.throughput.slow_measured)
            tp.attr("slowValues", *c.throughput.slow_measured);
        if (c.tp_ports)
            tp.attr("fromPorts", *c.tp_ports);

        for (const auto &pair : c.latency.pairs) {
            XmlNode &lat = node.addChild("latency");
            lat.attr("srcOp", static_cast<long>(pair.src_op));
            lat.attr("dstOp", static_cast<long>(pair.dst_op));
            lat.attr("cycles", pair.cycles);
            if (pair.upper_bound)
                lat.attr("upperBound", "1");
            if (pair.slow_cycles)
                lat.attr("slowCycles", *pair.slow_cycles);
        }
        if (c.latency.same_reg_cycles) {
            XmlNode &sr = node.addChild("latencySameReg");
            sr.attr("cycles", *c.latency.same_reg_cycles);
        }
        if (c.latency.store_roundtrip) {
            XmlNode &rt = node.addChild("storeLoadRoundTrip");
            rt.attr("cycles", *c.latency.store_roundtrip);
        }
    }
    return root;
}

double
IacaComparison::uopsAgreement() const
{
    int n = variants_compared - excluded_prefix;
    return n > 0 ? 100.0 * uops_same / n : 0.0;
}

double
IacaComparison::portsAgreement() const
{
    return ports_compared > 0 ? 100.0 * ports_same / ports_compared
                              : 0.0;
}

IacaComparison
compareWithIaca(const isa::InstrDb &db, const CharacterizationSet &set)
{
    IacaComparison cmp;
    auto versions = iaca::versionsFor(set.arch);
    if (versions.empty())
        return cmp;

    std::vector<std::unique_ptr<iaca::IacaAnalyzer>> analyzers;
    for (iaca::Version v : versions)
        analyzers.push_back(
            std::make_unique<iaca::IacaAnalyzer>(db, set.arch, v));

    for (const auto &c : set.instrs) {
        const InstrVariant &variant = *c.variant;
        ++cmp.variants_compared;
        bool prefix = variant.attrs().has_rep_prefix ||
                      variant.attrs().has_lock_prefix;
        if (prefix) {
            ++cmp.excluded_prefix;
            continue;
        }

        int measured_uops = c.ports.usage.totalUops();
        bool any_count = false;
        bool any_ports = false;
        for (const auto &an : analyzers) {
            iaca::IacaInstrModel m = an->model(variant);
            if (m.total_uops == measured_uops) {
                any_count = true;
                if (m.usage == c.ports.usage)
                    any_ports = true;
            }
        }
        if (any_count) {
            ++cmp.uops_same;
            ++cmp.ports_compared;
            if (any_ports)
                ++cmp.ports_same;
        }
    }
    return cmp;
}

} // namespace uops::core
