/**
 * @file
 * Performance-prediction tool (the paper's concluding deliverable:
 * "We have also implemented a performance-prediction tool similar to
 * Intel's IACA supporting all Intel Core microarchitectures,
 * exploiting the results obtained in the present work").
 *
 * Unlike the IACA clone (which models the closed-source tool with its
 * documented defects), this predictor consumes the *measured*
 * characterization data — per-pair latencies, inferred port usage,
 * store-forwarding behaviour — and statically predicts the steady-state
 * throughput of a loop kernel:
 *
 *   - port-pressure bound: the LP of Section 5.3.2 over the combined
 *     µop port usage of the body;
 *   - dependency bound: longest loop-carried path through registers,
 *     flags AND memory, using per-(source,destination)-pair latencies
 *     (precisely the two things IACA gets wrong, Section 7.2);
 *   - front-end bound: issue width;
 *   - divider occupancy bound.
 *
 * The prediction is validated against the simulated hardware in the
 * test suite.
 */

#ifndef UOPS_CORE_PREDICTOR_H
#define UOPS_CORE_PREDICTOR_H

#include <array>

#include "core/characterize.h"

namespace uops::core {

/** Static throughput prediction for a loop body. */
struct Prediction
{
    double block_throughput = 0.0;  ///< cycles per iteration
    double port_bound = 0.0;
    double dependency_bound = 0.0;
    double frontend_bound = 0.0;
    double divider_bound = 0.0;
    std::array<double, 8> port_pressure{};
    std::string bottleneck;         ///< "ports" | "deps" | ...

    std::string toString() const;
};

/**
 * IACA-style analyzer over measured characterization data.
 */
class PerformancePredictor
{
  public:
    /**
     * @param set Characterization results covering (at least) the
     *            instructions appearing in analyzed kernels.
     */
    explicit PerformancePredictor(const CharacterizationSet &set);

    /** Predict the steady-state cost of @p kernel as a loop body. */
    Prediction analyzeLoop(const isa::Kernel &kernel) const;

  private:
    const CharacterizationSet &set_;
    const uarch::UArchInfo &info_;
};

} // namespace uops::core

#endif // UOPS_CORE_PREDICTOR_H
