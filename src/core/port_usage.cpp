#include "port_usage.h"

#include <algorithm>
#include <cmath>

#include "support/status.h"

namespace uops::core {

using isa::InstrVariant;
using isa::Kernel;
using uarch::PortMask;

PortUsageAnalyzer::PortUsageAnalyzer(const sim::MeasurementHarness &harness,
                                     const BlockingSet &sse_set,
                                     const BlockingSet &avx_set,
                                     PortUsageOptions options)
    : harness_(harness), sse_set_(sse_set), avx_set_(avx_set),
      options_(options), finder_(harness)
{
}

uarch::PortUsage
PortUsageAnalyzer::analyzeNaive(const InstrVariant &variant) const
{
    // Agner Fog's approach: measure the per-port µop averages when the
    // instruction runs in isolation and round them.
    RegPool pool(RegPool::Zone::Analyzed);
    Kernel body = independentSequence(variant, pool, 8);
    sim::Measurement m = harness_.measure(body);

    // Group ports by rounded share: whole shares become dedicated
    // ports, the remaining fractional ports are merged into one
    // combination carrying the leftover µops. This mirrors how the
    // published tables were assembled from raw per-port averages.
    uarch::PortUsage usage;
    std::vector<std::pair<double, int>> shares;
    for (int p = 0; p < sim::kMaxPorts; ++p) {
        double s = m.port_uops[static_cast<size_t>(p)] / 8.0;
        if (s > 0.04)
            shares.emplace_back(s, p);
    }
    // Ports with share >= 0.75 are taken as dedicated (1 µop each);
    // the remaining fractional ports are merged into one combination
    // carrying the leftover µops.
    PortMask frac_mask = 0;
    double frac_uops = 0.0;
    for (const auto &[s, p] : shares) {
        double whole = std::floor(s + 0.25);
        if (whole >= 1.0)
            usage.add(static_cast<PortMask>(1u << p),
                      static_cast<int>(whole));
        double rest = s - whole;
        if (rest > 0.04) {
            frac_mask |= static_cast<PortMask>(1u << p);
            frac_uops += rest;
        }
    }
    if (frac_mask != 0 && frac_uops > 0.25)
        usage.add(frac_mask,
                  std::max(1, static_cast<int>(std::lround(frac_uops))));
    return usage;
}

PortUsageResult
PortUsageAnalyzer::analyze(const InstrVariant &variant,
                           int max_latency) const
{
    const BlockingSet &blocking =
        variant.attrs().is_avx ? avx_set_ : sse_set_;

    PortUsageResult result;
    result.isolation = finder_.measureIsolation(variant);

    int block_rep = options_.block_rep_factor * std::max(1, max_latency);
    block_rep = std::min(block_rep, options_.block_rep_cap);
    block_rep = std::max(block_rep, 8);
    result.block_rep = block_rep;

    int total_uops = static_cast<int>(
        std::lround(result.isolation.total_uops));

    // Line 1: sort the combinations by size.
    std::vector<PortMask> combos = blocking.sortedCombos();
    if (options_.no_sorting) {
        // Ablation: arbitrary (map) order.
        combos.clear();
        for (const auto &[mask, b] : blocking.combos)
            combos.push_back(mask);
    }

    // Optimization: only combinations sharing ports with the isolation
    // measurement can hold µops of this instruction. (Intersection,
    // not subset: a µop's full port set is not always visible in
    // isolation — e.g. store-address µops rarely reach port 7 when
    // ports 2/3 keep up, yet they can use it.)
    if (!options_.no_isolation_filter) {
        std::vector<PortMask> filtered;
        for (PortMask pc : combos)
            if ((pc & result.isolation.ports) != 0)
                filtered.push_back(pc);
        combos = filtered;
    }

    std::vector<std::pair<PortMask, int>> found; // (pc, µops)

    for (PortMask pc : combos) {
        // Early exit: all µops attributed.
        if (!options_.no_early_exit) {
            int sum = 0;
            for (const auto &[m, u] : found)
                sum += u;
            if (sum >= total_uops && total_uops > 0)
                break;
        }

        const BlockingInstr &blocker = blocking.combos.at(pc);

        // Line 5: blockRep copies of the blocking instruction followed
        // by the instruction under analysis. Operands are chosen from
        // disjoint pools so everything is independent. NOPs fence the
        // analyzed instruction so it never macro-fuses with a blocking
        // instruction (within a copy or across copies).
        const isa::InstrVariant *nop =
            harness_.timingDb().instrDb().byName("NOP");
        RegPool filler_pool(RegPool::Zone::Filler);
        Kernel body =
            independentSequence(*blocker.variant, filler_pool, block_rep);
        if (nop != nullptr)
            body.push_back(isa::makeInstance(*nop, {}));
        RegPool analyzed_pool(RegPool::Zone::Analyzed);
        body.push_back(makeIndependent(variant, analyzed_pool));
        if (nop != nullptr)
            body.push_back(isa::makeInstance(*nop, {}));

        sim::Measurement m = harness_.measure(body);
        ++result.measurements;

        // Line 6/7: µops on the combination's ports, minus blocking.
        double uops = 0.0;
        for (int p : uarch::portsOf(pc))
            uops += m.port_uops[static_cast<size_t>(p)];
        uops -= block_rep;

        // Lines 8-10: subtract µops attributed to strict subsets.
        if (!options_.no_subset_subtraction) {
            for (const auto &[prev_pc, prev_uops] : found)
                if (prev_pc != pc && (prev_pc & ~pc) == 0)
                    uops -= prev_uops;
        }

        int n = static_cast<int>(std::lround(uops));
        if (n > 0)
            found.emplace_back(pc, n);
    }

    for (const auto &[pc, n] : found)
        result.usage.add(pc, n);
    return result;
}

} // namespace uops::core
