/**
 * @file
 * Port-usage inference (Algorithm 1, Section 5.1.2).
 *
 * For each port combination pc (sorted by size), the analyzer
 * concatenates blockRep copies of the blocking instruction for pc with
 * the instruction under analysis, measures the number of µops executed
 * on the ports of pc, subtracts the blocking µops and the µops already
 * attributed to strict subsets of pc, and attributes the remainder to
 * pc: those µops can execute on all ports of pc but on no others.
 *
 * Both documented optimizations are implemented: the combination loop
 * is restricted to combinations compatible with the ports observed
 * when the instruction runs in isolation, and it exits early once all
 * µops of the instruction are attributed.
 */

#ifndef UOPS_CORE_PORT_USAGE_H
#define UOPS_CORE_PORT_USAGE_H

#include "core/blocking.h"
#include "uarch/timing.h"

namespace uops::core {

/** Options for the port-usage analyzer. */
struct PortUsageOptions
{
    /** Multiplier on max latency for the blocking-copy count
     *  (the paper uses the maximum number of ports, 8). */
    int block_rep_factor = 8;

    /** Cap on blocking copies (keeps divider instructions sane). */
    int block_rep_cap = 96;

    /** Disable the subset-subtraction step (ablation only). */
    bool no_subset_subtraction = false;

    /** Disable the size-sorting of combinations (ablation only). */
    bool no_sorting = false;

    /** Disable the isolation-ports restriction (ablation only). */
    bool no_isolation_filter = false;

    /** Disable early exit (ablation only). */
    bool no_early_exit = false;
};

/** Result of Algorithm 1 for one instruction. */
struct PortUsageResult
{
    uarch::PortUsage usage;
    IsolationInfo isolation;
    int block_rep = 0;
    int measurements = 0; ///< number of blocking measurements taken
};

/**
 * Runs Algorithm 1.
 */
class PortUsageAnalyzer
{
  public:
    PortUsageAnalyzer(const sim::MeasurementHarness &harness,
                      const BlockingSet &sse_set,
                      const BlockingSet &avx_set,
                      PortUsageOptions options = {});

    /**
     * Infer the port usage of @p variant.
     *
     * @param max_latency Maximum operand-pair latency (from the
     *        latency analysis; used for blockRep).
     */
    PortUsageResult analyze(const isa::InstrVariant &variant,
                            int max_latency) const;

    /**
     * Fog-style naive inference (Section 5.1): run in isolation and
     * round the per-port averages. Used as the prior-work baseline in
     * the ablation benchmarks.
     */
    uarch::PortUsage analyzeNaive(const isa::InstrVariant &variant) const;

  private:
    const sim::MeasurementHarness &harness_;
    const BlockingSet &sse_set_;
    const BlockingSet &avx_set_;
    PortUsageOptions options_;
    BlockingFinder finder_;
};

} // namespace uops::core

#endif // UOPS_CORE_PORT_USAGE_H
