/**
 * @file
 * Macro-fusion detection (the paper's Section 9 future-work item:
 * "We would also like to extend our approach to characterize other
 * undocumented performance-relevant aspects of the pipeline, e.g.,
 * regarding micro and macro-fusion").
 *
 * Detection principle: place a flag-writing instruction immediately
 * before a conditional branch and measure the number of µops
 * dispatched to execution ports per pair. A macro-fused pair decodes
 * into a single branch-unit µop (1 µop/pair); an unfused pair
 * dispatches two. A NOP-separated control pair distinguishes fusion
 * from other effects.
 */

#ifndef UOPS_CORE_FUSION_H
#define UOPS_CORE_FUSION_H

#include "core/codegen.h"
#include "sim/harness.h"

namespace uops::core {

/** Result of probing one (producer, branch) pair. */
struct FusionProbe
{
    const isa::InstrVariant *producer = nullptr;
    const isa::InstrVariant *branch = nullptr;
    double uops_per_pair = 0.0;     ///< adjacent pair
    double uops_separated = 0.0;    ///< NOP-separated control
    bool fused = false;
};

/**
 * Measures macro-fusion pairs on the harness's microarchitecture.
 */
class FusionAnalyzer
{
  public:
    explicit FusionAnalyzer(const sim::MeasurementHarness &harness);

    /** Probe one producer with one conditional branch. */
    FusionProbe probe(const isa::InstrVariant &producer,
                      const isa::InstrVariant &branch) const;

    /**
     * Sweep the standard fusion candidates (CMP/TEST/ADD/SUB/AND/
     * INC/DEC register forms plus a memory CMP as a negative case)
     * against JZ.
     */
    std::vector<FusionProbe> sweep() const;

  private:
    const sim::MeasurementHarness &harness_;
};

} // namespace uops::core

#endif // UOPS_CORE_FUSION_H
