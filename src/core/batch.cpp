#include "core/batch.h"

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>

#include "sim/measurement_cache.h"
#include "support/obs/trace.h"
#include "support/status.h"
#include "support/thread_pool.h"

namespace uops::core {

size_t
UArchReport::numSucceeded() const
{
    size_t n = 0;
    for (const VariantOutcome &o : outcomes)
        if (o.ok)
            ++n;
    return n;
}

size_t
UArchReport::numFailed() const
{
    return outcomes.size() - numSucceeded();
}

CharacterizationSet
UArchReport::toSet() const
{
    CharacterizationSet set;
    set.arch = arch;
    // A sweep with keep_results = false clears each result after the
    // sink consumed it (variant == nullptr) while ok stays true;
    // those slots carry no data to repackage.
    for (const VariantOutcome &o : outcomes)
        if (o.ok && o.result.variant != nullptr)
            set.instrs.push_back(o.result);
    return set;
}

size_t
CharacterizationReport::numTasks() const
{
    size_t n = 0;
    for (const UArchReport &r : uarches)
        n += r.outcomes.size();
    return n;
}

size_t
CharacterizationReport::numSucceeded() const
{
    size_t n = 0;
    for (const UArchReport &r : uarches)
        n += r.numSucceeded();
    return n;
}

size_t
CharacterizationReport::numFailed() const
{
    return numTasks() - numSucceeded();
}

std::unique_ptr<XmlNode>
CharacterizationReport::toXml() const
{
    auto root = std::make_unique<XmlNode>("uopsBatch");
    root->attr("uarches", static_cast<long>(uarches.size()));
    root->attr("tasks", static_cast<long>(numTasks()));
    root->attr("succeeded", static_cast<long>(numSucceeded()));
    root->attr("failed", static_cast<long>(numFailed()));

    for (const UArchReport &report : uarches) {
        // The per-uarch payload is exactly the Section 6.4 export.
        XmlNode &uarch_node =
            root->addChild(exportResultsXml(report.toSet()));
        for (const VariantOutcome &o : report.outcomes) {
            if (o.ok)
                continue;
            XmlNode &err = uarch_node.addChild("error");
            err.attr("name", o.variant->name());
            err.setText(o.error);
        }
    }
    return root;
}

std::string
CharacterizationReport::toXmlString() const
{
    return toXml()->toString();
}

namespace {

/** The (uarch, variant) work list, in deterministic order. */
struct TaskRef
{
    size_t arch_index;
    size_t slot;
    const isa::InstrVariant *variant;
};

/** Registry handles for one sweep's progress series (per uarch),
 *  resolved up front so workers record with relaxed increments. */
struct SweepInstruments
{
    std::vector<obs::Counter *> done;     ///< by arch index
    std::vector<obs::Counter *> failed;   ///< by arch index
    obs::Gauge *instructions_per_second = nullptr;
};

SweepInstruments
registerSweepInstruments(obs::Registry &registry,
                         const std::vector<uarch::UArch> &arches,
                         const CharacterizationReport &report)
{
    SweepInstruments out;
    for (size_t a = 0; a < arches.size(); ++a) {
        obs::LabelSet labels{
            {"uarch", uarch::uarchShortName(arches[a])}};
        registry
            .gauge("uops_sweep_variants_planned",
                   "Variants enqueued for the current sweep, by "
                   "uarch",
                   labels)
            .set(static_cast<double>(
                report.uarches[a].outcomes.size()));
        out.done.push_back(&registry.counter(
            "uops_sweep_variants_done_total",
            "Variants characterized (success or failure), by uarch",
            labels));
        out.failed.push_back(&registry.counter(
            "uops_sweep_variants_failed_total",
            "Variants that failed characterization, by uarch",
            labels));
    }
    out.instructions_per_second = &registry.gauge(
        "uops_sweep_instructions_per_second",
        "Instruction variants characterized per second, current "
        "sweep");
    return out;
}

} // namespace

CharacterizationReport
runBatchSweep(const isa::InstrDb &db,
              const std::vector<uarch::UArch> &arches,
              const BatchOptions &options)
{
    fatalIf(arches.empty(), "runBatchSweep: no microarchitectures given");
    fatalIf(!options.keep_results && options.sink == nullptr,
            "runBatchSweep: keep_results=false requires a sink");

    ThreadPool pool(options.num_threads);

    // One Characterizer per (worker, uarch): the simulator pipeline and
    // the lazily built blocking sets inside it are stateful, so they
    // must never be shared between workers.
    std::vector<std::vector<std::unique_ptr<Characterizer>>> workers(
        pool.numWorkers());
    for (auto &per_arch : workers) {
        per_arch.reserve(arches.size());
        for (uarch::UArch arch : arches)
            per_arch.push_back(std::make_unique<Characterizer>(
                db, arch, options.characterizer));
    }

    // One shared measurement memo-cache per uarch: the blocking-kernel
    // and chain-instrument measurements repeat across variants and
    // workers, and cached results are bit-identical to recomputation,
    // so sharing changes wall-clock only, never the report.
    std::vector<std::unique_ptr<sim::MeasurementCache>> memo_caches;
    if (options.share_measurements) {
        memo_caches.reserve(arches.size());
        for (size_t a = 0; a < arches.size(); ++a)
            memo_caches.push_back(
                std::make_unique<sim::MeasurementCache>());
        for (auto &per_arch : workers)
            for (size_t a = 0; a < arches.size(); ++a)
                per_arch[a]->setMeasurementCache(memo_caches[a].get());
    }

    // Instrument calibration and blocking-set discovery are a
    // deterministic function of (db, uarch) and dominate per-worker
    // cost: run them once per uarch (in parallel), then share the
    // result with every worker's instance.
    // A uarch whose setup fails is remembered so that its variant
    // tasks fail fast with the setup error instead of re-running the
    // expensive discovery once per variant; the sweep itself never
    // aborts.
    std::vector<std::string> setup_errors(arches.size());
    pool.parallelFor(arches.size(), [&](size_t a, size_t worker) {
        try {
            workers[worker][a]->prepare();
            for (auto &per_arch : workers)
                per_arch[a]->primeFrom(*workers[worker][a]);
        } catch (const std::exception &e) {
            setup_errors[a] = std::string("setup failed: ") + e.what();
        } catch (...) {
            setup_errors[a] = "setup failed: unknown error";
        }
    });

    // Enumerate the work list up front so every task writes a fixed
    // slot: the report layout does not depend on scheduling.
    CharacterizationReport report;
    report.uarches.resize(arches.size());
    std::vector<TaskRef> tasks;
    for (size_t a = 0; a < arches.size(); ++a) {
        UArchReport &ureport = report.uarches[a];
        ureport.arch = arches[a];
        const Characterizer &probe = *workers[0][a];
        for (const isa::InstrVariant *variant : db.all()) {
            if (!probe.isMeasurable(*variant))
                continue;
            if (options.characterizer.filter &&
                !options.characterizer.filter(*variant))
                continue;
            tasks.push_back({a, ureport.outcomes.size(), variant});
            VariantOutcome &slot = ureport.outcomes.emplace_back();
            slot.variant = variant;
        }
    }

    // Progress instrumentation: resolved once, recorded from worker
    // threads with relaxed increments. The instructions/sec gauge is
    // total completions over sweep wall time so far — robust to
    // bursty task durations and cheap to refresh per completion.
    SweepInstruments instruments;
    if (options.metrics != nullptr)
        instruments =
            registerSweepInstruments(*options.metrics, arches, report);
    std::atomic<uint64_t> completed{0};
    const auto sweep_start = std::chrono::steady_clock::now();
    obs::ChromeTracer *tracer = obs::ChromeTracer::fromEnv();

    // Streaming delivery: tasks complete in any order, but the sink
    // must observe the deterministic work-list order (the same order
    // the report and the XML export iterate). A completed task is
    // held in its report slot until every earlier task has been
    // delivered; the worker that completes the delivery frontier
    // flushes the contiguous prefix.
    std::mutex sink_mutex;
    std::vector<uint8_t> task_done(tasks.size(), 0);
    size_t next_delivery = 0;
    bool sink_failed = false;
    auto deliver_ready = [&]() {   // caller holds sink_mutex
        while (!sink_failed && next_delivery < tasks.size() &&
               task_done[next_delivery]) {
            const TaskRef &task = tasks[next_delivery];
            VariantOutcome &slot =
                report.uarches[task.arch_index].outcomes[task.slot];
            try {
                options.sink->onVariant(arches[task.arch_index], slot);
            } catch (...) {
                // Deliver-exactly-once even on the abort path: a
                // throwing sink must not be re-offered this outcome
                // by the next worker's flush.
                sink_failed = true;
                throw;
            }
            if (!options.keep_results)
                slot.result = InstrCharacterization{};
            ++next_delivery;
        }
    };

    auto run_task = [&](size_t i, size_t worker) {
        const TaskRef &task = tasks[i];
        VariantOutcome &slot =
            report.uarches[task.arch_index].outcomes[task.slot];
        uarch::UArch arch = arches[task.arch_index];
        auto describe = [](std::exception_ptr error) -> std::string {
            try {
                std::rethrow_exception(error);
            } catch (const std::exception &e) {
                return e.what();
            } catch (...) {
                return "unknown error";
            }
        };
        if (!setup_errors[task.arch_index].empty()) {
            slot.ok = false;
            slot.error = setup_errors[task.arch_index];
        } else {
            uint64_t span_start =
                tracer != nullptr ? obs::traceNowUs() : 0;
            try {
                Characterizer &tool = *workers[worker][task.arch_index];
                slot.result = tool.characterize(*task.variant);
                slot.ok = true;
            } catch (...) {
                slot.ok = false;
                slot.result = InstrCharacterization{};
                slot.error = describe(std::current_exception());
            }
            if (tracer != nullptr)
                tracer->complete(task.variant->name(),
                                 uarch::uarchShortName(arch),
                                 span_start,
                                 obs::traceNowUs() - span_start);
        }
        // Notify exactly once per task. A hook exception downgrades a
        // success to a recorded failure but is never re-notified.
        if (options.on_variant_done) {
            try {
                options.on_variant_done(arch, *task.variant, slot.ok);
            } catch (...) {
                if (slot.ok) {
                    slot.ok = false;
                    slot.result = InstrCharacterization{};
                    slot.error = describe(std::current_exception());
                }
            }
        }
        if (options.metrics != nullptr) {
            instruments.done[task.arch_index]->inc();
            if (!slot.ok)
                instruments.failed[task.arch_index]->inc();
            uint64_t total =
                completed.fetch_add(1, std::memory_order_relaxed) + 1;
            double seconds =
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - sweep_start)
                    .count();
            if (seconds > 0)
                instruments.instructions_per_second->set(
                    static_cast<double>(total) / seconds);
        }
        if (options.sink) {
            std::lock_guard<std::mutex> lock(sink_mutex);
            task_done[i] = 1;
            deliver_ready();
        }
    };

    if (options.sink == nullptr) {
        pool.parallelFor(tasks.size(), run_task);
        return report;
    }
    try {
        pool.parallelFor(tasks.size(), run_task);
    } catch (...) {
        // Give the sink its finish() even when the sweep aborts, so
        // RAII-style sinks can release what they already consumed.
        try {
            options.sink->finish();
        } catch (...) {
        }
        throw;
    }
    options.sink->finish();
    return report;
}

} // namespace uops::core
