#include "predictor.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "lp/simplex.h"
#include "support/status.h"

namespace uops::core {

using isa::InstrInstance;
using isa::Kernel;
using isa::OpKind;

std::string
Prediction::toString() const
{
    std::ostringstream os;
    os << "block throughput: " << block_throughput
       << " cycles/iter (bottleneck: " << bottleneck << ")\n";
    os << "  port bound " << port_bound << ", dependency bound "
       << dependency_bound << ", front-end bound " << frontend_bound
       << ", divider bound " << divider_bound << "\n";
    os << "  port pressure:";
    for (size_t p = 0; p < port_pressure.size(); ++p)
        if (port_pressure[p] > 0.004)
            os << " p" << p << "=" << port_pressure[p];
    os << "\n";
    return os.str();
}

PerformancePredictor::PerformancePredictor(
    const CharacterizationSet &set)
    : set_(set), info_(uarch::uarchInfo(set.arch))
{
}

Prediction
PerformancePredictor::analyzeLoop(const Kernel &kernel) const
{
    Prediction pred;

    // ---- port-pressure bound (LP of Section 5.3.2) ----
    uarch::PortUsage combined;
    int total_uops = 0;
    for (const InstrInstance &inst : kernel) {
        const InstrCharacterization *c = set_.find(inst.variant->name());
        fatalIf(c == nullptr, "predictor: ", inst.variant->name(),
                " not present in the characterization set");
        for (const auto &[mask, count] : c->ports.usage.entries)
            combined.add(mask, count);
        total_uops += c->ports.usage.totalUops();
    }
    std::vector<std::pair<std::vector<int>, int>> lp_usage;
    for (const auto &[mask, count] : combined.entries)
        lp_usage.emplace_back(uarch::portsOf(mask), count);
    auto dist = lp::minMaxPortLoadDistribution(
        static_cast<size_t>(info_.num_ports), lp_usage);
    pred.port_bound = dist.bottleneck;
    for (size_t p = 0;
         p < dist.per_port.size() && p < pred.port_pressure.size(); ++p)
        pred.port_pressure[p] = dist.per_port[p];

    // ---- front-end bound ----
    pred.frontend_bound =
        static_cast<double>(total_uops) / info_.issue_width;

    // ---- divider bound (from the measured divider throughput) ----
    for (const InstrInstance &inst : kernel) {
        if (!inst.variant->attrs().uses_divider)
            continue;
        const InstrCharacterization *c = set_.find(inst.variant->name());
        Cycles tp = inst.div_class == isa::DivValueClass::Slow &&
                            c->throughput.slow_measured
                        ? *c->throughput.slow_measured
                        : c->throughput.measured;
        pred.divider_bound += tp.toDouble();
    }

    // ---- dependency bound: two dataflow passes with per-pair
    //      latencies over registers, flags and memory ----
    std::map<int, double> unit_time;   // arch unit -> ready
    std::map<int, double> mem_time;    // memory tag -> ready
    auto run_pass = [&]() {
        for (const InstrInstance &inst : kernel) {
            const isa::InstrVariant &v = *inst.variant;
            const InstrCharacterization *c = set_.find(v.name());
            double fallback =
                static_cast<double>(c->latency.maxLatency());

            // Collect source ready times per operand.
            auto src_time = [&](int op_idx) {
                const auto &spec = v.operand(static_cast<size_t>(op_idx));
                double t = 0.0;
                if (spec.kind == OpKind::Reg) {
                    int u = isa::regUnit(
                        inst.regOf(static_cast<size_t>(op_idx)));
                    auto it = unit_time.find(u);
                    if (it != unit_time.end())
                        t = it->second;
                } else if (spec.kind == OpKind::Flags) {
                    for (int u : spec.flags_read.units()) {
                        auto it = unit_time.find(u);
                        if (it != unit_time.end())
                            t = std::max(t, it->second);
                    }
                } else if (spec.kind == OpKind::Mem) {
                    const auto &loc =
                        inst.ops[static_cast<size_t>(op_idx)].mem;
                    int base = isa::regUnit(loc.base);
                    auto it = unit_time.find(base);
                    if (it != unit_time.end())
                        t = it->second;
                    auto mt = mem_time.find(loc.tag);
                    if (mt != mem_time.end())
                        t = std::max(t, mt->second);
                }
                return t;
            };

            // Destination ready times from the per-pair latencies.
            for (int d : v.destOperands()) {
                const auto &dspec = v.operand(static_cast<size_t>(d));
                double ready = 0.0;
                for (int s : v.sourceOperands()) {
                    double lat = fallback;
                    if (const LatencyPair *p = c->latency.pair(s, d))
                        lat = p->cycles.toDouble();
                    else if (dspec.kind == OpKind::Mem)
                        lat = 1.0; // store-data µop
                    ready = std::max(ready, src_time(s) + lat);
                }
                if (v.sourceOperands().empty())
                    ready = fallback;
                if (dspec.kind == OpKind::Reg) {
                    unit_time[isa::regUnit(
                        inst.regOf(static_cast<size_t>(d)))] = ready;
                } else if (dspec.kind == OpKind::Flags) {
                    for (int u : dspec.flags_written.units())
                        unit_time[u] = ready;
                } else if (dspec.kind == OpKind::Mem) {
                    mem_time[inst.ops[static_cast<size_t>(d)].mem.tag] =
                        ready;
                }
            }
        }
    };
    run_pass();
    auto units_snapshot = unit_time;
    auto mem_snapshot = mem_time;
    run_pass();
    double growth = 0.0;
    for (const auto &[u, t] : unit_time) {
        auto it = units_snapshot.find(u);
        if (it != units_snapshot.end())
            growth = std::max(growth, t - it->second);
    }
    for (const auto &[tag, t] : mem_time) {
        auto it = mem_snapshot.find(tag);
        if (it != mem_snapshot.end())
            growth = std::max(growth, t - it->second);
    }
    pred.dependency_bound = growth;

    // ---- combine ----
    pred.block_throughput =
        std::max({pred.port_bound, pred.dependency_bound,
                  pred.frontend_bound, pred.divider_bound});
    if (pred.block_throughput == pred.frontend_bound)
        pred.bottleneck = "front end";
    if (pred.block_throughput == pred.port_bound)
        pred.bottleneck = "ports";
    if (pred.block_throughput == pred.divider_bound &&
        pred.divider_bound > 0)
        pred.bottleneck = "divider";
    if (pred.block_throughput == pred.dependency_bound &&
        pred.dependency_bound > std::max(pred.port_bound,
                                         pred.frontend_bound))
        pred.bottleneck = "dependencies";
    return pred;
}

} // namespace uops::core
