/**
 * @file
 * Latency inference (Section 5.2).
 *
 * Implements the paper's refined latency definition: a separate value
 * lat(s, d) for every (source operand, destination operand) pair,
 * measured through automatically constructed dependency chains:
 *
 *  - GPR -> GPR: MOVSX chains (immune to move elimination and partial
 *    register stalls, Section 5.2.1), plus the same-register
 *    microbenchmark that exposes behaviours like SHLD on Skylake;
 *  - vector -> vector: integer (PSHUFD / VPSHUFD) and floating-point
 *    (SHUFPS / VPERMILPS) shuffle chains, run with both flavours to
 *    expose bypass delays; VEX instruments for AVX instructions so no
 *    SSE-AVX transition is triggered;
 *  - GPR <-> vector/MMX: compositions with all matching MOVD/MOVQ
 *    transfer instructions; reported as an upper bound (min over the
 *    compositions minus 1), as in the paper;
 *  - memory -> register: the double-XOR address-dependency trick with
 *    MOVSX prefix for narrow destinations (Section 5.2.2);
 *  - flags -> register and register -> flags via TEST / CMOVcc
 *    (Section 5.2.3);
 *  - register -> memory: store-to-load round trip (Section 5.2.4,
 *    reported as such, not as a pure latency);
 *  - divider instructions: AND/OR value-pinning chains measured with
 *    both fast and slow operand values (Section 5.2.5).
 *
 * Unwanted implicit dependencies (flags, read-written registers that
 * are not part of the measured pair) are cut with dependency-breaking
 * instructions (MOV reg,imm; PXOR/VPXOR zero idioms; MOVD for MMX;
 * TEST for flags).
 */

#ifndef UOPS_CORE_LATENCY_H
#define UOPS_CORE_LATENCY_H

#include <map>
#include <optional>

#include "core/codegen.h"
#include "sim/harness.h"
#include "support/cycles.h"

namespace uops::core {

/** Latency of one (source, destination) operand pair. */
struct LatencyPair
{
    int src_op = -1;
    int dst_op = -1;
    Cycles cycles;             ///< best chain-adjusted value
    bool upper_bound = false;  ///< cross-class composition bound
    std::optional<Cycles> slow_cycles; ///< divider slow-value latency

    /** Per-instrument raw adjusted values ("PSHUFD" -> 4.0, ...);
     *  diagnostics only, not part of the canonical result. */
    std::map<std::string, double> per_chain;

    std::string toString(const isa::InstrVariant &v) const;
};

/** Latency analysis result for one instruction variant. */
struct LatencyResult
{
    std::vector<LatencyPair> pairs;

    /** Same-register microbenchmark (Section 5.2.1), when possible. */
    std::optional<Cycles> same_reg_cycles;

    /** Store-to-load round trip for memory destinations (5.2.4). */
    std::optional<Cycles> store_roundtrip;

    /** Maximum latency over all pairs (used for blockRep). */
    int maxLatency() const;

    /** Latency of a specific pair, if measured. */
    const LatencyPair *pair(int src_op, int dst_op) const;
};

/**
 * Runs the latency measurements of Section 5.2.
 */
class LatencyAnalyzer
{
  public:
    LatencyAnalyzer(const sim::MeasurementHarness &harness,
                    const ChainInstruments &instruments);

    /** Analyze all operand pairs of @p variant. */
    LatencyResult analyze(const isa::InstrVariant &variant) const;

  private:
    const sim::MeasurementHarness &harness_;
    const ChainInstruments &ci_;
};

} // namespace uops::core

#endif // UOPS_CORE_LATENCY_H
