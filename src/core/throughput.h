/**
 * @file
 * Throughput measurement and computation (Section 5.3).
 *
 * Measured throughput (Fog's Definition 2): sequences of 1, 2, 4 and 8
 * independent instances of the instruction (registers and memory
 * locations chosen to avoid read-after-write dependencies), cycles per
 * instruction, minimum over the sequence lengths. For instructions
 * with implicit read-written operands, additional sequences with
 * interleaved dependency-breaking instructions are measured (the
 * breakers consume execution resources, so this does not always help
 * — both values are reported). Divider instructions are measured with
 * fast and slow operand values.
 *
 * Computed throughput (Intel's Definition 1): from the inferred port
 * usage, by minimizing the maximum per-port load over all feasible
 * µop-to-port assignments — a small linear program solved exactly
 * (Section 5.3.2). Not applicable to divider instructions.
 */

#ifndef UOPS_CORE_THROUGHPUT_H
#define UOPS_CORE_THROUGHPUT_H

#include <optional>

#include "core/codegen.h"
#include "sim/harness.h"
#include "support/cycles.h"
#include "uarch/timing.h"

namespace uops::core {

/** Throughput analysis result for one instruction. */
struct ThroughputResult
{
    /** Fog-definition measurement (min over sequence lengths). */
    Cycles measured;

    /** Measurement with interleaved dependency breakers (when the
     *  instruction has implicit read-written operands). */
    std::optional<Cycles> with_breakers;

    /** Divider slow-value measurement. */
    std::optional<Cycles> slow_measured;

    /** Per-sequence-length raw values (diagnostics). */
    std::map<int, double> by_length;

    /** Best measured value. */
    Cycles
    best() const
    {
        Cycles v = measured;
        if (with_breakers)
            v = std::min(v, *with_breakers);
        return v;
    }
};

/**
 * Runs the throughput measurements.
 */
class ThroughputAnalyzer
{
  public:
    explicit ThroughputAnalyzer(const sim::MeasurementHarness &harness);

    ThroughputResult analyze(const isa::InstrVariant &variant) const;

    /**
     * Intel-definition throughput from the port usage via the LP of
     * Section 5.3.2.
     */
    static double computeFromPortUsage(const uarch::PortUsage &usage,
                                       int num_ports);

  private:
    double measureSequence(const isa::InstrVariant &variant, int length,
                           bool with_breakers,
                           isa::DivValueClass div_class) const;

    const sim::MeasurementHarness &harness_;
};

} // namespace uops::core

#endif // UOPS_CORE_THROUGHPUT_H
