#include "latency.h"

#include <algorithm>
#include <cmath>

#include "support/stats.h"
#include "support/status.h"

namespace uops::core {

using isa::InstrInstance;
using isa::InstrVariant;
using isa::Kernel;
using isa::MemLoc;
using isa::OperandSpec;
using isa::OperandValue;
using isa::OpKind;
using isa::Reg;
using isa::RegClass;

namespace {

/** Coarse operand storage classes for chain selection. */
enum class Storage { Gpr, Vec, Mmx, Flags, Mem };

Storage
storageOf(const OperandSpec &op)
{
    switch (op.kind) {
      case OpKind::Mem:
        return Storage::Mem;
      case OpKind::Flags:
        return Storage::Flags;
      case OpKind::Imm:
        panic("storageOf: immediate");
      case OpKind::Reg:
        if (isa::isGprClass(op.reg_class))
            return Storage::Gpr;
        if (op.reg_class == RegClass::Mmx)
            return Storage::Mmx;
        return Storage::Vec;
    }
    panic("storageOf: unreachable");
}

/** 32-bit view of a GPR unit (for MOV-imm dependency breakers). */
Reg
gpr32View(const Reg &reg)
{
    return Reg{RegClass::Gpr32, reg.index};
}

/** 64-bit view of a GPR unit. */
Reg
gpr64View(const Reg &reg)
{
    return Reg{RegClass::Gpr64, reg.index};
}

} // namespace

std::string
LatencyPair::toString(const InstrVariant &v) const
{
    std::string src = src_op >= 0 ? v.operand(src_op).typeTag() : "?";
    std::string dst = dst_op >= 0 ? v.operand(dst_op).typeTag() : "?";
    std::string out = "lat(" + src + "->" + dst + ")=" + cycles.str();
    if (upper_bound)
        out = "<=" + out;
    return out;
}

int
LatencyResult::maxLatency() const
{
    Cycles max_lat = Cycles::fromHundredths(100);
    for (const auto &p : pairs) {
        max_lat = std::max(max_lat, p.cycles);
        if (p.slow_cycles)
            max_lat = std::max(max_lat, *p.slow_cycles);
    }
    if (store_roundtrip)
        max_lat = std::max(max_lat, *store_roundtrip);
    return max_lat.ceil();
}

const LatencyPair *
LatencyResult::pair(int src_op, int dst_op) const
{
    for (const auto &p : pairs)
        if (p.src_op == src_op && p.dst_op == dst_op)
            return &p;
    return nullptr;
}

LatencyAnalyzer::LatencyAnalyzer(const sim::MeasurementHarness &harness,
                                 const ChainInstruments &instruments)
    : harness_(harness), ci_(instruments)
{
}

namespace {

/** One candidate chain: instrument kernel suffix + known latency. */
struct ChainPlan
{
    std::string name;
    Kernel suffix;       ///< chain instruments (after I)
    double chain_lat;    ///< known latency to subtract
    bool upper_bound = false;
};

/**
 * Builds the benchmark bodies for one instruction's latency pairs.
 * Holds the concrete instance of I and the filler registers shared by
 * all measurements of this variant.
 */
class ChainBuilder
{
  public:
    ChainBuilder(const sim::MeasurementHarness &harness,
                 const ChainInstruments &ci, const InstrVariant &v)
        : harness_(harness), ci_(ci), v_(v),
          pool_(RegPool::Zone::Analyzed),
          filler_(RegPool::Zone::Filler)
    {
        inst_ = makeIndependent(v, pool_);
        filler_reg_ = filler_.nextSrc(RegClass::Gpr64); // never written
        chain_tmp_ = filler_.next(RegClass::Gpr64);
    }

    const InstrInstance &instance() const { return inst_; }

    /** Register bound to operand @p idx. */
    Reg reg(int idx) const { return inst_.regOf(static_cast<size_t>(idx)); }

    bool
    isAvx() const
    {
        return v_.attrs().is_avx;
    }

    // ---- instrument instance helpers ----
    InstrInstance
    movsxInto(const Reg &dst_unit, const Reg &src_reg) const
    {
        // MOVSX (64-bit view of dst_unit) <- (view of src_reg).
        const InstrVariant *variant = nullptr;
        Reg src = src_reg;
        switch (isa::regClassWidth(src_reg.cls)) {
          case 8:
            variant = ci_.movsx_r64_r8;
            break;
          case 16:
            variant = ci_.movsx_r64_r16;
            break;
          default:
            variant = ci_.movsx_r64_r32;
            src = gpr32View(src_reg);
            break;
        }
        panicIf(variant == nullptr, "MOVSX instrument missing");
        return isa::makeInstance(
            *variant, {{.reg = gpr64View(dst_unit)}, {.reg = src}});
    }

    InstrInstance
    testFlags(const Reg &src_reg) const
    {
        Reg r = gpr64View(src_reg);
        return isa::makeInstance(*ci_.test_r64, {{.reg = r}, {.reg = r}});
    }

    /** CMOV reading a flag group written by I; returns nullopt when no
     *  suitable instrument exists. */
    std::optional<std::pair<InstrInstance, double>>
    cmovFromFlags(const isa::FlagMask &written, const Reg &dst) const
    {
        const InstrVariant *variant = nullptr;
        double lat = 1.0;
        if (written.cf && ci_.cmovb_r64) {
            variant = ci_.cmovb_r64;
            lat = ci_.cmovb_lat;
        } else if (written.spazo && ci_.cmovs_r64) {
            variant = ci_.cmovs_r64;
            lat = ci_.cmovs_lat;
        }
        if (variant == nullptr)
            return std::nullopt;
        return std::make_pair(
            isa::makeInstance(*variant, {{.reg = gpr64View(dst)},
                                         {.reg = gpr64View(filler_reg_)}}),
            lat);
    }

    /** Vector shuffle instruments matching @p avx / int-or-fp. */
    std::vector<std::pair<const InstrVariant *, std::pair<std::string,
                                                          double>>>
    vecShuffles() const
    {
        std::vector<
            std::pair<const InstrVariant *, std::pair<std::string, double>>>
            out;
        if (isAvx()) {
            if (ci_.vpshufd_x)
                out.push_back({ci_.vpshufd_x,
                               {"VPSHUFD", ci_.int_shuffle_lat}});
            if (ci_.vpermilps_x)
                out.push_back({ci_.vpermilps_x,
                               {"VPERMILPS", ci_.fp_shuffle_lat}});
        } else {
            if (ci_.pshufd)
                out.push_back(
                    {ci_.pshufd, {"PSHUFD", ci_.int_shuffle_lat}});
            if (ci_.shufps)
                out.push_back(
                    {ci_.shufps, {"SHUFPS", ci_.fp_shuffle_lat}});
        }
        return out;
    }

    /** Instance of a 2-operand+imm shuffle writing dst from src. */
    InstrInstance
    shuffleInto(const InstrVariant &variant, const Reg &dst,
                const Reg &src) const
    {
        Reg d = dst, s = src;
        // Adapt the register class to the instrument's operand class.
        auto expl = variant.explicitOperands();
        d.cls = variant.operand(expl[0]).reg_class;
        bool has_imm = false;
        for (int e : expl)
            if (variant.operand(e).kind == OpKind::Imm)
                has_imm = true;
        s.cls = variant.operand(expl[1]).reg_class;
        if (has_imm)
            return isa::makeInstance(variant,
                                     {{.reg = d}, {.reg = s}, {.imm = 0}});
        return isa::makeInstance(variant, {{.reg = d}, {.reg = s}});
    }

    // ---- dependency breakers ----
    /** Breaker writing (without reading) the storage of operand @p idx. */
    std::optional<InstrInstance>
    breakerFor(int idx) const
    {
        const isa::InstrDb &db = harness_.timingDb().instrDb();
        const OperandSpec &op = v_.operand(static_cast<size_t>(idx));
        switch (storageOf(op)) {
          case Storage::Gpr: {
            const InstrVariant *mov = db.byName("MOV_R32_I32");
            panicIf(mov == nullptr, "MOV_R32_I32 missing");
            return isa::makeInstance(
                *mov, {{.reg = gpr32View(reg(idx))}, {.imm = 7}});
          }
          case Storage::Flags: {
            return testFlags(filler_reg_);
          }
          case Storage::Vec: {
            Reg r = reg(idx);
            r.cls = RegClass::Xmm;
            if (isAvx()) {
                const InstrVariant *vpxor = db.byName("VPXOR_X_X_X");
                if (vpxor)
                    return isa::makeInstance(
                        *vpxor, {{.reg = r}, {.reg = r}, {.reg = r}});
            }
            const InstrVariant *pxor = db.byName("PXOR_X_X");
            panicIf(pxor == nullptr, "PXOR_X_X missing");
            return isa::makeInstance(*pxor, {{.reg = r}, {.reg = r}});
          }
          case Storage::Mmx: {
            const InstrVariant *movd = db.byName("MOVD_MM_R32");
            if (movd == nullptr)
                return std::nullopt;
            return isa::makeInstance(
                *movd,
                {{.reg = reg(idx)}, {.reg = gpr32View(filler_reg_)}});
          }
          case Storage::Mem:
            return std::nullopt; // memory self-deps are part of 5.2.4
        }
        return std::nullopt;
    }

    /**
     * Breakers for all read-written storages except the pair's own
     * src/dst (the chain handles those).
     */
    Kernel
    breakers(int src_idx, int dst_idx, bool break_dst) const
    {
        Kernel out;
        for (size_t i = 0; i < v_.numOperands(); ++i) {
            const OperandSpec &op = v_.operand(i);
            bool rw = op.readWritten() ||
                      (op.kind == OpKind::Flags &&
                       op.flags_read.any() && op.flags_written.any());
            if (!rw)
                continue;
            int idx = static_cast<int>(i);
            if (idx == src_idx)
                continue; // the chain's final write breaks this loop
            if (idx == dst_idx && !break_dst)
                continue;
            if (auto b = breakerFor(idx))
                out.push_back(std::move(*b));
        }
        return out;
    }

    const sim::MeasurementHarness &harness_;
    const ChainInstruments &ci_;
    const InstrVariant &v_;
    RegPool pool_;
    RegPool filler_;
    InstrInstance inst_;
    Reg filler_reg_;  ///< ready scratch register (never written)
    Reg chain_tmp_;   ///< scratch for multi-step chains
};

} // namespace

LatencyResult
LatencyAnalyzer::analyze(const InstrVariant &variant) const
{
    LatencyResult result;
    ChainBuilder b(harness_, ci_, variant);
    const InstrInstance &inst = b.instance();

    auto measure_plan = [&](const ChainPlan &plan)
        -> std::optional<double> {
        Kernel body;
        body.push_back(inst);
        body.insert(body.end(), plan.suffix.begin(), plan.suffix.end());
        double cycles = harness_.measure(body).cycles;
        double lat = cycles - plan.chain_lat;
        if (plan.upper_bound)
            lat -= 1.0; // unknown instrument contributes >= 1 cycle
        if (lat < 0.01)
            return std::nullopt;
        return lat;
    };

    auto div_instance = [&](isa::DivValueClass cls) {
        InstrInstance copy = inst;
        copy.div_class = cls;
        return copy;
    };

    // --------------------------------------------------------------
    // Enumerate operand pairs.
    // --------------------------------------------------------------
    for (int s : variant.sourceOperands()) {
        const OperandSpec &src_op = variant.operand(s);
        if (src_op.kind == OpKind::Imm)
            continue;
        for (int d : variant.destOperands()) {
            const OperandSpec &dst_op = variant.operand(d);

            // ---- register/flags -> memory: 5.2.4 round trip ----
            if (dst_op.kind == OpKind::Mem) {
                if (result.store_roundtrip || src_op.kind == OpKind::Mem ||
                    src_op.kind == OpKind::Flags)
                    continue;
                const isa::InstrDb &db = harness_.timingDb().instrDb();
                const InstrVariant *load = nullptr;
                Storage st = storageOf(src_op);
                if (st == Storage::Gpr)
                    load = db.byName("MOV_R64_M64");
                else if (st == Storage::Vec)
                    load = db.byName(b.isAvx() ? "VMOVAPS_Y_M256"
                                               : "MOVDQA_X_M128");
                else if (st == Storage::Mmx)
                    load = db.byName("MOVQ_MM_M64");
                if (load == nullptr)
                    continue;
                // Load from I's store location back into I's source.
                MemLoc loc = inst.ops[static_cast<size_t>(d)].mem;
                Reg dst_reg = b.reg(s);
                auto expl = load->explicitOperands();
                dst_reg.cls = load->operand(expl[0]).reg_class;
                Kernel body;
                body.push_back(inst);
                body.push_back(isa::makeInstance(
                    *load, {{.reg = dst_reg}, {.mem = loc}}));
                Kernel brk = b.breakers(s, d, false);
                body.insert(body.end(), brk.begin(), brk.end());
                result.store_roundtrip =
                    roundCycles(harness_.measure(body).cycles);
                continue;
            }

            LatencyPair pair;
            pair.src_op = s;
            pair.dst_op = d;

            Storage ss = src_op.kind == OpKind::Mem
                             ? Storage::Mem
                             : storageOf(src_op);
            Storage ds = storageOf(dst_op);

            // Read-modify-write memory operands carry a loop through
            // the store buffer that no dependency breaker can cut
            // (Section 5.2.4); every measured pair of such a variant
            // is therefore only an upper bound.
            bool mem_rmw = false;
            for (const auto &op : variant.operands())
                if (op.kind == OpKind::Mem && op.readWritten())
                    mem_rmw = true;

            // ---- divider instructions (5.2.5) ----
            if (variant.attrs().uses_divider) {
                if (s != d || dst_op.kind != OpKind::Reg)
                    continue; // only the read-write register pair
                const isa::InstrDb &db = harness_.timingDb().instrDb();
                Reg r = b.reg(d);
                Kernel pin;
                if (isa::isGprClass(r.cls)) {
                    Reg r64 = gpr64View(r);
                    Reg pinr{RegClass::Gpr64, 8};
                    pin.push_back(isa::makeInstance(
                        *db.byName("AND_R64_R64"),
                        {{.reg = r64}, {.reg = pinr}}));
                    pin.push_back(isa::makeInstance(
                        *db.byName("OR_R64_R64"),
                        {{.reg = r64}, {.reg = pinr}}));
                } else {
                    Reg x = r;
                    x.cls = RegClass::Xmm;
                    Reg pinx{RegClass::Xmm, 8};
                    pin.push_back(isa::makeInstance(
                        *db.byName("ANDPS_X_X"),
                        {{.reg = x}, {.reg = pinx}}));
                    pin.push_back(isa::makeInstance(
                        *db.byName("ORPS_X_X"),
                        {{.reg = x}, {.reg = pinx}}));
                }
                auto run_div = [&](isa::DivValueClass cls) {
                    Kernel body;
                    body.push_back(div_instance(cls));
                    body.insert(body.end(), pin.begin(), pin.end());
                    Kernel brk = b.breakers(s, d, false);
                    body.insert(body.end(), brk.begin(), brk.end());
                    return harness_.measure(body).cycles -
                           ci_.and_or_lat;
                };
                pair.cycles =
                    roundCycles(run_div(isa::DivValueClass::Fast));
                pair.slow_cycles =
                    roundCycles(run_div(isa::DivValueClass::Slow));
                result.pairs.push_back(pair);
                continue;
            }

            // ---- build chain plans for the pair ----
            std::vector<ChainPlan> plans;

            if (ss == Storage::Mem) {
                // 5.2.2: address dependency via double XOR.
                MemLoc loc = inst.ops[static_cast<size_t>(s)].mem;
                Reg ra = loc.base;
                auto double_xor = [&](const Reg &from, Kernel &k) {
                    Reg f64 = gpr64View(from);
                    k.push_back(isa::makeInstance(
                        *ci_.xor_r64,
                        {{.reg = gpr64View(ra)}, {.reg = f64}}));
                    k.push_back(isa::makeInstance(
                        *ci_.xor_r64,
                        {{.reg = gpr64View(ra)}, {.reg = f64}}));
                };
                if (ds == Storage::Gpr) {
                    ChainPlan plan;
                    plan.name = "double-xor";
                    Reg dreg = b.reg(d);
                    double lat = 2.0 * ci_.xor_lat;
                    if (isa::regClassWidth(dreg.cls) < 32) {
                        plan.suffix.push_back(b.movsxInto(dreg, dreg));
                        dreg = gpr64View(dreg);
                        lat += ci_.movsx_lat;
                    }
                    double_xor(dreg, plan.suffix);
                    plan.chain_lat = lat;
                    plans.push_back(std::move(plan));
                } else if (ds == Storage::Vec || ds == Storage::Mmx) {
                    for (const InstrVariant *tg : ci_.to_gpr) {
                        auto expl = tg->explicitOperands();
                        RegClass src_cls =
                            tg->operand(expl[1]).reg_class;
                        bool mmx = src_cls == RegClass::Mmx;
                        if (mmx != (ds == Storage::Mmx))
                            continue;
                        ChainPlan plan;
                        plan.name = "xor+" + tg->name();
                        Reg vreg = b.reg(d);
                        vreg.cls = src_cls;
                        Reg t = b.chain_tmp_;
                        t.cls = tg->operand(expl[0]).reg_class;
                        plan.suffix.push_back(isa::makeInstance(
                            *tg, {{.reg = t}, {.reg = vreg}}));
                        double_xor(b.chain_tmp_, plan.suffix);
                        plan.chain_lat = 2.0 * ci_.xor_lat;
                        plan.upper_bound = true;
                        plans.push_back(std::move(plan));
                    }
                } else if (ds == Storage::Flags) {
                    if (auto cm = b.cmovFromFlags(dst_op.flags_written,
                                                  b.chain_tmp_)) {
                        ChainPlan plan;
                        plan.name = "xor+cmov";
                        plan.suffix.push_back(cm->first);
                        double_xor(b.chain_tmp_, plan.suffix);
                        plan.chain_lat = cm->second + 2.0 * ci_.xor_lat;
                        plans.push_back(std::move(plan));
                    }
                }
            } else if (s == d) {
                // Self pair: direct loop, no chain instrument.
                ChainPlan plan;
                plan.name = "self";
                plan.chain_lat = 0.0;
                plans.push_back(std::move(plan));
            } else if (ss == Storage::Flags && ds == Storage::Gpr) {
                // 5.2.3 inverse: dst(reg) -> flags via TEST.
                ChainPlan plan;
                plan.name = "test";
                plan.suffix.push_back(b.testFlags(b.reg(d)));
                plan.chain_lat = ci_.test_lat;
                plans.push_back(std::move(plan));
            } else if (ss == Storage::Gpr && ds == Storage::Flags) {
                // flags -> reg via CMOVcc reading what I writes.
                if (auto cm = b.cmovFromFlags(dst_op.flags_written,
                                              b.chain_tmp_)) {
                    ChainPlan plan;
                    plan.name = "cmov+movsx";
                    plan.suffix.push_back(cm->first);
                    plan.suffix.push_back(
                        b.movsxInto(b.reg(s), gpr64View(b.chain_tmp_)));
                    plan.chain_lat = cm->second + ci_.movsx_lat;
                    plans.push_back(std::move(plan));
                }
            } else if (ss == Storage::Flags && ds == Storage::Flags) {
                ChainPlan plan;
                plan.name = "self";
                plan.chain_lat = 0.0;
                plans.push_back(std::move(plan));
            } else if (ss == Storage::Gpr && ds == Storage::Gpr) {
                ChainPlan plan;
                plan.name = "movsx";
                plan.suffix.push_back(b.movsxInto(b.reg(s), b.reg(d)));
                plan.chain_lat = ci_.movsx_lat;
                plans.push_back(std::move(plan));
            } else if ((ss == Storage::Vec && ds == Storage::Vec) ||
                       (ss == Storage::Mmx && ds == Storage::Mmx)) {
                if (ss == Storage::Mmx) {
                    if (ci_.pshufw_mm) {
                        ChainPlan plan;
                        plan.name = "PSHUFW";
                        plan.suffix.push_back(b.shuffleInto(
                            *ci_.pshufw_mm, b.reg(s), b.reg(d)));
                        plan.chain_lat = ci_.int_shuffle_lat;
                        plans.push_back(std::move(plan));
                    }
                } else {
                    for (const auto &[shuf, info] : b.vecShuffles()) {
                        ChainPlan plan;
                        plan.name = info.first;
                        plan.suffix.push_back(
                            b.shuffleInto(*shuf, b.reg(s), b.reg(d)));
                        plan.chain_lat = info.second;
                        plans.push_back(std::move(plan));
                    }
                }
            } else {
                // Cross-class register pairs: compositions with the
                // transfer instruments (upper bounds).
                auto add_transfer = [&](const InstrVariant *tv) {
                    auto expl = tv->explicitOperands();
                    RegClass dst_cls = tv->operand(expl[0]).reg_class;
                    RegClass src_cls = tv->operand(expl[1]).reg_class;
                    // The transfer must read the pair's dst storage
                    // and write the pair's src storage.
                    auto compatible = [&](Storage st, RegClass cls) {
                        if (st == Storage::Gpr)
                            return isa::isGprClass(cls);
                        if (st == Storage::Mmx)
                            return cls == RegClass::Mmx;
                        if (st == Storage::Vec)
                            return isa::isVecClass(cls);
                        return false;
                    };
                    if (!compatible(ds, src_cls) ||
                        !compatible(ss, dst_cls))
                        return;
                    ChainPlan plan;
                    plan.name = tv->name();
                    Reg dst_reg = b.reg(s);
                    dst_reg.cls = dst_cls;
                    Reg src_reg = b.reg(d);
                    src_reg.cls = src_cls;
                    plan.suffix.push_back(isa::makeInstance(
                        *tv, {{.reg = dst_reg}, {.reg = src_reg}}));
                    plan.chain_lat = 0.0;
                    plan.upper_bound = true;
                    plans.push_back(std::move(plan));
                };
                for (const InstrVariant *tv : ci_.to_gpr)
                    add_transfer(tv);
                for (const InstrVariant *tv : ci_.from_gpr)
                    add_transfer(tv);
                if (ci_.movq2dq)
                    add_transfer(ci_.movq2dq);
                if (ci_.movdq2q)
                    add_transfer(ci_.movdq2q);
            }

            // ---- measure all plans, keep the best ----
            // Selection runs on the raw chain-adjusted doubles; only
            // the winner is rounded into the canonical result.
            bool have = false;
            double best_cycles = 0.0;
            for (const ChainPlan &base_plan : plans) {
                ChainPlan plan = base_plan;
                // Break the dst self-loop when I reads its destination
                // and the chain does not overwrite it.
                bool dst_read = dst_op.read ||
                                (dst_op.kind == OpKind::Flags &&
                                 dst_op.flags_read.any());
                bool chain_overwrites_dst = false; // chains write src
                Kernel brk = b.breakers(
                    s, d, dst_read && !chain_overwrites_dst && s != d);
                plan.suffix.insert(plan.suffix.end(), brk.begin(),
                                   brk.end());
                auto lat = measure_plan(plan);
                if (!lat)
                    continue;
                pair.per_chain[plan.name] = *lat;
                if (!have || *lat < best_cycles) {
                    best_cycles = *lat;
                    pair.upper_bound = plan.upper_bound || mem_rmw;
                }
                have = true;
            }
            if (have) {
                pair.cycles = roundCycles(best_cycles);
                result.pairs.push_back(std::move(pair));
            }
        }
    }

    // ------------------------------------------------------------------
    // Same-register microbenchmark (5.2.1).
    // ------------------------------------------------------------------
    {
        auto expl = variant.explicitOperands();
        if (expl.size() >= 2) {
            const OperandSpec &a = variant.operand(expl[0]);
            const OperandSpec &c = variant.operand(expl[1]);
            if (a.kind == OpKind::Reg && c.kind == OpKind::Reg &&
                a.reg_class == c.reg_class &&
                !variant.attrs().uses_divider) {
                RegPool pool(RegPool::Zone::Analyzed);
                Reg shared = pool.next(a.reg_class);
                std::vector<OperandValue> values;
                for (int e : expl) {
                    const OperandSpec &op =
                        variant.operand(static_cast<size_t>(e));
                    OperandValue val;
                    if (op.kind == OpKind::Reg)
                        val.reg = op.reg_class == a.reg_class
                                      ? shared
                                      : pool.next(op.reg_class);
                    else if (op.kind == OpKind::Mem)
                        val.mem = pool.nextMem();
                    else
                        val.imm = 1;
                    values.push_back(val);
                }
                Kernel body = {isa::makeInstance(variant, values,
                                                 pool.nextMem())};
                result.same_reg_cycles =
                    roundCycles(harness_.measure(body).cycles);
            }
        }
    }

    return result;
}

} // namespace uops::core
