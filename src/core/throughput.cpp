#include "throughput.h"

#include <algorithm>

#include "lp/simplex.h"
#include "support/stats.h"
#include "support/status.h"

namespace uops::core {

using isa::InstrVariant;
using isa::Kernel;
using isa::OperandSpec;
using isa::OpKind;
using isa::Reg;
using isa::RegClass;

ThroughputAnalyzer::ThroughputAnalyzer(
    const sim::MeasurementHarness &harness)
    : harness_(harness)
{
}

double
ThroughputAnalyzer::measureSequence(const InstrVariant &variant,
                                    int length, bool with_breakers,
                                    isa::DivValueClass div_class) const
{
    const isa::InstrDb &db = harness_.timingDb().instrDb();
    RegPool pool(RegPool::Zone::Analyzed);
    RegPool filler(RegPool::Zone::Filler);
    Reg filler_reg = filler.nextSrc(RegClass::Gpr64);

    Kernel body;
    for (int i = 0; i < length; ++i) {
        body.push_back(makeIndependent(variant, pool, div_class));
        if (!with_breakers)
            continue;
        // Breakers for implicit read-written operands: flags and
        // implicit fixed registers.
        for (const OperandSpec &op : variant.operands()) {
            if (op.kind == OpKind::Flags && op.flags_read.any() &&
                op.flags_written.any()) {
                const InstrVariant *test = db.byName("TEST_R64_R64");
                body.push_back(isa::makeInstance(
                    *test, {{.reg = filler_reg}, {.reg = filler_reg}}));
            } else if (op.kind == OpKind::Reg && op.fixed_reg >= 0 &&
                       op.readWritten() &&
                       isa::isGprClass(op.reg_class)) {
                const InstrVariant *mov = db.byName("MOV_R32_I32");
                Reg view{RegClass::Gpr32, op.fixed_reg};
                body.push_back(
                    isa::makeInstance(*mov, {{.reg = view}, {.imm = 3}}));
            }
        }
    }
    double cycles = harness_.measure(body).cycles;
    return cycles / static_cast<double>(length);
}

ThroughputResult
ThroughputAnalyzer::analyze(const InstrVariant &variant) const
{
    ThroughputResult result;
    isa::DivValueClass base_class = variant.attrs().uses_divider
                                        ? isa::DivValueClass::Fast
                                        : isa::DivValueClass::None;

    // Minimization runs on the raw per-length values; only the final
    // minima are rounded into the canonical result.
    double measured = 0.0;
    bool first = true;
    for (int length : {1, 2, 4, 8}) {
        double tp = measureSequence(variant, length, false, base_class);
        result.by_length[length] = tp;
        if (first || tp < measured)
            measured = tp;
        first = false;
    }
    result.measured = roundCycles(measured);

    // Dependency-breaking variant for implicit read-written operands.
    bool has_implicit_rw = false;
    for (const OperandSpec &op : variant.operands()) {
        if (op.kind == OpKind::Flags && op.flags_read.any() &&
            op.flags_written.any())
            has_implicit_rw = true;
        if (op.kind == OpKind::Reg && op.fixed_reg >= 0 &&
            op.readWritten())
            has_implicit_rw = true;
    }
    if (has_implicit_rw) {
        double best = 0.0;
        bool first_b = true;
        for (int length : {2, 4, 8}) {
            double tp =
                measureSequence(variant, length, true, base_class);
            if (first_b || tp < best)
                best = tp;
            first_b = false;
        }
        result.with_breakers = roundCycles(best);
    }

    if (variant.attrs().uses_divider) {
        double best = 0.0;
        bool first_s = true;
        for (int length : {1, 2, 4}) {
            double tp = measureSequence(variant, length, false,
                                        isa::DivValueClass::Slow);
            if (first_s || tp < best)
                best = tp;
            first_s = false;
        }
        result.slow_measured = roundCycles(best);
    }
    return result;
}

double
ThroughputAnalyzer::computeFromPortUsage(const uarch::PortUsage &usage,
                                         int num_ports)
{
    std::vector<std::pair<std::vector<int>, int>> lp_usage;
    for (const auto &[mask, count] : usage.entries)
        lp_usage.emplace_back(uarch::portsOf(mask), count);
    return lp::minMaxPortLoad(static_cast<size_t>(num_ports), lp_usage);
}

} // namespace uops::core
