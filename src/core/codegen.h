/**
 * @file
 * Microbenchmark code generation: operand allocation and instruments.
 *
 * The algorithms of Section 5 automatically generate assembler code;
 * this module provides the pieces they share:
 *
 *  - register pools that hand out architectural registers such that
 *    benchmark instructions are independent (for throughput / blocking
 *    sequences) or chained (for latency),
 *  - construction of independent instruction instances with round-robin
 *    operand assignment,
 *  - the chain-instrument inventory (MOVSX, TEST, CMOVcc, PSHUFD,
 *    SHUFPS/VPERMILPS, MOVD/MOVQ, double-XOR, AND/OR value-pinning)
 *    together with their calibrated latencies.
 */

#ifndef UOPS_CORE_CODEGEN_H
#define UOPS_CORE_CODEGEN_H

#include <optional>
#include <vector>

#include "isa/kernel.h"
#include "sim/harness.h"
#include "uarch/uarch.h"

namespace uops::core {

/**
 * Hands out registers from a class-partitioned pool.
 *
 * Two disjoint pools exist by convention: pool A (for the instruction
 * under analysis) and pool B (for blocking/filler instructions), so
 * generated code never aliases between the two roles. RSP/RBP and two
 * harness-reserved registers (R14/R15) are never allocated, matching
 * the reservation described in Section 6.2.
 */
class RegPool
{
  public:
    enum class Zone { Analyzed, Filler };

    explicit RegPool(Zone zone);

    /**
     * Next *destination* register of @p cls (round-robin over the
     * zone's write sub-pool). Reuse across a sequence only creates
     * WAW dependencies, which renaming eliminates.
     */
    isa::Reg next(isa::RegClass cls);

    /**
     * Next *source-only* register of @p cls: drawn from a sub-pool
     * that next() never hands out, so pure sources are never written
     * by the generated sequence (no read-after-write hazards,
     * Section 5.3.1).
     */
    isa::Reg nextSrc(isa::RegClass cls);

    /** Exclude a specific register (e.g. implicit XMM0 / CL / RAX). */
    void exclude(const isa::Reg &reg);

    /** Reset round-robin positions (keeps exclusions). */
    void rewind();

    /** Next fresh memory location in this zone. */
    isa::MemLoc nextMem(isa::RegClass base_class = isa::RegClass::Gpr64);

  private:
    std::vector<int> candidates(isa::RegClass cls, bool src) const;
    isa::Reg pick(isa::RegClass cls, bool src);

    Zone zone_;
    std::map<int, size_t> cursor_;        // per-(class,role) round robin
    std::vector<isa::Reg> excluded_;
    int next_mem_tag_;
    std::optional<isa::Reg> mem_base_;
};

/**
 * Build an instance of @p variant whose operands are all independent:
 * register sources/destinations from @p pool (distinct registers),
 * memory operands get a fresh location, immediates a fixed value.
 *
 * Implicit fixed registers are excluded from the pool automatically by
 * the caller's convention (they are what they are).
 */
isa::InstrInstance makeIndependent(const isa::InstrVariant &variant,
                                   RegPool &pool,
                                   isa::DivValueClass div_class =
                                       isa::DivValueClass::None);

/**
 * A sequence of @p count independent instances (round-robin operand
 * sets), used by the throughput measurement (Section 5.3.1) and as
 * blocking-instruction filler (Section 5.1).
 */
isa::Kernel independentSequence(const isa::InstrVariant &variant,
                                RegPool &pool, int count,
                                isa::DivValueClass div_class =
                                    isa::DivValueClass::None);

/**
 * Calibrated chain instruments for one microarchitecture.
 *
 * Latencies are obtained by self-chain measurements where possible
 * (MOVSX, PSHUFD, SHUFPS, pointer-chase loads); TEST is assumed to
 * have latency 1 (it is a simple ALU instruction, and the assumption
 * is validated by the test suite); CMOV chain latencies are derived
 * from a TEST+CMOV round trip.
 */
struct ChainInstruments
{
    const isa::InstrVariant *movsx_r64_r8 = nullptr;
    const isa::InstrVariant *movsx_r64_r16 = nullptr;
    const isa::InstrVariant *movsx_r64_r32 = nullptr;
    const isa::InstrVariant *test_r64 = nullptr;    ///< reg -> flags
    const isa::InstrVariant *cmovb_r64 = nullptr;   ///< CF -> reg
    const isa::InstrVariant *cmovs_r64 = nullptr;   ///< SPAZO -> reg
    const isa::InstrVariant *cmovnz_r64 = nullptr;  ///< SPAZO(Z) -> reg
    const isa::InstrVariant *pshufd = nullptr;      ///< int xmm shuffle
    const isa::InstrVariant *shufps = nullptr;      ///< fp xmm shuffle
    const isa::InstrVariant *vpermilps_x = nullptr; ///< fp AVX shuffle
    const isa::InstrVariant *vpermilps_y = nullptr;
    const isa::InstrVariant *vpshufd_x = nullptr;   ///< int AVX shuffle
    const isa::InstrVariant *vpshufd_y = nullptr;   ///< (AVX2)
    const isa::InstrVariant *pshufw_mm = nullptr;   ///< MMX shuffle
    const isa::InstrVariant *xor_r64 = nullptr;     ///< double-XOR trick
    const isa::InstrVariant *mov_load_r64 = nullptr;
    const isa::InstrVariant *and_r64 = nullptr;     ///< divider pinning
    const isa::InstrVariant *or_r64 = nullptr;
    const isa::InstrVariant *andps = nullptr;
    const isa::InstrVariant *orps = nullptr;
    const isa::InstrVariant *movsx_r64_r8_dep = nullptr; // partial fix

    // GPR<->vector transfer instruments for cross-class upper bounds.
    std::vector<const isa::InstrVariant *> to_gpr;   // vec/mmx -> gpr
    std::vector<const isa::InstrVariant *> from_gpr; // gpr -> vec/mmx
    const isa::InstrVariant *movq2dq = nullptr;
    const isa::InstrVariant *movdq2q = nullptr;

    double movsx_lat = 1.0;
    double int_shuffle_lat = 1.0;
    double fp_shuffle_lat = 1.0;
    double test_lat = 1.0;   ///< assumed (see above)
    double cmovb_lat = 1.0;  ///< calibrated via TEST+CMOV round trip
    double cmovs_lat = 1.0;
    double cmovnz_lat = 1.0;
    double load_lat = 4.0;   ///< pointer-chase calibrated
    double xor_lat = 1.0;
    double and_or_lat = 2.0; ///< AND+OR pinning pair
};

/** Look up and calibrate the instruments on @p harness's uarch. */
ChainInstruments calibrateInstruments(
    const sim::MeasurementHarness &harness);

} // namespace uops::core

#endif // UOPS_CORE_CODEGEN_H
