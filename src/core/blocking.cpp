#include "blocking.h"

#include <algorithm>

#include "support/status.h"

namespace uops::core {

using isa::InstrVariant;
using uarch::PortMask;

std::vector<PortMask>
BlockingSet::sortedCombos() const
{
    std::vector<PortMask> out;
    for (const auto &[mask, instr] : combos)
        out.push_back(mask);
    std::sort(out.begin(), out.end(), [](PortMask a, PortMask b) {
        int ca = uarch::portCount(a), cb = uarch::portCount(b);
        if (ca != cb)
            return ca < cb;
        return a < b;
    });
    return out;
}

std::string
BlockingSet::toString() const
{
    std::string out;
    for (PortMask mask : sortedCombos()) {
        const BlockingInstr &b = combos.at(mask);
        out += uarch::portMaskName(mask) + ": " + b.variant->name() +
               "\n";
    }
    return out;
}

BlockingFinder::BlockingFinder(const sim::MeasurementHarness &harness)
    : harness_(harness)
{
}

bool
BlockingFinder::isCandidate(const InstrVariant &variant,
                            bool avx_mode) const
{
    const isa::InstrAttributes &attrs = variant.attrs();
    if (attrs.is_system || attrs.is_serializing || attrs.is_pause ||
        attrs.is_nop || attrs.is_cf_reg)
        return false;
    if (attrs.has_lock_prefix || attrs.has_rep_prefix)
        return false;
    // Zero-latency candidates (eliminatable moves) are excluded: their
    // port usage is not stable.
    if (attrs.mov_elim_candidate)
        return false;
    // Divider users have value-dependent throughput; they always lose
    // the highest-throughput contest anyway, so skip the measurements.
    if (attrs.uses_divider)
        return false;
    // Loads (memory reads from distinct locations) are fine and are
    // the natural blockers for the load-port combos; memory-writing
    // candidates are excluded (the MOV store is added explicitly for
    // the store combos).
    if (variant.writesMemory())
        return false;
    if (!harness_.info().supports(variant))
        return false;
    // SSE/AVX separation (Section 5.1.1): never mix the two classes.
    bool vector_legacy = variant.hasVecOperand() && !attrs.is_avx;
    if (avx_mode && vector_legacy)
        return false;
    if (!avx_mode && attrs.is_avx)
        return false;
    return true;
}

IsolationInfo
BlockingFinder::measureIsolation(const InstrVariant &variant) const
{
    RegPool pool(RegPool::Zone::Analyzed);
    isa::Kernel body = independentSequence(variant, pool, 8);
    sim::Measurement m = harness_.measure(body);

    IsolationInfo info;
    info.cycles = m.cycles / 8.0;
    info.total_uops = m.totalPortUops() / 8.0;
    for (int p = 0; p < sim::kMaxPorts; ++p)
        if (m.port_uops[static_cast<size_t>(p)] / 8.0 > 0.04)
            info.ports |= static_cast<PortMask>(1u << p);
    return info;
}

BlockingSet
BlockingFinder::find(bool avx_mode) const
{
    const isa::InstrDb &db = harness_.timingDb().instrDb();
    const uarch::UArchInfo &info = harness_.info();

    BlockingSet set;
    for (const InstrVariant *variant : db.all()) {
        if (!isCandidate(*variant, avx_mode))
            continue;
        IsolationInfo iso = measureIsolation(*variant);
        // Only 1-µop instructions qualify (Section 5.1.1).
        if (iso.total_uops < 0.95 || iso.total_uops > 1.05)
            continue;
        if (iso.ports == 0)
            continue;
        auto it = set.combos.find(iso.ports);
        if (it == set.combos.end() ||
            iso.cycles < it->second.throughput) {
            BlockingInstr chosen;
            chosen.variant = variant;
            chosen.ports = iso.ports;
            chosen.throughput = iso.cycles;
            set.combos[iso.ports] = chosen;
        }
    }

    // Store-address / store-data combos: blocked by the MOV store.
    const InstrVariant *store = db.byName("MOV_M64_R64");
    panicIf(store == nullptr, "MOV store missing from the DB");
    for (PortMask mask :
         {info.store_addr_ports, info.store_data_ports}) {
        BlockingInstr b;
        b.variant = store;
        b.ports = mask;
        b.is_store = true;
        b.throughput = 1.0;
        set.combos[mask] = b;
    }
    return set;
}

} // namespace uops::core
