/**
 * @file
 * End-to-end characterization driver.
 *
 * Orchestrates the full pipeline of the paper for one uarch:
 * instrument calibration, blocking-instruction discovery (SSE and AVX
 * sets), then per instruction variant: latency pairs (Section 5.2),
 * port usage (Algorithm 1, using the measured maximum latency for
 * blockRep), measured throughput (5.3.1) and LP-computed throughput
 * (5.3.2). Results are emitted in a machine-readable XML format
 * (Section 6.4) and compared against the IACA clone (Table 1).
 */

#ifndef UOPS_CORE_CHARACTERIZE_H
#define UOPS_CORE_CHARACTERIZE_H

#include <functional>
#include <memory>

#include "core/blocking.h"
#include "core/latency.h"
#include "core/port_usage.h"
#include "core/throughput.h"
#include "iaca/iaca.h"
#include "support/xml.h"

namespace uops::core {

/** Everything measured for one instruction variant. */
struct InstrCharacterization
{
    const isa::InstrVariant *variant = nullptr;
    LatencyResult latency;
    PortUsageResult ports;
    ThroughputResult throughput;

    /** Intel-definition throughput from the port usage (LP); absent
     *  for divider instructions. */
    std::optional<Cycles> tp_ports;
};

/** Full result set for one microarchitecture. */
struct CharacterizationSet
{
    uarch::UArch arch = uarch::UArch::Nehalem;
    std::vector<InstrCharacterization> instrs;
    ChainInstruments instruments;
    BlockingSet sse_blocking;
    BlockingSet avx_blocking;

    const InstrCharacterization *
    find(const std::string &variant_name) const
    {
        for (const auto &c : instrs)
            if (c.variant->name() == variant_name)
                return &c;
        return nullptr;
    }
};

/**
 * The tool driver for one microarchitecture.
 */
class Characterizer
{
  public:
    struct Options
    {
        /** Only characterize variants accepted by this predicate
         *  (nullptr: all measurable variants). */
        std::function<bool(const isa::InstrVariant &)> filter;

        /** Harness configuration (repetitions, noise, ...). */
        sim::HarnessOptions harness;
    };

    Characterizer(const isa::InstrDb &db, uarch::UArch arch,
                  Options options = {});

    /** True when the tool measures this variant on this uarch. */
    bool isMeasurable(const isa::InstrVariant &variant) const;

    /** Run the full characterization. */
    CharacterizationSet run() const;

    /** Characterize a single variant (blocking sets built on demand). */
    InstrCharacterization characterize(
        const isa::InstrVariant &variant) const;

    /**
     * Run instrument calibration and blocking-instruction discovery
     * now instead of on the first characterize() call. Idempotent.
     */
    void prepare() const;

    /**
     * Adopt the completed setup of @p other (same db and uarch)
     * instead of rediscovering it. Setup is a deterministic function
     * of (db, uarch), so results are unchanged; the batch engine uses
     * this to pay the discovery cost once per uarch rather than once
     * per worker thread.
     */
    void primeFrom(const Characterizer &other) const;

    /**
     * Attach a measurement memo-cache to the harness (nullptr
     * detaches). Cached results are bit-identical to recomputation,
     * so attaching a cache never changes results; the batch engine
     * shares one cache per uarch across all workers. The cache must
     * have been built for the same (db, uarch, harness options).
     */
    void setMeasurementCache(sim::MeasurementCache *cache);

  private:
    void ensureSetup() const;

    const isa::InstrDb &db_;
    uarch::UArch arch_;
    Options options_;
    uarch::TimingDb timing_;
    sim::MeasurementHarness harness_;

    mutable bool setup_done_ = false;
    mutable ChainInstruments instruments_;
    mutable std::unique_ptr<BlockingSet> sse_blocking_;
    mutable std::unique_ptr<BlockingSet> avx_blocking_;
};

/** Machine-readable XML for one uarch's results (Section 6.4). */
std::unique_ptr<XmlNode> exportResultsXml(const CharacterizationSet &set);

/**
 * Hardware-vs-IACA agreement metrics (Table 1).
 */
struct IacaComparison
{
    int variants_compared = 0;   ///< supported by both tools
    int excluded_prefix = 0;     ///< REP/LOCK-prefixed (excluded)
    int uops_same = 0;           ///< same µop count (any version)
    int ports_compared = 0;      ///< same-count variants
    int ports_same = 0;          ///< same port usage (any version)

    double uopsAgreement() const;  ///< percentage, col 5 of Table 1
    double portsAgreement() const; ///< percentage, col 6 of Table 1
};

/** Compare a characterization set against all IACA versions. */
IacaComparison compareWithIaca(const isa::InstrDb &db,
                               const CharacterizationSet &set);

} // namespace uops::core

#endif // UOPS_CORE_CHARACTERIZE_H
