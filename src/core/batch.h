/**
 * @file
 * Parallel batch characterization across instruction variants and
 * microarchitectures.
 *
 * The paper's pipeline characterizes the entire instruction set on
 * every tested microarchitecture — thousands of independent
 * (variant, uarch) experiments. This engine sweeps them concurrently
 * on a work-stealing thread pool (support/thread_pool.h). Because the
 * simulator pipeline inside a Characterizer is stateful, every worker
 * owns one Characterizer per microarchitecture; results are written
 * into pre-sized slots indexed by task, so the aggregate report is
 * deterministic — byte-identical to a sequential sweep — regardless of
 * thread count or scheduling.
 *
 * Per-variant failures (simulator aborts, codegen limitations) are
 * recorded in the report instead of aborting the batch, mirroring how
 * the uops.info pipeline skips unmeasurable instructions but still
 * publishes the rest.
 */

#ifndef UOPS_CORE_BATCH_H
#define UOPS_CORE_BATCH_H

#include <functional>
#include <string>
#include <vector>

#include "core/characterize.h"
#include "support/obs/metrics.h"

namespace uops::core {

/** Outcome of one (variant, uarch) characterization task. */
struct VariantOutcome
{
    const isa::InstrVariant *variant = nullptr;
    bool ok = false;
    std::string error;              ///< failure message when !ok
    InstrCharacterization result;   ///< valid when ok
};

/**
 * Streaming consumer of finished characterization tasks.
 *
 * runBatchSweep delivers every task outcome exactly once, in the
 * deterministic work-list order (uarch-major, then variant id) — the
 * same order UArchReport::outcomes and the XML export iterate — no
 * matter how many worker threads run or how they are scheduled. A
 * reorder buffer inside the engine holds completed tasks back until
 * all earlier ones have been delivered, so sinks observe a serial
 * stream and need no locking of their own; calls arrive on worker
 * threads, never concurrently.
 *
 * This is how results leave the sweep without materializing an XML
 * tree (or, with BatchOptions::keep_results = false, without even
 * retaining the full report): db::SweepIngestor appends records
 * straight into an InstructionDatabase.
 */
class SweepSink
{
  public:
    virtual ~SweepSink() = default;

    /** One finished task (success or failure), in work-list order. */
    virtual void onVariant(uarch::UArch arch,
                           const VariantOutcome &outcome) = 0;

    /** Called once after the last onVariant, before runBatchSweep
     *  returns (also on the sweep's exception path — pair it with
     *  idempotent cleanup). */
    virtual void finish() {}
};

/** Configuration of a batch sweep. */
struct BatchOptions
{
    /** Worker threads (0: one per hardware thread). */
    size_t num_threads = 0;

    /** Per-uarch characterizer configuration (filter, harness). */
    Characterizer::Options characterizer;

    /**
     * Share one measurement memo-cache per uarch across all workers
     * (sim::MeasurementCache), so byte-identical kernels — the
     * blocking kernels of Algorithm 1 especially — are simulated once
     * per uarch instead of once per (variant, worker). Results are
     * unchanged (cached measurements are bit-identical); disable only
     * for differential testing or to bound memory.
     */
    bool share_measurements = true;

    /**
     * Progress hook, invoked from worker threads exactly once per
     * variant, after it finishes (successfully or not). Must be
     * thread-safe. An exception thrown from the hook is recorded as
     * that variant's failure; the hook is not re-invoked for it.
     */
    std::function<void(uarch::UArch, const isa::InstrVariant &, bool ok)>
        on_variant_done;

    /**
     * Streaming consumer of finished tasks (see SweepSink). Outcomes
     * are delivered in deterministic work-list order while the sweep
     * is still running; a sink exception aborts the sweep.
     */
    SweepSink *sink = nullptr;

    /**
     * When false, a task's InstrCharacterization is released right
     * after the sink consumed it, so the sweep never holds more than
     * the reorder window of results in memory; the returned report
     * then carries outcome status (ok / error) only — toSet() skips
     * the cleared slots, so it (and toXml()) yields no per-variant
     * results. Requires a sink.
     */
    bool keep_results = true;

    /**
     * Optional progress instrumentation. When set, the sweep
     * registers per-uarch series — `uops_sweep_variants_planned`,
     * `uops_sweep_variants_done_total`,
     * `uops_sweep_variants_failed_total` (all labeled uarch=...) —
     * plus a sweep-wide `uops_sweep_instructions_per_second` gauge,
     * and updates them from worker threads as tasks finish (one
     * relaxed increment each; the rate gauge is refreshed on every
     * completion). Registration is idempotent, so repeated sweeps
     * against one registry accumulate. Independently of this,
     * UOPS_TRACE=<file> records one Chrome trace-event span per
     * characterized variant.
     */
    obs::Registry *metrics = nullptr;
};

/** All outcomes for one microarchitecture, in variant-id order. */
struct UArchReport
{
    uarch::UArch arch = uarch::UArch::Nehalem;
    std::vector<VariantOutcome> outcomes;

    size_t numSucceeded() const;
    size_t numFailed() const;

    /** Successful outcomes repackaged for exportResultsXml(). */
    CharacterizationSet toSet() const;
};

/** Aggregate result of a sweep over several microarchitectures. */
struct CharacterizationReport
{
    std::vector<UArchReport> uarches;

    size_t numTasks() const;
    size_t numSucceeded() const;
    size_t numFailed() const;

    /**
     * Serializable uops.info-style XML: one <uopsInfo> element per
     * uarch (Section 6.4 format via exportResultsXml), plus one
     * <error> element per failed variant.
     */
    std::unique_ptr<XmlNode> toXml() const;

    /** toXml() serialized, including the XML declaration. */
    std::string toXmlString() const;
};

/**
 * Characterize every measurable variant of @p db (subject to the
 * options' filter) on every uarch in @p arches, in parallel.
 */
CharacterizationReport runBatchSweep(const isa::InstrDb &db,
                                     const std::vector<uarch::UArch> &arches,
                                     const BatchOptions &options = {});

} // namespace uops::core

#endif // UOPS_CORE_BATCH_H
