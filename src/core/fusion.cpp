#include "fusion.h"

#include "support/status.h"

namespace uops::core {

using isa::InstrVariant;
using isa::Kernel;

FusionAnalyzer::FusionAnalyzer(const sim::MeasurementHarness &harness)
    : harness_(harness)
{
}

FusionProbe
FusionAnalyzer::probe(const InstrVariant &producer,
                      const InstrVariant &branch) const
{
    const isa::InstrDb &db = harness_.timingDb().instrDb();
    const InstrVariant *nop = db.byName("NOP");
    panicIf(nop == nullptr, "fusion probe needs NOP");

    FusionProbe result;
    result.producer = &producer;
    result.branch = &branch;

    auto build = [&](bool separated) {
        RegPool pool(RegPool::Zone::Analyzed);
        Kernel body;
        body.push_back(makeIndependent(producer, pool));
        if (separated)
            body.push_back(isa::makeInstance(*nop, {}));
        body.push_back(isa::makeInstance(branch, {{.imm = 1}}));
        // Trailing NOP: no fusion across body-copy boundaries.
        body.push_back(isa::makeInstance(*nop, {}));
        return body;
    };

    result.uops_per_pair =
        harness_.measure(build(false)).totalPortUops();
    result.uops_separated =
        harness_.measure(build(true)).totalPortUops();
    result.fused =
        result.uops_per_pair < result.uops_separated - 0.5;
    return result;
}

std::vector<FusionProbe>
FusionAnalyzer::sweep() const
{
    const isa::InstrDb &db = harness_.timingDb().instrDb();
    const InstrVariant *jz = db.byName("JZ_I8");
    panicIf(jz == nullptr, "fusion sweep needs JZ");

    std::vector<FusionProbe> out;
    for (const char *name :
         {"CMP_R64_R64", "TEST_R64_R64", "ADD_R64_R64", "SUB_R64_R64",
          "AND_R64_R64", "INC_R64", "DEC_R64", "SHL_R64_I8",
          "CMP_R64_M64", "IMUL_R64_R64"}) {
        const InstrVariant *v = db.byName(name);
        if (v != nullptr)
            out.push_back(probe(*v, *jz));
    }
    return out;
}

} // namespace uops::core
