/**
 * @file
 * Blocking-instruction discovery (Section 5.1.1).
 *
 * A blocking instruction for a port combination P is an instruction
 * whose µops can use all ports in P but no other port sharing a
 * functional unit with P. The finder:
 *
 *  1. measures every eligible 1-µop instruction in isolation and
 *     groups the candidates by the set of ports they were observed on;
 *  2. picks the highest-throughput member of each group as the
 *     blocking instruction for that port combination;
 *  3. adds the MOV store instruction (2 µops: store-address +
 *     store-data) as the blocking instruction for the store combos.
 *
 * Excluded candidates: system and serializing instructions,
 * zero-latency instructions (NOPs, eliminated moves), PAUSE, and
 * register-based control flow. Two separate sets are produced — one
 * avoiding AVX instructions (for characterizing SSE code) and one
 * avoiding legacy-SSE vector instructions (for AVX code) — to avoid
 * SSE-AVX transition penalties.
 */

#ifndef UOPS_CORE_BLOCKING_H
#define UOPS_CORE_BLOCKING_H

#include <map>

#include "core/codegen.h"
#include "sim/harness.h"

namespace uops::core {

/** One chosen blocking instruction. */
struct BlockingInstr
{
    const isa::InstrVariant *variant = nullptr;
    uarch::PortMask ports = 0;
    double throughput = 0.0; ///< measured cycles per instruction
    bool is_store = false;   ///< MOV-store special (2 µops)
};

/** Blocking instructions for every discovered port combination. */
struct BlockingSet
{
    /** Combination -> instruction, keyed by port mask. */
    std::map<uarch::PortMask, BlockingInstr> combos;

    /** Combinations sorted by size then mask (Algorithm 1 order). */
    std::vector<uarch::PortMask> sortedCombos() const;

    std::string toString() const;
};

/** Per-candidate isolation measurement (reused by Algorithm 1). */
struct IsolationInfo
{
    uarch::PortMask ports = 0;  ///< ports with observed µops
    double total_uops = 0.0;    ///< µops per instruction (all ports)
    double cycles = 0.0;        ///< cycles per instruction
};

/**
 * Finds blocking instructions on the harness's microarchitecture.
 */
class BlockingFinder
{
  public:
    explicit BlockingFinder(const sim::MeasurementHarness &harness);

    /**
     * Run the discovery.
     *
     * @param avx_mode false: SSE set (no AVX instructions);
     *                 true: AVX set (no legacy-SSE vector instructions).
     */
    BlockingSet find(bool avx_mode) const;

    /** Measure a variant in isolation (8 independent copies). */
    IsolationInfo measureIsolation(const isa::InstrVariant &variant) const;

    /** Candidate filter from Section 5.1.1. */
    bool isCandidate(const isa::InstrVariant &variant,
                     bool avx_mode) const;

  private:
    const sim::MeasurementHarness &harness_;
};

} // namespace uops::core

#endif // UOPS_CORE_BLOCKING_H
