/**
 * @file
 * The sharded storage engine: per-uarch snapshot shards behind one
 * queryable catalog, with generation-numbered manifests, incremental
 * splicing, and atomic hot-swap friendly ownership.
 *
 * uops.info is a living dataset — the pipeline re-runs per
 * microarchitecture and republishes without rebuilding the world. The
 * monolithic InstructionDatabase snapshot could not express that: one
 * blob, rewritten wholesale, reloaded only by restarting the server.
 * The catalog splits storage at the natural boundary, one shard
 * (a single-uarch InstructionDatabase) per microarchitecture:
 *
 *   catalog-dir/
 *     manifest            generation number + per-shard (uarch,
 *                         record count, content hash, file name)
 *     SKL-<hash16>.shard  version-3 shard containers, named by the
 *     NHM-<hash16>.shard  FNV-1a hash of their bytes
 *
 * Content-addressed shard files make every useful property fall out:
 * an incremental re-sweep writes only the shards it re-characterized
 * (unchanged uarches keep their file, hash-verified), the manifest
 * swap is a single atomic rename, and a serving process can mmap
 * shards zero-copy without fear of in-place rewrites. Shards are held
 * as shared_ptr<const InstructionDatabase>, so a spliced catalog
 * shares untouched shards with its predecessor and a hot-swapped
 * server generation keeps old shards alive until the last in-flight
 * request drops its handle.
 *
 * A catalog answers the same queries the monolith did, routing by
 * uarch where possible and merging across shards (in chronological
 * uarch order, matching the monolith's arch-major row order) where
 * not. Catalogs are immutable once built; "mutation" is constructing
 * the next generation.
 */

#ifndef UOPS_DB_CATALOG_H
#define UOPS_DB_CATALOG_H

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "db/database.h"
#include "db/snapshot.h"

namespace uops::db {

/**
 * The catalog store is unusable or inconsistent: no loadable
 * generation, a content-addressed file whose bytes disagree with its
 * name, a malformed manifest. Derived from FatalError so generic
 * handlers keep working; callers that can degrade (server /reload,
 * `uopsq migrate`) catch it and keep the previous generation.
 */
class CatalogError : public FatalError
{
  public:
    explicit CatalogError(const std::string &msg) : FatalError(msg) {}
};

/**
 * What opening a catalog directory had to do to produce a consistent
 * generation. Empty (recovered == false, no events) on the happy
 * path. Filled — and garbage collection of rejected manifests,
 * orphaned .tmp files, and unreferenced shards enabled — when the
 * caller passes one to loadCatalogDir/openCatalog; loads without a
 * report never delete anything, so a reader cannot race a publisher
 * mid-commit into destroying its work.
 */
struct RecoveryReport
{
    /** A newer candidate generation existed but failed verification;
     *  an older fully-verified one is being served instead. */
    bool recovered = false;

    /** Generation actually loaded. */
    uint64_t generation = 0;

    /** Generations whose manifest or shards failed verification,
     *  newest first. */
    std::vector<uint64_t> rejected_generations;

    /** Human-readable log of rejections and repairs, in order. */
    std::vector<std::string> events;

    /** Files garbage-collected from the catalog directory. */
    std::vector<std::string> removed_files;

    /** One line: "generation N" or "recovered to generation N
     *  (rejected M, removed K files)". */
    std::string summary() const;
};

/** How shard containers are brought into memory. */
enum class LoadMode {
    Mmap,     ///< zero-copy: columns point into the mapped file
    Stream,   ///< portable copy through iostreams
};

/** One microarchitecture's shard inside a catalog. */
struct ShardEntry
{
    uarch::UArch arch = uarch::UArch::Nehalem;
    std::shared_ptr<const InstructionDatabase> db;
    uint64_t records = 0;
    uint64_t hash = 0;        ///< FNV-1a 64 of the shard file bytes
    std::string file;         ///< file name inside the catalog dir
                              ///  (empty for in-memory shards)
};

/** Cross-uarch difference of one variant, catalog-level. */
struct CatalogDiffEntry
{
    RecordView a;
    RecordView b;
    bool tp_differs = false;
    bool ports_differ = false;
    bool latency_differs = false;
};

struct CatalogDiff
{
    size_t common = 0;
    std::vector<CatalogDiffEntry> changed;
    std::vector<std::string> only_a;
    std::vector<std::string> only_b;
};

/**
 * Cross-generation analytics: which instructions got slower (or
 * faster) between two microarchitecture generations — the
 * "uops.info changelog" view. Unlike diff(), which reports any
 * difference, analytics is direction- and metric-aware and composes
 * with the scan executor's predicates, so "SSE2 instructions whose
 * throughput regressed from HSW to SKL" is one query.
 */
struct AnalyticsQuery
{
    uarch::UArch from = uarch::UArch::Nehalem;
    uarch::UArch to = uarch::UArch::Nehalem;

    enum class Metric : uint8_t { Tp, Latency, Any };
    enum class Direction : uint8_t { Regressed, Improved, Changed };

    Metric metric = Metric::Any;
    Direction direction = Direction::Regressed;

    /** Scan filter applied to both sides before the merge (mnemonic,
     *  extension, port constraints, ranges...). Its arch and limit
     *  fields are ignored — both sides are scanned whole and the cap
     *  below applies to merged entries. */
    Query filter;

    /** Cap on reported entries (matched counts are exact anyway). */
    size_t limit = SIZE_MAX;
};

/** One variant present on both sides whose metrics moved. */
struct AnalyticsEntry
{
    RecordView from;
    RecordView to;
    bool tp_changed = false;
    bool lat_changed = false;
};

struct AnalyticsResult
{
    size_t common = 0;   ///< variants on both sides (post-filter)
    size_t matched = 0;  ///< entries matching metric+direction
    std::vector<AnalyticsEntry> entries;  ///< name-ordered, capped
};

class DatabaseCatalog
{
  public:
    /** Build from per-uarch shards (each must be single-uarch; they
     *  are sorted into chronological uarch order). Hashes and record
     *  counts are computed for entries that carry none. */
    DatabaseCatalog(std::vector<ShardEntry> shards,
                    uint64_t generation);

    DatabaseCatalog(const DatabaseCatalog &) = delete;
    DatabaseCatalog &operator=(const DatabaseCatalog &) = delete;

    uint64_t generation() const { return generation_; }
    const std::vector<ShardEntry> &shards() const { return shards_; }

    /** One digest over the generation's content: FNV-1a folded over
     *  every (uarch, shard content hash) pair in uarch order. Two
     *  catalogs serving identical shard bytes share it regardless of
     *  generation number; any re-characterized shard changes it. The
     *  serving layer derives per-generation ETags from this at
     *  swapCatalog time (the blob-store build hook), so HTTP
     *  revalidation is keyed by the same content addresses the
     *  storage engine verifies on load. */
    uint64_t contentHash() const;

    /** The shard for one uarch; nullptr when absent. */
    const InstructionDatabase *shard(uarch::UArch arch) const;

    // ---- monolith-equivalent queries --------------------------------

    size_t numRecords() const;
    size_t numRecords(uarch::UArch arch) const;
    std::vector<uarch::UArch> uarches() const;

    std::optional<RecordView> find(uarch::UArch arch,
                                   std::string_view name) const;

    /** All records with this variant name, in uarch order. */
    std::vector<RecordView> findByName(std::string_view name) const;

    /**
     * Indexed search. Routed to a single shard when the query
     * constrains the uarch; otherwise per-shard results are
     * concatenated in chronological uarch order — exactly the row
     * order of the old arch-major monolith. Query::limit spans
     * shards.
     */
    std::vector<RecordView> search(const Query &query) const;

    CatalogDiff diff(uarch::UArch a, uarch::UArch b) const;

    /** Two filtered shard scans plus a name merge; see
     *  AnalyticsQuery. Empty result when either uarch is absent. */
    AnalyticsResult analytics(const AnalyticsQuery &query) const;

    core::CharacterizationSet
    toCharacterizationSet(uarch::UArch arch,
                          const isa::InstrDb &instr_db) const;

    // ---- construction helpers ---------------------------------------

    /**
     * Split a multi-uarch monolith into per-uarch shards (the v2 ->
     * v3 migration, and the compatibility path for loading legacy
     * snapshots). Lossless and deterministic: each shard's bytes are
     * identical to what a fresh single-uarch sweep of the same
     * results would produce.
     */
    static std::shared_ptr<const DatabaseCatalog>
    fromMonolith(const InstructionDatabase &db, uint64_t generation);

    /**
     * Next generation: @p base with @p fresh shards spliced in (per
     * uarch, replacing or adding); untouched shards are shared, not
     * copied. This is the commit step of an incremental sweep.
     */
    static std::shared_ptr<const DatabaseCatalog>
    splice(const DatabaseCatalog &base,
           std::vector<ShardEntry> fresh);

  private:
    std::vector<ShardEntry> shards_;   ///< uarch-ascending
    uint64_t generation_ = 0;
};

// ---- directory store -------------------------------------------------

/** Legacy (pre-numbered) manifest file name inside a catalog
 *  directory. Still read as a fallback candidate; no longer
 *  written. */
extern const char *const kManifestFile;

/** Per-generation manifest file name ("manifest.0000000007"). Each
 *  save commits one of these; the newest fully-verified one wins on
 *  load, so an older generation remains a durable fallback. */
std::string manifestFileName(uint64_t generation);

/**
 * Persist @p catalog under @p dir (created if missing): every shard
 * whose content-addressed file is not already present is written
 * (atomically, fsynced), present files are hash-verified, and the
 * generation's manifest is committed by one atomic rename — a
 * concurrent reader sees either the old or the new generation, never
 * a torn one. Shard files of older generations are left in place (a
 * serving process may still have them mapped); only manifests older
 * than the newest few are pruned.
 */
void saveCatalogDir(const DatabaseCatalog &catalog,
                    const std::string &dir);

/**
 * Load a catalog directory. Shard content is hash-verified against
 * the manifest (@p verify_hashes), so a spliced catalog's untouched
 * shards are provably the bytes the previous generation wrote.
 *
 * A bad candidate — truncated or corrupt manifest, missing or
 * hash-mismatched shard — is *recoverable*: the loader falls back to
 * the newest older generation that verifies fully. Pass @p report to
 * learn what was rejected and to enable garbage collection of the
 * rejected manifests, stray .tmp files, and unreferenced shards.
 * Throws CatalogError only when no generation verifies at all.
 */
std::shared_ptr<const DatabaseCatalog>
loadCatalogDir(const std::string &dir,
               LoadMode mode = LoadMode::Mmap,
               bool verify_hashes = true,
               RecoveryReport *report = nullptr);

/** Newest generation any manifest in the directory claims (cheap
 *  name/header scan, no verification; nullopt when there is no
 *  manifest at all). Powers `serve --watch`. */
std::optional<uint64_t>
readCatalogGeneration(const std::string &dir);

/**
 * Open either storage format: a directory is a v3 sharded catalog
 * (with recovery semantics as loadCatalogDir), a file is a legacy v2
 * monolith (split per uarch via fromMonolith, generation 0) or a
 * single v3 shard file.
 */
std::shared_ptr<const DatabaseCatalog>
openCatalog(const std::string &path,
            LoadMode mode = LoadMode::Mmap,
            RecoveryReport *report = nullptr);

/**
 * Lossless v2 -> v3 migration: load the monolith at @p snapshot_path,
 * shard it per uarch, and write a generation-1 catalog under
 * @p dir. v1 snapshots are still refused (their doubles cannot be
 * reproduced bit-exactly).
 */
void migrateSnapshot(const std::string &snapshot_path,
                     const std::string &dir);

// ---- sweep integration -----------------------------------------------

/**
 * Streaming sweep -> sharded catalog sink: like SweepIngestor, but
 * every uarch accumulates into its own shard database, so the result
 * is per-uarch shards ready to splice. Delivery order (uarch-major,
 * variant-id) makes each shard bit-identical to a single-uarch sweep
 * of the same variants — the property that lets an incremental
 * re-sweep reproduce a full sweep's bytes.
 */
class CatalogSweepIngestor final : public core::SweepSink
{
  public:
    CatalogSweepIngestor() = default;
    ~CatalogSweepIngestor() override { finishOnce(); }

    void onVariant(uarch::UArch arch,
                   const core::VariantOutcome &outcome) override;
    void finish() override { finishOnce(); }

    size_t numIngested() const { return ingested_; }

    /** The finished shards (call after the sweep returned). An arch
     *  swept with zero successful variants still yields an (empty)
     *  shard, so a re-sweep can erase a uarch deliberately. */
    std::vector<ShardEntry> takeShards();

    /** Pre-register @p arch so it yields a shard even when the sweep
     *  produces no successful outcome for it. */
    void declareArch(uarch::UArch arch);

  private:
    void finishOnce();

    std::map<uarch::UArch, std::unique_ptr<InstructionDatabase>>
        shards_;
    size_t ingested_ = 0;
    bool finished_ = false;
};

/**
 * Incremental sweep: characterize @p arches (with @p options) and
 * splice the resulting shards into @p base. Pass base = nullptr for
 * a full fresh catalog (generation 1). The sweep report is returned
 * through @p report_out when non-null.
 */
std::shared_ptr<const DatabaseCatalog>
runCatalogSweep(const isa::InstrDb &instrs,
                const std::vector<uarch::UArch> &arches,
                core::BatchOptions options,
                const DatabaseCatalog *base,
                core::CharacterizationReport *report_out = nullptr);

} // namespace uops::db

#endif // UOPS_DB_CATALOG_H
