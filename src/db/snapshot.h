/**
 * @file
 * Versioned binary snapshot format for the instruction database.
 *
 * Layout (version 2, little-endian, mmap-friendly):
 *
 *   header   8-byte magic "UOPSDB\x1a\n", u32 version, u32 endian tag
 *            (0x0A0B0C0D as written by the producer — a reader on a
 *            byte-swapped host rejects the file instead of misreading
 *            it), u64 record count
 *   arrays   the columnar arrays of InstructionDatabase, in a fixed
 *            order, each as: u64 element count, raw element bytes,
 *            zero padding to the next 8-byte boundary
 *
 * Version 2 stores every cycle column as fixed-point int64 hundredths
 * of a cycle (uops::Cycles) instead of v1's IEEE doubles — same
 * widths and offsets, integer content. v1 files are refused with an
 * explicit error; re-ingest the results XML to migrate.
 *
 * Because every array is a contiguous raw dump aligned to 8 bytes, a
 * loader may equally point into a memory-mapped buffer instead of
 * copying; this implementation reads through iostreams for
 * portability. The in-memory query indexes are *not* serialized —
 * they are deterministically rebuilt on load, so two databases with
 * equal snapshots answer every query identically.
 *
 * Snapshots are bit-exact: save(load(save(db))) == save(db), and a
 * database ingested from XML produces the same bytes as one ingested
 * in memory from the same results (see tests/db_test.cpp).
 */

#ifndef UOPS_DB_SNAPSHOT_H
#define UOPS_DB_SNAPSHOT_H

#include <iosfwd>
#include <memory>
#include <string>

#include "db/database.h"

namespace uops::db {

/** Current snapshot format version. */
constexpr uint32_t kSnapshotVersion = 2;

/** Serialize @p db to @p os (throws FatalError on stream failure). */
void saveSnapshot(const InstructionDatabase &db, std::ostream &os);

/** Serialized snapshot bytes. */
std::string snapshotBytes(const InstructionDatabase &db);

/**
 * Deserialize a snapshot (throws FatalError on malformed input:
 * bad magic, unsupported version, foreign endianness, truncated or
 * inconsistent arrays).
 */
std::unique_ptr<InstructionDatabase> loadSnapshot(std::istream &is);

/** Parse a snapshot held in memory. */
std::unique_ptr<InstructionDatabase>
loadSnapshotBytes(const std::string &bytes);

/** Save to / load from a file path. */
void saveSnapshotFile(const InstructionDatabase &db,
                      const std::string &path);
std::unique_ptr<InstructionDatabase>
loadSnapshotFile(const std::string &path);

} // namespace uops::db

#endif // UOPS_DB_SNAPSHOT_H
