/**
 * @file
 * Versioned binary container formats for the instruction database.
 *
 * Two container kinds share one layout family (little-endian,
 * mmap-friendly, every array 8-byte aligned):
 *
 *   monolith (version 2)
 *     header   8-byte magic "UOPSDB\x1a\n", u32 version, u32 endian
 *              tag (0x0A0B0C0D as written by the producer — a reader
 *              on a byte-swapped host rejects the file instead of
 *              misreading it), u64 record count
 *     arrays   the columnar arrays of InstructionDatabase, in a fixed
 *              order, each as: u64 element count, raw element bytes,
 *              zero padding to the next 8-byte boundary
 *
 *   shard (version 3)
 *     identical, plus one u64 microarchitecture id after the record
 *     count. A shard holds exactly one uarch's records — the unit of
 *     the sharded catalog store (catalog.h), which writes one shard
 *     file per uarch plus a manifest.
 *
 * Version 2 remains fully readable (and writable, for migration
 * tests); v1 files (IEEE-double cycle columns) are refused with an
 * explicit error. Because every array is a contiguous raw dump
 * aligned to 8 bytes, the shard loader has a zero-copy path: it binds
 * the columns straight into a memory-mapped buffer
 * (loadShardMapped), the database keeping the mapping alive. The
 * stream loaders copy through iostreams instead. The in-memory query
 * indexes are *not* serialized — they are deterministically rebuilt
 * on load, so two databases with equal container bytes answer every
 * query identically, whichever loader produced them.
 *
 * Containers are bit-exact: save(load(save(db))) == save(db), and a
 * database ingested from XML produces the same bytes as one ingested
 * in memory from the same results (see tests/db_test.cpp).
 */

#ifndef UOPS_DB_SNAPSHOT_H
#define UOPS_DB_SNAPSHOT_H

#include <iosfwd>
#include <memory>
#include <string>

#include "db/database.h"
#include "support/mmap_file.h"
#include "support/status.h"

namespace uops::db {

/**
 * A container failed validation on load: bad magic, unsupported
 * version, foreign endianness, truncation, or inconsistent columns.
 * Derived from FatalError so generic handlers (and existing
 * EXPECT_THROW(..., FatalError) tests) still work, but catchable on
 * its own so the catalog's recovery path can treat "this file is
 * bad" as a per-generation condition instead of a process-fatal one.
 */
class StoreError : public FatalError
{
  public:
    explicit StoreError(const std::string &msg) : FatalError(msg) {}
};

/** Monolith (single-file, multi-uarch) container version. */
constexpr uint32_t kSnapshotVersion = 2;

/** Per-uarch shard container version. */
constexpr uint32_t kShardVersion = 3;

/** Serialize @p db to @p os (throws FatalError on stream failure). */
void saveSnapshot(const InstructionDatabase &db, std::ostream &os);

/** Serialized monolith bytes. */
std::string snapshotBytes(const InstructionDatabase &db);

/**
 * Deserialize a monolith or shard container (throws FatalError on
 * malformed input: bad magic, unsupported version, foreign
 * endianness, truncated or inconsistent arrays, or a shard whose
 * records disagree with its header uarch).
 */
std::unique_ptr<InstructionDatabase> loadSnapshot(std::istream &is);

/** Parse a container held in memory. */
std::unique_ptr<InstructionDatabase>
loadSnapshotBytes(const std::string &bytes);

/** Save to / load from a file path. */
void saveSnapshotFile(const InstructionDatabase &db,
                      const std::string &path);
std::unique_ptr<InstructionDatabase>
loadSnapshotFile(const std::string &path);

// ---- per-uarch shards (catalog storage unit) -------------------------

/**
 * Serialize @p db as a version-3 shard for @p arch. Every record must
 * belong to @p arch (throws FatalError otherwise) — a shard is
 * single-uarch by definition.
 */
void saveShard(const InstructionDatabase &db, uarch::UArch arch,
               std::ostream &os);

/** Serialized shard bytes (the content that shard hashes cover). */
std::string shardBytes(const InstructionDatabase &db,
                       uarch::UArch arch);

/**
 * Load a shard through the stream path (columns copied into owned
 * storage). @p expected guards against a manifest/file mismatch.
 */
std::unique_ptr<InstructionDatabase>
loadShard(std::istream &is, uarch::UArch expected);

/**
 * Zero-copy shard load: columns are bound directly into @p mapping,
 * which the returned database keeps alive; only the rebuilt indexes
 * allocate. The first mutation of the returned database (ingesting on
 * top of it) copies the touched columns out of the mapping.
 */
std::unique_ptr<InstructionDatabase>
loadShardMapped(std::shared_ptr<const MappedFile> mapping,
                uarch::UArch expected);

} // namespace uops::db

#endif // UOPS_DB_SNAPSHOT_H
