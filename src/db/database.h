/**
 * @file
 * The queryable instruction-performance database.
 *
 * The paper's public artifact is not the characterization algorithms —
 * it is uops.info, a continuously queried database of per-instruction
 * latency / throughput / port-usage results. This module is the
 * consumer-side counterpart of the batch engine (core/batch.h): it
 * ingests characterization results and answers the read-heavy queries
 * downstream tools (uiCA-style simulators, throughput predictors)
 * issue against uops.info.
 *
 * Storage is columnar: one flat array per field, with all strings
 * interned in a shared pool and all variable-length payloads (port
 * usage entries, latency pairs) packed into flat side arrays
 * referenced by (offset, count). This keeps point lookups and column
 * scans cache-friendly and makes the snapshot format (snapshot.h) a
 * direct dump of the arrays. Columns are owned-or-borrowed
 * (support/column.h): ingest grows owned vectors, while the zero-copy
 * shard loader binds every column straight into a memory-mapped
 * buffer that the database keeps alive via a shared backing handle;
 * the first mutation of a borrowed column transparently copies it
 * out, so a mapped database is never written through.
 *
 * Three ingest paths produce *bit-identical* databases for the same
 * results: the in-memory path (a CharacterizationSet / batch report),
 * the streaming path (SweepIngestor attached to a running
 * runBatchSweep), and the XML path (a re-parsed Section 6.4 export).
 * The guarantee is by representation, not by canonicalization: every
 * cycle value in the pipeline is a fixed-point Cycles (hundredths of
 * a core cycle, the paper's reporting granularity), stored here as a
 * raw integer column, so equality is integer equality and no text
 * round trip is involved anywhere. The golden round-trip tests in
 * tests/db_test.cpp pin the property.
 *
 * All query methods are const and safe to call concurrently from any
 * number of threads once ingestion is finished; ingest/load must not
 * race with readers.
 */

#ifndef UOPS_DB_DATABASE_H
#define UOPS_DB_DATABASE_H

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/batch.h"
#include "isa/results_xml.h"
#include "support/column.h"
#include "support/cycles.h"
#include "uarch/timing.h"

namespace uops::db {

/** Search predicate; unset fields do not constrain. */
struct Query
{
    std::optional<uarch::UArch> arch;
    std::optional<std::string> name;       ///< Exact variant name.
    std::optional<std::string> mnemonic;   ///< Exact mnemonic.
    std::optional<std::string> extension;  ///< ISA set, e.g. "SSE2".

    /** Records whose port-usage union covers all these ports
     *  ("everything that uses p0+p5"). 0: no constraint. */
    uarch::PortMask uses_ports = 0;

    /** Records whose port-usage union stays within these ports
     *  ("everything dispatching only to p0/p1/p5"). */
    std::optional<uarch::PortMask> ports_subset;

    /** Records whose port-usage union equals exactly this mask. */
    std::optional<uarch::PortMask> ports_exact;

    /** Measured-throughput range (inclusive), in the database's
     *  fixed-point representation. Double-valued user input converts
     *  once at the boundary via tpBoundMin / tpBoundMax. */
    std::optional<Cycles> tp_min, tp_max;

    /** Max-latency range (inclusive, over all operand pairs). */
    std::optional<int> lat_min, lat_max;

    /** Fused-uop-count range (inclusive). */
    std::optional<int> uops_min, uops_max;

    /** RecordFlag bits that must all be present (e.g. "has a
     *  with-blocking-instructions throughput"). 0: no constraint. */
    uint8_t has_flags = 0;

    /** Result cap (applied after filtering, in row order). */
    size_t limit = SIZE_MAX;
};

/**
 * Fixed-point bound of a double-valued throughput constraint: the
 * smallest (Min) / largest (Max) representable hundredth-of-a-cycle
 * inside [v, +inf) / (-inf, v]. Exact hundredths (up to binary
 * representation slop, e.g. 0.33 * 100 = 32.999...96) map to
 * themselves, so a converted range matches records precisely where a
 * double comparison against toDouble() would. The conversion happens
 * once where doubles enter the system (HTTP parameters, CLI flags);
 * Query itself carries Cycles.
 *
 * @throws FatalError on NaN (the service layer answers 400).
 */
Cycles tpBoundMin(double v);
Cycles tpBoundMax(double v);

class InstructionDatabase;

/** Read-only view of one record (row) of the database. */
class RecordView
{
  public:
    RecordView(const InstructionDatabase &db, uint32_t row)
        : db_(&db), row_(row)
    {
    }

    uint32_t row() const { return row_; }
    uarch::UArch arch() const;
    std::string_view name() const;
    std::string_view mnemonic() const;
    std::string_view extension() const;

    /** Inferred port usage (Algorithm 1 result). */
    uarch::PortUsage portUsage() const;

    /** Union mask over all port-usage entries. */
    uarch::PortMask portUnion() const;

    int uopCount() const;
    int maxLatency() const;

    Cycles tpMeasured() const;
    std::optional<Cycles> tpWithBreakers() const;
    std::optional<Cycles> tpSlow() const;
    std::optional<Cycles> tpFromPorts() const;

    std::vector<isa::ResultLatency> latencies() const;
    std::optional<Cycles> sameRegCycles() const;
    std::optional<Cycles> storeRoundTrip() const;

  private:
    const InstructionDatabase *db_;
    uint32_t row_;
};

/** One cross-uarch difference for a variant present on both sides. */
struct DiffEntry
{
    uint32_t row_a = 0;
    uint32_t row_b = 0;
    bool tp_differs = false;
    bool ports_differ = false;
    bool latency_differs = false;
};

/** Field-by-field record comparison shared by the monolith diff and
 *  the catalog diff — one definition of "changed". Fills the three
 *  *_differs flags of @p entry (a DiffEntry or CatalogDiffEntry). */
template <typename Entry>
void
compareRecords(const RecordView &a, const RecordView &b, Entry &entry)
{
    entry.tp_differs = a.tpMeasured() != b.tpMeasured();
    entry.ports_differ = !(a.portUsage() == b.portUsage());
    auto lats_a = a.latencies();
    auto lats_b = b.latencies();
    entry.latency_differs = lats_a.size() != lats_b.size();
    for (size_t i = 0; !entry.latency_differs && i < lats_a.size();
         ++i) {
        const auto &la = lats_a[i];
        const auto &lb = lats_b[i];
        entry.latency_differs =
            la.src_op != lb.src_op || la.dst_op != lb.dst_op ||
            la.cycles != lb.cycles ||
            la.upper_bound != lb.upper_bound ||
            la.slow_cycles != lb.slow_cycles;
    }
}

/** Result of diff(): what changed between two microarchitectures. */
struct DiffResult
{
    size_t common = 0;                 ///< variants present on both
    std::vector<DiffEntry> changed;    ///< differing variants only
    std::vector<std::string> only_a;   ///< variant names unique to a
    std::vector<std::string> only_b;   ///< variant names unique to b
};

class InstructionDatabase
{
  public:
    InstructionDatabase() = default;

    /** Not copyable or movable: the in-memory indexes hold views into
     *  the string pool (snapshot load hands out unique_ptr instead). */
    InstructionDatabase(const InstructionDatabase &) = delete;
    InstructionDatabase &operator=(const InstructionDatabase &) = delete;

    // ---- ingestion ---------------------------------------------------

    /** Ingest one uarch's results from the in-memory pipeline. */
    void ingest(const core::CharacterizationSet &set);

    /** Ingest every uarch of a batch-sweep report (ok outcomes). */
    void ingest(const core::CharacterizationReport &report);

    /**
     * Ingest a parsed results-XML document (Section 6.4).
     *
     * @param resolve Instruction database used to recover the ISA
     *        extension of each variant (the results XML does not carry
     *        it). Pass the same database the results were produced
     *        from to obtain a bit-identical ingest; nullptr records
     *        the extension as "?".
     */
    void ingestResults(const isa::ResultsDoc &doc,
                       const isa::InstrDb *resolve);

    // ---- queries -----------------------------------------------------

    size_t numRecords() const { return arch_.size(); }

    /** Microarchitectures present, in chronological (enum) order. */
    std::vector<uarch::UArch> uarches() const;

    /** Number of records stored for one uarch. */
    size_t numRecords(uarch::UArch arch) const;

    /** Point lookup by (uarch, variant name). */
    std::optional<uint32_t> find(uarch::UArch arch,
                                 std::string_view name) const;

    /** All rows (any uarch) with this variant name. */
    std::vector<uint32_t> findByName(std::string_view name) const;

    /** Indexed + columnar-scan search. */
    std::vector<uint32_t> search(const Query &query) const;

    /** What changed for variants present on both uarches. */
    DiffResult diff(uarch::UArch a, uarch::UArch b) const;

    RecordView record(uint32_t row) const { return {*this, row}; }

    /**
     * Rebuild a CharacterizationSet for one uarch from the stored
     * records, resolving variant pointers against @p instr_db; rows
     * whose variant name is unknown there are skipped. Powers the
     * /predict endpoint (core::PerformancePredictor input).
     */
    core::CharacterizationSet
    toCharacterizationSet(uarch::UArch arch,
                          const isa::InstrDb &instr_db) const;

  private:
    friend class RecordView;
    friend class ScanExecutor;
    friend class SweepIngestor;
    friend class CatalogSweepIngestor;
    friend class DatabaseCatalog;
    friend struct SnapshotCodec;

    /** Canonical record, shared by every ingest path. */
    struct Canonical
    {
        uint8_t arch = 0;
        std::string name, mnemonic, extension;
        uarch::PortUsage usage;
        Cycles tp_measured;
        std::optional<Cycles> tp_breakers, tp_slow, tp_ports;
        std::vector<isa::ResultLatency> lats;
        std::optional<Cycles> same_reg, store_rt;
    };

    void append(const Canonical &rec);
    void appendCharacterization(uint8_t arch,
                                const core::InstrCharacterization &c);
    void appendSet(const core::CharacterizationSet &set);
    uint32_t intern(std::string_view s);
    std::string_view str(uint32_t id) const;
    void rebuildIndexes();

    // ---- columnar storage (everything below is serialized) ----------

    /** String pool: bytes + (offset, length) spans, id = span index. */
    BytePool pool_;
    Column<uint32_t> str_off_, str_len_;

    /** Per-record columns (parallel, row-indexed). */
    Column<uint8_t> arch_;
    Column<uint32_t> name_, mnemonic_, ext_;        ///< string ids
    Column<uint16_t> port_union_;
    Column<uint16_t> uop_count_;
    Column<uint16_t> max_latency_;
    Column<uint8_t> flags_;                         ///< presence bits
    /** Cycle columns hold raw fixed-point integers (Cycles is a
     *  single int64, trivially copyable), dumped as-is by snapshots. */
    Column<Cycles> tp_measured_, tp_breakers_, tp_slow_, tp_ports_;
    Column<Cycles> same_reg_, store_rt_;
    Column<uint32_t> ports_off_, lat_off_;
    Column<uint16_t> ports_n_, lat_n_;

    /** Flat pools for variable-length payloads. */
    Column<uint16_t> pu_mask_, pu_count_;           ///< port usage
    Column<int16_t> lat_src_, lat_dst_;             ///< latency pairs
    Column<uint8_t> lat_flags_;
    Column<Cycles> lat_cycles_, lat_slow_;

    /** Keep-alive for the mapped buffer borrowed columns point into
     *  (null for owned databases). */
    std::shared_ptr<const void> backing_;

    // ---- in-memory indexes (rebuilt, never serialized) ---------------

    std::map<std::string, uint32_t, std::less<>> intern_map_;

    /** Keyed name-first so findByName is one equal-range walk and
     *  find(arch, name) stays a point lookup. */
    std::map<std::pair<std::string_view, uint8_t>, uint32_t>
        by_name_arch_;
    std::map<std::string_view, std::vector<uint32_t>> by_mnemonic_;
    std::map<std::string_view, std::vector<uint32_t>> by_extension_;
    std::vector<uint32_t> tp_order_;   ///< rows by tp_measured
    std::vector<uint32_t> lat_order_;  ///< rows by max_latency

    /** Row run of one uarch. Ingest appends per-uarch blocks, so a
     *  uarch's rows are normally one contiguous [begin, end) and a
     *  uarch-filtered scan becomes a range restriction (scan.cpp);
     *  contiguous=false (interleaved rows) falls back to a per-row
     *  arch compare. begin == end: uarch absent. */
    struct ArchRun
    {
        uint32_t begin = 0, end = 0;
        bool contiguous = false;
    };
    std::array<ArchRun, 256> arch_runs_{};
};

/** Presence bits in the per-record flags_ column. */
enum RecordFlag : uint8_t {
    kHasTpBreakers = 1u << 0,
    kHasTpSlow = 1u << 1,
    kHasTpPorts = 1u << 2,
    kHasSameReg = 1u << 3,
    kHasStoreRt = 1u << 4,
};

/** Bits in the latency-pair lat_flags_ pool. */
enum LatencyFlag : uint8_t {
    kLatUpperBound = 1u << 0,
    kLatHasSlow = 1u << 1,
};

/**
 * Streaming sweep -> database sink (core::SweepSink): attach to
 * BatchOptions::sink and every successful characterization is
 * appended the moment the engine's reorder buffer releases it — no
 * XML tree, no retained report (pair with keep_results = false).
 * Because delivery order equals report iteration order, the result
 * is bit-identical to ingest(report) on the same sweep.
 *
 * finish() (invoked by runBatchSweep, also on its exception path)
 * rebuilds the query indexes; the destructor is a safety net for
 * sweeps that aborted before any delivery. One ingestor serves one
 * sweep; the database must not be read until the sweep returned.
 */
class SweepIngestor final : public core::SweepSink
{
  public:
    explicit SweepIngestor(InstructionDatabase &db) : db_(db) {}
    ~SweepIngestor() override { finishOnce(); }

    void onVariant(uarch::UArch arch,
                   const core::VariantOutcome &outcome) override;
    void finish() override { finishOnce(); }

    /** Successful records appended so far. */
    size_t numIngested() const { return ingested_; }

  private:
    void finishOnce();

    InstructionDatabase &db_;
    size_t ingested_ = 0;
    bool finished_ = false;
};

} // namespace uops::db

#endif // UOPS_DB_DATABASE_H
