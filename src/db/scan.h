/**
 * @file
 * Predicate-pushdown scan executor over the database's columns.
 *
 * Every query the database answers — /search filters, port-superset
 * lookups, range scans, the diff and analytics merges — is a
 * conjunction of per-column predicates applied to the columnar store.
 * Instead of one hand-written loop per query shape, a query compiles
 * into a PredicateSet and ScanExecutor::run evaluates it in three
 * tiers, cheapest first:
 *
 *  1. Index short-circuits. String-equality predicates (name,
 *     mnemonic, extension) never scan: they resolve through the
 *     in-memory equal-range indexes and intersect into a sorted
 *     candidate list. A selective throughput/latency range likewise
 *     pre-filters through the sorted order indexes when the window is
 *     small relative to the table.
 *  2. Arch-run restriction. Rows are ingested grouped by
 *     microarchitecture, so a uarch predicate usually collapses to a
 *     contiguous [begin, end) row range instead of a filter.
 *  3. Batched column scans. Whatever predicates remain run over the
 *     surviving row range in 64-row blocks, each predicate producing
 *     a 64-bit selection mask that is ANDed into the block's bitmap
 *     (with early-out once the bitmap is empty). The fixed-width
 *     integer columns (u8 arch/flags, u16 port masks / uop counts /
 *     latencies) use SSE2 compare+movemask kernels — 16 rows per
 *     instruction — with scalar fallbacks that the compiler can
 *     auto-vectorize; matching row ids are extracted from the bitmap
 *     with countr_zero, so the emission loop costs only the matches.
 *
 * Predicates are cheap POD values; a PredicateSet is a fixed-capacity
 * conjunction (no allocation). Text operands are views into
 * caller-owned storage and must outlive run(). Results are row ids in
 * ascending order, truncated to the limit — exactly the order and
 * truncation the hand-written loops produced, so rebuilding Query on
 * top of the executor is byte-identical at the HTTP layer (pinned by
 * tests/scan_test.cpp property tests and the server golden tests).
 */

#ifndef UOPS_DB_SCAN_H
#define UOPS_DB_SCAN_H

#include <array>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "db/database.h"
#include "support/cycles.h"
#include "uarch/uarch.h"

namespace uops::db {

/** One typed column predicate. Build via the factories below. */
struct ScanPredicate
{
    enum class Kind : uint8_t {
        kArchEq,        ///< arch column == a
        kNameEq,        ///< interned name == text
        kMnemonicEq,    ///< interned mnemonic == text
        kExtensionEq,   ///< interned extension == text
        kPortSuperset,  ///< (port_union & a) == a   ("uses all of")
        kPortSubset,    ///< (port_union & ~a) == 0  ("uses only")
        kPortExact,     ///< port_union == a
        kTpRange,       ///< a <= tp_measured.hundredths() <= b
        kLatRange,      ///< a <= max_latency <= b
        kUopRange,      ///< a <= uop_count <= b
        kFlagsAll,      ///< (flags & a) == a
    };

    Kind kind = Kind::kArchEq;
    int64_t a = 0;  ///< value / mask / inclusive lower bound
    int64_t b = 0;  ///< inclusive upper bound (range kinds only)

    /** Equality operand of the string kinds; a view into caller
     *  storage that must outlive the run() call. */
    std::string_view text{};
};

ScanPredicate archIs(uarch::UArch arch);
ScanPredicate nameIs(std::string_view name);
ScanPredicate mnemonicIs(std::string_view mnemonic);
ScanPredicate extensionIs(std::string_view extension);
ScanPredicate portsSuperset(uarch::PortMask mask);
ScanPredicate portsSubset(uarch::PortMask mask);
ScanPredicate portsExact(uarch::PortMask mask);
ScanPredicate tpBetween(std::optional<Cycles> lo,
                        std::optional<Cycles> hi);
ScanPredicate latBetween(std::optional<int> lo, std::optional<int> hi);
ScanPredicate uopsBetween(std::optional<int> lo, std::optional<int> hi);
ScanPredicate hasFlags(uint8_t flags);

/**
 * A fixed-capacity conjunction of predicates. A query needs at most
 * one predicate per column, so the capacity covers every Kind with no
 * heap allocation on the query path.
 */
class PredicateSet
{
  public:
    static constexpr size_t kCapacity = 12;

    /** Append one conjunct. @throws FatalError when full. */
    void add(const ScanPredicate &p);

    size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }
    const ScanPredicate *begin() const { return preds_.data(); }
    const ScanPredicate *end() const { return preds_.data() + size_; }
    const ScanPredicate &operator[](size_t i) const { return preds_[i]; }

  private:
    std::array<ScanPredicate, kCapacity> preds_{};
    size_t size_ = 0;
};

/** Compile a Query's set fields into the equivalent conjunction.
 *  Views into the query's strings: @p query must outlive run(). */
PredicateSet predicatesFromQuery(const Query &query);

/** What a run actually did — asserted by tests, exposed for tuning. */
struct ScanStats
{
    size_t rows_considered = 0;  ///< rows reaching predicate evaluation
    size_t rows_matched = 0;     ///< rows emitted (<= limit)
    bool used_string_index = false;  ///< equal-range pre-filter hit
    bool used_order_index = false;   ///< tp/lat order-index pre-filter
    bool used_arch_range = false;    ///< contiguous arch-run restriction
};

/**
 * Executes PredicateSets against one database. Stateless and cheap to
 * construct (holds only the reference); safe to use concurrently from
 * any number of threads once the database's ingest has finished.
 */
class ScanExecutor
{
  public:
    explicit ScanExecutor(const InstructionDatabase &db) : db_(db) {}

    /**
     * All rows satisfying every predicate, ascending, truncated to
     * @p limit. A string predicate whose operand is not even interned
     * short-circuits to no rows.
     */
    std::vector<uint32_t> run(const PredicateSet &preds,
                              size_t limit = SIZE_MAX,
                              ScanStats *stats = nullptr) const;

  private:
    const InstructionDatabase &db_;
};

} // namespace uops::db

#endif // UOPS_DB_SCAN_H
