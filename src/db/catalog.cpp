#include "catalog.h"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "support/hash.h"
#include "support/status.h"

namespace fs = std::filesystem;

namespace uops::db {

namespace {

constexpr char kManifestMagic[8] = {'U', 'O', 'P', 'S', 'M',
                                    'F', '\x1a', '\n'};
constexpr uint32_t kManifestVersion = 1;
constexpr uint32_t kEndianTag = 0x0A0B0C0Du;

std::string
shardFileName(uarch::UArch arch, uint64_t hash)
{
    return uarch::uarchShortName(arch) + "-" + hashHex(hash) +
           ".shard";
}

/** Stream sink that digests instead of storing: hashing a shard
 *  costs one serialization pass but no second copy of the bytes. */
class FnvStreamBuf final : public std::streambuf
{
  public:
    uint64_t hash() const { return hash_; }

  protected:
    int_type
    overflow(int_type ch) override
    {
        if (ch != traits_type::eof()) {
            char c = traits_type::to_char_type(ch);
            hash_ = fnv1a64(&c, 1, hash_);
        }
        return ch;
    }

    std::streamsize
    xsputn(const char *s, std::streamsize n) override
    {
        hash_ = fnv1a64(s, static_cast<size_t>(n), hash_);
        return n;
    }

  private:
    uint64_t hash_ = kFnvOffsetBasis;
};

uint64_t
shardHash(const InstructionDatabase &db, uarch::UArch arch)
{
    FnvStreamBuf buffer;
    std::ostream os(&buffer);
    saveShard(db, arch, os);
    return buffer.hash();
}

/** (name, row) pairs of one shard, sorted by name (names are unique
 *  within a shard: one record per (uarch, variant)). */
std::vector<std::pair<std::string_view, uint32_t>>
sortedNames(const InstructionDatabase &db)
{
    std::vector<std::pair<std::string_view, uint32_t>> out;
    out.reserve(db.numRecords());
    for (uint32_t row = 0;
         row < static_cast<uint32_t>(db.numRecords()); ++row)
        out.emplace_back(db.record(row).name(), row);
    std::sort(out.begin(), out.end());
    return out;
}

std::string
readFileBytes(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    fatalIf(!is, "db catalog: cannot open ", path);
    std::ostringstream buffer;
    buffer << is.rdbuf();
    fatalIf(!is && !is.eof(), "db catalog: read of ", path,
            " failed");
    return std::move(buffer).str();
}

void
writeFileAtomic(const std::string &path, const std::string &bytes)
{
    const std::string tmp = path + ".tmp";
    {
        std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
        fatalIf(!os, "db catalog: cannot open ", tmp,
                " for writing");
        os.write(bytes.data(),
                 static_cast<std::streamsize>(bytes.size()));
        os.flush();
        fatalIf(!os, "db catalog: write to ", tmp, " failed");
    }
    std::error_code ec;
    fs::rename(tmp, path, ec);
    fatalIf(static_cast<bool>(ec), "db catalog: rename ", tmp,
            " -> ", path, ": ", ec.message());
}

} // namespace

const char *const kManifestFile = "manifest";

// ---------------------------------------------------------------------
// DatabaseCatalog
// ---------------------------------------------------------------------

DatabaseCatalog::DatabaseCatalog(std::vector<ShardEntry> shards,
                                 uint64_t generation)
    : shards_(std::move(shards)), generation_(generation)
{
    for (ShardEntry &entry : shards_) {
        fatalIf(entry.db == nullptr, "db catalog: null shard for ",
                uarch::uarchShortName(entry.arch));
        for (uarch::UArch arch : entry.db->uarches())
            fatalIf(arch != entry.arch,
                    "db catalog: shard for ",
                    uarch::uarchShortName(entry.arch),
                    " contains records for ",
                    uarch::uarchShortName(arch));
        entry.records = entry.db->numRecords();
        if (entry.hash == 0)
            entry.hash = shardHash(*entry.db, entry.arch);
        if (entry.file.empty())
            entry.file = shardFileName(entry.arch, entry.hash);
    }
    std::sort(shards_.begin(), shards_.end(),
              [](const ShardEntry &a, const ShardEntry &b) {
                  return static_cast<uint8_t>(a.arch) <
                         static_cast<uint8_t>(b.arch);
              });
    for (size_t i = 1; i < shards_.size(); ++i)
        fatalIf(shards_[i - 1].arch == shards_[i].arch,
                "db catalog: duplicate shard for ",
                uarch::uarchShortName(shards_[i].arch));
}

const InstructionDatabase *
DatabaseCatalog::shard(uarch::UArch arch) const
{
    for (const ShardEntry &entry : shards_)
        if (entry.arch == arch)
            return entry.db.get();
    return nullptr;
}

size_t
DatabaseCatalog::numRecords() const
{
    size_t n = 0;
    for (const ShardEntry &entry : shards_)
        n += entry.db->numRecords();
    return n;
}

size_t
DatabaseCatalog::numRecords(uarch::UArch arch) const
{
    const InstructionDatabase *db = shard(arch);
    return db ? db->numRecords() : 0;
}

std::vector<uarch::UArch>
DatabaseCatalog::uarches() const
{
    std::vector<uarch::UArch> out;
    out.reserve(shards_.size());
    for (const ShardEntry &entry : shards_)
        if (entry.db->numRecords() > 0)
            out.push_back(entry.arch);
    return out;
}

std::optional<RecordView>
DatabaseCatalog::find(uarch::UArch arch, std::string_view name) const
{
    const InstructionDatabase *db = shard(arch);
    if (db == nullptr)
        return std::nullopt;
    auto row = db->find(arch, name);
    if (!row)
        return std::nullopt;
    return db->record(*row);
}

std::vector<RecordView>
DatabaseCatalog::findByName(std::string_view name) const
{
    std::vector<RecordView> out;
    for (const ShardEntry &entry : shards_)
        if (auto row = entry.db->find(entry.arch, name))
            out.push_back(entry.db->record(*row));
    return out;
}

std::vector<RecordView>
DatabaseCatalog::search(const Query &query) const
{
    std::vector<RecordView> out;
    for (const ShardEntry &entry : shards_) {
        if (query.arch && *query.arch != entry.arch)
            continue;
        if (out.size() >= query.limit)
            break;
        Query rest = query;
        rest.limit = query.limit - out.size();
        for (uint32_t row : entry.db->search(rest))
            out.push_back(entry.db->record(row));
    }
    return out;
}

CatalogDiff
DatabaseCatalog::diff(uarch::UArch a, uarch::UArch b) const
{
    CatalogDiff out;
    const InstructionDatabase *db_a = shard(a);
    const InstructionDatabase *db_b = shard(b);

    // Merge-walk the two shards' name-sorted records: the same visit
    // order as the monolith's by-name index walk, so only_a / only_b
    // and the changed list keep their historical ordering.
    auto names_a = db_a
                       ? sortedNames(*db_a)
                       : std::vector<
                             std::pair<std::string_view, uint32_t>>{};
    auto names_b = db_b
                       ? sortedNames(*db_b)
                       : std::vector<
                             std::pair<std::string_view, uint32_t>>{};
    size_t i = 0, j = 0;
    while (i < names_a.size() || j < names_b.size()) {
        if (j == names_b.size() ||
            (i < names_a.size() &&
             names_a[i].first < names_b[j].first)) {
            out.only_a.emplace_back(names_a[i++].first);
            continue;
        }
        if (i == names_a.size() ||
            names_b[j].first < names_a[i].first) {
            out.only_b.emplace_back(names_b[j++].first);
            continue;
        }
        ++out.common;
        CatalogDiffEntry entry{db_a->record(names_a[i].second),
                               db_b->record(names_b[j].second)};
        compareRecords(entry.a, entry.b, entry);
        if (entry.tp_differs || entry.ports_differ ||
            entry.latency_differs)
            out.changed.push_back(entry);
        ++i;
        ++j;
    }
    return out;
}

core::CharacterizationSet
DatabaseCatalog::toCharacterizationSet(
    uarch::UArch arch, const isa::InstrDb &instr_db) const
{
    const InstructionDatabase *db = shard(arch);
    if (db == nullptr) {
        core::CharacterizationSet empty;
        empty.arch = arch;
        return empty;
    }
    return db->toCharacterizationSet(arch, instr_db);
}

std::shared_ptr<const DatabaseCatalog>
DatabaseCatalog::fromMonolith(const InstructionDatabase &db,
                              uint64_t generation)
{
    std::vector<ShardEntry> shards;
    for (uarch::UArch arch : db.uarches()) {
        auto shard = std::make_unique<InstructionDatabase>();
        const uint8_t arch_id = static_cast<uint8_t>(arch);
        for (uint32_t row = 0;
             row < static_cast<uint32_t>(db.numRecords()); ++row) {
            if (db.arch_[row] != arch_id)
                continue;
            // Repackage through Canonical: bit-identical to a fresh
            // single-uarch ingest because row order and per-shard
            // string interning order are both preserved.
            RecordView view = db.record(row);
            InstructionDatabase::Canonical rec;
            rec.arch = arch_id;
            rec.name = std::string(view.name());
            rec.mnemonic = std::string(view.mnemonic());
            rec.extension = std::string(view.extension());
            rec.usage = view.portUsage();
            rec.tp_measured = view.tpMeasured();
            rec.tp_breakers = view.tpWithBreakers();
            rec.tp_slow = view.tpSlow();
            rec.tp_ports = view.tpFromPorts();
            rec.lats = view.latencies();
            rec.same_reg = view.sameRegCycles();
            rec.store_rt = view.storeRoundTrip();
            shard->append(rec);
        }
        shard->rebuildIndexes();
        ShardEntry entry;
        entry.arch = arch;
        entry.db = std::move(shard);
        shards.push_back(std::move(entry));
    }
    return std::make_shared<DatabaseCatalog>(std::move(shards),
                                             generation);
}

std::shared_ptr<const DatabaseCatalog>
DatabaseCatalog::splice(const DatabaseCatalog &base,
                        std::vector<ShardEntry> fresh)
{
    std::vector<ShardEntry> merged = base.shards_;
    for (ShardEntry &entry : fresh) {
        auto it = std::find_if(merged.begin(), merged.end(),
                               [&](const ShardEntry &e) {
                                   return e.arch == entry.arch;
                               });
        // Fresh shards carry new content: drop any stale file/hash
        // identity so the catalog recomputes their address.
        entry.hash = 0;
        entry.file.clear();
        if (it != merged.end())
            *it = std::move(entry);
        else
            merged.push_back(std::move(entry));
    }
    return std::make_shared<DatabaseCatalog>(
        std::move(merged), base.generation() + 1);
}

// ---------------------------------------------------------------------
// Directory store
// ---------------------------------------------------------------------

namespace {

struct ManifestShard
{
    uint8_t arch = 0;
    uint64_t records = 0;
    uint64_t hash = 0;
    std::string file;
};

struct Manifest
{
    uint64_t generation = 0;
    std::vector<ManifestShard> shards;
};

std::string
manifestBytes(const DatabaseCatalog &catalog)
{
    std::ostringstream os(std::ios::binary);
    auto scalar = [&os](uint64_t value) {
        os.write(reinterpret_cast<const char *>(&value),
                 sizeof value);
    };
    os.write(kManifestMagic, sizeof kManifestMagic);
    uint32_t head[2] = {kManifestVersion, kEndianTag};
    os.write(reinterpret_cast<const char *>(head), sizeof head);
    scalar(catalog.generation());
    scalar(catalog.shards().size());
    for (const ShardEntry &entry : catalog.shards()) {
        scalar(static_cast<uint8_t>(entry.arch));
        scalar(entry.records);
        scalar(entry.hash);
        scalar(entry.file.size());
        os.write(entry.file.data(),
                 static_cast<std::streamsize>(entry.file.size()));
        static const char zeros[8] = {};
        os.write(zeros,
                 static_cast<std::streamsize>(
                     (8 - entry.file.size() % 8) % 8));
    }
    return std::move(os).str();
}

Manifest
parseManifest(const std::string &bytes, const std::string &dir)
{
    std::istringstream is(bytes, std::ios::binary);
    auto raw = [&is, &dir](void *out, size_t n) {
        is.read(static_cast<char *>(out),
                static_cast<std::streamsize>(n));
        fatalIf(static_cast<size_t>(is.gcount()) != n,
                "db catalog: truncated manifest in ", dir);
    };
    auto scalar = [&raw] {
        uint64_t value = 0;
        raw(&value, sizeof value);
        return value;
    };
    char magic[8];
    raw(magic, sizeof magic);
    fatalIf(std::memcmp(magic, kManifestMagic, sizeof magic) != 0,
            "db catalog: bad manifest magic in ", dir);
    uint32_t head[2];
    raw(head, sizeof head);
    fatalIf(head[0] != kManifestVersion,
            "db catalog: unsupported manifest version ", head[0]);
    fatalIf(head[1] != kEndianTag,
            "db catalog: manifest has foreign byte order");

    Manifest manifest;
    manifest.generation = scalar();
    uint64_t count = scalar();
    fatalIf(count > 256, "db catalog: implausible shard count ",
            count);
    for (uint64_t i = 0; i < count; ++i) {
        ManifestShard shard;
        uint64_t arch = scalar();
        fatalIf(arch > 0xff, "db catalog: implausible uarch id ",
                arch);
        shard.arch = static_cast<uint8_t>(arch);
        shard.records = scalar();
        shard.hash = scalar();
        uint64_t name_len = scalar();
        fatalIf(name_len > 4096,
                "db catalog: implausible shard file name length");
        shard.file.resize(static_cast<size_t>(name_len));
        if (name_len)
            raw(shard.file.data(), shard.file.size());
        char pad[8];
        raw(pad, (8 - name_len % 8) % 8);
        fatalIf(shard.file.find('/') != std::string::npos ||
                    shard.file.find("..") != std::string::npos,
                "db catalog: manifest shard file escapes the "
                "catalog directory: ",
                shard.file);
        manifest.shards.push_back(std::move(shard));
    }
    return manifest;
}

} // namespace

void
saveCatalogDir(const DatabaseCatalog &catalog, const std::string &dir)
{
    std::error_code ec;
    fs::create_directories(dir, ec);
    fatalIf(static_cast<bool>(ec), "db catalog: cannot create ", dir,
            ": ", ec.message());

    for (const ShardEntry &entry : catalog.shards()) {
        const std::string path = dir + "/" + entry.file;
        if (fs::exists(path)) {
            // Content-addressed: an existing file under this name
            // must already hold these bytes. Verify instead of
            // rewriting — this is what keeps an incremental save from
            // touching shards it did not re-characterize.
            uint64_t on_disk = fnv1a64(readFileBytes(path));
            fatalIf(on_disk != entry.hash, "db catalog: ", path,
                    " exists with hash ", hashHex(on_disk),
                    " but the catalog expects ",
                    hashHex(entry.hash),
                    " (corrupt store?)");
            continue;
        }
        writeFileAtomic(path, shardBytes(*entry.db, entry.arch));
    }

    // The manifest rename is the commit point: readers see the old
    // generation or the new one, never a mix.
    writeFileAtomic(dir + "/" + kManifestFile,
                    manifestBytes(catalog));
}

std::shared_ptr<const DatabaseCatalog>
loadCatalogDir(const std::string &dir, LoadMode mode,
               bool verify_hashes)
{
    Manifest manifest = parseManifest(
        readFileBytes(dir + "/" + kManifestFile), dir);

    std::vector<ShardEntry> shards;
    for (const ManifestShard &ms : manifest.shards) {
        const std::string path = dir + "/" + ms.file;
        const uarch::UArch arch = static_cast<uarch::UArch>(ms.arch);
        ShardEntry entry;
        entry.arch = arch;
        entry.hash = ms.hash;
        entry.file = ms.file;
        if (mode == LoadMode::Mmap) {
            auto mapping = mapFile(path);
            fatalIf(verify_hashes &&
                        fnv1a64(mapping->view()) != ms.hash,
                    "db catalog: shard ", path,
                    " does not match its manifest hash");
            entry.db = loadShardMapped(std::move(mapping), arch);
        } else {
            std::string bytes = readFileBytes(path);
            fatalIf(verify_hashes && fnv1a64(bytes) != ms.hash,
                    "db catalog: shard ", path,
                    " does not match its manifest hash");
            std::istringstream is(bytes, std::ios::binary);
            entry.db = loadShard(is, arch);
        }
        fatalIf(entry.db->numRecords() != ms.records,
                "db catalog: shard ", path, " holds ",
                entry.db->numRecords(),
                " records but the manifest expects ", ms.records);
        shards.push_back(std::move(entry));
    }
    return std::make_shared<DatabaseCatalog>(std::move(shards),
                                             manifest.generation);
}

std::optional<uint64_t>
readCatalogGeneration(const std::string &dir)
{
    const std::string path = dir + "/" + kManifestFile;
    std::ifstream is(path, std::ios::binary);
    if (!is)
        return std::nullopt;
    char head[24];
    is.read(head, sizeof head);
    if (static_cast<size_t>(is.gcount()) != sizeof head)
        return std::nullopt;
    if (std::memcmp(head, kManifestMagic, 8) != 0)
        return std::nullopt;
    uint64_t generation = 0;
    std::memcpy(&generation, head + 16, sizeof generation);
    return generation;
}

std::shared_ptr<const DatabaseCatalog>
openCatalog(const std::string &path, LoadMode mode)
{
    if (fs::is_directory(path))
        return loadCatalogDir(path, mode);
    // Legacy single-file containers: split into per-uarch shards so
    // everything downstream speaks catalog. Generation 0 marks "not
    // from a sharded store".
    auto monolith = loadSnapshotFile(path);
    return DatabaseCatalog::fromMonolith(*monolith, 0);
}

void
migrateSnapshot(const std::string &snapshot_path,
                const std::string &dir)
{
    auto monolith = loadSnapshotFile(snapshot_path);
    auto catalog = DatabaseCatalog::fromMonolith(*monolith, 1);
    saveCatalogDir(*catalog, dir);
}

// ---------------------------------------------------------------------
// Sweep integration
// ---------------------------------------------------------------------

void
CatalogSweepIngestor::onVariant(uarch::UArch arch,
                                const core::VariantOutcome &outcome)
{
    panicIf(finished_, "CatalogSweepIngestor: onVariant after finish");
    if (!outcome.ok)
        return;   // failures are reported by the sweep, not stored
    auto it = shards_.find(arch);
    if (it == shards_.end())
        it = shards_
                 .emplace(arch,
                          std::make_unique<InstructionDatabase>())
                 .first;
    it->second->appendCharacterization(static_cast<uint8_t>(arch),
                                       outcome.result);
    ++ingested_;
}

void
CatalogSweepIngestor::declareArch(uarch::UArch arch)
{
    panicIf(finished_, "CatalogSweepIngestor: declareArch after finish");
    if (shards_.find(arch) == shards_.end())
        shards_.emplace(arch,
                        std::make_unique<InstructionDatabase>());
}

void
CatalogSweepIngestor::finishOnce()
{
    if (finished_)
        return;
    finished_ = true;
    for (auto &[arch, db] : shards_)
        db->rebuildIndexes();
}

std::vector<ShardEntry>
CatalogSweepIngestor::takeShards()
{
    panicIf(!finished_,
            "CatalogSweepIngestor: takeShards before finish");
    std::vector<ShardEntry> out;
    for (auto &[arch, db] : shards_) {
        ShardEntry entry;
        entry.arch = arch;
        entry.db = std::move(db);
        out.push_back(std::move(entry));
    }
    shards_.clear();
    return out;
}

std::shared_ptr<const DatabaseCatalog>
runCatalogSweep(const isa::InstrDb &instrs,
                const std::vector<uarch::UArch> &arches,
                core::BatchOptions options,
                const DatabaseCatalog *base,
                core::CharacterizationReport *report_out)
{
    fatalIf(options.sink != nullptr,
            "runCatalogSweep: options.sink is owned by the catalog "
            "ingestor");
    CatalogSweepIngestor ingestor;
    for (uarch::UArch arch : arches)
        ingestor.declareArch(arch);
    options.sink = &ingestor;
    core::CharacterizationReport report =
        core::runBatchSweep(instrs, arches, options);
    if (report_out)
        *report_out = std::move(report);
    std::vector<ShardEntry> fresh = ingestor.takeShards();
    if (base)
        return DatabaseCatalog::splice(*base, std::move(fresh));
    return std::make_shared<DatabaseCatalog>(std::move(fresh), 1);
}

} // namespace uops::db
