#include "catalog.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "db/scan.h"
#include "support/hash.h"
#include "support/io.h"
#include "support/obs/log.h"
#include "support/obs/metrics.h"
#include "support/status.h"

namespace fs = std::filesystem;

namespace uops::db {

namespace {

constexpr char kManifestMagic[8] = {'U', 'O', 'P', 'S', 'M',
                                    'F', '\x1a', '\n'};
constexpr uint32_t kManifestVersion = 1;
constexpr uint32_t kEndianTag = 0x0A0B0C0Du;

/** Numbered manifests kept per directory: the current generation
 *  plus fallbacks for recovery. Shard files are never pruned here. */
constexpr size_t kManifestRetention = 4;

/** Store-consistency failures throw CatalogError (a FatalError
 *  subtype): recoverable per generation, reportable by callers. */
template <typename... Parts>
[[noreturn]] void
catalogFail(const Parts &...parts)
{
    std::ostringstream os;
    detail::formatInto(os, parts...);
    throw CatalogError(os.str());
}

template <typename... Parts>
void
catalogCheck(bool condition, const Parts &...parts)
{
    if (condition)
        catalogFail(parts...);
}

std::string
shardFileName(uarch::UArch arch, uint64_t hash)
{
    return uarch::uarchShortName(arch) + "-" + hashHex(hash) +
           ".shard";
}

/** Stream sink that digests instead of storing: hashing a shard
 *  costs one serialization pass but no second copy of the bytes. */
class FnvStreamBuf final : public std::streambuf
{
  public:
    uint64_t hash() const { return hash_; }

  protected:
    int_type
    overflow(int_type ch) override
    {
        if (ch != traits_type::eof()) {
            char c = traits_type::to_char_type(ch);
            hash_ = fnv1a64(&c, 1, hash_);
        }
        return ch;
    }

    std::streamsize
    xsputn(const char *s, std::streamsize n) override
    {
        hash_ = fnv1a64(s, static_cast<size_t>(n), hash_);
        return n;
    }

  private:
    uint64_t hash_ = kFnvOffsetBasis;
};

uint64_t
shardHash(const InstructionDatabase &db, uarch::UArch arch)
{
    FnvStreamBuf buffer;
    std::ostream os(&buffer);
    saveShard(db, arch, os);
    return buffer.hash();
}

/** (name, row) pairs of one shard, sorted by name (names are unique
 *  within a shard: one record per (uarch, variant)). */
std::vector<std::pair<std::string_view, uint32_t>>
sortedNames(const InstructionDatabase &db)
{
    std::vector<std::pair<std::string_view, uint32_t>> out;
    out.reserve(db.numRecords());
    for (uint32_t row = 0;
         row < static_cast<uint32_t>(db.numRecords()); ++row)
        out.emplace_back(db.record(row).name(), row);
    std::sort(out.begin(), out.end());
    return out;
}

} // namespace

const char *const kManifestFile = "manifest";

std::string
manifestFileName(uint64_t generation)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "manifest.%010llu",
                  static_cast<unsigned long long>(generation));
    return buf;
}

std::string
RecoveryReport::summary() const
{
    std::ostringstream os;
    if (!recovered && events.empty()) {
        os << "generation " << generation;
    } else {
        os << (recovered ? "recovered to generation "
                         : "repaired at generation ")
           << generation << " (" << rejected_generations.size()
           << " generation(s) rejected, " << removed_files.size()
           << " file(s) removed)";
    }
    return os.str();
}

// ---------------------------------------------------------------------
// DatabaseCatalog
// ---------------------------------------------------------------------

DatabaseCatalog::DatabaseCatalog(std::vector<ShardEntry> shards,
                                 uint64_t generation)
    : shards_(std::move(shards)), generation_(generation)
{
    for (ShardEntry &entry : shards_) {
        fatalIf(entry.db == nullptr, "db catalog: null shard for ",
                uarch::uarchShortName(entry.arch));
        for (uarch::UArch arch : entry.db->uarches())
            fatalIf(arch != entry.arch,
                    "db catalog: shard for ",
                    uarch::uarchShortName(entry.arch),
                    " contains records for ",
                    uarch::uarchShortName(arch));
        entry.records = entry.db->numRecords();
        if (entry.hash == 0)
            entry.hash = shardHash(*entry.db, entry.arch);
        if (entry.file.empty())
            entry.file = shardFileName(entry.arch, entry.hash);
    }
    std::sort(shards_.begin(), shards_.end(),
              [](const ShardEntry &a, const ShardEntry &b) {
                  return static_cast<uint8_t>(a.arch) <
                         static_cast<uint8_t>(b.arch);
              });
    for (size_t i = 1; i < shards_.size(); ++i)
        fatalIf(shards_[i - 1].arch == shards_[i].arch,
                "db catalog: duplicate shard for ",
                uarch::uarchShortName(shards_[i].arch));
}

uint64_t
DatabaseCatalog::contentHash() const
{
    // Shards are uarch-sorted by construction, so the fold order —
    // and thus the digest — is canonical for a given content set.
    uint64_t digest = kFnvOffsetBasis;
    for (const ShardEntry &entry : shards_) {
        uint8_t arch = static_cast<uint8_t>(entry.arch);
        digest = fnv1a64(&arch, sizeof arch, digest);
        digest = fnv1a64(&entry.hash, sizeof entry.hash, digest);
    }
    return digest;
}

const InstructionDatabase *
DatabaseCatalog::shard(uarch::UArch arch) const
{
    for (const ShardEntry &entry : shards_)
        if (entry.arch == arch)
            return entry.db.get();
    return nullptr;
}

size_t
DatabaseCatalog::numRecords() const
{
    size_t n = 0;
    for (const ShardEntry &entry : shards_)
        n += entry.db->numRecords();
    return n;
}

size_t
DatabaseCatalog::numRecords(uarch::UArch arch) const
{
    const InstructionDatabase *db = shard(arch);
    return db ? db->numRecords() : 0;
}

std::vector<uarch::UArch>
DatabaseCatalog::uarches() const
{
    std::vector<uarch::UArch> out;
    out.reserve(shards_.size());
    for (const ShardEntry &entry : shards_)
        if (entry.db->numRecords() > 0)
            out.push_back(entry.arch);
    return out;
}

std::optional<RecordView>
DatabaseCatalog::find(uarch::UArch arch, std::string_view name) const
{
    const InstructionDatabase *db = shard(arch);
    if (db == nullptr)
        return std::nullopt;
    auto row = db->find(arch, name);
    if (!row)
        return std::nullopt;
    return db->record(*row);
}

std::vector<RecordView>
DatabaseCatalog::findByName(std::string_view name) const
{
    std::vector<RecordView> out;
    for (const ShardEntry &entry : shards_)
        if (auto row = entry.db->find(entry.arch, name))
            out.push_back(entry.db->record(*row));
    return out;
}

std::vector<RecordView>
DatabaseCatalog::search(const Query &query) const
{
    std::vector<RecordView> out;
    for (const ShardEntry &entry : shards_) {
        if (query.arch && *query.arch != entry.arch)
            continue;
        if (out.size() >= query.limit)
            break;
        Query rest = query;
        rest.limit = query.limit - out.size();
        for (uint32_t row : entry.db->search(rest))
            out.push_back(entry.db->record(row));
    }
    return out;
}

CatalogDiff
DatabaseCatalog::diff(uarch::UArch a, uarch::UArch b) const
{
    CatalogDiff out;
    const InstructionDatabase *db_a = shard(a);
    const InstructionDatabase *db_b = shard(b);

    // Merge-walk the two shards' name-sorted records: the same visit
    // order as the monolith's by-name index walk, so only_a / only_b
    // and the changed list keep their historical ordering.
    auto names_a = db_a
                       ? sortedNames(*db_a)
                       : std::vector<
                             std::pair<std::string_view, uint32_t>>{};
    auto names_b = db_b
                       ? sortedNames(*db_b)
                       : std::vector<
                             std::pair<std::string_view, uint32_t>>{};
    size_t i = 0, j = 0;
    while (i < names_a.size() || j < names_b.size()) {
        if (j == names_b.size() ||
            (i < names_a.size() &&
             names_a[i].first < names_b[j].first)) {
            out.only_a.emplace_back(names_a[i++].first);
            continue;
        }
        if (i == names_a.size() ||
            names_b[j].first < names_a[i].first) {
            out.only_b.emplace_back(names_b[j++].first);
            continue;
        }
        ++out.common;
        CatalogDiffEntry entry{db_a->record(names_a[i].second),
                               db_b->record(names_b[j].second)};
        compareRecords(entry.a, entry.b, entry);
        if (entry.tp_differs || entry.ports_differ ||
            entry.latency_differs)
            out.changed.push_back(entry);
        ++i;
        ++j;
    }
    return out;
}

AnalyticsResult
DatabaseCatalog::analytics(const AnalyticsQuery &query) const
{
    AnalyticsResult out;
    const InstructionDatabase *db_from = shard(query.from);
    const InstructionDatabase *db_to = shard(query.to);
    if (db_from == nullptr || db_to == nullptr)
        return out;

    // One filtered executor scan per side, name-sorted; the merge
    // below then pairs and classifies. The filter's arch constraint
    // is meaningless here (each side *is* one uarch) and its limit
    // must not truncate a side mid-merge, so both are neutralized.
    Query filter = query.filter;
    filter.arch.reset();
    filter.limit = SIZE_MAX;
    PredicateSet preds = predicatesFromQuery(filter);
    auto side = [&preds](const InstructionDatabase &db) {
        std::vector<std::pair<std::string_view, uint32_t>> names;
        std::vector<uint32_t> rows = ScanExecutor(db).run(preds);
        names.reserve(rows.size());
        for (uint32_t row : rows)
            names.emplace_back(db.record(row).name(), row);
        std::sort(names.begin(), names.end());
        return names;
    };
    auto names_from = side(*db_from);
    auto names_to = side(*db_to);

    using Metric = AnalyticsQuery::Metric;
    using Direction = AnalyticsQuery::Direction;
    size_t i = 0, j = 0;
    while (i < names_from.size() && j < names_to.size()) {
        if (names_from[i].first < names_to[j].first) {
            ++i;
            continue;
        }
        if (names_to[j].first < names_from[i].first) {
            ++j;
            continue;
        }
        ++out.common;
        AnalyticsEntry entry{db_from->record(names_from[i].second),
                             db_to->record(names_to[j].second)};
        ++i;
        ++j;

        Cycles tp_from = entry.from.tpMeasured();
        Cycles tp_to = entry.to.tpMeasured();
        int lat_from = entry.from.maxLatency();
        int lat_to = entry.to.maxLatency();
        entry.tp_changed = tp_from != tp_to;
        entry.lat_changed = lat_from != lat_to;

        // Higher cycles-per-instruction / higher latency == slower.
        bool tp_on = query.metric != Metric::Latency;
        bool lat_on = query.metric != Metric::Tp;
        bool regressed = (tp_on && tp_to > tp_from) ||
                         (lat_on && lat_to > lat_from);
        bool improved = (tp_on && tp_to < tp_from) ||
                        (lat_on && lat_to < lat_from);
        bool hit = false;
        switch (query.direction) {
        case Direction::Regressed: hit = regressed; break;
        case Direction::Improved: hit = improved; break;
        case Direction::Changed:
            hit = (tp_on && entry.tp_changed) ||
                  (lat_on && entry.lat_changed);
            break;
        }
        if (!hit)
            continue;
        ++out.matched;
        if (out.entries.size() < query.limit)
            out.entries.push_back(entry);
    }
    return out;
}

core::CharacterizationSet
DatabaseCatalog::toCharacterizationSet(
    uarch::UArch arch, const isa::InstrDb &instr_db) const
{
    const InstructionDatabase *db = shard(arch);
    if (db == nullptr) {
        core::CharacterizationSet empty;
        empty.arch = arch;
        return empty;
    }
    return db->toCharacterizationSet(arch, instr_db);
}

std::shared_ptr<const DatabaseCatalog>
DatabaseCatalog::fromMonolith(const InstructionDatabase &db,
                              uint64_t generation)
{
    std::vector<ShardEntry> shards;
    for (uarch::UArch arch : db.uarches()) {
        auto shard = std::make_unique<InstructionDatabase>();
        const uint8_t arch_id = static_cast<uint8_t>(arch);
        for (uint32_t row = 0;
             row < static_cast<uint32_t>(db.numRecords()); ++row) {
            if (db.arch_[row] != arch_id)
                continue;
            // Repackage through Canonical: bit-identical to a fresh
            // single-uarch ingest because row order and per-shard
            // string interning order are both preserved.
            RecordView view = db.record(row);
            InstructionDatabase::Canonical rec;
            rec.arch = arch_id;
            rec.name = std::string(view.name());
            rec.mnemonic = std::string(view.mnemonic());
            rec.extension = std::string(view.extension());
            rec.usage = view.portUsage();
            rec.tp_measured = view.tpMeasured();
            rec.tp_breakers = view.tpWithBreakers();
            rec.tp_slow = view.tpSlow();
            rec.tp_ports = view.tpFromPorts();
            rec.lats = view.latencies();
            rec.same_reg = view.sameRegCycles();
            rec.store_rt = view.storeRoundTrip();
            shard->append(rec);
        }
        shard->rebuildIndexes();
        ShardEntry entry;
        entry.arch = arch;
        entry.db = std::move(shard);
        shards.push_back(std::move(entry));
    }
    return std::make_shared<DatabaseCatalog>(std::move(shards),
                                             generation);
}

std::shared_ptr<const DatabaseCatalog>
DatabaseCatalog::splice(const DatabaseCatalog &base,
                        std::vector<ShardEntry> fresh)
{
    std::vector<ShardEntry> merged = base.shards_;
    for (ShardEntry &entry : fresh) {
        auto it = std::find_if(merged.begin(), merged.end(),
                               [&](const ShardEntry &e) {
                                   return e.arch == entry.arch;
                               });
        // Fresh shards carry new content: drop any stale file/hash
        // identity so the catalog recomputes their address.
        entry.hash = 0;
        entry.file.clear();
        if (it != merged.end())
            *it = std::move(entry);
        else
            merged.push_back(std::move(entry));
    }
    return std::make_shared<DatabaseCatalog>(
        std::move(merged), base.generation() + 1);
}

// ---------------------------------------------------------------------
// Directory store
// ---------------------------------------------------------------------

namespace {

struct ManifestShard
{
    uint8_t arch = 0;
    uint64_t records = 0;
    uint64_t hash = 0;
    std::string file;
};

struct Manifest
{
    uint64_t generation = 0;
    std::vector<ManifestShard> shards;
};

std::string
manifestBytes(const DatabaseCatalog &catalog)
{
    std::ostringstream os(std::ios::binary);
    auto scalar = [&os](uint64_t value) {
        os.write(reinterpret_cast<const char *>(&value),
                 sizeof value);
    };
    os.write(kManifestMagic, sizeof kManifestMagic);
    uint32_t head[2] = {kManifestVersion, kEndianTag};
    os.write(reinterpret_cast<const char *>(head), sizeof head);
    scalar(catalog.generation());
    scalar(catalog.shards().size());
    for (const ShardEntry &entry : catalog.shards()) {
        scalar(static_cast<uint8_t>(entry.arch));
        scalar(entry.records);
        scalar(entry.hash);
        scalar(entry.file.size());
        os.write(entry.file.data(),
                 static_cast<std::streamsize>(entry.file.size()));
        static const char zeros[8] = {};
        os.write(zeros,
                 static_cast<std::streamsize>(
                     (8 - entry.file.size() % 8) % 8));
    }
    return std::move(os).str();
}

Manifest
parseManifest(const std::string &bytes, const std::string &dir)
{
    std::istringstream is(bytes, std::ios::binary);
    auto raw = [&is, &dir](void *out, size_t n) {
        is.read(static_cast<char *>(out),
                static_cast<std::streamsize>(n));
        catalogCheck(static_cast<size_t>(is.gcount()) != n,
                "db catalog: truncated manifest in ", dir);
    };
    auto scalar = [&raw] {
        uint64_t value = 0;
        raw(&value, sizeof value);
        return value;
    };
    char magic[8];
    raw(magic, sizeof magic);
    catalogCheck(std::memcmp(magic, kManifestMagic, sizeof magic) != 0,
            "db catalog: bad manifest magic in ", dir);
    uint32_t head[2];
    raw(head, sizeof head);
    catalogCheck(head[0] != kManifestVersion,
            "db catalog: unsupported manifest version ", head[0]);
    catalogCheck(head[1] != kEndianTag,
            "db catalog: manifest has foreign byte order");

    Manifest manifest;
    manifest.generation = scalar();
    uint64_t count = scalar();
    catalogCheck(count > 256, "db catalog: implausible shard count ",
            count);
    for (uint64_t i = 0; i < count; ++i) {
        ManifestShard shard;
        uint64_t arch = scalar();
        catalogCheck(arch > 0xff, "db catalog: implausible uarch id ",
                arch);
        shard.arch = static_cast<uint8_t>(arch);
        shard.records = scalar();
        shard.hash = scalar();
        uint64_t name_len = scalar();
        catalogCheck(name_len > 4096,
                "db catalog: implausible shard file name length");
        shard.file.resize(static_cast<size_t>(name_len));
        if (name_len)
            raw(shard.file.data(), shard.file.size());
        char pad[8];
        raw(pad, (8 - name_len % 8) % 8);
        catalogCheck(shard.file.find('/') != std::string::npos ||
                    shard.file.find("..") != std::string::npos,
                "db catalog: manifest shard file escapes the "
                "catalog directory: ",
                shard.file);
        manifest.shards.push_back(std::move(shard));
    }
    return manifest;
}

/** Generation claimed by a manifest file's 24-byte header; nullopt
 *  when the file is missing, too short, or has the wrong magic. */
std::optional<uint64_t>
manifestHeaderGeneration(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        return std::nullopt;
    char head[24];
    is.read(head, sizeof head);
    if (static_cast<size_t>(is.gcount()) != sizeof head)
        return std::nullopt;
    if (std::memcmp(head, kManifestMagic, 8) != 0)
        return std::nullopt;
    uint64_t generation = 0;
    std::memcpy(&generation, head + 16, sizeof generation);
    return generation;
}

struct ManifestCandidate
{
    uint64_t generation = 0;
    std::string name;      ///< file name inside the catalog dir
    bool legacy = false;   ///< plain "manifest" (pre-numbered store)
};

/** All manifest files in @p dir, newest generation first (numbered
 *  preferred over legacy on a tie). For numbered manifests the
 *  generation comes from the file name — a truncated file must still
 *  be enumerated (and then rejected by verification) rather than
 *  silently skipped. */
std::vector<ManifestCandidate>
listManifests(const std::string &dir)
{
    std::vector<ManifestCandidate> out;
    std::error_code ec;
    for (const auto &de : fs::directory_iterator(dir, ec)) {
        const std::string name = de.path().filename().string();
        if (name == kManifestFile) {
            auto gen = manifestHeaderGeneration(de.path().string());
            // An unreadable legacy header sorts last (generation 0)
            // but stays a candidate so its rejection is reported.
            out.push_back({gen.value_or(0), name, true});
            continue;
        }
        constexpr std::string_view prefix = "manifest.";
        if (name.size() != prefix.size() + 10 ||
            name.compare(0, prefix.size(), prefix) != 0)
            continue;
        uint64_t gen = 0;
        bool digits = true;
        for (size_t i = prefix.size(); i < name.size(); ++i) {
            if (name[i] < '0' || name[i] > '9') {
                digits = false;
                break;
            }
            gen = gen * 10 + static_cast<uint64_t>(name[i] - '0');
        }
        if (digits)
            out.push_back({gen, name, false});
    }
    std::sort(out.begin(), out.end(),
              [](const ManifestCandidate &a,
                 const ManifestCandidate &b) {
                  if (a.generation != b.generation)
                      return a.generation > b.generation;
                  return a.legacy < b.legacy;
              });
    return out;
}

/** Load and fully verify the generation one manifest describes.
 *  Throws (CatalogError / StoreError / IoError — all FatalError) on
 *  any inconsistency; the caller decides whether that rejects one
 *  candidate or the whole store. */
std::shared_ptr<const DatabaseCatalog>
loadManifestCatalog(const std::string &dir, const Manifest &manifest,
                    LoadMode mode, bool verify_hashes)
{
    std::vector<ShardEntry> shards;
    for (const ManifestShard &ms : manifest.shards) {
        const std::string path = dir + "/" + ms.file;
        const uarch::UArch arch = static_cast<uarch::UArch>(ms.arch);
        ShardEntry entry;
        entry.arch = arch;
        entry.hash = ms.hash;
        entry.file = ms.file;
        if (mode == LoadMode::Mmap) {
            auto mapping = mapFile(path);
            catalogCheck(verify_hashes &&
                             fnv1a64(mapping->view()) != ms.hash,
                         "db catalog: shard ", path,
                         " does not match its manifest hash");
            entry.db = loadShardMapped(std::move(mapping), arch);
        } else {
            std::string bytes = readFileBytes(path, "catalog.shard");
            catalogCheck(verify_hashes && fnv1a64(bytes) != ms.hash,
                         "db catalog: shard ", path,
                         " does not match its manifest hash");
            std::istringstream is(bytes, std::ios::binary);
            entry.db = loadShard(is, arch);
        }
        catalogCheck(entry.db->numRecords() != ms.records,
                     "db catalog: shard ", path, " holds ",
                     entry.db->numRecords(),
                     " records but the manifest expects ",
                     ms.records);
        shards.push_back(std::move(entry));
    }
    return std::make_shared<DatabaseCatalog>(std::move(shards),
                                             manifest.generation);
}

/**
 * Remove what a verified load proved dead: the rejected candidates'
 * manifests, stray .tmp files from interrupted commits, and shard
 * files no surviving parseable manifest references. Only runs when
 * the caller asked for a RecoveryReport — a report-less reader never
 * deletes, so it cannot race a concurrent publisher mid-commit.
 * Removal failures are recorded, never fatal: GC is advisory.
 */
void
collectGarbage(const std::string &dir,
               const std::vector<ManifestCandidate> &candidates,
               size_t winner, RecoveryReport &report)
{
    auto remove = [&](const std::string &name, const char *why) {
        try {
            if (removeFile(dir + "/" + name)) {
                report.removed_files.push_back(name);
                report.events.push_back(std::string("removed ") +
                                        why + " " + name);
            }
        } catch (const FatalError &e) {
            report.events.push_back("gc failed for " + name + ": " +
                                    e.what());
        }
    };

    for (size_t i = 0; i < winner; ++i)
        remove(candidates[i].name, "rejected manifest");

    // Shards referenced by any surviving manifest stay; parse
    // failures of older fallbacks keep their manifest (it was never
    // examined, so it is not provably dead) but cannot protect
    // shards.
    std::vector<std::string> referenced;
    for (size_t i = winner; i < candidates.size(); ++i) {
        try {
            Manifest m = parseManifest(
                readFileBytes(dir + "/" + candidates[i].name,
                              "catalog.manifest"),
                dir);
            for (const ManifestShard &ms : m.shards)
                referenced.push_back(ms.file);
        } catch (const FatalError &) {
            // Unreadable fallback: leave it for a later recovery.
        }
    }
    std::sort(referenced.begin(), referenced.end());

    std::error_code ec;
    std::vector<std::string> names;
    for (const auto &de : fs::directory_iterator(dir, ec))
        names.push_back(de.path().filename().string());
    for (const std::string &name : names) {
        if (name.size() > 4 &&
            name.compare(name.size() - 4, 4, ".tmp") == 0) {
            remove(name, "stray tmp");
            continue;
        }
        if (name.size() > 6 &&
            name.compare(name.size() - 6, 6, ".shard") == 0 &&
            !std::binary_search(referenced.begin(), referenced.end(),
                                name))
            remove(name, "unreferenced shard");
    }
}

} // namespace

void
saveCatalogDir(const DatabaseCatalog &catalog, const std::string &dir)
{
    std::error_code ec;
    fs::create_directories(dir, ec);
    fatalIf(static_cast<bool>(ec), "db catalog: cannot create ", dir,
            ": ", ec.message());

    for (const ShardEntry &entry : catalog.shards()) {
        const std::string path = dir + "/" + entry.file;
        if (fs::exists(path)) {
            // Content-addressed: an existing file under this name
            // must already hold these bytes. Verify instead of
            // rewriting — this is what keeps an incremental save from
            // touching shards it did not re-characterize.
            uint64_t on_disk =
                fnv1a64(readFileBytes(path, "catalog.shard"));
            catalogCheck(on_disk != entry.hash, "db catalog: ", path,
                         " exists with hash ", hashHex(on_disk),
                         " but the catalog expects ",
                         hashHex(entry.hash),
                         " (corrupt store?)");
            continue;
        }
        writeFileAtomic(path, shardBytes(*entry.db, entry.arch),
                        "catalog.shard");
    }

    // COMMIT POINT of the whole save: the rename inside this
    // writeFileAtomic publishes the numbered manifest. Every shard
    // above is already durable (written + fsynced, or verified
    // pre-existing), so a reader that sees this manifest can verify
    // every byte it references; a crash anywhere earlier leaves the
    // previous generation's manifest as the newest one.
    writeFileAtomic(dir + "/" + manifestFileName(catalog.generation()),
                    manifestBytes(catalog), "catalog.manifest");

    // Retention: keep the newest few numbered manifests as recovery
    // fallbacks; prune older ones. Shard files are never pruned here
    // (a serving process may still map them) — load-time GC with a
    // RecoveryReport handles those.
    std::vector<ManifestCandidate> manifests = listManifests(dir);
    size_t kept = 0;
    for (const ManifestCandidate &cand : manifests) {
        if (cand.legacy || ++kept <= kManifestRetention)
            continue;
        try {
            removeFile(dir + "/" + cand.name);
        } catch (const FatalError &) {
            // Best-effort; a stale fallback manifest is harmless.
        }
    }
}

std::shared_ptr<const DatabaseCatalog>
loadCatalogDir(const std::string &dir, LoadMode mode,
               bool verify_hashes, RecoveryReport *report)
{
    if (report)
        *report = RecoveryReport{};
    RecoveryReport scratch;
    RecoveryReport &rep = report ? *report : scratch;

    std::vector<ManifestCandidate> candidates = listManifests(dir);
    catalogCheck(candidates.empty(), "db catalog: no manifest in ",
                 dir);

    for (size_t i = 0; i < candidates.size(); ++i) {
        const ManifestCandidate &cand = candidates[i];
        std::shared_ptr<const DatabaseCatalog> catalog;
        try {
            Manifest manifest = parseManifest(
                readFileBytes(dir + "/" + cand.name,
                              "catalog.manifest"),
                dir);
            catalog = loadManifestCatalog(dir, manifest, mode,
                                          verify_hashes);
        } catch (const FatalError &e) {
            // This candidate is bad; an older generation may still
            // verify. InjectedCrash is deliberately not caught —
            // a simulated kill must not look like recovery.
            rep.rejected_generations.push_back(cand.generation);
            rep.events.push_back("rejected " + cand.name + ": " +
                                 e.what());
            obs::Registry::global()
                .counter("uops_catalog_manifests_rejected_total",
                         "Manifest candidates rejected during catalog "
                         "load (parse or verification failure)")
                .inc();
            obs::defaultLogger()
                .event(obs::LogLevel::Warn, "catalog",
                       "manifest_rejected")
                .str("dir", dir)
                .str("manifest", cand.name)
                .num("generation", cand.generation)
                .str("error", e.what());
            continue;
        }
        rep.generation = catalog->generation();
        rep.recovered = !rep.rejected_generations.empty();
        if (report)
            collectGarbage(dir, candidates, i, rep);
        // Named distinctly from the service-registry
        // uops_catalog_recoveries_total (reload reports observed by
        // one server): /metrics renders both registries, and a
        // shared family name would duplicate series in the scrape.
        if (rep.recovered)
            obs::Registry::global()
                .counter("uops_catalog_loads_recovered_total",
                         "Catalog loads that fell back past at least "
                         "one rejected generation")
                .inc();
        if (!rep.removed_files.empty())
            obs::Registry::global()
                .counter("uops_catalog_gc_removed_files_total",
                         "Dead store files removed by load-time "
                         "garbage collection")
                .inc(rep.removed_files.size());
        obs::Logger &logger = obs::defaultLogger();
        obs::LogLevel level =
            rep.recovered ? obs::LogLevel::Warn : obs::LogLevel::Info;
        if (logger.enabled(level))
            logger.event(level, "catalog", "loaded")
                .str("dir", dir)
                .num("generation", rep.generation)
                .boolean("recovered", rep.recovered)
                .num("rejected_generations",
                     static_cast<uint64_t>(
                         rep.rejected_generations.size()))
                .num("gc_removed_files",
                     static_cast<uint64_t>(rep.removed_files.size()))
                .num("shards",
                     static_cast<uint64_t>(catalog->shards().size()));
        return catalog;
    }

    std::ostringstream os;
    os << "db catalog: no loadable generation in " << dir;
    for (const std::string &event : rep.events)
        os << "; " << event;
    throw CatalogError(os.str());
}

std::optional<uint64_t>
readCatalogGeneration(const std::string &dir)
{
    std::vector<ManifestCandidate> candidates = listManifests(dir);
    if (candidates.empty())
        return std::nullopt;
    return candidates.front().generation;
}

std::shared_ptr<const DatabaseCatalog>
openCatalog(const std::string &path, LoadMode mode,
            RecoveryReport *report)
{
    if (fs::is_directory(path))
        return loadCatalogDir(path, mode, true, report);
    if (report)
        *report = RecoveryReport{};
    // Legacy single-file containers: split into per-uarch shards so
    // everything downstream speaks catalog. Generation 0 marks "not
    // from a sharded store".
    auto monolith = loadSnapshotFile(path);
    return DatabaseCatalog::fromMonolith(*monolith, 0);
}

void
migrateSnapshot(const std::string &snapshot_path,
                const std::string &dir)
{
    auto monolith = loadSnapshotFile(snapshot_path);
    auto catalog = DatabaseCatalog::fromMonolith(*monolith, 1);
    saveCatalogDir(*catalog, dir);
}

// ---------------------------------------------------------------------
// Sweep integration
// ---------------------------------------------------------------------

void
CatalogSweepIngestor::onVariant(uarch::UArch arch,
                                const core::VariantOutcome &outcome)
{
    panicIf(finished_, "CatalogSweepIngestor: onVariant after finish");
    if (!outcome.ok)
        return;   // failures are reported by the sweep, not stored
    auto it = shards_.find(arch);
    if (it == shards_.end())
        it = shards_
                 .emplace(arch,
                          std::make_unique<InstructionDatabase>())
                 .first;
    it->second->appendCharacterization(static_cast<uint8_t>(arch),
                                       outcome.result);
    ++ingested_;
}

void
CatalogSweepIngestor::declareArch(uarch::UArch arch)
{
    panicIf(finished_, "CatalogSweepIngestor: declareArch after finish");
    if (shards_.find(arch) == shards_.end())
        shards_.emplace(arch,
                        std::make_unique<InstructionDatabase>());
}

void
CatalogSweepIngestor::finishOnce()
{
    if (finished_)
        return;
    finished_ = true;
    for (auto &[arch, db] : shards_)
        db->rebuildIndexes();
}

std::vector<ShardEntry>
CatalogSweepIngestor::takeShards()
{
    panicIf(!finished_,
            "CatalogSweepIngestor: takeShards before finish");
    std::vector<ShardEntry> out;
    for (auto &[arch, db] : shards_) {
        ShardEntry entry;
        entry.arch = arch;
        entry.db = std::move(db);
        out.push_back(std::move(entry));
    }
    shards_.clear();
    return out;
}

std::shared_ptr<const DatabaseCatalog>
runCatalogSweep(const isa::InstrDb &instrs,
                const std::vector<uarch::UArch> &arches,
                core::BatchOptions options,
                const DatabaseCatalog *base,
                core::CharacterizationReport *report_out)
{
    fatalIf(options.sink != nullptr,
            "runCatalogSweep: options.sink is owned by the catalog "
            "ingestor");
    CatalogSweepIngestor ingestor;
    for (uarch::UArch arch : arches)
        ingestor.declareArch(arch);
    options.sink = &ingestor;
    core::CharacterizationReport report =
        core::runBatchSweep(instrs, arches, options);
    if (report_out)
        *report_out = std::move(report);
    std::vector<ShardEntry> fresh = ingestor.takeShards();
    if (base)
        return DatabaseCatalog::splice(*base, std::move(fresh));
    return std::make_shared<DatabaseCatalog>(std::move(fresh), 1);
}

} // namespace uops::db
