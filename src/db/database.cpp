#include "database.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "db/scan.h"
#include "support/status.h"
#include "support/strings.h"

namespace uops::db {

namespace {

/**
 * maxLatency over canonical pairs. Delegates to
 * core::LatencyResult::maxLatency so the column always agrees with
 * what the predictor computes from a reconstructed set.
 */
uint16_t
maxLatencyOf(const std::vector<isa::ResultLatency> &lats,
             const std::optional<Cycles> &store_rt)
{
    core::LatencyResult result;
    for (const auto &p : lats) {
        core::LatencyPair pair;
        pair.cycles = p.cycles;
        pair.slow_cycles = p.slow_cycles;
        result.pairs.push_back(pair);
    }
    result.store_roundtrip = store_rt;
    return static_cast<uint16_t>(result.maxLatency());
}

/**
 * Fixed-point bound of a double-valued query range: the smallest /
 * largest hundredth-of-a-cycle inside [v, +inf) / (-inf, v],
 * depending on the rounder (std::ceil for tp_min, std::floor for
 * tp_max). Exact hundredths (up to binary representation slop, e.g.
 * 0.33 * 100 = 32.999...96) map to themselves, so range predicates
 * match records precisely where a double comparison against
 * toDouble() would.
 */
int64_t
centsBound(double v, double (*rounder)(double))
{
    // NaN reaches here straight from an HTTP ?tp_min= parameter
    // (strtod accepts "nan"); casting it would be UB, and clamp does
    // not tame it. FatalError maps to a 400 at the service layer.
    fatalIf(std::isnan(v), "search: non-finite throughput bound");
    double scaled = std::clamp(v * 100.0, -9e15, 9e15);
    double nearest = std::nearbyint(scaled);
    if (std::abs(scaled - nearest) < 1e-6)
        return static_cast<int64_t>(nearest);
    return static_cast<int64_t>(rounder(scaled));
}

} // namespace

Cycles
tpBoundMin(double v)
{
    return Cycles::fromHundredths(
        centsBound(v, [](double x) { return std::ceil(x); }));
}

Cycles
tpBoundMax(double v)
{
    return Cycles::fromHundredths(
        centsBound(v, [](double x) { return std::floor(x); }));
}

// ---------------------------------------------------------------------
// RecordView
// ---------------------------------------------------------------------

uarch::UArch
RecordView::arch() const
{
    return static_cast<uarch::UArch>(db_->arch_[row_]);
}

std::string_view
RecordView::name() const
{
    return db_->str(db_->name_[row_]);
}

std::string_view
RecordView::mnemonic() const
{
    return db_->str(db_->mnemonic_[row_]);
}

std::string_view
RecordView::extension() const
{
    return db_->str(db_->ext_[row_]);
}

uarch::PortUsage
RecordView::portUsage() const
{
    uarch::PortUsage usage;
    uint32_t off = db_->ports_off_[row_];
    for (uint16_t i = 0; i < db_->ports_n_[row_]; ++i)
        usage.entries.emplace_back(db_->pu_mask_[off + i],
                                   db_->pu_count_[off + i]);
    return usage;
}

uarch::PortMask
RecordView::portUnion() const
{
    return db_->port_union_[row_];
}

int
RecordView::uopCount() const
{
    return db_->uop_count_[row_];
}

int
RecordView::maxLatency() const
{
    return db_->max_latency_[row_];
}

Cycles
RecordView::tpMeasured() const
{
    return db_->tp_measured_[row_];
}

std::optional<Cycles>
RecordView::tpWithBreakers() const
{
    if (!(db_->flags_[row_] & kHasTpBreakers))
        return std::nullopt;
    return db_->tp_breakers_[row_];
}

std::optional<Cycles>
RecordView::tpSlow() const
{
    if (!(db_->flags_[row_] & kHasTpSlow))
        return std::nullopt;
    return db_->tp_slow_[row_];
}

std::optional<Cycles>
RecordView::tpFromPorts() const
{
    if (!(db_->flags_[row_] & kHasTpPorts))
        return std::nullopt;
    return db_->tp_ports_[row_];
}

std::vector<isa::ResultLatency>
RecordView::latencies() const
{
    std::vector<isa::ResultLatency> out;
    uint32_t off = db_->lat_off_[row_];
    for (uint16_t i = 0; i < db_->lat_n_[row_]; ++i) {
        isa::ResultLatency pair;
        pair.src_op = db_->lat_src_[off + i];
        pair.dst_op = db_->lat_dst_[off + i];
        pair.cycles = db_->lat_cycles_[off + i];
        pair.upper_bound =
            (db_->lat_flags_[off + i] & kLatUpperBound) != 0;
        if (db_->lat_flags_[off + i] & kLatHasSlow)
            pair.slow_cycles = db_->lat_slow_[off + i];
        out.push_back(pair);
    }
    return out;
}

std::optional<Cycles>
RecordView::sameRegCycles() const
{
    if (!(db_->flags_[row_] & kHasSameReg))
        return std::nullopt;
    return db_->same_reg_[row_];
}

std::optional<Cycles>
RecordView::storeRoundTrip() const
{
    if (!(db_->flags_[row_] & kHasStoreRt))
        return std::nullopt;
    return db_->store_rt_[row_];
}

// ---------------------------------------------------------------------
// Ingestion
// ---------------------------------------------------------------------

uint32_t
InstructionDatabase::intern(std::string_view s)
{
    auto it = intern_map_.find(s);
    if (it != intern_map_.end())
        return it->second;
    uint32_t id = static_cast<uint32_t>(str_off_.size());
    str_off_.push_back(static_cast<uint32_t>(pool_.size()));
    str_len_.push_back(static_cast<uint32_t>(s.size()));
    pool_.append(s);
    intern_map_.emplace(std::string(s), id);
    return id;
}

std::string_view
InstructionDatabase::str(uint32_t id) const
{
    panicIf(id >= str_off_.size(), "db: bad string id ", id);
    return pool_.substr(str_off_[id], str_len_[id]);
}

void
InstructionDatabase::append(const Canonical &rec)
{
    arch_.push_back(rec.arch);
    name_.push_back(intern(rec.name));
    mnemonic_.push_back(intern(rec.mnemonic));
    ext_.push_back(intern(rec.extension));

    uarch::PortMask union_mask = 0;
    for (const auto &[mask, count] : rec.usage.entries)
        union_mask |= mask;
    port_union_.push_back(union_mask);
    uop_count_.push_back(
        static_cast<uint16_t>(rec.usage.totalUops()));
    max_latency_.push_back(maxLatencyOf(rec.lats, rec.store_rt));

    uint8_t flags = 0;
    if (rec.tp_breakers)
        flags |= kHasTpBreakers;
    if (rec.tp_slow)
        flags |= kHasTpSlow;
    if (rec.tp_ports)
        flags |= kHasTpPorts;
    if (rec.same_reg)
        flags |= kHasSameReg;
    if (rec.store_rt)
        flags |= kHasStoreRt;
    flags_.push_back(flags);

    tp_measured_.push_back(rec.tp_measured);
    tp_breakers_.push_back(rec.tp_breakers.value_or(Cycles()));
    tp_slow_.push_back(rec.tp_slow.value_or(Cycles()));
    tp_ports_.push_back(rec.tp_ports.value_or(Cycles()));
    same_reg_.push_back(rec.same_reg.value_or(Cycles()));
    store_rt_.push_back(rec.store_rt.value_or(Cycles()));

    ports_off_.push_back(static_cast<uint32_t>(pu_mask_.size()));
    ports_n_.push_back(static_cast<uint16_t>(rec.usage.entries.size()));
    for (const auto &[mask, count] : rec.usage.entries) {
        pu_mask_.push_back(mask);
        pu_count_.push_back(static_cast<uint16_t>(count));
    }

    lat_off_.push_back(static_cast<uint32_t>(lat_src_.size()));
    lat_n_.push_back(static_cast<uint16_t>(rec.lats.size()));
    for (const auto &pair : rec.lats) {
        lat_src_.push_back(static_cast<int16_t>(pair.src_op));
        lat_dst_.push_back(static_cast<int16_t>(pair.dst_op));
        uint8_t lf = 0;
        if (pair.upper_bound)
            lf |= kLatUpperBound;
        if (pair.slow_cycles)
            lf |= kLatHasSlow;
        lat_flags_.push_back(lf);
        lat_cycles_.push_back(pair.cycles);
        lat_slow_.push_back(pair.slow_cycles.value_or(Cycles()));
    }
}

void
InstructionDatabase::appendCharacterization(
    uint8_t arch, const core::InstrCharacterization &c)
{
    // The pipeline's values are canonical Cycles already — this is a
    // plain repackaging, not a conversion.
    Canonical rec;
    rec.arch = arch;
    rec.name = c.variant->name();
    rec.mnemonic = c.variant->mnemonic();
    rec.extension = isa::extensionName(c.variant->extension());
    rec.usage = c.ports.usage;
    rec.tp_measured = c.throughput.measured;
    rec.tp_breakers = c.throughput.with_breakers;
    rec.tp_slow = c.throughput.slow_measured;
    rec.tp_ports = c.tp_ports;
    for (const core::LatencyPair &p : c.latency.pairs) {
        isa::ResultLatency lat;
        lat.src_op = p.src_op;
        lat.dst_op = p.dst_op;
        lat.cycles = p.cycles;
        lat.upper_bound = p.upper_bound;
        lat.slow_cycles = p.slow_cycles;
        rec.lats.push_back(lat);
    }
    rec.same_reg = c.latency.same_reg_cycles;
    rec.store_rt = c.latency.store_roundtrip;
    append(rec);
}

void
InstructionDatabase::appendSet(const core::CharacterizationSet &set)
{
    for (const core::InstrCharacterization &c : set.instrs)
        appendCharacterization(static_cast<uint8_t>(set.arch), c);
}

void
InstructionDatabase::ingest(const core::CharacterizationSet &set)
{
    appendSet(set);
    rebuildIndexes();
}

void
InstructionDatabase::ingest(const core::CharacterizationReport &report)
{
    for (const core::UArchReport &r : report.uarches)
        appendSet(r.toSet());
    rebuildIndexes();
}

void
InstructionDatabase::ingestResults(const isa::ResultsDoc &doc,
                                   const isa::InstrDb *resolve)
{
    for (const isa::UArchResults &ua : doc.uarches) {
        uarch::UArch arch = uarch::parseUArch(ua.architecture);
        for (const isa::InstrResult &r : ua.instrs) {
            Canonical rec;
            rec.arch = static_cast<uint8_t>(arch);
            rec.name = r.name;
            rec.mnemonic = r.mnemonic;
            const isa::InstrVariant *variant =
                resolve ? resolve->byName(r.name) : nullptr;
            rec.extension =
                variant ? isa::extensionName(variant->extension())
                        : std::string("?");
            rec.usage = uarch::PortUsage::fromString(r.ports);
            // The parser already yields canonical Cycles (foreign
            // precision was re-rounded at the isa boundary), so the
            // XML path stores exactly what the in-memory path does.
            rec.tp_measured = r.tp_measured;
            rec.tp_breakers = r.tp_with_breakers;
            rec.tp_slow = r.tp_slow;
            rec.tp_ports = r.tp_from_ports;
            rec.lats = r.latencies;
            rec.same_reg = r.same_reg_cycles;
            rec.store_rt = r.store_roundtrip;
            append(rec);
        }
    }
    rebuildIndexes();
}

// ---------------------------------------------------------------------
// Indexes
// ---------------------------------------------------------------------

void
InstructionDatabase::rebuildIndexes()
{
    by_name_arch_.clear();
    by_mnemonic_.clear();
    by_extension_.clear();
    const uint32_t n = static_cast<uint32_t>(arch_.size());
    for (uint32_t row = 0; row < n; ++row) {
        auto key = std::make_pair(str(name_[row]), arch_[row]);
        auto [it, inserted] = by_name_arch_.emplace(key, row);
        fatalIf(!inserted, "db: duplicate record for ",
                uarch::uarchShortName(
                    static_cast<uarch::UArch>(arch_[row])),
                "/", std::string(str(name_[row])));
        by_mnemonic_[str(mnemonic_[row])].push_back(row);
        by_extension_[str(ext_[row])].push_back(row);
    }

    auto fill_order = [n](std::vector<uint32_t> &order, auto key_fn) {
        order.resize(n);
        for (uint32_t i = 0; i < n; ++i)
            order[i] = i;
        std::stable_sort(order.begin(), order.end(),
                         [&](uint32_t a, uint32_t b) {
                             return key_fn(a) < key_fn(b);
                         });
    };
    fill_order(tp_order_,
               [this](uint32_t row) { return tp_measured_[row]; });
    fill_order(lat_order_, [this](uint32_t row) {
        return static_cast<double>(max_latency_[row]);
    });

    arch_runs_.fill({});
    for (uint32_t row = 0; row < n; ++row) {
        ArchRun &run = arch_runs_[arch_[row]];
        if (run.begin == run.end)
            run = {row, row + 1, true};
        else if (run.end == row)
            run.end = row + 1;
        else
            run.contiguous = false;
    }
}

// ---------------------------------------------------------------------
// Queries
// ---------------------------------------------------------------------

std::vector<uarch::UArch>
InstructionDatabase::uarches() const
{
    std::vector<bool> seen(256, false);
    for (uint8_t a : arch_)
        seen[a] = true;
    std::vector<uarch::UArch> out;
    for (uarch::UArch arch : uarch::allUArches())
        if (seen[static_cast<uint8_t>(arch)])
            out.push_back(arch);
    return out;
}

size_t
InstructionDatabase::numRecords(uarch::UArch arch) const
{
    size_t n = 0;
    for (uint8_t a : arch_)
        if (a == static_cast<uint8_t>(arch))
            ++n;
    return n;
}

std::optional<uint32_t>
InstructionDatabase::find(uarch::UArch arch, std::string_view name) const
{
    auto it = by_name_arch_.find(
        std::make_pair(name, static_cast<uint8_t>(arch)));
    if (it == by_name_arch_.end())
        return std::nullopt;
    return it->second;
}

std::vector<uint32_t>
InstructionDatabase::findByName(std::string_view name) const
{
    std::vector<uint32_t> out;
    for (auto it = by_name_arch_.lower_bound(
             std::make_pair(name, uint8_t{0}));
         it != by_name_arch_.end() && it->first.first == name; ++it)
        out.push_back(it->second);
    std::sort(out.begin(), out.end());
    return out;
}

std::vector<uint32_t>
InstructionDatabase::search(const Query &query) const
{
    // The scan executor owns the whole strategy: index short-circuits
    // for the string predicates, arch-run range restriction, order-
    // index pre-filters, and batched bitmap scans for the rest.
    return ScanExecutor(*this).run(predicatesFromQuery(query),
                                   query.limit);
}

DiffResult
InstructionDatabase::diff(uarch::UArch a, uarch::UArch b) const
{
    DiffResult out;
    const uint8_t arch_a = static_cast<uint8_t>(a);
    const uint8_t arch_b = static_cast<uint8_t>(b);

    // One ordered walk: the index groups rows of the same variant
    // name together, so each group yields at most one (row_a, row_b)
    // pairing.
    for (auto it = by_name_arch_.begin(); it != by_name_arch_.end();) {
        std::string_view name = it->first.first;
        std::optional<uint32_t> row_a, row_b;
        for (; it != by_name_arch_.end() && it->first.first == name;
             ++it) {
            if (it->first.second == arch_a)
                row_a = it->second;
            if (it->first.second == arch_b)
                row_b = it->second;
        }
        if (row_a && !row_b) {
            out.only_a.emplace_back(name);
            continue;
        }
        if (!row_a && row_b) {
            out.only_b.emplace_back(name);
            continue;
        }
        if (!row_a)
            continue;
        ++out.common;

        DiffEntry entry;
        entry.row_a = *row_a;
        entry.row_b = *row_b;
        compareRecords(record(*row_a), record(*row_b), entry);
        if (entry.tp_differs || entry.ports_differ ||
            entry.latency_differs)
            out.changed.push_back(entry);
    }
    return out;
}

core::CharacterizationSet
InstructionDatabase::toCharacterizationSet(
    uarch::UArch arch, const isa::InstrDb &instr_db) const
{
    core::CharacterizationSet set;
    set.arch = arch;
    const uint8_t arch_id = static_cast<uint8_t>(arch);
    for (uint32_t row = 0; row < arch_.size(); ++row) {
        if (arch_[row] != arch_id)
            continue;
        RecordView view = record(row);
        const isa::InstrVariant *variant =
            instr_db.byName(std::string(view.name()));
        if (variant == nullptr)
            continue;

        core::InstrCharacterization c;
        c.variant = variant;
        for (const isa::ResultLatency &lat : view.latencies()) {
            core::LatencyPair pair;
            pair.src_op = lat.src_op;
            pair.dst_op = lat.dst_op;
            pair.cycles = lat.cycles;
            pair.upper_bound = lat.upper_bound;
            pair.slow_cycles = lat.slow_cycles;
            c.latency.pairs.push_back(pair);
        }
        c.latency.same_reg_cycles = view.sameRegCycles();
        c.latency.store_roundtrip = view.storeRoundTrip();
        c.ports.usage = view.portUsage();
        c.throughput.measured = view.tpMeasured();
        c.throughput.with_breakers = view.tpWithBreakers();
        c.throughput.slow_measured = view.tpSlow();
        c.tp_ports = view.tpFromPorts();
        set.instrs.push_back(std::move(c));
    }
    return set;
}

// ---------------------------------------------------------------------
// Streaming sweep ingest
// ---------------------------------------------------------------------

void
SweepIngestor::onVariant(uarch::UArch arch,
                         const core::VariantOutcome &outcome)
{
    panicIf(finished_, "SweepIngestor: onVariant after finish");
    if (!outcome.ok)
        return;   // failures are reported by the sweep, not stored
    db_.appendCharacterization(static_cast<uint8_t>(arch),
                               outcome.result);
    ++ingested_;
}

void
SweepIngestor::finishOnce()
{
    if (finished_)
        return;
    finished_ = true;
    db_.rebuildIndexes();
}

} // namespace uops::db
