#include "snapshot.h"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>

#include "support/status.h"

namespace uops::db {

namespace {

constexpr char kMagic[8] = {'U', 'O', 'P', 'S', 'D', 'B', '\x1a', '\n'};
constexpr uint32_t kEndianTag = 0x0A0B0C0Du;

/** Load-path failures throw StoreError (a FatalError subtype) so the
 *  catalog recovery path can reject one file without dying. */
template <typename... Parts>
[[noreturn]] void
storeFail(const Parts &...parts)
{
    std::ostringstream os;
    detail::formatInto(os, parts...);
    throw StoreError(os.str());
}

template <typename... Parts>
void
storeCheck(bool condition, const Parts &...parts)
{
    if (condition)
        storeFail(parts...);
}

size_t
paddingFor(size_t bytes)
{
    return (8 - bytes % 8) % 8;
}

class Writer
{
  public:
    explicit Writer(std::ostream &os) : os_(os) {}

    void
    raw(const void *data, size_t bytes)
    {
        os_.write(static_cast<const char *>(data),
                  static_cast<std::streamsize>(bytes));
    }

    template <typename T>
    void
    scalar(T value)
    {
        raw(&value, sizeof value);
    }

    template <typename T>
    void
    array(const Column<T> &xs)
    {
        scalar<uint64_t>(xs.size());
        size_t bytes = xs.size() * sizeof(T);
        if (bytes)
            raw(xs.data(), bytes);
        pad(bytes);
    }

    void
    array(const BytePool &s)
    {
        scalar<uint64_t>(s.size());
        if (s.size())
            raw(s.data(), s.size());
        pad(s.size());
    }

  private:
    void
    pad(size_t bytes)
    {
        static const char zeros[8] = {};
        raw(zeros, paddingFor(bytes));
    }

    std::ostream &os_;
};

class Reader
{
  public:
    explicit Reader(std::istream &is) : is_(is)
    {
        // Bound declared array sizes by the actual stream length so a
        // corrupt length prefix is a FatalError, not a giant resize()
        // (bad_alloc / OOM) before the truncation check can fire.
        auto pos = is.tellg();
        if (pos != std::streampos(-1)) {
            is.seekg(0, std::ios::end);
            auto end = is.tellg();
            is.seekg(pos);
            if (end != std::streampos(-1))
                bytes_left_ = static_cast<uint64_t>(end - pos);
        }
    }

    void
    raw(void *data, size_t bytes)
    {
        is_.read(static_cast<char *>(data),
                 static_cast<std::streamsize>(bytes));
        storeCheck(static_cast<size_t>(is_.gcount()) != bytes,
                "db snapshot: truncated file");
        if (bytes_left_)
            *bytes_left_ -= std::min<uint64_t>(*bytes_left_, bytes);
    }

    template <typename T>
    T
    scalar()
    {
        T value;
        raw(&value, sizeof value);
        return value;
    }

    template <typename T>
    void
    array(Column<T> &xs)
    {
        uint64_t n = scalar<uint64_t>();
        checkSize(n, sizeof(T));
        T *buffer = xs.resizeForRead(static_cast<size_t>(n));
        size_t bytes = xs.size() * sizeof(T);
        if (bytes)
            raw(buffer, bytes);
        skip(bytes);
    }

    void
    array(BytePool &s)
    {
        uint64_t n = scalar<uint64_t>();
        checkSize(n, 1);
        char *buffer = s.resizeForRead(static_cast<size_t>(n));
        if (s.size())
            raw(buffer, s.size());
        skip(s.size());
    }

  private:
    void
    checkSize(uint64_t n, size_t elem_bytes)
    {
        storeCheck(n > (1ull << 32),
                "db snapshot: implausible array size ", n);
        storeCheck(bytes_left_ && n * elem_bytes > *bytes_left_,
                "db snapshot: array size ", n,
                " exceeds remaining file bytes");
    }

    void
    skip(size_t bytes)
    {
        char sink[8];
        size_t pad = paddingFor(bytes);
        if (pad)
            raw(sink, pad);
    }

    std::istream &is_;

    /** Remaining stream bytes; absent for non-seekable streams. */
    std::optional<uint64_t> bytes_left_;
};

/**
 * Zero-copy archive: array() binds columns straight into the mapped
 * buffer instead of copying. Alignment holds by format: the header is
 * a multiple of 8 bytes and every array is padded to 8, so each
 * element pointer is 8-byte aligned within the page-aligned mapping.
 */
class MappedReader
{
  public:
    MappedReader(const char *data, size_t size)
        : p_(data), left_(size)
    {
    }

    void
    raw(void *out, size_t bytes)
    {
        storeCheck(bytes > left_, "db snapshot: truncated file");
        std::memcpy(out, p_, bytes);
        advance(bytes);
    }

    template <typename T>
    T
    scalar()
    {
        T value;
        raw(&value, sizeof value);
        return value;
    }

    template <typename T>
    void
    array(Column<T> &xs)
    {
        uint64_t n = scalar<uint64_t>();
        size_t bytes = static_cast<size_t>(n) * sizeof(T);
        storeCheck(n > (1ull << 32) || bytes > left_,
                "db snapshot: array size ", n,
                " exceeds remaining file bytes");
        xs.bind(reinterpret_cast<const T *>(p_),
                static_cast<size_t>(n));
        advance(bytes);
        skipPad(bytes);
    }

    void
    array(BytePool &s)
    {
        uint64_t n = scalar<uint64_t>();
        storeCheck(n > (1ull << 32) || n > left_,
                "db snapshot: array size ", n,
                " exceeds remaining file bytes");
        s.bind(p_, static_cast<size_t>(n));
        advance(static_cast<size_t>(n));
        skipPad(static_cast<size_t>(n));
    }

  private:
    void
    advance(size_t bytes)
    {
        p_ += bytes;
        left_ -= bytes;
    }

    void
    skipPad(size_t bytes)
    {
        size_t pad = paddingFor(bytes);
        storeCheck(pad > left_, "db snapshot: truncated file");
        advance(pad);
    }

    const char *p_;
    size_t left_;
};

} // namespace

/** Friend of InstructionDatabase: walks the columns in fixed order. */
struct SnapshotCodec
{
    template <typename Archive, typename Db>
    static void
    columns(Archive &ar, Db &db)
    {
        ar.array(db.pool_);
        ar.array(db.str_off_);
        ar.array(db.str_len_);
        ar.array(db.arch_);
        ar.array(db.name_);
        ar.array(db.mnemonic_);
        ar.array(db.ext_);
        ar.array(db.port_union_);
        ar.array(db.uop_count_);
        ar.array(db.max_latency_);
        ar.array(db.flags_);
        ar.array(db.tp_measured_);
        ar.array(db.tp_breakers_);
        ar.array(db.tp_slow_);
        ar.array(db.tp_ports_);
        ar.array(db.same_reg_);
        ar.array(db.store_rt_);
        ar.array(db.ports_off_);
        ar.array(db.lat_off_);
        ar.array(db.ports_n_);
        ar.array(db.lat_n_);
        ar.array(db.pu_mask_);
        ar.array(db.pu_count_);
        ar.array(db.lat_src_);
        ar.array(db.lat_dst_);
        ar.array(db.lat_flags_);
        ar.array(db.lat_cycles_);
        ar.array(db.lat_slow_);
    }

    static void
    validate(const InstructionDatabase &db, uint64_t expected_records)
    {
        const size_t n = db.arch_.size();
        storeCheck(n != expected_records,
                "db snapshot: record count mismatch");
        storeCheck(db.name_.size() != n || db.mnemonic_.size() != n ||
                    db.ext_.size() != n ||
                    db.port_union_.size() != n ||
                    db.uop_count_.size() != n ||
                    db.max_latency_.size() != n ||
                    db.flags_.size() != n ||
                    db.tp_measured_.size() != n ||
                    db.tp_breakers_.size() != n ||
                    db.tp_slow_.size() != n ||
                    db.tp_ports_.size() != n ||
                    db.same_reg_.size() != n ||
                    db.store_rt_.size() != n ||
                    db.ports_off_.size() != n ||
                    db.lat_off_.size() != n ||
                    db.ports_n_.size() != n || db.lat_n_.size() != n,
                "db snapshot: column length mismatch");
        storeCheck(db.str_off_.size() != db.str_len_.size(),
                "db snapshot: string table mismatch");
        for (size_t i = 0; i < db.str_off_.size(); ++i)
            storeCheck(static_cast<size_t>(db.str_off_[i]) +
                            db.str_len_[i] >
                        db.pool_.size(),
                    "db snapshot: string span out of bounds");
        storeCheck(db.pu_mask_.size() != db.pu_count_.size(),
                "db snapshot: port pool mismatch");
        storeCheck(db.lat_src_.size() != db.lat_dst_.size() ||
                    db.lat_src_.size() != db.lat_flags_.size() ||
                    db.lat_src_.size() != db.lat_cycles_.size() ||
                    db.lat_src_.size() != db.lat_slow_.size(),
                "db snapshot: latency pool mismatch");
        auto check_string_ids = [&](const Column<uint32_t> &ids) {
            for (uint32_t id : ids)
                storeCheck(id >= db.str_off_.size(),
                        "db snapshot: string id out of range");
        };
        check_string_ids(db.name_);
        check_string_ids(db.mnemonic_);
        check_string_ids(db.ext_);
        for (size_t row = 0; row < n; ++row) {
            storeCheck(static_cast<size_t>(db.ports_off_[row]) +
                            db.ports_n_[row] >
                        db.pu_mask_.size(),
                    "db snapshot: port span out of bounds");
            storeCheck(static_cast<size_t>(db.lat_off_[row]) +
                            db.lat_n_[row] >
                        db.lat_src_.size(),
                    "db snapshot: latency span out of bounds");
        }
    }

    /** A shard must be single-uarch; the header says which. */
    static void
    validateShardArch(const InstructionDatabase &db, uint8_t arch)
    {
        for (uint8_t a : db.arch_)
            storeCheck(a != arch, "db shard: record uarch ",
                    static_cast<int>(a),
                    " disagrees with shard header uarch ",
                    static_cast<int>(arch));
    }

    static void
    rebuild(InstructionDatabase &db)
    {
        // Re-intern so later ingests dedup against loaded strings.
        db.intern_map_.clear();
        for (uint32_t id = 0;
             id < static_cast<uint32_t>(db.str_off_.size()); ++id)
            db.intern_map_.emplace(std::string(db.str(id)), id);
        db.rebuildIndexes();
    }

    static void
    setBacking(InstructionDatabase &db,
               std::shared_ptr<const void> backing)
    {
        db.backing_ = std::move(backing);
    }
};

namespace {

/** Shared head parsing for both container kinds. Returns the format
 *  version and fills @p records / @p shard_arch (v3 only). */
template <typename Archive>
uint32_t
readHeader(Archive &ar, uint64_t &records,
           std::optional<uint8_t> &shard_arch)
{
    char magic[8];
    ar.raw(magic, sizeof magic);
    storeCheck(std::memcmp(magic, kMagic, sizeof magic) != 0,
            "db snapshot: bad magic");
    uint32_t version = ar.template scalar<uint32_t>();
    storeCheck(version == 1,
            "db snapshot: version 1 (floating-point cycle columns) is "
            "no longer supported; re-run characterize or re-ingest the "
            "results XML to produce a current snapshot");
    storeCheck(version != kSnapshotVersion && version != kShardVersion,
            "db snapshot: unsupported version ", version);
    uint32_t endian = ar.template scalar<uint32_t>();
    storeCheck(endian != kEndianTag, "db snapshot: foreign byte order");
    records = ar.template scalar<uint64_t>();
    if (version == kShardVersion) {
        uint64_t arch = ar.template scalar<uint64_t>();
        storeCheck(arch > 0xff, "db shard: implausible uarch id ", arch);
        shard_arch = static_cast<uint8_t>(arch);
    }
    return version;
}

template <typename Archive>
std::unique_ptr<InstructionDatabase>
loadContainer(Archive &ar, std::optional<uarch::UArch> expected)
{
    uint64_t records = 0;
    std::optional<uint8_t> shard_arch;
    uint32_t version = readHeader(ar, records, shard_arch);
    if (expected) {
        storeCheck(version != kShardVersion,
                "db shard: expected a version-", kShardVersion,
                " shard, got a version-", version, " container");
        storeCheck(*shard_arch != static_cast<uint8_t>(*expected),
                "db shard: header uarch ",
                uarch::uarchShortName(
                    static_cast<uarch::UArch>(*shard_arch)),
                " does not match expected ",
                uarch::uarchShortName(*expected));
    }

    auto db = std::make_unique<InstructionDatabase>();
    SnapshotCodec::columns(ar, *db);
    SnapshotCodec::validate(*db, records);
    if (shard_arch)
        SnapshotCodec::validateShardArch(*db, *shard_arch);
    SnapshotCodec::rebuild(*db);
    return db;
}

} // namespace

void
saveSnapshot(const InstructionDatabase &db, std::ostream &os)
{
    Writer writer(os);
    writer.raw(kMagic, sizeof kMagic);
    writer.scalar<uint32_t>(kSnapshotVersion);
    writer.scalar<uint32_t>(kEndianTag);
    writer.scalar<uint64_t>(db.numRecords());
    SnapshotCodec::columns(writer, db);
    fatalIf(!os, "db snapshot: write failed");
}

std::string
snapshotBytes(const InstructionDatabase &db)
{
    std::ostringstream os(std::ios::binary);
    saveSnapshot(db, os);
    return os.str();
}

std::unique_ptr<InstructionDatabase>
loadSnapshot(std::istream &is)
{
    Reader reader(is);
    return loadContainer(reader, std::nullopt);
}

std::unique_ptr<InstructionDatabase>
loadSnapshotBytes(const std::string &bytes)
{
    std::istringstream is(bytes, std::ios::binary);
    return loadSnapshot(is);
}

void
saveSnapshotFile(const InstructionDatabase &db, const std::string &path)
{
    std::ofstream os(path, std::ios::binary);
    fatalIf(!os, "db snapshot: cannot open ", path, " for writing");
    saveSnapshot(db, os);
    os.flush();
    fatalIf(!os, "db snapshot: write to ", path, " failed");
}

std::unique_ptr<InstructionDatabase>
loadSnapshotFile(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    storeCheck(!is, "db snapshot: cannot open ", path);
    return loadSnapshot(is);
}

// ---------------------------------------------------------------------
// Per-uarch shards
// ---------------------------------------------------------------------

void
saveShard(const InstructionDatabase &db, uarch::UArch arch,
          std::ostream &os)
{
    SnapshotCodec::validateShardArch(db,
                                     static_cast<uint8_t>(arch));
    Writer writer(os);
    writer.raw(kMagic, sizeof kMagic);
    writer.scalar<uint32_t>(kShardVersion);
    writer.scalar<uint32_t>(kEndianTag);
    writer.scalar<uint64_t>(db.numRecords());
    writer.scalar<uint64_t>(static_cast<uint8_t>(arch));
    SnapshotCodec::columns(writer, db);
    fatalIf(!os, "db shard: write failed");
}

std::string
shardBytes(const InstructionDatabase &db, uarch::UArch arch)
{
    std::ostringstream os(std::ios::binary);
    saveShard(db, arch, os);
    return os.str();
}

std::unique_ptr<InstructionDatabase>
loadShard(std::istream &is, uarch::UArch expected)
{
    Reader reader(is);
    return loadContainer(reader, expected);
}

std::unique_ptr<InstructionDatabase>
loadShardMapped(std::shared_ptr<const MappedFile> mapping,
                uarch::UArch expected)
{
    fatalIf(mapping == nullptr, "db shard: null mapping");
    MappedReader reader(mapping->data(), mapping->size());
    auto db = loadContainer(reader, expected);
    SnapshotCodec::setBacking(*db, std::move(mapping));
    return db;
}

} // namespace uops::db
