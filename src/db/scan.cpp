#include "scan.h"

#include <algorithm>
#include <bit>
#include <limits>

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

#if defined(__x86_64__) && defined(__GNUC__)
#include <immintrin.h>
#define UOPS_SCAN_HAVE_AVX512_DISPATCH 1
#define UOPS_SCAN_AVX512_TARGET \
    __attribute__((target("avx512f,avx512bw,avx512vl")))
#endif

#include "support/status.h"

namespace uops::db {

// ---------------------------------------------------------------------
// Predicate construction
// ---------------------------------------------------------------------

ScanPredicate
archIs(uarch::UArch arch)
{
    ScanPredicate p;
    p.kind = ScanPredicate::Kind::kArchEq;
    p.a = static_cast<int64_t>(static_cast<uint8_t>(arch));
    return p;
}

namespace {

ScanPredicate
stringEq(ScanPredicate::Kind kind, std::string_view text)
{
    ScanPredicate p;
    p.kind = kind;
    p.text = text;
    return p;
}

ScanPredicate
portPred(ScanPredicate::Kind kind, uarch::PortMask mask)
{
    ScanPredicate p;
    p.kind = kind;
    p.a = mask;
    return p;
}

ScanPredicate
rangePred(ScanPredicate::Kind kind, int64_t lo, int64_t hi)
{
    ScanPredicate p;
    p.kind = kind;
    p.a = lo;
    p.b = hi;
    return p;
}

} // namespace

ScanPredicate
nameIs(std::string_view name)
{
    return stringEq(ScanPredicate::Kind::kNameEq, name);
}

ScanPredicate
mnemonicIs(std::string_view mnemonic)
{
    return stringEq(ScanPredicate::Kind::kMnemonicEq, mnemonic);
}

ScanPredicate
extensionIs(std::string_view extension)
{
    return stringEq(ScanPredicate::Kind::kExtensionEq, extension);
}

ScanPredicate
portsSuperset(uarch::PortMask mask)
{
    return portPred(ScanPredicate::Kind::kPortSuperset, mask);
}

ScanPredicate
portsSubset(uarch::PortMask mask)
{
    return portPred(ScanPredicate::Kind::kPortSubset, mask);
}

ScanPredicate
portsExact(uarch::PortMask mask)
{
    return portPred(ScanPredicate::Kind::kPortExact, mask);
}

ScanPredicate
tpBetween(std::optional<Cycles> lo, std::optional<Cycles> hi)
{
    return rangePred(
        ScanPredicate::Kind::kTpRange,
        lo ? lo->hundredths() : std::numeric_limits<int64_t>::min(),
        hi ? hi->hundredths() : std::numeric_limits<int64_t>::max());
}

ScanPredicate
latBetween(std::optional<int> lo, std::optional<int> hi)
{
    return rangePred(
        ScanPredicate::Kind::kLatRange,
        lo ? *lo : std::numeric_limits<int64_t>::min(),
        hi ? *hi : std::numeric_limits<int64_t>::max());
}

ScanPredicate
uopsBetween(std::optional<int> lo, std::optional<int> hi)
{
    return rangePred(
        ScanPredicate::Kind::kUopRange,
        lo ? *lo : std::numeric_limits<int64_t>::min(),
        hi ? *hi : std::numeric_limits<int64_t>::max());
}

ScanPredicate
hasFlags(uint8_t flags)
{
    ScanPredicate p;
    p.kind = ScanPredicate::Kind::kFlagsAll;
    p.a = flags;
    return p;
}

void
PredicateSet::add(const ScanPredicate &p)
{
    fatalIf(size_ >= kCapacity, "scan: predicate set overflow");
    preds_[size_++] = p;
}

PredicateSet
predicatesFromQuery(const Query &query)
{
    PredicateSet out;
    if (query.arch)
        out.add(archIs(*query.arch));
    if (query.name)
        out.add(nameIs(*query.name));
    if (query.mnemonic)
        out.add(mnemonicIs(*query.mnemonic));
    if (query.extension)
        out.add(extensionIs(*query.extension));
    if (query.uses_ports)
        out.add(portsSuperset(query.uses_ports));
    if (query.ports_subset)
        out.add(portsSubset(*query.ports_subset));
    if (query.ports_exact)
        out.add(portsExact(*query.ports_exact));
    if (query.tp_min || query.tp_max)
        out.add(tpBetween(query.tp_min, query.tp_max));
    if (query.lat_min || query.lat_max)
        out.add(latBetween(query.lat_min, query.lat_max));
    if (query.uops_min || query.uops_max)
        out.add(uopsBetween(query.uops_min, query.uops_max));
    if (query.has_flags)
        out.add(hasFlags(query.has_flags));
    return out;
}

// ---------------------------------------------------------------------
// Compiled predicates and batch kernels
// ---------------------------------------------------------------------

namespace {

using Kind = ScanPredicate::Kind;

/** A predicate bound to its column pointer with operands narrowed to
 *  the column's width (string operands resolved to interned ids, u16
 *  range bounds clamped), so the inner loops touch nothing wide.
 *  Deliberately uninitialized (trivial): run() sets every field its
 *  kind's kernels read, and skipping the zero-fill of the compile
 *  array is measurable on point queries. */
struct Compiled
{
    Kind kind;
    const uint8_t *col8;
    const uint16_t *col16;
    const uint32_t *col32;
    const Cycles *col_cycles;
    uint8_t val8;
    uint16_t mask16;
    uint16_t lo16, hi16;
    uint32_t id32;
    int64_t lo64, hi64;
};

/** Ascending per-row evaluation cost; scans run cheap-first so the
 *  block bitmap empties before the expensive kernels run. */
int
costRank(Kind kind)
{
    switch (kind) {
    case Kind::kArchEq: return 0;
    case Kind::kFlagsAll: return 1;
    case Kind::kPortExact: return 2;
    case Kind::kPortSuperset: return 3;
    case Kind::kPortSubset: return 4;
    case Kind::kUopRange: return 5;
    case Kind::kLatRange: return 6;
    case Kind::kNameEq:
    case Kind::kMnemonicEq:
    case Kind::kExtensionEq: return 7;
    case Kind::kTpRange: return 8;
    }
    return 9;
}

/** Clamp an int64 inclusive range onto a u16 column's domain; an
 *  unsatisfiable range becomes the canonical empty (1, 0). */
void
clampU16(int64_t lo, int64_t hi, uint16_t &lo16, uint16_t &hi16)
{
    if (lo > hi || hi < 0 || lo > 0xFFFF) {
        lo16 = 1;
        hi16 = 0;
        return;
    }
    lo16 = static_cast<uint16_t>(std::max<int64_t>(lo, 0));
    hi16 = static_cast<uint16_t>(std::min<int64_t>(hi, 0xFFFF));
}

bool
evalScalar(const Compiled &p, uint32_t row)
{
    switch (p.kind) {
    case Kind::kArchEq:
        return p.col8[row] == p.val8;
    case Kind::kFlagsAll:
        return (p.col8[row] & p.val8) == p.val8;
    case Kind::kPortSuperset:
        return (p.col16[row] & p.mask16) == p.mask16;
    case Kind::kPortSubset:
        return (p.col16[row] & static_cast<uint16_t>(~p.mask16)) == 0;
    case Kind::kPortExact:
        return p.col16[row] == p.mask16;
    case Kind::kUopRange:
    case Kind::kLatRange:
        return p.col16[row] >= p.lo16 && p.col16[row] <= p.hi16;
    case Kind::kNameEq:
    case Kind::kMnemonicEq:
    case Kind::kExtensionEq:
        return p.col32[row] == p.id32;
    case Kind::kTpRange: {
        int64_t v = p.col_cycles[row].hundredths();
        return v >= p.lo64 && v <= p.hi64;
    }
    }
    return false;
}

#if defined(__SSE2__)

/** Two 8-lane u16 compare results (0xFFFF / 0) -> 16 mask bits, lane
 *  order preserved (signed saturating pack maps -1 -> 0xFF, 0 -> 0). */
inline uint32_t
packMask16(__m128i lo, __m128i hi)
{
    return static_cast<uint32_t>(
        _mm_movemask_epi8(_mm_packs_epi16(lo, hi)));
}

inline __m128i
loadU16(const uint16_t *p)
{
    return _mm_loadu_si128(reinterpret_cast<const __m128i *>(p));
}

#endif // __SSE2__

/** 16 selection bits for rows [base, base+16) of a u16 column. */
template <Kind K>
inline uint32_t
mask16U16(const Compiled &p, uint32_t base)
{
    const uint16_t *src = p.col16 + base;
#if defined(__SSE2__)
    __m128i a = loadU16(src);
    __m128i b = loadU16(src + 8);
    if constexpr (K == Kind::kPortSuperset) {
        const __m128i m = _mm_set1_epi16(static_cast<short>(p.mask16));
        return packMask16(_mm_cmpeq_epi16(_mm_and_si128(a, m), m),
                          _mm_cmpeq_epi16(_mm_and_si128(b, m), m));
    } else if constexpr (K == Kind::kPortSubset) {
        const __m128i inv = _mm_set1_epi16(
            static_cast<short>(~p.mask16));
        const __m128i zero = _mm_setzero_si128();
        return packMask16(
            _mm_cmpeq_epi16(_mm_and_si128(a, inv), zero),
            _mm_cmpeq_epi16(_mm_and_si128(b, inv), zero));
    } else if constexpr (K == Kind::kPortExact) {
        const __m128i m = _mm_set1_epi16(static_cast<short>(p.mask16));
        return packMask16(_mm_cmpeq_epi16(a, m),
                          _mm_cmpeq_epi16(b, m));
    } else {
        // Inclusive range. SSE2 has only signed 16-bit compares, so
        // bias operands by 0x8000 to order unsigned values correctly.
        const __m128i bias = _mm_set1_epi16(
            static_cast<short>(0x8000));
        const __m128i lo = _mm_set1_epi16(
            static_cast<short>(p.lo16 ^ 0x8000));
        const __m128i hi = _mm_set1_epi16(
            static_cast<short>(p.hi16 ^ 0x8000));
        __m128i as = _mm_xor_si128(a, bias);
        __m128i bs = _mm_xor_si128(b, bias);
        __m128i bad_a = _mm_or_si128(_mm_cmpgt_epi16(as, hi),
                                     _mm_cmpgt_epi16(lo, as));
        __m128i bad_b = _mm_or_si128(_mm_cmpgt_epi16(bs, hi),
                                     _mm_cmpgt_epi16(lo, bs));
        return packMask16(bad_a, bad_b) ^ 0xFFFFu;
    }
#else
    uint32_t w = 0;
    for (uint32_t i = 0; i < 16; ++i) {
        bool hit;
        if constexpr (K == Kind::kPortSuperset)
            hit = (src[i] & p.mask16) == p.mask16;
        else if constexpr (K == Kind::kPortSubset)
            hit = (src[i] & static_cast<uint16_t>(~p.mask16)) == 0;
        else if constexpr (K == Kind::kPortExact)
            hit = src[i] == p.mask16;
        else
            hit = src[i] >= p.lo16 && src[i] <= p.hi16;
        w |= static_cast<uint32_t>(hit) << i;
    }
    return w;
#endif
}

/** 16 selection bits for rows [base, base+16) of a u8 column. */
template <Kind K>
inline uint32_t
mask16U8(const Compiled &p, uint32_t base)
{
    const uint8_t *src = p.col8 + base;
#if defined(__SSE2__)
    __m128i x =
        _mm_loadu_si128(reinterpret_cast<const __m128i *>(src));
    const __m128i m = _mm_set1_epi8(static_cast<char>(p.val8));
    if constexpr (K == Kind::kFlagsAll)
        x = _mm_and_si128(x, m);
    return static_cast<uint32_t>(
               _mm_movemask_epi8(_mm_cmpeq_epi8(x, m))) &
           0xFFFFu;
#else
    uint32_t w = 0;
    for (uint32_t i = 0; i < 16; ++i) {
        bool hit;
        if constexpr (K == Kind::kFlagsAll)
            hit = (src[i] & p.val8) == p.val8;
        else
            hit = src[i] == p.val8;
        w |= static_cast<uint32_t>(hit) << i;
    }
    return w;
#endif
}

/**
 * Append the row ids named by @p word's set bits (offset by @p base)
 * at @p p, returning the new end. Raw-pointer writes: the caller has
 * already sized the destination, so each match is one store plus a
 * clear-lowest-bit — no per-element capacity check. (A SIMD
 * table-expansion variant measured slower than this serial loop.)
 */
inline uint32_t *
emitWord(uint64_t word, uint32_t base, uint32_t *p)
{
    while (word) {
        *p++ = base + static_cast<uint32_t>(std::countr_zero(word));
        word &= word - 1;
    }
    return p;
}

/** Selection word for the @p n rows at @p base (n <= 64); bit i set
 *  iff row base+i satisfies @p p. */
uint64_t
evalWord(const Compiled &p, uint32_t base, uint32_t n)
{
    uint64_t w = 0;
    uint32_t k = 0;
    switch (p.kind) {
    case Kind::kArchEq:
        for (; k + 16 <= n; k += 16)
            w |= static_cast<uint64_t>(
                     mask16U8<Kind::kArchEq>(p, base + k))
                 << k;
        for (; k < n; ++k)
            w |= static_cast<uint64_t>(p.col8[base + k] == p.val8)
                 << k;
        return w;
    case Kind::kFlagsAll:
        for (; k + 16 <= n; k += 16)
            w |= static_cast<uint64_t>(
                     mask16U8<Kind::kFlagsAll>(p, base + k))
                 << k;
        for (; k < n; ++k)
            w |= static_cast<uint64_t>(
                     (p.col8[base + k] & p.val8) == p.val8)
                 << k;
        return w;
    case Kind::kPortSuperset:
        for (; k + 16 <= n; k += 16)
            w |= static_cast<uint64_t>(
                     mask16U16<Kind::kPortSuperset>(p, base + k))
                 << k;
        for (; k < n; ++k)
            w |= static_cast<uint64_t>(
                     (p.col16[base + k] & p.mask16) == p.mask16)
                 << k;
        return w;
    case Kind::kPortSubset:
        for (; k + 16 <= n; k += 16)
            w |= static_cast<uint64_t>(
                     mask16U16<Kind::kPortSubset>(p, base + k))
                 << k;
        for (; k < n; ++k)
            w |= static_cast<uint64_t>(
                     (p.col16[base + k] &
                      static_cast<uint16_t>(~p.mask16)) == 0)
                 << k;
        return w;
    case Kind::kPortExact:
        for (; k + 16 <= n; k += 16)
            w |= static_cast<uint64_t>(
                     mask16U16<Kind::kPortExact>(p, base + k))
                 << k;
        for (; k < n; ++k)
            w |= static_cast<uint64_t>(p.col16[base + k] == p.mask16)
                 << k;
        return w;
    case Kind::kUopRange:
    case Kind::kLatRange:
        for (; k + 16 <= n; k += 16)
            w |= static_cast<uint64_t>(
                     mask16U16<Kind::kUopRange>(p, base + k))
                 << k;
        for (; k < n; ++k)
            w |= static_cast<uint64_t>(p.col16[base + k] >= p.lo16 &&
                                       p.col16[base + k] <= p.hi16)
                 << k;
        return w;
    case Kind::kNameEq:
    case Kind::kMnemonicEq:
    case Kind::kExtensionEq:
        for (; k < n; ++k)
            w |= static_cast<uint64_t>(p.col32[base + k] == p.id32)
                 << k;
        return w;
    case Kind::kTpRange:
        for (; k < n; ++k) {
            int64_t v = p.col_cycles[base + k].hundredths();
            w |= static_cast<uint64_t>(v >= p.lo64 && v <= p.hi64)
                 << k;
        }
        return w;
    }
    return w;
}

#if defined(UOPS_SCAN_HAVE_AVX512_DISPATCH)

// AVX-512 variants, selected at runtime (the base build stays plain
// SSE2 so the binary runs anywhere). Mask registers map a 64-row
// block onto at most two 32-lane compares, and vpcompressd turns the
// selection word into packed row ids with no per-match dependency
// chain — the two costs that dominate the scalar pipeline.

/** True once the CPU offers the F/BW/VL subset the kernels use. */
bool
haveAvx512()
{
    static const bool have = __builtin_cpu_supports("avx512f") &&
                             __builtin_cpu_supports("avx512bw") &&
                             __builtin_cpu_supports("avx512vl");
    return have;
}

/** Selection word for up to 64 rows of a u16 column, one predicate
 *  kind per instantiation; masked loads fault-suppress the tail. */
template <Kind K>
UOPS_SCAN_AVX512_TARGET inline uint64_t
evalU16Avx512(const Compiled &p, uint32_t base, uint32_t n)
{
    uint64_t w = 0;
    for (uint32_t k = 0; k < n; k += 32) {
        const uint32_t m = std::min<uint32_t>(32, n - k);
        const __mmask32 live =
            m == 32 ? ~__mmask32{0}
                    : static_cast<__mmask32>((uint32_t{1} << m) - 1);
        const __m512i v =
            _mm512_maskz_loadu_epi16(live, p.col16 + base + k);
        __mmask32 hit;
        if constexpr (K == Kind::kPortSuperset) {
            const __m512i mask = _mm512_set1_epi16(
                static_cast<short>(p.mask16));
            hit = _mm512_cmpeq_epi16_mask(
                _mm512_and_si512(v, mask), mask);
        } else if constexpr (K == Kind::kPortSubset) {
            const __m512i inv = _mm512_set1_epi16(
                static_cast<short>(~p.mask16));
            hit = _mm512_testn_epi16_mask(v, inv);
        } else if constexpr (K == Kind::kPortExact) {
            hit = _mm512_cmpeq_epi16_mask(
                v, _mm512_set1_epi16(static_cast<short>(p.mask16)));
        } else {
            hit = _mm512_cmple_epu16_mask(
                      _mm512_set1_epi16(static_cast<short>(p.lo16)),
                      v) &
                  _mm512_cmple_epu16_mask(
                      v,
                      _mm512_set1_epi16(static_cast<short>(p.hi16)));
        }
        w |= static_cast<uint64_t>(hit & live) << k;
    }
    return w;
}

/** AVX-512 evalWord: same contract, wider compares. */
UOPS_SCAN_AVX512_TARGET uint64_t
evalWordAvx512(const Compiled &p, uint32_t base, uint32_t n)
{
    const uint64_t live64 =
        n == 64 ? ~uint64_t{0} : ((uint64_t{1} << n) - 1);
    switch (p.kind) {
    case Kind::kArchEq:
    case Kind::kFlagsAll: {
        const __mmask64 live = static_cast<__mmask64>(live64);
        __m512i v = _mm512_maskz_loadu_epi8(live, p.col8 + base);
        const __m512i mask = _mm512_set1_epi8(
            static_cast<char>(p.val8));
        if (p.kind == Kind::kFlagsAll)
            v = _mm512_and_si512(v, mask);
        return _mm512_cmpeq_epi8_mask(v, mask) & live64;
    }
    case Kind::kPortSuperset:
        return evalU16Avx512<Kind::kPortSuperset>(p, base, n);
    case Kind::kPortSubset:
        return evalU16Avx512<Kind::kPortSubset>(p, base, n);
    case Kind::kPortExact:
        return evalU16Avx512<Kind::kPortExact>(p, base, n);
    case Kind::kUopRange:
    case Kind::kLatRange:
        return evalU16Avx512<Kind::kUopRange>(p, base, n);
    case Kind::kNameEq:
    case Kind::kMnemonicEq:
    case Kind::kExtensionEq: {
        uint64_t w = 0;
        const __m512i id = _mm512_set1_epi32(
            static_cast<int>(p.id32));
        for (uint32_t k = 0; k < n; k += 16) {
            const uint32_t m = std::min<uint32_t>(16, n - k);
            const __mmask16 live =
                m == 16
                    ? ~__mmask16{0}
                    : static_cast<__mmask16>((uint32_t{1} << m) - 1);
            const __m512i v =
                _mm512_maskz_loadu_epi32(live, p.col32 + base + k);
            w |= static_cast<uint64_t>(
                     _mm512_mask_cmpeq_epi32_mask(live, v, id))
                 << k;
        }
        return w;
    }
    case Kind::kTpRange:
        return evalWord(p, base, n);
    }
    return 0;
}

/** Row ids 0..15 — the per-block index seed for compress stores. */
UOPS_SCAN_AVX512_TARGET inline __m512i
iota16()
{
    return _mm512_set_epi32(15, 14, 13, 12, 11, 10, 9, 8, 7, 6, 5, 4,
                            3, 2, 1, 0);
}

/** emitWord via vpcompressd: each 16-bit chunk of the selection word
 *  compress-stores its matching row ids in one shot, so emission cost
 *  no longer scales with a serial clear-lowest-bit chain. Stores
 *  exactly popcount lanes — no overwrite slack needed. */
UOPS_SCAN_AVX512_TARGET uint32_t *
emitWordAvx512(uint64_t word, uint32_t base, uint32_t *p)
{
    __m512i idx = _mm512_add_epi32(_mm512_set1_epi32(
                                       static_cast<int>(base)),
                                   iota16());
    const __m512i step = _mm512_set1_epi32(16);
    while (word) {
        const __mmask16 m = static_cast<__mmask16>(word);
        _mm512_mask_compressstoreu_epi32(p, m, idx);
        p += std::popcount(static_cast<uint32_t>(m));
        idx = _mm512_add_epi32(idx, step);
        word >>= 16;
    }
    return p;
}

#else // !UOPS_SCAN_HAVE_AVX512_DISPATCH

constexpr bool
haveAvx512()
{
    return false;
}

inline uint64_t
evalWordAvx512(const Compiled &p, uint32_t base, uint32_t n)
{
    return evalWord(p, base, n);
}

inline uint32_t *
emitWordAvx512(uint64_t word, uint32_t base, uint32_t *p)
{
    return emitWord(word, base, p);
}

#endif // UOPS_SCAN_HAVE_AVX512_DISPATCH

} // namespace

// ---------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------

std::vector<uint32_t>
ScanExecutor::run(const PredicateSet &preds, size_t limit,
                  ScanStats *stats) const
{
    const InstructionDatabase &db = db_;
    const uint32_t n = static_cast<uint32_t>(db.arch_.size());
    std::vector<uint32_t> out;
    if (n == 0 || limit == 0)
        return out;

    // One classification pass: which tiers can fire at all. Point
    // queries (arch + a value predicate) skip the index tiers on a
    // single branch each instead of re-walking the conjunction.
    bool has_string = false;
    bool has_order_range = false;
    const ScanPredicate *arch_pred = nullptr;
    for (const ScanPredicate &p : preds) {
        switch (p.kind) {
        case Kind::kNameEq:
        case Kind::kMnemonicEq:
        case Kind::kExtensionEq:
            has_string = true;
            break;
        case Kind::kTpRange:
        case Kind::kLatRange:
            has_order_range = true;
            break;
        case Kind::kArchEq:
            arch_pred = &p;
            break;
        default:
            break;
        }
    }

    // --- Tier 1a: string-equality predicates resolve through the
    // equal-range indexes into one sorted candidate intersection.
    std::vector<uint32_t> candidates;
    bool have_candidates = false;
    bool impossible = false;
    auto narrow = [&](std::vector<uint32_t> rows) {
        if (!have_candidates) {
            candidates = std::move(rows);
            have_candidates = true;
        } else {
            std::vector<uint32_t> merged;
            std::set_intersection(candidates.begin(), candidates.end(),
                                  rows.begin(), rows.end(),
                                  std::back_inserter(merged));
            candidates = std::move(merged);
        }
        impossible |= candidates.empty();
    };

    if (has_string) {
        for (const ScanPredicate &p : preds) {
            switch (p.kind) {
            case Kind::kNameEq:
                narrow(db.findByName(p.text));
                break;
            case Kind::kMnemonicEq: {
                auto it = db.by_mnemonic_.find(p.text);
                narrow(it != db.by_mnemonic_.end()
                           ? it->second
                           : std::vector<uint32_t>{});
                break;
            }
            case Kind::kExtensionEq: {
                auto it = db.by_extension_.find(p.text);
                narrow(it != db.by_extension_.end()
                           ? it->second
                           : std::vector<uint32_t>{});
                break;
            }
            default:
                break;
            }
        }
        if (stats)
            stats->used_string_index = have_candidates;
        if (impossible)
            return out;
    }

    // --- Tier 1b: a selective tp/lat window pre-filters through the
    // sorted order index — only when it beats scanning the table.
    if (has_order_range && !have_candidates) {
        auto try_order = [&](const std::vector<uint32_t> &order,
                             auto key_fn, auto lo, auto hi) {
            using Key = decltype(lo);
            auto begin = std::lower_bound(
                order.begin(), order.end(), lo,
                [&](uint32_t row, Key v) { return key_fn(row) < v; });
            auto end = std::upper_bound(
                order.begin(), order.end(), hi,
                [&](Key v, uint32_t row) { return v < key_fn(row); });
            size_t window = static_cast<size_t>(end - begin);
            if (window * 4 >= n)
                return;
            std::vector<uint32_t> rows(begin, end);
            std::sort(rows.begin(), rows.end());
            narrow(std::move(rows));
            if (stats)
                stats->used_order_index = true;
        };
        for (const ScanPredicate &p : preds) {
            if (have_candidates)
                break;
            if (p.kind == Kind::kTpRange) {
                try_order(
                    db.tp_order_,
                    [&](uint32_t row) {
                        return db.tp_measured_[row].hundredths();
                    },
                    p.a, p.b);
            } else if (p.kind == Kind::kLatRange) {
                try_order(
                    db.lat_order_,
                    [&](uint32_t row) {
                        return static_cast<int64_t>(
                            db.max_latency_[row]);
                    },
                    p.a, p.b);
            }
        }
        if (impossible)
            return out;
    }

    // --- Tier 2a: a uarch predicate over arch-grouped rows collapses
    // to a contiguous row range instead of a per-row compare. Decided
    // before compilation so the predicate is never materialized —
    // but only on the batch path: index candidates span all arches,
    // so there the predicate must stay.
    uint32_t begin = 0;
    uint32_t end = n;
    bool arch_as_range = false;
    if (arch_pred && !have_candidates) {
        const auto &run =
            db.arch_runs_[static_cast<uint8_t>(arch_pred->a)];
        if (run.begin == run.end)
            return out;  // uarch absent entirely
        if (run.contiguous) {
            begin = run.begin;
            end = run.end;
            arch_as_range = true;
            if (stats)
                stats->used_arch_range = true;
        }
        // interleaved rows: keep the predicate
    }

    // --- Tier 2b: compile the predicates (cheap-first), binding
    // columns and narrowing operands. An unresolvable interned-string
    // operand means no row can match.
    std::array<Compiled, PredicateSet::kCapacity> compiled;
    size_t num_compiled = 0;
    for (const ScanPredicate &p : preds) {
        Compiled c;
        c.kind = p.kind;
        switch (p.kind) {
        case Kind::kArchEq:
            if (arch_as_range)
                continue;  // consumed by the range restriction
            c.col8 = db.arch_.data();
            c.val8 = static_cast<uint8_t>(p.a);
            break;
        case Kind::kFlagsAll:
            c.col8 = db.flags_.data();
            c.val8 = static_cast<uint8_t>(p.a);
            break;
        case Kind::kPortSuperset:
        case Kind::kPortSubset:
        case Kind::kPortExact:
            c.col16 = db.port_union_.data();
            c.mask16 = static_cast<uint16_t>(p.a);
            break;
        case Kind::kUopRange:
            c.col16 = db.uop_count_.data();
            clampU16(p.a, p.b, c.lo16, c.hi16);
            break;
        case Kind::kLatRange:
            c.col16 = db.max_latency_.data();
            clampU16(p.a, p.b, c.lo16, c.hi16);
            break;
        case Kind::kNameEq:
        case Kind::kMnemonicEq:
        case Kind::kExtensionEq: {
            if (have_candidates)
                continue;  // already consumed by the index tier
            auto it = db.intern_map_.find(p.text);
            if (it == db.intern_map_.end())
                return out;
            c.col32 = p.kind == Kind::kNameEq ? db.name_.data()
                      : p.kind == Kind::kMnemonicEq
                          ? db.mnemonic_.data()
                          : db.ext_.data();
            c.id32 = it->second;
            break;
        }
        case Kind::kTpRange:
            c.col_cycles = db.tp_measured_.data();
            c.lo64 = p.a;
            c.hi64 = p.b;
            break;
        }
        compiled[num_compiled++] = c;
    }
    // Cheap-first insertion sort (stable): at most kCapacity entries,
    // and std::stable_sort's temporary buffer would cost more than
    // the whole scan on small tables.
    for (size_t i = 1; i < num_compiled; ++i) {
        Compiled c = compiled[i];
        size_t j = i;
        for (; j > 0 && costRank(compiled[j - 1].kind) >
                            costRank(c.kind);
             --j)
            compiled[j] = compiled[j - 1];
        compiled[j] = c;
    }

    // --- Candidate path: scalar-evaluate the survivors in row order.
    if (have_candidates) {
        if (stats)
            stats->rows_considered = candidates.size();
        for (uint32_t row : candidates) {
            if (out.size() >= limit)
                break;
            bool hit = true;
            for (size_t i = 0; hit && i < num_compiled; ++i)
                hit = evalScalar(compiled[i], row);
            if (hit)
                out.push_back(row);
        }
        if (stats)
            stats->rows_matched = out.size();
        return out;
    }

    // --- Tier 3: batched 64-row bitmap scan. The unlimited case —
    // every query without an explicit cap — skips the per-match limit
    // check entirely.
    if (stats)
        stats->rows_considered = end - begin;
    const size_t range = end - begin;
    const bool avx = haveAvx512();
    if (limit >= range) {
        // Unlimited (the common case): raw-pointer emission into a
        // pre-sized buffer (growth is doubled so huge tables don't
        // pay a full-range zero-fill upfront). emitWord writes at
        // most one slot per set bit, so a 64-slot headroom check per
        // block is the only bound needed.
        out.resize(std::min<size_t>(range + 8, size_t{65536}));
        size_t count = 0;
        for (uint32_t base = begin; base < end; base += 64) {
            const uint32_t block =
                std::min<uint32_t>(64, end - base);
            uint64_t word = block == 64 ? ~uint64_t{0}
                                        : ((uint64_t{1} << block) - 1);
            for (size_t i = 0; word && i < num_compiled; ++i)
                word &= avx ? evalWordAvx512(compiled[i], base, block)
                            : evalWord(compiled[i], base, block);
            if (!word)
                continue;
            if (count + 72 > out.size())
                out.resize(std::max(out.size() * 2, count + 72));
            uint32_t *dst = out.data() + count;
            count = static_cast<size_t>(
                (avx ? emitWordAvx512(word, base, dst)
                     : emitWord(word, base, dst)) -
                out.data());
        }
        out.resize(count);
        if (stats)
            stats->rows_matched = count;
        return out;
    }
    out.reserve(std::min<size_t>({limit, range, size_t{65536}}));
    for (uint32_t base = begin; base < end; base += 64) {
        const uint32_t block =
            std::min<uint32_t>(64, end - base);
        uint64_t word = block == 64 ? ~uint64_t{0}
                                    : ((uint64_t{1} << block) - 1);
        for (size_t i = 0; word && i < num_compiled; ++i)
            word &= avx ? evalWordAvx512(compiled[i], base, block)
                        : evalWord(compiled[i], base, block);
        while (word) {
            if (out.size() >= limit) {
                if (stats)
                    stats->rows_matched = out.size();
                return out;
            }
            out.push_back(base + static_cast<uint32_t>(
                                     std::countr_zero(word)));
            word &= word - 1;
        }
    }
    if (stats)
        stats->rows_matched = out.size();
    return out;
}

} // namespace uops::db
