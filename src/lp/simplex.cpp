#include "simplex.h"

#include <cmath>
#include <limits>

#include "support/status.h"

namespace uops::lp {

namespace {

constexpr double kEps = 1e-9;

/**
 * Dense simplex tableau.
 *
 * Standard form: minimize c.x subject to A.x = b, x >= 0, b >= 0.
 * Phase 1 drives artificial variables out of the basis; phase 2
 * optimizes the real objective. Bland's rule prevents cycling.
 */
class Tableau
{
  public:
    Tableau(size_t num_structural, const std::vector<double> &objective)
        : num_structural_(num_structural), objective_(objective)
    {
    }

    /** Append a row already in equality form with non-negative rhs. */
    void
    addRow(std::vector<double> coeffs, double rhs)
    {
        if (rhs < 0) {
            for (auto &c : coeffs)
                c = -c;
            rhs = -rhs;
        }
        rows_.push_back(std::move(coeffs));
        rhs_.push_back(rhs);
    }

    Solution
    solve()
    {
        const size_t m = rows_.size();
        const size_t n = num_structural_;
        // Columns: structural | artificial (one per row).
        const size_t total = n + m;
        a_.assign(m, std::vector<double>(total, 0.0));
        basis_.assign(m, 0);
        for (size_t i = 0; i < m; ++i) {
            for (size_t j = 0; j < n; ++j)
                a_[i][j] = rows_[i][j];
            a_[i][n + i] = 1.0;
            basis_[i] = n + i;
        }
        b_ = rhs_;

        // Phase 1: minimize the sum of artificial variables.
        std::vector<double> phase1(total, 0.0);
        for (size_t j = n; j < total; ++j)
            phase1[j] = 1.0;
        double value = runSimplex(phase1, total);
        if (value > kEps)
            return {SolveStatus::Infeasible, 0.0, {}};

        // Drive any remaining artificial variables out of the basis.
        for (size_t i = 0; i < m; ++i) {
            if (basis_[i] < n)
                continue;
            bool pivoted = false;
            for (size_t j = 0; j < n; ++j) {
                if (std::abs(a_[i][j]) > kEps) {
                    pivot(i, j);
                    pivoted = true;
                    break;
                }
            }
            // A fully-zero row is redundant; leave the artificial
            // variable basic at value zero.
            (void)pivoted;
        }

        // Phase 2: real objective; artificial columns are forbidden.
        std::vector<double> phase2(total, 0.0);
        for (size_t j = 0; j < n; ++j)
            phase2[j] = objective_[j];
        double obj = runSimplex(phase2, n);
        if (std::isinf(obj))
            return {SolveStatus::Unbounded, 0.0, {}};

        Solution sol;
        sol.status = SolveStatus::Optimal;
        sol.objective = obj;
        sol.values.assign(n, 0.0);
        for (size_t i = 0; i < m; ++i)
            if (basis_[i] < n)
                sol.values[basis_[i]] = b_[i];
        return sol;
    }

  private:
    /**
     * Run simplex iterations for the given objective.
     *
     * @param cost        Cost coefficients over all columns.
     * @param allowed_cols Only columns < allowed_cols may enter the basis.
     * @return Objective value, or +inf when unbounded.
     */
    double
    runSimplex(const std::vector<double> &cost, size_t allowed_cols)
    {
        const size_t m = a_.size();
        while (true) {
            // Reduced costs: r_j = c_j - c_B . B^-1 A_j. With an
            // explicit tableau we track it directly.
            std::vector<double> dual(m);
            for (size_t i = 0; i < m; ++i)
                dual[i] = cost[basis_[i]];

            // Bland's rule: first column with negative reduced cost.
            size_t enter = allowed_cols;
            for (size_t j = 0; j < allowed_cols; ++j) {
                double reduced = cost[j];
                for (size_t i = 0; i < m; ++i)
                    reduced -= dual[i] * a_[i][j];
                if (reduced < -kEps) {
                    enter = j;
                    break;
                }
            }
            if (enter == allowed_cols)
                break; // optimal

            // Ratio test (Bland: smallest basis index breaks ties).
            size_t leave = m;
            double best_ratio = std::numeric_limits<double>::infinity();
            for (size_t i = 0; i < m; ++i) {
                if (a_[i][enter] > kEps) {
                    double ratio = b_[i] / a_[i][enter];
                    if (ratio < best_ratio - kEps ||
                        (std::abs(ratio - best_ratio) <= kEps &&
                         (leave == m || basis_[i] < basis_[leave]))) {
                        best_ratio = ratio;
                        leave = i;
                    }
                }
            }
            if (leave == m)
                return std::numeric_limits<double>::infinity();
            pivot(leave, enter);
        }
        double obj = 0.0;
        for (size_t i = 0; i < m; ++i)
            obj += cost[basis_[i]] * b_[i];
        return obj;
    }

    void
    pivot(size_t row, size_t col)
    {
        const size_t m = a_.size();
        const size_t total = a_[row].size();
        double p = a_[row][col];
        panicIf(std::abs(p) < kEps, "simplex: pivot on ~zero element");
        for (size_t j = 0; j < total; ++j)
            a_[row][j] /= p;
        b_[row] /= p;
        for (size_t i = 0; i < m; ++i) {
            if (i == row)
                continue;
            double f = a_[i][col];
            if (std::abs(f) < kEps)
                continue;
            for (size_t j = 0; j < total; ++j)
                a_[i][j] -= f * a_[row][j];
            b_[i] -= f * b_[row];
        }
        basis_[row] = col;
    }

    size_t num_structural_;
    std::vector<double> objective_;
    std::vector<std::vector<double>> rows_;
    std::vector<double> rhs_;

    std::vector<std::vector<double>> a_;
    std::vector<double> b_;
    std::vector<size_t> basis_;
};

} // namespace

LinearProgram::LinearProgram(size_t num_vars)
    : num_vars_(num_vars), objective_(num_vars, 0.0)
{
}

void
LinearProgram::setObjective(size_t var, double coeff)
{
    panicIf(var >= num_vars_, "lp: objective index out of range");
    objective_[var] = coeff;
}

void
LinearProgram::addConstraint(const Constraint &c)
{
    panicIf(c.coeffs.size() != num_vars_,
            "lp: constraint arity mismatch: ", c.coeffs.size(), " vs ",
            num_vars_);
    constraints_.push_back(c);
}

void
LinearProgram::addConstraint(const std::vector<double> &coeffs,
                             Relation rel, double rhs)
{
    addConstraint(Constraint{coeffs, rel, rhs});
}

Solution
LinearProgram::solve() const
{
    // Count slack variables needed for inequalities.
    size_t slacks = 0;
    for (const auto &c : constraints_)
        if (c.rel != Relation::Equal)
            ++slacks;

    size_t n = num_vars_ + slacks;
    std::vector<double> obj(n, 0.0);
    for (size_t j = 0; j < num_vars_; ++j)
        obj[j] = objective_[j];

    Tableau tableau(n, obj);
    size_t slack_idx = num_vars_;
    for (const auto &c : constraints_) {
        std::vector<double> row(n, 0.0);
        for (size_t j = 0; j < num_vars_; ++j)
            row[j] = c.coeffs[j];
        if (c.rel == Relation::LessEq)
            row[slack_idx++] = 1.0;
        else if (c.rel == Relation::GreaterEq)
            row[slack_idx++] = -1.0;
        tableau.addRow(std::move(row), c.rhs);
    }

    Solution sol = tableau.solve();
    if (sol.status == SolveStatus::Optimal)
        sol.values.resize(num_vars_);
    return sol;
}

double
minMaxPortLoad(size_t num_ports,
               const std::vector<std::pair<std::vector<int>, int>> &usage)
{
    return minMaxPortLoadDistribution(num_ports, usage).bottleneck;
}

PortLoadResult
minMaxPortLoadDistribution(
    size_t num_ports,
    const std::vector<std::pair<std::vector<int>, int>> &usage)
{
    PortLoadResult result;
    result.per_port.assign(num_ports, 0.0);
    if (usage.empty())
        return result;

    // Variables: f(p, pc) for each (combination, port in combination),
    // plus the bottleneck variable z (last index). f(p, pc) for ports
    // outside pc are simply not materialized (they are fixed to zero by
    // the paper's first constraint).
    size_t num_f = 0;
    for (const auto &[ports, count] : usage) {
        (void)count;
        num_f += ports.size();
    }
    LinearProgram prog(num_f + 1);
    const size_t z = num_f;
    prog.setObjective(z, 1.0);

    // sum_p f(p, pc) = mu(pc) for every combination.
    size_t base = 0;
    for (const auto &[ports, count] : usage) {
        std::vector<double> row(num_f + 1, 0.0);
        for (size_t k = 0; k < ports.size(); ++k)
            row[base + k] = 1.0;
        prog.addConstraint(row, Relation::Equal,
                           static_cast<double>(count));
        base += ports.size();
    }

    // For every port p: sum_pc f(p, pc) <= z.
    for (size_t p = 0; p < num_ports; ++p) {
        std::vector<double> row(num_f + 1, 0.0);
        bool any = false;
        size_t off = 0;
        for (const auto &[ports, count] : usage) {
            (void)count;
            for (size_t k = 0; k < ports.size(); ++k) {
                if (static_cast<size_t>(ports[k]) == p) {
                    row[off + k] = 1.0;
                    any = true;
                }
            }
            off += ports.size();
        }
        if (!any)
            continue;
        row[z] = -1.0;
        prog.addConstraint(row, Relation::LessEq, 0.0);
    }

    Solution sol = prog.solve();
    panicIf(sol.status != SolveStatus::Optimal,
            "port-load LP must always be feasible and bounded");
    result.bottleneck = sol.objective;
    size_t off = 0;
    for (const auto &[ports, count] : usage) {
        (void)count;
        for (size_t k = 0; k < ports.size(); ++k)
            result.per_port[static_cast<size_t>(ports[k])] +=
                sol.values[off + k];
        off += ports.size();
    }
    return result;
}

} // namespace uops::lp
