/**
 * @file
 * Dense two-phase simplex solver for small linear programs.
 *
 * Section 5.3.2 of the paper computes Intel-definition throughput from the
 * inferred port usage by solving a linear program: minimize the maximum
 * per-port load over all feasible assignments of µops to the ports of
 * their port combinations. The LPs involved are tiny (at most a few dozen
 * variables), so a dense tableau simplex with Bland's anti-cycling rule
 * is exact enough and dependency-free.
 */

#ifndef UOPS_LP_SIMPLEX_H
#define UOPS_LP_SIMPLEX_H

#include <string>
#include <vector>

namespace uops::lp {

/** Relation of a linear constraint. */
enum class Relation { LessEq, Equal, GreaterEq };

/** One linear constraint: coeffs . x (rel) rhs. */
struct Constraint
{
    std::vector<double> coeffs;
    Relation rel = Relation::LessEq;
    double rhs = 0.0;
};

/** Outcome of a solve. */
enum class SolveStatus { Optimal, Infeasible, Unbounded };

/** Solution of a linear program. */
struct Solution
{
    SolveStatus status = SolveStatus::Infeasible;
    double objective = 0.0;
    std::vector<double> values;
};

/**
 * A linear program over non-negative variables.
 *
 * minimize c . x subject to the added constraints and x >= 0.
 */
class LinearProgram
{
  public:
    /** Create a program with @p num_vars non-negative variables. */
    explicit LinearProgram(size_t num_vars);

    size_t numVars() const { return num_vars_; }

    /** Set the objective coefficient of variable @p var. */
    void setObjective(size_t var, double coeff);

    /** Add a constraint; its coefficient vector must match numVars(). */
    void addConstraint(const Constraint &c);

    /** Convenience: add sum(coeffs[i] * x[i]) (rel) rhs. */
    void addConstraint(const std::vector<double> &coeffs, Relation rel,
                       double rhs);

    /** Solve with the two-phase simplex method. */
    Solution solve() const;

  private:
    size_t num_vars_;
    std::vector<double> objective_;
    std::vector<Constraint> constraints_;
};

/**
 * Solve the paper's port-load LP directly.
 *
 * Given the port usage of an instruction as a list of (port set, #µops)
 * pairs, compute the minimum achievable maximum per-port load, i.e. the
 * throughput in cycles per instruction according to Intel's definition
 * (Definition 1).
 *
 * @param num_ports  Number of ports on the microarchitecture.
 * @param usage      Pairs of (ports usable by the µop group, µop count).
 * @return The optimal bottleneck load; 0.0 when @p usage is empty.
 */
double minMaxPortLoad(
    size_t num_ports,
    const std::vector<std::pair<std::vector<int>, int>> &usage);

/** Result of the port-load LP including the per-port distribution. */
struct PortLoadResult
{
    double bottleneck = 0.0;
    std::vector<double> per_port; ///< size num_ports
};

/** As minMaxPortLoad, but also returns an optimal distribution. */
PortLoadResult minMaxPortLoadDistribution(
    size_t num_ports,
    const std::vector<std::pair<std::vector<int>, int>> &usage);

} // namespace uops::lp

#endif // UOPS_LP_SIMPLEX_H
