#include "sim/decoded.h"

#include "support/status.h"

namespace uops::sim {

using isa::InstrInstance;
using isa::Kernel;
using isa::OperandSpec;
using isa::OpKind;
using isa::RegClass;
using uarch::Domain;
using uarch::UopSpec;

DecodedKernel::DecodedKernel(const uarch::TimingDb &timing,
                             const Kernel &prologue, const Kernel &body,
                             const Kernel &epilogue)
    : timing_(timing), info_(uarch::uarchInfo(timing.arch())),
      prologue_size_(prologue.size()), body_size_(body.size())
{
    pattern_.reserve(prologue.size() + body.size() + epilogue.size());
    for (const InstrInstance &inst : prologue)
        pattern_.push_back(decodeOne(inst));
    for (const InstrInstance &inst : body)
        pattern_.push_back(decodeOne(inst));
    for (const InstrInstance &inst : epilogue)
        pattern_.push_back(decodeOne(inst));

    // Successor of each pattern position within one pass of the
    // stream: next element of the same segment, else the first
    // element of the following non-empty segment.
    auto successor = [&](size_t pos) -> const InstrInstance * {
        if (pos + 1 < pattern_.size())
            return pattern_[pos + 1].inst;
        return nullptr;
    };
    for (size_t pos = 0; pos < pattern_.size(); ++pos) {
        if (const InstrInstance *next = successor(pos))
            pattern_[pos].fused_next =
                fusedSpec(*pattern_[pos].inst, *next);
    }
    // Copy-wrapping pair: last body instruction -> first body
    // instruction of the next copy.
    if (body_size_ > 0) {
        DecodedInstr &last = pattern_[prologue_size_ + body_size_ - 1];
        last.fused_wrap =
            fusedSpec(*last.inst, *pattern_[prologue_size_].inst);
    }
}

DecodedKernel::Ref
DecodedKernel::at(size_t v, int body_reps) const
{
    if (v < prologue_size_)
        return {&pattern_[v], false};
    size_t rel = v - prologue_size_;
    size_t unrolled = body_size_ * static_cast<size_t>(body_reps);
    if (rel < unrolled) {
        size_t offset = rel % body_size_;
        bool last_copy =
            rel / body_size_ == static_cast<size_t>(body_reps) - 1;
        return {&pattern_[prologue_size_ + offset],
                offset == body_size_ - 1 && !last_copy};
    }
    return {&pattern_[prologue_size_ + body_size_ + (rel - unrolled)],
            false};
}

DecodedInstr
DecodedKernel::decodeOne(const InstrInstance &inst) const
{
    DecodedInstr d;
    d.inst = &inst;
    const uarch::TimingInfo &timing = timing_.timing(*inst.variant);
    d.uops = &timing_.uopsFor(inst);
    bool same_reg = uarch::TimingDb::sameRegOperands(inst);
    bool idiom = same_reg && timing.dep_breaking_same_reg;
    bool zero_elim =
        same_reg && timing.zero_idiom && info_.zero_idiom_elim;
    d.rename_direct = d.uops->empty() || zero_elim;
    d.try_mov_elim = timing.mov_elim && d.uops->size() == 1;
    d.serializing = inst.variant->attrs().is_serializing;
    d.slow = inst.div_class == isa::DivValueClass::Slow;

    if (idiom) {
        auto expl = inst.variant->explicitOperands();
        d.skip_unit = isa::regUnit(inst.regOf(expl[0]));
    }
    if (d.try_mov_elim) {
        auto expl = inst.variant->explicitOperands();
        d.elim_dst_unit = isa::regUnit(inst.regOf(expl[0]));
        d.elim_src_unit = isa::regUnit(inst.regOf(expl[1]));
    }

    if (inst.variant->mnemonic() == "VZEROUPPER") {
        d.ymm_effect = DecodedInstr::YmmEffect::ClearUpper;
    } else if (inst.variant->attrs().is_avx) {
        for (size_t i = 0; i < inst.variant->numOperands(); ++i) {
            const OperandSpec &op = inst.variant->operand(i);
            if (op.kind == OpKind::Reg && op.written &&
                op.reg_class == RegClass::Ymm)
                d.ymm_effect = DecodedInstr::YmmEffect::DirtyUpper;
        }
    }
    return d;
}

bool
DecodedKernel::canFuse(const InstrInstance &prod,
                       const InstrInstance &branch) const
{
    if (!info_.fuses_cmp_jcc)
        return false;
    const isa::InstrVariant &pv = *prod.variant;
    const isa::InstrVariant &bv = *branch.variant;
    if (!bv.attrs().is_branch || bv.attrs().is_cf_reg)
        return false;
    int bf = bv.flagsOperand();
    if (bf < 0 ||
        !bv.operand(static_cast<size_t>(bf)).flags_read.any())
        return false;
    if (pv.memOperand() >= 0)
        return false;
    int pf = pv.flagsOperand();
    if (pf < 0)
        return false;
    const OperandSpec &flags = pv.operand(static_cast<size_t>(pf));
    if (!flags.flags_written.any() || flags.flags_read.any())
        return false;
    // Zero idioms are handled at rename, never fused.
    if (uarch::TimingDb::sameRegOperands(prod) &&
        timing_.timing(pv).dep_breaking_same_reg)
        return false;
    if (timing_.uopsFor(prod).size() != 1)
        return false;
    const std::string &m = pv.mnemonic();
    if (m == "CMP" || m == "TEST")
        return true;
    bool alu_like = m == "ADD" || m == "SUB" || m == "AND" ||
                    m == "INC" || m == "DEC";
    return alu_like && info_.fuses_alu_jcc;
}

const UopSpec *
DecodedKernel::fusedSpec(const InstrInstance &prod,
                         const InstrInstance &branch)
{
    if (!canFuse(prod, branch))
        return nullptr;
    const UopSpec &prod_uop = timing_.uopsFor(prod).front();
    const UopSpec &branch_uop = timing_.uopsFor(branch).front();

    auto spec = std::make_unique<UopSpec>(prod_uop);
    spec->ports = branch_uop.ports; // executes on the branch unit
    spec->latency = 1;
    spec->domain = Domain::Gpr;
    fused_specs_.push_back(std::move(spec));
    return fused_specs_.back().get();
}

} // namespace uops::sim
