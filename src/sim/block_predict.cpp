#include "block_predict.h"

#include "sim/measurement_cache.h"
#include "support/status.h"

namespace uops::sim {

BlockPredictor::BlockPredictor(const isa::InstrDb &instrs,
                               uarch::UArch arch,
                               BlockPredictOptions options)
    : timing_(instrs, arch),
      harness_(timing_, options.harness,
               SimOptions{.cycle_budget = options.cycle_budget})
{
}

Measurement
BlockPredictor::predict(const isa::Kernel &body) const
{
    fatalIf(body.empty(), "predict: empty kernel");
    const uarch::UArchInfo &gen = info();
    for (const isa::InstrInstance &inst : body) {
        fatalIf(!gen.supports(*inst.variant), "predict: ",
                inst.variant->name(), " is not available on ",
                gen.short_name);
    }
    return harness_.measure(body);
}

std::string
BlockPredictor::fingerprint(uarch::UArch arch, const isa::Kernel &body,
                            const HarnessOptions &options)
{
    std::string key = uarch::uarchShortName(arch);
    key += '\0';
    key += MeasurementCache::fingerprint(body, options);
    return key;
}

} // namespace uops::sim
