#include "sim/measurement_cache.h"

#include <bit>
#include <functional>

#include "support/status.h"

namespace uops::sim {

namespace {

/** Append a 64-bit value as 8 little-endian bytes. */
void
appendU64(std::string &out, uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void
appendI64(std::string &out, int64_t v)
{
    appendU64(out, static_cast<uint64_t>(v));
}

} // namespace

MeasurementCache::MeasurementCache(size_t num_shards)
{
    panicIf(num_shards == 0, "MeasurementCache: need at least 1 shard");
    shards_.reserve(num_shards);
    for (size_t i = 0; i < num_shards; ++i)
        shards_.push_back(std::make_unique<Shard>());
}

std::string
MeasurementCache::fingerprint(const isa::Kernel &body,
                              const HarnessOptions &options)
{
    std::string key;
    key.reserve(64 + body.size() * 64);

    // Harness options first: results are only comparable under
    // identical measurement configuration.
    appendI64(key, options.unroll_small);
    appendI64(key, options.unroll_large);
    appendI64(key, options.repetitions);
    appendI64(key, options.warmup ? 1 : 0);
    appendU64(key, std::bit_cast<uint64_t>(options.noise_stddev));
    appendU64(key, options.noise_seed);

    for (const isa::InstrInstance &inst : body) {
        appendI64(key, inst.variant->id());
        appendI64(key, static_cast<int64_t>(inst.div_class));
        appendI64(key, static_cast<int64_t>(inst.ops.size()));
        for (const isa::OperandValue &op : inst.ops) {
            appendI64(key, static_cast<int64_t>(op.reg.cls));
            appendI64(key, op.reg.index);
            appendI64(key, op.mem.tag);
            appendI64(key, static_cast<int64_t>(op.mem.base.cls));
            appendI64(key, op.mem.base.index);
            appendI64(key, op.imm);
        }
    }
    return key;
}

MeasurementCache::Shard &
MeasurementCache::shardFor(const std::string &key) const
{
    size_t h = std::hash<std::string>{}(key);
    return *shards_[h % shards_.size()];
}

std::optional<Measurement>
MeasurementCache::lookup(const std::string &key) const
{
    Shard &shard = shardFor(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.map.find(key);
    if (it == shard.map.end()) {
        misses_.fetch_add(1, std::memory_order_relaxed);
        return std::nullopt;
    }
    hits_.fetch_add(1, std::memory_order_relaxed);
    return it->second;
}

void
MeasurementCache::insert(const std::string &key, const Measurement &m)
{
    Shard &shard = shardFor(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    // First writer wins: concurrent writers computed the same value
    // (the measurement is a pure function of the key).
    shard.map.emplace(key, m);
}

size_t
MeasurementCache::size() const
{
    size_t n = 0;
    for (const auto &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard->mutex);
        n += shard->map.size();
    }
    return n;
}

} // namespace uops::sim
