/**
 * @file
 * Cycle-level out-of-order execution-engine simulator.
 *
 * This is the project's substitute for the paper's physical Intel Core
 * processors (see DESIGN.md): it executes benchmark kernels against the
 * ground-truth µop timing tables and exposes the performance counters
 * the characterization algorithms consume.
 *
 * Modeled (per Figure 1 and Section 3.1 of the paper):
 *  - in-order issue of µops into the scheduler (4-wide front end);
 *  - register renaming over architectural units, eliminating false
 *    dependencies; partial-register writes merge with the old value;
 *  - the reorder buffer executing special µops directly: NOPs, zero
 *    idioms (with identical registers), and register-to-register moves
 *    (move elimination — deliberately succeeding only ~1/3 of the time
 *    in dependent chains, as the paper observed, so that latency
 *    measurements must use MOVSX instead of MOV);
 *  - per-µop port binding by least-load heuristic at issue time and
 *    oldest-first dispatch of at most one µop per port per cycle;
 *  - per-(µop, destination) latencies, inter-domain bypass delays, and
 *    the not-fully-pipelined divider with value-dependent timing;
 *  - loads, store-address/store-data µops, memory dependencies through
 *    store-to-load forwarding;
 *  - SSE/AVX transition behaviour: while the upper YMM state is dirty,
 *    non-VEX vector writes acquire a merge dependency on their
 *    destination (why the tool keeps separate SSE/AVX blocking sets);
 *  - serializing instructions (pipeline drain) and in-order retirement
 *    with counter snapshots at marker instructions (Algorithm 2).
 *
 * Performance: run() executes either a materialized kernel or a
 * DecodedKernel template with logical body unrolling (the measurement
 * hot path — see sim/decoded.h). Per-run working state (reorder
 * buffer, value tables, port queues) lives in a scratch arena owned by
 * the Pipeline and reused across runs, so steady-state runs allocate
 * almost nothing. Results are unaffected: every run starts from a
 * fully reset power-on state. When no µop can dispatch, issue, or
 * retire in a cycle, the simulated clock skips ahead to the next
 * cycle at which a value becomes ready, the divider frees up, or the
 * oldest µop completes — cycle-exact, since no architectural state
 * can change in the skipped span.
 *
 * Thread-safety: because of the reused scratch arena, a Pipeline
 * instance must not execute concurrent run() calls. The batch engine
 * keeps one Pipeline (inside a Characterizer) per worker thread.
 */

#ifndef UOPS_SIM_PIPELINE_H
#define UOPS_SIM_PIPELINE_H

#include <memory>
#include <vector>

#include "isa/kernel.h"
#include "sim/counters.h"
#include "sim/decoded.h"
#include "support/status.h"
#include "uarch/timing_db.h"
#include "uarch/uarch.h"

namespace uops::sim {

class PipelineScratch;

/**
 * Thrown when a run exceeds SimOptions::cycle_budget. Unlike the
 * max_cycles backstop (a panic: a kernel the library itself built
 * should never run away), blowing the budget is a *user* condition —
 * the submitted kernel was legal but too expensive to simulate under
 * the caller's admission policy — so it derives from FatalError and
 * carries the budget for a structured rejection.
 */
class CycleBudgetExceeded : public FatalError
{
  public:
    CycleBudgetExceeded(const std::string &msg, int64_t budget)
        : FatalError(msg), budget_(budget)
    {
    }

    int64_t budget() const { return budget_; }

  private:
    int64_t budget_;
};

/** Tuning/feature knobs (defaults follow the uarch descriptor). */
struct SimOptions
{
    /** Hard cycle cap: aborts runaway simulations. */
    int64_t max_cycles = 50'000'000;

    /** Admission budget for externally-supplied kernels: a run whose
     *  simulated clock passes this many cycles throws
     *  CycleBudgetExceeded (0 disables the budget). Purely an abort
     *  threshold — results of runs within budget are unaffected. */
    int64_t cycle_budget = 0;

    /** Success period of move elimination in dependent chains
     *  (1 elimination every N candidates; 0 disables elimination). */
    int mov_elim_period = 3;

    /** Skip idle stretches of the simulated clock (cycle-exact; off
     *  only for differential testing). */
    bool skip_idle = true;
};

/** Result of simulating one kernel. */
struct RunResult
{
    PerfCounters final;                  ///< Counters at end of run.
    std::vector<PerfCounters> snapshots; ///< At marker retirements.
    int64_t cycles = 0;                  ///< Total cycles to drain.
};

/**
 * The simulated core. Architecturally stateless between run() calls —
 * each run starts from power-on register state — but the working
 * memory is reused (see the file comment), so concurrent run() calls
 * on one instance are not allowed.
 */
class Pipeline
{
  public:
    explicit Pipeline(const uarch::TimingDb &timing,
                      SimOptions options = {});
    ~Pipeline();

    Pipeline(const Pipeline &) = delete;
    Pipeline &operator=(const Pipeline &) = delete;

    const uarch::UArchInfo &info() const { return info_; }

    /**
     * Execute @p kernel to completion.
     *
     * @param kernel  Straight-line instance sequence.
     * @param markers Kernel indices at whose retirement the counters
     *                are snapshotted (Algorithm 2's counter reads).
     */
    RunResult run(const isa::Kernel &kernel,
                  const std::vector<size_t> &markers = {}) const;

    /**
     * Execute a decoded template with @p body_reps logical body
     * copies: prologue · body × body_reps · epilogue. Produces
     * bit-identical results to run() on the equivalent materialized
     * kernel, without building it.
     *
     * @param markers Virtual-stream indices for counter snapshots.
     */
    RunResult run(const DecodedKernel &decoded, int body_reps,
                  const std::vector<size_t> &markers = {}) const;

  private:
    const uarch::TimingDb &timing_;
    const uarch::UArchInfo &info_;
    SimOptions options_;
    /** Reusable per-run working state (see file comment). */
    mutable std::unique_ptr<PipelineScratch> scratch_;
};

} // namespace uops::sim

#endif // UOPS_SIM_PIPELINE_H
