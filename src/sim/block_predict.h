/**
 * @file
 * Pipeline entry point for externally-supplied basic blocks.
 *
 * The characterization stack always simulates kernels it built
 * itself; the prediction service (server/service.h) simulates kernels
 * a *user* submitted, which changes the contract in three ways this
 * wrapper enforces:
 *
 *  - validation: every instruction must exist on the target
 *    generation (extension gating per Table 1) — a kernel that
 *    assembles against the full instruction DB can still be invalid
 *    for a Nehalem-class core. Violations are FatalErrors (the
 *    caller's 400), never simulator panics.
 *  - bounded work: the underlying pipeline runs with a cycle budget
 *    (SimOptions::cycle_budget), so a legal-but-expensive kernel
 *    aborts with CycleBudgetExceeded instead of monopolizing a
 *    worker for up to max_cycles.
 *  - self-contained timing: ground-truth timing synthesis
 *    (uarch::TimingDb) caches lazily without locks, so each
 *    BlockPredictor owns a private TimingDb rather than sharing one.
 *    An instance is therefore single-threaded like the Pipeline it
 *    wraps — keep one per worker thread — but a MeasurementCache may
 *    be shared across all instances for one uarch (timing is a pure
 *    function of the generation, independent of catalog contents or
 *    serving epoch).
 *
 * The measurement itself is exactly Algorithm 2 on the decoded
 * template (sim/harness.h): per-iteration steady-state cycles and
 * port pressure with the harness wrapper cost cancelled. Results are
 * bit-identical to driving sim::Pipeline through a MeasurementHarness
 * directly with the same options.
 */

#ifndef UOPS_SIM_BLOCK_PREDICT_H
#define UOPS_SIM_BLOCK_PREDICT_H

#include <string>

#include "isa/kernel.h"
#include "sim/harness.h"
#include "uarch/timing_db.h"
#include "uarch/uarch.h"

namespace uops::sim {

class MeasurementCache;

/** Policy for one predictor instance. */
struct BlockPredictOptions
{
    /** Algorithm-2 configuration (unroll factors, repetitions). */
    HarnessOptions harness;

    /** Per-run simulated-cycle budget (0 = unbounded). The default
     *  comfortably covers every latency-bound kernel a bounded
     *  instruction count can produce, while capping a worker's
     *  worst-case time on one request. */
    int64_t cycle_budget = 20'000'000;
};

/**
 * Simulates user-submitted basic blocks on one microarchitecture.
 * Not thread-safe; see the file comment.
 */
class BlockPredictor
{
  public:
    BlockPredictor(const isa::InstrDb &instrs, uarch::UArch arch,
                   BlockPredictOptions options = {});

    uarch::UArch arch() const { return timing_.arch(); }
    const uarch::UArchInfo &info() const { return harness_.info(); }
    const HarnessOptions &harnessOptions() const
    {
        return harness_.options();
    }

    /** Share a per-uarch measurement memo (nullptr detaches). */
    void setCache(MeasurementCache *cache) { harness_.setCache(cache); }

    /**
     * Validate @p body for this generation and measure it.
     *
     * @throws FatalError on an instruction the generation lacks or an
     *         empty body; CycleBudgetExceeded past the budget.
     * @return Per-iteration steady-state averages.
     */
    Measurement predict(const isa::Kernel &body) const;

    /**
     * Canonical memo key for (arch, body) under @p options: the uarch
     * short name prefixed to the exact MeasurementCache fingerprint.
     * Two requests get the same key iff they decode to byte-identical
     * simulations, so memoized responses are bit-identical to cold
     * ones by construction.
     */
    static std::string fingerprint(uarch::UArch arch,
                                   const isa::Kernel &body,
                                   const HarnessOptions &options);

  private:
    uarch::TimingDb timing_;
    MeasurementHarness harness_;
};

} // namespace uops::sim

#endif // UOPS_SIM_BLOCK_PREDICT_H
