#include "pipeline.h"

#include <algorithm>
#include <deque>
#include <limits>
#include <map>

#include "support/status.h"

namespace uops::sim {

using isa::InstrInstance;
using isa::Kernel;
using isa::OpKind;
using isa::OperandSpec;
using isa::Reg;
using isa::RegClass;
using uarch::Domain;
using uarch::OpRef;
using uarch::UopSpec;

namespace {

constexpr int64_t kNotReady = std::numeric_limits<int64_t>::max() / 4;

/** Dynamic (renamed) instance of one µop in flight. */
struct UopDyn
{
    const UopSpec *spec = nullptr; ///< nullptr for rename-eliminated.
    int32_t instr_idx = -1;
    int16_t port = -1;
    bool slow = false;
    bool dispatched = false;
    int64_t complete = -1;         ///< -1: not finished.
    std::vector<int32_t> srcs;     ///< value ids
    std::vector<int32_t> dsts;     ///< value ids, parallel to writes
};

/** Whole-run mutable state. */
class Core
{
  public:
    Core(const uarch::TimingDb &timing, const uarch::UArchInfo &info,
         const SimOptions &options, const Kernel &kernel,
         const std::vector<size_t> &markers)
        : timing_(timing), info_(info), options_(options),
          kernel_(kernel)
    {
        for (size_t m : markers)
            marker_set_.push_back(m);
        std::sort(marker_set_.begin(), marker_set_.end());
        // Value 0: power-on state (ready, integer domain).
        value_ready_.push_back(0);
        value_domain_.push_back(static_cast<uint8_t>(Domain::Gpr));
        unit_value_.assign(isa::kNumArchUnits, 0);
        bound_.resize(static_cast<size_t>(info.num_ports));
        bound_head_.assign(static_cast<size_t>(info.num_ports), 0);
        waiting_.assign(static_cast<size_t>(info.num_ports), 0);
        div_busy_.assign(static_cast<size_t>(info.num_ports), 0);
        // -1: not yet renamed (blocks the in-order retire cursor).
        instr_uops_left_.assign(kernel.size(), -1);
        result_.snapshots.resize(marker_set_.size());
    }

    RunResult
    run()
    {
        while (!done()) {
            ++cycle_;
            panicIf(cycle_ > options_.max_cycles,
                    "simulation exceeded max_cycles (deadlock?)");
            dispatch();
            issue();
            retire();
        }
        counters_.cycles = cycle_;
        result_.final = counters_;
        result_.cycles = cycle_;
        return std::move(result_);
    }

  private:
    bool
    done() const
    {
        return next_instr_ >= kernel_.size() &&
               pending_uops_.empty() && retire_head_ == rob_.size() &&
               retire_cursor_ >= kernel_.size();
    }

    // ---- value table -------------------------------------------------
    int32_t
    newValue()
    {
        value_ready_.push_back(kNotReady);
        value_domain_.push_back(static_cast<uint8_t>(Domain::Gpr));
        return static_cast<int32_t>(value_ready_.size() - 1);
    }

    int64_t
    effectiveReady(int32_t value, Domain consumer) const
    {
        int64_t t = value_ready_[value];
        if (t >= kNotReady)
            return t;
        auto d = static_cast<Domain>(value_domain_[value]);
        bool cross = (d == Domain::IVec && consumer == Domain::FVec) ||
                     (d == Domain::FVec && consumer == Domain::IVec);
        if (cross)
            t += info_.bypass_delay;
        return t;
    }

    // ---- renaming ----------------------------------------------------
    /** Value id currently bound to an OpRef source. */
    int32_t
    resolveRead(const InstrInstance &inst, const OpRef &ref)
    {
        switch (ref.kind) {
          case OpRef::Kind::Operand: {
            const OperandSpec &op = inst.variant->operand(ref.index);
            if (op.kind == OpKind::Reg)
                return unit_value_[isa::regUnit(inst.regOf(ref.index))];
            panicIf(op.kind != OpKind::Flags,
                    "resolveRead: unexpected operand kind");
            // Flags: conservatively take the latest of the read groups
            // by returning a synthetic max value. To stay exact we
            // treat each group as a separate source (see expandReads).
            panic("flags reads must be expanded");
          }
          case OpRef::Kind::MemAddr: {
            const Reg &base = inst.ops[ref.index].mem.base;
            return unit_value_[isa::regUnit(base)];
          }
          case OpRef::Kind::MemData: {
            auto it = mem_value_.find(inst.ops[ref.index].mem.tag);
            return it == mem_value_.end() ? 0 : it->second;
          }
          case OpRef::Kind::Temp:
            return temp_value_.at(ref.index);
        }
        panic("resolveRead: unreachable");
    }

    /** Expand a read OpRef into concrete source value ids. */
    void
    expandReads(const InstrInstance &inst, const OpRef &ref,
                std::vector<int32_t> &out, int skip_unit)
    {
        if (ref.kind == OpRef::Kind::Operand) {
            const OperandSpec &op = inst.variant->operand(ref.index);
            if (op.kind == OpKind::Flags) {
                for (isa::ArchUnit u : op.flags_read.units())
                    out.push_back(unit_value_[u]);
                return;
            }
            if (op.kind == OpKind::Reg) {
                isa::ArchUnit u = isa::regUnit(inst.regOf(ref.index));
                if (u == skip_unit)
                    return; // dependency-breaking idiom
                out.push_back(unit_value_[u]);
                return;
            }
            panic("expandReads: unexpected operand kind for ",
                  inst.variant->name());
        }
        out.push_back(resolveRead(inst, ref));
    }

    /** Allocate the destination value for a write OpRef and bind it. */
    int32_t
    applyWrite(const InstrInstance &inst, const OpRef &ref)
    {
        int32_t value = newValue();
        switch (ref.kind) {
          case OpRef::Kind::Operand: {
            const OperandSpec &op = inst.variant->operand(ref.index);
            if (op.kind == OpKind::Flags) {
                for (isa::ArchUnit u : op.flags_written.units())
                    unit_value_[u] = value;
                return value;
            }
            panicIf(op.kind != OpKind::Reg,
                    "applyWrite: unexpected operand kind");
            unit_value_[isa::regUnit(inst.regOf(ref.index))] = value;
            return value;
          }
          case OpRef::Kind::MemData:
            mem_value_[inst.ops[ref.index].mem.tag] = value;
            return value;
          case OpRef::Kind::Temp:
            if (temp_value_.size() <=
                static_cast<size_t>(ref.index))
                temp_value_.resize(static_cast<size_t>(ref.index) + 1, 0);
            temp_value_[static_cast<size_t>(ref.index)] = value;
            return value;
          case OpRef::Kind::MemAddr:
            break;
        }
        panic("applyWrite: unreachable");
    }

    /** Merge-dependency unit for narrow GPR writes / dirty-upper SSE. */
    int
    mergeUnit(const InstrInstance &inst, const OpRef &ref) const
    {
        if (ref.kind != OpRef::Kind::Operand)
            return -1;
        const OperandSpec &op = inst.variant->operand(ref.index);
        if (op.kind != OpKind::Reg)
            return -1;
        RegClass cls = op.reg_class;
        if (cls == RegClass::Gpr8 || cls == RegClass::Gpr8High ||
            cls == RegClass::Gpr16)
            return isa::regUnit(inst.regOf(ref.index));
        // Dirty-upper merge for legacy-SSE XMM writes.
        if (info_.sse_avx_transition && dirty_upper_ &&
            cls == RegClass::Xmm && !inst.variant->attrs().is_avx)
            return isa::regUnit(inst.regOf(ref.index));
        return -1;
    }

    // ---- issue -------------------------------------------------------
    /** Generate and enqueue the renamed µops of the next instruction. */
    void
    renameInstruction(const InstrInstance &inst, int32_t idx)
    {
        const uarch::TimingInfo &timing = timing_.timing(*inst.variant);
        const auto &uops = timing_.uopsFor(inst);
        bool same_reg = uarch::TimingDb::sameRegOperands(inst);
        bool idiom = same_reg && timing.dep_breaking_same_reg;
        bool zero_elim =
            same_reg && timing.zero_idiom && info_.zero_idiom_elim;

        // The register whose dependency the idiom breaks.
        int skip_unit = -1;
        if (idiom) {
            auto expl = inst.variant->explicitOperands();
            skip_unit = isa::regUnit(inst.regOf(expl[0]));
        }

        // Move elimination: reg-reg moves handled by the ROB.
        bool try_elim = timing.mov_elim && uops.size() == 1;
        bool eliminated_mov = false;
        if (try_elim && options_.mov_elim_period > 0) {
            eliminated_mov =
                (mov_elim_counter_++ % options_.mov_elim_period) == 0;
        }

        if (uops.empty() || zero_elim || eliminated_mov) {
            // Rename-stage execution: one issued-but-not-dispatched µop.
            UopDyn dyn;
            dyn.instr_idx = idx;
            if (eliminated_mov) {
                // Zero-latency: destination aliases the source value.
                auto expl = inst.variant->explicitOperands();
                int32_t src =
                    unit_value_[isa::regUnit(inst.regOf(expl[1]))];
                unit_value_[isa::regUnit(inst.regOf(expl[0]))] = src;
            } else {
                // NOP / zero idiom: results ready immediately.
                for (const auto &u : uops)
                    for (const auto &w : u.writes)
                        if (w.kind == OpRef::Kind::Operand) {
                            int32_t v = applyWrite(inst, w);
                            value_ready_[v] = 0;
                        }
            }
            instr_uops_left_[idx] = 1;
            pending_uops_.push_back(std::move(dyn));
            pending_rename_only_.push_back(true);
            return;
        }

        temp_value_.assign(temp_value_.size(), 0);
        int count = 0;
        for (const auto &spec : uops) {
            UopDyn dyn;
            dyn.spec = &spec;
            dyn.instr_idx = idx;
            dyn.slow = inst.div_class == isa::DivValueClass::Slow;
            for (const auto &r : spec.reads)
                expandReads(inst, r, dyn.srcs, skip_unit);
            // Partial-register / dirty-upper merges add a read of the
            // written register's previous value.
            for (const auto &w : spec.writes) {
                int mu = mergeUnit(inst, w);
                if (mu >= 0 && mu != skip_unit)
                    dyn.srcs.push_back(unit_value_[mu]);
            }
            for (const auto &w : spec.writes)
                dyn.dsts.push_back(applyWrite(inst, w));
            pending_uops_.push_back(std::move(dyn));
            pending_rename_only_.push_back(false);
            ++count;
        }
        instr_uops_left_[idx] = count;

        // Track the YMM upper state for the SSE/AVX transition model.
        if (info_.sse_avx_transition) {
            if (inst.variant->mnemonic() == "VZEROUPPER") {
                dirty_upper_ = false;
            } else if (inst.variant->attrs().is_avx) {
                for (size_t i = 0; i < inst.variant->numOperands(); ++i) {
                    const OperandSpec &op = inst.variant->operand(i);
                    if (op.kind == OpKind::Reg && op.written &&
                        op.reg_class == RegClass::Ymm)
                        dirty_upper_ = true;
                }
            }
        }
    }

    /**
     * Macro-fusion eligibility: a register/immediate compare or
     * (from Sandy Bridge) simple ALU instruction writing the flags,
     * immediately followed by a conditional branch reading them.
     */
    bool
    canFuse(const InstrInstance &prod, const InstrInstance &branch) const
    {
        if (!info_.fuses_cmp_jcc)
            return false;
        const isa::InstrVariant &pv = *prod.variant;
        const isa::InstrVariant &bv = *branch.variant;
        if (!bv.attrs().is_branch || bv.attrs().is_cf_reg)
            return false;
        int bf = bv.flagsOperand();
        if (bf < 0 || !bv.operand(static_cast<size_t>(bf))
                           .flags_read.any())
            return false;
        if (pv.memOperand() >= 0)
            return false;
        int pf = pv.flagsOperand();
        if (pf < 0)
            return false;
        const OperandSpec &flags = pv.operand(static_cast<size_t>(pf));
        if (!flags.flags_written.any() || flags.flags_read.any())
            return false;
        // Zero idioms are handled at rename, never fused.
        if (uarch::TimingDb::sameRegOperands(prod) &&
            timing_.timing(pv).dep_breaking_same_reg)
            return false;
        if (timing_.uopsFor(prod).size() != 1)
            return false;
        const std::string &m = pv.mnemonic();
        if (m == "CMP" || m == "TEST")
            return true;
        bool alu_like = m == "ADD" || m == "SUB" || m == "AND" ||
                        m == "INC" || m == "DEC";
        return alu_like && info_.fuses_alu_jcc;
    }

    /** Rename a macro-fused pair into a single branch-unit µop. */
    void
    renameFusedPair(const InstrInstance &prod,
                    const InstrInstance &branch, int32_t idx)
    {
        const UopSpec &prod_uop = timing_.uopsFor(prod).front();
        const UopSpec &branch_uop = timing_.uopsFor(branch).front();

        auto spec = std::make_unique<UopSpec>(prod_uop);
        spec->ports = branch_uop.ports; // executes on the branch unit
        spec->latency = 1;
        spec->domain = Domain::Gpr;

        UopDyn dyn;
        dyn.spec = spec.get();
        dyn.instr_idx = idx;
        for (const auto &r : spec->reads)
            expandReads(prod, r, dyn.srcs, -1);
        for (const auto &w : spec->writes)
            dyn.dsts.push_back(applyWrite(prod, w));
        fused_specs_.push_back(std::move(spec));

        instr_uops_left_[static_cast<size_t>(idx)] = 1;
        instr_uops_left_[static_cast<size_t>(idx) + 1] = 0;
        pending_uops_.push_back(std::move(dyn));
        pending_rename_only_.push_back(false);
    }

    void
    issue()
    {
        int issued = 0;
        while (issued < info_.issue_width) {
            // Refill the pending queue from the instruction stream.
            if (pending_uops_.empty()) {
                if (next_instr_ >= kernel_.size())
                    return;
                // A serializing instruction in flight blocks younger
                // instructions until it has fully retired.
                if (serializer_in_flight_ >= 0) {
                    if (instr_uops_left_[static_cast<size_t>(
                            serializer_in_flight_)] > 0)
                        return;
                    serializer_in_flight_ = -1;
                }
                const InstrInstance &inst = kernel_[next_instr_];
                if (inst.variant->attrs().is_serializing) {
                    // Drain: all older µops must have retired first.
                    if (retire_head_ != rob_.size())
                        return;
                    serializer_in_flight_ =
                        static_cast<int32_t>(next_instr_);
                }
                // Macro-fusion: a flag-writing ALU instruction and an
                // immediately following Jcc decode into a single µop.
                if (next_instr_ + 1 < kernel_.size() &&
                    canFuse(inst, kernel_[next_instr_ + 1])) {
                    renameFusedPair(
                        inst, kernel_[next_instr_ + 1],
                        static_cast<int32_t>(next_instr_));
                    next_instr_ += 2;
                    continue;
                }
                renameInstruction(inst,
                                  static_cast<int32_t>(next_instr_));
                ++next_instr_;
            }
            while (!pending_uops_.empty() &&
                   issued < info_.issue_width) {
                bool rename_only = pending_rename_only_.front();
                // Capacity checks.
                if (rob_.size() - retire_head_ >=
                    static_cast<size_t>(info_.rob_size))
                    return;
                if (!rename_only &&
                    rs_count_ >= info_.rs_size)
                    return;
                UopDyn dyn = std::move(pending_uops_.front());
                pending_uops_.pop_front();
                pending_rename_only_.pop_front();
                ++issued;
                ++counters_.uops_issued;
                if (rename_only || dyn.spec == nullptr) {
                    ++counters_.uops_eliminated;
                    dyn.complete = cycle_;
                    rob_.push_back(std::move(dyn));
                    continue;
                }
                // Bind to the least-loaded allowed port.
                int best = -1;
                for (int p : uarch::portsOf(dyn.spec->ports)) {
                    if (p >= info_.num_ports)
                        continue;
                    if (best < 0 || waiting_[p] < waiting_[best])
                        best = p;
                }
                panicIf(best < 0, "µop with no valid port");
                dyn.port = static_cast<int16_t>(best);
                ++waiting_[best];
                ++rs_count_;
                rob_.push_back(std::move(dyn));
                bound_[best].push_back(rob_.size() - 1);
            }
        }
    }

    // ---- dispatch ----------------------------------------------------
    void
    dispatch()
    {
        for (int p = 0; p < info_.num_ports; ++p) {
            auto &queue = bound_[p];
            size_t &head = bound_head_[p];
            // Compact fully-drained queues.
            if (head > 0 && head == queue.size()) {
                queue.clear();
                head = 0;
            }
            for (size_t i = head; i < queue.size(); ++i) {
                UopDyn &u = rob_[queue[i]];
                if (u.dispatched)
                    continue;
                const UopSpec &spec = *u.spec;
                if (spec.div_occupancy > 0 && div_busy_[p] > cycle_)
                    continue;
                bool ready = true;
                for (int32_t s : u.srcs) {
                    if (effectiveReady(s, spec.domain) > cycle_) {
                        ready = false;
                        break;
                    }
                }
                if (!ready)
                    continue;
                // Dispatch.
                u.dispatched = true;
                int64_t max_done = cycle_ + 1;
                for (size_t w = 0; w < u.dsts.size(); ++w) {
                    int lat = spec.writeLatency(w, u.slow);
                    value_ready_[u.dsts[w]] = cycle_ + lat;
                    value_domain_[u.dsts[w]] =
                        static_cast<uint8_t>(spec.domain);
                    max_done = std::max(max_done,
                                        cycle_ + static_cast<int64_t>(lat));
                }
                max_done = std::max(
                    max_done, cycle_ + static_cast<int64_t>(spec.latency));
                u.complete = max_done;
                ++counters_.port_uops[static_cast<size_t>(p)];
                --waiting_[p];
                --rs_count_;
                if (spec.div_occupancy > 0) {
                    int occ = u.slow && spec.div_occupancy_slow > 0
                                  ? spec.div_occupancy_slow
                                  : spec.div_occupancy;
                    div_busy_[p] = cycle_ + occ;
                }
                // Mark as drained if at the head.
                if (i == head)
                    ++head;
                break; // one µop per port per cycle
            }
            // Advance head past dispatched entries.
            while (head < queue.size() && rob_[queue[head]].dispatched)
                ++head;
        }
    }

    // ---- retire ------------------------------------------------------
    void
    retire()
    {
        int retired = 0;
        while (retire_head_ < rob_.size() &&
               retired < info_.retire_width) {
            UopDyn &u = rob_[retire_head_];
            if (u.complete < 0 || u.complete > cycle_)
                break;
            --instr_uops_left_[static_cast<size_t>(u.instr_idx)];
            ++retire_head_;
            ++retired;
        }
        // In-order instruction retirement: an instruction is retired
        // once all its µops are (fused branches contribute zero µops
        // and retire together with their producer).
        while (retire_cursor_ < kernel_.size() &&
               instr_uops_left_[retire_cursor_] == 0) {
            ++counters_.instrs_retired;
            auto it = std::lower_bound(marker_set_.begin(),
                                       marker_set_.end(),
                                       retire_cursor_);
            if (it != marker_set_.end() && *it == retire_cursor_) {
                counters_.cycles = cycle_;
                result_.snapshots[static_cast<size_t>(
                    it - marker_set_.begin())] = counters_;
            }
            ++retire_cursor_;
        }
    }

    // ---- members -----------------------------------------------------
    const uarch::TimingDb &timing_;
    const uarch::UArchInfo &info_;
    const SimOptions &options_;
    const Kernel &kernel_;
    std::vector<size_t> marker_set_;

    int64_t cycle_ = 0;
    size_t next_instr_ = 0;
    int32_t serializer_in_flight_ = -1;
    bool dirty_upper_ = false;
    uint64_t mov_elim_counter_ = 0;

    std::vector<int64_t> value_ready_;
    std::vector<uint8_t> value_domain_;
    std::vector<int32_t> unit_value_;
    std::map<int, int32_t> mem_value_;
    std::vector<int32_t> temp_value_;

    std::deque<UopDyn> pending_uops_;
    std::deque<bool> pending_rename_only_;
    std::vector<std::unique_ptr<UopSpec>> fused_specs_;
    std::vector<UopDyn> rob_;
    size_t retire_head_ = 0;
    size_t retire_cursor_ = 0;
    int rs_count_ = 0;
    std::vector<std::vector<size_t>> bound_;
    std::vector<size_t> bound_head_;
    std::vector<int> waiting_;
    std::vector<int64_t> div_busy_;
    std::vector<int> instr_uops_left_;

    PerfCounters counters_;
    RunResult result_;
};

} // namespace

Pipeline::Pipeline(const uarch::TimingDb &timing, SimOptions options)
    : timing_(timing), info_(uarchInfo(timing.arch())), options_(options)
{
}

RunResult
Pipeline::run(const isa::Kernel &kernel,
              const std::vector<size_t> &markers) const
{
    Core core(timing_, info_, options_, kernel, markers);
    return core.run();
}

} // namespace uops::sim
