#include "pipeline.h"

#include <algorithm>
#include <limits>

#include "support/small_vector.h"
#include "support/status.h"

namespace uops::sim {

using isa::InstrInstance;
using isa::Kernel;
using isa::OpKind;
using isa::OperandSpec;
using isa::Reg;
using isa::RegClass;
using uarch::Domain;
using uarch::OpRef;
using uarch::UopSpec;

namespace {

constexpr int64_t kNotReady = std::numeric_limits<int64_t>::max() / 4;

/** Dynamic (renamed) instance of one µop in flight. */
struct UopDyn
{
    const UopSpec *spec = nullptr; ///< nullptr for rename-eliminated.
    int32_t instr_idx = -1;
    int16_t port = -1;
    bool slow = false;
    bool dispatched = false;
    int64_t complete = -1;                ///< -1: not finished.
    SmallVector<int32_t, 4> srcs;         ///< value ids
    SmallVector<int32_t, 4> dsts;         ///< value ids, per write
};

} // namespace

/**
 * Whole-run working memory, owned by the Pipeline and reused across
 * runs. Every container is reset (not reallocated) at the start of a
 * run, so the simulated core still observes pristine power-on state
 * while steady-state runs stay allocation-free.
 */
class PipelineScratch
{
  public:
    std::vector<size_t> marker_set;

    std::vector<int64_t> value_ready;
    std::vector<uint8_t> value_domain;
    std::vector<int32_t> unit_value;
    /** Memory-location values, flat (tag, value) pairs: kernels touch
     *  a handful of distinct tags, so linear scans beat a std::map. */
    std::vector<std::pair<int, int32_t>> mem_value;
    std::vector<int32_t> temp_value;

    std::vector<UopDyn> pending_uops;
    std::vector<uint8_t> pending_rename_only;
    std::vector<UopDyn> rob;
    std::vector<std::vector<size_t>> bound;
    std::vector<size_t> bound_head;
    std::vector<int> waiting;
    std::vector<int64_t> div_busy;
    std::vector<int> instr_uops_left;
};

namespace {

/** Whole-run simulation over a decoded virtual instruction stream. */
class Core
{
  public:
    Core(const uarch::TimingDb &timing, const uarch::UArchInfo &info,
         const SimOptions &options, const DecodedKernel &decoded,
         int body_reps, const std::vector<size_t> &markers,
         PipelineScratch &s)
        : timing_(timing), info_(info), options_(options),
          decoded_(decoded), body_reps_(body_reps),
          total_(decoded.totalSize(body_reps)),
          marker_set_(s.marker_set), value_ready_(s.value_ready),
          value_domain_(s.value_domain), unit_value_(s.unit_value),
          mem_value_(s.mem_value), temp_value_(s.temp_value),
          pending_uops_(s.pending_uops),
          pending_rename_only_(s.pending_rename_only), rob_(s.rob),
          bound_(s.bound), bound_head_(s.bound_head),
          waiting_(s.waiting), div_busy_(s.div_busy),
          instr_uops_left_(s.instr_uops_left)
    {
        marker_set_.assign(markers.begin(), markers.end());
        std::sort(marker_set_.begin(), marker_set_.end());
        // Value 0: power-on state (ready, integer domain).
        value_ready_.clear();
        value_ready_.push_back(0);
        value_domain_.clear();
        value_domain_.push_back(static_cast<uint8_t>(Domain::Gpr));
        unit_value_.assign(isa::kNumArchUnits, 0);
        mem_value_.clear();
        temp_value_.clear();
        pending_uops_.clear();
        pending_rename_only_.clear();
        rob_.clear();
        bound_.resize(static_cast<size_t>(info.num_ports));
        for (auto &queue : bound_)
            queue.clear();
        bound_head_.assign(static_cast<size_t>(info.num_ports), 0);
        waiting_.assign(static_cast<size_t>(info.num_ports), 0);
        div_busy_.assign(static_cast<size_t>(info.num_ports), 0);
        // -1: not yet renamed (blocks the in-order retire cursor).
        instr_uops_left_.assign(total_, -1);
        result_.snapshots.resize(marker_set_.size());
    }

    RunResult
    run()
    {
        while (!done()) {
            ++cycle_;
            panicIf(cycle_ > options_.max_cycles,
                    "simulation exceeded max_cycles (deadlock?)");
            if (options_.cycle_budget > 0 &&
                cycle_ > options_.cycle_budget) {
                throw CycleBudgetExceeded(
                    "simulation exceeded the cycle budget (" +
                        std::to_string(options_.cycle_budget) +
                        " cycles)",
                    options_.cycle_budget);
            }
            activity_ = false;
            dispatch();
            issue();
            retire();
            if (!activity_ && options_.skip_idle)
                skipIdleCycles();
        }
        counters_.cycles = cycle_;
        result_.final = counters_;
        result_.cycles = cycle_;
        return std::move(result_);
    }

  private:
    bool
    done() const
    {
        return next_instr_ >= total_ && pendingEmpty() &&
               retire_head_ == rob_.size() && retire_cursor_ >= total_;
    }

    bool
    pendingEmpty() const
    {
        return pending_head_ == pending_uops_.size();
    }

    void
    pendingPush(UopDyn &&dyn, bool rename_only)
    {
        pending_uops_.push_back(std::move(dyn));
        pending_rename_only_.push_back(rename_only ? 1 : 0);
    }

    // ---- value table -------------------------------------------------
    int32_t
    newValue()
    {
        value_ready_.push_back(kNotReady);
        value_domain_.push_back(static_cast<uint8_t>(Domain::Gpr));
        return static_cast<int32_t>(value_ready_.size() - 1);
    }

    int64_t
    effectiveReady(int32_t value, Domain consumer) const
    {
        int64_t t = value_ready_[value];
        if (t >= kNotReady)
            return t;
        auto d = static_cast<Domain>(value_domain_[value]);
        bool cross = (d == Domain::IVec && consumer == Domain::FVec) ||
                     (d == Domain::FVec && consumer == Domain::IVec);
        if (cross)
            t += info_.bypass_delay;
        return t;
    }

    // ---- renaming ----------------------------------------------------
    /** Value id currently bound to an OpRef source. */
    int32_t
    resolveRead(const InstrInstance &inst, const OpRef &ref)
    {
        switch (ref.kind) {
          case OpRef::Kind::Operand: {
            const OperandSpec &op = inst.variant->operand(ref.index);
            if (op.kind == OpKind::Reg)
                return unit_value_[isa::regUnit(inst.regOf(ref.index))];
            panicIf(op.kind != OpKind::Flags,
                    "resolveRead: unexpected operand kind");
            // Flags: conservatively take the latest of the read groups
            // by returning a synthetic max value. To stay exact we
            // treat each group as a separate source (see expandReads).
            panic("flags reads must be expanded");
          }
          case OpRef::Kind::MemAddr: {
            const Reg &base = inst.ops[ref.index].mem.base;
            return unit_value_[isa::regUnit(base)];
          }
          case OpRef::Kind::MemData: {
            int tag = inst.ops[ref.index].mem.tag;
            for (const auto &[t, v] : mem_value_)
                if (t == tag)
                    return v;
            return 0;
          }
          case OpRef::Kind::Temp:
            return temp_value_.at(static_cast<size_t>(ref.index));
        }
        panic("resolveRead: unreachable");
    }

    /** Expand a read OpRef into concrete source value ids. */
    void
    expandReads(const InstrInstance &inst, const OpRef &ref,
                SmallVector<int32_t, 4> &out, int skip_unit)
    {
        if (ref.kind == OpRef::Kind::Operand) {
            const OperandSpec &op = inst.variant->operand(ref.index);
            if (op.kind == OpKind::Flags) {
                for (isa::ArchUnit u : op.flags_read.units())
                    out.push_back(unit_value_[u]);
                return;
            }
            if (op.kind == OpKind::Reg) {
                isa::ArchUnit u = isa::regUnit(inst.regOf(ref.index));
                if (u == skip_unit)
                    return; // dependency-breaking idiom
                out.push_back(unit_value_[u]);
                return;
            }
            panic("expandReads: unexpected operand kind for ",
                  inst.variant->name());
        }
        out.push_back(resolveRead(inst, ref));
    }

    /** Allocate the destination value for a write OpRef and bind it. */
    int32_t
    applyWrite(const InstrInstance &inst, const OpRef &ref)
    {
        int32_t value = newValue();
        switch (ref.kind) {
          case OpRef::Kind::Operand: {
            const OperandSpec &op = inst.variant->operand(ref.index);
            if (op.kind == OpKind::Flags) {
                for (isa::ArchUnit u : op.flags_written.units())
                    unit_value_[u] = value;
                return value;
            }
            panicIf(op.kind != OpKind::Reg,
                    "applyWrite: unexpected operand kind");
            unit_value_[isa::regUnit(inst.regOf(ref.index))] = value;
            return value;
          }
          case OpRef::Kind::MemData: {
            int tag = inst.ops[ref.index].mem.tag;
            for (auto &[t, v] : mem_value_) {
                if (t == tag) {
                    v = value;
                    return value;
                }
            }
            mem_value_.emplace_back(tag, value);
            return value;
          }
          case OpRef::Kind::Temp:
            if (temp_value_.size() <= static_cast<size_t>(ref.index))
                temp_value_.resize(static_cast<size_t>(ref.index) + 1,
                                   0);
            temp_value_[static_cast<size_t>(ref.index)] = value;
            return value;
          case OpRef::Kind::MemAddr:
            break;
        }
        panic("applyWrite: unreachable");
    }

    /** Merge-dependency unit for narrow GPR writes / dirty-upper SSE. */
    int
    mergeUnit(const InstrInstance &inst, const OpRef &ref) const
    {
        if (ref.kind != OpRef::Kind::Operand)
            return -1;
        const OperandSpec &op = inst.variant->operand(ref.index);
        if (op.kind != OpKind::Reg)
            return -1;
        RegClass cls = op.reg_class;
        if (cls == RegClass::Gpr8 || cls == RegClass::Gpr8High ||
            cls == RegClass::Gpr16)
            return isa::regUnit(inst.regOf(ref.index));
        // Dirty-upper merge for legacy-SSE XMM writes.
        if (info_.sse_avx_transition && dirty_upper_ &&
            cls == RegClass::Xmm && !inst.variant->attrs().is_avx)
            return isa::regUnit(inst.regOf(ref.index));
        return -1;
    }

    // ---- issue -------------------------------------------------------
    /** Generate and enqueue the renamed µops of the next instruction.
     *  The static decode (µop selection, idiom classification) comes
     *  precomputed from the template; only the renaming is per-copy. */
    void
    renameInstruction(const DecodedInstr &d, int32_t idx)
    {
        activity_ = true;
        const InstrInstance &inst = *d.inst;
        const std::vector<UopSpec> &uops = *d.uops;

        // Move elimination: reg-reg moves handled by the ROB.
        bool eliminated_mov = false;
        if (d.try_mov_elim && options_.mov_elim_period > 0) {
            eliminated_mov =
                (mov_elim_counter_++ % options_.mov_elim_period) == 0;
        }

        if (d.rename_direct || eliminated_mov) {
            // Rename-stage execution: one issued-but-not-dispatched µop.
            UopDyn dyn;
            dyn.instr_idx = idx;
            if (eliminated_mov) {
                // Zero-latency: destination aliases the source value.
                unit_value_[d.elim_dst_unit] =
                    unit_value_[d.elim_src_unit];
            } else {
                // NOP / zero idiom: results ready immediately.
                for (const auto &u : uops)
                    for (const auto &w : u.writes)
                        if (w.kind == OpRef::Kind::Operand) {
                            int32_t v = applyWrite(inst, w);
                            value_ready_[v] = 0;
                        }
            }
            instr_uops_left_[static_cast<size_t>(idx)] = 1;
            pendingPush(std::move(dyn), true);
            return;
        }

        temp_value_.assign(temp_value_.size(), 0);
        int count = 0;
        for (const auto &spec : uops) {
            UopDyn dyn;
            dyn.spec = &spec;
            dyn.instr_idx = idx;
            dyn.slow = d.slow;
            for (const auto &r : spec.reads)
                expandReads(inst, r, dyn.srcs, d.skip_unit);
            // Partial-register / dirty-upper merges add a read of the
            // written register's previous value.
            for (const auto &w : spec.writes) {
                int mu = mergeUnit(inst, w);
                if (mu >= 0 && mu != d.skip_unit)
                    dyn.srcs.push_back(unit_value_[mu]);
            }
            for (const auto &w : spec.writes)
                dyn.dsts.push_back(applyWrite(inst, w));
            pendingPush(std::move(dyn), false);
            ++count;
        }
        instr_uops_left_[static_cast<size_t>(idx)] = count;

        // Track the YMM upper state for the SSE/AVX transition model.
        if (info_.sse_avx_transition) {
            if (d.ymm_effect == DecodedInstr::YmmEffect::ClearUpper)
                dirty_upper_ = false;
            else if (d.ymm_effect == DecodedInstr::YmmEffect::DirtyUpper)
                dirty_upper_ = true;
        }
    }

    /** Rename a macro-fused pair into a single branch-unit µop; the
     *  fused spec itself is precomputed by the template. */
    void
    renameFusedPair(const DecodedInstr &d, const UopSpec &spec,
                    int32_t idx)
    {
        activity_ = true;
        const InstrInstance &prod = *d.inst;
        UopDyn dyn;
        dyn.spec = &spec;
        dyn.instr_idx = idx;
        for (const auto &r : spec.reads)
            expandReads(prod, r, dyn.srcs, -1);
        for (const auto &w : spec.writes)
            dyn.dsts.push_back(applyWrite(prod, w));

        instr_uops_left_[static_cast<size_t>(idx)] = 1;
        instr_uops_left_[static_cast<size_t>(idx) + 1] = 0;
        pendingPush(std::move(dyn), false);
    }

    void
    issue()
    {
        int issued = 0;
        while (issued < info_.issue_width) {
            // Refill the pending queue from the instruction stream.
            if (pendingEmpty()) {
                if (next_instr_ >= total_)
                    return;
                // A serializing instruction in flight blocks younger
                // instructions until it has fully retired.
                if (serializer_in_flight_ >= 0) {
                    if (instr_uops_left_[static_cast<size_t>(
                            serializer_in_flight_)] > 0)
                        return;
                    serializer_in_flight_ = -1;
                }
                DecodedKernel::Ref ref =
                    decoded_.at(next_instr_, body_reps_);
                const DecodedInstr &d = *ref.instr;
                if (d.serializing) {
                    // Drain: all older µops must have retired first.
                    if (retire_head_ != rob_.size())
                        return;
                    serializer_in_flight_ =
                        static_cast<int32_t>(next_instr_);
                }
                // Macro-fusion: a flag-writing ALU instruction and an
                // immediately following Jcc decode into a single µop.
                // The eligible pair (and its fused spec) was decided
                // once at decode time.
                const UopSpec *fused =
                    ref.wraps ? d.fused_wrap : d.fused_next;
                if (fused != nullptr && next_instr_ + 1 < total_) {
                    renameFusedPair(d, *fused,
                                    static_cast<int32_t>(next_instr_));
                    next_instr_ += 2;
                    continue;
                }
                renameInstruction(d,
                                  static_cast<int32_t>(next_instr_));
                ++next_instr_;
            }
            while (!pendingEmpty() && issued < info_.issue_width) {
                bool rename_only =
                    pending_rename_only_[pending_head_] != 0;
                // Capacity checks.
                if (rob_.size() - retire_head_ >=
                    static_cast<size_t>(info_.rob_size))
                    return;
                if (!rename_only && rs_count_ >= info_.rs_size)
                    return;
                UopDyn dyn = std::move(pending_uops_[pending_head_]);
                ++pending_head_;
                if (pendingEmpty()) {
                    pending_uops_.clear();
                    pending_rename_only_.clear();
                    pending_head_ = 0;
                }
                ++issued;
                activity_ = true;
                ++counters_.uops_issued;
                if (rename_only || dyn.spec == nullptr) {
                    ++counters_.uops_eliminated;
                    dyn.complete = cycle_;
                    rob_.push_back(std::move(dyn));
                    continue;
                }
                // Bind to the least-loaded allowed port. Scans the
                // mask bits directly (ascending, like portsOf) — this
                // runs once per issued µop, too hot for a vector.
                int best = -1;
                uarch::PortMask mask = dyn.spec->ports;
                for (int p = 0; p < info_.num_ports; ++p) {
                    if (!(mask & static_cast<uarch::PortMask>(1u << p)))
                        continue;
                    if (best < 0 || waiting_[p] < waiting_[best])
                        best = p;
                }
                panicIf(best < 0, "µop with no valid port");
                dyn.port = static_cast<int16_t>(best);
                ++waiting_[best];
                ++rs_count_;
                rob_.push_back(std::move(dyn));
                bound_[static_cast<size_t>(best)].push_back(
                    rob_.size() - 1);
            }
        }
    }

    // ---- dispatch ----------------------------------------------------
    void
    dispatch()
    {
        for (int p = 0; p < info_.num_ports; ++p) {
            auto &queue = bound_[static_cast<size_t>(p)];
            size_t &head = bound_head_[static_cast<size_t>(p)];
            // Compact fully-drained queues.
            if (head > 0 && head == queue.size()) {
                queue.clear();
                head = 0;
            }
            for (size_t i = head; i < queue.size(); ++i) {
                UopDyn &u = rob_[queue[i]];
                if (u.dispatched)
                    continue;
                const UopSpec &spec = *u.spec;
                if (spec.div_occupancy > 0 && div_busy_[p] > cycle_)
                    continue;
                bool ready = true;
                for (int32_t s : u.srcs) {
                    if (effectiveReady(s, spec.domain) > cycle_) {
                        ready = false;
                        break;
                    }
                }
                if (!ready)
                    continue;
                // Dispatch.
                u.dispatched = true;
                activity_ = true;
                int64_t max_done = cycle_ + 1;
                for (size_t w = 0; w < u.dsts.size(); ++w) {
                    int lat = spec.writeLatency(w, u.slow);
                    value_ready_[u.dsts[w]] = cycle_ + lat;
                    value_domain_[u.dsts[w]] =
                        static_cast<uint8_t>(spec.domain);
                    max_done = std::max(
                        max_done, cycle_ + static_cast<int64_t>(lat));
                }
                max_done = std::max(
                    max_done,
                    cycle_ + static_cast<int64_t>(spec.latency));
                u.complete = max_done;
                ++counters_.port_uops[static_cast<size_t>(p)];
                --waiting_[p];
                --rs_count_;
                if (spec.div_occupancy > 0) {
                    int occ = u.slow && spec.div_occupancy_slow > 0
                                  ? spec.div_occupancy_slow
                                  : spec.div_occupancy;
                    div_busy_[p] = cycle_ + occ;
                }
                // Mark as drained if at the head.
                if (i == head)
                    ++head;
                break; // one µop per port per cycle
            }
            // Advance head past dispatched entries.
            while (head < queue.size() && rob_[queue[head]].dispatched)
                ++head;
        }
    }

    // ---- retire ------------------------------------------------------
    void
    retire()
    {
        int retired = 0;
        while (retire_head_ < rob_.size() &&
               retired < info_.retire_width) {
            UopDyn &u = rob_[retire_head_];
            if (u.complete < 0 || u.complete > cycle_)
                break;
            --instr_uops_left_[static_cast<size_t>(u.instr_idx)];
            ++retire_head_;
            ++retired;
            activity_ = true;
        }
        // In-order instruction retirement: an instruction is retired
        // once all its µops are (fused branches contribute zero µops
        // and retire together with their producer).
        while (retire_cursor_ < total_ &&
               instr_uops_left_[retire_cursor_] == 0) {
            ++counters_.instrs_retired;
            activity_ = true;
            auto it = std::lower_bound(marker_set_.begin(),
                                       marker_set_.end(),
                                       retire_cursor_);
            if (it != marker_set_.end() && *it == retire_cursor_) {
                counters_.cycles = cycle_;
                result_.snapshots[static_cast<size_t>(
                    it - marker_set_.begin())] = counters_;
            }
            ++retire_cursor_;
        }
    }

    // ---- idle-cycle skip ---------------------------------------------
    /**
     * Nothing dispatched, issued, renamed, or retired this cycle, so
     * every blocked µop waits on a purely time-based condition: a
     * source value becoming ready (plus bypass), the divider freeing
     * up, or the oldest ROB entry completing. Until the earliest such
     * threshold no architectural state can change, so jumping the
     * clock there is exact. With no finite threshold the simulation
     * is genuinely deadlocked; fall through to normal stepping and
     * let the max_cycles guard fire as before.
     */
    void
    skipIdleCycles()
    {
        int64_t next = kNotReady;
        if (retire_head_ < rob_.size()) {
            const UopDyn &u = rob_[retire_head_];
            if (u.complete > cycle_)
                next = std::min(next, u.complete);
        }
        for (int p = 0; p < info_.num_ports; ++p) {
            const auto &queue = bound_[static_cast<size_t>(p)];
            for (size_t i = bound_head_[static_cast<size_t>(p)];
                 i < queue.size(); ++i) {
                const UopDyn &u = rob_[queue[i]];
                if (u.dispatched)
                    continue;
                const UopSpec &spec = *u.spec;
                if (spec.div_occupancy > 0 && div_busy_[p] > cycle_)
                    next = std::min(next, div_busy_[p]);
                for (int32_t s : u.srcs) {
                    int64_t r = effectiveReady(s, spec.domain);
                    if (r > cycle_ && r < kNotReady)
                        next = std::min(next, r);
                }
            }
        }
        if (next < kNotReady && next - 1 > cycle_)
            cycle_ = next - 1;
    }

    // ---- members -----------------------------------------------------
    const uarch::TimingDb &timing_;
    const uarch::UArchInfo &info_;
    const SimOptions &options_;
    const DecodedKernel &decoded_;
    const int body_reps_;
    const size_t total_; ///< virtual stream length

    int64_t cycle_ = 0;
    size_t next_instr_ = 0;
    int32_t serializer_in_flight_ = -1;
    bool dirty_upper_ = false;
    bool activity_ = false;
    uint64_t mov_elim_counter_ = 0;

    std::vector<size_t> &marker_set_;
    std::vector<int64_t> &value_ready_;
    std::vector<uint8_t> &value_domain_;
    std::vector<int32_t> &unit_value_;
    std::vector<std::pair<int, int32_t>> &mem_value_;
    std::vector<int32_t> &temp_value_;

    std::vector<UopDyn> &pending_uops_;
    std::vector<uint8_t> &pending_rename_only_;
    size_t pending_head_ = 0;
    std::vector<UopDyn> &rob_;
    size_t retire_head_ = 0;
    size_t retire_cursor_ = 0;
    int rs_count_ = 0;
    std::vector<std::vector<size_t>> &bound_;
    std::vector<size_t> &bound_head_;
    std::vector<int> &waiting_;
    std::vector<int64_t> &div_busy_;
    std::vector<int> &instr_uops_left_;

    PerfCounters counters_;
    RunResult result_;
};

} // namespace

Pipeline::Pipeline(const uarch::TimingDb &timing, SimOptions options)
    : timing_(timing), info_(uarchInfo(timing.arch())),
      options_(options), scratch_(std::make_unique<PipelineScratch>())
{
}

Pipeline::~Pipeline() = default;

RunResult
Pipeline::run(const isa::Kernel &kernel,
              const std::vector<size_t> &markers) const
{
    static const isa::Kernel kEmpty;
    DecodedKernel decoded(timing_, kEmpty, kernel, kEmpty);
    return run(decoded, 1, markers);
}

RunResult
Pipeline::run(const DecodedKernel &decoded, int body_reps,
              const std::vector<size_t> &markers) const
{
    panicIf(decoded.bodySize() > 0 && body_reps < 1,
            "Pipeline::run: body_reps must be >= 1");
    if (decoded.bodySize() == 0)
        body_reps = 0;
    Core core(timing_, info_, options_, decoded, body_reps, markers,
              *scratch_);
    return core.run();
}

} // namespace uops::sim
