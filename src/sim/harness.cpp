#include "harness.h"

#include <cmath>

#include "support/status.h"

namespace uops::sim {

using isa::InstrInstance;
using isa::Kernel;

MeasurementHarness::MeasurementHarness(const uarch::TimingDb &timing,
                                       HarnessOptions options)
    : timing_(timing), pipeline_(timing), options_(options)
{
    const isa::InstrDb &db = timing.instrDb();
    serializer_ = db.byName("CPUID_R32i_R32i_R32i_R32i");
    if (serializer_ == nullptr)
        serializer_ = db.byName("CPUID");
    counter_reader_ = db.byName("RDTSC_R32i_R32i");
    if (counter_reader_ == nullptr)
        counter_reader_ = db.byName("RDTSC");
    fatalIf(serializer_ == nullptr || counter_reader_ == nullptr,
            "harness: CPUID/RDTSC must be present in the instruction DB");
}

PerfCounters
MeasurementHarness::runOnce(const Kernel &body, int n) const
{
    Kernel code;
    code.reserve(body.size() * static_cast<size_t>(n) + 8);
    std::vector<size_t> markers;

    auto append_simple = [&](const isa::InstrVariant *v) {
        code.push_back(isa::makeInstance(*v, {}));
    };

    // start <- readPerfCtrs(), wrapped in serializing instructions.
    append_simple(serializer_);
    append_simple(counter_reader_);
    markers.push_back(code.size() - 1);
    append_simple(serializer_);

    for (int i = 0; i < n; ++i)
        code.insert(code.end(), body.begin(), body.end());

    // end <- readPerfCtrs().
    append_simple(serializer_);
    append_simple(counter_reader_);
    markers.push_back(code.size() - 1);
    append_simple(serializer_);

    RunResult result = pipeline_.run(code, markers);
    return result.snapshots[1] - result.snapshots[0];
}

Measurement
MeasurementHarness::measure(const Kernel &body) const
{
    panicIf(body.empty(), "harness: empty benchmark body");

    if (options_.warmup)
        (void)runOnce(body, options_.unroll_small);

    Rng rng(options_.noise_seed);
    Measurement acc;
    int reps = std::max(1, options_.repetitions);
    const double scale =
        static_cast<double>(options_.unroll_large - options_.unroll_small);

    for (int rep = 0; rep < reps; ++rep) {
        PerfCounters small = runOnce(body, options_.unroll_small);
        PerfCounters large = runOnce(body, options_.unroll_large);
        PerfCounters diff = large - small;

        double cycles = static_cast<double>(diff.cycles);
        if (options_.noise_stddev > 0.0) {
            // Triangular-distributed jitter (sum of two uniforms),
            // seeded: repeatable noise for the averaging tests.
            double u = rng.nextDouble() + rng.nextDouble() - 1.0;
            cycles += u * options_.noise_stddev * scale;
            if (cycles < 0)
                cycles = 0;
        }
        acc.cycles += cycles / scale;
        for (int p = 0; p < kMaxPorts; ++p)
            acc.port_uops[static_cast<size_t>(p)] +=
                static_cast<double>(
                    diff.port_uops[static_cast<size_t>(p)]) / scale;
        acc.uops_issued += static_cast<double>(diff.uops_issued) / scale;
        acc.uops_eliminated +=
            static_cast<double>(diff.uops_eliminated) / scale;
    }

    acc.cycles /= reps;
    for (auto &u : acc.port_uops)
        u /= reps;
    acc.uops_issued /= reps;
    acc.uops_eliminated /= reps;
    return acc;
}

} // namespace uops::sim
