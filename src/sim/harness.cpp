#include "harness.h"

#include <cmath>

#include "sim/measurement_cache.h"
#include "support/status.h"

namespace uops::sim {

using isa::InstrInstance;
using isa::Kernel;

MeasurementHarness::MeasurementHarness(const uarch::TimingDb &timing,
                                       HarnessOptions options,
                                       SimOptions sim)
    : timing_(timing), pipeline_(timing, sim), options_(options)
{
    const isa::InstrDb &db = timing.instrDb();
    serializer_ = db.byName("CPUID_R32i_R32i_R32i_R32i");
    if (serializer_ == nullptr)
        serializer_ = db.byName("CPUID");
    counter_reader_ = db.byName("RDTSC_R32i_R32i");
    if (counter_reader_ == nullptr)
        counter_reader_ = db.byName("RDTSC");
    fatalIf(serializer_ == nullptr || counter_reader_ == nullptr,
            "harness: CPUID/RDTSC must be present in the instruction DB");

    // start <- readPerfCtrs() / end <- readPerfCtrs(), wrapped in
    // serializing instructions; fixed for the harness lifetime.
    for (Kernel *wrapper : {&prologue_, &epilogue_}) {
        wrapper->push_back(isa::makeInstance(*serializer_, {}));
        wrapper->push_back(isa::makeInstance(*counter_reader_, {}));
        wrapper->push_back(isa::makeInstance(*serializer_, {}));
    }
}

PerfCounters
MeasurementHarness::runOnce(const DecodedKernel &decoded, int n) const
{
    // Counter snapshots at the two RDTSC retirements; indices in the
    // logical stream prologue · body×n · epilogue.
    std::vector<size_t> markers;
    markers.reserve(2);
    markers.push_back(1);
    markers.push_back(decoded.prologueSize() +
                      decoded.bodySize() * static_cast<size_t>(n) + 1);

    RunResult result = pipeline_.run(decoded, n, markers);
    return result.snapshots[1] - result.snapshots[0];
}

Measurement
MeasurementHarness::measure(const Kernel &body) const
{
    panicIf(body.empty(), "harness: empty benchmark body");

    if (cache_ == nullptr)
        return measureUncached(body);

    std::string key = MeasurementCache::fingerprint(body, options_);
    if (auto hit = cache_->lookup(key))
        return *hit;
    Measurement m = measureUncached(body);
    cache_->insert(key, m);
    return m;
}

Measurement
MeasurementHarness::measureUncached(const Kernel &body) const
{
    // Decode the body (µop selection, idiom and fusion analysis) once;
    // both unroll factors and all repetitions reuse the template.
    DecodedKernel decoded(timing_, prologue_, body, epilogue_);

    if (options_.warmup)
        (void)runOnce(decoded, options_.unroll_small);

    Rng rng(options_.noise_seed);
    int reps = std::max(1, options_.repetitions);
    const double scale =
        static_cast<double>(options_.unroll_large - options_.unroll_small);

    // Accumulate raw counter deltas; normalize by scale and reps once
    // at the end instead of per repetition and per port.
    double cycles_sum = 0.0;
    std::array<int64_t, kMaxPorts> port_sum{};
    int64_t issued_sum = 0;
    int64_t eliminated_sum = 0;

    for (int rep = 0; rep < reps; ++rep) {
        PerfCounters small = runOnce(decoded, options_.unroll_small);
        PerfCounters large = runOnce(decoded, options_.unroll_large);
        PerfCounters diff = large - small;

        double cycles = static_cast<double>(diff.cycles);
        if (options_.noise_stddev > 0.0) {
            // Triangular-distributed jitter (sum of two uniforms),
            // seeded: repeatable noise for the averaging tests.
            double u = rng.nextDouble() + rng.nextDouble() - 1.0;
            cycles += u * options_.noise_stddev * scale;
            if (cycles < 0)
                cycles = 0;
        }
        cycles_sum += cycles;
        for (int p = 0; p < kMaxPorts; ++p)
            port_sum[static_cast<size_t>(p)] +=
                diff.port_uops[static_cast<size_t>(p)];
        issued_sum += diff.uops_issued;
        eliminated_sum += diff.uops_eliminated;
    }

    const double norm = scale * static_cast<double>(reps);
    Measurement acc;
    acc.cycles = cycles_sum / norm;
    for (int p = 0; p < kMaxPorts; ++p)
        acc.port_uops[static_cast<size_t>(p)] =
            static_cast<double>(port_sum[static_cast<size_t>(p)]) / norm;
    acc.uops_issued = static_cast<double>(issued_sum) / norm;
    acc.uops_eliminated = static_cast<double>(eliminated_sum) / norm;
    return acc;
}

} // namespace uops::sim
