/**
 * @file
 * Measurement harness (Algorithm 2, Section 6.2).
 *
 * Reproduces the paper's kernel-space measurement routine on top of
 * the simulated core:
 *
 *   saveState / disablePreemptionAndInterrupts   (no-ops in simulation)
 *   serializing instruction                       CPUID
 *   start <- readPerfCtrs()                       RDTSC-modeled reader
 *   serializing instruction                       CPUID
 *   AsmCode (n copies of the benchmark body)
 *   serializing instruction                       CPUID
 *   end <- readPerfCtrs()
 *   serializing instruction                       CPUID
 *
 * The counter-read and serializing overhead is cancelled exactly as in
 * the paper: the harness runs once with n = 10 and once with n = 110
 * copies of the body, subtracts the two measurements and divides by
 * 100. The result is averaged over a configurable number of repetitions
 * after a warm-up run; optional seeded noise exercises the averaging
 * logic in tests.
 *
 * Hot path: the body is decoded into a µop template once per measure()
 * call and the pipeline unrolls it logically (sim/decoded.h) — the
 * n-copy kernel is never materialized. When a MeasurementCache is
 * attached (setCache), byte-identical (body, options) measurements are
 * served from the cache; cached results are bit-identical to
 * recomputation because a Measurement is a pure function of the key
 * on a fixed timing database.
 */

#ifndef UOPS_SIM_HARNESS_H
#define UOPS_SIM_HARNESS_H

#include <array>

#include "isa/kernel.h"
#include "sim/pipeline.h"
#include "support/rng.h"

namespace uops::sim {

class MeasurementCache;

/** One per-body-execution measurement (averages over the copies). */
struct Measurement
{
    double cycles = 0.0;                       ///< Core cycles per body.
    std::array<double, kMaxPorts> port_uops{}; ///< µops per port per body.
    double uops_issued = 0.0;
    double uops_eliminated = 0.0;

    double
    totalPortUops() const
    {
        double total = 0.0;
        for (double u : port_uops)
            total += u;
        return total;
    }
};

/** Harness configuration. */
struct HarnessOptions
{
    int unroll_small = 10;   ///< n for the first run.
    int unroll_large = 110;  ///< n for the second run.
    int repetitions = 1;     ///< measurement repetitions (paper: 100).
    bool warmup = false;     ///< extra untimed run before measuring.
    double noise_stddev = 0.0; ///< cycles of seeded jitter (0 = exact).
    uint64_t noise_seed = 42;
};

/**
 * Runs benchmark bodies on the simulated core per Algorithm 2.
 */
class MeasurementHarness
{
  public:
    /**
     * @param sim Options for the underlying pipeline; the defaults
     *            match direct Pipeline construction. A cycle_budget
     *            here bounds each Algorithm-2 run (untrusted-kernel
     *            admission control); budgeted and unbudgeted runs
     *            that complete produce bit-identical measurements.
     */
    MeasurementHarness(const uarch::TimingDb &timing,
                       HarnessOptions options = {},
                       SimOptions sim = {});

    const uarch::UArchInfo &info() const { return pipeline_.info(); }
    const uarch::TimingDb &timingDb() const { return timing_; }
    const HarnessOptions &options() const { return options_; }

    /**
     * Attach a measurement memo-cache (nullptr detaches). The cache
     * must only be shared between harnesses with the same timing
     * database; it may be shared across threads.
     */
    void setCache(MeasurementCache *cache) { cache_ = cache; }
    MeasurementCache *cache() const { return cache_; }

    /**
     * Measure one benchmark body.
     *
     * @param body The assembler sequence under measurement.
     * @return Per-body-execution averages.
     */
    Measurement measure(const isa::Kernel &body) const;

  private:
    /** measure() without the memo-cache. */
    Measurement measureUncached(const isa::Kernel &body) const;

    /** One Algorithm-2 run with @p n logical body copies; returns the
     *  counter delta between the two reads. */
    PerfCounters runOnce(const DecodedKernel &decoded, int n) const;

    const uarch::TimingDb &timing_;
    Pipeline pipeline_;
    HarnessOptions options_;
    const isa::InstrVariant *serializer_;
    const isa::InstrVariant *counter_reader_;
    /** Algorithm 2's fixed wrapper code: serializer / counter read /
     *  serializer, built once and decoded with every body. */
    isa::Kernel prologue_;
    isa::Kernel epilogue_;
    MeasurementCache *cache_ = nullptr;
};

} // namespace uops::sim

#endif // UOPS_SIM_HARNESS_H
